#!/usr/bin/env python3
"""Shard-ownership static analysis for the sharded engine (DESIGN.md §15).

The parallel engine's determinism proof rests on an ownership discipline:
every piece of mutable state reachable from a worker thread's window
context is either owned by exactly one shard, touched only by the
coordinator between windows, or written only while the engine is
quiescent. The discipline is *declared* with the no-op annotation macros
in src/sim/shard_annotations.h; this pass makes the declaration
mandatory and machine-checked over the engine's surface (src/sim plus
src/server/fleet_driver.*):

  unannotated-member      Every mutable data member of a class/struct in
                          scope carries DMASIM_SHARD_LOCAL,
                          DMASIM_BARRIER_ONLY, or DMASIM_SHARED_CONST.
                          Pure value types (messages, option blocks) opt
                          out with a class-level waiver on the head line.
  barrier-only-in-window  A function marked `// shardcheck:
                          window-context` (it runs on a worker inside a
                          window) must not call a method declared
                          DMASIM_BARRIER_ONLY anywhere in scope.
  global-mutable-state    No mutable namespace-scope variables in scope:
                          globals are reachable from every worker, so
                          they are either racy or a hidden barrier.
  nondeterminism-source   Same patterns as dmasim_lint's rule of that
                          name (entropy, wall clocks, pointer-keyed
                          containers), enforced here for the engine
                          surface regardless of the hot-path dir list.

Known limitations (deliberate -- the pass is line-based, not a parser):
a member declaration that spans lines or contains parentheses (function
pointers, paren initializers) is skipped by unannotated-member, and
barrier-only-in-window matches calls by name, so an in-scope method
sharing a barrier-only method's name is flagged conservatively.

Waivers: `// shardcheck: allow(<rule>)` on the finding line or the line
before; for unannotated-member, the same comment on a class/struct head
line waives the whole body (value-type opt-out).

Exit status: 0 clean, 1 findings, 2 bad invocation / self-test failure.
`--self-test` runs the pass over tools/lint/fixtures/shardcheck and
verifies every `// expect-shardcheck: rule` annotation (and nothing
else) is produced.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import dmasim_lint  # noqa: E402  (shared comment/string stripper + regexes)

# Files whose state is reachable from ShardedEngine / RunFleet worker
# context. Relative-path prefixes, POSIX separators.
SCOPE_PREFIXES = ("src/sim/", "src/server/fleet_driver.")

ANNOTATIONS = ("DMASIM_SHARD_LOCAL", "DMASIM_BARRIER_ONLY",
               "DMASIM_SHARED_CONST")
ANNOTATION_RE = re.compile("|".join(ANNOTATIONS))

SUPPRESS_RE = re.compile(r"//.*?shardcheck:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect-shardcheck:\s*([a-z-]+)")
WINDOW_CONTEXT_RE = re.compile(r"//\s*shardcheck:\s*window-context\b")

# A barrier-only *method*: the annotation followed by a declaration whose
# name precedes an argument list. Data members don't match (no paren).
BARRIER_METHOD_RE = re.compile(
    r"DMASIM_BARRIER_ONLY\s+(?:[\w:<>,&*~\s]*?[\s&*])?([A-Za-z_]\w*)\s*\(")

# A single-line data-member declaration: type tokens then a name,
# optional array extent / default initializer, terminated on this line.
# Parentheses anywhere disqualify the line (function declarations,
# paren initializers -- see the limitations note above).
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?[\w:]+(?:\s*<[^()]*>)?(?:\s*[&*]+\s*|\s+)"
    r"[A-Za-z_]\w*\s*(?:\[[^\]]*\]\s*)?(?:=\s*[^;()]+|\{[^;()]*\})?;\s*$")

# First token(s) that mark a line as not-a-mutable-member.
MEMBER_EXCLUDE_RE = re.compile(
    r"^\s*(?:static\b|constexpr\b|const\b|using\b|typedef\b|friend\b|"
    r"enum\b|class\b|struct\b|union\b|template\b|public\s*:|"
    r"private\s*:|protected\s*:|#)")

GLOBAL_EXCLUDE_RE = re.compile(
    r"^\s*(?:static\s+)?(?:constexpr\b|const\b|extern\b|using\b|"
    r"typedef\b|friend\b|enum\b|class\b|struct\b|union\b|template\b|"
    r"namespace\b|#)")

CALL_HEAD_CHARS = "(){};"


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


class Scope(NamedTuple):
    kind: str       # class | namespace | enum | block
    exempt: bool    # Class-level unannotated-member waiver.


def scope_kinds_per_line(stripped: str,
                         raw_lines: List[str]) -> List[List[Scope]]:
    """The scope stack in effect at the *start* of each line.

    Each `{` is classified by its head -- the text between the previous
    `;`, `{`, or `}` and the brace: `class`/`struct`/`union` opens a
    class scope, `namespace` a namespace, `enum` an enum; anything else
    (function bodies, initializer lists, lambdas) is a block.
    """
    stacks: List[List[Scope]] = []
    stack: List[Scope] = []
    head_start = 0
    line_index = 0
    stacks.append(list(stack))
    for i, c in enumerate(stripped):
        if c == "\n":
            line_index += 1
            stacks.append(list(stack))
        elif c == "{":
            head = stripped[head_start:i]
            if re.search(r"\benum\b", head):
                kind = "enum"
            elif re.search(r"\b(?:class|struct|union)\b", head) \
                    and "(" not in head:
                kind = "class"
            elif re.search(r"\bnamespace\b", head):
                kind = "namespace"
            else:
                kind = "block"
            exempt = False
            if kind == "class":
                # The class-level waiver lives in a comment on the head
                # line(s), which the stripper blanked: consult raw text.
                head_first_line = stripped[:head_start].count("\n")
                for raw in raw_lines[head_first_line:line_index + 1]:
                    if any(m.group(1) == "unannotated-member"
                           for m in SUPPRESS_RE.finditer(raw)):
                        exempt = True
            stack.append(Scope(kind, exempt))
            head_start = i + 1
        elif c == "}":
            if stack:
                stack.pop()
            head_start = i + 1
        elif c in ";":
            head_start = i + 1
    return stacks


def collect_barrier_methods(stripped_by_path: dict) -> Set[str]:
    names: Set[str] = set()
    for stripped in stripped_by_path.values():
        for match in BARRIER_METHOD_RE.finditer(stripped):
            names.add(match.group(1))
    return names


def window_context_regions(raw_lines: List[str],
                           code_lines: List[str]) -> List[Tuple[int, int]]:
    """(start, end) line-index ranges of window-context function bodies.

    A marker comment applies to the next function: the region runs from
    the first `{` at or after the marker to its matching `}`.
    """
    regions: List[Tuple[int, int]] = []
    for marker_index, raw in enumerate(raw_lines):
        if not WINDOW_CONTEXT_RE.search(raw):
            continue
        depth = 0
        started = False
        for index in range(marker_index, len(code_lines)):
            for c in code_lines[index]:
                if c == "{":
                    depth += 1
                    started = True
                elif c == "}":
                    depth -= 1
            if started and depth <= 0:
                regions.append((marker_index, index))
                break
        else:
            regions.append((marker_index, len(code_lines) - 1))
    return regions


def suppressions_for(raw_lines: List[str]) -> List[Set[str]]:
    waived: List[Set[str]] = [set() for _ in raw_lines]
    for index, line in enumerate(raw_lines):
        for match in SUPPRESS_RE.finditer(line):
            waived[index].add(match.group(1))
            if index + 1 < len(raw_lines):
                waived[index + 1].add(match.group(1))
    return waived


def check_file(rel_path: str, text: str,
               barrier_methods: Set[str]) -> List[Finding]:
    raw_lines = text.splitlines()
    stripped = dmasim_lint.strip_comments_and_strings(text)
    code_lines = stripped.splitlines()
    waived = suppressions_for(raw_lines)
    scopes = scope_kinds_per_line(stripped, raw_lines)
    findings: List[Finding] = []

    def report(line_index: int, rule: str, message: str) -> None:
        if rule not in waived[line_index]:
            findings.append(Finding(rel_path, line_index + 1, rule, message))

    for index, line in enumerate(code_lines):
        stack = scopes[index] if index < len(scopes) else []
        innermost = stack[-1] if stack else Scope("file", False)

        if innermost.kind == "class" and not innermost.exempt:
            if (not ANNOTATION_RE.search(line)
                    and not MEMBER_EXCLUDE_RE.match(line)
                    and MEMBER_DECL_RE.match(line)):
                report(index, "unannotated-member",
                       "mutable data member without a shard-ownership "
                       "annotation; declare DMASIM_SHARD_LOCAL, "
                       "DMASIM_BARRIER_ONLY, or DMASIM_SHARED_CONST "
                       "(src/sim/shard_annotations.h), or waive the "
                       "class as a value type")

        if innermost.kind in ("namespace", "file"):
            # `static` at namespace scope is linkage, not immutability:
            # drop it before the keyword exclusion so `static int g;`
            # is still a mutable global.
            global_line = re.sub(r"^(\s*)static\s+", r"\1", line)
            if (not GLOBAL_EXCLUDE_RE.match(global_line)
                    and MEMBER_DECL_RE.match(global_line)
                    and not ANNOTATION_RE.search(line)):
                report(index, "global-mutable-state",
                       "mutable namespace-scope variable in the sharded "
                       "engine's surface; globals are reachable from "
                       "every worker thread")

        if dmasim_lint.RANDOM_DEVICE_RE.search(line):
            report(index, "nondeterminism-source",
                   "std::random_device draws real entropy; seed a "
                   "util/random.h PRNG from configuration instead")
        if dmasim_lint.WALL_CLOCK_RE.search(line):
            report(index, "nondeterminism-source",
                   "wall-clock reads vary across runs; engine state must "
                   "be a function of integer sim ticks")
        if (dmasim_lint.TIME_CALL_RE.search(line)
                or dmasim_lint.RAND_CALL_RE.search(line)):
            report(index, "nondeterminism-source",
                   "C time()/rand() in the engine surface; use sim ticks "
                   "and seeded util/random.h PRNGs")
        if dmasim_lint.POINTER_KEY_RE.search(line):
            report(index, "nondeterminism-source",
                   "pointer-keyed map/set iterates in ASLR-dependent "
                   "address order; key by a stable shard/stream id")

    for start, end in window_context_regions(raw_lines, code_lines):
        for index in range(start, end + 1):
            line = code_lines[index]
            for name in barrier_methods:
                for match in re.finditer(r"\b" + re.escape(name) + r"\s*\(",
                                         line):
                    # The annotated declaration/definition itself is not
                    # a call.
                    if "DMASIM_BARRIER_ONLY" in line:
                        continue
                    report(index, "barrier-only-in-window",
                           f"call of barrier-only method '{name}' from a "
                           f"window-context function; barrier-only state "
                           f"may only be touched by the coordinator "
                           f"between windows")
    return findings


def in_scope(rel_path: str) -> bool:
    return (rel_path.endswith((".h", ".cc"))
            and any(rel_path.startswith(p) for p in SCOPE_PREFIXES))


def scan(root: pathlib.Path) -> List[Finding]:
    texts: dict = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        if in_scope(rel):
            texts[rel] = path.read_text(encoding="utf-8")
    if not texts:
        raise SystemExit(f"shardcheck: nothing in scope under {root}")
    stripped = {rel: dmasim_lint.strip_comments_and_strings(t)
                for rel, t in texts.items()}
    barrier_methods = collect_barrier_methods(stripped)
    findings: List[Finding] = []
    for rel in sorted(texts):
        findings.extend(check_file(rel, texts[rel], barrier_methods))
    return findings


def print_findings(findings: Iterable[Finding], fmt: str = "text") -> None:
    for f in findings:
        if fmt == "github":
            print(f"::error file={f.path},line={f.line},"
                  f"title=shardcheck [{f.rule}]::{f.message}")
        else:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")


def self_test(fixtures_root: pathlib.Path) -> int:
    expected: Set[Tuple[str, int, str]] = set()
    for path in sorted(fixtures_root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(fixtures_root).as_posix()
        if not in_scope(rel):
            continue
        for index, line in enumerate(path.read_text().splitlines()):
            for match in EXPECT_RE.finditer(line):
                expected.add((rel, index + 1, match.group(1)))

    actual = {(f.path, f.line, f.rule) for f in scan(fixtures_root)}
    missing = expected - actual
    surplus = actual - expected
    for rel, line, rule in sorted(missing):
        print(f"self-test: {rel}:{line}: expected [{rule}], not reported")
    for rel, line, rule in sorted(surplus):
        print(f"self-test: {rel}:{line}: unexpected [{rule}]")
    if missing or surplus:
        return 2
    print(f"self-test: ok ({len(expected)} expected findings, "
          f"all reported, no extras)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against "
                             "tools/lint/fixtures/shardcheck")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format; 'github' emits "
                             "::error workflow commands that annotate PRs")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent /
                         "fixtures" / "shardcheck")

    findings = scan(args.root)
    print_findings(findings, args.format)
    if findings:
        print(f"shardcheck: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
