#!/usr/bin/env python3
"""Repo-specific static checks for dmasim.

Enforces the invariants the simulator's performance and determinism story
rests on, which generic linters cannot know about:

  std-function        No std::function in the hot-path directories
                      (src/sim, src/mem, src/io, src/core): the event
                      kernel and chunk pipeline are allocation-free by
                      design; callbacks use InlineFunction/TrivialCallback.
  heap-alloc          No heap allocation (new, make_unique/make_shared,
                      malloc/calloc/realloc) in the hot-path directories.
                      Placement new is allowed (slab/SBO construction).
                      One-time construction sites carry suppressions.
  unordered-iteration Iterating an unordered container produces
                      implementation-defined order; unless the results
                      are sorted (or order-independent) before use, run
                      results silently stop being deterministic.
  float-energy        Energy accounting uses double + integer ticks
                      everywhere; a single float truncation breaks the
                      auditor's bit-exact shadow accounting. Also flags
                      a conditional whose arms mix dimensions (an
                      energy value vs a power value): both are raw
                      doubles, so the mix compiles clean and corrupts
                      the accounting by a factor of the elapsed time.
  counter-narrowing   No static_cast of tick/energy expressions to an
                      integer type narrower than 64 bits in the hot-path
                      directories: ticks are int64 picoseconds, so a
                      32-bit truncation wraps after ~2 ms of simulated
                      time and corrupts every derived statistic.
  float-compare       No ==/!= against floating-point literals in the
                      hot-path directories; after arithmetic, exact
                      equality is a latent heisenbug. Compare against an
                      epsilon or restructure to integer ticks.
  nondeterminism-source
                      No std::random_device, wall clocks (time(),
                      chrono::system_clock/steady_clock/high_resolution_
                      clock), rand(), or pointer-keyed map/set in the
                      hot-path directories: anything that varies across
                      runs (entropy, wall time, ASLR-dependent pointer
                      order) breaks the N-thread == 1-thread bit-identity
                      contract (DESIGN.md section 15). Seeded
                      util/random.h PRNGs and integer sim ticks are the
                      deterministic substitutes.
  header-guard        Guards follow DMASIM_<DIR>_<FILE>_H_.

A finding can be waived with a comment on the same or preceding line:

    // dmasim-lint: allow(<rule>)  -- why this site is fine

Exit status: 0 clean, 1 findings, 2 bad invocation / self-test failure.
`--self-test` runs the linter over tools/lint/fixtures and verifies every
expected finding (and nothing else) is produced, so a rule that silently
stops matching fails CI instead of rotting.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

HOT_PATH_DIRS = ("src/sim", "src/mem", "src/io", "src/core", "src/mon")

SUPPRESS_RE = re.compile(r"//.*?dmasim-lint:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+)")

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\b")
# A new-expression that is not placement new: `new Foo`, `new (std::nothrow)`
# is also flagged (still a heap allocation), but `new (address) Foo` --
# placement new on slab/SBO storage -- is the allocation-free idiom and
# passes. Distinguishing them: placement new is written `new (expr) Type`
# where expr is not std::nothrow; in this codebase placement new always
# appears as `::new (...)`, so plain `new` followed by `(` without the
# leading `::` is conservatively treated as placement only when spelled
# `::new`.
NEW_EXPR_RE = re.compile(r"(?<![:\w])new\s+[(\w:]")
PLACEMENT_NEW_RE = re.compile(r"::\s*new\s*\(")
MAKE_HEAP_RE = re.compile(r"\bstd\s*::\s*make_(?:unique|shared)\b")
C_ALLOC_RE = re.compile(r"\b(?:malloc|calloc|realloc)\s*\(")
FLOAT_RE = re.compile(r"\bfloat\b")
# A conditional whose arms mix unit dimensions: one arm an energy value
# (joules), the other a power value (milliwatts). Both arms are raw
# doubles, so `cond ? joules : mw` compiles clean and corrupts the
# energy accounting by a factor of the elapsed time; the bare `float`
# keyword check cannot see it. Arm spans are heuristic (single line, up
# to the next `;`/`,`/`)`), which covers the repo's expression style.
TERNARY_ARMS_RE = re.compile(r"\?\s*([^:?]+?)\s*:\s*([^;,)]+)")
ENERGY_ARM_RE = re.compile(r"\b\w*(?:joules?|_j)\b")
POWER_ARM_RE = re.compile(r"\b\w*(?:_mw|milliwatts?)\b")
UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<.*?>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*(\w+)\s*\)")
# static_cast to an integer type narrower than 64 bits. The opening paren
# is included so the balanced argument can be extracted and inspected.
NARROW_CAST_RE = re.compile(
    r"\bstatic_cast\s*<\s*(?:std\s*::\s*)?"
    r"(?:int|unsigned(?:\s+int)?|short|u?int(?:8|16|32)_t)\s*>\s*\(")
# Identifiers that mark a cast argument as a 64-bit tick or energy
# counter. Heuristic by design: names follow the repo's conventions
# (Tick-typed locals/members, *_at timestamps, joules/energy doubles).
TICK_ENERGY_TOKEN_RE = re.compile(
    r"\b(?:Tick|[Nn]ow|ticks?|deadline\w*|duration\w*|elapsed\w*|"
    r"epoch\w*|\w+_at\b|joules\w*|energy\w*|residency\w*)")
# A floating-point literal: 1.0, .5, 2.5e3, 1e-9, with optional f suffix.
_FLOAT_LITERAL = r"(?:(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)f?"
FLOAT_COMPARE_RE = re.compile(
    rf"(?:{_FLOAT_LITERAL})\s*(?:==|!=)(?!=)|(?:==|!=)\s*[-+]?{_FLOAT_LITERAL}")
RANDOM_DEVICE_RE = re.compile(r"\bstd\s*::\s*random_device\b")
WALL_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*"
    r"(?:system_clock|steady_clock|high_resolution_clock)\b")
# A call of the C `time()` function: either `std::time(` or a bare
# `time(` not preceded by a word character, member access, or `::`
# (so `deliver_time(...)`, `obj.time()`, and `Sim::time()` don't match).
TIME_CALL_RE = re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))time\s*\(")
RAND_CALL_RE = re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))s?rand\s*\(")
# A map/set keyed by a pointer type: iteration order depends on ASLR.
POINTER_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?(?:map|multimap)\s*<\s*[\w:<> ]*?\*\s*,"
    r"|\bstd\s*::\s*(?:unordered_)?(?:set|multiset)\s*<\s*[\w:<> ]*?\*\s*>")


class Finding(NamedTuple):
    path: str  # Relative to the scanned root, POSIX separators.
    line: int  # 1-based.
    rule: str
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines.

    Keeps line/column alignment so findings point at real source lines.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def suppressions_for(raw_lines: List[str]) -> List[Set[str]]:
    """Rules waived per line: an allow() covers its own and the next line."""
    waived: List[Set[str]] = [set() for _ in raw_lines]
    for index, line in enumerate(raw_lines):
        for match in SUPPRESS_RE.finditer(line):
            waived[index].add(match.group(1))
            if index + 1 < len(raw_lines):
                waived[index + 1].add(match.group(1))
    return waived


def in_hot_path(rel_path: str) -> bool:
    return any(rel_path.startswith(prefix + "/") for prefix in HOT_PATH_DIRS)


def balanced_argument(line: str, open_index: int) -> str:
    """The parenthesized argument starting at `open_index` ('(').

    Single-line only: an argument spilling to the next line is returned
    up to the line end, which is enough for the token heuristics.
    """
    depth = 0
    for i in range(open_index, len(line)):
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
            if depth == 0:
                return line[open_index + 1:i]
    return line[open_index + 1:]


def expected_guard(rel_path: str) -> str:
    # src/core/slack_account.h -> DMASIM_CORE_SLACK_ACCOUNT_H_
    parts = pathlib.PurePosixPath(rel_path).parts[1:]  # Drop leading src/.
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    return "DMASIM_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_file(rel_path: str, text: str) -> List[Finding]:
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    waived = suppressions_for(raw_lines)
    findings: List[Finding] = []

    def report(line_index: int, rule: str, message: str) -> None:
        if rule not in waived[line_index]:
            findings.append(Finding(rel_path, line_index + 1, rule, message))

    hot = in_hot_path(rel_path)
    unordered_names: Set[str] = set()

    for index, line in enumerate(code_lines):
        if hot:
            if STD_FUNCTION_RE.search(line):
                report(index, "std-function",
                       "std::function in a hot-path directory; use "
                       "InlineFunction/TrivialCallback (src/sim/"
                       "inline_function.h)")
            heap_hit = (MAKE_HEAP_RE.search(line) or C_ALLOC_RE.search(line))
            if not heap_hit and NEW_EXPR_RE.search(line):
                without_placement = PLACEMENT_NEW_RE.sub("        ", line)
                heap_hit = NEW_EXPR_RE.search(without_placement)
            if heap_hit:
                report(index, "heap-alloc",
                       "heap allocation in a hot-path directory; only "
                       "placement new on preallocated storage is "
                       "allocation-free")
            for match in NARROW_CAST_RE.finditer(line):
                argument = balanced_argument(line, match.end() - 1)
                # sizeof(Tick) is a size, not a counter value.
                argument = re.sub(r"\bsizeof\s*\([^)]*\)", "", argument)
                if TICK_ENERGY_TOKEN_RE.search(argument):
                    report(index, "counter-narrowing",
                           "static_cast of a tick/energy counter to a "
                           "<64-bit integer type; ticks are int64 "
                           "picoseconds and wrap a 32-bit value after "
                           "~2 ms of simulated time")
            if FLOAT_COMPARE_RE.search(line):
                report(index, "float-compare",
                       "==/!= against a floating-point literal in a "
                       "hot-path directory; compare with an epsilon or "
                       "use integer ticks")
            if RANDOM_DEVICE_RE.search(line):
                report(index, "nondeterminism-source",
                       "std::random_device draws real entropy; seed a "
                       "util/random.h PRNG from configuration instead")
            if WALL_CLOCK_RE.search(line):
                report(index, "nondeterminism-source",
                       "wall-clock reads vary across runs; simulation "
                       "state must be a function of integer sim ticks")
            if TIME_CALL_RE.search(line) or RAND_CALL_RE.search(line):
                report(index, "nondeterminism-source",
                       "C time()/rand() in a hot-path directory; use sim "
                       "ticks and seeded util/random.h PRNGs")
            if POINTER_KEY_RE.search(line):
                report(index, "nondeterminism-source",
                       "pointer-keyed map/set iterates in ASLR-dependent "
                       "address order; key by a stable id instead")
        if FLOAT_RE.search(line):
            report(index, "float-energy",
                   "float arithmetic; energy accounting is double + "
                   "integer ticks end to end")
        for match in TERNARY_ARMS_RE.finditer(line):
            arm_a, arm_b = match.group(1), match.group(2)
            a_energy = bool(ENERGY_ARM_RE.search(arm_a))
            b_energy = bool(ENERGY_ARM_RE.search(arm_b))
            a_power = bool(POWER_ARM_RE.search(arm_a))
            b_power = bool(POWER_ARM_RE.search(arm_b))
            if ((a_energy and not a_power and b_power and not b_energy)
                    or (b_energy and not b_power
                        and a_power and not a_energy)):
                report(index, "float-energy",
                       "conditional mixes an energy arm with a power "
                       "arm; both are raw doubles so the dimension slip "
                       "compiles clean -- convert with EnergyOver "
                       "(util/units.h) first")
        for match in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(match.group(1))
        for match in RANGE_FOR_RE.finditer(line):
            if match.group(1) in unordered_names:
                report(index, "unordered-iteration",
                       f"iteration over unordered container "
                       f"'{match.group(1)}' has implementation-defined "
                       f"order; sort before consuming or justify with a "
                       f"suppression")

    if rel_path.endswith(".h"):
        guard = expected_guard(rel_path)
        guard_line = next(
            (i for i, line in enumerate(code_lines)
             if line.strip().startswith("#ifndef")), None)
        if guard_line is None:
            report(0, "header-guard", f"missing include guard {guard}")
        else:
            tokens = code_lines[guard_line].split()
            actual = tokens[1] if len(tokens) > 1 else ""
            if actual != guard:
                report(guard_line, "header-guard",
                       f"guard is '{actual}', expected '{guard}'")

    return findings


def scan(root: pathlib.Path) -> List[Finding]:
    findings: List[Finding] = []
    src = root / "src"
    if not src.is_dir():
        raise SystemExit(f"dmasim_lint: no src/ under {root}")
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(check_file(rel, path.read_text(encoding="utf-8")))
    return findings


def print_findings(findings: Iterable[Finding], fmt: str = "text") -> None:
    for f in findings:
        if fmt == "github":
            # GitHub Actions workflow command: annotates the PR diff line.
            print(f"::error file={f.path},line={f.line},"
                  f"title=dmasim-lint [{f.rule}]::{f.message}")
        else:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")


def self_test(fixtures_root: pathlib.Path) -> int:
    """Every `// expect-lint: rule` annotation must match one finding."""
    expected: Set[Tuple[str, int, str]] = set()
    for path in sorted((fixtures_root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(fixtures_root).as_posix()
        for index, line in enumerate(path.read_text().splitlines()):
            for match in EXPECT_RE.finditer(line):
                expected.add((rel, index + 1, match.group(1)))

    actual = {(f.path, f.line, f.rule) for f in scan(fixtures_root)}
    missing = expected - actual
    surplus = actual - expected
    for rel, line, rule in sorted(missing):
        print(f"self-test: {rel}:{line}: expected [{rule}], not reported")
    for rel, line, rule in sorted(surplus):
        print(f"self-test: {rel}:{line}: unexpected [{rule}]")
    if missing or surplus:
        return 2
    print(f"self-test: ok ({len(expected)} expected findings, "
          f"all reported, no extras)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tools/lint/fixtures")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format; 'github' emits "
                             "::error workflow commands that annotate PRs")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent / "fixtures")

    findings = scan(args.root)
    print_findings(findings, args.format)
    if findings:
        print(f"dmasim_lint: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
