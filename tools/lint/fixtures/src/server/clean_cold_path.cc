// Fixture: outside the hot-path directories (src/sim, src/mem, src/io,
// src/core) heap allocation and std::function are allowed -- this file
// must produce no findings.
#include <functional>
#include <memory>

namespace dmasim {

struct ColdPath {
  std::function<void()> on_done;
};

void Build() {
  auto cold = std::make_unique<ColdPath>();
  cold->on_done = []() {};
  (void)cold;
}

}  // namespace dmasim
