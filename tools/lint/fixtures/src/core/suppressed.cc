// Fixture: suppression comments waive a rule on their own line or the
// line below; everything else still reports.
#include <memory>

namespace dmasim {

void Construct() {
  // One-time construction outside the simulated hot loop.
  auto first = std::make_unique<int>(1);  // dmasim-lint: allow(heap-alloc)
  // dmasim-lint: allow(heap-alloc) -- covers the next line too.
  auto second = std::make_unique<int>(2);
  auto third = std::make_unique<int>(3);  // expect-lint: heap-alloc
  (void)first;
  (void)second;
  (void)third;
}

}  // namespace dmasim
