// Fixture: counter-narrowing -- static_cast of tick/energy counters to
// <64-bit integer types in a hot-path directory.
#include <cstdint>

namespace dmasim {

using Tick = std::int64_t;

struct NarrowCounters {
  Tick now = 0;
  Tick deadline = 0;
  Tick gated_at = 0;
  double energy_joules = 0.0;
  int chips = 4;

  void Truncate() {
    int a = static_cast<int>(now);                      // expect-lint: counter-narrowing
    auto b = static_cast<std::uint32_t>(deadline);      // expect-lint: counter-narrowing
    auto c = static_cast<std::int32_t>(now - gated_at); // expect-lint: counter-narrowing
    short d = static_cast<short>(energy_joules);        // expect-lint: counter-narrowing
    (void)a; (void)b; (void)c; (void)d;
  }

  void Fine() {
    // Widening a tick keeps all 64 bits.
    auto wide = static_cast<std::uint64_t>(now);
    // Narrowing something that is not a tick/energy counter is out of
    // scope for this rule (sizes, enum values, chip indices).
    int count = static_cast<int>(sizeof(Tick));
    int chip = static_cast<int>(chips + 1);
    // A waived truncation documents why the low bits suffice.
    auto lsb = static_cast<std::uint32_t>(now);  // dmasim-lint: allow(counter-narrowing)
    (void)wide; (void)count; (void)chip; (void)lsb;
  }
};

}  // namespace dmasim
