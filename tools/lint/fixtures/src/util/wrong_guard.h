// Fixture: the include guard must be derived from the path
// (src/util/wrong_guard.h -> DMASIM_UTIL_WRONG_GUARD_H_).
#ifndef DMASIM_WRONG_NAME_H_  // expect-lint: header-guard
#define DMASIM_WRONG_NAME_H_

namespace dmasim {}

#endif  // DMASIM_WRONG_NAME_H_
