// Fixture: float-compare -- exact ==/!= against floating-point literals
// in a hot-path directory.
#include <cmath>

namespace dmasim {

struct FloatCompare {
  double slack = 0.0;
  double mu = 1.0;

  bool Bad() {
    bool exhausted = (slack == 0.0);          // expect-lint: float-compare
    bool unit = (mu != 1.0);                  // expect-lint: float-compare
    bool sci = (slack == 1e-9);               // expect-lint: float-compare
    bool flipped = (2.5 == mu);               // expect-lint: float-compare
    return exhausted || unit || sci || flipped;
  }

  bool Fine() {
    // Epsilon comparisons and ordering comparisons are the idiom.
    bool near_zero = std::fabs(slack) < 1e-9;
    bool depleted = slack <= 0.0;
    // Integer equality is untouched by this rule.
    bool two = (static_cast<long long>(mu) == 2);
    // A waived exact compare documents why the value is bit-stable.
    bool exact = (mu == 0.0);  // dmasim-lint: allow(float-compare)
    return near_zero || depleted || two || exact;
  }
};

}  // namespace dmasim
