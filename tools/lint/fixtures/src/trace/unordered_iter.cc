// Fixture: iterating an unordered container is flagged unless waived
// (the waiver documents why the consumption is order-independent).
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dmasim {

std::uint64_t SumCounts(
    const std::unordered_map<std::uint64_t, std::uint64_t>& input) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts = input;
  std::uint64_t total = 0;
  for (const auto& entry : counts) {  // expect-lint: unordered-iteration
    total += entry.second;
  }

  std::vector<std::uint64_t> sorted;
  // dmasim-lint: allow(unordered-iteration) -- sorted before consumption.
  for (const auto& entry : counts) {
    sorted.push_back(entry.second);
  }
  std::sort(sorted.begin(), sorted.end());

  // Iterating an ordinary vector is fine.
  for (const std::uint64_t value : sorted) {
    total += value;
  }
  return total;
}

}  // namespace dmasim
