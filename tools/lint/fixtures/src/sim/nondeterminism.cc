// Fixture: every run-to-run-varying construct the nondeterminism-source
// rule must flag in a hot-path directory, plus the idioms it must not.
#include <chrono>
#include <ctime>
#include <map>
#include <random>
#include <set>

namespace dmasim {

unsigned SeedFromEntropy() {
  std::random_device device;  // expect-lint: nondeterminism-source
  return device();
}

long WallClockNow() {
  auto t = std::chrono::system_clock::now();  // expect-lint: nondeterminism-source
  (void)t;
  auto s = std::chrono::steady_clock::now();  // expect-lint: nondeterminism-source
  (void)s;
  return std::time(nullptr);  // expect-lint: nondeterminism-source
}

int DiceRoll() {
  return rand() % 6;  // expect-lint: nondeterminism-source
}

struct Chip {};

void PointerKeyedContainers() {
  std::map<Chip*, int> by_address;  // expect-lint: nondeterminism-source
  std::set<const Chip*> members;  // expect-lint: nondeterminism-source
  (void)by_address;
  (void)members;
}

// Must NOT be flagged: a member or suffixed function named *time(, and
// maps keyed by stable integer ids.
struct Timeline {
  long deliver_time(int) { return 0; }
};
long Clean(Timeline& tl) {
  std::map<int, Chip*> by_id;  // Pointer value, stable key: fine.
  (void)by_id;
  return tl.deliver_time(0);
}

// A justified site can be waived like any other rule.
long Waived() {
  // dmasim-lint: allow(nondeterminism-source) -- fixture waiver example
  return std::time(nullptr);
}

}  // namespace dmasim
