// Fixture: hot-path allocation bans (std-function, heap-alloc).
#ifndef DMASIM_SIM_BAD_CALLBACKS_H_
#define DMASIM_SIM_BAD_CALLBACKS_H_

#include <cstdlib>
#include <functional>
#include <memory>

namespace dmasim {

struct BadCallbacks {
  std::function<void()> callback;  // expect-lint: std-function

  void Allocate() {
    auto owned = std::make_unique<int>(3);    // expect-lint: heap-alloc
    auto shared = std::make_shared<int>(4);   // expect-lint: heap-alloc
    int* raw = new int(5);                    // expect-lint: heap-alloc
    void* c_style = std::malloc(16);          // expect-lint: heap-alloc
    delete raw;
    std::free(c_style);
    (void)owned;
    (void)shared;
  }

  // Placement new constructs into preallocated storage -- allocation-free
  // and allowed.
  void PlacementIsFine() {
    alignas(int) unsigned char storage[sizeof(int)];
    int* value = ::new (static_cast<void*>(storage)) int(7);
    (void)value;
  }

  // A comment mentioning std::function or new expressions must not trip
  // the rules; neither must the string "std::function" or "new Thing".
};

}  // namespace dmasim

#endif  // DMASIM_SIM_BAD_CALLBACKS_H_
