// Fixture: float is banned everywhere in src/ (energy accounting is
// double + integer ticks end to end).
namespace dmasim {

double Accumulate(double joules) {
  float truncated = static_cast<float>(joules);  // expect-lint: float-energy
  return static_cast<double>(truncated);
}

}  // namespace dmasim
