// Fixture: float is banned everywhere in src/ (energy accounting is
// double + integer ticks end to end).
namespace dmasim {

double Accumulate(double joules) {
  float truncated = static_cast<float>(joules);  // expect-lint: float-energy
  return static_cast<double>(truncated);
}

// A unit-mixed conditional: both arms are doubles, so picking a power
// where an energy is expected compiles clean. The plain `float` keyword
// regex misses it; the ternary-arm check must not.
double Select(bool use_cap, double cap_joules, double state_mw) {
  return use_cap ? cap_joules : state_mw;  // expect-lint: float-energy
}

// Same-dimension conditionals are fine: no finding.
double Pick(bool hi, double peak_joules, double idle_joules) {
  return hi ? peak_joules : idle_joules;
}

}  // namespace dmasim
