// Fixture: unannotated-member — mutable class state in the engine
// surface must declare its shard ownership.
#ifndef DMASIM_SIM_BAD_MEMBERS_H_
#define DMASIM_SIM_BAD_MEMBERS_H_

#include <cstdint>
#include <vector>

namespace dmasim {

class LeakyShardState {
 public:
  int shard_count() const { return shard_count_; }

 private:
  int shard_count_ = 0;  // expect-shardcheck: unannotated-member
  std::vector<std::uint64_t> digests_;  // expect-shardcheck: unannotated-member
  DMASIM_SHARD_LOCAL std::uint64_t owned_counter_ = 0;  // Annotated: fine.
  DMASIM_BARRIER_ONLY bool running_ = false;            // Annotated: fine.
  DMASIM_SHARED_CONST int lanes_ = 4;                   // Annotated: fine.
  static constexpr int kLimit = 8;  // Immutable: no annotation needed.
  // shardcheck: allow(unannotated-member) -- justified single waiver
  int waived_member_ = 0;
};

// shardcheck: allow(unannotated-member) -- POD value type, whole-class
// waiver on the head line.
struct PlainMessageValue {
  std::uint64_t payload = 0;
  std::uint32_t tag = 0;
};

}  // namespace dmasim

#endif  // DMASIM_SIM_BAD_MEMBERS_H_
