// Fixture: barrier-only-in-window — a worker-context function calling a
// coordinator-only method, and global-mutable-state at namespace scope.
#include <cstdint>
#include <vector>

namespace dmasim {

std::uint64_t g_window_count = 0;  // expect-shardcheck: global-mutable-state
static int g_scratch[4];  // expect-shardcheck: global-mutable-state
constexpr int kLanes = 4;               // Immutable: fine.
const char* const kName = "fixture";    // Immutable: fine.

class FixtureEngine {
 public:
  // shardcheck: window-context
  void RunWindow(int shard) {
    ++events_;
    DrainOutboxes(shard);  // expect-shardcheck: barrier-only-in-window
  }

  // Not marked window-context: calling the barrier-only method from the
  // coordinator between windows is the intended use.
  void Barrier() { DrainOutboxes(0); }

 private:
  DMASIM_BARRIER_ONLY void DrainOutboxes(int shard) { (void)shard; }
  DMASIM_SHARD_LOCAL std::uint64_t events_ = 0;
};

}  // namespace dmasim
