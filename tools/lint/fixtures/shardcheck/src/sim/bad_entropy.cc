// Fixture: nondeterminism-source — run-to-run-varying constructs inside
// the engine surface.
#include <chrono>
#include <map>
#include <random>

namespace dmasim {

struct Shard;

unsigned FixtureSeed() {
  std::random_device entropy;  // expect-shardcheck: nondeterminism-source
  return entropy();
}

long FixtureClock() {
  auto t = std::chrono::system_clock::now();  // expect-shardcheck: nondeterminism-source
  (void)t;
  return 0;
}

void FixturePointerKeys() {
  std::map<Shard*, int> by_address;  // expect-shardcheck: nondeterminism-source
  (void)by_address;
}

}  // namespace dmasim
