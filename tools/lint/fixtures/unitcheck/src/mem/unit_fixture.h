// Fixture for unitcheck --self-test: every line that must be flagged
// carries `// expect-unitcheck: <rule>`; everything else must stay
// silent. Nothing here is compiled.
#ifndef DMASIM_FIXTURE_MEM_UNIT_FIXTURE_H_
#define DMASIM_FIXTURE_MEM_UNIT_FIXTURE_H_

namespace dmasim {

// --- raw-unit-param ------------------------------------------------------
void AccountPower(double state_mw, int chip);      // expect-unitcheck: raw-unit-param
void AddEnergy(double joules);                     // expect-unitcheck: raw-unit-param
void Integrate(int chip, const double total_j,     // expect-unitcheck: raw-unit-param
               bool final);
void Wake(Tick wake_latency, Tick now);            // expect-unitcheck: raw-unit-param
void Step(Tick transition_duration = 0);           // expect-unitcheck: raw-unit-param

// Absolute timestamps stay raw Tick: not findings.
void ScheduleAt(Tick when, int chip);
void OnEpoch(Tick now, Tick deadline);
// Dimensionless doubles are not findings.
void Scale(double mu, double fraction);
// A typed signature is the fixed form: not a finding.
void AccountPowerTyped(MilliwattPower power, Ticks duration);
// Waived edge: trace parsing hands over a raw value.
void ParseEnergyColumn(double joules);  // unitcheck: allow(raw-unit-param)
// The dmasim-lint spelling waives too (shared-edge comment).
// dmasim-lint: allow(raw-unit-param) -- JSON boundary, audited.
void SerializeEnergy(double joules);

// --- raw-unit-decl -------------------------------------------------------
struct FixtureState {
  double idle_energy_joules = 0.0;  // expect-unitcheck: raw-unit-decl
  double wake_mw;                   // expect-unitcheck: raw-unit-decl
  // Table 1 calibration literal: the audited raw edge, waived.
  double active_mw = 300.0;  // unitcheck: allow(raw-unit-decl)
  // Typed members are the fixed form.
  JoulesEnergy total;
  double utilization = 0.0;  // Dimensionless: not a finding.
};

inline double Drift() {
  double accumulated_joules = 0.0;  // expect-unitcheck: raw-unit-decl
  static double peak_watts;         // expect-unitcheck: raw-unit-decl
  return accumulated_joules + peak_watts;
}

// --- unit-literal-conversion ---------------------------------------------
inline double BadEnergy(double mw, double seconds_d) {
  return mw * 1e-3 * seconds_d;  // expect-unitcheck: unit-literal-conversion
}
inline double BadMillijoules(double joules_d) {
  return joules_d * 1e3;  // expect-unitcheck: unit-literal-conversion
}
inline double BadPicoseconds(double seconds_d) {
  return 1e12 * seconds_d;  // expect-unitcheck: unit-literal-conversion
}
inline double BadSeconds(double ticks_d) {
  return ticks_d / 1.0e12;  // expect-unitcheck: unit-literal-conversion
}
// Additive epsilons and tolerances are not conversions: no findings.
inline bool Near(double a, double b) {
  return a - b < 1e-12 && b - a < 1e-12;
}
inline double Clamp(double x) { return x < 1e-12 ? 1e-12 : x; }
// Waived formatting edge (J -> mJ in a report column).
inline double ReportMillijoules(double j) {
  return j * 1e3;  // unitcheck: allow(unit-literal-conversion)
}

}  // namespace dmasim

#endif  // DMASIM_FIXTURE_MEM_UNIT_FIXTURE_H_
