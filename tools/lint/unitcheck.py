#!/usr/bin/env python3
"""Unit-dimension static analysis for the quantity types (DESIGN.md §17).

src/util/units.h gives every dimensioned quantity the simulator trades
in — picosecond durations, milliwatt powers, joule energies, byte
counts, byte/s rates — a zero-overhead strong type, and confines the
cross-dimension math to four named conversions (EnergyOver, SecondsOf,
TicksOf, TransferDuration). The compiler enforces the types where they
are *used*; this pass enforces that the hot layers keep *using* them
instead of quietly reverting to bare `double`s:

  raw-unit-param          A function parameter of raw `double` (or raw
                          `Tick`) whose name carries a unit suffix
                          (`_mw`, `joules`, `_watts`, `_seconds`,
                          `duration`, `latency`) in scope. The name
                          says the value is dimensioned, so the
                          signature must say it too: take
                          MilliwattPower / JoulesEnergy / Seconds /
                          Ticks and the mixup becomes a compile error.
  raw-unit-decl           A `double` variable or member declaration
                          named like an energy or power quantity.
                          Accumulating joules in a bare double skips
                          the dimension check on every `+=` that feeds
                          it. Audited raw edges (the Table 1
                          calibration literals, JSON serialization)
                          carry explicit waivers.
  unit-literal-conversion Multiplicative use of a unit conversion
                          factor (1e-3 mW->W, 1e3 J->mJ, 1e12 /
                          1e-12 s<->ps) outside src/util/units.h and
                          src/util/time.h. Inline factors re-derive
                          what the named conversions already pin
                          bit-for-bit; a transposed exponent here is
                          exactly the bug class the types exist to
                          kill. Additive epsilons (`x + 1e-12`) and
                          comparison tolerances do not match: only a
                          factor adjacent to `*` or `/` is flagged.

Known limitations (deliberate -- the pass is line-based, not a parser):
a parameter list spanning lines is inspected line by line, so a unit
name on a continuation line is still caught but its enclosing function
is not identified; template arguments containing commas can make a
member declaration look like a parameter (none in scope today).

Waivers: `// unitcheck: allow(<rule>)` on the finding line or the line
before; the dmasim-lint spelling `// dmasim-lint: allow(<rule>)` is
accepted too so one comment can waive both passes at a shared edge.

Exit status: 0 clean, 1 findings, 2 bad invocation / self-test failure.
`--self-test` runs the pass over tools/lint/fixtures/unitcheck and
verifies every `// expect-unitcheck: rule` annotation (and nothing
else) is produced.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import dmasim_lint  # noqa: E402  (shared comment/string stripper)

# Layers migrated onto the quantity types. Relative-path prefixes,
# POSIX separators. src/util, src/io, and src/trace stay out of scope:
# units.h/time.h define the conversions, and the I/O + trace-parsing
# edges are raw by design (documented in DESIGN.md §17).
SCOPE_PREFIXES = ("src/mem/", "src/core/", "src/sim/", "src/stats/",
                  "src/audit/", "src/mon/", "src/server/", "src/exp/")

# Files allowed to spell conversion factors: they *define* the
# conversions everything else must route through.
CONVERSION_HOME = ("src/util/units.h", "src/util/time.h")

SUPPRESS_RE = re.compile(
    r"//.*?(?:unitcheck|dmasim-lint):\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"//\s*expect-unitcheck:\s*([a-z-]+)")

# A unit-suffixed name: the repo's conventions for dimensioned doubles
# (Table 1 uses *_mw; energies are *joules* / *_j; report edges use
# *_seconds / *_watts).
UNIT_NAME = r"\w*(?:_mw|_milliwatts?|joules?|_j|_watts?|_seconds?)\b"
DURATION_NAME = r"\w*(?:duration|latency)\w*"

# A raw-double parameter with a unit-suffixed name: `(double x_mw,` /
# `, double joules)` / `(double total_joules = 0.0)`.
RAW_DOUBLE_PARAM_RE = re.compile(
    rf"[(,]\s*(?:const\s+)?double\s+({UNIT_NAME})\s*[,)=]")
# A raw-Tick parameter named as a duration: absolute timestamps stay
# `Tick` (names like now/when/deadline/at), but a `Tick duration` or
# `Tick wake_latency` is a span and must be `Ticks`.
RAW_TICK_PARAM_RE = re.compile(
    rf"[(,]\s*(?:const\s+)?Tick\s+({DURATION_NAME})\s*[,)=]")

# A `double` variable/member declaration named like an energy or power
# quantity. Parameters are the other rule's job: a declaration line
# starts at the line head (optional const/static), ends in `;` or `=`.
RAW_UNIT_DECL_RE = re.compile(
    rf"^\s*(?:static\s+|constexpr\s+|const\s+)*double\s+"
    rf"({UNIT_NAME})\s*(?:=|;|\{{)")

# A unit conversion factor used multiplicatively. 1e-3 (mW->W),
# 1e3 (J->mJ, GB->B prefixes), 1e12/1e-12 (s<->ps). Adjacency to * or /
# distinguishes a conversion from an additive epsilon or tolerance.
CONVERSION_FACTOR = r"1(?:\.0*)?[eE][-+]?(?:3|12)\b"
CONVERSION_MUL_RE = re.compile(
    rf"[*/]\s*{CONVERSION_FACTOR}|{CONVERSION_FACTOR}\s*[*/]")


class Finding(NamedTuple):
    path: str  # Relative to the scanned root, POSIX separators.
    line: int  # 1-based.
    rule: str
    message: str


def suppressions_for(raw_lines: List[str]) -> List[Set[str]]:
    """Rules waived per line: an allow() covers its own and the next line."""
    waived: List[Set[str]] = [set() for _ in raw_lines]
    for index, line in enumerate(raw_lines):
        for match in SUPPRESS_RE.finditer(line):
            waived[index].add(match.group(1))
            if index + 1 < len(raw_lines):
                waived[index + 1].add(match.group(1))
    return waived


def check_file(rel_path: str, text: str) -> List[Finding]:
    raw_lines = text.splitlines()
    code_lines = dmasim_lint.strip_comments_and_strings(text).splitlines()
    waived = suppressions_for(raw_lines)
    findings: List[Finding] = []

    def report(line_index: int, rule: str, message: str) -> None:
        if rule not in waived[line_index]:
            findings.append(Finding(rel_path, line_index + 1, rule, message))

    for index, line in enumerate(code_lines):
        for match in RAW_DOUBLE_PARAM_RE.finditer(line):
            report(index, "raw-unit-param",
                   f"raw double parameter '{match.group(1)}' carries a "
                   f"unit in its name; take MilliwattPower / "
                   f"JoulesEnergy / Seconds (util/units.h) so a "
                   f"dimension mixup fails to compile")
        for match in RAW_TICK_PARAM_RE.finditer(line):
            report(index, "raw-unit-param",
                   f"raw Tick parameter '{match.group(1)}' is a "
                   f"duration; take Ticks (util/units.h) -- absolute "
                   f"calendar timestamps are the only raw-Tick edge")
        for match in RAW_UNIT_DECL_RE.finditer(line):
            report(index, "raw-unit-decl",
                   f"raw double '{match.group(1)}' holds a dimensioned "
                   f"quantity; declare it JoulesEnergy / MilliwattPower "
                   f"(util/units.h), or waive an audited raw edge")
        if CONVERSION_MUL_RE.search(line):
            report(index, "unit-literal-conversion",
                   "inline unit conversion factor; route through the "
                   "named conversions in util/units.h (EnergyOver, "
                   "SecondsOf, TicksOf, TransferDuration) so the "
                   "double-precision result stays pinned in one place")

    return findings


def in_scope(rel_path: str) -> bool:
    return (rel_path.endswith((".h", ".cc"))
            and rel_path not in CONVERSION_HOME
            and any(rel_path.startswith(p) for p in SCOPE_PREFIXES))


def scan(root: pathlib.Path) -> List[Finding]:
    findings: List[Finding] = []
    seen = False
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        if not in_scope(rel):
            continue
        seen = True
        findings.extend(check_file(rel, path.read_text(encoding="utf-8")))
    if not seen:
        raise SystemExit(f"unitcheck: nothing in scope under {root}")
    return findings


def print_findings(findings: Iterable[Finding], fmt: str = "text") -> None:
    for f in findings:
        if fmt == "github":
            print(f"::error file={f.path},line={f.line},"
                  f"title=unitcheck [{f.rule}]::{f.message}")
        else:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")


def self_test(fixtures_root: pathlib.Path) -> int:
    """Every `// expect-unitcheck: rule` must match exactly one finding."""
    expected: Set[Tuple[str, int, str]] = set()
    for path in sorted(fixtures_root.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(fixtures_root).as_posix()
        if not in_scope(rel):
            continue
        for index, line in enumerate(path.read_text().splitlines()):
            for match in EXPECT_RE.finditer(line):
                expected.add((rel, index + 1, match.group(1)))

    actual = {(f.path, f.line, f.rule) for f in scan(fixtures_root)}
    missing = expected - actual
    surplus = actual - expected
    for rel, line, rule in sorted(missing):
        print(f"self-test: {rel}:{line}: expected [{rule}], not reported")
    for rel, line, rule in sorted(surplus):
        print(f"self-test: {rel}:{line}: unexpected [{rule}]")
    if missing or surplus:
        return 2
    print(f"self-test: ok ({len(expected)} expected findings, "
          f"all reported, no extras)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against "
                             "tools/lint/fixtures/unitcheck")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format; 'github' emits "
                             "::error workflow commands that annotate PRs")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent /
                         "fixtures" / "unitcheck")

    findings = scan(args.root)
    print_findings(findings, args.format)
    if findings:
        print(f"unitcheck: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
