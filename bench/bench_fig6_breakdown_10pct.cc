// Regenerates Figure 6: energy breakdowns of baseline, DMA-TA, and
// DMA-TA-PL for OLTP-St at a 10% CP-Limit.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 6: energy breakdowns, OLTP-St, 10% CP-Limit",
      "Paper shapes to check: ActiveServing energy unchanged across\n"
      "schemes; ActiveIdleDma shrinks sharply under DMA-TA and further\n"
      "under DMA-TA-PL; transition energy decreases slightly; migration\n"
      "energy is more than offset by the idle-energy reduction.");

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = Scaled(500 * kMillisecond);
  SimulationOptions options;
  const auto base = RunBaseline(spec, options);
  const double mu = base.calibration.MuFor(0.10);
  const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
  const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));

  std::vector<std::string> headers = {"scheme", "total mJ"};
  for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
    headers.emplace_back(EnergyBucketName(static_cast<EnergyBucket>(bucket)));
  }
  TablePrinter table(headers);
  auto add = [&](const std::string& name, const SimulationResults& results) {
    std::vector<std::string> row = {
        name, TablePrinter::Num(results.energy.Total().joules() * 1e3, 2)};
    for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
      row.push_back(TablePrinter::Num(
          results.energy.Of(static_cast<EnergyBucket>(bucket)).joules() * 1e3,
          2));
    }
    table.AddRow(std::move(row));
  };
  add("baseline", base.baseline);
  add("DMA-TA", ta);
  add("DMA-TA-PL", tapl);
  table.Print(std::cout);

  std::cout << "\nchecks: serving energy within "
            << TablePrinter::Percent(
                   tapl.energy.Of(EnergyBucket::kActiveServing) /
                       base.baseline.energy.Of(EnergyBucket::kActiveServing) -
                   1.0)
            << " of baseline; ActiveIdleDma reduced by "
            << TablePrinter::Percent(
                   1.0 - tapl.energy.Of(EnergyBucket::kActiveIdleDma) /
                             base.baseline.energy.Of(
                                 EnergyBucket::kActiveIdleDma))
            << "; migration cost "
            << TablePrinter::Num(
                   tapl.energy.Of(EnergyBucket::kMigration).joules() * 1e3, 2)
            << " mJ vs idle saving "
            << TablePrinter::Num(
                   (base.baseline.energy.Of(EnergyBucket::kActiveIdleDma) -
                    tapl.energy.Of(EnergyBucket::kActiveIdleDma))
                           .joules() *
                       1e3,
                   2)
            << " mJ\n";
  return 0;
}
