// Google-benchmark coverage for the online access monitor: the
// wall-clock cost of a monitored end-to-end simulation against the
// unmonitored run (the host-side analogue of the simulated overhead
// fraction), plus microbenchmarks of the monitor's three hot paths --
// observation with sample-guided splits, the aggregation pass, and
// per-page materialization for the layout planner.
//
// Pass --artifact-out=PATH to additionally write a machine-readable JSON
// artifact (same shape as bench/baselines/BENCH_monitor.json) that the
// CI perf smoke job diffs against the committed baseline.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/json.h"

#include "mon/region_monitor.h"
#include "mon/scheme_parser.h"
#include "server/simulation_driver.h"
#include "trace/workloads.h"
#include "util/random.h"

namespace dmasim {
namespace {

SimulationOptions PlOptions() {
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 20.0;
  options.memory.dma.pl.enabled = true;
  return options;
}

std::vector<SchemeRule> DefaultRules() {
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "64 * 0 1 4 pin-cold\n"
      "* * 0 0 8 demote-chip\n");
  return schemes.rules;
}

void BM_EndToEndUnmonitored(benchmark::State& state) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  const SimulationOptions options = PlOptions();
  for (auto _ : state) {
    const SimulationResults results =
        RunTrace(trace, spec.miss_ratio, spec.duration, options, spec.name);
    benchmark::DoNotOptimize(results.energy.Total());
  }
}
BENCHMARK(BM_EndToEndUnmonitored)->Unit(benchmark::kMillisecond);

void BM_EndToEndMonitored(benchmark::State& state) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  SimulationOptions options = PlOptions();
  options.memory.monitor.enabled = true;
  options.memory.monitor.rules = DefaultRules();
  double overhead = 0.0;
  for (auto _ : state) {
    const SimulationResults results =
        RunTrace(trace, spec.miss_ratio, spec.duration, options, spec.name);
    benchmark::DoNotOptimize(results.energy.Total());
    overhead = results.monitor.overhead_fraction;
  }
  // The simulated monitoring cost, next to the host-side cost the timing
  // columns report (the ISSUE gate holds this below 1%).
  state.counters["simulated_overhead"] = overhead;
}
BENCHMARK(BM_EndToEndMonitored)->Unit(benchmark::kMillisecond);

// One probe's worth of work at a configured in-flight population:
// binary-search attribution plus any sample-guided split.
void BM_MonitorObserve(benchmark::State& state) {
  const int in_flight = static_cast<int>(state.range(0));
  MonitorConfig config;
  config.enabled = true;
  RegionMonitor monitor(config, /*pages=*/131072, /*chips=*/16);
  Rng rng(7);
  std::vector<std::uint64_t> pages;
  for (int i = 0; i < 4096; ++i) {
    pages.push_back(rng.NextBounded(131072));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    monitor.BeginProbe();
    for (int i = 0; i < in_flight; ++i) {
      const std::uint64_t page = pages[cursor++ % pages.size()];
      monitor.ObserveTransfer(page, static_cast<int>(page % 16));
    }
    benchmark::DoNotOptimize(monitor.regions().size());
  }
  state.SetItemsProcessed(state.iterations() * in_flight);
}
BENCHMARK(BM_MonitorObserve)->Arg(1)->Arg(16);

void BM_MonitorAggregate(benchmark::State& state) {
  MonitorConfig config;
  config.enabled = true;
  config.rules = DefaultRules();
  RegionMonitor monitor(config, /*pages=*/131072, /*chips=*/16);
  // Populate a realistic region map: enough samples to fill the budget.
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t page = rng.NextBounded(131072);
    monitor.ObserveTransfer(page, static_cast<int>(page % 16));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.Aggregate().size());
  }
}
BENCHMARK(BM_MonitorAggregate);

void BM_MonitorMaterialize(benchmark::State& state) {
  MonitorConfig config;
  config.enabled = true;
  config.rules = DefaultRules();
  RegionMonitor monitor(config, /*pages=*/131072, /*chips=*/16);
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t page = rng.NextBounded(131072);
    monitor.ObserveTransfer(page, static_cast<int>(page % 16));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.MaterializeCounts().size());
  }
}
BENCHMARK(BM_MonitorMaterialize);

// Console reporter that also collects per-iteration real times so the
// run can be dumped as a deterministic JSON artifact.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;  // Skip aggregates.
      if (run.error_occurred) continue;
      const double ns_per_iter =
          run.real_accumulated_time * 1e9 /
          static_cast<double>(run.iterations > 0 ? run.iterations : 1);
      entries_.emplace_back(run.benchmark_name(), ns_per_iter);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  Json Artifact() const {
    Json artifact = Json::Object();
    artifact.Set("artifact", "BENCH_monitor");
    artifact.Set("kernel",
                 "occupancy probes + sample-guided splits + density merge");
#ifdef NDEBUG
    artifact.Set("build_type", "Release");
#else
    artifact.Set("build_type", "Debug");
#endif
    Json benchmarks = Json::Array();
    for (const auto& [name, ns] : entries_) {
      Json entry = Json::Object();
      entry.Set("name", name);
      entry.Set("real_ns_per_iter", ns);
      benchmarks.Append(std::move(entry));
    }
    artifact.Set("benchmarks", std::move(benchmarks));
    return artifact;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace
}  // namespace dmasim

int main(int argc, char** argv) {
  std::string artifact_path;
  // Peel off --artifact-out before google-benchmark sees the arguments.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--artifact-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      artifact_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dmasim::ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!artifact_path.empty()) {
    std::ofstream out(artifact_path);
    if (!out) {
      std::fprintf(stderr, "cannot open artifact path: %s\n",
                   artifact_path.c_str());
      return 1;
    }
    out << reporter.Artifact().Dump() << "\n";
  }
  return 0;
}
