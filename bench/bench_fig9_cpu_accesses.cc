// Regenerates Figure 9: energy savings as a function of the number of
// processor accesses per DMA transfer, for Synthetic-Db.
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 9: savings vs CPU accesses per transfer, Synthetic-Db,"
      " 10% CP-Limit",
      "Paper shapes to check: savings drop as processor accesses consume\n"
      "the active-idle cycles the techniques target, but remain positive\n"
      "even at hundreds of accesses per transfer (OLTP-Db averages 233).");

  TablePrinter table({"CPU accesses/transfer", "DMA-TA", "DMA-TA-PL"});
  for (double accesses : std::vector<double>{0, 50, 100, 233, 400}) {
    WorkloadSpec spec =
        WithCpuAccessesPerTransfer(SyntheticDatabaseSpec(), accesses);
    spec.duration = Scaled(200 * kMillisecond);
    SimulationOptions options;
    options.server.request_compute_time = spec.request_compute_time;
    const auto base = RunBaseline(spec, options);
    const double mu = base.calibration.MuFor(0.10);
    const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
    const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));
    table.AddRow({TablePrinter::Num(accesses, 0),
                  TablePrinter::Percent(ta.EnergySavingsVs(base.baseline)),
                  TablePrinter::Percent(tapl.EnergySavingsVs(base.baseline))});
  }
  table.Print(std::cout);
  return 0;
}
