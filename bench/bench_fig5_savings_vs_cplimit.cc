// Regenerates Figure 5: memory energy savings over the baseline dynamic
// policy as a function of the client-perceived response-time degradation
// limit (CP-Limit), for DMA-TA alone and DMA-TA-PL with 2/3/6 popularity
// groups, on all four workloads.
//
// The whole figure is one declarative sweep: {4 workloads} x {DMA-TA,
// DMA-TA-PL(2/3/6)} x {5 CP-Limits}, executed in parallel by the
// experiment engine (baselines and mu calibration included).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/sweep_runner.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 5: energy savings vs CP-Limit",
      "Paper shapes to check: savings rise quickly up to ~10% CP-Limit and\n"
      "flatten beyond; DMA-TA-PL(2) beats DMA-TA; more groups do worse\n"
      "(6 groups can go negative); database workloads save less than\n"
      "storage workloads. Paper peak: 38.6% for OLTP-St at 10% CP-Limit\n"
      "with 2 groups.");

  const std::vector<double> cp_limits = {0.02, 0.05, 0.10, 0.20, 0.30};

  ExperimentSpec spec;
  spec.name = "fig5";
  spec.workloads = {OltpStorageSpec(), SyntheticStorageSpec(),
                    OltpDatabaseSpec(), SyntheticDatabaseSpec()};
  spec.workloads[0].duration = Scaled(500 * kMillisecond);
  spec.workloads[1].duration = Scaled(500 * kMillisecond);
  spec.workloads[2].duration = Scaled(150 * kMillisecond);
  spec.workloads[3].duration = Scaled(200 * kMillisecond);
  spec.schemes = {TaScheme(), TaPlScheme(2), TaPlScheme(3), TaPlScheme(6)};
  spec.cp_limits = cp_limits;

  SweepRunner runner;
  const SweepResults sweep = runner.Run(spec);

  const auto savings = [&](const WorkloadSpec& workload,
                           const SchemeSpec& scheme, double cp) {
    const RunRecord* record = sweep.Find(workload.name, scheme, cp);
    return record != nullptr && record->ok() ? record->energy_savings : 0.0;
  };

  for (const WorkloadSpec& workload : spec.workloads) {
    const RunRecord* base =
        sweep.Find(workload.name, BaselineScheme(), -1.0);
    if (base == nullptr || !base->ok()) continue;
    const CpCalibration calibration = Calibrate(base->results);

    TablePrinter table({"CP-Limit", "DMA-TA", "DMA-TA-PL(2)", "DMA-TA-PL(3)",
                        "DMA-TA-PL(6)", "degr(PL2)"});
    for (double cp : cp_limits) {
      const RunRecord* pl2 = sweep.Find(workload.name, TaPlScheme(2), cp);
      table.AddRow({TablePrinter::Percent(cp, 0),
                    TablePrinter::Percent(savings(workload, TaScheme(), cp)),
                    TablePrinter::Percent(savings(workload, TaPlScheme(2), cp)),
                    TablePrinter::Percent(savings(workload, TaPlScheme(3), cp)),
                    TablePrinter::Percent(savings(workload, TaPlScheme(6), cp)),
                    TablePrinter::Percent(
                        pl2 != nullptr && pl2->ok()
                            ? pl2->response_degradation
                            : 0.0)});
    }
    std::cout << "-- " << workload.name << " (baseline "
              << TablePrinter::Num(base->results.energy.Total().joules() * 1e3,
                                   1)
              << " mJ, mu(10%) = "
              << TablePrinter::Num(calibration.MuFor(0.10), 1) << ") --\n";
    table.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
