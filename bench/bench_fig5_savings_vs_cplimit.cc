// Regenerates Figure 5: memory energy savings over the baseline dynamic
// policy as a function of the client-perceived response-time degradation
// limit (CP-Limit), for DMA-TA alone and DMA-TA-PL with 2/3/6 popularity
// groups, on all four workloads.
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 5: energy savings vs CP-Limit",
      "Paper shapes to check: savings rise quickly up to ~10% CP-Limit and\n"
      "flatten beyond; DMA-TA-PL(2) beats DMA-TA; more groups do worse\n"
      "(6 groups can go negative); database workloads save less than\n"
      "storage workloads. Paper peak: 38.6% for OLTP-St at 10% CP-Limit\n"
      "with 2 groups.");

  const std::vector<double> cp_limits = {0.02, 0.05, 0.10, 0.20, 0.30};

  std::vector<WorkloadSpec> specs = {OltpStorageSpec(), SyntheticStorageSpec(),
                                     OltpDatabaseSpec(),
                                     SyntheticDatabaseSpec()};
  specs[0].duration = Scaled(500 * kMillisecond);
  specs[1].duration = Scaled(500 * kMillisecond);
  specs[2].duration = Scaled(150 * kMillisecond);
  specs[3].duration = Scaled(200 * kMillisecond);

  for (const WorkloadSpec& spec : specs) {
    SimulationOptions options;
    options.server.request_compute_time = spec.request_compute_time;
    const auto base = RunBaseline(spec, options);

    TablePrinter table({"CP-Limit", "DMA-TA", "DMA-TA-PL(2)", "DMA-TA-PL(3)",
                        "DMA-TA-PL(6)", "degr(PL2)"});
    for (double cp : cp_limits) {
      const double mu = base.calibration.MuFor(cp);
      const SimulationResults ta =
          RunWorkload(spec, TaOptions(options, mu));
      const SimulationResults pl2 =
          RunWorkload(spec, TaPlOptions(options, mu, 2));
      const SimulationResults pl3 =
          RunWorkload(spec, TaPlOptions(options, mu, 3));
      const SimulationResults pl6 =
          RunWorkload(spec, TaPlOptions(options, mu, 6));
      table.AddRow({TablePrinter::Percent(cp, 0),
                    TablePrinter::Percent(ta.EnergySavingsVs(base.baseline)),
                    TablePrinter::Percent(pl2.EnergySavingsVs(base.baseline)),
                    TablePrinter::Percent(pl3.EnergySavingsVs(base.baseline)),
                    TablePrinter::Percent(pl6.EnergySavingsVs(base.baseline)),
                    TablePrinter::Percent(
                        pl2.ResponseDegradationVs(base.baseline))});
    }
    std::cout << "-- " << spec.name << " (baseline "
              << TablePrinter::Num(base.baseline.energy.Total() * 1e3, 1)
              << " mJ, mu(10%) = "
              << TablePrinter::Num(base.calibration.MuFor(0.10), 1) << ") --\n";
    table.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
