// Ablation studies called out in DESIGN.md:
//  * low-level policy comparison (static vs dynamic, Section 2.2);
//  * epoch-length insensitivity (Section 4.1.2);
//  * gather-depth factor (release at k distinct buses vs deeper batches);
//  * DMA-TA controller buffer occupancy (Section 4.1.4).
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = Scaled(300 * kMillisecond);
  SimulationOptions options;
  const auto base = RunBaseline(spec, options);
  const double mu = base.calibration.MuFor(0.10);

  PrintHeader("Ablation A: low-level power policies (OLTP-St)",
              "Paper (Section 2.2): dynamic threshold management beats the\n"
              "static schemes, which is why it is the baseline.");
  TablePrinter policies({"policy", "total mJ", "vs dynamic"});
  for (PolicyKind kind :
       {PolicyKind::kDynamic, PolicyKind::kStaticStandby,
        PolicyKind::kStaticNap, PolicyKind::kStaticPowerdown,
        PolicyKind::kAlwaysActive}) {
    SimulationOptions policy_options = options;
    policy_options.policy = kind;
    const SimulationResults results = RunWorkload(spec, policy_options);
    policies.AddRow(
        {PolicyKindName(kind),
         TablePrinter::Num(results.energy.Total() * 1e3, 1),
         TablePrinter::Percent(results.EnergySavingsVs(base.baseline))});
  }
  policies.Print(std::cout);

  PrintHeader("\nAblation B: epoch length (DMA-TA, OLTP-St, 10% CP-Limit)",
              "Paper (Section 4.1.2): results are insensitive to the epoch\n"
              "length as long as it is not too large.");
  TablePrinter epochs({"epoch", "savings", "degradation"});
  for (Tick epoch : std::vector<Tick>{10 * kMicrosecond, 50 * kMicrosecond,
                                      200 * kMicrosecond, kMillisecond}) {
    SimulationOptions ta = TaOptions(options, mu);
    ta.memory.dma.ta.epoch_length = epoch;
    const SimulationResults results = RunWorkload(spec, ta);
    epochs.AddRow(
        {TablePrinter::Num(static_cast<double>(epoch) / kMicrosecond, 0) +
             " us",
         TablePrinter::Percent(results.EnergySavingsVs(base.baseline)),
         TablePrinter::Percent(results.ResponseDegradationVs(base.baseline))});
  }
  epochs.Print(std::cout);

  PrintHeader("\nAblation C: gather depth (DMA-TA-PL, OLTP-St, 10% CP-Limit)",
              "Releasing at the first k-distinct-bus quorum (factor 1, the\n"
              "paper's rule) vs waiting for deeper batches.");
  TablePrinter depth({"gather depth factor", "savings", "degradation"});
  for (double factor : std::vector<double>{1.0, 2.0, 3.0}) {
    SimulationOptions tapl = TaPlOptions(options, mu);
    tapl.memory.dma.ta.gather_depth_factor = factor;
    const SimulationResults results = RunWorkload(spec, tapl);
    depth.AddRow(
        {TablePrinter::Num(factor, 1),
         TablePrinter::Percent(results.EnergySavingsVs(base.baseline)),
         TablePrinter::Percent(results.ResponseDegradationVs(base.baseline))});
  }
  depth.Print(std::cout);

  PrintHeader("\nAblation D: controller buffer occupancy (Section 4.1.4)",
              "Paper: at most 3 * 8 * 32 = 768 bytes of buffered requests\n"
              "for the 8-byte-request configuration.");
  {
    const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));
    TablePrinter buffer({"quantity", "value"});
    buffer.AddRow({"chunk size (bytes)",
                   std::to_string(options.memory.chunk_bytes)});
    buffer.AddRow({"max buffered bytes observed",
                   std::to_string(tapl.max_gated_buffer_bytes)});
    buffer.AddRow(
        {"max buffered 8B-request equivalents",
         std::to_string(tapl.max_gated_buffer_bytes /
                        options.memory.chunk_bytes)});
    buffer.AddRow({"paper bound (requests)", "96 (= 3 per chip x 32 chips)"});
    buffer.Print(std::cout);
  }
  return 0;
}
