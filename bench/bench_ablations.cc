// Ablation studies called out in DESIGN.md, expressed as four small
// declarative sweeps on the experiment engine:
//  * low-level policy comparison (static vs dynamic, Section 2.2);
//  * epoch-length insensitivity (Section 4.1.2);
//  * gather-depth factor (release at k distinct buses vs deeper batches);
//  * DMA-TA controller buffer occupancy (Section 4.1.4).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/sweep_runner.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;

  WorkloadSpec workload = OltpStorageSpec();
  workload.duration = Scaled(300 * kMillisecond);

  PrintHeader("Ablation A: low-level power policies (OLTP-St)",
              "Paper (Section 2.2): dynamic threshold management beats the\n"
              "static schemes, which is why it is the baseline.");
  {
    ExperimentSpec spec;
    spec.name = "ablation-policies";
    spec.workloads = {workload};
    spec.schemes = {BaselineScheme()};
    spec.policies = {PolicyKind::kDynamic, PolicyKind::kStaticStandby,
                     PolicyKind::kStaticNap, PolicyKind::kStaticPowerdown,
                     PolicyKind::kAlwaysActive};
    SweepRunner runner;
    const SweepResults sweep = runner.Run(spec);

    const RunRecord* dynamic_base = sweep.Find(
        [](const RunPlan& plan) { return plan.policy == PolicyKind::kDynamic; });
    TablePrinter policies({"policy", "total mJ", "vs dynamic"});
    for (PolicyKind kind : spec.policies) {
      const RunRecord* record = sweep.Find(
          [kind](const RunPlan& plan) { return plan.policy == kind; });
      if (record == nullptr || !record->ok() || dynamic_base == nullptr) {
        continue;
      }
      policies.AddRow(
          {PolicyKindName(kind),
           TablePrinter::Num(record->results.energy.Total().joules() * 1e3, 1),
           TablePrinter::Percent(
               record->results.EnergySavingsVs(dynamic_base->results))});
    }
    policies.Print(std::cout);
  }

  PrintHeader("\nAblation B: epoch length (DMA-TA, OLTP-St, 10% CP-Limit)",
              "Paper (Section 4.1.2): results are insensitive to the epoch\n"
              "length as long as it is not too large.");
  {
    ExperimentSpec spec;
    spec.name = "ablation-epochs";
    spec.workloads = {workload};
    spec.schemes = {TaScheme()};
    spec.cp_limits = {0.10};
    spec.epoch_lengths = {10 * kMicrosecond, 50 * kMicrosecond,
                          200 * kMicrosecond, kMillisecond};
    SweepRunner runner;
    const SweepResults sweep = runner.Run(spec);

    TablePrinter epochs({"epoch", "savings", "degradation"});
    for (Tick epoch : spec.epoch_lengths) {
      const RunRecord* record = sweep.Find([epoch](const RunPlan& plan) {
        return !plan.is_baseline && plan.epoch_length == epoch;
      });
      if (record == nullptr || !record->ok()) continue;
      epochs.AddRow(
          {TablePrinter::Num(static_cast<double>(epoch) / kMicrosecond, 0) +
               " us",
           TablePrinter::Percent(record->energy_savings),
           TablePrinter::Percent(record->response_degradation)});
    }
    epochs.Print(std::cout);
  }

  PrintHeader("\nAblation C: gather depth (DMA-TA-PL, OLTP-St, 10% CP-Limit)",
              "Releasing at the first k-distinct-bus quorum (factor 1, the\n"
              "paper's rule) vs waiting for deeper batches.");
  {
    ExperimentSpec spec;
    spec.name = "ablation-gather";
    spec.workloads = {workload};
    spec.schemes = {TaPlScheme(2)};
    spec.cp_limits = {0.10};
    spec.gather_depth_factors = {1.0, 2.0, 3.0};
    SweepRunner runner;
    const SweepResults sweep = runner.Run(spec);

    TablePrinter depth({"gather depth factor", "savings", "degradation"});
    for (double factor : spec.gather_depth_factors) {
      const RunRecord* record = sweep.Find([factor](const RunPlan& plan) {
        return !plan.is_baseline && plan.gather_depth_factor == factor;
      });
      if (record == nullptr || !record->ok()) continue;
      depth.AddRow({TablePrinter::Num(factor, 1),
                    TablePrinter::Percent(record->energy_savings),
                    TablePrinter::Percent(record->response_degradation)});
    }
    depth.Print(std::cout);
  }

  PrintHeader("\nAblation D: controller buffer occupancy (Section 4.1.4)",
              "Paper: at most 3 * 8 * 32 = 768 bytes of buffered requests\n"
              "for the 8-byte-request configuration.");
  {
    ExperimentSpec spec;
    spec.name = "ablation-buffer";
    spec.workloads = {workload};
    spec.schemes = {TaPlScheme(2)};
    spec.cp_limits = {0.10};
    SweepRunner runner;
    const SweepResults sweep = runner.Run(spec);

    const RunRecord* tapl =
        sweep.Find(workload.name, TaPlScheme(2), 0.10);
    if (tapl != nullptr && tapl->ok()) {
      TablePrinter buffer({"quantity", "value"});
      buffer.AddRow({"chunk size (bytes)",
                     std::to_string(spec.base.memory.chunk_bytes)});
      buffer.AddRow({"max buffered bytes observed",
                     std::to_string(tapl->results.max_gated_buffer_bytes)});
      buffer.AddRow(
          {"max buffered 8B-request equivalents",
           std::to_string(tapl->results.max_gated_buffer_bytes /
                          spec.base.memory.chunk_bytes)});
      buffer.AddRow(
          {"paper bound (requests)", "96 (= 3 per chip x 32 chips)"});
      buffer.Print(std::cout);
    }
  }
  return 0;
}
