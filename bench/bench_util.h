// Shared support for the figure/table reproduction harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (Section 5) and prints it as an ASCII table, with the paper's
// reported numbers alongside where applicable. Set DMASIM_FAST=1 to cut
// simulated durations 4x for a quick smoke run.
#ifndef DMASIM_BENCH_BENCH_UTIL_H_
#define DMASIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

namespace dmasim::bench {

inline bool FastMode() {
  const char* fast = std::getenv("DMASIM_FAST");
  return fast != nullptr && fast[0] == '1';
}

// Scales a simulated duration down in fast mode.
inline Tick Scaled(Tick duration) {
  return FastMode() ? duration / 4 : duration;
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::cout << "==== " << title << " ====\n" << paper << "\n\n";
}

// Runs the baseline for `spec` and returns it along with the CP-Limit
// calibration (Section 5.1's offline transformation).
struct BaselineAndCalibration {
  SimulationResults baseline;
  CpCalibration calibration;
};

inline BaselineAndCalibration RunBaseline(const WorkloadSpec& spec,
                                          const SimulationOptions& options) {
  BaselineAndCalibration result;
  result.baseline = RunWorkload(spec, options);
  result.calibration = Calibrate(result.baseline);
  return result;
}

inline SimulationOptions TaOptions(const SimulationOptions& base, double mu) {
  SimulationOptions options = base;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = mu;
  return options;
}

inline SimulationOptions TaPlOptions(const SimulationOptions& base, double mu,
                                     int groups = 2) {
  SimulationOptions options = TaOptions(base, mu);
  options.memory.dma.pl.enabled = true;
  options.memory.dma.pl.groups = groups;
  return options;
}

}  // namespace dmasim::bench

#endif  // DMASIM_BENCH_BENCH_UTIL_H_
