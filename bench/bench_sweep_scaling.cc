// Measures the experiment engine's wall-clock scaling: one 32-run sweep
// ({4 workloads} x {baseline + DMA-TA + DMA-TA-PL(2) + DMA-TA-PL(3)} x
// {2 seeds}) executed at 1, 2, 4, and 8 worker threads.
//
// Independent simulations are embarrassingly parallel, so on an 8-core
// host the 8-thread sweep should finish >= 3x faster than the serial
// one. Every parallel sweep is also checked for the determinism
// contract: its JSON artifact (timing fields excluded) must be
// byte-identical to the serial sweep's.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/result_sink.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Sweep scaling: wall-clock speedup vs worker threads (32-run sweep)",
      "Each run simulates an isolated server; the engine parallelizes\n"
      "across hardware threads. Expect near-linear speedup up to the\n"
      "core count (>= 3x at 8 threads on an 8-core host) and identical\n"
      "results at every thread count.");

  ExperimentSpec spec;
  spec.name = "scaling";
  spec.workloads = {OltpStorageSpec(), SyntheticStorageSpec(),
                    OltpDatabaseSpec(), SyntheticDatabaseSpec()};
  for (WorkloadSpec& workload : spec.workloads) {
    workload.duration = Scaled(80 * kMillisecond);
  }
  spec.schemes = {TaScheme(), TaPlScheme(2), TaPlScheme(3)};
  spec.cp_limits = {0.10};
  spec.seeds = {1, 2};
  // 4 workloads x 2 seeds = 8 cells x (1 baseline + 3 schemes) = 32 runs.

  std::cout << "host hardware threads: " << ThreadPool::HardwareThreads()
            << "\n\n";

  std::string serial_artifact;
  double serial_seconds = 0.0;

  TablePrinter table({"threads", "wall s", "speedup", "runs ok",
                      "matches serial"});
  for (int threads : std::vector<int>{1, 2, 4, 8}) {
    SweepOptions options;
    options.threads = threads;
    SweepRunner runner(options);
    const auto start = std::chrono::steady_clock::now();
    const SweepResults sweep = runner.Run(spec);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // Canonical artifact: sorted by run id, timing fields excluded.
    const std::string artifact =
        SweepToJson(sweep.summary, sweep.records, /*include_timing=*/false)
            .Dump(true);
    bool matches = true;
    if (threads == 1) {
      serial_artifact = artifact;
      serial_seconds = seconds;
    } else {
      matches = artifact == serial_artifact;
    }

    table.AddRow({std::to_string(threads), TablePrinter::Num(seconds, 2),
                  TablePrinter::Num(serial_seconds / seconds, 2) + "x",
                  std::to_string(sweep.summary.ok),
                  matches ? "yes" : "NO - DETERMINISM BUG"});
    if (!matches) {
      std::cerr << "determinism violation at " << threads << " threads\n";
      return 1;
    }
  }
  table.Print(std::cout);
  return 0;
}
