// Regenerates Figure 8: energy savings as a function of workload
// intensity (average DMA transfer arrival rate) for Synthetic-St.
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 8: savings vs workload intensity, Synthetic-St, 10% CP-Limit",
      "Paper shapes to check: more intensive workloads save more (more\n"
      "alignment opportunity); the benefit grows more slowly at high\n"
      "intensities where transfers already overlap naturally.");

  TablePrinter table({"transfers/ms", "DMA-TA", "DMA-TA-PL", "baseline uf",
                      "DMA-TA-PL uf"});
  for (double intensity : std::vector<double>{25, 50, 100, 200, 400}) {
    WorkloadSpec spec = WithIntensity(SyntheticStorageSpec(), intensity);
    spec.duration = Scaled(300 * kMillisecond);
    SimulationOptions options;
    const auto base = RunBaseline(spec, options);
    const double mu = base.calibration.MuFor(0.10);
    const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
    const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));
    table.AddRow({TablePrinter::Num(intensity, 0),
                  TablePrinter::Percent(ta.EnergySavingsVs(base.baseline)),
                  TablePrinter::Percent(tapl.EnergySavingsVs(base.baseline)),
                  TablePrinter::Num(base.baseline.utilization_factor, 3),
                  TablePrinter::Num(tapl.utilization_factor, 3)});
  }
  table.Print(std::cout);
  return 0;
}
