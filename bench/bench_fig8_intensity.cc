// Regenerates Figure 8: energy savings as a function of workload
// intensity (average DMA transfer arrival rate) for Synthetic-St.
//
// One engine sweep: the intensity variants enter as separate workloads
// (distinct names so records stay addressable) and the engine supplies
// baselines, calibration, and parallel execution.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/sweep_runner.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 8: savings vs workload intensity, Synthetic-St, 10% CP-Limit",
      "Paper shapes to check: more intensive workloads save more (more\n"
      "alignment opportunity); the benefit grows more slowly at high\n"
      "intensities where transfers already overlap naturally.");

  const std::vector<double> intensities = {25, 50, 100, 200, 400};

  ExperimentSpec spec;
  spec.name = "fig8";
  for (double intensity : intensities) {
    WorkloadSpec workload = WithIntensity(SyntheticStorageSpec(), intensity);
    workload.name += "@" + TablePrinter::Num(intensity, 0) + "/ms";
    workload.duration = Scaled(300 * kMillisecond);
    spec.workloads.push_back(std::move(workload));
  }
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  spec.cp_limits = {0.10};

  SweepRunner runner;
  const SweepResults sweep = runner.Run(spec);

  TablePrinter table({"transfers/ms", "DMA-TA", "DMA-TA-PL", "baseline uf",
                      "DMA-TA-PL uf"});
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    const std::string& name = spec.workloads[i].name;
    const RunRecord* base = sweep.Find(name, BaselineScheme(), -1.0);
    const RunRecord* ta = sweep.Find(name, TaScheme(), 0.10);
    const RunRecord* tapl = sweep.Find(name, TaPlScheme(2), 0.10);
    if (base == nullptr || ta == nullptr || tapl == nullptr) continue;
    table.AddRow(
        {TablePrinter::Num(intensities[i], 0),
         TablePrinter::Percent(ta->energy_savings),
         TablePrinter::Percent(tapl->energy_savings),
         TablePrinter::Num(base->results.utilization_factor, 3),
         TablePrinter::Num(tapl->results.utilization_factor, 3)});
  }
  table.Print(std::cout);
  return 0;
}
