// Extension experiment (the paper's future work #2: "explore other
// workloads, such as TPC-H"): a decision-support storage workload of
// long sequential scans. Sequential pages stripe across chips, so scans
// exercise every chip in turn -- a stress case for popularity-based
// layout (no stable hot set) but a good one for temporal alignment
// (back-to-back transfers gather naturally on sleeping chips).
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Extension: DSS/TPC-H-like scan workload (future work #2)",
      "Not in the paper. Expectation from its model: DMA-TA still helps\n"
      "(scans keep arriving at sleeping chips), while PL adds little\n"
      "because scans have no stable hot pages to concentrate.");

  WorkloadSpec spec = DssStorageSpec();
  spec.duration = Scaled(400 * kMillisecond);
  SimulationOptions options;
  const auto base = RunBaseline(spec, options);

  TablePrinter table({"CP-Limit", "DMA-TA", "DMA-TA-PL(2)", "degr(TA)",
                      "migrations"});
  for (double cp : {0.05, 0.10, 0.30}) {
    const double mu = base.calibration.MuFor(cp);
    const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
    const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));
    table.AddRow({TablePrinter::Percent(cp, 0),
                  TablePrinter::Percent(ta.EnergySavingsVs(base.baseline)),
                  TablePrinter::Percent(tapl.EnergySavingsVs(base.baseline)),
                  TablePrinter::Percent(ta.ResponseDegradationVs(base.baseline)),
                  std::to_string(tapl.controller.migrations)});
  }
  table.Print(std::cout);
  std::cout << "\nbaseline uf = "
            << TablePrinter::Num(base.baseline.utilization_factor, 3)
            << ", scan run length ~"
            << TablePrinter::Num(spec.sequential_run_mean, 0)
            << " pages, " << base.baseline.controller.transfers_completed
            << " transfers\n";
  return 0;
}
