// Regenerates Figure 10: energy savings as a function of the ratio between
// memory and I/O bus bandwidth (memory fixed at 3.2 GB/s; I/O bus at 0.5,
// ~1.067, 1.6, 2.0, and 3.0 GB/s), for OLTP-St and Synthetic-St.
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 10: savings vs memory/I-O bandwidth ratio, 10% CP-Limit",
      "Paper shapes to check: at ratio ~1 savings are small (~5%); they\n"
      "grow quickly with the ratio as rate-mismatch waste starts to\n"
      "dominate; DMA-TA-PL improves faster than DMA-TA.");

  const std::vector<double> bus_gbps = {0.5, 8.0 / 7.5, 1.6, 2.0, 3.0};

  for (int which = 0; which < 2; ++which) {
    WorkloadSpec spec =
        which == 0 ? OltpStorageSpec() : SyntheticStorageSpec();
    spec.duration = Scaled(300 * kMillisecond);

    TablePrinter table({"I/O bus GB/s", "ratio", "k", "DMA-TA",
                        "DMA-TA-PL"});
    for (double gbps : bus_gbps) {
      SimulationOptions options;
      options.memory.bus_bandwidth = gbps * 1e9;
      const double ratio =
          options.memory.MemoryBandwidth() / options.memory.bus_bandwidth;
      const auto base = RunBaseline(spec, options);
      const double mu = base.calibration.MuFor(0.10);
      const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
      const SimulationResults tapl =
          RunWorkload(spec, TaPlOptions(options, mu));
      table.AddRow(
          {TablePrinter::Num(gbps, 2), TablePrinter::Num(ratio, 2),
           std::to_string(options.memory.AlignmentQuorum()),
           TablePrinter::Percent(ta.EnergySavingsVs(base.baseline)),
           TablePrinter::Percent(tapl.EnergySavingsVs(base.baseline))});
    }
    std::cout << "-- " << spec.name << " --\n";
    table.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
