// Regenerates Figure 2: (a) the rate-mismatch timeline numbers and (b) the
// baseline memory energy breakdown for the two OLTP workloads.
#include <iostream>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  bench::PrintHeader(
      "Figure 2(a): DMA rate mismatch timeline",
      "Paper: an 8-byte DMA-memory request is served in 4 memory cycles;\n"
      "the next arrives 12 cycles later, so the chip idles 2/3 of the\n"
      "time while a lone transfer is in flight.");

  MemorySystemConfig config;
  const Tick serve = config.power.ServiceTime(ByteCount(config.chunk_bytes)).value();
  const Tick slot = config.RequestTime();
  TablePrinter timeline({"quantity", "model value", "paper value"});
  timeline.AddRow({"request service (cycles per 8B-equivalent)",
                   TablePrinter::Num(static_cast<double>(serve) * 8.0 /
                                         static_cast<double>(
                                             config.chunk_bytes) /
                                         625.0,
                                     0),
                   "4"});
  timeline.AddRow({"request interval (cycles per 8B-equivalent)",
                   TablePrinter::Num(static_cast<double>(slot) * 8.0 /
                                         static_cast<double>(
                                             config.chunk_bytes) /
                                         625.0,
                                     0),
                   "12"});
  timeline.AddRow({"lone-transfer utilization",
                   TablePrinter::Num(static_cast<double>(serve) /
                                         static_cast<double>(slot),
                                     3),
                   "0.333"});
  timeline.Print(std::cout);

  bench::PrintHeader(
      "\nFigure 2(b): baseline energy breakdown (3 PCI-X buses)",
      "Paper: Active Idle DMA 48-51%, Active Serving 26-27%, Active Idle\n"
      "Threshold 3-4%, remainder transitions + low-power modes.");

  TablePrinter table({"workload", "ActiveServing", "ActiveIdleDma",
                      "ActiveIdleThreshold", "Transition", "LowPowerModes"});
  for (int which = 0; which < 2; ++which) {
    WorkloadSpec spec = which == 0 ? OltpStorageSpec() : OltpDatabaseSpec();
    spec.duration = bench::Scaled(which == 0 ? 400 * kMillisecond
                                             : 150 * kMillisecond);
    SimulationOptions options;
    options.server.request_compute_time = spec.request_compute_time;
    const SimulationResults baseline = RunWorkload(spec, options);
    table.AddRow(
        {spec.name,
         TablePrinter::Percent(
             baseline.energy.Fraction(EnergyBucket::kActiveServing)),
         TablePrinter::Percent(
             baseline.energy.Fraction(EnergyBucket::kActiveIdleDma)),
         TablePrinter::Percent(
             baseline.energy.Fraction(EnergyBucket::kActiveIdleThreshold)),
         TablePrinter::Percent(
             baseline.energy.Fraction(EnergyBucket::kTransition)),
         TablePrinter::Percent(
             baseline.energy.Fraction(EnergyBucket::kLowPower))});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: Active Idle DMA is the dominant active\n"
               "component and far exceeds the threshold idle and transition\n"
               "energies, as in the paper. (Our reconstructed traces spend\n"
               "more time in low-power modes than the originals; see\n"
               "EXPERIMENTS.md.)\n";
  return 0;
}
