// Regenerates Table 1: RDRAM power states and transition costs.
#include <iostream>

#include "bench_util.h"
#include "mem/power_model.h"

int main() {
  using namespace dmasim;
  bench::PrintHeader(
      "Table 1: power consumption and transition time",
      "Paper: active 300mW, standby 180mW, nap 30mW, powerdown 3mW;\n"
      "down transitions 240/160/15 mW at 1/8/8 cycles; up transitions\n"
      "+6ns / +60ns / +6000ns.");

  const PowerModel model;
  TablePrinter table({"Power State/Transition", "Power", "Time"});
  auto cycles = [&](Tick t) {
    return TablePrinter::Num(static_cast<double>(t) /
                                 static_cast<double>(model.cycle),
                             0) +
           " memory cycle(s)";
  };
  auto ns = [](Tick t) {
    return "+" + TablePrinter::Num(static_cast<double>(t) / kNanosecond, 0) +
           "ns";
  };
  auto mw = [](double value) { return TablePrinter::Num(value, 0) + "mW"; };

  table.AddRow({"Active", mw(model.active_mw), "-"});
  table.AddRow({"Standby", mw(model.standby_mw), "-"});
  table.AddRow({"Nap", mw(model.nap_mw), "-"});
  table.AddRow({"Powerdown", mw(model.powerdown_mw), "-"});
  table.AddRow({"Active -> Standby", mw(model.to_standby.power_mw.milliwatts()),
                cycles(model.to_standby.duration.value())});
  table.AddRow({"Active -> Nap", mw(model.to_nap.power_mw.milliwatts()),
                cycles(model.to_nap.duration.value())});
  table.AddRow({"Active -> Powerdown",
                mw(model.to_powerdown.power_mw.milliwatts()),
                cycles(model.to_powerdown.duration.value())});
  table.AddRow({"Standby -> Active",
                mw(model.from_standby.power_mw.milliwatts()),
                ns(model.from_standby.duration.value())});
  table.AddRow({"Nap -> Active", mw(model.from_nap.power_mw.milliwatts()),
                ns(model.from_nap.duration.value())});
  table.AddRow({"Powerdown -> Active",
                mw(model.from_powerdown.power_mw.milliwatts()),
                ns(model.from_powerdown.duration.value())});
  table.Print(std::cout);

  std::cout << "\nDerived: memory cycle = " << model.cycle
            << " ps (1600 MHz), peak rate = "
            << TablePrinter::Num(model.Bandwidth().value() / 1e9, 2)
            << " GB/s, 8-byte request service = "
            << model.ServiceTime(ByteCount(8)).value() / model.cycle
            << " cycles\n";
  return 0;
}
