// Regenerates Figure 4: CDF of page popularity for the OLTP storage DMA
// workload ("around 20% of the pages account for 60% of the DMA
// accesses").
#include <iostream>

#include "bench_util.h"
#include "trace/trace.h"

int main() {
  using namespace dmasim;
  bench::PrintHeader(
      "Figure 4: CDF of page popularity (OLTP-St)",
      "Paper: a point (x, y) means x% of the pages receive y% of the DMA\n"
      "accesses; around (20%, 60%).");

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = bench::Scaled(200 * kMillisecond);
  const Trace trace = GenerateWorkload(spec);
  const auto cdf = PopularityCdf(trace);

  TablePrinter table({"pages (top x%)", "accesses covered", "paper"});
  const struct {
    double x;
    const char* paper;
  } points[] = {{0.05, "-"},       {0.10, "~45%"}, {0.20, "~60%"},
                {0.30, "~70%"},    {0.50, "~82%"}, {0.80, "~95%"},
                {1.00, "100%"}};
  for (const auto& point : points) {
    table.AddRow({TablePrinter::Percent(point.x, 0),
                  TablePrinter::Percent(AccessShareOfTopPages(cdf, point.x)),
                  point.paper});
  }
  table.Print(std::cout);

  const TraceSummary summary = Summarize(trace);
  std::cout << "\ndistinct pages referenced: " << summary.distinct_pages
            << " (of " << spec.pages << " logical pages), "
            << summary.client_reads + summary.client_writes
            << " client requests\n";
  return 0;
}
