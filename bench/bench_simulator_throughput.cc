// Google-benchmark microbenchmarks for the simulator's hot paths: event
// queue operations, chip request service, trace generation, and a full
// end-to-end simulation (reported as simulated-milliseconds per second).
//
// Pass --artifact-out=PATH to additionally write a machine-readable JSON
// artifact (same shape as bench/baselines/BENCH_simulator.json) that the
// CI perf smoke job diffs against the committed baseline.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/json.h"

#include "core/memory_controller.h"
#include "mem/power_policy.h"
#include "server/simulation_driver.h"
#include "sim/simulator.h"
#include "trace/workloads.h"
#include "util/random.h"

namespace dmasim {
namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator simulator;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      simulator.ScheduleAt(static_cast<Tick>(rng.NextBounded(1000000)),
                           []() {});
    }
    simulator.Run();
    benchmark::DoNotOptimize(simulator.Now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1024)->Arg(16384);

void BM_ChipServeRequests(benchmark::State& state) {
  for (auto _ : state) {
    Simulator simulator;
    PowerModel model;
    RdramChipModel chip_model{model};
    AlwaysActivePolicy policy;
    MemoryChip chip(&simulator, &chip_model, &policy, 0);
    for (int i = 0; i < 1000; ++i) {
      chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(512), {}});
    }
    simulator.Run();
    benchmark::DoNotOptimize(chip.stats().dma_requests);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChipServeRequests);

void BM_GenerateOltpTrace(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadSpec spec = OltpStorageSpec();
    spec.duration = 50 * kMillisecond;
    benchmark::DoNotOptimize(GenerateWorkload(spec).size());
  }
}
BENCHMARK(BM_GenerateOltpTrace);

void BM_EndToEndStorageSimulation(benchmark::State& state) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 20.0;
  options.memory.dma.pl.enabled = true;
  for (auto _ : state) {
    const SimulationResults results =
        RunTrace(trace, spec.miss_ratio, spec.duration, options, spec.name);
    benchmark::DoNotOptimize(results.energy.Total());
  }
  state.counters["sim_ms_per_iter"] =
      static_cast<double>(spec.duration) / kMillisecond;
}
BENCHMARK(BM_EndToEndStorageSimulation)->Unit(benchmark::kMillisecond);

// Console reporter that also collects per-iteration real times so the
// run can be dumped as a deterministic JSON artifact.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;  // Skip aggregates.
      if (run.error_occurred) continue;
      const double ns_per_iter =
          run.real_accumulated_time * 1e9 /
          static_cast<double>(run.iterations > 0 ? run.iterations : 1);
      entries_.emplace_back(run.benchmark_name(), ns_per_iter);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  Json Artifact() const {
    Json artifact = Json::Object();
    artifact.Set("artifact", "BENCH_simulator");
    artifact.Set("kernel",
                 "SBO callbacks + calendar queue + coalesced chunk runs");
#ifdef NDEBUG
    artifact.Set("build_type", "Release");
#else
    artifact.Set("build_type", "Debug");
#endif
    Json benchmarks = Json::Array();
    for (const auto& [name, ns] : entries_) {
      Json entry = Json::Object();
      entry.Set("name", name);
      entry.Set("real_ns_per_iter", ns);
      benchmarks.Append(std::move(entry));
    }
    artifact.Set("benchmarks", std::move(benchmarks));
    return artifact;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace
}  // namespace dmasim

int main(int argc, char** argv) {
  std::string artifact_path;
  // Peel off --artifact-out before google-benchmark sees the arguments.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--artifact-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      artifact_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dmasim::ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!artifact_path.empty()) {
    std::ofstream out(artifact_path);
    if (!out) {
      std::fprintf(stderr, "cannot open artifact path: %s\n",
                   artifact_path.c_str());
      return 1;
    }
    out << reporter.Artifact().Dump() << "\n";
  }
  return 0;
}
