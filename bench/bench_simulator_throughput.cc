// Google-benchmark microbenchmarks for the simulator's hot paths: event
// queue operations, chip request service, trace generation, and a full
// end-to-end simulation (reported as simulated-milliseconds per second).
#include <benchmark/benchmark.h>

#include "core/memory_controller.h"
#include "mem/power_policy.h"
#include "server/simulation_driver.h"
#include "sim/simulator.h"
#include "trace/workloads.h"
#include "util/random.h"

namespace dmasim {
namespace {

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator simulator;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      simulator.ScheduleAt(static_cast<Tick>(rng.NextBounded(1000000)),
                           []() {});
    }
    simulator.Run();
    benchmark::DoNotOptimize(simulator.Now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1024)->Arg(16384);

void BM_ChipServeRequests(benchmark::State& state) {
  for (auto _ : state) {
    Simulator simulator;
    PowerModel model;
    AlwaysActivePolicy policy;
    MemoryChip chip(&simulator, &model, &policy, 0);
    for (int i = 0; i < 1000; ++i) {
      chip.Enqueue(ChipRequest{RequestKind::kDma, 512, {}});
    }
    simulator.Run();
    benchmark::DoNotOptimize(chip.stats().dma_requests);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChipServeRequests);

void BM_GenerateOltpTrace(benchmark::State& state) {
  for (auto _ : state) {
    WorkloadSpec spec = OltpStorageSpec();
    spec.duration = 50 * kMillisecond;
    benchmark::DoNotOptimize(GenerateWorkload(spec).size());
  }
}
BENCHMARK(BM_GenerateOltpTrace);

void BM_EndToEndStorageSimulation(benchmark::State& state) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 20.0;
  options.memory.dma.pl.enabled = true;
  for (auto _ : state) {
    const SimulationResults results =
        RunTrace(trace, spec.miss_ratio, spec.duration, options, spec.name);
    benchmark::DoNotOptimize(results.energy.Total());
  }
  state.counters["sim_ms_per_iter"] =
      static_cast<double>(spec.duration) / kMillisecond;
}
BENCHMARK(BM_EndToEndStorageSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dmasim

BENCHMARK_MAIN();
