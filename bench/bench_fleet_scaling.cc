// Fleet scaling benchmark: one sharded simulation (8 memory-controller
// domains, cross-domain client traffic) run at 1, 2, 4, and 8 engine
// threads. Every run asserts the determinism invariant — the fleet
// fingerprint must match the serial run bit-for-bit — so a scaling
// regression can never silently trade correctness for speed.
//
// Pass --artifact-out=PATH to write the machine-readable JSON artifact
// (same shape as bench/baselines/BENCH_fleet.json) that the CI perf
// smoke job reads for its warn-only speedup check. Speedups are
// hardware-truth: on a single-core runner the threaded rows will not
// beat serial, and the artifact says so rather than pretending.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/json.h"

#include "bench_util.h"
#include "server/fleet_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

FleetOptions BenchFleet() {
  FleetOptions options;
  options.workload = OltpStorageSpec();
  options.workload.duration = bench::Scaled(10 * kMillisecond);
  options.domains = 8;
  options.streams_per_domain = 1024;
  options.remote_fraction = 0.05;
  options.remote_latency = 20 * kMicrosecond;
  return options;
}

// The serial fingerprint, computed once; every threaded run must match.
std::uint64_t SerialFingerprint() {
  static const std::uint64_t fingerprint = [] {
    FleetOptions options = BenchFleet();
    options.sim_threads = 1;
    return RunFleet(options).Fingerprint();
  }();
  return fingerprint;
}

void BM_FleetRun(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  FleetOptions options = BenchFleet();
  options.sim_threads = threads;

  std::uint64_t events = 0;
  for (auto _ : state) {
    const FleetResults results = RunFleet(options);
    events = results.executed_events;
    if (results.Fingerprint() != SerialFingerprint()) {
      state.SkipWithError("fleet fingerprint diverged from serial");
      return;
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * events));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * events),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetRun)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()  // Rates must reflect wall clock, not main-thread CPU.
    ->Unit(benchmark::kMillisecond);

// Collects per-thread-count timings and emits the JSON artifact with
// speedups relative to the 1-thread row.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      if (run.error_occurred) continue;
      const double ns_per_iter =
          run.real_accumulated_time * 1e9 /
          static_cast<double>(run.iterations > 0 ? run.iterations : 1);
      Entry entry;
      entry.name = run.benchmark_name();
      entry.ns_per_iter = ns_per_iter;
      const auto threads = run.counters.find("threads");
      if (threads != run.counters.end()) {
        entry.threads = static_cast<int>(threads->second.value);
      }
      const auto rate = run.counters.find("events_per_sec");
      if (rate != run.counters.end()) {
        entry.events_per_sec = rate->second.value;
      }
      entries_.push_back(entry);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  Json Artifact() const {
    Json artifact = Json::Object();
    artifact.Set("artifact", "BENCH_fleet");
    artifact.Set("kernel",
                 "sharded calendar queues + conservative lookahead windows");
#ifdef NDEBUG
    artifact.Set("build_type", "Release");
#else
    artifact.Set("build_type", "Debug");
#endif
    double serial_ns = 0.0;
    for (const Entry& entry : entries_) {
      if (entry.threads == 1) serial_ns = entry.ns_per_iter;
    }
    Json benchmarks = Json::Array();
    for (const Entry& entry : entries_) {
      Json row = Json::Object();
      row.Set("name", entry.name);
      row.Set("threads", static_cast<double>(entry.threads));
      row.Set("real_ns_per_iter", entry.ns_per_iter);
      row.Set("events_per_sec", entry.events_per_sec);
      row.Set("speedup_vs_serial",
              entry.ns_per_iter > 0.0 && serial_ns > 0.0
                  ? serial_ns / entry.ns_per_iter
                  : 0.0);
      benchmarks.Append(std::move(row));
    }
    artifact.Set("benchmarks", std::move(benchmarks));
    return artifact;
  }

 private:
  struct Entry {
    std::string name;
    int threads = 0;
    double ns_per_iter = 0.0;
    double events_per_sec = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace
}  // namespace dmasim

int main(int argc, char** argv) {
  std::string artifact_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--artifact-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      artifact_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dmasim::ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!artifact_path.empty()) {
    std::ofstream out(artifact_path);
    if (!out) {
      std::fprintf(stderr, "cannot open artifact path: %s\n",
                   artifact_path.c_str());
      return 1;
    }
    out << reporter.Artifact().Dump() << "\n";
  }
  return 0;
}
