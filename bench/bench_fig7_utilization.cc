// Regenerates Figure 7: utilization factor (uf) of DMA-TA and DMA-TA-PL
// as a function of CP-Limit, for OLTP-St.
#include <iostream>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace dmasim;
  using namespace dmasim::bench;
  PrintHeader(
      "Figure 7: utilization factors, OLTP-St",
      "Paper shapes to check: baseline uf ~0.33 (2/3 of active energy\n"
      "wasted); uf rises quickly with CP-Limit and flattens past ~10%;\n"
      "DMA-TA-PL exceeds DMA-TA. Paper values: 0.63 at 10% and 0.75 at\n"
      "30% for DMA-TA-PL.");

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = Scaled(500 * kMillisecond);
  SimulationOptions options;
  const auto base = RunBaseline(spec, options);

  TablePrinter table({"CP-Limit", "baseline uf", "DMA-TA uf",
                      "DMA-TA-PL uf"});
  for (double cp : std::vector<double>{0.02, 0.05, 0.10, 0.20, 0.30}) {
    const double mu = base.calibration.MuFor(cp);
    const SimulationResults ta = RunWorkload(spec, TaOptions(options, mu));
    const SimulationResults tapl = RunWorkload(spec, TaPlOptions(options, mu));
    table.AddRow({TablePrinter::Percent(cp, 0),
                  TablePrinter::Num(base.baseline.utilization_factor, 3),
                  TablePrinter::Num(ta.utilization_factor, 3),
                  TablePrinter::Num(tapl.utilization_factor, 3)});
  }
  table.Print(std::cout);
  return 0;
}
