// Regenerates Table 2: the four evaluation workloads, with the paper's
// published rates next to the rates measured from our generated traces.
#include <iostream>

#include "bench_util.h"
#include "trace/trace.h"
#include "trace/workloads.h"

int main() {
  using namespace dmasim;
  bench::PrintHeader(
      "Table 2: traces used in the evaluation",
      "Paper: OLTP-St 45.0 net + 16.7 disk transfers/ms; OLTP-Db 100\n"
      "transfers/ms + 23,300 CPU accesses/ms; synthetics Zipf(1) Poisson\n"
      "100 transfers/ms (+10,000 CPU accesses/ms for Synthetic-Db).");

  TablePrinter table({"Trace", "Content", "net DMA/ms", "disk DMA/ms",
                      "CPU acc/ms", "paper rates"});

  struct Row {
    WorkloadSpec spec;
    std::string content;
    std::string paper;
  };
  const Row rows[] = {
      {OltpStorageSpec(), "network + disk DMAs", "45.0 + 16.7 /ms"},
      {SyntheticStorageSpec(), "network + disk DMAs", "100 transfers/ms"},
      {OltpDatabaseSpec(), "CPU + network DMAs", "100/ms + 23,300 acc/ms"},
      {SyntheticDatabaseSpec(), "CPU + network DMAs",
       "100/ms + 10,000 acc/ms"},
  };

  for (const Row& row : rows) {
    WorkloadSpec spec = row.spec;
    spec.duration = bench::Scaled(100 * kMillisecond);
    const Trace trace = GenerateWorkload(spec);
    const TraceSummary summary = Summarize(trace);
    const double net_per_ms = summary.ReadsPerMs();  // One net DMA each.
    const double disk_per_ms = net_per_ms * spec.miss_ratio;
    table.AddRow({spec.name, row.content, TablePrinter::Num(net_per_ms, 1),
                  TablePrinter::Num(disk_per_ms, 1),
                  TablePrinter::Num(summary.CpuAccessesPerMs(), 0),
                  row.paper});
  }
  table.Print(std::cout);
  return 0;
}
