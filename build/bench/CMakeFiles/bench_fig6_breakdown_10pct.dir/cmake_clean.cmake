file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_breakdown_10pct.dir/bench_fig6_breakdown_10pct.cc.o"
  "CMakeFiles/bench_fig6_breakdown_10pct.dir/bench_fig6_breakdown_10pct.cc.o.d"
  "bench_fig6_breakdown_10pct"
  "bench_fig6_breakdown_10pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_breakdown_10pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
