# Empty dependencies file for bench_fig6_breakdown_10pct.
# This may be replaced when dependencies are built.
