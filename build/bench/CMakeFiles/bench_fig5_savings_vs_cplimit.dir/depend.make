# Empty dependencies file for bench_fig5_savings_vs_cplimit.
# This may be replaced when dependencies are built.
