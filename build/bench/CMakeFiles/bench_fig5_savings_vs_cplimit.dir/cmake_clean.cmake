file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_savings_vs_cplimit.dir/bench_fig5_savings_vs_cplimit.cc.o"
  "CMakeFiles/bench_fig5_savings_vs_cplimit.dir/bench_fig5_savings_vs_cplimit.cc.o.d"
  "bench_fig5_savings_vs_cplimit"
  "bench_fig5_savings_vs_cplimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_savings_vs_cplimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
