# Empty compiler generated dependencies file for bench_ext_dss.
# This may be replaced when dependencies are built.
