file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dss.dir/bench_ext_dss.cc.o"
  "CMakeFiles/bench_ext_dss.dir/bench_ext_dss.cc.o.d"
  "bench_ext_dss"
  "bench_ext_dss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
