# Empty compiler generated dependencies file for bench_fig8_intensity.
# This may be replaced when dependencies are built.
