file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_intensity.dir/bench_fig8_intensity.cc.o"
  "CMakeFiles/bench_fig8_intensity.dir/bench_fig8_intensity.cc.o.d"
  "bench_fig8_intensity"
  "bench_fig8_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
