# Empty compiler generated dependencies file for dmasim_tests.
# This may be replaced when dependencies are built.
