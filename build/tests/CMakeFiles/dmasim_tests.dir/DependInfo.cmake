
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_aligner_test.cc" "tests/CMakeFiles/dmasim_tests.dir/core_aligner_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/core_aligner_test.cc.o.d"
  "/root/repo/tests/core_controller_test.cc" "tests/CMakeFiles/dmasim_tests.dir/core_controller_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/core_controller_test.cc.o.d"
  "/root/repo/tests/core_layout_test.cc" "tests/CMakeFiles/dmasim_tests.dir/core_layout_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/core_layout_test.cc.o.d"
  "/root/repo/tests/core_slack_test.cc" "tests/CMakeFiles/dmasim_tests.dir/core_slack_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/core_slack_test.cc.o.d"
  "/root/repo/tests/disk_net_test.cc" "tests/CMakeFiles/dmasim_tests.dir/disk_net_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/disk_net_test.cc.o.d"
  "/root/repo/tests/granularity_test.cc" "tests/CMakeFiles/dmasim_tests.dir/granularity_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/granularity_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/dmasim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_bus_test.cc" "tests/CMakeFiles/dmasim_tests.dir/io_bus_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/io_bus_test.cc.o.d"
  "/root/repo/tests/mem_memory_chip_test.cc" "tests/CMakeFiles/dmasim_tests.dir/mem_memory_chip_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/mem_memory_chip_test.cc.o.d"
  "/root/repo/tests/mem_power_model_test.cc" "tests/CMakeFiles/dmasim_tests.dir/mem_power_model_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/mem_power_model_test.cc.o.d"
  "/root/repo/tests/mem_power_policy_test.cc" "tests/CMakeFiles/dmasim_tests.dir/mem_power_policy_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/mem_power_policy_test.cc.o.d"
  "/root/repo/tests/server_test.cc" "tests/CMakeFiles/dmasim_tests.dir/server_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/server_test.cc.o.d"
  "/root/repo/tests/sim_simulator_test.cc" "tests/CMakeFiles/dmasim_tests.dir/sim_simulator_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/sim_simulator_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/dmasim_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/dmasim_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/trace_workloads_test.cc" "tests/CMakeFiles/dmasim_tests.dir/trace_workloads_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/trace_workloads_test.cc.o.d"
  "/root/repo/tests/trace_zipf_test.cc" "tests/CMakeFiles/dmasim_tests.dir/trace_zipf_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/trace_zipf_test.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/dmasim_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/dmasim_tests.dir/util_random_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmasim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
