file(REMOVE_RECURSE
  "libdmasim.a"
)
