
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/layout_manager.cc" "src/CMakeFiles/dmasim.dir/core/layout_manager.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/core/layout_manager.cc.o.d"
  "/root/repo/src/core/memory_controller.cc" "src/CMakeFiles/dmasim.dir/core/memory_controller.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/core/memory_controller.cc.o.d"
  "/root/repo/src/core/temporal_aligner.cc" "src/CMakeFiles/dmasim.dir/core/temporal_aligner.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/core/temporal_aligner.cc.o.d"
  "/root/repo/src/disk/disk_model.cc" "src/CMakeFiles/dmasim.dir/disk/disk_model.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/disk/disk_model.cc.o.d"
  "/root/repo/src/io/io_bus.cc" "src/CMakeFiles/dmasim.dir/io/io_bus.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/io/io_bus.cc.o.d"
  "/root/repo/src/mem/memory_chip.cc" "src/CMakeFiles/dmasim.dir/mem/memory_chip.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/mem/memory_chip.cc.o.d"
  "/root/repo/src/server/data_server.cc" "src/CMakeFiles/dmasim.dir/server/data_server.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/server/data_server.cc.o.d"
  "/root/repo/src/server/simulation_driver.cc" "src/CMakeFiles/dmasim.dir/server/simulation_driver.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/server/simulation_driver.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/dmasim.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/dmasim.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/dmasim.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/dmasim.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/trace/workloads.cc.o.d"
  "/root/repo/src/trace/zipf.cc" "src/CMakeFiles/dmasim.dir/trace/zipf.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/trace/zipf.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/dmasim.dir/util/random.cc.o" "gcc" "src/CMakeFiles/dmasim.dir/util/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
