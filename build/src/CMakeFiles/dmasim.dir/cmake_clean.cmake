file(REMOVE_RECURSE
  "CMakeFiles/dmasim.dir/core/layout_manager.cc.o"
  "CMakeFiles/dmasim.dir/core/layout_manager.cc.o.d"
  "CMakeFiles/dmasim.dir/core/memory_controller.cc.o"
  "CMakeFiles/dmasim.dir/core/memory_controller.cc.o.d"
  "CMakeFiles/dmasim.dir/core/temporal_aligner.cc.o"
  "CMakeFiles/dmasim.dir/core/temporal_aligner.cc.o.d"
  "CMakeFiles/dmasim.dir/disk/disk_model.cc.o"
  "CMakeFiles/dmasim.dir/disk/disk_model.cc.o.d"
  "CMakeFiles/dmasim.dir/io/io_bus.cc.o"
  "CMakeFiles/dmasim.dir/io/io_bus.cc.o.d"
  "CMakeFiles/dmasim.dir/mem/memory_chip.cc.o"
  "CMakeFiles/dmasim.dir/mem/memory_chip.cc.o.d"
  "CMakeFiles/dmasim.dir/server/data_server.cc.o"
  "CMakeFiles/dmasim.dir/server/data_server.cc.o.d"
  "CMakeFiles/dmasim.dir/server/simulation_driver.cc.o"
  "CMakeFiles/dmasim.dir/server/simulation_driver.cc.o.d"
  "CMakeFiles/dmasim.dir/stats/table.cc.o"
  "CMakeFiles/dmasim.dir/stats/table.cc.o.d"
  "CMakeFiles/dmasim.dir/trace/trace.cc.o"
  "CMakeFiles/dmasim.dir/trace/trace.cc.o.d"
  "CMakeFiles/dmasim.dir/trace/trace_io.cc.o"
  "CMakeFiles/dmasim.dir/trace/trace_io.cc.o.d"
  "CMakeFiles/dmasim.dir/trace/workloads.cc.o"
  "CMakeFiles/dmasim.dir/trace/workloads.cc.o.d"
  "CMakeFiles/dmasim.dir/trace/zipf.cc.o"
  "CMakeFiles/dmasim.dir/trace/zipf.cc.o.d"
  "CMakeFiles/dmasim.dir/util/random.cc.o"
  "CMakeFiles/dmasim.dir/util/random.cc.o.d"
  "libdmasim.a"
  "libdmasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
