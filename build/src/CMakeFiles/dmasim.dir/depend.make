# Empty dependencies file for dmasim.
# This may be replaced when dependencies are built.
