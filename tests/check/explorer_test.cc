// Tests of the bounded explorer and the trace minimizer: the pristine
// protocol must explore clean, every seeded fault must be found and
// shrink to a short reproducing trace, and exploration must be
// deterministic so counterexamples are stable across runs.
#include "check/explorer.h"

#include <gtest/gtest.h>

#include "check/check_config.h"
#include "check/minimizer.h"
#include "check/protocol_harness.h"

namespace dmasim::check {
namespace {

TEST(ExplorerTest, DefaultConfigExploresCleanAndNontrivially) {
  Explorer explorer((CheckerConfig()));
  const ExploreResult result = explorer.Run();
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_FALSE(result.stats.truncated);
  // The 2-chip/2-bus default space is small but far from degenerate.
  EXPECT_GT(result.stats.states_explored, 100u);
  EXPECT_GT(result.stats.dedup_hits, 0u);      // Interleavings converge.
  EXPECT_GT(result.stats.terminal_states, 0u); // Full drains are reachable.
  EXPECT_GT(result.stats.transitions_audited, 0u);
  EXPECT_GT(result.stats.frontier_peak, 0u);
  EXPECT_GT(result.stats.depth_reached, 0);
}

TEST(ExplorerTest, ExplorationIsDeterministic) {
  Explorer first((CheckerConfig()));
  Explorer second((CheckerConfig()));
  const ExploreResult a = first.Run();
  const ExploreResult b = second.Run();
  EXPECT_EQ(a.stats.states_explored, b.stats.states_explored);
  EXPECT_EQ(a.stats.dedup_hits, b.stats.dedup_hits);
  EXPECT_EQ(a.stats.actions_applied, b.stats.actions_applied);
  EXPECT_EQ(a.stats.terminal_states, b.stats.terminal_states);
  EXPECT_EQ(a.stats.depth_reached, b.stats.depth_reached);
}

TEST(ExplorerTest, StateCapTruncatesInsteadOfClaimingClean) {
  Explorer explorer(CheckerConfig{}, /*max_states=*/10);
  const ExploreResult result = explorer.Run();
  EXPECT_TRUE(result.stats.truncated);
  EXPECT_LE(result.stats.states_explored, 10u);
}

TEST(ExplorerTest, ResyncSkipFaultIsFoundAndMinimizesToOneAction) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  Explorer explorer(config);
  const ExploreResult result = explorer.Run();
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->property, "check.power-state-legality");

  const std::vector<Action> minimized =
      MinimizeTrace(config, result.violation->actions,
                    result.violation->property);
  // Any single wake trips the zero-duration resync, so the 1-minimal
  // trace is a single action.
  EXPECT_EQ(minimized.size(), 1u);
  EXPECT_TRUE(Reproduces(config, minimized, result.violation->property));
}

TEST(ExplorerTest, LostReleaseFaultIsFoundAndMinimizedTraceReproduces) {
  CheckerConfig config;
  config.fault = CheckFault::kLostRelease;
  Explorer explorer(config);
  const ExploreResult result = explorer.Run();
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->property, "check.conservation");

  const std::vector<Action> minimized =
      MinimizeTrace(config, result.violation->actions,
                    result.violation->property);
  EXPECT_LE(minimized.size(), result.violation->actions.size());
  // Dropping a request needs at least a release, which needs >= 2
  // gated arrivals under the default bounds.
  EXPECT_GE(minimized.size(), 2u);
  EXPECT_TRUE(Reproduces(config, minimized, result.violation->property));
}

TEST(ExplorerTest, StuckDeadlineFaultIsFoundAndMinimizedTraceReproduces) {
  CheckerConfig config;
  config.fault = CheckFault::kStuckDeadline;
  Explorer explorer(config);
  const ExploreResult result = explorer.Run();
  ASSERT_TRUE(result.violation.has_value());
  // Depending on which interleaving BFS reaches first, the stuck
  // release surfaces as a stale deadline at release time or as the
  // bounded-delay property firing on a later pass.
  EXPECT_TRUE(result.violation->property == "check.deadline-honored" ||
              result.violation->property == "check.bounded-release-delay")
      << result.violation->property;

  const std::vector<Action> minimized =
      MinimizeTrace(config, result.violation->actions,
                    result.violation->property);
  EXPECT_LE(minimized.size(), result.violation->actions.size());
  EXPECT_TRUE(Reproduces(config, minimized, result.violation->property));
}

TEST(ExplorerTest, ReplayActionsReportsDisabledActions) {
  ProtocolHarness harness((CheckerConfig()));
  // A step-down on a static-nap resting chip is never enabled.
  const std::vector<Action> actions = {{ActionKind::kStepDown, 0, 0}};
  std::size_t applied = 7;
  EXPECT_FALSE(ReplayActions(actions, &harness, &applied));
  EXPECT_EQ(applied, 0u);
  EXPECT_FALSE(harness.violation().has_value());
}

TEST(MinimizerTest, AlreadyMinimalTraceIsUnchanged) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  const std::vector<Action> one = {{ActionKind::kCpuAccess, 0, 0}};
  ASSERT_TRUE(Reproduces(config, one, "check.power-state-legality"));
  const std::vector<Action> minimized =
      MinimizeTrace(config, one, "check.power-state-legality");
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0], one[0]);
}

TEST(MinimizerTest, PaddedTraceShrinksToTheTriggeringSuffix) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  // Padding: arrivals on chip 1 are irrelevant to the chip-0 wake fault.
  const std::vector<Action> padded = {{ActionKind::kArrive, 0, 1},
                                      {ActionKind::kArrive, 0, 1},
                                      {ActionKind::kCpuAccess, 0, 0}};
  ASSERT_TRUE(Reproduces(config, padded, "check.power-state-legality"));
  const std::vector<Action> minimized =
      MinimizeTrace(config, padded, "check.power-state-legality");
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0], (Action{ActionKind::kCpuAccess, 0, 0}));
}

TEST(MinimizerTest, ReproducesRejectsTheWrongProperty) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  const std::vector<Action> one = {{ActionKind::kCpuAccess, 0, 0}};
  EXPECT_TRUE(Reproduces(config, one, ""));  // Any property.
  EXPECT_FALSE(Reproduces(config, one, "check.conservation"));
}

}  // namespace
}  // namespace dmasim::check
