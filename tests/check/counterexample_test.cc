// Tests of the counterexample file format: lossless round-trip,
// line-numbered parse diagnostics, replay semantics, and the committed
// fixture under tests/check/data/ (the same file the full-simulator
// replay suite re-executes).
#include "check/counterexample.h"

#include <gtest/gtest.h>

#include "check/check_config.h"
#include "check/explorer.h"

#ifndef DMASIM_SOURCE_DIR
#error "DMASIM_SOURCE_DIR must point at the repository root"
#endif

namespace dmasim::check {
namespace {

Counterexample ResyncCounterexample() {
  Counterexample ce;
  ce.config.fault = CheckFault::kResyncSkip;
  ce.property = "check.power-state-legality";
  ce.message = "chip 0 woke in zero ticks";
  ce.actions = {{ActionKind::kCpuAccess, 0, 0}};
  return ce;
}

TEST(CounterexampleTest, FormatParsesBackLosslessly) {
  Counterexample ce = ResyncCounterexample();
  ce.config.chips = 3;
  ce.config.buses = 3;
  ce.config.mu = 1.5;
  ce.config.epoch_length = 2 * kMicrosecond;
  ce.config.policy = CheckPolicy::kStaticPowerdown;
  ce.actions.push_back({ActionKind::kArrive, 2, 1});
  ce.actions.push_back({ActionKind::kStepDown, 0, 2});
  ce.actions.push_back({ActionKind::kAdvance, 0, 0});

  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(ParseCounterexampleText(FormatCounterexample(ce), &parsed,
                                      &error))
      << error;
  EXPECT_EQ(parsed.config.chips, 3);
  EXPECT_EQ(parsed.config.buses, 3);
  EXPECT_DOUBLE_EQ(parsed.config.mu, 1.5);
  EXPECT_EQ(parsed.config.epoch_length, 2 * kMicrosecond);
  EXPECT_EQ(parsed.config.policy, CheckPolicy::kStaticPowerdown);
  EXPECT_EQ(parsed.config.fault, CheckFault::kResyncSkip);
  EXPECT_EQ(parsed.property, ce.property);
  EXPECT_EQ(parsed.message, ce.message);
  ASSERT_EQ(parsed.actions.size(), ce.actions.size());
  for (std::size_t i = 0; i < ce.actions.size(); ++i) {
    EXPECT_EQ(parsed.actions[i], ce.actions[i]) << i;
  }
}

TEST(CounterexampleTest, MultilineMessagesAreFlattenedOnWrite) {
  Counterexample ce = ResyncCounterexample();
  ce.message = "first line\nsecond line";
  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(ParseCounterexampleText(FormatCounterexample(ce), &parsed,
                                      &error))
      << error;
  EXPECT_EQ(parsed.message, "first line second line");
}

TEST(CounterexampleTest, BadHeaderIsRejectedWithLineNumber) {
  Counterexample parsed;
  std::string error;
  EXPECT_FALSE(ParseCounterexampleText("bogus\n", &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(CounterexampleTest, UnknownKeyIsRejectedWithLineNumber) {
  std::string text = FormatCounterexample(ResyncCounterexample());
  // Inject a typo'd key right after the header (line 2).
  text.insert(text.find('\n') + 1, "chps 2\n");
  Counterexample parsed;
  std::string error;
  EXPECT_FALSE(ParseCounterexampleText(text, &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("chps"), std::string::npos) << error;
}

TEST(CounterexampleTest, MalformedActionIsRejected) {
  Counterexample ce = ResyncCounterexample();
  std::string text = FormatCounterexample(ce);
  const std::size_t at = text.find("cpu 0\n");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 5, "cpu x");
  Counterexample parsed;
  std::string error;
  EXPECT_FALSE(ParseCounterexampleText(text, &parsed, &error));
  EXPECT_NE(error.find("malformed action"), std::string::npos) << error;
}

TEST(CounterexampleTest, TruncatedActionListIsRejected) {
  Counterexample ce = ResyncCounterexample();
  std::string text = FormatCounterexample(ce);
  const std::size_t at = text.find("cpu 0\n");
  ASSERT_NE(at, std::string::npos);
  text.erase(at);  // Drop the action line and the trailing "end".
  Counterexample parsed;
  std::string error;
  EXPECT_FALSE(ParseCounterexampleText(text, &parsed, &error));
  EXPECT_NE(error.find("end of input"), std::string::npos) << error;
}

TEST(CounterexampleTest, ReplayReproducesASeededFault) {
  const Counterexample ce = ResyncCounterexample();
  std::string observed;
  EXPECT_TRUE(ReplayCounterexample(ce, &observed));
  EXPECT_NE(observed.find("check.power-state-legality"), std::string::npos)
      << observed;
}

TEST(CounterexampleTest, ReplayFailsCleanlyWithoutTheFault) {
  Counterexample ce = ResyncCounterexample();
  ce.config.fault = CheckFault::kNone;  // Pristine model: nothing fires.
  std::string observed;
  EXPECT_FALSE(ReplayCounterexample(ce, &observed));
  EXPECT_EQ(observed, "no violation reproduced");
}

TEST(CounterexampleTest, CommittedResyncFixtureReplays) {
  const std::string path =
      std::string(DMASIM_SOURCE_DIR) +
      "/tests/check/data/resync_skip.counterexample";
  Counterexample ce;
  std::string error;
  ASSERT_TRUE(ReadCounterexampleFile(path, &ce, &error)) << error;
  EXPECT_EQ(ce.config.fault, CheckFault::kResyncSkip);
  EXPECT_EQ(ce.property, "check.power-state-legality");
  ASSERT_FALSE(ce.actions.empty());

  std::string observed;
  EXPECT_TRUE(ReplayCounterexample(ce, &observed)) << observed;
}

TEST(CounterexampleTest, WriteAndReadFileRoundTrips) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  Explorer explorer(config);
  const ExploreResult result = explorer.Run();
  ASSERT_TRUE(result.violation.has_value());

  Counterexample ce;
  ce.config = config;
  ce.property = result.violation->property;
  ce.message = result.violation->message;
  ce.actions = result.violation->actions;

  const std::string path =
      ::testing::TempDir() + "/dmasim_check_roundtrip.counterexample";
  std::string error;
  ASSERT_TRUE(WriteCounterexampleFile(ce, path, &error)) << error;
  Counterexample loaded;
  ASSERT_TRUE(ReadCounterexampleFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.property, ce.property);
  ASSERT_EQ(loaded.actions.size(), ce.actions.size());
  std::string observed;
  EXPECT_TRUE(ReplayCounterexample(loaded, &observed)) << observed;
}

}  // namespace
}  // namespace dmasim::check
