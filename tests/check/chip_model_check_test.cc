// Model-checker coverage for the chip power-model family: the DDR4
// cascade (including self-refresh entry/exit) explores clean under the
// full property set, the seeded skipped-tXS fault is caught, and the
// counterexample format round-trips the chip_model configuration key
// (absent key = RDRAM, so committed pre-family fixtures still parse).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check_config.h"
#include "check/counterexample.h"
#include "check/explorer.h"
#include "check/protocol_harness.h"
#include "mem/chip_power_model.h"

namespace dmasim::check {
namespace {

CheckerConfig Ddr4Config() {
  CheckerConfig config;
  config.chip_model = ChipModelKind::kDdr4;
  config.policy = CheckPolicy::kDynamicThreshold;
  return config;
}

TEST(ChipModelCheckTest, Ddr4CascadeExploresClean) {
  Explorer explorer(Ddr4Config());
  const ExploreResult result = explorer.Run();
  EXPECT_FALSE(result.violation.has_value())
      << result.violation->property << ": " << result.violation->message;
  EXPECT_FALSE(result.stats.truncated);
  EXPECT_GT(result.stats.states_explored, 100u);
  // The FSMs really were driven through audited transitions, which for
  // this chain includes self-refresh entries and exits.
  EXPECT_GT(result.stats.transitions_audited, 0u);
}

TEST(ChipModelCheckTest, Ddr4HarnessReachesSelfRefresh) {
  // Chips rest in the policy's deepest state -- self-refresh for the
  // DDR4 cascade. Wake one, step it back down through every state, and
  // wake it again: entry and exit of the whole chain, each judged by
  // the power-state auditor against the pristine reference.
  CheckerConfig config = Ddr4Config();
  config.max_cpu_accesses = 2;
  ProtocolHarness harness(config);
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kSelfRefresh);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kCpuAccess, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActive);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kStepDown, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kStandby);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kStepDown, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActivePowerdown);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kStepDown, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kPrechargePowerdown);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kStepDown, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kSelfRefresh);
  ASSERT_TRUE(harness.Apply(Action{ActionKind::kCpuAccess, 0, 0}));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActive);
  EXPECT_FALSE(harness.violation().has_value());
  EXPECT_GE(harness.transitions_checked(), 6u);
}

TEST(ChipModelCheckTest, Ddr4SkippedSelfRefreshExitIsCaught) {
  CheckerConfig config = Ddr4Config();
  config.fault = CheckFault::kResyncSkip;  // tXS skipped on wake.
  Explorer explorer(config);
  const ExploreResult result = explorer.Run();
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->property, "check.power-state-legality");
}

TEST(ChipModelCheckTest, CorrectedAndSectoredKeepTheRdramChainClean) {
  for (ChipModelKind kind :
       {ChipModelKind::kRdramCorrected, ChipModelKind::kSectored}) {
    CheckerConfig config;
    config.chip_model = kind;
    Explorer explorer(config);
    const ExploreResult result = explorer.Run();
    EXPECT_FALSE(result.violation.has_value())
        << ChipModelKindName(kind) << ": " << result.violation->property;
  }
}

TEST(ChipModelCheckTest, CounterexampleRoundTripsChipModel) {
  Counterexample ce;
  ce.config = Ddr4Config();
  ce.property = "check.power-state-legality";
  ce.message = "synthetic";
  ce.actions.push_back(Action{ActionKind::kStepDown, 0, 0});

  const std::string text = FormatCounterexample(ce);
  EXPECT_NE(text.find("chip_model ddr4"), std::string::npos);

  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(ParseCounterexampleText(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.config.chip_model, ChipModelKind::kDdr4);
  EXPECT_EQ(parsed.config.policy, CheckPolicy::kDynamicThreshold);
}

TEST(ChipModelCheckTest, MissingChipModelKeyDefaultsToRdram) {
  // Pre-family counterexample files carry no chip_model line; they must
  // keep parsing and keep meaning RDRAM.
  Counterexample ce;
  ce.property = "p";
  ce.actions.push_back(Action{ActionKind::kAdvance, 0, 0});
  std::string text = FormatCounterexample(ce);
  const std::string::size_type at = text.find("chip_model rdram\n");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, std::string("chip_model rdram\n").size());

  Counterexample parsed;
  std::string error;
  ASSERT_TRUE(ParseCounterexampleText(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.config.chip_model, ChipModelKind::kRdram);
}

}  // namespace
}  // namespace dmasim::check
