// Unit tests of the protocol checker's stepping seam: the harness must
// mirror MemoryController's decision sequence exactly (gate on arrival
// to a low chip, quorum/deadline/epoch releases, CPU priority, the
// activation debit taken while the chip is still low) and surface each
// seeded fault as the right property violation.
#include "check/protocol_harness.h"

#include <gtest/gtest.h>

#include "check/check_config.h"

namespace dmasim::check {
namespace {

Action Arrive(int bus, int chip) { return {ActionKind::kArrive, bus, chip}; }
Action Cpu(int chip) { return {ActionKind::kCpuAccess, 0, chip}; }
Action StepDown(int chip) { return {ActionKind::kStepDown, 0, chip}; }
Action Advance() { return {ActionKind::kAdvance, 0, 0}; }

TEST(ProtocolHarnessTest, InitialStateRestsPerPolicy) {
  CheckerConfig config;  // static-nap.
  ProtocolHarness harness(config);
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kNap);
  EXPECT_EQ(harness.fsm(1).state(), PowerState::kNap);
  EXPECT_FALSE(harness.violation().has_value());
  EXPECT_FALSE(harness.Quiescent());

  CheckerConfig deep = config;
  deep.policy = CheckPolicy::kStaticPowerdown;
  ProtocolHarness deep_harness(deep);
  EXPECT_EQ(deep_harness.fsm(0).state(), PowerState::kPowerdown);
}

TEST(ProtocolHarnessTest, ArrivalToLowChipGatesFirstRequest) {
  ProtocolHarness harness(CheckerConfig{});
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  EXPECT_TRUE(harness.aligner().HasGated(0));
  EXPECT_EQ(harness.aligner().TotalPending(), 1);
  EXPECT_TRUE(harness.record(0).gated_ever);
  EXPECT_FALSE(harness.record(0).served);
  // The chip stays asleep; only the first request was credited.
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kNap);
  EXPECT_EQ(harness.aligner().slack().arrivals(), 1u);
}

TEST(ProtocolHarnessTest, QuorumReleaseWakesChipAndDebitsWhileLow) {
  CheckerConfig config;  // k = 2, two buses.
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Arrive(1, 0)));  // Second distinct bus: quorum.
  EXPECT_EQ(harness.aligner().last_release_cause(), ReleaseCause::kQuorum);
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActive);
  EXPECT_EQ(harness.served_count(), 2);
  EXPECT_TRUE(harness.record(0).served);
  EXPECT_TRUE(harness.record(1).served);
  EXPECT_EQ(harness.aligner().TotalPending(), 0);
  EXPECT_EQ(harness.transitions_checked(), 1u);  // One validated wake.
  // Slack: 2 first-request credits accrued before the release; the
  // release debits the nap resync (60 ns) for both pending requests
  // while the chip is still napping, then serving credits the remaining
  // 2 * (n - 1) requests.
  const double t = static_cast<double>(config.t_request);
  const double expected = 2.0 * config.mu * t      // First-request credits.
                          - 2.0 * 60000.0          // Activation debit.
                          + 2.0 * 3.0 * config.mu * t;  // Lockstep credits.
  EXPECT_DOUBLE_EQ(harness.aligner().slack().slack(), expected);
}

TEST(ProtocolHarnessTest, CpuAccessReleasesGatedWithPriority) {
  ProtocolHarness harness(CheckerConfig{});
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Cpu(0)));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActive);
  EXPECT_TRUE(harness.record(0).served);
  EXPECT_EQ(harness.aligner().TotalPending(), 0);
}

TEST(ProtocolHarnessTest, DeadlineAdvanceReleasesAtTheBudget) {
  CheckerConfig config;
  config.epoch_length = 50 * kMicrosecond;  // Keep epochs out of the way.
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Advance()));
  // deadline = gated_at + n * mu * T = 4 * 480000.
  EXPECT_EQ(harness.now(), 4 * 480000);
  EXPECT_EQ(harness.aligner().last_release_cause(), ReleaseCause::kDeadline);
  EXPECT_TRUE(harness.record(0).served);
  EXPECT_EQ(harness.record(0).released_at, harness.now());
}

TEST(ProtocolHarnessTest, EpochExhaustionReleasesTheOldestChip) {
  CheckerConfig config;  // 1 us epochs: the epoch debit exhausts slack.
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Advance()));
  EXPECT_EQ(harness.now(), config.epoch_length);
  ASSERT_EQ(harness.aligner().last_epoch_causes().size(), 1u);
  EXPECT_EQ(harness.aligner().last_epoch_causes()[0],
            ReleaseCause::kEpochExhausted);
  EXPECT_TRUE(harness.record(0).served);
}

TEST(ProtocolHarnessTest, StepDownFollowsThePolicyChain) {
  CheckerConfig config;
  config.policy = CheckPolicy::kDynamicThreshold;
  ProtocolHarness harness(config);
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kPowerdown);  // Resting.
  ASSERT_TRUE(harness.Apply(Cpu(0)));  // Wake chip 0.
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kActive);
  ASSERT_TRUE(harness.Apply(StepDown(0)));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kStandby);
  ASSERT_TRUE(harness.Apply(StepDown(0)));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kNap);
  ASSERT_TRUE(harness.Apply(StepDown(0)));
  EXPECT_EQ(harness.fsm(0).state(), PowerState::kPowerdown);
  EXPECT_FALSE(harness.IsEnabled(StepDown(0)));  // Chain exhausted.
  EXPECT_FALSE(harness.violation().has_value());
}

TEST(ProtocolHarnessTest, DrainedRunPassesTheTerminalChecks) {
  CheckerConfig config;
  config.max_arrivals = 1;
  config.max_cpu_accesses = 0;
  config.max_epochs = 1;
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Advance()));  // Epoch exhausts slack: release.
  ASSERT_TRUE(harness.Quiescent());
  harness.CheckTerminal();
  EXPECT_FALSE(harness.violation().has_value());
}

TEST(ProtocolHarnessTest, EncodingIsDeterministicAndStateSensitive) {
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  {
    ProtocolHarness harness(CheckerConfig{});
    ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
    harness.EncodeState(&a);
  }
  {
    ProtocolHarness harness(CheckerConfig{});
    ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
    harness.EncodeState(&b);
  }
  EXPECT_EQ(a, b);  // Same path, same canonical state.
  {
    ProtocolHarness harness(CheckerConfig{});
    ASSERT_TRUE(harness.Apply(Arrive(0, 1)));  // Different target chip.
    harness.EncodeState(&b);
  }
  EXPECT_NE(a, b);
}

TEST(ProtocolHarnessTest, ResyncSkipFaultViolatesPowerStateLegality) {
  CheckerConfig config;
  config.fault = CheckFault::kResyncSkip;
  ProtocolHarness harness(config);
  EXPECT_FALSE(harness.Apply(Cpu(0)));  // Wake from nap takes 0 ticks.
  ASSERT_TRUE(harness.violation().has_value());
  EXPECT_EQ(harness.violation()->property, "check.power-state-legality");
  EXPECT_NE(harness.violation()->message.find("resync"), std::string::npos);
}

TEST(ProtocolHarnessTest, LostReleaseFaultViolatesConservation) {
  CheckerConfig config;
  config.fault = CheckFault::kLostRelease;
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  EXPECT_FALSE(harness.Apply(Arrive(1, 0)));  // Quorum release drops one.
  ASSERT_TRUE(harness.violation().has_value());
  EXPECT_EQ(harness.violation()->property, "check.conservation");
}

TEST(ProtocolHarnessTest, StuckDeadlineFaultViolatesTheDelayBound) {
  CheckerConfig config;
  config.fault = CheckFault::kStuckDeadline;
  config.epoch_length = 50 * kMicrosecond;  // Deadline fires first.
  ProtocolHarness harness(config);
  ASSERT_TRUE(harness.Apply(Arrive(0, 0)));
  ASSERT_TRUE(harness.Apply(Advance()));   // Re-check skipped by the fault.
  EXPECT_FALSE(harness.Apply(Advance()));  // Time moves past the deadline.
  ASSERT_TRUE(harness.violation().has_value());
  // The stuck release eventually escapes through the epoch valve with a
  // stale deadline (deadline-honored) or trips the periodic delay bound,
  // whichever check sees it first.
  EXPECT_TRUE(harness.violation()->property == "check.deadline-honored" ||
              harness.violation()->property == "check.bounded-release-delay")
      << harness.violation()->property;
}

TEST(ProtocolHarnessTest, EnabledActionsMatchIsEnabled) {
  ProtocolHarness harness(CheckerConfig{});
  std::vector<Action> enabled;
  harness.EnabledActions(&enabled);
  EXPECT_FALSE(enabled.empty());
  for (const Action& action : enabled) {
    EXPECT_TRUE(harness.IsEnabled(action)) << FormatAction(action);
  }
  // No gated requests and epochs remaining: advance targets the epoch.
  EXPECT_TRUE(harness.IsEnabled(Advance()));
  // Static-nap chips at rest have no further step-down.
  EXPECT_FALSE(harness.IsEnabled(StepDown(0)));
}

}  // namespace
}  // namespace dmasim::check
