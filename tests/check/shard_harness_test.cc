// Tests for the shard interleaving harness (src/check/shard_harness.h):
// permutation indexing, clean-exploration convergence with exact run
// counts, detection + ddmin minimization of both seeded engine faults,
// the counterexample file format, and replay of the committed fixtures
// against a pristine control.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/shard_harness.h"

namespace dmasim::check {
namespace {

TEST(ShardPermutationTest, CountAndIndexing) {
  EXPECT_EQ(ShardPermutationCount(2), 2);
  EXPECT_EQ(ShardPermutationCount(3), 6);

  // Index 0 is the identity; all indices are distinct permutations.
  std::set<std::vector<int>> seen;
  for (int index = 0; index < 6; ++index) {
    std::vector<int> perm;
    NthShardPermutation(3, index, &perm);
    ASSERT_EQ(perm.size(), 3u);
    EXPECT_TRUE(std::is_permutation(perm.begin(), perm.end(),
                                    std::vector<int>{0, 1, 2}.begin()));
    seen.insert(perm);
  }
  EXPECT_EQ(seen.size(), 6u);
  std::vector<int> identity;
  NthShardPermutation(3, 0, &identity);
  EXPECT_EQ(identity, (std::vector<int>{0, 1, 2}));
}

TEST(ShardHarnessTest, RunIsDeterministic) {
  ShardCheckConfig config;
  const ShardRunOutcome a = RunShardScenario(config, {});
  const ShardRunOutcome b = RunShardScenario(config, {});
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.window_digests, b.window_digests);
  EXPECT_FALSE(a.violation);
  EXPECT_GT(a.barriers, 0u);
  EXPECT_GT(a.delivered_messages, 0u);
  EXPECT_GT(a.executed_events, 0u);
}

TEST(ShardHarnessTest, CleanExplorationConvergesWithExactRunCount) {
  ShardCheckConfig config;
  config.shards = 3;
  config.max_choice_windows = 2;
  const ShardExploreResult result = ExploreShardInterleavings(config);

  EXPECT_FALSE(result.violation_found);
  // Canonical run + every non-identity sequence over 6^2 drain orders.
  EXPECT_EQ(result.stats.runs, 36u);
  EXPECT_EQ(result.stats.choice_windows, 2u);
  EXPECT_EQ(result.stats.barriers, 3u);
  // The determinism contract: every interleaving, one fingerprint.
  EXPECT_EQ(result.stats.distinct_fingerprints, 1u);
  EXPECT_NE(result.canonical_fingerprint, 0u);
}

TEST(ShardHarnessTest, TwoShardExplorationConverges) {
  ShardCheckConfig config;
  config.shards = 2;
  config.max_choice_windows = 3;
  const ShardExploreResult result = ExploreShardInterleavings(config);
  EXPECT_FALSE(result.violation_found);
  EXPECT_EQ(result.stats.runs, 8u);  // 2^3 sequences, canonical included.
  EXPECT_EQ(result.stats.distinct_fingerprints, 1u);
}

TEST(ShardHarnessTest, SkipBarrierSortFaultIsFoundAndMinimized) {
  ShardCheckConfig config;
  config.fault = EngineFault::kSkipBarrierSort;
  const ShardExploreResult result = ExploreShardInterleavings(config);

  ASSERT_TRUE(result.violation_found);
  EXPECT_EQ(result.violation.property, "shard.barrier-causality");
  // Latent on the identity path: all of a barrier's deliveries share one
  // deliver_at, so the raw src-major drain order equals the sorted order
  // and only a perturbed drain order exposes the missing sort.
  EXPECT_FALSE(result.violation.perms.empty());
  EXPECT_GT(result.stats.runs, 1u);

  const ShardTrace minimized =
      MinimizeShardTrace(config, result.violation.perms,
                         result.violation.property);
  int non_identity = 0;
  for (int perm : minimized) non_identity += perm != 0 ? 1 : 0;
  EXPECT_EQ(non_identity, 1);  // One perturbed barrier suffices.
  EXPECT_TRUE(ShardTraceReproduces(config, minimized,
                                   result.violation.property));
  // The pristine engine shrugs off the same perturbation.
  ShardCheckConfig pristine = config;
  pristine.fault = EngineFault::kNone;
  EXPECT_FALSE(ShardTraceReproduces(pristine, minimized,
                                    result.violation.property));
}

TEST(ShardHarnessTest, DeliverEarlyFaultIsCaughtOnTheCanonicalPath) {
  ShardCheckConfig config;
  config.fault = EngineFault::kDeliverEarly;
  const ShardExploreResult result = ExploreShardInterleavings(config);

  ASSERT_TRUE(result.violation_found);
  EXPECT_EQ(result.violation.property, "shard.lookahead-violation");
  // The fault fires on shard 0's very first send: no schedule
  // perturbation is needed, so the minimal trace is empty.
  EXPECT_TRUE(result.violation.perms.empty());
  EXPECT_EQ(result.stats.runs, 1u);
}

TEST(ShardCounterexampleTest, FormatParsesBackUnchanged) {
  ShardCounterexample ce;
  ce.config.shards = 2;
  ce.config.events_per_shard = 3;
  ce.config.max_hops = 1;
  ce.config.lookahead = 250;
  ce.config.max_choice_windows = 5;
  ce.config.fault = EngineFault::kSkipBarrierSort;
  ce.property = "shard.barrier-causality";
  ce.message = "delivery order leaked the drain order";
  ce.perms = {0, 1};

  ShardCounterexample parsed;
  std::string error;
  ASSERT_TRUE(ParseShardCounterexampleText(FormatShardCounterexample(ce),
                                           &parsed, &error))
      << error;
  EXPECT_EQ(parsed.config.shards, ce.config.shards);
  EXPECT_EQ(parsed.config.events_per_shard, ce.config.events_per_shard);
  EXPECT_EQ(parsed.config.max_hops, ce.config.max_hops);
  EXPECT_EQ(parsed.config.lookahead, ce.config.lookahead);
  EXPECT_EQ(parsed.config.max_choice_windows, ce.config.max_choice_windows);
  EXPECT_EQ(parsed.config.fault, ce.config.fault);
  EXPECT_EQ(parsed.property, ce.property);
  EXPECT_EQ(parsed.message, ce.message);
  EXPECT_EQ(parsed.perms, ce.perms);
}

TEST(ShardCounterexampleTest, ParseRejectsMalformedInputWithLineNumbers) {
  ShardCounterexample parsed;
  std::string error;

  EXPECT_FALSE(ParseShardCounterexampleText("not-a-header\n", &parsed,
                                            &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  const std::string unknown_key =
      "dmasim-shard-counterexample v1\nshards 2\nbogus 3\n";
  EXPECT_FALSE(ParseShardCounterexampleText(unknown_key, &parsed, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  const std::string truncated =
      "dmasim-shard-counterexample v1\nshards 2\nperms 2\n0\n";
  EXPECT_FALSE(ParseShardCounterexampleText(truncated, &parsed, &error));
  EXPECT_NE(error.find("line"), std::string::npos) << error;

  const std::string bad_fault =
      "dmasim-shard-counterexample v1\nfault melt-the-bus\n";
  EXPECT_FALSE(ParseShardCounterexampleText(bad_fault, &parsed, &error));
  EXPECT_NE(error.find("melt-the-bus"), std::string::npos) << error;

  const std::string no_end =
      "dmasim-shard-counterexample v1\nperms 1\n0\ntrailing\n";
  EXPECT_FALSE(ParseShardCounterexampleText(no_end, &parsed, &error));
  EXPECT_NE(error.find("end"), std::string::npos) << error;
}

// The committed fixtures: what `dmasim_check --shard --engine-fault ...`
// wrote after exploration + ddmin. They must keep reproducing through a
// fresh scenario (real Simulators under a real engine), and the same
// trace must be clean on a pristine engine.
class CommittedShardCounterexampleTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CommittedShardCounterexampleTest, ReproducesAndControlIsClean) {
  const std::string path =
      std::string(DMASIM_SOURCE_DIR) + "/tests/check/data/" + GetParam();
  ShardCounterexample ce;
  std::string error;
  ASSERT_TRUE(ReadShardCounterexampleFile(path, &ce, &error)) << error;
  ASSERT_NE(ce.config.fault, EngineFault::kNone);

  std::string observed;
  EXPECT_TRUE(ReplayShardCounterexample(ce, &observed)) << observed;
  EXPECT_NE(observed.find(ce.property), std::string::npos) << observed;

  ShardCounterexample control = ce;
  control.config.fault = EngineFault::kNone;
  EXPECT_FALSE(ReplayShardCounterexample(control, &observed)) << observed;
  EXPECT_EQ(observed, "no violation reproduced");
}

INSTANTIATE_TEST_SUITE_P(Fixtures, CommittedShardCounterexampleTest,
                         ::testing::Values("shard_skip_sort.counterexample",
                                           "shard_deliver_early"
                                           ".counterexample"));

}  // namespace
}  // namespace dmasim::check
