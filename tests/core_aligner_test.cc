// Tests for DMA-TA's temporal aligner (gathering and release rules).
#include "core/temporal_aligner.h"

#include <gtest/gtest.h>

#include "io/dma_transfer.h"

namespace dmasim {
namespace {

constexpr Tick kT = 480000;  // One 512-byte bus slot (ps).

TemporalAlignmentConfig EnabledConfig(double mu = 10.0) {
  TemporalAlignmentConfig config;
  config.enabled = true;
  config.mu = mu;
  return config;
}

// Mirrors MemoryController::DeliverChunk: every arriving DMA-memory
// request credits the slack account before the gating decision.
TemporalAligner::GateResult CreditAndGate(TemporalAligner& aligner, int chip,
                                          DmaTransfer* transfer,
                                          std::int64_t chunk_bytes, Tick now) {
  aligner.slack().CreditArrival();
  return aligner.Gate(chip, transfer, chunk_bytes, now);
}

DmaTransfer MakeTransfer(std::uint64_t id, int bus,
                         std::int64_t bytes = 8192) {
  DmaTransfer transfer;
  transfer.id = id;
  transfer.bus_id = bus;
  transfer.total_bytes = bytes;
  return transfer;
}

TEST(TemporalAlignerTest, RejectsMoreThanSixtyFourBuses) {
  // Quorum tracking packs distinct-bus membership into a 64-bit mask
  // keyed by bus id; the constructor must refuse configurations the mask
  // cannot represent instead of silently aliasing bus 64 onto bit 0.
  EXPECT_DEATH(TemporalAligner(EnabledConfig(), /*chips=*/4, /*buses=*/65,
                               /*k=*/3, kT),
               "precondition violated");
}

TEST(TemporalAlignerTest, AcceptsExactlySixtyFourBuses) {
  TemporalAligner aligner(EnabledConfig(), /*chips=*/4, /*buses=*/64, /*k=*/3,
                          kT);
  DmaTransfer transfer = MakeTransfer(1, /*bus=*/63);
  CreditAndGate(aligner, 0, &transfer, 512, /*now=*/0);
  EXPECT_EQ(aligner.TotalPending(), 1);
}

TEST(TemporalAlignerTest, GateBuffersAndBlocks) {
  TemporalAligner aligner(EnabledConfig(), /*chips=*/4, /*buses=*/3, /*k=*/3,
                          kT);
  DmaTransfer transfer = MakeTransfer(1, 0);
  const auto result = CreditAndGate(aligner, 2, &transfer, 512, /*now=*/0);
  EXPECT_FALSE(result.release_now);
  EXPECT_TRUE(transfer.blocked);
  EXPECT_TRUE(aligner.HasGated(2));
  EXPECT_EQ(aligner.PendingFor(2), 1);
  EXPECT_EQ(aligner.TotalPending(), 1);
  EXPECT_EQ(aligner.TotalGated(), 1u);
}

TEST(TemporalAlignerTest, DeadlineIsTransferBudget) {
  // Budget = mu * T * (number of DMA-memory requests in the transfer).
  TemporalAligner aligner(EnabledConfig(/*mu=*/2.0), 4, 3, 3, kT);
  DmaTransfer transfer = MakeTransfer(1, 0, /*bytes=*/8192);
  const auto result = CreditAndGate(aligner, 0, &transfer, 512, /*now=*/1000);
  // 8192 / 512 = 16 requests -> budget = 2 * T * 16.
  EXPECT_EQ(result.deadline, 1000 + 2 * kT * 16);
}

TEST(TemporalAlignerTest, QuorumFromDistinctBusesReleases) {
  TemporalAligner aligner(EnabledConfig(), 4, 3, 3, kT);
  DmaTransfer t0 = MakeTransfer(1, 0);
  DmaTransfer t1 = MakeTransfer(2, 1);
  DmaTransfer t2 = MakeTransfer(3, 2);
  EXPECT_FALSE(CreditAndGate(aligner, 0, &t0, 512, 0).release_now);
  EXPECT_FALSE(CreditAndGate(aligner, 0, &t1, 512, 10).release_now);
  EXPECT_TRUE(CreditAndGate(aligner, 0, &t2, 512, 20).release_now);

  const auto taken = aligner.TakeGated(0);
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(aligner.TotalPending(), 0);
  EXPECT_EQ(aligner.ReleasedByQuorum(), 1u);
}

TEST(TemporalAlignerTest, SameBusDoesNotFormQuorum) {
  TemporalAligner aligner(EnabledConfig(), 4, 3, 3, kT);
  DmaTransfer t0 = MakeTransfer(1, 1);
  DmaTransfer t1 = MakeTransfer(2, 1);
  DmaTransfer t2 = MakeTransfer(3, 1);
  EXPECT_FALSE(CreditAndGate(aligner, 0, &t0, 512, 0).release_now);
  EXPECT_FALSE(CreditAndGate(aligner, 0, &t1, 512, 0).release_now);
  EXPECT_FALSE(CreditAndGate(aligner, 0, &t2, 512, 0).release_now);
}

TEST(TemporalAlignerTest, BufferCapForcesRelease) {
  TemporalAligner aligner(EnabledConfig(), 4, 3, /*k=*/3, kT);
  // Same bus so no quorum; gather_depth + k = 6 forces release.
  std::vector<DmaTransfer> transfers;
  transfers.reserve(6);
  for (int i = 0; i < 6; ++i) transfers.push_back(MakeTransfer(i + 1, 0));
  bool released = false;
  for (int i = 0; i < 6; ++i) {
    released = CreditAndGate(aligner, 0, &transfers[i], 512, 0).release_now;
  }
  EXPECT_TRUE(released);
}

TEST(TemporalAlignerTest, DeadlineExpiryReleases) {
  TemporalAligner aligner(EnabledConfig(/*mu=*/1.0), 4, 3, 3, kT);
  DmaTransfer transfer = MakeTransfer(1, 0, /*bytes=*/512);  // 1 request.
  const auto result = CreditAndGate(aligner, 0, &transfer, 512, 0);
  EXPECT_FALSE(result.release_now);
  EXPECT_FALSE(aligner.ShouldRelease(0, result.deadline - 1));
  EXPECT_TRUE(aligner.ShouldRelease(0, result.deadline));
}

TEST(TemporalAlignerTest, ZeroMuReleasesImmediately) {
  TemporalAligner aligner(EnabledConfig(/*mu=*/0.0), 4, 3, 3, kT);
  DmaTransfer transfer = MakeTransfer(1, 0);
  // Slack is zero (exhausted) and the deadline is `now`.
  EXPECT_TRUE(aligner.Gate(0, &transfer, 512, 0).release_now);
}

TEST(TemporalAlignerTest, EpochDebitsAndReleasesExhaustedChips) {
  TemporalAlignmentConfig config = EnabledConfig(/*mu=*/0.5);
  config.epoch_length = 1000 * kT;  // Huge epoch: drains slack fast.
  TemporalAligner aligner(config, 4, 3, 3, kT);
  // Build a little slack, then gate one transfer.
  for (int i = 0; i < 4; ++i) aligner.slack().CreditArrival();
  DmaTransfer transfer = MakeTransfer(1, 0);
  EXPECT_FALSE(CreditAndGate(aligner, 1, &transfer, 512, 0).release_now);
  const auto to_release = aligner.OnEpoch(/*now=*/1);
  ASSERT_EQ(to_release.size(), 1u);
  EXPECT_EQ(to_release[0], 1);
}

TEST(TemporalAlignerTest, EpochWithNothingPendingReleasesNothing) {
  TemporalAligner aligner(EnabledConfig(), 4, 3, 3, kT);
  EXPECT_TRUE(aligner.OnEpoch(0).empty());
}

TEST(TemporalAlignerTest, CpuAccessDebitsSlack) {
  TemporalAligner aligner(EnabledConfig(/*mu=*/1.0), 4, 3, 3, kT);
  for (int i = 0; i < 100; ++i) aligner.slack().CreditArrival();
  const double before = aligner.slack().slack();
  DmaTransfer transfer = MakeTransfer(1, 0);
  aligner.Gate(2, &transfer, 512, 0);  // No extra credit: `before` holds.
  aligner.OnCpuAccess(2, /*service_time=*/Ticks(2000));
  EXPECT_DOUBLE_EQ(aligner.slack().slack(), before - 2000.0);
  // CPU access to a chip without gated requests changes nothing.
  const double after = aligner.slack().slack();
  aligner.OnCpuAccess(3, Ticks(2000));
  EXPECT_DOUBLE_EQ(aligner.slack().slack(), after);
}

TEST(TemporalAlignerTest, BufferOccupancyTracksPaperBound) {
  // Section 4.1.1: with 8-byte requests, 3 buses, and 32 chips the buffer
  // needs at most 3 * 8 * 32 = 768 bytes. Our cap is per chip:
  // (gather_depth + k) requests of 8 bytes.
  TemporalAligner aligner(EnabledConfig(), 32, 3, 3, /*t_request=*/7500);
  std::vector<DmaTransfer> transfers;
  transfers.reserve(32 * 5);
  for (int chip = 0; chip < 32; ++chip) {
    for (int i = 0; i < 5; ++i) {
      transfers.push_back(MakeTransfer(
          static_cast<std::uint64_t>(chip * 5 + i + 1), /*bus=*/0, 8));
    }
  }
  for (int chip = 0; chip < 32; ++chip) {
    for (int i = 0; i < 5; ++i) {
      CreditAndGate(aligner, chip,
                    &transfers[static_cast<std::size_t>(chip * 5 + i)], 8, 0);
    }
  }
  EXPECT_LE(aligner.MaxBufferedBytes(), 32 * 6 * 8);
  EXPECT_EQ(aligner.MaxBufferedBytes(), 32 * 5 * 8);
}

TEST(TemporalAlignerTest, TakeGatedClearsBuffer) {
  TemporalAligner aligner(EnabledConfig(), 4, 3, 3, kT);
  DmaTransfer t0 = MakeTransfer(1, 0);
  DmaTransfer t1 = MakeTransfer(2, 1);
  CreditAndGate(aligner, 0, &t0, 512, 0);
  CreditAndGate(aligner, 0, &t1, 512, 5);
  const auto taken = aligner.TakeGated(0);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].transfer->id, 1u);
  EXPECT_EQ(taken[0].gated_at, 0);
  EXPECT_EQ(taken[1].gated_at, 5);
  EXPECT_FALSE(aligner.HasGated(0));
  EXPECT_TRUE(aligner.TakeGated(0).empty());
}

TEST(TemporalAlignerTest, GatherDepthFactorDeepensQuorum) {
  TemporalAlignmentConfig config = EnabledConfig();
  config.gather_depth_factor = 2.0;
  TemporalAligner aligner(config, 4, 3, /*k=*/3, kT);
  // Three distinct buses alone no longer release; six requests do.
  std::vector<DmaTransfer> transfers;
  transfers.reserve(6);
  for (int i = 0; i < 6; ++i) {
    transfers.push_back(MakeTransfer(i + 1, i % 3));
  }
  bool released = false;
  for (int i = 0; i < 5; ++i) {
    released = CreditAndGate(aligner, 0, &transfers[i], 512, 0).release_now;
    EXPECT_FALSE(released) << "released too early at " << i;
  }
  EXPECT_TRUE(CreditAndGate(aligner, 0, &transfers[5], 512, 0).release_now);
}

}  // namespace
}  // namespace dmasim
