// ShardAudit under the level-2 audited library: each invariant caught
// through direct hook sequences, a live engine run with each seeded
// fault (collect mode), abort-mode death, and full-simulator replay of
// the committed shard counterexamples with a pristine control.
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/shard_audit.h"
#include "check/shard_harness.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"

namespace dmasim {
namespace {

ShardMessage MakeMessage(Tick deliver_at, std::uint32_t src,
                         std::uint64_t send_seq) {
  ShardMessage message;
  message.deliver_at = deliver_at;
  message.src = src;
  message.send_seq = send_seq;
  return message;
}

std::vector<int> IdentityOrder(int shards) {
  std::vector<int> order;
  for (int s = 0; s < shards; ++s) order.push_back(s);
  return order;
}

TEST(ShardAuditTest, CleanHookSequencePasses) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);

  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  audit.OnDrained(MakeMessage(100, /*src=*/0, /*send_seq=*/0));
  audit.OnDrained(MakeMessage(150, /*src=*/1, /*send_seq=*/0));
  audit.OnDeliver(MakeMessage(100, 0, 0));
  audit.OnDeliver(MakeMessage(150, 1, 0));

  EXPECT_TRUE(audit.auditor().failures().empty());
  EXPECT_GT(audit.checks_run(), 0u);
}

TEST(ShardAuditTest, DrainInsideHorizonIsALookaheadViolation) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);
  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  audit.OnDrained(MakeMessage(/*deliver_at=*/99, 0, 0));

  ASSERT_FALSE(audit.auditor().failures().empty());
  EXPECT_EQ(audit.auditor().failures().front().invariant,
            "shard.lookahead-violation");
}

TEST(ShardAuditTest, RepeatedSendSeqIsAFifoViolation) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);
  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  audit.OnDrained(MakeMessage(100, /*src=*/0, /*send_seq=*/0));
  audit.OnDrained(MakeMessage(100, /*src=*/0, /*send_seq=*/0));  // Dup.

  ASSERT_FALSE(audit.auditor().failures().empty());
  EXPECT_EQ(audit.auditor().failures().front().invariant,
            "shard.mailbox-fifo");
}

TEST(ShardAuditTest, SkippedSendSeqIsAFifoViolation) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);
  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  audit.OnDrained(MakeMessage(100, /*src=*/1, /*send_seq=*/1));  // Lost #0.

  ASSERT_FALSE(audit.auditor().failures().empty());
  EXPECT_EQ(audit.auditor().failures().front().invariant,
            "shard.mailbox-fifo");
}

TEST(ShardAuditTest, UnsortedDeliveryIsACausalityViolation) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);
  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  // src 1 handed to handlers before src 0 at the same deliver_at:
  // not the (deliver_at, src, send_seq) total order.
  audit.OnDeliver(MakeMessage(100, /*src=*/1, 0));
  audit.OnDeliver(MakeMessage(100, /*src=*/0, 0));

  ASSERT_FALSE(audit.auditor().failures().empty());
  EXPECT_EQ(audit.auditor().failures().front().invariant,
            "shard.barrier-causality");
}

TEST(ShardAuditTest, NewBarrierResetsTheWithinBarrierOrderCheck) {
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  std::vector<int> order = IdentityOrder(2);
  audit.OnWindowStart(0, /*horizon=*/100);
  audit.OnBarrier(0, &order);
  audit.OnDeliver(MakeMessage(150, 1, 0));
  // Next barrier: an earlier deliver_at than the previous barrier's last
  // delivery is fine — the order is total only within one barrier.
  audit.OnWindowStart(1, /*horizon=*/120);
  audit.OnBarrier(1, &order);
  audit.OnDeliver(MakeMessage(120, 0, 1));

  EXPECT_TRUE(audit.auditor().failures().empty());
}

// Live engine + audit, driven through check::RunShardScenario (which
// attaches ShardAudit in collect mode): the faulted runs are caught, the
// pristine run is clean. This executes real Simulators under the real
// engine with the level-2 audited library.
TEST(ShardAuditEngineTest, SeededFaultsAreCaughtAndPristineIsClean) {
  check::ShardCheckConfig config;

  const check::ShardRunOutcome clean = check::RunShardScenario(config, {});
  EXPECT_FALSE(clean.violation) << clean.property << ": " << clean.message;

  check::ShardCheckConfig early = config;
  early.fault = EngineFault::kDeliverEarly;
  const check::ShardRunOutcome early_run = check::RunShardScenario(early, {});
  ASSERT_TRUE(early_run.violation);
  EXPECT_EQ(early_run.property, "shard.lookahead-violation");

  // skip-barrier-sort needs a non-identity drain order to be visible.
  check::ShardCheckConfig skip = config;
  skip.fault = EngineFault::kSkipBarrierSort;
  EXPECT_FALSE(check::RunShardScenario(skip, {}).violation);
  const check::ShardRunOutcome skip_run =
      check::RunShardScenario(skip, {0, 1});
  ASSERT_TRUE(skip_run.violation);
  EXPECT_EQ(skip_run.property, "shard.barrier-causality");
}

TEST(ShardAuditEngineTest, CommittedCounterexamplesReplayUnderAudit) {
  for (const char* name :
       {"shard_skip_sort.counterexample", "shard_deliver_early"
                                          ".counterexample"}) {
    const std::string path =
        std::string(DMASIM_SOURCE_DIR) + "/tests/check/data/" + name;
    check::ShardCounterexample ce;
    std::string error;
    ASSERT_TRUE(check::ReadShardCounterexampleFile(path, &ce, &error))
        << path << ": " << error;

    std::string observed;
    EXPECT_TRUE(check::ReplayShardCounterexample(ce, &observed))
        << name << ": " << observed;

    check::ShardCounterexample control = ce;
    control.config.fault = EngineFault::kNone;
    EXPECT_FALSE(check::ReplayShardCounterexample(control, &observed))
        << name << " control: " << observed;
  }
}

TEST(ShardAuditDeathTest, AbortModeDiesOnTheFirstViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardAudit audit(InvariantAuditor::Mode::kAbort);
        std::vector<int> order = IdentityOrder(2);
        audit.OnWindowStart(0, 100);
        audit.OnBarrier(0, &order);
        audit.OnDrained(MakeMessage(99, 0, 0));
      },
      "shard.lookahead-violation");
}

}  // namespace
}  // namespace dmasim
