// End-to-end tests of the runtime invariant auditor: clean simulations
// pass every registered invariant at level 2, and a deliberately seeded
// fault (a chip model that skips the nap resync delay) is caught by the
// power-state legality invariant.
//
// Linked against dmasim_audited, which is always compiled with
// DMASIM_AUDIT_LEVEL=2 regardless of the main library's level.
#include <gtest/gtest.h>

#include "audit/audit_config.h"
#include "server/simulation_driver.h"
#include "trace/workloads.h"

static_assert(dmasim::kCompiledAuditLevel >= 2,
              "audit tests must link the level-2 library variant");

namespace dmasim {
namespace {

WorkloadSpec ShortWorkload(Tick duration = 30 * kMillisecond) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  return spec;
}

SimulationOptions AuditedOptions() {
  SimulationOptions options;
  options.audit_level = 2;
  options.audit_abort = false;  // Collect, so the test can assert counts.
  return options;
}

TEST(SimulationAuditTest, BaselineCleanRunPassesAllInvariants) {
  const SimulationResults results =
      RunWorkload(ShortWorkload(), AuditedOptions());
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
  // The run did real work, so the invariants judged a live system.
  EXPECT_GT(results.controller.transfers_completed, 0u);
}

TEST(SimulationAuditTest, TemporalAlignmentCleanRunPassesAllInvariants) {
  // Sparse arrivals so the run quiesces within the default drain. This
  // is the non-vacuous path through the drained invariants: the event
  // queue empties, so they really assert the pool and gated queues are
  // clean rather than passing on the horizon-cutoff escape hatch.
  WorkloadSpec spec = ShortWorkload();
  spec = WithIntensity(spec, 30.0);
  SimulationOptions options = AuditedOptions();
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 4.0;  // Generous budget: gating definitely fires.
  const SimulationResults results = RunWorkload(spec, options);
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
  // Gating happened, so the aligner invariants (lockstep, slack budget,
  // drained queues) were exercised, not vacuous.
  EXPECT_GT(results.gated_requests, 0u);
}

TEST(SimulationAuditTest, DenseTraceCutOffByHorizonStillPassesDrainChecks) {
  // The default OLTP trace with a generous mu holds gated releases past
  // RunUntil(): descriptors are legitimately in flight when the clock
  // stops. The drained invariants must recognize the non-empty event
  // queue as a horizon cutoff, not a leak.
  SimulationOptions options = AuditedOptions();
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 4.0;
  const SimulationResults results = RunWorkload(ShortWorkload(), options);
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
  EXPECT_GT(results.gated_requests, 0u);
}

TEST(SimulationAuditTest, StaticNapCleanRunPassesAllInvariants) {
  // Static nap maximizes power-state transitions, stressing the
  // transition-legality and energy-conservation invariants.
  SimulationOptions options = AuditedOptions();
  options.policy = PolicyKind::kStaticNap;
  const SimulationResults results =
      RunWorkload(ShortWorkload(), options);
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
}

TEST(SimulationAuditTest, EndOfRunOnlyLevelStillChecks) {
  SimulationOptions options = AuditedOptions();
  options.audit_level = 1;  // End-of-run registry pass only.
  const SimulationResults results =
      RunWorkload(ShortWorkload(10 * kMillisecond), options);
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
}

TEST(SimulationAuditTest, MonitoredRunPassesRegionBudgetInvariant) {
  // The access monitor's split/merge churn runs under the periodic
  // monitor-region-budget invariant: region count within
  // [min_regions, max_regions] and the region list a gap-free sorted
  // tiling of the page space, judged at every level-2 audit point.
  SimulationOptions options = AuditedOptions();
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 2.0;
  options.memory.dma.pl.enabled = true;
  options.memory.monitor.enabled = true;
  SchemeRule hot;
  hot.size_lo = 1;
  hot.size_hi = 1;
  hot.acc_lo = 8;
  hot.action = SchemeAction::kMigrateHot;
  options.memory.monitor.rules.push_back(hot);

  const SimulationResults results = RunWorkload(ShortWorkload(), options);
  EXPECT_GT(results.audit_checks, 0u);
  EXPECT_EQ(results.audit_failures, 0u);
  // Splits actually happened, so the budget invariant judged a live
  // region map rather than the untouched initial tiling.
  EXPECT_GT(results.monitor.splits, 0u);
  EXPECT_GE(results.monitor.regions, 32);
  EXPECT_LE(results.monitor.regions, 1024);
}

TEST(SimulationAuditTest, SeededResyncFaultIsCaught) {
  // Corrupt the model the chips actually run -- waking from nap takes
  // zero time, i.e. the resync delay is skipped -- while the auditor
  // judges transitions against the pristine Table 1 reference.
  static const RdramChipModel kReference{PowerModel{}};
  SimulationOptions options = AuditedOptions();
  options.policy = PolicyKind::kStaticNap;  // Guarantees nap/wake cycles.
  options.memory.power.from_nap.duration = Ticks(0);
  options.audit_reference_model = &kReference;

  const SimulationResults results =
      RunWorkload(ShortWorkload(10 * kMillisecond), options);
  EXPECT_GT(results.audit_failures, 0u);
}

TEST(SimulationAuditDeathTest, SeededFaultAbortsInAbortMode) {
  static const RdramChipModel kReference{PowerModel{}};
  SimulationOptions options;
  options.audit_level = 2;
  options.audit_abort = true;
  options.policy = PolicyKind::kStaticNap;
  options.memory.power.from_nap.duration = Ticks(0);
  options.audit_reference_model = &kReference;

  EXPECT_DEATH(RunWorkload(ShortWorkload(10 * kMillisecond), options),
               "power-state-legality");
}

}  // namespace
}  // namespace dmasim
