// Unit tests for the audit registry and the power-state transition
// validator (src/audit/). These link dmasim_audited (DMASIM_AUDIT_LEVEL=2)
// but the classes under test are ordinary code at any level.
#include <gtest/gtest.h>

#include <string>

#include "audit/invariant_auditor.h"
#include "audit/power_state_auditor.h"
#include "mem/chip_power_model.h"
#include "mem/power_model.h"

namespace dmasim {
namespace {

TEST(InvariantAuditorTest, RunPhaseEvaluatesOnlySubscribers) {
  InvariantAuditor auditor(InvariantAuditor::Mode::kCollect);
  int end_runs = 0;
  int periodic_runs = 0;
  auditor.Register("end-only", static_cast<unsigned>(AuditPhase::kEndOfRun),
                   [&](std::string*) {
                     ++end_runs;
                     return true;
                   });
  auditor.Register("periodic-only",
                   static_cast<unsigned>(AuditPhase::kPeriodic),
                   [&](std::string*) {
                     ++periodic_runs;
                     return true;
                   });
  auditor.Register("both", AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
                   [&](std::string*) { return true; });

  EXPECT_EQ(auditor.RunPhase(AuditPhase::kPeriodic), 0);
  EXPECT_EQ(end_runs, 0);
  EXPECT_EQ(periodic_runs, 1);
  EXPECT_EQ(auditor.checks_run(), 2u);  // periodic-only + both.

  EXPECT_EQ(auditor.RunPhase(AuditPhase::kEndOfRun), 0);
  EXPECT_EQ(end_runs, 1);
  EXPECT_EQ(periodic_runs, 1);
  EXPECT_EQ(auditor.checks_run(), 4u);
  EXPECT_EQ(auditor.registered_count(), 3u);
}

TEST(InvariantAuditorTest, CollectModeAccumulatesFailures) {
  InvariantAuditor auditor(InvariantAuditor::Mode::kCollect);
  auditor.Register("always-fails",
                   static_cast<unsigned>(AuditPhase::kEndOfRun),
                   [](std::string* message) {
                     *message = "it broke";
                     return false;
                   });
  auditor.Register("always-holds",
                   static_cast<unsigned>(AuditPhase::kEndOfRun),
                   [](std::string*) { return true; });

  EXPECT_EQ(auditor.RunPhase(AuditPhase::kEndOfRun), 1);
  ASSERT_EQ(auditor.failures().size(), 1u);
  EXPECT_EQ(auditor.failures()[0].invariant, "always-fails");
  EXPECT_EQ(auditor.failures()[0].message, "it broke");

  // A second pass records the violation again: failures are per-pass
  // observations, not deduplicated.
  EXPECT_EQ(auditor.RunPhase(AuditPhase::kEndOfRun), 1);
  EXPECT_EQ(auditor.failures().size(), 2u);
}

TEST(InvariantAuditorTest, ReportFailureFeedsCollection) {
  InvariantAuditor auditor(InvariantAuditor::Mode::kCollect);
  auditor.ReportFailure("hook-check", "observed out-of-band");
  ASSERT_EQ(auditor.failures().size(), 1u);
  EXPECT_EQ(auditor.failures()[0].invariant, "hook-check");
}

TEST(InvariantAuditorDeathTest, AbortModeAbortsWithInvariantName) {
  InvariantAuditor auditor(InvariantAuditor::Mode::kAbort);
  auditor.Register("doomed", static_cast<unsigned>(AuditPhase::kEndOfRun),
                   [](std::string* message) {
                     *message = "boom";
                     return false;
                   });
  EXPECT_DEATH(auditor.RunPhase(AuditPhase::kEndOfRun), "doomed");
}

TEST(PowerStateAuditorTest, LegalTransitionsPass) {
  const PowerModel model;
  const RdramChipModel chip_model{model};
  PowerStateAuditor auditor(&chip_model, 1);
  auditor.Seed(0, PowerState::kActive);

  // Step down active -> nap, exactly the modeled latency.
  EXPECT_EQ(auditor.Validate(0, PowerState::kActive, PowerState::kNap,
                             /*up=*/false, 1000, 1000 + model.to_nap.duration.value()),
            "");
  // Wake nap -> active, exactly the modeled resync delay.
  EXPECT_EQ(auditor.Validate(0, PowerState::kNap, PowerState::kActive,
                             /*up=*/true, 50000,
                             50000 + model.from_nap.duration.value()),
            "");
  EXPECT_EQ(auditor.transitions_checked(), 2u);
}

TEST(PowerStateAuditorTest, SkippedResyncDelayIsFlagged) {
  const PowerModel model;
  const RdramChipModel chip_model{model};
  PowerStateAuditor auditor(&chip_model, 1);
  auditor.Seed(0, PowerState::kNap);

  // A wake that takes zero time skipped the 60 ns resync delay.
  const std::string message = auditor.Validate(
      0, PowerState::kNap, PowerState::kActive, /*up=*/true, 50000, 50000);
  EXPECT_NE(message, "");
}

TEST(PowerStateAuditorTest, UpwardTransitionMustTargetActive) {
  const PowerModel model;
  const RdramChipModel chip_model{model};
  PowerStateAuditor auditor(&chip_model, 1);
  auditor.Seed(0, PowerState::kPowerdown);
  EXPECT_NE(auditor.Validate(0, PowerState::kPowerdown, PowerState::kNap,
                             /*up=*/true, 0, model.from_powerdown.duration.value()),
            "");
}

TEST(PowerStateAuditorTest, DownwardTransitionMustLowerTheState) {
  const PowerModel model;
  const RdramChipModel chip_model{model};
  PowerStateAuditor auditor(&chip_model, 1);
  auditor.Seed(0, PowerState::kNap);
  EXPECT_NE(auditor.Validate(0, PowerState::kNap, PowerState::kStandby,
                             /*up=*/false, 0, model.to_standby.duration.value()),
            "");
}

TEST(PowerStateAuditorTest, StateDiscontinuityIsFlagged) {
  const PowerModel model;
  const RdramChipModel chip_model{model};
  PowerStateAuditor auditor(&chip_model, 1);
  auditor.Seed(0, PowerState::kActive);
  // The chip was last seen active, so a transition claiming to start from
  // nap is a teleport.
  EXPECT_NE(auditor.Validate(0, PowerState::kNap, PowerState::kActive,
                             /*up=*/true, 0, model.from_nap.duration.value()),
            "");
}

}  // namespace
}  // namespace dmasim
