// Re-executes committed model-checker counterexamples through the full
// event-driven simulator. The checker (src/check) found the violation in
// its abstracted transition system; this suite closes the loop by
// injecting the same fault and the same action sequence into a real
// MemoryController under the level-2 audit and asserting the auditor
// catches it -- and that the identical drive on the pristine model stays
// clean, so the failure is attributable to the fault, not the mapping.
//
// Linked against dmasim_audited (always DMASIM_AUDIT_LEVEL=2).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "audit/audit_config.h"
#include "audit/simulation_audit.h"
#include "check/counterexample.h"
#include "core/memory_controller.h"
#include "io/dma_transfer.h"
#include "mem/chip_power_model.h"
#include "mem/power_policy.h"
#include "sim/simulator.h"

#ifndef DMASIM_SOURCE_DIR
#error "DMASIM_SOURCE_DIR must point at the repository root"
#endif

static_assert(dmasim::kCompiledAuditLevel >= 2,
              "replay tests must link the level-2 library variant");

namespace dmasim {
namespace {

std::string FixturePath() {
  return std::string(DMASIM_SOURCE_DIR) +
         "/tests/check/data/resync_skip.counterexample";
}

check::Counterexample LoadFixture() {
  check::Counterexample ce;
  std::string error;
  const bool ok = check::ReadCounterexampleFile(FixturePath(), &ce, &error);
  EXPECT_TRUE(ok) << error;
  return ce;
}

std::unique_ptr<LowPowerPolicy> MapPolicy(check::CheckPolicy policy) {
  switch (policy) {
    case check::CheckPolicy::kStaticNap:
      return std::make_unique<StaticPolicy>(PowerState::kNap);
    case check::CheckPolicy::kStaticPowerdown:
      return std::make_unique<StaticPolicy>(PowerState::kPowerdown);
    case check::CheckPolicy::kDynamicThreshold:
      break;
  }
  return std::make_unique<DynamicThresholdPolicy>();
}

MemorySystemConfig MapConfig(const check::CheckerConfig& cc, bool faulted) {
  MemorySystemConfig config;
  config.chips = cc.chips;  // Pages stripe across chips: ChipOf(p) = p % chips.
  config.pages_per_chip = 16;
  config.page_bytes = 8192;
  config.bus_count = cc.buses;
  config.dma.ta.enabled = true;
  config.dma.ta.mu = cc.mu;
  config.dma.ta.epoch_length = cc.epoch_length;
  config.dma.ta.gather_depth_factor = cc.gather_depth_factor;
  config.dma.ta.min_gating_budget = cc.min_gating_budget;
  config.dma.ta.slack_cap_requests = cc.slack_cap_requests;
  if (faulted) {
    // check::CheckFault::kResyncSkip in the full simulator: the chips run
    // a model whose nap wake takes zero time while the auditor judges
    // against the pristine Table 1 reference.
    config.power.from_nap.duration = Ticks(0);
  }
  return config;
}

// Drives the counterexample's arrival/CPU actions into a live
// controller. The checker's "advance" and "step-down" choices have no
// injected equivalent here -- the simulator's own timers own the clock
// and the policy owns step-downs -- so actions are simply spaced far
// enough apart (1 ms) for the static policy to reach its resting state
// between them, which is the regime the checker's resting-state start
// models. Returns the total number of audit failures.
std::size_t RunMappedReplay(const check::Counterexample& ce, bool faulted) {
  Simulator simulator;
  const MemorySystemConfig config = MapConfig(ce.config, faulted);
  const std::unique_ptr<LowPowerPolicy> policy = MapPolicy(ce.config.policy);
  MemoryController controller(&simulator, config, policy.get());

  static const RdramChipModel kReference{PowerModel{}};
  SimulationAudit::Options audit_options;
  audit_options.level = 2;
  audit_options.mode = InvariantAuditor::Mode::kCollect;
  audit_options.reference_model = &kReference;
  SimulationAudit audit(&simulator, &controller, audit_options);

  Tick at = kMillisecond;
  const std::int64_t transfer_bytes =
      ce.config.transfer_requests * config.chunk_bytes;
  for (const check::Action& action : ce.actions) {
    switch (action.kind) {
      case check::ActionKind::kArrive: {
        const int bus = action.bus;
        const std::uint64_t page = static_cast<std::uint64_t>(action.chip);
        simulator.ScheduleAt(at, [&controller, bus, page, transfer_bytes]() {
          controller.StartDmaTransfer(bus, page, transfer_bytes,
                                      DmaKind::kDisk, [](Tick) {});
        });
        break;
      }
      case check::ActionKind::kCpuAccess: {
        const std::uint64_t page = static_cast<std::uint64_t>(action.chip);
        simulator.ScheduleAt(at, [&controller, page]() {
          controller.CpuAccess(page, 64);
        });
        break;
      }
      case check::ActionKind::kStepDown:
      case check::ActionKind::kAdvance:
        break;  // Owned by the simulator's timers / the policy.
    }
    at += kMillisecond;
  }

  simulator.RunUntil(at + 10 * kMillisecond);
  audit.Finish();
  return audit.auditor().failures().size();
}

TEST(CounterexampleReplayTest, FixtureRecordsTheResyncSkipFault) {
  const check::Counterexample ce = LoadFixture();
  EXPECT_EQ(ce.config.fault, check::CheckFault::kResyncSkip);
  EXPECT_EQ(ce.config.policy, check::CheckPolicy::kStaticNap);
  EXPECT_EQ(ce.property, "check.power-state-legality");
  EXPECT_FALSE(ce.actions.empty());
}

TEST(CounterexampleReplayTest, FixtureReproducesInTheCheckerHarness) {
  const check::Counterexample ce = LoadFixture();
  std::string observed;
  EXPECT_TRUE(check::ReplayCounterexample(ce, &observed)) << observed;
}

TEST(CounterexampleReplayTest, FixtureReproducesInTheFullSimulator) {
  const check::Counterexample ce = LoadFixture();
  EXPECT_GT(RunMappedReplay(ce, /*faulted=*/true), 0u);
}

TEST(CounterexampleReplayTest, SameDriveOnThePristineModelStaysClean) {
  const check::Counterexample ce = LoadFixture();
  EXPECT_EQ(RunMappedReplay(ce, /*faulted=*/false), 0u);
}

}  // namespace
}  // namespace dmasim
