// End-to-end level-2 audit runs for the non-default chip power models:
// every family member must drive a full OLTP workload under the complete
// invariant registry (power-state legality, energy conservation, time
// tiling) with zero failures, and the audit must still catch a seeded
// fault when the acting DDR4 model skips the tXS self-refresh exit.
//
// Linked against dmasim_audited (always DMASIM_AUDIT_LEVEL=2).
#include <gtest/gtest.h>

#include "audit/audit_config.h"
#include "core/memory_controller.h"
#include "mem/chip_power_model.h"
#include "server/simulation_driver.h"
#include "sim/simulator.h"
#include "trace/workloads.h"

static_assert(dmasim::kCompiledAuditLevel >= 2,
              "audit tests must link the level-2 library variant");

namespace dmasim {
namespace {

WorkloadSpec ShortWorkload(Tick duration = 30 * kMillisecond) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  return spec;
}

SimulationOptions AuditedOptions(ChipModelKind kind) {
  SimulationOptions options;
  options.audit_level = 2;
  options.audit_abort = false;
  options.memory.chip_model = kind;
  return options;
}

TEST(ChipModelAuditTest, EveryFamilyMemberPassesLevel2Clean) {
  for (ChipModelKind kind : kAllChipModelKinds) {
    SCOPED_TRACE(std::string(ChipModelKindName(kind)));
    const SimulationResults results =
        RunWorkload(ShortWorkload(), AuditedOptions(kind));
    EXPECT_GT(results.audit_checks, 0u);
    EXPECT_EQ(results.audit_failures, 0u);
    EXPECT_GT(results.energy.Total().joules(), 0.0);
  }
}

TEST(ChipModelAuditTest, Ddr4SchemeNameCarriesTheModelSuffix) {
  const SimulationResults results =
      RunWorkload(ShortWorkload(10 * kMillisecond),
                  AuditedOptions(ChipModelKind::kDdr4));
  EXPECT_NE(results.scheme.find("+ddr4"), std::string::npos) << results.scheme;
}

TEST(ChipModelAuditTest, Ddr4DeepensIntoItsOwnCascade) {
  // With aggressive thresholds the dynamic chain policy must walk the
  // DDR4-only states -- their residency becomes nonzero while the
  // RDRAM-only nap/powerdown slots stay empty.
  Simulator simulator;
  MemorySystemConfig config;
  config.chips = 2;
  config.chip_model = ChipModelKind::kDdr4;
  DynamicThresholdConfig thresholds;
  thresholds.active_to_standby = 10 * kNanosecond;
  thresholds.standby_to_nap = 100 * kNanosecond;
  thresholds.nap_to_powerdown = kMicrosecond;
  const ModelChainPolicy policy(ChipModelKind::kDdr4, config.power,
                                thresholds);
  MemoryController controller(&simulator, config, &policy);

  // Wake chip 0, then idle long enough to cascade all the way back
  // down: active -> standby -> act-pdn -> pre-pdn -> self-refresh.
  controller.CpuAccess(0, 64);
  simulator.RunUntil(10 * kMillisecond);
  controller.CollectEnergy();  // Flushes chip accounting.

  const ChipStats& stats = controller.chip(0).stats();
  EXPECT_GT(stats.low_power[static_cast<int>(PowerState::kStandby)], 0);
  EXPECT_GT(stats.low_power[static_cast<int>(PowerState::kActivePowerdown)],
            0);
  EXPECT_GT(
      stats.low_power[static_cast<int>(PowerState::kPrechargePowerdown)], 0);
  EXPECT_GT(stats.low_power[static_cast<int>(PowerState::kSelfRefresh)], 0);
  EXPECT_EQ(stats.low_power[static_cast<int>(PowerState::kNap)], 0);
  EXPECT_EQ(stats.low_power[static_cast<int>(PowerState::kPowerdown)], 0);
}

TEST(ChipModelAuditTest, SkippedSelfRefreshExitIsCaught) {
  // DDR4 flavor of the seeded resync fault: the acting model exits
  // self-refresh in zero time while the pristine reference demands tXS.
  static const Ddr4ChipModel kReference;
  SimulationOptions options = AuditedOptions(ChipModelKind::kDdr4);
  options.audit_reference_model = &kReference;
  // Drive the chips all the way into self-refresh quickly and often.
  options.thresholds.active_to_standby = 10 * kNanosecond;
  options.thresholds.standby_to_nap = 20 * kNanosecond;
  options.thresholds.nap_to_powerdown = 30 * kNanosecond;

  // Clean acting model first: attributes any failure to the fault.
  EXPECT_EQ(RunWorkload(ShortWorkload(10 * kMillisecond), options)
                .audit_failures,
            0u);

  Ddr4Options faulty;
  faulty.self_refresh_exit = 0;
  options.memory.ddr4 = faulty;
  const SimulationResults results =
      RunWorkload(ShortWorkload(10 * kMillisecond), options);
  EXPECT_GT(results.audit_failures, 0u);
}

}  // namespace
}  // namespace dmasim
