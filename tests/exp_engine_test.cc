// Tests for the experiment engine: JSON serialization, the
// work-stealing thread pool, grid expansion, validation, and run-level
// error capture in the sweep runner.
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment_spec.h"
#include "exp/json.h"
#include "exp/result_sink.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

SweepOptions ThreadedOptions(int threads) {
  SweepOptions options;
  options.threads = threads;
  return options;
}

WorkloadSpec TinyWorkload() {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 5 * kMillisecond;
  return spec;
}

// ---------------------------------------------------------------- JSON.

TEST(JsonTest, ScalarsAndEscaping) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
  EXPECT_EQ(Json("a\"b\n").Dump(), "\"a\\\"b\\n\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json json = Json::Object();
  json.Set("zebra", 1);
  json.Set("apple", 2);
  EXPECT_EQ(json.Dump(false), "{\"zebra\":1,\"apple\":2}");
  json.Set("zebra", 3);  // Overwrite keeps position.
  EXPECT_EQ(json.Dump(false), "{\"zebra\":3,\"apple\":2}");
}

TEST(JsonTest, NestedPrettyPrinting) {
  Json json = Json::Object();
  Json inner = Json::Array();
  inner.Append(1);
  inner.Append(2);
  json.Set("xs", std::move(inner));
  EXPECT_EQ(json.Dump(true), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonTest, FindReturnsMember) {
  Json json = Json::Object();
  json.Set("k", 7);
  ASSERT_NE(json.Find("k"), nullptr);
  EXPECT_EQ(json.Find("k")->Dump(), "7");
  EXPECT_EQ(json.Find("missing"), nullptr);
}

TEST(JsonTest, DoubleRoundTripPrecision) {
  const double value = 0.1234567890123456789;
  Json json(value);
  EXPECT_EQ(std::stod(json.Dump()), value);
}

// ---------------------------------------------------------- ThreadPool.

TEST(ThreadPoolTest, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count]() { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count]() {
      count.fetch_add(1);
      pool.Submit([&count]() { count.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&count]() { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

// ------------------------------------------------------- Grid expansion.

TEST(ExpandGridTest, InjectsOneBaselinePerCell) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaScheme()};
  spec.cp_limits = {0.05, 0.10};
  const RunGrid grid = ExpandGrid(spec);
  ASSERT_EQ(grid.cell_count, 1);
  ASSERT_EQ(grid.runs.size(), 3u);  // Baseline + 2 CP points.
  EXPECT_TRUE(grid.runs[0].is_baseline);
  EXPECT_FALSE(grid.runs[1].is_baseline);
  EXPECT_EQ(grid.runs[1].cp_limit, 0.05);
  EXPECT_EQ(grid.runs[2].cp_limit, 0.10);
}

TEST(ExpandGridTest, BaselineSchemeDoesNotDuplicateBaseline) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {BaselineScheme(), TaScheme()};
  spec.cp_limits = {0.10};
  const RunGrid grid = ExpandGrid(spec);
  int baselines = 0;
  for (const RunPlan& plan : grid.runs) baselines += plan.is_baseline;
  EXPECT_EQ(baselines, 1);
  EXPECT_EQ(grid.runs.size(), 2u);
}

TEST(ExpandGridTest, CrossProductCountsAndDenseIds) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload(), SyntheticStorageSpec()};
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  spec.cp_limits = {0.05, 0.10};
  spec.seeds = {1, 2};
  const RunGrid grid = ExpandGrid(spec);
  // Cells: 2 workloads x 2 seeds = 4; runs/cell = 1 + 2 x 2 = 5.
  EXPECT_EQ(grid.cell_count, 4);
  ASSERT_EQ(grid.runs.size(), 20u);
  for (std::size_t i = 0; i < grid.runs.size(); ++i) {
    EXPECT_EQ(grid.runs[i].run_id, static_cast<int>(i));
  }
}

TEST(ExpandGridTest, SeedAxisRederivesServerSeed) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {};
  spec.seeds = {7, 8};
  const RunGrid grid = ExpandGrid(spec);
  ASSERT_EQ(grid.runs.size(), 2u);
  EXPECT_EQ(grid.runs[0].workload.seed, 7u);
  EXPECT_EQ(grid.runs[1].workload.seed, 8u);
  EXPECT_NE(grid.runs[0].options.server.seed,
            grid.runs[1].options.server.seed);
}

TEST(ExpandGridTest, HardwareAxesOverrideTemplate) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {};
  spec.chip_counts = {16, 64};
  spec.bus_counts = {2};
  const RunGrid grid = ExpandGrid(spec);
  ASSERT_EQ(grid.runs.size(), 2u);
  EXPECT_EQ(grid.runs[0].options.memory.chips, 16);
  EXPECT_EQ(grid.runs[1].options.memory.chips, 64);
  EXPECT_EQ(grid.runs[0].options.memory.bus_count, 2);
}

TEST(ExpandGridTest, TaKnobAxesApplyToDependentRunsOnly) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaScheme()};
  spec.cp_limits = {0.10};
  spec.epoch_lengths = {10 * kMicrosecond, 100 * kMicrosecond};
  spec.gather_depth_factors = {1.0, 2.0};
  const RunGrid grid = ExpandGrid(spec);
  ASSERT_EQ(grid.runs.size(), 5u);  // Baseline + 2 x 2.
  EXPECT_TRUE(grid.runs[0].is_baseline);
  std::set<std::pair<Tick, double>> combos;
  for (std::size_t i = 1; i < grid.runs.size(); ++i) {
    const RunPlan& plan = grid.runs[i];
    EXPECT_EQ(plan.options.memory.dma.ta.epoch_length, plan.epoch_length);
    EXPECT_EQ(plan.options.memory.dma.ta.gather_depth_factor,
              plan.gather_depth_factor);
    combos.insert({plan.epoch_length, plan.gather_depth_factor});
  }
  EXPECT_EQ(combos.size(), 4u);
}

TEST(ValidateOptionsTest, CatchesBadConfigurations) {
  SimulationOptions options;
  EXPECT_EQ(ValidateOptions(options), "");
  options.memory.chips = 0;
  EXPECT_NE(ValidateOptions(options), "");

  options = SimulationOptions();
  options.memory.dma.pl.enabled = true;
  options.memory.dma.pl.groups = 99;  // > chips.
  EXPECT_NE(ValidateOptions(options), "");
}

// ------------------------------------------------------------- Runner.

TEST(SweepRunnerTest, FailedConfigDoesNotAbortSweep) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaPlScheme(2)};
  spec.cp_limits = {0.10};
  spec.chip_counts = {32, -1};  // Second cell is invalid.

  SweepRunner runner(ThreadedOptions(2));
  const SweepResults sweep = runner.Run(spec);
  ASSERT_EQ(sweep.records.size(), 4u);
  EXPECT_EQ(sweep.summary.ok, 2);       // Valid cell's baseline + TA-PL.
  EXPECT_EQ(sweep.summary.failed, 1);   // Invalid baseline.
  EXPECT_EQ(sweep.summary.skipped, 1);  // Its dependent run.

  const RunRecord* bad_baseline = sweep.FindBaseline(1);
  ASSERT_NE(bad_baseline, nullptr);
  EXPECT_EQ(bad_baseline->status, RunRecord::Status::kFailed);
  EXPECT_FALSE(bad_baseline->error.empty());
}

TEST(SweepRunnerTest, ComputesDeltasAndMu) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaScheme()};
  spec.cp_limits = {0.10};

  SweepRunner runner(ThreadedOptions(1));
  const SweepResults sweep = runner.Run(spec);
  const RunRecord* baseline = sweep.FindBaseline(0);
  const RunRecord* ta = sweep.Find(spec.workloads[0].name, TaScheme(), 0.10);
  ASSERT_NE(baseline, nullptr);
  ASSERT_NE(ta, nullptr);
  ASSERT_TRUE(baseline->ok());
  ASSERT_TRUE(ta->ok());
  EXPECT_FALSE(baseline->has_baseline_delta);
  EXPECT_TRUE(ta->has_baseline_delta);
  EXPECT_GT(ta->mu, 0.0);
  EXPECT_EQ(ta->energy_savings,
            ta->results.EnergySavingsVs(baseline->results));
}

TEST(SweepRunnerTest, SinksSeeEveryRunAndSortedCompletion) {
  class CountingSink : public ResultSink {
   public:
    void OnRunComplete(const RunRecord&) override { ++streamed; }
    void OnSweepComplete(const SweepSummary& summary,
                         const std::vector<RunRecord>& records) override {
      ++completed;
      for (std::size_t i = 0; i < records.size(); ++i) {
        sorted &= records[i].plan.run_id == static_cast<int>(i);
      }
      total = summary.ok + summary.failed + summary.skipped;
    }
    int streamed = 0;
    int completed = 0;
    int total = 0;
    bool sorted = true;
  };

  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  spec.cp_limits = {0.05, 0.10};

  CountingSink sink;
  SweepRunner runner(ThreadedOptions(4));
  runner.AddSink(&sink);
  const SweepResults sweep = runner.Run(spec);
  EXPECT_EQ(sink.streamed, static_cast<int>(sweep.records.size()));
  EXPECT_EQ(sink.completed, 1);
  EXPECT_EQ(sink.total, static_cast<int>(sweep.records.size()));
  EXPECT_TRUE(sink.sorted);
}

TEST(SweepRunnerTest, NdjsonStreamsOneLinePerRun) {
  ExperimentSpec spec;
  spec.workloads = {TinyWorkload()};
  spec.schemes = {TaScheme()};
  spec.cp_limits = {0.10};

  std::ostringstream stream;
  NdjsonStreamSink sink(&stream);
  SweepRunner runner(ThreadedOptions(2));
  runner.AddSink(&sink);
  runner.Run(spec);

  int lines = 0;
  std::string line;
  std::istringstream reader(stream.str());
  while (std::getline(reader, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2);
}

}  // namespace
}  // namespace dmasim
