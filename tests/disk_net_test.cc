// Tests for the disk array substitute and the network link model.
#include <vector>

#include <gtest/gtest.h>

#include "disk/disk_model.h"
#include "net/network_model.h"
#include "sim/simulator.h"

namespace dmasim {
namespace {

TEST(DiskTest, ServiceTimeWithinPhysicalBounds) {
  Simulator simulator;
  DiskParams params;
  Disk disk(&simulator, params, 1);
  std::vector<Tick> completions;
  const int requests = 50;
  Tick previous = 0;
  for (int i = 0; i < requests; ++i) {
    disk.Submit(8192, [&](Tick when) { completions.push_back(when); });
  }
  simulator.Run();
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(requests));
  for (Tick when : completions) {
    EXPECT_GT(when, previous);  // FIFO and strictly increasing.
    previous = when;
  }
  // Every service is at least overhead + minimum seek + transfer and at
  // most overhead + max seek + full rotation + transfer.
  const Tick transfer = TransferTime(8192, params.transfer_bytes_per_second);
  const Tick min_service = params.controller_overhead +
                           static_cast<Tick>(0.2 * params.average_seek) +
                           transfer;
  const Tick max_service = params.controller_overhead +
                           static_cast<Tick>(1.8 * params.average_seek) +
                           params.FullRotation() + transfer;
  Tick last = 0;
  for (Tick when : completions) {
    const Tick service = when - last;
    EXPECT_GE(service, min_service);
    EXPECT_LE(service, max_service);
    last = when;
  }
}

TEST(DiskTest, QueuesAreFifo) {
  Simulator simulator;
  Disk disk(&simulator, DiskParams{}, 2);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    disk.Submit(512, [&order, i](Tick) { order.push_back(i); });
  }
  EXPECT_EQ(disk.QueueDepth(), 4u);  // First one is already in service.
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(disk.RequestsServed(), 5u);
}

TEST(DiskTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator simulator;
    Disk disk(&simulator, DiskParams{}, seed);
    Tick last = 0;
    for (int i = 0; i < 10; ++i) {
      disk.Submit(4096, [&](Tick when) { last = when; });
    }
    simulator.Run();
    return last;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(DiskTest, BusyTimeAccumulates) {
  Simulator simulator;
  Disk disk(&simulator, DiskParams{}, 3);
  disk.Submit(8192, {});
  simulator.Run();
  EXPECT_GT(disk.BusyTime(), 0);
  EXPECT_EQ(disk.BusyTime(), simulator.Now());
}

TEST(DiskArrayTest, StripesByPage) {
  Simulator simulator;
  DiskArray array(&simulator, DiskParams{}, 4, 1);
  // Pages 0..7 hit disks 0..3 twice.
  for (std::uint64_t page = 0; page < 8; ++page) {
    array.Read(page, 8192, {});
  }
  simulator.Run();
  for (int disk = 0; disk < 4; ++disk) {
    EXPECT_EQ(array.disk(disk).RequestsServed(), 2u);
  }
}

TEST(DiskArrayTest, ParallelDisksOverlap) {
  Simulator simulator;
  DiskArray array(&simulator, DiskParams{}, 8, 1);
  int completed = 0;
  for (std::uint64_t page = 0; page < 8; ++page) {
    array.Read(page, 8192, [&](Tick) { ++completed; });
  }
  simulator.Run();
  EXPECT_EQ(completed, 8);
  // Eight disks in parallel: total elapsed must be far below 8 serial
  // services (~8 * 7 ms).
  EXPECT_LT(simulator.Now(), 20 * kMillisecond);
}

TEST(NetworkTest, MessageTimeIsOverheadPlusSerialization) {
  NetworkParams params;
  params.per_message_overhead = 10 * kMicrosecond;
  params.link_bytes_per_second = 1.0e9;
  NetworkModel network(params);
  EXPECT_EQ(network.MessageTime(0), 10 * kMicrosecond);
  EXPECT_EQ(network.MessageTime(8192),
            10 * kMicrosecond + TransferTime(8192, 1.0e9));
}

TEST(NetworkTest, DefaultsAreSane) {
  NetworkModel network;
  EXPECT_GT(network.MessageTime(8192), 0);
  EXPECT_LT(network.MessageTime(8192), kMillisecond);
}

}  // namespace
}  // namespace dmasim
