// Tests for the region monitor: tiling and budget invariants,
// sample-guided splits with hit conservation, density-based merging,
// aging, scheme-driven materialization, chip rules, and the overhead
// account.
#include "mon/region_monitor.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mon/scheme_parser.h"

namespace dmasim {
namespace {

MonitorConfig SmallConfig() {
  MonitorConfig config;
  config.enabled = true;
  config.min_regions = 4;
  config.max_regions = 16;
  config.merge_max_hits = 1;
  config.age_shift_period = 4;
  return config;
}

constexpr std::uint64_t kPages = 64;
constexpr int kChips = 4;

std::uint64_t TotalHits(const RegionMonitor& monitor) {
  std::uint64_t total = 0;
  for (const MonitorRegion& region : monitor.regions()) {
    total += region.hits;
  }
  return total;
}

void ExpectTiling(const RegionMonitor& monitor) {
  const std::vector<MonitorRegion>& regions = monitor.regions();
  ASSERT_FALSE(regions.empty());
  EXPECT_EQ(regions.front().start, 0u);
  EXPECT_EQ(regions.back().end, monitor.pages());
  for (std::size_t i = 1; i < regions.size(); ++i) {
    EXPECT_EQ(regions[i].start, regions[i - 1].end);
    EXPECT_LT(regions[i].start, regions[i].end);
  }
}

TEST(RegionMonitorTest, InitialTilingCoversPageSpace) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  EXPECT_EQ(monitor.regions().size(), 4u);
  ExpectTiling(monitor);
  EXPECT_EQ(TotalHits(monitor), 0u);
}

TEST(RegionMonitorTest, UnevenPagesStillTileExactly) {
  // 67 pages over 4 initial regions: remainder spread, no gaps.
  RegionMonitor monitor(SmallConfig(), 67, kChips);
  ExpectTiling(monitor);
}

TEST(RegionMonitorTest, ObservationIsolatesSampledPage) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  monitor.BeginProbe();
  monitor.ObserveTransfer(10, 0);
  ExpectTiling(monitor);

  bool found = false;
  for (const MonitorRegion& region : monitor.regions()) {
    if (region.start == 10 && region.end == 11) {
      found = true;
      EXPECT_EQ(region.hits, 1u);
      EXPECT_EQ(region.age, 0u);
    }
  }
  EXPECT_TRUE(found) << "sampled page was not carved into its own region";
  EXPECT_EQ(monitor.stats().splits, 1u);
  EXPECT_EQ(monitor.stats().observations, 1u);
}

TEST(RegionMonitorTest, SplitsConserveHits) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  // Every observation adds exactly one hit; splits redistribute but never
  // create or destroy mass.
  const std::uint64_t samples[] = {3, 40, 3, 62, 17, 3, 40, 0, 63, 31};
  std::uint64_t observed = 0;
  for (std::uint64_t page : samples) {
    monitor.ObserveTransfer(page, static_cast<int>(page) % kChips);
    ++observed;
    EXPECT_EQ(TotalHits(monitor), observed);
    ExpectTiling(monitor);
  }
}

TEST(RegionMonitorTest, SplitsStopAtBudget) {
  MonitorConfig config = SmallConfig();
  config.max_regions = 8;
  RegionMonitor monitor(config, kPages, kChips);
  // Far more distinct pages than the budget can isolate.
  for (std::uint64_t page = 0; page < kPages; page += 3) {
    monitor.ObserveTransfer(page, 0);
    EXPECT_LE(monitor.regions().size(), 8u);
    ExpectTiling(monitor);
  }
  // Attribution continues at coarse granularity once the budget is full.
  EXPECT_EQ(TotalHits(monitor), (kPages + 2) / 3);
}

TEST(RegionMonitorTest, AggregateMergesOneOffsAndKeepsHotPages) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  for (int i = 0; i < 5; ++i) monitor.ObserveTransfer(10, 0);
  monitor.ObserveTransfer(40, 1);  // One-off sample.
  const std::size_t before = monitor.regions().size();
  monitor.Aggregate();
  ExpectTiling(monitor);
  EXPECT_LT(monitor.regions().size(), before);

  bool hot_survives = false;
  bool one_off_survives = false;
  for (const MonitorRegion& region : monitor.regions()) {
    if (region.start == 10 && region.end == 11) hot_survives = true;
    if (region.start == 40 && region.end == 41) one_off_survives = true;
  }
  EXPECT_TRUE(hot_survives);
  EXPECT_FALSE(one_off_survives)
      << "one-off sample kept a region the budget should reclaim";
  EXPECT_EQ(TotalHits(monitor), 6u) << "merging must conserve hits";
}

TEST(RegionMonitorTest, MergeRespectsMinRegionsFloor) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  // All regions cold: merging would collapse everything, but the floor
  // holds coverage at min_regions.
  for (int i = 0; i < 10; ++i) monitor.Aggregate();
  EXPECT_GE(monitor.regions().size(), 4u);
  ExpectTiling(monitor);
}

TEST(RegionMonitorTest, WideColdRegionsMergeOnDensityNotAbsoluteHits) {
  MonitorConfig config = SmallConfig();
  config.min_regions = 2;
  config.max_regions = 64;
  RegionMonitor monitor(config, kPages, kChips);
  // Scatter one-off samples across many pages: absolute counters grow
  // with region width after merging, but the per-page density stays <= 1
  // so merging must keep reclaiming budget.
  for (std::uint64_t page = 1; page < kPages; page += 2) {
    monitor.ObserveTransfer(page, 0);
  }
  monitor.Aggregate();
  monitor.Aggregate();
  EXPECT_LE(monitor.regions().size(), 8u)
      << "scattered one-off mass froze the region map";
  EXPECT_EQ(TotalHits(monitor), kPages / 2);
}

TEST(RegionMonitorTest, AgingShiftsHitsAfterConfiguredPeriod) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);  // Shift every 4.
  for (int i = 0; i < 8; ++i) monitor.ObserveTransfer(10, 0);
  for (int i = 0; i < 3; ++i) monitor.Aggregate();
  EXPECT_EQ(TotalHits(monitor), 8u);  // Not yet.
  monitor.Aggregate();                // 4th aggregation: shift.
  EXPECT_EQ(TotalHits(monitor), 4u);
}

TEST(RegionMonitorTest, RegionAgeAdvancesAndResetsOnSplit) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  monitor.Aggregate();
  monitor.Aggregate();
  for (const MonitorRegion& region : monitor.regions()) {
    EXPECT_EQ(region.age, 2u);
  }
  monitor.ObserveTransfer(10, 0);
  for (const MonitorRegion& region : monitor.regions()) {
    if (region.start <= 10 && 10 < region.end) {
      EXPECT_EQ(region.age, 0u) << "split children must restart their age";
    }
  }
}

TEST(RegionMonitorTest, MaterializeSpreadsDensityAndFloorsNoise) {
  MonitorConfig config = SmallConfig();
  RegionMonitor monitor(config, kPages, kChips);
  for (int i = 0; i < 9; ++i) monitor.ObserveTransfer(10, 0);
  const std::vector<std::uint32_t>& counts = monitor.MaterializeCounts();
  ASSERT_EQ(counts.size(), kPages);
  EXPECT_EQ(counts[10], 9u);
  // Wide regions got no hits here: their density floors to zero, so
  // sub-sample noise can never look hot to the layout planner.
  EXPECT_EQ(counts[11], 0u);
  EXPECT_EQ(counts[63], 0u);
}

TEST(RegionMonitorTest, SchemesBoostHotAndPinCold) {
  MonitorConfig config = SmallConfig();
  config.hot_boost = 16;
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "2 * 0 1 0 pin-cold\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  config.rules = schemes.rules;
  RegionMonitor monitor(config, kPages, kChips);

  for (int i = 0; i < 9; ++i) monitor.ObserveTransfer(10, 0);  // Hot.
  for (int i = 0; i < 2; ++i) monitor.ObserveTransfer(40, 1);  // Warm.
  const std::vector<std::uint32_t>& counts = monitor.MaterializeCounts();
  // Hot single-page region: full counter plus the migrate-hot boost.
  EXPECT_EQ(counts[10], 9u + 16u);
  // Warm single-page region (2 hits < acc_lo 8): no rule matches a
  // single-page region with the pin-cold size floor, value passes as-is.
  EXPECT_EQ(counts[40], 2u);
  // Wide cold regions match pin-cold: zeroed.
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(monitor.stats().scheme_region_matches, 0u);
}

TEST(RegionMonitorTest, FirstMatchingRuleWins) {
  MonitorConfig config = SmallConfig();
  config.hot_boost = 16;
  // Both rules match a 1-page region with 9 hits; the first must win.
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 0 * 0 pin-cold\n"
      "1 1 8 * 0 migrate-hot\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  config.rules = schemes.rules;
  RegionMonitor monitor(config, kPages, kChips);
  for (int i = 0; i < 9; ++i) monitor.ObserveTransfer(10, 0);
  EXPECT_EQ(monitor.MaterializeCounts()[10], 0u);
}

TEST(RegionMonitorTest, DemoteChipFiresAfterIdleStreak) {
  MonitorConfig config = SmallConfig();
  const SchemeParseResult schemes =
      ParseSchemeString("* * 0 0 2 demote-chip\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  config.rules = schemes.rules;
  RegionMonitor monitor(config, kPages, kChips);

  // Chip 0 stays busy, the rest are idle.
  monitor.ObserveTransfer(1, 0);
  EXPECT_TRUE(monitor.Aggregate().empty());  // Streaks at 1 < 2.
  monitor.ObserveTransfer(2, 0);
  const std::vector<ChipDemotion>& demote =
      monitor.Aggregate();  // Streaks at 2.
  ASSERT_EQ(demote.size(), 3u);
  EXPECT_EQ(demote[0].chip, 1);
  EXPECT_EQ(demote[1].chip, 2);
  EXPECT_EQ(demote[2].chip, 3);
  EXPECT_EQ(demote[0].depth, 1);  // Suffix-less rule: one policy step.
  EXPECT_EQ(monitor.stats().demotions_requested, 3u);

  // Traffic on a chip resets its streak.
  monitor.ObserveTransfer(3, 1);
  const std::vector<ChipDemotion>& next = monitor.Aggregate();
  EXPECT_EQ(next.size(), 2u);  // Chips 2 and 3 only.
}

TEST(RegionMonitorTest, DemoteDepthRidesTheMatchedRule) {
  MonitorConfig config = SmallConfig();
  // First match wins: the deep rule needs a longer idle streak, so a
  // chip graduates from depth-1 to depth-3 demotions as it stays idle.
  const SchemeParseResult schemes = ParseSchemeString(
      "* * 0 0 4 demote-chip:3\n"
      "* * 0 0 2 demote-chip\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  config.rules = schemes.rules;
  RegionMonitor monitor(config, kPages, kChips);

  monitor.Aggregate();  // Streaks at 1.
  const std::vector<ChipDemotion>& shallow = monitor.Aggregate();  // 2.
  ASSERT_EQ(shallow.size(), static_cast<std::size_t>(kChips));
  EXPECT_EQ(shallow[0].depth, 1);

  monitor.Aggregate();  // 3.
  const std::vector<ChipDemotion>& deep = monitor.Aggregate();  // 4.
  ASSERT_EQ(deep.size(), static_cast<std::size_t>(kChips));
  EXPECT_EQ(deep[0].depth, 3);
}

TEST(RegionMonitorTest, HotnessErrorBoundsAndDirection) {
  RegionMonitor monitor(SmallConfig(), kPages, kChips);
  std::vector<std::uint32_t> oracle(kPages, 0);

  // Neither side has mass: distributions agree trivially.
  EXPECT_EQ(monitor.RecordHotnessError(oracle), 0.0);

  // Monitor isolates page 10; oracle agrees -> small distance.
  for (int i = 0; i < 20; ++i) monitor.ObserveTransfer(10, 0);
  monitor.Aggregate();
  oracle[10] = 20;
  const double aligned = monitor.RecordHotnessError(oracle);
  EXPECT_LT(aligned, 0.2);
  EXPECT_EQ(monitor.latest_hotness_error(), aligned);

  // Oracle mass on a page the monitor thinks is cold -> near 1.
  oracle[10] = 0;
  oracle[50] = 20;
  const double disjoint = monitor.RecordHotnessError(oracle);
  EXPECT_GT(disjoint, 0.9);
  EXPECT_LE(disjoint, 1.0);

  // One-sided mass is maximal distance by convention.
  RegionMonitor empty(SmallConfig(), kPages, kChips);
  EXPECT_EQ(empty.RecordHotnessError(oracle), 1.0);
}

TEST(RegionMonitorTest, OverheadAccountChargesConfiguredCosts) {
  MonitorConfig config = SmallConfig();
  config.probe_cost = 10;
  config.observe_cost = 5;
  config.region_cost = 1;
  RegionMonitor monitor(config, kPages, kChips);
  monitor.BeginProbe();
  monitor.ObserveTransfer(10, 0);
  monitor.ObserveTransfer(11, 0);
  // 1 probe + 2 observations = 20 ticks; 4-ish regions per aggregation.
  const Tick before_aggregate = monitor.stats().busy_ticks;
  EXPECT_EQ(before_aggregate, 20);
  monitor.Aggregate();
  EXPECT_GT(monitor.stats().busy_ticks, before_aggregate);
  EXPECT_GT(monitor.OverheadFraction(10000), 0.0);
  EXPECT_EQ(monitor.OverheadFraction(0), 0.0);
}

TEST(RegionMonitorTest, HitCountersPinInsteadOfWrapping) {
  RegionMonitor monitor(SmallConfig(), 4, kChips);
  // Drive a counter to the pin via repeated observation of a single-page
  // region -- directly, by checking PinnedAdd's contract at the edge.
  monitor.ObserveTransfer(0, 0);
  // The pin itself is far out of reach of unit-scale sampling; assert the
  // configured constant leaves boost headroom below 2^64.
  EXPECT_LT(RegionMonitor::kMaxHits, UINT64_MAX / 2);
}

// Determinism suite: the name matters -- CI's TSan job runs tests
// matching *Determinism* to catch races in anything feeding the pinned
// artifact checksums.
TEST(MonitorDeterminismTest, IdenticalSamplesIdenticalRegions) {
  MonitorConfig config = SmallConfig();
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 4 * 0 migrate-hot\n"
      "2 * 0 1 1 pin-cold\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  config.rules = schemes.rules;

  RegionMonitor a(config, kPages, kChips);
  RegionMonitor b(config, kPages, kChips);
  const std::uint64_t samples[] = {3, 40, 3, 62, 17, 3, 40, 0, 63, 31, 3};
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t page : samples) {
      a.BeginProbe();
      b.BeginProbe();
      a.ObserveTransfer(page, static_cast<int>(page) % kChips);
      b.ObserveTransfer(page, static_cast<int>(page) % kChips);
    }
    a.Aggregate();
    b.Aggregate();
  }

  ASSERT_EQ(a.regions().size(), b.regions().size());
  for (std::size_t i = 0; i < a.regions().size(); ++i) {
    EXPECT_EQ(a.regions()[i].start, b.regions()[i].start);
    EXPECT_EQ(a.regions()[i].end, b.regions()[i].end);
    EXPECT_EQ(a.regions()[i].hits, b.regions()[i].hits);
    EXPECT_EQ(a.regions()[i].age, b.regions()[i].age);
  }
  const std::vector<std::uint32_t>& counts_a = a.MaterializeCounts();
  const std::vector<std::uint32_t>& counts_b = b.MaterializeCounts();
  EXPECT_EQ(counts_a, counts_b);
  EXPECT_EQ(a.stats().busy_ticks, b.stats().busy_ticks);
}

}  // namespace
}  // namespace dmasim
