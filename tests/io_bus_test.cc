// Tests for the I/O bus model (slot pacing, round-robin sharing, gating).
#include "io/io_bus.h"

#include <vector>

#include <gtest/gtest.h>

#include "io/dma_transfer.h"
#include "sim/simulator.h"

namespace dmasim {
namespace {

// Records every delivered chunk.
class RecordingSink : public DmaRequestSink {
 public:
  struct Delivery {
    std::uint64_t transfer_id;
    std::int64_t bytes;
    bool first;
    Tick when;
  };

  explicit RecordingSink(Simulator* simulator) : simulator_(simulator) {}

  void DeliverChunk(DmaTransfer* transfer, std::int64_t chunk_bytes,
                    bool first) override {
    deliveries_.push_back(
        Delivery{transfer->id, chunk_bytes, first, simulator_->Now()});
    if (gate_first_ && first) {
      transfer->blocked = true;
      return;
    }
    // Default behaviour: complete the chunk instantly and re-ready the
    // transfer (an infinitely fast memory).
    transfer->completed_bytes += chunk_bytes;
    if (!transfer->Complete()) bus_->MakeReady(transfer);
  }

  void SetBus(IoBus* bus) { bus_ = bus; }
  void GateFirstChunks(bool gate) { gate_first_ = gate; }
  const std::vector<Delivery>& deliveries() const { return deliveries_; }

 private:
  Simulator* simulator_;
  IoBus* bus_ = nullptr;
  bool gate_first_ = false;
  std::vector<Delivery> deliveries_;
};

class IoBusFixture : public ::testing::Test {
 protected:
  IoBusFixture() : sink_(&simulator_), bus_(&simulator_, 0, 1.0e9, 8) {
    bus_.SetSink(&sink_);
    sink_.SetBus(&bus_);
  }

  DmaTransfer MakeTransfer(std::uint64_t id, std::int64_t bytes) {
    DmaTransfer transfer;
    transfer.id = id;
    transfer.bus_id = 0;
    transfer.total_bytes = bytes;
    transfer.start_time = simulator_.Now();
    return transfer;
  }

  Simulator simulator_;
  RecordingSink sink_;
  IoBus bus_;
};

TEST_F(IoBusFixture, SlotTimeMatchesBandwidth) {
  // 8 bytes at 1 GB/s = 8 ns per slot.
  EXPECT_EQ(bus_.SlotTime(), 8 * kNanosecond);
}

TEST_F(IoBusFixture, SingleTransferPacedAtSlotRate) {
  DmaTransfer transfer = MakeTransfer(1, 32);  // 4 chunks.
  bus_.StartTransfer(&transfer);
  simulator_.Run();
  ASSERT_EQ(sink_.deliveries().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sink_.deliveries()[i].when,
              static_cast<Tick>(i) * bus_.SlotTime());
  }
  EXPECT_TRUE(transfer.Complete());
}

TEST_F(IoBusFixture, FirstFlagOnlyOnFirstChunk) {
  DmaTransfer transfer = MakeTransfer(1, 24);
  bus_.StartTransfer(&transfer);
  simulator_.Run();
  ASSERT_EQ(sink_.deliveries().size(), 3u);
  EXPECT_TRUE(sink_.deliveries()[0].first);
  EXPECT_FALSE(sink_.deliveries()[1].first);
  EXPECT_FALSE(sink_.deliveries()[2].first);
}

TEST_F(IoBusFixture, ShortFinalChunk) {
  DmaTransfer transfer = MakeTransfer(1, 20);  // 8 + 8 + 4.
  bus_.StartTransfer(&transfer);
  simulator_.Run();
  ASSERT_EQ(sink_.deliveries().size(), 3u);
  EXPECT_EQ(sink_.deliveries()[0].bytes, 8);
  EXPECT_EQ(sink_.deliveries()[1].bytes, 8);
  EXPECT_EQ(sink_.deliveries()[2].bytes, 4);
  EXPECT_TRUE(transfer.Complete());
}

TEST_F(IoBusFixture, TransferSmallerThanChunk) {
  DmaTransfer transfer = MakeTransfer(1, 4);
  bus_.StartTransfer(&transfer);
  simulator_.Run();
  ASSERT_EQ(sink_.deliveries().size(), 1u);
  EXPECT_EQ(sink_.deliveries()[0].bytes, 4);
  EXPECT_TRUE(sink_.deliveries()[0].first);
}

TEST_F(IoBusFixture, TwoTransfersShareSlotsRoundRobin) {
  DmaTransfer a = MakeTransfer(1, 16);
  DmaTransfer b = MakeTransfer(2, 16);
  bus_.StartTransfer(&a);
  bus_.StartTransfer(&b);
  simulator_.Run();
  ASSERT_EQ(sink_.deliveries().size(), 4u);
  // Slots alternate: a, b, a, b -- one chunk per slot time.
  EXPECT_EQ(sink_.deliveries()[0].transfer_id, 1u);
  EXPECT_EQ(sink_.deliveries()[1].transfer_id, 2u);
  EXPECT_EQ(sink_.deliveries()[2].transfer_id, 1u);
  EXPECT_EQ(sink_.deliveries()[3].transfer_id, 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sink_.deliveries()[i].when,
              static_cast<Tick>(i) * bus_.SlotTime());
  }
}

TEST_F(IoBusFixture, GatedTransferIssuesNothingFurther) {
  sink_.GateFirstChunks(true);
  DmaTransfer gated = MakeTransfer(1, 64);
  DmaTransfer flowing = MakeTransfer(2, 16);
  bus_.StartTransfer(&gated);
  simulator_.RunUntil(bus_.SlotTime() / 2);
  sink_.GateFirstChunks(false);
  bus_.StartTransfer(&flowing);
  simulator_.Run();
  // Gated transfer delivered exactly one (buffered) chunk; the other
  // transfer proceeded to completion.
  int gated_chunks = 0;
  for (const auto& delivery : sink_.deliveries()) {
    if (delivery.transfer_id == 1) ++gated_chunks;
  }
  EXPECT_EQ(gated_chunks, 1);
  EXPECT_TRUE(flowing.Complete());
  EXPECT_TRUE(gated.blocked);
}

TEST_F(IoBusFixture, ReleasedTransferResumes) {
  sink_.GateFirstChunks(true);
  DmaTransfer transfer = MakeTransfer(1, 24);
  bus_.StartTransfer(&transfer);
  simulator_.Run();
  EXPECT_TRUE(transfer.blocked);
  // Release: complete the buffered first chunk and re-ready the transfer.
  sink_.GateFirstChunks(false);
  transfer.blocked = false;
  transfer.completed_bytes += 8;
  bus_.MakeReady(&transfer);
  simulator_.Run();
  EXPECT_TRUE(transfer.Complete());
}

TEST_F(IoBusFixture, CountsChunksAndTransfers) {
  DmaTransfer a = MakeTransfer(1, 16);
  DmaTransfer b = MakeTransfer(2, 8);
  bus_.StartTransfer(&a);
  bus_.StartTransfer(&b);
  simulator_.Run();
  EXPECT_EQ(bus_.TransfersStarted(), 2u);
  EXPECT_EQ(bus_.ChunksIssued(), 3u);
}

TEST_F(IoBusFixture, IdleBusResumesPacingFromNow) {
  DmaTransfer a = MakeTransfer(1, 8);
  bus_.StartTransfer(&a);
  simulator_.Run();
  const Tick idle_until = simulator_.Now() + 100 * bus_.SlotTime();
  simulator_.RunUntil(idle_until);
  DmaTransfer b = MakeTransfer(2, 8);
  bus_.StartTransfer(&b);
  simulator_.Run();
  // The second transfer's chunk goes out immediately, not at a stale slot.
  EXPECT_EQ(sink_.deliveries().back().when, idle_until);
}

TEST(IoBusChunkConfigTest, PciXDefaultsTwelveCyclesPerEightBytes) {
  Simulator simulator;
  const double pci_x = 8.0 / (12.0 * 625.0e-12);
  IoBus bus(&simulator, 3, pci_x, 8);
  EXPECT_EQ(bus.SlotTime(), 12 * 625);
  EXPECT_EQ(bus.id(), 3);
  EXPECT_EQ(bus.chunk_bytes(), 8);
}

}  // namespace
}  // namespace dmasim
