// Unit tests for the sharded execution kernel: the SPSC mailbox contract
// (push order survives spills), RunEventsBefore window semantics, the
// calendar-queue instrumentation, and the ShardedEngine's conservative
// windows — including the core promise that a thread pool changes the
// wall clock, never the results.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "exp/thread_pool.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "sim/spsc_mailbox.h"
#include "util/time.h"

namespace dmasim {
namespace {

ShardMessage TaggedMessage(std::uint64_t tag) {
  ShardMessage message;
  message.a = tag;
  return message;
}

TEST(SpscMailboxTest, PreservesPushOrderAcrossSpills) {
  SpscMailbox<ShardMessage> mailbox(4);
  EXPECT_EQ(mailbox.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) mailbox.Push(TaggedMessage(i));

  EXPECT_EQ(mailbox.SizeApprox(), 10u);
  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);

  EXPECT_EQ(mailbox.stats().pushed, 10u);
  EXPECT_EQ(mailbox.stats().spilled, 6u);  // Ring holds 4; the rest spill.
  EXPECT_EQ(mailbox.stats().max_occupancy, 10u);
  EXPECT_EQ(mailbox.SizeApprox(), 0u);
}

TEST(SpscMailboxTest, RingIsReusableAfterDrain) {
  SpscMailbox<ShardMessage> mailbox(2);
  std::vector<ShardMessage> out;
  for (std::uint64_t round = 0; round < 5; ++round) {
    mailbox.Push(TaggedMessage(2 * round));
    mailbox.Push(TaggedMessage(2 * round + 1));
    mailbox.Drain(&out);
  }
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);
  // The ring never filled, so nothing spilled.
  EXPECT_EQ(mailbox.stats().spilled, 0u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 2u);
}

TEST(SpscMailboxTest, ZeroCapacityClampsToOne) {
  SpscMailbox<ShardMessage> mailbox(0);
  EXPECT_EQ(mailbox.capacity(), 1u);
  mailbox.Push(TaggedMessage(7));
  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 7u);
}

TEST(SpscMailboxTest, CapacityExactFillDoesNotSpill) {
  SpscMailbox<ShardMessage> mailbox(4);
  for (std::uint64_t i = 0; i < 4; ++i) mailbox.Push(TaggedMessage(i));
  EXPECT_EQ(mailbox.stats().spilled, 0u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 4u);

  // The very next push is the first spill.
  mailbox.Push(TaggedMessage(4));
  EXPECT_EQ(mailbox.stats().spilled, 1u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 5u);

  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].a, i);
}

TEST(SpscMailboxTest, NonPowerOfTwoCapacityRoundsUp) {
  // The slot map `index % capacity` is only wrap-continuous for
  // power-of-two capacities, so the ring rounds up.
  EXPECT_EQ(SpscMailbox<ShardMessage>(3).capacity(), 4u);
  EXPECT_EQ(SpscMailbox<ShardMessage>(5).capacity(), 8u);
  EXPECT_EQ(SpscMailbox<ShardMessage>(1024).capacity(), 1024u);
}

TEST(SpscMailboxTest, SingleSlotCapacityPreservesOrderAcrossSpills) {
  SpscMailbox<ShardMessage> mailbox(1);
  EXPECT_EQ(mailbox.capacity(), 1u);
  std::vector<ShardMessage> out;
  for (std::uint64_t round = 0; round < 3; ++round) {
    mailbox.Push(TaggedMessage(3 * round));
    mailbox.Push(TaggedMessage(3 * round + 1));  // Spills.
    mailbox.Push(TaggedMessage(3 * round + 2));  // Spills.
    mailbox.Drain(&out);
  }
  ASSERT_EQ(out.size(), 9u);
  for (std::uint64_t i = 0; i < 9; ++i) EXPECT_EQ(out[i].a, i);
  EXPECT_EQ(mailbox.stats().pushed, 9u);
  EXPECT_EQ(mailbox.stats().spilled, 6u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 3u);
}

TEST(SpscMailboxTest, IndexWraparoundPreservesOrderAndCounts) {
  // A real run would need 2^64 pushes to wrap the monotonically
  // increasing ring indices; seed them just below the wrap instead
  // (scaled stand-in for the "beyond 2^32 messages" lifetime test) and
  // stream enough messages through to cross it. The unsigned
  // `head - tail` arithmetic and the power-of-two slot map must both be
  // oblivious to the wrap.
  SpscMailbox<ShardMessage> mailbox(8);
  mailbox.SeedIndicesForTest(std::numeric_limits<std::size_t>::max() - 11);

  std::vector<ShardMessage> out;
  std::uint64_t next_tag = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 5; ++i) mailbox.Push(TaggedMessage(next_tag++));
    EXPECT_EQ(mailbox.SizeApprox(), 5u) << "round=" << round;
    mailbox.Drain(&out);
    EXPECT_EQ(mailbox.SizeApprox(), 0u) << "round=" << round;
  }
  ASSERT_EQ(out.size(), 40u);  // 12 before the wrap, 28 after.
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_EQ(out[i].a, i);
  EXPECT_EQ(mailbox.stats().pushed, 40u);
  EXPECT_EQ(mailbox.stats().spilled, 0u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 5u);
}

TEST(SpscMailboxTest, WraparoundWithSpillsKeepsRingThenSpillOrder) {
  SpscMailbox<ShardMessage> mailbox(2);
  mailbox.SeedIndicesForTest(std::numeric_limits<std::size_t>::max() - 1);
  for (std::uint64_t i = 0; i < 6; ++i) mailbox.Push(TaggedMessage(i));
  EXPECT_EQ(mailbox.stats().spilled, 4u);
  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(out[i].a, i);
}

TEST(SimulatorWindowTest, RunEventsBeforeIsExclusiveOnTheBound) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&order]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&order]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&order]() { order.push_back(2); });

  // Events strictly before the bound run; the one at the bound waits.
  EXPECT_EQ(simulator.RunEventsBefore(30), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.NextPendingTick(), 30);

  EXPECT_EQ(simulator.RunEventsBefore(31), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.RunEventsBefore(1000), 0u);
}

TEST(SimulatorWindowTest, RunEventsBeforeRunsEventsSpawnedInWindow) {
  Simulator simulator;
  std::vector<Tick> seen;
  simulator.ScheduleAt(10, [&]() {
    seen.push_back(simulator.Now());
    // Still inside the window: must run in this same call.
    simulator.ScheduleAt(20, [&]() { seen.push_back(simulator.Now()); });
    // At the horizon: must NOT run in this call.
    simulator.ScheduleAt(50, [&]() { seen.push_back(simulator.Now()); });
  });
  EXPECT_EQ(simulator.RunEventsBefore(50), 2u);
  EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(SimulatorWindowTest, CalendarStatsCountTheWheelWork) {
  Simulator simulator;
  std::uint64_t ran = 0;
  // A span wider than the level-0 wheel (2^29 ps ~ 537 us) forces
  // level-1 cascades; the far-future event lands in the overflow list
  // (beyond the 2^39 ps level-1 span) and comes back via a refill.
  for (int i = 0; i < 200; ++i) {
    simulator.ScheduleAt(Tick{i} * 10 * kMicrosecond, [&ran]() { ++ran; });
  }
  simulator.ScheduleAt(2 * kSecond, [&ran]() { ++ran; });
  simulator.Run();

  EXPECT_EQ(ran, 201u);
  const Simulator::CalendarStats& stats = simulator.calendar_stats();
  EXPECT_GT(stats.bucket_loads, 0u);
  EXPECT_GT(stats.cascades, 0u);
  EXPECT_GT(stats.overflow_refills, 0u);
  EXPECT_GE(stats.max_bucket_events, 1u);
  EXPECT_GE(stats.max_cascade_events, 1u);
  EXPECT_GE(stats.max_overflow_events, 1u);
}

// --- ShardedEngine ------------------------------------------------------

TEST(ShardedEngineTest, SingleShardMatchesPlainRun) {
  std::vector<int> plain_order;
  Simulator plain;
  plain.ScheduleAt(30, [&plain_order]() { plain_order.push_back(3); });
  plain.ScheduleAt(10, [&plain_order]() { plain_order.push_back(1); });
  plain.ScheduleAt(20, [&plain_order]() { plain_order.push_back(2); });
  plain.RunUntil(100);

  std::vector<int> sharded_order;
  Simulator sharded;
  sharded.ScheduleAt(30, [&sharded_order]() { sharded_order.push_back(3); });
  sharded.ScheduleAt(10, [&sharded_order]() { sharded_order.push_back(1); });
  sharded.ScheduleAt(20, [&sharded_order]() { sharded_order.push_back(2); });
  ShardedEngine::Options options;
  ShardedEngine engine(options);
  engine.AddShard(&sharded, [](const ShardMessage&) {});
  engine.Run(100, /*pool=*/nullptr);

  EXPECT_EQ(sharded_order, plain_order);
  EXPECT_EQ(sharded.ExecutedEvents(), plain.ExecutedEvents());
  EXPECT_EQ(engine.ShardWindowEvents(0), 3u);
  EXPECT_GT(engine.stats().windows, 0u);
  EXPECT_EQ(engine.stats().delivered_messages, 0u);
}

// Shared scaffolding for the cross-shard tests: two shards bouncing a
// message back and forth, each hop one `lookahead` later, logging every
// executed hop as (shard, hop, time).
struct HopLog {
  int shard = 0;
  std::uint64_t hop = 0;
  Tick at = 0;
  bool operator==(const HopLog&) const = default;
};

struct PingPong {
  ShardedEngine* engine = nullptr;
  std::deque<Simulator>* sims = nullptr;
  std::vector<HopLog>* log = nullptr;
  Tick lookahead = 0;
  std::uint64_t max_hops = 0;
};

void ScheduleHop(PingPong* ctx, int shard, std::uint64_t hop, Tick at) {
  (*ctx->sims)[static_cast<std::size_t>(shard)].ScheduleAt(
      at, [ctx, shard, hop]() {
        Simulator& self = (*ctx->sims)[static_cast<std::size_t>(shard)];
        ctx->log->push_back(HopLog{shard, hop, self.Now()});
        if (hop < ctx->max_hops) {
          const int dst = shard ^ 1;
          ctx->engine->Send(shard, dst, self.Now() + ctx->lookahead,
                            /*kind=*/1, hop + 1, 0, 0);
        }
      });
}

// Builds the two-shard ping-pong and runs it; returns the hop log.
std::vector<HopLog> RunPingPong(ThreadPool* pool, std::uint64_t max_hops,
                                std::size_t mailbox_capacity,
                                std::vector<ShardMessage>* deliveries) {
  ShardedEngine::Options options;
  options.lookahead = 50;
  options.mailbox_capacity = mailbox_capacity;
  options.record_deliveries = deliveries != nullptr;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  std::vector<HopLog> log;
  PingPong ctx{&engine, &sims, &log, options.lookahead, max_hops};
  for (int s = 0; s < 2; ++s) {
    engine.AddShard(&sims[static_cast<std::size_t>(s)],
                    [&ctx](const ShardMessage& message) {
                      ScheduleHop(&ctx, static_cast<int>(message.dst),
                                  message.a, message.deliver_at);
                    });
  }
  ScheduleHop(&ctx, /*shard=*/0, /*hop=*/0, /*at=*/10);
  engine.Run(10000, pool);
  if (deliveries != nullptr) *deliveries = engine.deliveries();
  return log;
}

TEST(ShardedEngineTest, CrossShardMessagesArriveOneLookaheadLater) {
  std::vector<ShardMessage> deliveries;
  const std::vector<HopLog> log =
      RunPingPong(/*pool=*/nullptr, /*max_hops=*/4,
                  /*mailbox_capacity=*/16, &deliveries);

  // 0 -> 1 -> 0 -> 1 -> 0, each hop 50 ticks after the previous.
  ASSERT_EQ(log.size(), 5u);
  for (std::uint64_t hop = 0; hop < 5; ++hop) {
    EXPECT_EQ(log[hop].shard, static_cast<int>(hop % 2));
    EXPECT_EQ(log[hop].hop, hop);
    EXPECT_EQ(log[hop].at, static_cast<Tick>(10 + 50 * hop));
  }

  ASSERT_EQ(deliveries.size(), 4u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_EQ(deliveries[i].a, i + 1);  // Hops in delivery order.
    EXPECT_EQ(deliveries[i].src, i % 2);
    EXPECT_EQ(deliveries[i].dst, (i + 1) % 2);
  }
}

TEST(ShardedEngineTest, MailboxSpillsAreCountedNotDropped) {
  ShardedEngine::Options options;
  options.lookahead = 50;
  options.mailbox_capacity = 1;
  options.record_deliveries = true;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  std::vector<std::uint64_t> received;
  engine.AddShard(&sims[0], [](const ShardMessage&) {});
  engine.AddShard(&sims[1], [&received](const ShardMessage& message) {
    received.push_back(message.a);
  });
  // One event fires three sends in a single window: two must spill.
  sims[0].ScheduleAt(10, [&engine, &sims]() {
    const Tick at = sims[0].Now() + 50;
    engine.Send(0, 1, at, 1, 100, 0, 0);
    engine.Send(0, 1, at, 1, 101, 0, 0);
    engine.Send(0, 1, at, 1, 102, 0, 0);
  });
  engine.Run(1000, /*pool=*/nullptr);

  EXPECT_EQ(received, (std::vector<std::uint64_t>{100, 101, 102}));
  EXPECT_EQ(engine.MailboxStats(0).pushed, 3u);
  EXPECT_EQ(engine.MailboxStats(0).spilled, 2u);
  EXPECT_EQ(engine.stats().mailbox_spills, 2u);
  EXPECT_EQ(engine.stats().max_mailbox_occupancy, 3u);  // 1 ring + 2 spill.
  EXPECT_EQ(engine.stats().delivered_messages, 3u);
  // Same-tick messages from one source are ordered by send sequence.
  ASSERT_EQ(engine.deliveries().size(), 3u);
  EXPECT_LT(engine.deliveries()[0].send_seq, engine.deliveries()[1].send_seq);
  EXPECT_LT(engine.deliveries()[1].send_seq, engine.deliveries()[2].send_seq);
}

// The tentpole invariant at kernel granularity: a pool run produces the
// same hop log, delivery log, and per-shard event counts as serial.
// (Named *Determinism* so the TSan CI leg picks it up.)
TEST(ShardedEngineDeterminismTest, PoolRunIsBitIdenticalToSerial) {
  std::vector<ShardMessage> serial_deliveries;
  const std::vector<HopLog> serial = RunPingPong(
      /*pool=*/nullptr, /*max_hops=*/64, /*mailbox_capacity=*/4,
      &serial_deliveries);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<ShardMessage> pooled_deliveries;
    const std::vector<HopLog> pooled = RunPingPong(
        &pool, /*max_hops=*/64, /*mailbox_capacity=*/4, &pooled_deliveries);
    EXPECT_EQ(pooled, serial) << "threads=" << threads;
    ASSERT_EQ(pooled_deliveries.size(), serial_deliveries.size());
    for (std::size_t i = 0; i < serial_deliveries.size(); ++i) {
      EXPECT_EQ(pooled_deliveries[i].deliver_at,
                serial_deliveries[i].deliver_at);
      EXPECT_EQ(pooled_deliveries[i].send_seq, serial_deliveries[i].send_seq);
      EXPECT_EQ(pooled_deliveries[i].src, serial_deliveries[i].src);
      EXPECT_EQ(pooled_deliveries[i].dst, serial_deliveries[i].dst);
      EXPECT_EQ(pooled_deliveries[i].a, serial_deliveries[i].a);
    }
  }
}

TEST(ShardedEngineTest, FaultNamesRoundTrip) {
  for (EngineFault fault : {EngineFault::kNone, EngineFault::kSkipBarrierSort,
                            EngineFault::kDeliverEarly}) {
    EngineFault parsed = EngineFault::kNone;
    ASSERT_TRUE(ParseEngineFault(EngineFaultName(fault), &parsed));
    EXPECT_EQ(parsed, fault);
  }
  EngineFault parsed = EngineFault::kNone;
  EXPECT_FALSE(ParseEngineFault("no-such-fault", &parsed));
}

// Counts every hook invocation and records the drain order it was shown.
class CountingHooks : public BarrierHooks {
 public:
  void OnWindowStart(std::uint64_t window, Tick horizon) override {
    (void)window;
    (void)horizon;
    ++window_starts;
  }
  void OnBarrier(std::uint64_t window, std::vector<int>* drain_order) override {
    (void)window;
    ++barriers;
    last_drain_order = *drain_order;
    if (reverse_drain) {
      std::reverse(drain_order->begin(), drain_order->end());
    }
  }
  void OnDrained(const ShardMessage&) override { ++drained; }
  void OnDeliver(const ShardMessage&) override { ++delivered; }

  bool reverse_drain = false;
  std::uint64_t window_starts = 0;
  std::uint64_t barriers = 0;
  std::uint64_t drained = 0;
  std::uint64_t delivered = 0;
  std::vector<int> last_drain_order;
};

TEST(ShardedEngineTest, BarrierHooksObserveEveryWindowAndMessage) {
  ShardedEngine::Options options;
  options.lookahead = 50;
  options.record_deliveries = true;
  CountingHooks hooks;
  options.hooks = &hooks;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  std::vector<HopLog> log;
  PingPong ctx{&engine, &sims, &log, options.lookahead, /*max_hops=*/4};
  for (int s = 0; s < 2; ++s) {
    engine.AddShard(&sims[static_cast<std::size_t>(s)],
                    [&ctx](const ShardMessage& message) {
                      ScheduleHop(&ctx, static_cast<int>(message.dst),
                                  message.a, message.deliver_at);
                    });
  }
  ScheduleHop(&ctx, /*shard=*/0, /*hop=*/0, /*at=*/10);
  engine.Run(10000, /*pool=*/nullptr);

  EXPECT_EQ(hooks.window_starts, engine.stats().windows);
  EXPECT_EQ(hooks.barriers, engine.stats().windows);
  EXPECT_EQ(hooks.drained, engine.stats().delivered_messages);
  EXPECT_EQ(hooks.delivered, engine.stats().delivered_messages);
  EXPECT_EQ(hooks.last_drain_order.size(), 2u);
}

// Two shards, each firing two same-tick sends to the other: every
// barrier delivers messages that tie on deliver_at, so delivery order is
// decided purely by the (deliver_at, src, send_seq) sort.
std::vector<std::uint64_t> RunSameTickBurst(EngineFault fault,
                                            bool reverse_drain,
                                            std::vector<std::uint64_t>*
                                                digests) {
  ShardedEngine::Options options;
  options.lookahead = 100;
  options.record_deliveries = true;
  options.record_window_digests = true;
  options.fault = fault;
  CountingHooks hooks;
  hooks.reverse_drain = reverse_drain;
  options.hooks = &hooks;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  for (int s = 0; s < 2; ++s) {
    Simulator* sim = &sims[static_cast<std::size_t>(s)];
    engine.AddShard(sim, [sim](const ShardMessage& message) {
      const Tick at = std::max(message.deliver_at, sim->Now());
      sim->ScheduleAt(at, []() {});
    });
    sim->ScheduleAt(10, [&engine, sim, s]() {
      const Tick at = sim->Now() + 100;
      engine.Send(s, s ^ 1, at, 1, /*a=*/static_cast<std::uint64_t>(s) * 10,
                  0, 0);
      engine.Send(s, s ^ 1, at, 1, /*a=*/static_cast<std::uint64_t>(s) * 10 + 1,
                  0, 0);
    });
  }
  engine.Run(10000, /*pool=*/nullptr);

  if (digests != nullptr) *digests = engine.window_digests();
  std::vector<std::uint64_t> tags;
  for (const ShardMessage& message : engine.deliveries()) {
    tags.push_back(message.a);
  }
  return tags;
}

TEST(ShardedEngineTest, BarrierSortMakesDrainOrderIrrelevant) {
  std::vector<std::uint64_t> canonical_digests;
  const std::vector<std::uint64_t> canonical =
      RunSameTickBurst(EngineFault::kNone, /*reverse_drain=*/false,
                       &canonical_digests);
  // Shard 0's sends sort before shard 1's on the src tie-break.
  EXPECT_EQ(canonical, (std::vector<std::uint64_t>{0, 1, 10, 11}));

  std::vector<std::uint64_t> reversed_digests;
  const std::vector<std::uint64_t> reversed =
      RunSameTickBurst(EngineFault::kNone, /*reverse_drain=*/true,
                       &reversed_digests);
  EXPECT_EQ(reversed, canonical);
  EXPECT_EQ(reversed_digests, canonical_digests);
  EXPECT_FALSE(canonical_digests.empty());
}

TEST(ShardedEngineTest, SkipBarrierSortFaultDivergesUnderDrainOrder) {
  std::vector<std::uint64_t> canonical_digests;
  const std::vector<std::uint64_t> canonical =
      RunSameTickBurst(EngineFault::kNone, /*reverse_drain=*/false,
                       &canonical_digests);

  // On the identity drain order the raw order happens to equal the
  // sorted order, so the fault is latent...
  std::vector<std::uint64_t> identity_digests;
  EXPECT_EQ(RunSameTickBurst(EngineFault::kSkipBarrierSort,
                             /*reverse_drain=*/false, &identity_digests),
            canonical);
  EXPECT_EQ(identity_digests, canonical_digests);

  // ...and a perturbed drain order exposes it: delivery order now leaks
  // the schedule, and the window digests pinpoint the first bad window.
  std::vector<std::uint64_t> faulty_digests;
  const std::vector<std::uint64_t> faulty =
      RunSameTickBurst(EngineFault::kSkipBarrierSort, /*reverse_drain=*/true,
                       &faulty_digests);
  EXPECT_EQ(faulty, (std::vector<std::uint64_t>{10, 11, 0, 1}));
  ASSERT_EQ(faulty_digests.size(), canonical_digests.size());
  std::size_t first_divergent = faulty_digests.size();
  for (std::size_t i = 0; i < faulty_digests.size(); ++i) {
    if (faulty_digests[i] != canonical_digests[i]) {
      first_divergent = i;
      break;
    }
  }
  ASSERT_LT(first_divergent, faulty_digests.size());
  // The burst is delivered at the barrier closing window 0.
  EXPECT_EQ(first_divergent, 0u);
}

TEST(ShardedEngineTest, WindowDigestsAreBitIdenticalAcrossPoolSizes) {
  auto run_digests = [](ThreadPool* pool) {
    ShardedEngine::Options options;
    options.lookahead = 50;
    options.record_window_digests = true;
    ShardedEngine engine(options);
    std::deque<Simulator> sims(2);
    std::vector<HopLog> log;
    PingPong ctx{&engine, &sims, &log, options.lookahead, /*max_hops=*/32};
    for (int s = 0; s < 2; ++s) {
      engine.AddShard(&sims[static_cast<std::size_t>(s)],
                      [&ctx](const ShardMessage& message) {
                        ScheduleHop(&ctx, static_cast<int>(message.dst),
                                    message.a, message.deliver_at);
                      });
    }
    ScheduleHop(&ctx, /*shard=*/0, /*hop=*/0, /*at=*/10);
    engine.Run(10000, pool);
    return engine.window_digests();
  };

  const std::vector<std::uint64_t> serial = run_digests(nullptr);
  EXPECT_EQ(serial.size(), 33u);  // One digest per window.
  ThreadPool pool(4);
  EXPECT_EQ(run_digests(&pool), serial);
}

// The dynamic layer of the determinism proof kit. In a
// -DDMASIM_SCHED_FUZZ=1 build, nonzero seeds perturb worker backoff, the
// window submit order, and the pre-sort drain order — and every result
// must stay bit-identical to the unperturbed run. In ordinary builds the
// engine must refuse a nonzero seed rather than silently run
// unperturbed (a fuzz campaign measuring nothing would be worse than no
// campaign).
#if DMASIM_SCHED_FUZZ
TEST(ShardedEngineFuzzTest, PerturbationSeedsAreBitIdentical) {
  auto run = [](std::uint64_t seed, int threads) {
    ShardedEngine::Options options;
    options.lookahead = 50;
    options.record_window_digests = true;
    options.sched_fuzz_seed = seed;
    ShardedEngine engine(options);
    std::deque<Simulator> sims(3);
    std::vector<HopLog> log;
    PingPong ctx{&engine, &sims, &log, options.lookahead, /*max_hops=*/24};
    for (int s = 0; s < 3; ++s) {
      engine.AddShard(&sims[static_cast<std::size_t>(s)],
                      [&ctx](const ShardMessage& message) {
                        ScheduleHop(&ctx, static_cast<int>(message.dst),
                                    message.a, message.deliver_at);
                      });
    }
    ScheduleHop(&ctx, /*shard=*/0, /*hop=*/0, /*at=*/10);
    // Local-only work on shard 2 so every shard executes events and the
    // permuted submit order exercises three genuinely busy workers.
    for (int i = 0; i < 50; ++i) {
      sims[2].ScheduleAt(10 + i * 37, []() {});
    }
    ThreadPool pool(threads);
    engine.Run(10000, threads > 1 ? &pool : nullptr);
    return engine.window_digests();
  };

  const std::vector<std::uint64_t> baseline = run(/*seed=*/0, /*threads=*/1);
  ASSERT_FALSE(baseline.empty());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(run(seed, /*threads=*/3), baseline) << "seed " << seed;
  }
}
#else
TEST(ShardedEngineFuzzDeathTest, OrdinaryBuildRefusesFuzzSeed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardedEngine::Options options;
        options.lookahead = 50;
        options.sched_fuzz_seed = 7;
        ShardedEngine engine(options);
        std::deque<Simulator> sims(1);
        engine.AddShard(&sims[0], [](const ShardMessage&) {});
        sims[0].ScheduleAt(10, []() {});
        engine.Run(1000, /*pool=*/nullptr);
      },
      "sched_fuzz_seed");
}
#endif

TEST(ShardedEngineDeathTest, SendBelowTheHorizonIsRefused) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardedEngine::Options options;
        options.lookahead = 50;
        ShardedEngine engine(options);
        std::deque<Simulator> sims(2);
        engine.AddShard(&sims[0], [](const ShardMessage&) {});
        engine.AddShard(&sims[1], [](const ShardMessage&) {});
        sims[0].ScheduleAt(10, [&engine, &sims]() {
          // deliver_at == now < horizon: the conservative-lookahead
          // contract is violated and the engine must refuse.
          engine.Send(0, 1, sims[0].Now(), 1, 0, 0, 0);
        });
        sims[1].ScheduleAt(10, []() {});
        engine.Run(1000, /*pool=*/nullptr);
      },
      "check failed");
}

}  // namespace
}  // namespace dmasim
