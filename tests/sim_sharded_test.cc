// Unit tests for the sharded execution kernel: the SPSC mailbox contract
// (push order survives spills), RunEventsBefore window semantics, the
// calendar-queue instrumentation, and the ShardedEngine's conservative
// windows — including the core promise that a thread pool changes the
// wall clock, never the results.
#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "exp/thread_pool.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "sim/spsc_mailbox.h"
#include "util/time.h"

namespace dmasim {
namespace {

ShardMessage TaggedMessage(std::uint64_t tag) {
  ShardMessage message;
  message.a = tag;
  return message;
}

TEST(SpscMailboxTest, PreservesPushOrderAcrossSpills) {
  SpscMailbox<ShardMessage> mailbox(4);
  EXPECT_EQ(mailbox.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) mailbox.Push(TaggedMessage(i));

  EXPECT_EQ(mailbox.SizeApprox(), 10u);
  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);

  EXPECT_EQ(mailbox.stats().pushed, 10u);
  EXPECT_EQ(mailbox.stats().spilled, 6u);  // Ring holds 4; the rest spill.
  EXPECT_EQ(mailbox.stats().max_occupancy, 10u);
  EXPECT_EQ(mailbox.SizeApprox(), 0u);
}

TEST(SpscMailboxTest, RingIsReusableAfterDrain) {
  SpscMailbox<ShardMessage> mailbox(2);
  std::vector<ShardMessage> out;
  for (std::uint64_t round = 0; round < 5; ++round) {
    mailbox.Push(TaggedMessage(2 * round));
    mailbox.Push(TaggedMessage(2 * round + 1));
    mailbox.Drain(&out);
  }
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].a, i);
  // The ring never filled, so nothing spilled.
  EXPECT_EQ(mailbox.stats().spilled, 0u);
  EXPECT_EQ(mailbox.stats().max_occupancy, 2u);
}

TEST(SpscMailboxTest, ZeroCapacityClampsToOne) {
  SpscMailbox<ShardMessage> mailbox(0);
  EXPECT_EQ(mailbox.capacity(), 1u);
  mailbox.Push(TaggedMessage(7));
  std::vector<ShardMessage> out;
  mailbox.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 7u);
}

TEST(SimulatorWindowTest, RunEventsBeforeIsExclusiveOnTheBound) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&order]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&order]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&order]() { order.push_back(2); });

  // Events strictly before the bound run; the one at the bound waits.
  EXPECT_EQ(simulator.RunEventsBefore(30), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.NextPendingTick(), 30);

  EXPECT_EQ(simulator.RunEventsBefore(31), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.RunEventsBefore(1000), 0u);
}

TEST(SimulatorWindowTest, RunEventsBeforeRunsEventsSpawnedInWindow) {
  Simulator simulator;
  std::vector<Tick> seen;
  simulator.ScheduleAt(10, [&]() {
    seen.push_back(simulator.Now());
    // Still inside the window: must run in this same call.
    simulator.ScheduleAt(20, [&]() { seen.push_back(simulator.Now()); });
    // At the horizon: must NOT run in this call.
    simulator.ScheduleAt(50, [&]() { seen.push_back(simulator.Now()); });
  });
  EXPECT_EQ(simulator.RunEventsBefore(50), 2u);
  EXPECT_EQ(seen, (std::vector<Tick>{10, 20}));
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(SimulatorWindowTest, CalendarStatsCountTheWheelWork) {
  Simulator simulator;
  std::uint64_t ran = 0;
  // A span wider than the level-0 wheel (2^29 ps ~ 537 us) forces
  // level-1 cascades; the far-future event lands in the overflow list
  // (beyond the 2^39 ps level-1 span) and comes back via a refill.
  for (int i = 0; i < 200; ++i) {
    simulator.ScheduleAt(Tick{i} * 10 * kMicrosecond, [&ran]() { ++ran; });
  }
  simulator.ScheduleAt(2 * kSecond, [&ran]() { ++ran; });
  simulator.Run();

  EXPECT_EQ(ran, 201u);
  const Simulator::CalendarStats& stats = simulator.calendar_stats();
  EXPECT_GT(stats.bucket_loads, 0u);
  EXPECT_GT(stats.cascades, 0u);
  EXPECT_GT(stats.overflow_refills, 0u);
  EXPECT_GE(stats.max_bucket_events, 1u);
  EXPECT_GE(stats.max_cascade_events, 1u);
  EXPECT_GE(stats.max_overflow_events, 1u);
}

// --- ShardedEngine ------------------------------------------------------

TEST(ShardedEngineTest, SingleShardMatchesPlainRun) {
  std::vector<int> plain_order;
  Simulator plain;
  plain.ScheduleAt(30, [&plain_order]() { plain_order.push_back(3); });
  plain.ScheduleAt(10, [&plain_order]() { plain_order.push_back(1); });
  plain.ScheduleAt(20, [&plain_order]() { plain_order.push_back(2); });
  plain.RunUntil(100);

  std::vector<int> sharded_order;
  Simulator sharded;
  sharded.ScheduleAt(30, [&sharded_order]() { sharded_order.push_back(3); });
  sharded.ScheduleAt(10, [&sharded_order]() { sharded_order.push_back(1); });
  sharded.ScheduleAt(20, [&sharded_order]() { sharded_order.push_back(2); });
  ShardedEngine::Options options;
  ShardedEngine engine(options);
  engine.AddShard(&sharded, [](const ShardMessage&) {});
  engine.Run(100, /*pool=*/nullptr);

  EXPECT_EQ(sharded_order, plain_order);
  EXPECT_EQ(sharded.ExecutedEvents(), plain.ExecutedEvents());
  EXPECT_EQ(engine.ShardWindowEvents(0), 3u);
  EXPECT_GT(engine.stats().windows, 0u);
  EXPECT_EQ(engine.stats().delivered_messages, 0u);
}

// Shared scaffolding for the cross-shard tests: two shards bouncing a
// message back and forth, each hop one `lookahead` later, logging every
// executed hop as (shard, hop, time).
struct HopLog {
  int shard = 0;
  std::uint64_t hop = 0;
  Tick at = 0;
  bool operator==(const HopLog&) const = default;
};

struct PingPong {
  ShardedEngine* engine = nullptr;
  std::deque<Simulator>* sims = nullptr;
  std::vector<HopLog>* log = nullptr;
  Tick lookahead = 0;
  std::uint64_t max_hops = 0;
};

void ScheduleHop(PingPong* ctx, int shard, std::uint64_t hop, Tick at) {
  (*ctx->sims)[static_cast<std::size_t>(shard)].ScheduleAt(
      at, [ctx, shard, hop]() {
        Simulator& self = (*ctx->sims)[static_cast<std::size_t>(shard)];
        ctx->log->push_back(HopLog{shard, hop, self.Now()});
        if (hop < ctx->max_hops) {
          const int dst = shard ^ 1;
          ctx->engine->Send(shard, dst, self.Now() + ctx->lookahead,
                            /*kind=*/1, hop + 1, 0, 0);
        }
      });
}

// Builds the two-shard ping-pong and runs it; returns the hop log.
std::vector<HopLog> RunPingPong(ThreadPool* pool, std::uint64_t max_hops,
                                std::size_t mailbox_capacity,
                                std::vector<ShardMessage>* deliveries) {
  ShardedEngine::Options options;
  options.lookahead = 50;
  options.mailbox_capacity = mailbox_capacity;
  options.record_deliveries = deliveries != nullptr;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  std::vector<HopLog> log;
  PingPong ctx{&engine, &sims, &log, options.lookahead, max_hops};
  for (int s = 0; s < 2; ++s) {
    engine.AddShard(&sims[static_cast<std::size_t>(s)],
                    [&ctx](const ShardMessage& message) {
                      ScheduleHop(&ctx, static_cast<int>(message.dst),
                                  message.a, message.deliver_at);
                    });
  }
  ScheduleHop(&ctx, /*shard=*/0, /*hop=*/0, /*at=*/10);
  engine.Run(10000, pool);
  if (deliveries != nullptr) *deliveries = engine.deliveries();
  return log;
}

TEST(ShardedEngineTest, CrossShardMessagesArriveOneLookaheadLater) {
  std::vector<ShardMessage> deliveries;
  const std::vector<HopLog> log =
      RunPingPong(/*pool=*/nullptr, /*max_hops=*/4,
                  /*mailbox_capacity=*/16, &deliveries);

  // 0 -> 1 -> 0 -> 1 -> 0, each hop 50 ticks after the previous.
  ASSERT_EQ(log.size(), 5u);
  for (std::uint64_t hop = 0; hop < 5; ++hop) {
    EXPECT_EQ(log[hop].shard, static_cast<int>(hop % 2));
    EXPECT_EQ(log[hop].hop, hop);
    EXPECT_EQ(log[hop].at, static_cast<Tick>(10 + 50 * hop));
  }

  ASSERT_EQ(deliveries.size(), 4u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_EQ(deliveries[i].a, i + 1);  // Hops in delivery order.
    EXPECT_EQ(deliveries[i].src, i % 2);
    EXPECT_EQ(deliveries[i].dst, (i + 1) % 2);
  }
}

TEST(ShardedEngineTest, MailboxSpillsAreCountedNotDropped) {
  ShardedEngine::Options options;
  options.lookahead = 50;
  options.mailbox_capacity = 1;
  options.record_deliveries = true;
  ShardedEngine engine(options);

  std::deque<Simulator> sims(2);
  std::vector<std::uint64_t> received;
  engine.AddShard(&sims[0], [](const ShardMessage&) {});
  engine.AddShard(&sims[1], [&received](const ShardMessage& message) {
    received.push_back(message.a);
  });
  // One event fires three sends in a single window: two must spill.
  sims[0].ScheduleAt(10, [&engine, &sims]() {
    const Tick at = sims[0].Now() + 50;
    engine.Send(0, 1, at, 1, 100, 0, 0);
    engine.Send(0, 1, at, 1, 101, 0, 0);
    engine.Send(0, 1, at, 1, 102, 0, 0);
  });
  engine.Run(1000, /*pool=*/nullptr);

  EXPECT_EQ(received, (std::vector<std::uint64_t>{100, 101, 102}));
  EXPECT_EQ(engine.MailboxStats(0).pushed, 3u);
  EXPECT_EQ(engine.MailboxStats(0).spilled, 2u);
  EXPECT_EQ(engine.stats().mailbox_spills, 2u);
  EXPECT_EQ(engine.stats().delivered_messages, 3u);
  // Same-tick messages from one source are ordered by send sequence.
  ASSERT_EQ(engine.deliveries().size(), 3u);
  EXPECT_LT(engine.deliveries()[0].send_seq, engine.deliveries()[1].send_seq);
  EXPECT_LT(engine.deliveries()[1].send_seq, engine.deliveries()[2].send_seq);
}

// The tentpole invariant at kernel granularity: a pool run produces the
// same hop log, delivery log, and per-shard event counts as serial.
// (Named *Determinism* so the TSan CI leg picks it up.)
TEST(ShardedEngineDeterminismTest, PoolRunIsBitIdenticalToSerial) {
  std::vector<ShardMessage> serial_deliveries;
  const std::vector<HopLog> serial = RunPingPong(
      /*pool=*/nullptr, /*max_hops=*/64, /*mailbox_capacity=*/4,
      &serial_deliveries);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<ShardMessage> pooled_deliveries;
    const std::vector<HopLog> pooled = RunPingPong(
        &pool, /*max_hops=*/64, /*mailbox_capacity=*/4, &pooled_deliveries);
    EXPECT_EQ(pooled, serial) << "threads=" << threads;
    ASSERT_EQ(pooled_deliveries.size(), serial_deliveries.size());
    for (std::size_t i = 0; i < serial_deliveries.size(); ++i) {
      EXPECT_EQ(pooled_deliveries[i].deliver_at,
                serial_deliveries[i].deliver_at);
      EXPECT_EQ(pooled_deliveries[i].send_seq, serial_deliveries[i].send_seq);
      EXPECT_EQ(pooled_deliveries[i].src, serial_deliveries[i].src);
      EXPECT_EQ(pooled_deliveries[i].dst, serial_deliveries[i].dst);
      EXPECT_EQ(pooled_deliveries[i].a, serial_deliveries[i].a);
    }
  }
}

TEST(ShardedEngineDeathTest, SendBelowTheHorizonIsRefused) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardedEngine::Options options;
        options.lookahead = 50;
        ShardedEngine engine(options);
        std::deque<Simulator> sims(2);
        engine.AddShard(&sims[0], [](const ShardMessage&) {});
        engine.AddShard(&sims[1], [](const ShardMessage&) {});
        sims[0].ScheduleAt(10, [&engine, &sims]() {
          // deliver_at == now < horizon: the conservative-lookahead
          // contract is violated and the engine must refuse.
          engine.Send(0, 1, sims[0].Now(), 1, 0, 0, 0);
        });
        sims[1].ScheduleAt(10, []() {});
        engine.Run(1000, /*pool=*/nullptr);
      },
      "check failed");
}

}  // namespace
}  // namespace dmasim
