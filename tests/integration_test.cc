// End-to-end tests: full simulations asserting the paper's qualitative
// claims (who wins, guarantees respected, trends in the right direction).
#include <gtest/gtest.h>

#include "server/simulation_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

WorkloadSpec ShortOltpStorage(Tick duration = 150 * kMillisecond) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  return spec;
}

SimulationOptions WithTa(const SimulationOptions& base, double mu) {
  SimulationOptions options = base;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = mu;
  return options;
}

SimulationOptions WithTaPl(const SimulationOptions& base, double mu,
                           int groups = 2) {
  SimulationOptions options = WithTa(base, mu);
  options.memory.dma.pl.enabled = true;
  options.memory.dma.pl.groups = groups;
  return options;
}

TEST(IntegrationTest, RunsAreDeterministic) {
  const WorkloadSpec spec = ShortOltpStorage(40 * kMillisecond);
  SimulationOptions options;
  const SimulationResults a = RunWorkload(spec, options);
  const SimulationResults b = RunWorkload(spec, options);
  EXPECT_DOUBLE_EQ(a.energy.Total().joules(), b.energy.Total().joules());
  EXPECT_DOUBLE_EQ(a.client_response.Mean(), b.client_response.Mean());
  EXPECT_EQ(a.controller.transfers_completed, b.controller.transfers_completed);
  EXPECT_EQ(a.executed_events, b.executed_events);
}

TEST(IntegrationTest, BaselineUtilizationIsAboutOneThird) {
  // Fig. 2(a): with lone transfers, two thirds of active cycles are idle.
  WorkloadSpec spec = SyntheticStorageSpec();
  spec.duration = 80 * kMillisecond;
  spec = WithIntensity(spec, 30.0);  // Sparse: transfers rarely overlap.
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  EXPECT_NEAR(baseline.utilization_factor, 1.0 / 3.0, 0.04);
}

TEST(IntegrationTest, BaselineEnergyBreakdownShape) {
  // Fig. 2(b): ActiveIdleDma dominates ActiveServing (roughly 2:1) and
  // dwarfs ActiveIdleThreshold and Transition.
  const SimulationResults baseline =
      RunWorkload(ShortOltpStorage(), SimulationOptions{});
  const double idle_dma =
      baseline.energy.Fraction(EnergyBucket::kActiveIdleDma);
  const double serving =
      baseline.energy.Fraction(EnergyBucket::kActiveServing);
  EXPECT_GT(idle_dma, serving);
  EXPECT_GT(idle_dma,
            5.0 * baseline.energy.Fraction(EnergyBucket::kActiveIdleThreshold));
  EXPECT_GT(idle_dma, 5.0 * baseline.energy.Fraction(EnergyBucket::kTransition));
}

TEST(IntegrationTest, DmaAwareTechniquesSaveEnergyUnderCpLimit) {
  const WorkloadSpec spec = ShortOltpStorage();
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  const CpCalibration calibration = Calibrate(baseline);
  const double mu = calibration.MuFor(0.10);

  const SimulationResults ta = RunWorkload(spec, WithTa(options, mu));
  const SimulationResults tapl = RunWorkload(spec, WithTaPl(options, mu));

  // Both techniques save energy; PL does not hurt TA.
  EXPECT_GT(ta.EnergySavingsVs(baseline), 0.05);
  EXPECT_GT(tapl.EnergySavingsVs(baseline), 0.05);
  EXPECT_GT(tapl.EnergySavingsVs(baseline),
            ta.EnergySavingsVs(baseline) - 0.03);

  // The soft performance guarantee holds (with a small measurement
  // tolerance; the paper reports it never observed a violation).
  EXPECT_LE(ta.ResponseDegradationVs(baseline), 0.10 + 0.02);
  EXPECT_LE(tapl.ResponseDegradationVs(baseline), 0.10 + 0.02);

  // Utilization factor improves (Fig. 7 direction).
  EXPECT_GT(tapl.utilization_factor, baseline.utilization_factor + 0.05);
}

TEST(IntegrationTest, PerRequestServiceTimeGuarantee) {
  // Average DMA-memory request service time stays within (1 + mu) * T.
  const WorkloadSpec spec = ShortOltpStorage(100 * kMillisecond);
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  const double mu = Calibrate(baseline).MuFor(0.10);
  const SimulationResults ta = RunWorkload(spec, WithTa(options, mu));
  const double t_request =
      static_cast<double>(options.memory.RequestTime());
  EXPECT_LE(ta.chunk_service.Mean(), (1.0 + mu) * t_request);
}

TEST(IntegrationTest, ZeroCpLimitMatchesBaselineEnergyClosely) {
  const WorkloadSpec spec = ShortOltpStorage(60 * kMillisecond);
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  const SimulationResults ta = RunWorkload(spec, WithTa(options, 0.0));
  EXPECT_NEAR(ta.EnergySavingsVs(baseline), 0.0, 0.02);
  EXPECT_NEAR(ta.ResponseDegradationVs(baseline), 0.0, 0.02);
}

TEST(IntegrationTest, SavingsGrowWithCpLimitAndSaturate) {
  // Fig. 5 shape: monotone-ish growth, fast up to ~10%, slower beyond.
  const WorkloadSpec spec = ShortOltpStorage();
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  const CpCalibration calibration = Calibrate(baseline);

  const double s2 =
      RunWorkload(spec, WithTaPl(options, calibration.MuFor(0.02)))
          .EnergySavingsVs(baseline);
  const double s10 =
      RunWorkload(spec, WithTaPl(options, calibration.MuFor(0.10)))
          .EnergySavingsVs(baseline);
  const double s30 =
      RunWorkload(spec, WithTaPl(options, calibration.MuFor(0.30)))
          .EnergySavingsVs(baseline);
  EXPECT_GT(s10, s2);
  EXPECT_GE(s30, s10 - 0.02);  // Beyond 10% the curve flattens.
  EXPECT_LT(s30 - s10, s10 - s2 + 0.05);
}

TEST(IntegrationTest, SavingsGrowWithWorkloadIntensity) {
  // Fig. 8 shape.
  SimulationOptions options;
  auto savings_at = [&](double transfers_per_ms) {
    WorkloadSpec spec = SyntheticStorageSpec();
    spec.duration = 100 * kMillisecond;
    spec = WithIntensity(spec, transfers_per_ms);
    const SimulationResults baseline = RunWorkload(spec, options);
    const double mu = Calibrate(baseline).MuFor(0.10);
    return RunWorkload(spec, WithTaPl(options, mu))
        .EnergySavingsVs(baseline);
  };
  const double low = savings_at(25.0);
  const double high = savings_at(200.0);
  EXPECT_GT(high, low);
}

TEST(IntegrationTest, CpuAccessesReduceSavings) {
  // Fig. 9 shape.
  SimulationOptions options;
  auto savings_with_cpu = [&](double accesses) {
    WorkloadSpec spec = SyntheticDatabaseSpec();
    spec.duration = 200 * kMillisecond;
    spec = WithCpuAccessesPerTransfer(spec, accesses);
    const SimulationResults baseline = RunWorkload(spec, options);
    const double mu = Calibrate(baseline).MuFor(0.10);
    return RunWorkload(spec, WithTaPl(options, mu))
        .EnergySavingsVs(baseline);
  };
  const double no_cpu = savings_with_cpu(0.0);
  const double heavy_cpu = savings_with_cpu(250.0);
  EXPECT_GT(no_cpu, heavy_cpu);
}

TEST(IntegrationTest, EqualBandwidthRatioYieldsLittleSaving) {
  // Fig. 10: with the I/O bus as fast as memory there is no
  // rate-mismatch waste to recover.
  WorkloadSpec spec = SyntheticStorageSpec();
  spec.duration = 80 * kMillisecond;
  SimulationOptions options;
  options.memory.bus_bandwidth = options.memory.MemoryBandwidth();
  const SimulationResults baseline = RunWorkload(spec, options);
  const double mu = Calibrate(baseline).MuFor(0.10);
  const SimulationResults tapl = RunWorkload(spec, WithTaPl(options, mu));
  EXPECT_NEAR(tapl.EnergySavingsVs(baseline), 0.0, 0.06);
}

TEST(IntegrationTest, ControllerBufferStaysTiny) {
  // Section 4.1.4: the gating buffer is a few hundred bytes per paper
  // configuration; our cap is (gather_depth + k) chunks per chip.
  const WorkloadSpec spec = ShortOltpStorage();
  SimulationOptions options;
  const SimulationResults baseline = RunWorkload(spec, options);
  const double mu = Calibrate(baseline).MuFor(0.10);
  const SimulationResults tapl = RunWorkload(spec, WithTaPl(options, mu));
  const std::int64_t cap = static_cast<std::int64_t>(options.memory.chips) *
                           6 * options.memory.chunk_bytes;
  EXPECT_LE(tapl.max_gated_buffer_bytes, cap);
}

TEST(IntegrationTest, SchemeNames) {
  MemorySystemConfig config;
  EXPECT_EQ(SchemeName(config), "baseline");
  config.dma.ta.enabled = true;
  EXPECT_EQ(SchemeName(config), "DMA-TA");
  config.dma.pl.enabled = true;
  config.dma.pl.groups = 6;
  EXPECT_EQ(SchemeName(config), "DMA-TA-PL(6)");
}

TEST(IntegrationTest, PolicyFactoryProducesAllKinds) {
  DynamicThresholdConfig thresholds;
  EXPECT_EQ(MakePolicy(PolicyKind::kDynamic, thresholds)->Name(),
            "dynamic-threshold");
  EXPECT_EQ(MakePolicy(PolicyKind::kStaticNap, thresholds)->Name(),
            "static-nap");
  EXPECT_EQ(MakePolicy(PolicyKind::kStaticPowerdown, thresholds)->Name(),
            "static-powerdown");
  EXPECT_EQ(MakePolicy(PolicyKind::kStaticStandby, thresholds)->Name(),
            "static-standby");
  EXPECT_EQ(MakePolicy(PolicyKind::kAlwaysActive, thresholds)->Name(),
            "always-active");
}

TEST(IntegrationTest, AlwaysActiveCostsFarMoreThanDynamic) {
  // Section 2.2: dynamic low-level management is the sane baseline.
  WorkloadSpec spec = ShortOltpStorage(40 * kMillisecond);
  SimulationOptions dynamic_options;
  SimulationOptions active_options;
  active_options.policy = PolicyKind::kAlwaysActive;
  const SimulationResults dynamic_run = RunWorkload(spec, dynamic_options);
  const SimulationResults active_run = RunWorkload(spec, active_options);
  EXPECT_GT(active_run.energy.Total(), 5.0 * dynamic_run.energy.Total());
}

TEST(IntegrationTest, CalibrationProducesSensibleMu) {
  const SimulationResults baseline =
      RunWorkload(ShortOltpStorage(60 * kMillisecond), SimulationOptions{});
  const CpCalibration calibration = Calibrate(baseline);
  EXPECT_GT(calibration.r0, 0.0);
  EXPECT_GT(calibration.m0, 0.0);
  EXPECT_GT(calibration.r0, calibration.m0);  // Disk dominates memory.
  EXPECT_DOUBLE_EQ(calibration.MuFor(0.0), 0.0);
  EXPECT_GT(calibration.MuFor(0.2), calibration.MuFor(0.1));
}

TEST(IntegrationTest, ResultsCarryWorkloadAndSchemeLabels) {
  const WorkloadSpec spec = ShortOltpStorage(30 * kMillisecond);
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  const SimulationResults results = RunWorkload(spec, options);
  EXPECT_EQ(results.workload, "OLTP-St");
  EXPECT_EQ(results.scheme, "DMA-TA/dynamic");
  EXPECT_GT(results.duration, spec.duration);  // Includes the drain.
}

TEST(IntegrationTest, MostTransfersCompleteWithinRun) {
  const WorkloadSpec spec = ShortOltpStorage(80 * kMillisecond);
  const SimulationResults results =
      RunWorkload(spec, SimulationOptions{});
  EXPECT_GT(results.controller.transfers_completed,
            results.controller.transfers_started * 95 / 100);
}

}  // namespace
}  // namespace dmasim
