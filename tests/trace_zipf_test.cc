// Tests for Zipf popularity helpers.
#include "trace/zipf.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dmasim {
namespace {

TEST(ZipfTopShareTest, UniformWhenAlphaZero) {
  EXPECT_NEAR(ZipfTopShare(1000, 0.0, 0.2), 0.2, 1e-9);
}

TEST(ZipfTopShareTest, MonotonicInAlpha) {
  const std::uint64_t n = 10000;
  double previous = 0.0;
  for (double alpha : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    const double share = ZipfTopShare(n, alpha, 0.2);
    EXPECT_GE(share, previous);
    previous = share;
  }
}

TEST(ZipfTopShareTest, FullFractionIsOne) {
  EXPECT_NEAR(ZipfTopShare(100, 1.0, 1.0), 1.0, 1e-9);
}

TEST(ZipfTopShareTest, HarmonicLawAtAlphaOne) {
  // Top-20% share for Zipf(1) over n items ~= ln(0.2 n) / ln(n) + gamma
  // corrections; just verify against a directly computed small case.
  const double share = ZipfTopShare(10, 1.0, 0.2);
  // Weights: 1, 1/2, ..., 1/10; top 2 = 1.5 of H(10) = 2.9290.
  EXPECT_NEAR(share, 1.5 / 2.9289682539682538, 1e-9);
}

TEST(FitZipfAlphaTest, RecoversKnownAlpha) {
  const std::uint64_t n = 5000;
  for (double alpha : {0.5, 0.8, 1.0, 1.3}) {
    const double share = ZipfTopShare(n, alpha, 0.2);
    const double fitted = FitZipfAlpha(n, 0.2, share);
    EXPECT_NEAR(fitted, alpha, 0.01);
  }
}

TEST(FitZipfAlphaTest, PaperFigure4Target) {
  // 20% of pages -> 60% of accesses is achievable with a sub-linear alpha.
  const double alpha = FitZipfAlpha(1ULL << 17, 0.20, 0.60);
  EXPECT_GT(alpha, 0.5);
  EXPECT_LT(alpha, 1.0);
  EXPECT_NEAR(ZipfTopShare(1ULL << 17, alpha, 0.20), 0.60, 0.005);
}

TEST(ZipfPagePickerTest, PermutationIsBijective) {
  const std::uint64_t pages = 1 << 12;
  ZipfPagePicker picker(pages, 1.0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t rank = 0; rank < pages; ++rank) {
    const std::uint64_t page = picker.PageForRank(rank);
    EXPECT_LT(page, pages);
    seen.insert(page);
  }
  EXPECT_EQ(seen.size(), pages);
}

TEST(ZipfPagePickerTest, PermutationScattersNeighbours) {
  // Consecutive ranks must not map to consecutive pages (otherwise the
  // popular pages would cluster on few chips even without PL).
  ZipfPagePicker picker(1 << 12, 1.0);
  int adjacent = 0;
  for (std::uint64_t rank = 0; rank + 1 < 100; ++rank) {
    const std::int64_t delta =
        static_cast<std::int64_t>(picker.PageForRank(rank + 1)) -
        static_cast<std::int64_t>(picker.PageForRank(rank));
    if (delta == 1 || delta == -1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5);
}

TEST(ZipfPagePickerTest, MostPopularPageIsRankZero) {
  const std::uint64_t pages = 1 << 10;
  ZipfPagePicker picker(pages, 1.2);
  Rng rng(77);
  std::vector<int> counts(pages, 0);
  for (int i = 0; i < 200000; ++i) ++counts[picker.Pick(rng)];
  const std::uint64_t hottest = picker.PageForRank(0);
  for (std::uint64_t page = 0; page < pages; ++page) {
    EXPECT_LE(counts[page], counts[hottest]);
  }
}

TEST(ZipfPagePickerTest, DeterministicGivenRngState) {
  ZipfPagePicker picker(1 << 10, 1.0);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(picker.Pick(a), picker.Pick(b));
  }
}

}  // namespace
}  // namespace dmasim
