// Integration tests for the memory controller (routing, gating, release,
// CPU priority, migration, and metrics).
#include "core/memory_controller.h"

#include <gtest/gtest.h>

#include "mem/power_policy.h"
#include "sim/simulator.h"

namespace dmasim {
namespace {

MemorySystemConfig SmallConfig() {
  MemorySystemConfig config;
  config.chips = 4;
  config.pages_per_chip = 16;
  config.page_bytes = 8192;
  config.bus_count = 3;
  config.chunk_bytes = 512;
  return config;
}

class ControllerFixture : public ::testing::Test {
 protected:
  enum class PolicyStyle { kDynamic, kAlwaysActive };

  ControllerFixture() = default;

  void Build(MemorySystemConfig config,
             PolicyStyle style = PolicyStyle::kDynamic) {
    config_ = config;
    if (style == PolicyStyle::kDynamic) {
      policy_ = std::make_unique<DynamicThresholdPolicy>();
    } else {
      policy_ = std::make_unique<AlwaysActivePolicy>();
    }
    controller_ = std::make_unique<MemoryController>(&simulator_, config_,
                                                     policy_.get());
  }

  Simulator simulator_;
  MemorySystemConfig config_;
  std::unique_ptr<LowPowerPolicy> policy_;
  std::unique_ptr<MemoryController> controller_;
};

TEST_F(ControllerFixture, ConfigDerivedQuantities) {
  const MemorySystemConfig config = SmallConfig();
  // Memory at 3.2 GB/s, buses at 1/3 of that: k = 3.
  EXPECT_EQ(config.AlignmentQuorum(), 3);
  // T = one bus slot for a 512-byte chunk = 12/8 * 512 cycles.
  EXPECT_EQ(config.RequestTime(), 512 * 12 / 8 * 625);
  EXPECT_EQ(config.TotalPages(), 64u);
}

TEST_F(ControllerFixture, QuorumScalesWithBandwidthRatio) {
  MemorySystemConfig config = SmallConfig();
  config.bus_bandwidth = 3.2e9;  // Ratio 1.
  EXPECT_EQ(config.AlignmentQuorum(), 1);
  config.bus_bandwidth = 1.6e9;  // Ratio 2.
  EXPECT_EQ(config.AlignmentQuorum(), 2);
  config.bus_bandwidth = 0.5e9;  // Ratio 6.4.
  EXPECT_EQ(config.AlignmentQuorum(), 7);
}

TEST_F(ControllerFixture, PagesStripedAcrossChips) {
  Build(SmallConfig());
  EXPECT_EQ(controller_->ChipOf(0), 0);
  EXPECT_EQ(controller_->ChipOf(1), 1);
  EXPECT_EQ(controller_->ChipOf(4), 0);
  EXPECT_EQ(controller_->ChipOf(63), 3);
}

TEST_F(ControllerFixture, SingleTransferCompletesWithBusPacing) {
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  Tick completed = -1;
  controller_->StartDmaTransfer(0, /*page=*/5, 8192, DmaKind::kNetwork,
                                [&](Tick when) { completed = when; });
  simulator_.RunUntil(kMillisecond);
  // 16 chunks paced at one bus slot each; the last chunk is issued at
  // 15 * slot and completes after its memory service time.
  const Tick slot = controller_->bus(0).SlotTime();
  const Tick service = config_.power.ServiceTime(ByteCount(512)).value();
  EXPECT_EQ(completed, 15 * slot + service);
  EXPECT_EQ(controller_->stats().transfers_completed, 1u);
  EXPECT_EQ(controller_->InFlightTransfers(), 0u);
}

TEST_F(ControllerFixture, LoneTransferUtilizationIsOneThird) {
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  for (int i = 0; i < 8; ++i) {
    controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
    simulator_.RunUntil(simulator_.Now() + 2 * kMillisecond);
  }
  EXPECT_NEAR(controller_->UtilizationFactor(), 1.0 / 3.0, 0.02);
}

TEST_F(ControllerFixture, ThreeAlignedTransfersReachFullUtilization) {
  // Three transfers from three buses to the same chip, started together on
  // an always-active chip: the chip serves a chunk from each bus per slot.
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  for (int bus = 0; bus < 3; ++bus) {
    controller_->StartDmaTransfer(bus, 5, 8192, DmaKind::kNetwork, {});
  }
  simulator_.RunUntil(kMillisecond);
  EXPECT_GT(controller_->UtilizationFactor(), 0.95);
}

TEST_F(ControllerFixture, GatingGathersQuorumAndAligns) {
  MemorySystemConfig config = SmallConfig();
  config.dma.ta.enabled = true;
  config.dma.ta.mu = 50.0;
  Build(config);  // Dynamic policy: chips rest in powerdown -> gating.

  // Three transfers to one chip from three buses, staggered by 20 us --
  // within the budget, so they must gather and release as a quorum.
  for (int bus = 0; bus < 3; ++bus) {
    simulator_.ScheduleAt(static_cast<Tick>(bus) * 20 * kMicrosecond,
                          [this, bus]() {
                            controller_->StartDmaTransfer(
                                bus, 5, 8192, DmaKind::kNetwork, {});
                          });
  }
  simulator_.RunUntil(5 * kMillisecond);
  EXPECT_EQ(controller_->stats().transfers_completed, 3u);
  EXPECT_EQ(controller_->aligner().TotalGated(), 3u);
  EXPECT_EQ(controller_->aligner().ReleasedByQuorum(), 1u);
  EXPECT_GT(controller_->UtilizationFactor(), 0.9);
  // Only one wakeup: the whole batch rode a single activation.
  EXPECT_EQ(controller_->chip(controller_->ChipOf(5)).stats().wakeups, 1u);
}

TEST_F(ControllerFixture, DeadlineReleasesLoneGatedTransfer) {
  MemorySystemConfig config = SmallConfig();
  config.dma.ta.enabled = true;
  config.dma.ta.mu = 5.0;  // Budget 38 us, above the gating floor.
  Build(config);
  Tick completed = -1;
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork,
                                [&](Tick when) { completed = when; });
  simulator_.RunUntil(50 * kMillisecond);
  EXPECT_GT(completed, 0);
  EXPECT_EQ(controller_->aligner().TotalGated(), 1u);
  EXPECT_EQ(controller_->aligner().ReleasedBySlack(), 1u);
  // The gating delay is bounded by the transfer's budget:
  // mu * T * 16 chunks.
  const Tick budget = static_cast<Tick>(5.0 * config.RequestTime() * 16);
  const Tick unmanaged = 15 * controller_->bus(0).SlotTime() +
                         config.power.ServiceTime(ByteCount(512)).value();
  EXPECT_LE(completed,
            budget + unmanaged + 6100 * kNanosecond /* wake */ +
                config.dma.ta.epoch_length);
}

TEST_F(ControllerFixture, TinyBudgetSkipsGatingEntirely) {
  // Cost-benefit guard: a delay budget below min_gating_budget cannot
  // gather companions, so the transfer is not delayed at all.
  MemorySystemConfig config = SmallConfig();
  config.dma.ta.enabled = true;
  config.dma.ta.mu = 1.0;  // Budget ~7.7 us < 25 us floor.
  Build(config);
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
  simulator_.RunUntil(5 * kMillisecond);
  EXPECT_EQ(controller_->aligner().TotalGated(), 0u);
  EXPECT_EQ(controller_->stats().transfers_completed, 1u);
}

TEST_F(ControllerFixture, ZeroMuBehavesLikeBaseline) {
  MemorySystemConfig ta_config = SmallConfig();
  ta_config.dma.ta.enabled = true;
  ta_config.dma.ta.mu = 0.0;
  Build(ta_config);
  Tick ta_completed = -1;
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork,
                                [&](Tick when) { ta_completed = when; });
  simulator_.RunUntil(5 * kMillisecond);

  Simulator baseline_sim;
  DynamicThresholdPolicy baseline_policy;
  MemoryController baseline(&baseline_sim, SmallConfig(), &baseline_policy);
  Tick baseline_completed = -1;
  baseline.StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork,
                            [&](Tick when) { baseline_completed = when; });
  baseline_sim.RunUntil(5 * kMillisecond);

  EXPECT_EQ(ta_completed, baseline_completed);
}

TEST_F(ControllerFixture, CpuAccessServedWithPriorityAndCounted) {
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  Tick cpu_done = -1;
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
  controller_->CpuAccess(5, 64, [&](Tick when) { cpu_done = when; });
  simulator_.RunUntil(kMillisecond);
  EXPECT_GT(cpu_done, 0);
  EXPECT_EQ(controller_->stats().cpu_accesses, 1u);
  // CPU access may wait at most one chunk service before being served.
  EXPECT_LE(cpu_done, config_.power.ServiceTime(ByteCount(512)).value() +
                          config_.power.ServiceTime(ByteCount(64)).value());
}

TEST_F(ControllerFixture, CpuAccessReleasesGatedChip) {
  MemorySystemConfig config = SmallConfig();
  config.dma.ta.enabled = true;
  config.dma.ta.mu = 1000.0;  // Essentially unbounded budget.
  Build(config);
  Tick completed = -1;
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork,
                                [&](Tick when) { completed = when; });
  simulator_.RunUntil(100 * kMicrosecond);
  EXPECT_EQ(completed, -1);  // Still gated.
  // A CPU access to the same chip activates it; the gated transfer rides
  // along instead of waiting for its own activation later.
  controller_->CpuAccess(5, 64);
  simulator_.RunUntil(simulator_.Now() + 2 * kMillisecond);
  EXPECT_GT(completed, 0);
}

TEST_F(ControllerFixture, MigrationMovesPageAndChargesEnergy) {
  MemorySystemConfig config = SmallConfig();
  config.dma.pl.enabled = true;
  config.dma.pl.interval = kMillisecond;
  config.dma.pl.min_hot_count = 1;
  Build(config);

  // Make page 5 (chip 1) clearly hot.
  for (int i = 0; i < 20; ++i) {
    simulator_.ScheduleAt(static_cast<Tick>(i) * 40 * kMicrosecond, [this]() {
      controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
    });
  }
  simulator_.RunUntil(3 * kMillisecond);
  EXPECT_GT(controller_->stats().migrations, 0u);
  EXPECT_EQ(controller_->ChipOf(5), 0);  // Moved to the hot chip.
  EnergyBreakdown energy = controller_->CollectEnergy();
  EXPECT_GT(energy.Of(EnergyBucket::kMigration).joules(), 0.0);
}

TEST_F(ControllerFixture, TransfersFollowMigratedPages) {
  MemorySystemConfig config = SmallConfig();
  config.dma.pl.enabled = true;
  config.dma.pl.interval = kMillisecond;
  config.dma.pl.min_hot_count = 1;
  Build(config);
  // Spread the transfers across the 1 ms migration interval so some run
  // before the page moves and some after.
  for (int i = 0; i < 20; ++i) {
    simulator_.ScheduleAt(static_cast<Tick>(i) * 120 * kMicrosecond, [this]() {
      controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
    });
  }
  simulator_.RunUntil(4 * kMillisecond);
  const auto& per_chip = controller_->TransfersPerChip();
  // Transfers before migration hit chip 1, afterwards chip 0.
  EXPECT_GT(per_chip[0], 0u);
  EXPECT_GT(per_chip[1], 0u);
  EXPECT_EQ(per_chip[0] + per_chip[1] + per_chip[2] + per_chip[3],
            controller_->stats().transfers_started);
}

TEST_F(ControllerFixture, HottestChipShare) {
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  controller_->StartDmaTransfer(0, 0, 8192, DmaKind::kNetwork, {});
  controller_->StartDmaTransfer(0, 0, 8192, DmaKind::kNetwork, {});
  controller_->StartDmaTransfer(0, 1, 8192, DmaKind::kNetwork, {});
  controller_->StartDmaTransfer(0, 2, 8192, DmaKind::kNetwork, {});
  EXPECT_DOUBLE_EQ(controller_->HottestChipShare(), 0.5);
}

TEST_F(ControllerFixture, EnergyAggregatesAcrossChips) {
  Build(SmallConfig());
  simulator_.RunUntil(kMillisecond);
  const EnergyBreakdown energy = controller_->CollectEnergy();
  // Four idle chips in powerdown for 1 ms.
  EXPECT_NEAR(
      energy.Total().joules(),
      4.0 * EnergyOver(MilliwattPower(3.0), Ticks(kMillisecond)).joules(),
      1e-9);
}

TEST_F(ControllerFixture, ChunkServiceTimeTracked) {
  Build(SmallConfig(), PolicyStyle::kAlwaysActive);
  controller_->StartDmaTransfer(0, 5, 8192, DmaKind::kNetwork, {});
  simulator_.RunUntil(kMillisecond);
  EXPECT_EQ(controller_->ChunkServiceTime().Count(), 16u);
  // Each chunk: issued, then served within one memory service time.
  EXPECT_NEAR(controller_->ChunkServiceTime().Mean(),
              static_cast<double>(config_.power.ServiceTime(ByteCount(512)).value()), 1.0);
}

}  // namespace
}  // namespace dmasim
