// Tests for the memory chip power-state machine and energy accounting.
#include "mem/memory_chip.h"

#include <gtest/gtest.h>

#include "mem/chip_power_model.h"
#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace dmasim {
namespace {

class ChipFixture : public ::testing::Test {
 protected:
  Simulator simulator_;
  PowerModel model_;
  RdramChipModel chip_model_{model_};
  DynamicThresholdPolicy dynamic_policy_;
  AlwaysActivePolicy active_policy_;
};

// Sum of all per-bucket times tracked by the chip.
Tick TrackedTime(const ChipStats& stats) {
  Tick total = stats.dma_serving + stats.cpu_serving +
               stats.migration_serving + stats.active_idle_dma +
               stats.active_idle_threshold + stats.transition;
  for (Tick t : stats.low_power) total += t;
  return total;
}

TEST_F(ChipFixture, StartsInPolicyRestingState) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  EXPECT_EQ(chip.power_state(), PowerState::kPowerdown);
  EXPECT_TRUE(chip.InLowPowerForGating());

  MemoryChip awake(&simulator_, &chip_model_, &active_policy_, 1);
  EXPECT_EQ(awake.power_state(), PowerState::kActive);
  EXPECT_FALSE(awake.InLowPowerForGating());
}

TEST_F(ChipFixture, WakeupThenServeTiming) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  Tick completed = -1;
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick when) { completed = when; }});
  simulator_.RunUntil(10 * kMicrosecond);
  // Powerdown -> active costs 6000 ns; serving 8 bytes costs 4 cycles.
  EXPECT_EQ(completed, 6000 * kNanosecond + 4 * 625);
  EXPECT_EQ(chip.stats().wakeups, 1u);
  EXPECT_EQ(chip.stats().dma_requests, 1u);
}

TEST_F(ChipFixture, TryStepDownDepthFollowsPolicyChain) {
  // Thresholds far beyond the test horizon so the idle timer never
  // interferes with the explicit demotions.
  DynamicThresholdConfig config;
  config.active_to_standby = kSecond;
  config.standby_to_nap = kSecond;
  config.nap_to_powerdown = kSecond;
  DynamicThresholdPolicy policy(config);
  MemoryChip chip(&simulator_, &chip_model_, &policy, 0);

  // Wake the chip; after serving it idles in Active.
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), [](Tick) {}});
  simulator_.RunUntil(10 * kMicrosecond);
  ASSERT_EQ(chip.power_state(), PowerState::kActive);

  // Depth 2 skips Standby: Active -> Nap in a single transition.
  ASSERT_TRUE(chip.TryStepDown(2));
  simulator_.RunUntil(simulator_.Now() +
                      model_.DownTransition(PowerState::kNap).duration.value());
  EXPECT_EQ(chip.power_state(), PowerState::kNap);

  // Over-deep requests clamp at the chain's end (Nap -> Powerdown).
  ASSERT_TRUE(chip.TryStepDown(5));
  simulator_.RunUntil(
      simulator_.Now() +
      model_.DownTransition(PowerState::kPowerdown).duration.value());
  EXPECT_EQ(chip.power_state(), PowerState::kPowerdown);
  EXPECT_EQ(chip.stats().step_downs, 2u);

  // Nothing below Powerdown: the policy chain is exhausted.
  EXPECT_FALSE(chip.TryStepDown(3));
}

TEST_F(ChipFixture, ServeFromActiveHasNoWakeDelay) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  Tick completed = -1;
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick when) { completed = when; }});
  simulator_.Run();
  EXPECT_EQ(completed, 4 * 625);
  EXPECT_EQ(chip.stats().wakeups, 0u);
}

TEST_F(ChipFixture, WakeEnergyGoesToTransitionBucket) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(6000 * kNanosecond + 4 * 625);
  chip.SyncAccounting();
  // Transition: 15 mW for 6000 ns.
  EXPECT_NEAR(
      chip.energy().Of(EnergyBucket::kTransition).joules(),
      EnergyOver(MilliwattPower(15.0), Ticks(6000 * kNanosecond)).joules(),
      1e-15);
  // Serving: 300 mW for 4 cycles.
  EXPECT_NEAR(chip.energy().Of(EnergyBucket::kActiveServing).joules(),
              EnergyOver(MilliwattPower(300.0), Ticks(4 * 625)).joules(),
              1e-15);
}

TEST_F(ChipFixture, CpuRequestsHavePriorityOverDma) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  std::vector<int> order;
  // First request starts serving immediately; the next two queue.
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick) { order.push_back(0); }});
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick) { order.push_back(1); }});
  chip.Enqueue(ChipRequest{RequestKind::kCpu, ByteCount(64),
                           [&](Tick) { order.push_back(2); }});
  simulator_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(ChipFixture, MigrationHasLowestPriority) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  std::vector<int> order;
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick) { order.push_back(0); }});
  chip.Enqueue(ChipRequest{RequestKind::kMigration, ByteCount(8),
                           [&](Tick) { order.push_back(1); }});
  chip.Enqueue(ChipRequest{RequestKind::kCpu, ByteCount(64),
                           [&](Tick) { order.push_back(2); }});
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8),
                           [&](Tick) { order.push_back(3); }});
  simulator_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST_F(ChipFixture, MigrationEnergyGoesToMigrationBucket) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  chip.Enqueue(ChipRequest{RequestKind::kMigration, ByteCount(8192), {}});
  simulator_.Run();
  chip.SyncAccounting();
  EXPECT_NEAR(chip.energy().Of(EnergyBucket::kMigration).joules(),
              EnergyOver(MilliwattPower(300.0), Ticks(4096 * 625)).joules(),
              1e-15);
  EXPECT_EQ(chip.stats().migration_requests, 1u);
}

TEST_F(ChipFixture, DynamicPolicyStepsDownThroughStates) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  // Use a chip that starts active with a dynamic policy instead:
  MemoryChip stepping(&simulator_, &chip_model_, &dynamic_policy_, 1);
  // Wake it with one request, then leave it idle.
  stepping.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(100 * kMicrosecond);
  EXPECT_EQ(stepping.power_state(), PowerState::kPowerdown);
  // active -> standby -> nap -> powerdown: three step-downs.
  EXPECT_EQ(stepping.stats().step_downs, 3u);
  stepping.SyncAccounting();
  EXPECT_GT(stepping.stats().low_power[static_cast<int>(PowerState::kStandby)],
            0);
  EXPECT_GT(stepping.stats().low_power[static_cast<int>(PowerState::kNap)], 0);
}

TEST_F(ChipFixture, IdleTimerCancelledByNewRequest) {
  DynamicThresholdConfig config;
  config.active_to_standby = 100 * kNanosecond;
  DynamicThresholdPolicy policy(config);
  MemoryChip chip(&simulator_, &chip_model_, &policy, 0);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(6000 * kNanosecond + 4 * 625 + 50 * kNanosecond);
  EXPECT_EQ(chip.power_state(), PowerState::kActive);
  // A new request arrives before the 100 ns idle threshold expires.
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(simulator_.Now() + 60 * kNanosecond);
  // The stale timer must not have fired mid-service.
  EXPECT_EQ(chip.power_state(), PowerState::kActive);
  EXPECT_EQ(chip.stats().step_downs, 0u);
}

TEST_F(ChipFixture, InFlightTransferSuppressesStepDown) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.Run();
  EXPECT_EQ(chip.power_state(), PowerState::kPowerdown);

  // With an in-flight transfer registered, idle-active time accrues to
  // ActiveIdleDma and the chip does not step down.
  chip.BeginTransfer();
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(simulator_.Now() + 100 * kMicrosecond);
  EXPECT_EQ(chip.power_state(), PowerState::kActive);
  chip.SyncAccounting();
  EXPECT_GT(chip.stats().active_idle_dma, 90 * kMicrosecond);

  // Ending the transfer re-arms the policy and the chip steps down.
  chip.EndTransfer();
  simulator_.RunUntil(simulator_.Now() + 100 * kMicrosecond);
  EXPECT_EQ(chip.power_state(), PowerState::kPowerdown);
}

TEST_F(ChipFixture, IdleAttributionSwitchesWithTransferRegistration) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  chip.BeginTransfer();
  simulator_.RunUntil(1000);
  chip.EndTransfer();
  simulator_.RunUntil(3000);
  chip.SyncAccounting();
  EXPECT_EQ(chip.stats().active_idle_dma, 1000);
  EXPECT_EQ(chip.stats().active_idle_threshold, 2000);
}

TEST_F(ChipFixture, StaticPolicyDropsImmediately) {
  StaticPolicy policy(PowerState::kNap);
  MemoryChip chip(&simulator_, &chip_model_, &policy, 0);
  EXPECT_EQ(chip.power_state(), PowerState::kNap);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.Run();
  // Wakes (60 ns), serves, and immediately transitions back to nap.
  EXPECT_EQ(chip.power_state(), PowerState::kNap);
  EXPECT_EQ(chip.stats().wakeups, 1u);
  EXPECT_EQ(chip.stats().step_downs, 1u);
  chip.SyncAccounting();
  EXPECT_EQ(chip.stats().active_idle_threshold, 0);
}

TEST_F(ChipFixture, RequestDuringDownTransitionTriggersRewake) {
  DynamicThresholdConfig config;
  config.active_to_standby = 10 * kNanosecond;
  DynamicThresholdPolicy policy(config);
  MemoryChip chip(&simulator_, &chip_model_, &policy, 0);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.Run();  // Settles in powerdown eventually; first check timing.

  // Re-wake and catch it mid "active -> standby" transition (1 cycle).
  Tick completed = -1;
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  // After serving (4 cycles) + threshold (16 cycles) the 1-cycle down
  // transition begins. Schedule a request inside that window.
  const Tick service_done = simulator_.Now();
  simulator_.ScheduleAt(service_done + 4 * 625 + 10 * kNanosecond + 300,
                        [&]() {
                          chip.Enqueue(ChipRequest{
                              RequestKind::kDma, ByteCount(8),
                              [&](Tick when) { completed = when; }});
                        });
  simulator_.Run();
  EXPECT_GT(completed, 0);
  EXPECT_EQ(chip.power_state(), PowerState::kPowerdown);
}

TEST_F(ChipFixture, Figure2aUtilizationPattern) {
  // Fig. 2(a): 8-byte requests arriving every 12 cycles keep the chip
  // serving 4 cycles and idle 8 -- two thirds of the active energy wasted.
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  chip.BeginTransfer();
  const int requests = 64;
  for (int i = 0; i < requests; ++i) {
    simulator_.ScheduleAt(static_cast<Tick>(i) * 12 * 625, [&]() {
      chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
    });
  }
  simulator_.RunUntil(requests * 12 * 625);
  chip.SyncAccounting();
  const Tick serving = chip.stats().dma_serving;
  const Tick idle = chip.stats().active_idle_dma;
  EXPECT_EQ(serving, requests * 4 * 625);
  EXPECT_EQ(idle, requests * 8 * 625);
  EXPECT_NEAR(static_cast<double>(serving) /
                  static_cast<double>(serving + idle),
              1.0 / 3.0, 1e-9);
}

TEST_F(ChipFixture, AlwaysActivePolicyNeverTransitions) {
  MemoryChip chip(&simulator_, &chip_model_, &active_policy_, 0);
  chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
  simulator_.RunUntil(kMillisecond);
  EXPECT_EQ(chip.power_state(), PowerState::kActive);
  EXPECT_EQ(chip.stats().step_downs, 0u);
  EXPECT_EQ(chip.stats().wakeups, 0u);
}

TEST_F(ChipFixture, SyncAccountingIsIdempotent) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  simulator_.RunUntil(kMicrosecond);
  chip.SyncAccounting();
  const double energy = chip.energy().Total().joules();
  chip.SyncAccounting();
  EXPECT_DOUBLE_EQ(chip.energy().Total().joules(), energy);
}

TEST_F(ChipFixture, LowPowerResidencyEnergy) {
  MemoryChip chip(&simulator_, &chip_model_, &dynamic_policy_, 0);
  simulator_.RunUntil(kMillisecond);
  chip.SyncAccounting();
  // Idle chip in powerdown: 3 mW for 1 ms.
  EXPECT_NEAR(chip.energy().Of(EnergyBucket::kLowPower).joules(),
              EnergyOver(MilliwattPower(3.0), Ticks(kMillisecond)).joules(),
              1e-12);
  EXPECT_DOUBLE_EQ(chip.energy().Total().joules(),
                   chip.energy().Of(EnergyBucket::kLowPower).joules());
}

// Property: across a randomized request schedule, the chip's tracked time
// buckets exactly tile the elapsed simulation time, and energy is
// consistent with the tracked times.
class ChipTimeConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ChipTimeConservationTest, TimeBucketsTileElapsedTime) {
  Simulator simulator;
  PowerModel model;
  RdramChipModel chip_model{model};
  DynamicThresholdPolicy policy;
  MemoryChip chip(&simulator, &chip_model, &policy, 0);
  Rng rng(static_cast<std::uint64_t>(GetParam()));

  Tick when = 0;
  int transfers_open = 0;
  for (int i = 0; i < 300; ++i) {
    when += static_cast<Tick>(rng.NextExponential(5000.0)) + 1;
    const int action = static_cast<int>(rng.NextBounded(5));
    simulator.ScheduleAt(when, [&chip, &transfers_open, action]() {
      switch (action) {
        case 0:
          chip.Enqueue(ChipRequest{RequestKind::kDma, ByteCount(8), {}});
          break;
        case 1:
          chip.Enqueue(ChipRequest{RequestKind::kCpu, ByteCount(64), {}});
          break;
        case 2:
          chip.Enqueue(ChipRequest{RequestKind::kMigration, ByteCount(512), {}});
          break;
        case 3:
          chip.BeginTransfer();
          ++transfers_open;
          break;
        case 4:
          if (transfers_open > 0) {
            chip.EndTransfer();
            --transfers_open;
          }
          break;
      }
    });
  }
  simulator.RunUntil(when + 100 * kMicrosecond);
  chip.SyncAccounting();

  EXPECT_EQ(TrackedTime(chip.stats()), simulator.Now());
  EXPECT_GT(chip.energy().Total().joules(), 0.0);
  // Served-request counters are consistent.
  EXPECT_EQ(chip.QueuedRequests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChipTimeConservationTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace dmasim
