// Tests for the buffer cache and the data-server request paths.
#include "server/data_server.h"

#include <gtest/gtest.h>

#include "core/memory_controller.h"
#include "mem/power_policy.h"
#include "server/buffer_cache.h"
#include "sim/simulator.h"

namespace dmasim {
namespace {

TEST(BufferCacheTest, MissThenHit) {
  BufferCache cache(4);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.Hits(), 1u);
  EXPECT_EQ(cache.Misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.5);
}

TEST(BufferCacheTest, EvictsLeastRecentlyUsed) {
  BufferCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_TRUE(cache.Lookup(1));  // 1 becomes MRU; 2 is now LRU.
  const std::uint64_t evicted = cache.Insert(3);
  EXPECT_EQ(evicted, 2u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(BufferCacheTest, ReinsertDoesNotEvict) {
  BufferCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_EQ(cache.Insert(1), BufferCache::kNoEviction);
  EXPECT_EQ(cache.Size(), 2u);
}

TEST(BufferCacheTest, CapacityRespected) {
  BufferCache cache(3);
  for (std::uint64_t page = 0; page < 10; ++page) cache.Insert(page);
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_TRUE(cache.Contains(9));
  EXPECT_TRUE(cache.Contains(8));
  EXPECT_TRUE(cache.Contains(7));
}

TEST(BufferCacheTest, InsertAtExactCapacityEvictsExactlyOne) {
  BufferCache cache(3);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);  // Now exactly full; nothing evicted yet.
  EXPECT_EQ(cache.Size(), 3u);
  const std::uint64_t evicted = cache.Insert(4);
  EXPECT_EQ(evicted, 1u);  // The LRU page, and only it.
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(BufferCacheTest, ReinsertPromotesToMru) {
  BufferCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  // Re-inserting 1 must promote it (like a Lookup hit), so the next
  // eviction takes 2, not 1.
  EXPECT_EQ(cache.Insert(1), BufferCache::kNoEviction);
  EXPECT_EQ(cache.Insert(3), 2u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(BufferCacheTest, HitRatioOnEmptyCacheIsZero) {
  BufferCache cache(4);
  // No lookups yet: must be 0, not 0/0.
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
  EXPECT_EQ(cache.Hits(), 0u);
  EXPECT_EQ(cache.Misses(), 0u);
}

TEST(BufferCacheTest, SingleEntryCacheCycles) {
  BufferCache cache(1);
  EXPECT_EQ(cache.Insert(1), BufferCache::kNoEviction);
  EXPECT_EQ(cache.Insert(2), 1u);
  EXPECT_EQ(cache.Insert(3), 2u);
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_TRUE(cache.Contains(3));
}

class ServerFixture : public ::testing::Test {
 protected:
  void Build(double forced_miss_ratio) {
    MemorySystemConfig config;
    config.chips = 4;
    config.pages_per_chip = 16;
    controller_ = std::make_unique<MemoryController>(&simulator_, config,
                                                     &policy_);
    ServerConfig server_config;
    server_config.forced_miss_ratio = forced_miss_ratio;
    server_config.cache_pages = 16;
    server_config.disks = 8;
    server_ = std::make_unique<DataServer>(&simulator_, controller_.get(),
                                           server_config);
  }

  Simulator simulator_;
  DynamicThresholdPolicy policy_;
  std::unique_ptr<MemoryController> controller_;
  std::unique_ptr<DataServer> server_;
};

TEST_F(ServerFixture, HitPathIsFast) {
  Build(/*forced_miss_ratio=*/0.0);
  Tick done = -1;
  server_->ClientRead(3, 8192, [&](Tick when) { done = when; });
  simulator_.RunUntil(10 * kMillisecond);
  EXPECT_GT(done, 0);
  // Hit: wake + DMA (~13 us) + network; far below a disk access.
  EXPECT_LT(done, kMillisecond);
  EXPECT_EQ(server_->stats().hits, 1u);
  EXPECT_EQ(server_->stats().misses, 0u);
  EXPECT_EQ(server_->ResponseTime().Count(), 1u);
}

TEST_F(ServerFixture, MissPathIncludesDiskAndTwoTransfers) {
  Build(/*forced_miss_ratio=*/1.0);
  Tick done = -1;
  server_->ClientRead(3, 8192, [&](Tick when) { done = when; });
  simulator_.RunUntil(100 * kMillisecond);
  EXPECT_GT(done, kMillisecond);  // Disk latency dominates.
  EXPECT_EQ(server_->stats().misses, 1u);
  // Disk DMA in + network DMA out.
  EXPECT_EQ(controller_->stats().transfers_completed, 2u);
}

TEST_F(ServerFixture, WritePathAcknowledgesBeforeWriteback) {
  Build(0.0);
  Tick done = -1;
  server_->ClientWrite(3, 8192, [&](Tick when) { done = when; });
  simulator_.RunUntil(100 * kMillisecond);
  EXPECT_GT(done, 0);
  EXPECT_LT(done, kMillisecond);  // Ack does not wait for the disk.
  EXPECT_EQ(server_->stats().writes, 1u);
  // Network in + disk writeback out.
  EXPECT_EQ(controller_->stats().transfers_completed, 2u);
}

TEST_F(ServerFixture, ForcedMissRatioIsHonoured) {
  Build(/*forced_miss_ratio=*/0.3);
  for (int i = 0; i < 2000; ++i) {
    server_->ClientRead(static_cast<std::uint64_t>(i % 64), 8192, {});
    simulator_.RunUntil(simulator_.Now() + 50 * kMicrosecond);
  }
  simulator_.RunUntil(simulator_.Now() + 100 * kMillisecond);
  const double miss_ratio =
      static_cast<double>(server_->stats().misses) /
      static_cast<double>(server_->stats().reads);
  EXPECT_NEAR(miss_ratio, 0.3, 0.04);
}

TEST_F(ServerFixture, CacheDrivenMissesWhenNotForced) {
  Build(/*forced_miss_ratio=*/-1.0);
  // Working set of 8 pages fits in the 16-page cache: first pass misses,
  // second pass hits.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t page = 0; page < 8; ++page) {
      server_->ClientRead(page, 8192, {});
      simulator_.RunUntil(simulator_.Now() + 20 * kMillisecond);
    }
  }
  EXPECT_EQ(server_->stats().misses, 8u);
  EXPECT_EQ(server_->stats().hits, 8u);
}

TEST_F(ServerFixture, CpuAccessForwarded) {
  Build(0.0);
  server_->CpuAccess(3, 64);
  simulator_.RunUntil(kMillisecond);
  EXPECT_EQ(server_->stats().cpu_accesses, 1u);
  EXPECT_EQ(controller_->stats().cpu_accesses, 1u);
}

TEST_F(ServerFixture, ComputeTimeAddsToResponse) {
  MemorySystemConfig config;
  config.chips = 4;
  config.pages_per_chip = 16;
  controller_ = std::make_unique<MemoryController>(&simulator_, config,
                                                   &policy_);
  ServerConfig with_compute;
  with_compute.forced_miss_ratio = 0.0;
  with_compute.request_compute_time = 500 * kMicrosecond;
  DataServer server(&simulator_, controller_.get(), with_compute);
  Tick done = -1;
  server.ClientRead(3, 8192, [&](Tick when) { done = when; });
  simulator_.RunUntil(10 * kMillisecond);
  EXPECT_GE(done, 500 * kMicrosecond);
}

}  // namespace
}  // namespace dmasim
