// Death tests for the DMASIM_CHECK macro family: the comparison macros
// must print both operand values on failure (the whole point of having
// them over plain DMASIM_CHECK), operands must be evaluated exactly
// once, and passing checks must be silent.
#include <cstdint>

#include <gtest/gtest.h>

#include "util/check.h"

namespace dmasim {
namespace {

enum class Phase : int { kIdle = 0, kBusy = 7 };

TEST(CheckMacrosTest, PassingChecksAreSilentAndEvaluateOnce) {
  int evaluations = 0;
  auto counted = [&evaluations]() {
    ++evaluations;
    return 41;
  };
  DMASIM_CHECK(counted() == 41);
  DMASIM_CHECK_EQ(counted(), 41);
  DMASIM_CHECK_NE(counted(), 40);
  DMASIM_CHECK_LT(counted(), 42);
  DMASIM_CHECK_LE(counted(), 41);
  DMASIM_CHECK_GT(counted(), 40);
  DMASIM_CHECK_GE(counted(), 41);
  EXPECT_EQ(evaluations, 7);
}

TEST(CheckMacrosDeathTest, PlainCheckPrintsConditionText) {
  const int x = 3;
  EXPECT_DEATH(DMASIM_CHECK(x == 4), "check failed at .*: x == 4");
}

TEST(CheckMacrosDeathTest, CheckMsgAppendsMessage) {
  EXPECT_DEATH(DMASIM_CHECK_MSG(false, "queue drained twice"),
               "false -- queue drained twice");
}

TEST(CheckMacrosDeathTest, CheckEqPrintsBothSignedValues) {
  const std::int64_t completed = 15;
  const std::int64_t issued = -16;
  EXPECT_DEATH(DMASIM_CHECK_EQ(completed, issued),
               "completed == issued \\(lhs = 15, rhs = -16\\)");
}

TEST(CheckMacrosDeathTest, CheckLePrintsUnsignedValues) {
  const std::uint64_t used = 18446744073709551615ULL;
  EXPECT_DEATH(DMASIM_CHECK_LE(used, 100ULL),
               "lhs = 18446744073709551615, rhs = 100");
}

TEST(CheckMacrosDeathTest, CheckEqPrintsFloatingPointValues) {
  const double measured = 0.5;
  EXPECT_DEATH(DMASIM_CHECK_EQ(measured, 0.25),
               "lhs = 0.5, rhs = 0.25");
}

TEST(CheckMacrosDeathTest, CheckEqPrintsBooleans) {
  const bool blocked = true;
  EXPECT_DEATH(DMASIM_CHECK_EQ(blocked, false),
               "lhs = true, rhs = false");
}

TEST(CheckMacrosDeathTest, CheckEqPrintsEnumsByUnderlyingValue) {
  const Phase phase = Phase::kBusy;
  EXPECT_DEATH(DMASIM_CHECK_EQ(phase, Phase::kIdle), "lhs = 7, rhs = 0");
}

TEST(CheckMacrosDeathTest, FailingComparisonEvaluatesOperandsOnce) {
  // The diagnostic must reflect a single evaluation of each side even on
  // the failure path (side-effecting operands are legal in checks).
  static int calls = 0;
  auto bump = []() {
    ++calls;
    return calls;
  };
  EXPECT_DEATH(
      {
        calls = 10;
        DMASIM_CHECK_EQ(bump(), 99);
      },
      "lhs = 11, rhs = 99");
}

TEST(CheckMacrosDeathTest, ExpectsAndEnsuresNameTheContractKind) {
  EXPECT_DEATH(DMASIM_EXPECTS(1 < 0), "precondition violated");
  EXPECT_DEATH(DMASIM_ENSURES(1 < 0), "postcondition violated");
}

}  // namespace
}  // namespace dmasim
