// Tests for popularity tracking and popularity-based layout planning.
#include "core/layout_manager.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/popularity_tracker.h"
#include "util/random.h"

namespace dmasim {
namespace {

TEST(PopularityTrackerTest, RecordsAndSaturates) {
  PopularityTracker tracker(16, /*max_count=*/3);
  tracker.Record(5);
  tracker.Record(5);
  EXPECT_EQ(tracker.Count(5), 2u);
  tracker.Record(5);
  tracker.Record(5);
  EXPECT_EQ(tracker.Count(5), 3u);  // Saturated.
  EXPECT_EQ(tracker.Count(6), 0u);
  EXPECT_EQ(tracker.total(), 4u);
}

TEST(PopularityTrackerTest, BulkRecordMatchesRepeatedSingles) {
  PopularityTracker bulk(8, /*max_count=*/100);
  PopularityTracker singles(8, /*max_count=*/100);
  bulk.Record(2, 37);
  for (int i = 0; i < 37; ++i) singles.Record(2);
  EXPECT_EQ(bulk.Count(2), singles.Count(2));
  EXPECT_EQ(bulk.total(), singles.total());
}

TEST(PopularityTrackerTest, BulkRecordSaturatesAtCounterBoundary) {
  PopularityTracker tracker(8, /*max_count=*/10);
  tracker.Record(3, 9);
  EXPECT_EQ(tracker.Count(3), 9u);  // One below the cap.
  tracker.Record(3, 1);
  EXPECT_EQ(tracker.Count(3), 10u);  // Exactly at the cap.
  tracker.Record(3, 1);
  EXPECT_EQ(tracker.Count(3), 10u);  // Pinned, not wrapped.
  tracker.Record(3, UINT64_MAX);     // Far past the cap in one step.
  EXPECT_EQ(tracker.Count(3), 10u);
  // The total keeps counting past per-page saturation.
  EXPECT_GT(tracker.total(), 10u);
}

TEST(PopularityTrackerTest, TotalPinsInsteadOfWrapping) {
  PopularityTracker tracker(4);
  // Reach the pin exactly, then overshoot: the total must stick at the
  // pin. Without the pin this wraps and silently inverts every
  // popularity share computed from it.
  tracker.Record(0, PopularityTracker::kTotalPin - 1);
  EXPECT_EQ(tracker.total(), PopularityTracker::kTotalPin - 1);
  tracker.Record(1);
  EXPECT_EQ(tracker.total(), PopularityTracker::kTotalPin);
  tracker.Record(2);  // Single-record path at the pin.
  EXPECT_EQ(tracker.total(), PopularityTracker::kTotalPin);
  tracker.Record(3, UINT64_MAX);  // Bulk path at the pin.
  EXPECT_EQ(tracker.total(), PopularityTracker::kTotalPin);
  // Aging still drains a pinned total.
  tracker.Age();
  EXPECT_EQ(tracker.total(), PopularityTracker::kTotalPin >> 1);
}

TEST(PopularityTrackerTest, AgingHalvesCounts) {
  PopularityTracker tracker(8);
  for (int i = 0; i < 9; ++i) tracker.Record(1);
  tracker.Record(2);
  tracker.Age();
  EXPECT_EQ(tracker.Count(1), 4u);
  EXPECT_EQ(tracker.Count(2), 0u);
}

PopularityLayoutConfig TestConfig(int groups = 2) {
  PopularityLayoutConfig config;
  config.enabled = true;
  config.groups = groups;
  config.hot_access_share = 0.6;
  config.min_hot_count = 2;
  return config;
}

// A small universe: 4 chips x 8 pages.
constexpr int kChips = 4;
constexpr int kPagesPerChip = 8;
constexpr std::uint64_t kPages = kChips * kPagesPerChip;

std::vector<std::int32_t> StripedLayout() {
  std::vector<std::int32_t> layout(kPages);
  for (std::uint64_t page = 0; page < kPages; ++page) {
    layout[page] = static_cast<std::int32_t>(page % kChips);
  }
  return layout;
}

TEST(HotGroupSizesTest, ExponentialSizing) {
  EXPECT_EQ(LayoutManager::HotGroupSizes(1, 2), (std::vector<int>{1}));
  EXPECT_EQ(LayoutManager::HotGroupSizes(7, 4), (std::vector<int>{1, 2, 4}));
  // Last hot group absorbs the remainder.
  EXPECT_EQ(LayoutManager::HotGroupSizes(10, 4), (std::vector<int>{1, 2, 7}));
  // Clipped when there are not enough chips.
  EXPECT_EQ(LayoutManager::HotGroupSizes(2, 6), (std::vector<int>{1, 1}));
  // Two groups = one hot group with everything.
  EXPECT_EQ(LayoutManager::HotGroupSizes(5, 2), (std::vector<int>{5}));
}

TEST(LayoutManagerTest, NoCountsNoPlan) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_TRUE(plan.moves.empty());
}

TEST(LayoutManagerTest, ConcentratesHotPagesOnHotChips) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  // Four hot pages spread across chips (striped layout puts page p on
  // chip p % 4).
  counts[1] = 100;
  counts[2] = 90;
  counts[3] = 80;
  counts[7] = 70;
  auto layout = StripedLayout();
  const LayoutPlan plan = manager.Plan(counts, layout);
  EXPECT_EQ(plan.hot_chips, 1);
  ASSERT_FALSE(plan.moves.empty());

  // Apply and verify all hot pages end on chip 0.
  for (const PageMove& move : plan.moves) {
    EXPECT_EQ(layout[move.page], move.from_chip);
    layout[move.page] = move.to_chip;
  }
  EXPECT_EQ(layout[1], 0);
  EXPECT_EQ(layout[2], 0);
  EXPECT_EQ(layout[3], 0);
  // Page 7 is outside the prefix that covers the 60% access-share target
  // (pages 1-3 already cover 270 of 340 accesses), so it stays put.
  EXPECT_EQ(layout[7], 3);
}

TEST(LayoutManagerTest, MovesComeInOccupancyPreservingSwaps) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[1] = 50;
  counts[5] = 40;
  auto layout = StripedLayout();
  const LayoutPlan plan = manager.Plan(counts, layout);
  ASSERT_EQ(plan.moves.size() % 2, 0u);

  std::vector<int> occupancy(kChips, 0);
  for (std::uint64_t page = 0; page < kPages; ++page) ++occupancy[layout[page]];
  for (const PageMove& move : plan.moves) {
    --occupancy[move.from_chip];
    ++occupancy[move.to_chip];
  }
  for (int chip = 0; chip < kChips; ++chip) {
    EXPECT_EQ(occupancy[chip], kPagesPerChip);
  }
}

TEST(LayoutManagerTest, AlreadyPlacedPagesDoNotMove) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[0] = 100;  // Page 0 lives on chip 0 already (striped).
  counts[4] = 90;   // Page 4 lives on chip 0 too.
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_TRUE(plan.moves.empty());
}

TEST(LayoutManagerTest, NoiseFloorFiltersOneOffPages) {
  PopularityLayoutConfig config = TestConfig();
  config.min_hot_count = 3;
  LayoutManager manager(config, kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[1] = 2;  // Below the floor.
  counts[2] = 2;
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_TRUE(plan.moves.empty());
}

TEST(LayoutManagerTest, RespectsMigrationCap) {
  PopularityLayoutConfig config = TestConfig();
  config.max_migrations_per_interval = 2;  // One swap.
  LayoutManager manager(config, kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[1] = 100;
  counts[2] = 90;
  counts[3] = 80;
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_LE(plan.moves.size(), 2u);
  EXPECT_GT(plan.deferred_moves, 0);
}

TEST(LayoutManagerTest, HotSetSizedByAccessShare) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  // 12 equally popular pages: covering 60% of accesses needs 8 of them,
  // i.e. one full chip.
  for (std::uint64_t page = 0; page < 12; ++page) counts[page] = 10;
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_EQ(plan.hot_chips, 1);
}

TEST(LayoutManagerTest, GroupOfChipAssignsColdGroup) {
  LayoutManager manager(TestConfig(/*groups=*/3), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  // Enough hot pages for 3 hot chips: 60% of 240 = 144 -> 15 pages -> 2
  // chips.
  for (std::uint64_t page = 0; page < 24; ++page) counts[page] = 10;
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  ASSERT_EQ(plan.group_of_chip.size(), static_cast<std::size_t>(kChips));
  EXPECT_EQ(plan.group_of_chip[0], 0);  // First hot group (1 chip).
  EXPECT_GT(plan.hot_chips, 1);
  // Cold chips carry the final group id.
  EXPECT_EQ(plan.group_of_chip[kChips - 1], plan.group_count - 1);
}

TEST(LayoutManagerTest, DeterministicPlan) {
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[1] = 5;
  counts[9] = 5;
  counts[13] = 4;
  const LayoutPlan a = manager.Plan(counts, StripedLayout());
  const LayoutPlan b = manager.Plan(counts, StripedLayout());
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) {
    EXPECT_EQ(a.moves[i].page, b.moves[i].page);
    EXPECT_EQ(a.moves[i].to_chip, b.moves[i].to_chip);
  }
}

TEST(LayoutManagerTest, FewerHotPagesThanGroupsLeavesNoEmptyGroup) {
  // One hot page with 4 groups requested: the exponential ladder needs
  // 1+2+4 chips but only 3 can be hot, so the ladder must clip to the
  // structural minimum rather than emit empty hot groups.
  LayoutManager manager(TestConfig(/*groups=*/4), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  counts[5] = 100;
  const LayoutPlan plan = manager.Plan(counts, StripedLayout());
  EXPECT_EQ(plan.hot_chips, kChips - 1);  // Clamped, one chip stays cold.
  ASSERT_EQ(plan.group_of_chip.size(), static_cast<std::size_t>(kChips));
  // Every group id in [0, group_count) owns at least one chip.
  std::vector<int> chips_in_group(static_cast<std::size_t>(plan.group_count),
                                  0);
  for (int group : plan.group_of_chip) {
    ASSERT_GE(group, 0);
    ASSERT_LT(group, plan.group_count);
    ++chips_in_group[static_cast<std::size_t>(group)];
  }
  for (int group = 0; group < plan.group_count; ++group) {
    EXPECT_GT(chips_in_group[static_cast<std::size_t>(group)], 0)
        << "group " << group << " owns no chips";
  }
}

TEST(LayoutManagerTest, TiedCountsBreakDeterministically) {
  // Pages with identical counts compete for the last hot slots; the
  // ranking must break ties the same way on every call (sweeps replan
  // from equal state in parallel and the artifact checksum is pinned).
  LayoutManager manager(TestConfig(), kChips, kPagesPerChip);
  std::vector<std::uint32_t> counts(kPages, 0);
  for (std::uint64_t page = 1; page < 9; ++page) counts[page] = 7;

  const LayoutPlan first = manager.Plan(counts, StripedLayout());
  // Interleave a different planning problem to dirty the scratch
  // buffers, then replay the tied input: the plan must not change.
  std::vector<std::uint32_t> other(kPages, 1);
  other[30] = 50;
  (void)manager.Plan(other, StripedLayout());
  const LayoutPlan second = manager.Plan(counts, StripedLayout());

  ASSERT_EQ(first.moves.size(), second.moves.size());
  for (std::size_t i = 0; i < first.moves.size(); ++i) {
    EXPECT_EQ(first.moves[i].page, second.moves[i].page);
    EXPECT_EQ(first.moves[i].from_chip, second.moves[i].from_chip);
    EXPECT_EQ(first.moves[i].to_chip, second.moves[i].to_chip);
  }
  EXPECT_EQ(first.hot_chips, second.hot_chips);
  EXPECT_EQ(first.group_of_chip, second.group_of_chip);
}

TEST(LayoutManagerTest, ShrinkingHotSetReplansWithoutOccupancyDrift) {
  // Interval 1: a wide hot set claims two chips. Interval 2: most pages
  // went cold, the hot set shrinks to one chip. The second plan must
  // work from the migrated layout and keep occupancy exact.
  LayoutManager manager(TestConfig(/*groups=*/2), kChips, kPagesPerChip);
  auto layout = StripedLayout();

  std::vector<std::uint32_t> counts(kPages, 0);
  for (std::uint64_t page = 0; page < 24; ++page) counts[page] = 10;
  const LayoutPlan wide = manager.Plan(counts, layout);
  EXPECT_GT(wide.hot_chips, 1);
  for (const PageMove& move : wide.moves) {
    ASSERT_EQ(layout[move.page], move.from_chip);
    layout[move.page] = move.to_chip;
  }

  // Cooldown: only three pages stay hot.
  std::fill(counts.begin(), counts.end(), 0u);
  counts[0] = 20;
  counts[1] = 20;
  counts[2] = 20;
  const LayoutPlan narrow = manager.Plan(counts, layout);
  EXPECT_EQ(narrow.hot_chips, 1);
  EXPECT_LT(narrow.hot_chips, wide.hot_chips);

  std::vector<int> occupancy(kChips, 0);
  for (std::uint64_t page = 0; page < kPages; ++page) {
    ++occupancy[layout[page]];
  }
  for (const PageMove& move : narrow.moves) {
    ASSERT_EQ(layout[move.page], move.from_chip);
    layout[move.page] = move.to_chip;
    --occupancy[move.from_chip];
    ++occupancy[move.to_chip];
  }
  for (int chip = 0; chip < kChips; ++chip) {
    EXPECT_EQ(occupancy[chip], kPagesPerChip);
  }
  // The hot prefix (pages 0 and 1 cover the 60% share) ends on the
  // single remaining hot chip.
  EXPECT_EQ(layout[0], layout[1]);
}

// Property test: random popularity vectors never produce invalid plans.
class LayoutPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LayoutPropertyTest, PlansAreAlwaysWellFormed) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  const int chips = 8;
  const int pages_per_chip = 64;
  const std::uint64_t pages = static_cast<std::uint64_t>(chips) *
                              static_cast<std::uint64_t>(pages_per_chip);
  for (int groups : {2, 3, 6}) {
    PopularityLayoutConfig config;
    config.enabled = true;
    config.groups = groups;
    config.min_hot_count = 1;
    LayoutManager manager(config, chips, pages_per_chip);

    std::vector<std::uint32_t> counts(pages, 0);
    for (std::uint64_t page = 0; page < pages; ++page) {
      if (rng.NextDouble() < 0.3) {
        counts[page] = static_cast<std::uint32_t>(rng.NextBounded(50));
      }
    }
    std::vector<std::int32_t> layout(pages);
    for (std::uint64_t page = 0; page < pages; ++page) {
      layout[page] = static_cast<std::int32_t>(rng.NextBounded(
          static_cast<std::uint64_t>(chips)));
    }
    // Fix occupancy to exactly pages_per_chip per chip (required
    // invariant): rebuild as striped with a random offset.
    for (std::uint64_t page = 0; page < pages; ++page) {
      layout[page] = static_cast<std::int32_t>((page + 3) %
                                               static_cast<std::uint64_t>(
                                                   chips));
    }

    const LayoutPlan plan = manager.Plan(counts, layout);
    EXPECT_EQ(plan.moves.size() % 2, 0u);
    std::unordered_set<std::uint64_t> moved;
    std::vector<int> delta(chips, 0);
    for (const PageMove& move : plan.moves) {
      EXPECT_EQ(layout[move.page], move.from_chip);
      EXPECT_NE(move.from_chip, move.to_chip);
      EXPECT_GE(move.to_chip, 0);
      EXPECT_LT(move.to_chip, chips);
      // Each page moves at most once per interval.
      EXPECT_TRUE(moved.insert(move.page).second);
      --delta[move.from_chip];
      ++delta[move.to_chip];
    }
    for (int chip = 0; chip < chips; ++chip) {
      EXPECT_EQ(delta[chip], 0) << "occupancy drift on chip " << chip;
    }
    EXPECT_LE(static_cast<int>(plan.moves.size()),
              config.max_migrations_per_interval);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dmasim
