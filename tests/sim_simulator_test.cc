// Tests for the discrete-event simulation kernel.
#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/time.h"

namespace dmasim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.Now(), 0);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
  EXPECT_EQ(simulator.ExecutedEvents(), 0u);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&]() { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30);
}

TEST(SimulatorTest, FifoAtEqualTimestamps) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesDuringEvent) {
  Simulator simulator;
  Tick observed = -1;
  simulator.ScheduleAt(55, [&]() { observed = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(observed, 55);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  Tick observed = -1;
  simulator.ScheduleAt(40, [&]() {
    simulator.ScheduleAfter(5, [&]() { observed = simulator.Now(); });
  });
  simulator.Run();
  EXPECT_EQ(observed, 45);
}

TEST(SimulatorTest, EventsCanScheduleAtSameTime) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(10, [&]() {
    order.push_back(1);
    simulator.ScheduleAt(10, [&]() { order.push_back(2); });
  });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.Now(), 10);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.ScheduleAt(10, [&]() { fired.push_back(10); });
  simulator.ScheduleAt(20, [&]() { fired.push_back(20); });
  simulator.ScheduleAt(30, [&]() { fired.push_back(30); });
  simulator.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(simulator.Now(), 20);
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  simulator.RunUntil(1000);
  EXPECT_EQ(simulator.Now(), 1000);
}

TEST(SimulatorTest, RunUntilHandlesSelfRescheduling) {
  // A periodic event must not prevent RunUntil from returning.
  Simulator simulator;
  struct Periodic {
    Simulator* simulator;
    int fires = 0;
    void Fire() {
      ++fires;
      simulator->ScheduleAfter(10, [this]() { Fire(); });
    }
  } periodic{&simulator};
  simulator.ScheduleAt(10, [&periodic]() { periodic.Fire(); });
  simulator.RunUntil(100);
  EXPECT_EQ(periodic.fires, 10);
  EXPECT_EQ(simulator.Now(), 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator simulator;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(i, []() {});
  }
  simulator.RunUntil(2);
  EXPECT_EQ(simulator.ExecutedEvents(), 3u);  // t = 0, 1, 2.
  simulator.Run();
  EXPECT_EQ(simulator.ExecutedEvents(), 5u);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1, [&]() { ++fired; });
  simulator.ScheduleAt(2, [&]() { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, InterleavedSchedulingKeepsDeterministicOrder) {
  // Two "components" scheduling against each other must interleave in a
  // reproducible way.
  Simulator simulator;
  std::vector<std::string> log;
  std::function<void(int)> ping = [&](int round) {
    log.push_back("ping" + std::to_string(round));
    if (round < 3) {
      simulator.ScheduleAfter(2, [&, round]() { ping(round + 1); });
    }
  };
  std::function<void(int)> pong = [&](int round) {
    log.push_back("pong" + std::to_string(round));
    if (round < 3) {
      simulator.ScheduleAfter(2, [&, round]() { pong(round + 1); });
    }
  };
  simulator.ScheduleAt(0, [&]() { ping(1); });
  simulator.ScheduleAt(1, [&]() { pong(1); });
  simulator.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"ping1", "pong1", "ping2", "pong2",
                                           "ping3", "pong3"}));
}

// --- Calendar-queue internals (bucket spans are implementation constants:
// --- level 0 covers 2^19 ticks per bucket, a level-1 slot covers 2^29,
// --- and the wheel horizon is 2^39; beyond that events sit in overflow).

constexpr Tick kBucketSpan = Tick{1} << 19;
constexpr Tick kLevel1Span = Tick{1} << 29;
constexpr Tick kWheelHorizon = Tick{1} << 39;

TEST(SimulatorCalendarTest, FifoAtEqualTimestampAcrossBucketBoundary) {
  // Equal-timestamp events scheduled before and after the wheel rotates
  // past their bucket must still run in scheduling order.
  Simulator simulator;
  std::vector<int> order;
  const Tick when = 3 * kBucketSpan + 17;  // Not in the serving bucket.
  for (int i = 0; i < 8; ++i) {
    simulator.ScheduleAt(when, [&order, i]() { order.push_back(i); });
  }
  // An earlier event that schedules more same-tick events mid-run, after
  // the wheel has advanced towards `when`.
  simulator.ScheduleAt(when - 1, [&]() {
    for (int i = 8; i < 12; ++i) {
      simulator.ScheduleAt(when, [&order, i]() { order.push_back(i); });
    }
  });
  simulator.Run();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorCalendarTest, SparseFarFutureTimestamps) {
  // One event per routing tier: serving bucket, later level-0 bucket,
  // level-1 span, and past-the-horizon overflow.
  Simulator simulator;
  std::vector<Tick> fired;
  const std::vector<Tick> times = {
      5,
      7 * kBucketSpan,
      3 * kLevel1Span + 11,
      kWheelHorizon + 13,
      4 * kWheelHorizon + 1,
  };
  // Schedule in reverse to prove order comes from timestamps, not
  // insertion.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const Tick when = *it;
    simulator.ScheduleAt(when, [&fired, when]() { fired.push_back(when); });
  }
  simulator.Run();
  EXPECT_EQ(fired, times);
  EXPECT_EQ(simulator.Now(), times.back());
  EXPECT_EQ(simulator.ExecutedEvents(), times.size());
}

TEST(SimulatorCalendarTest, ScheduleBehindParkedWheel) {
  // RunUntil with an empty queue (or a far-future event) parks the wheel
  // past the clock; subsequent schedules land "behind" the serving bucket
  // and must still execute, in FIFO order at equal timestamps.
  Simulator simulator;
  simulator.ScheduleAt(2 * kLevel1Span, []() {});
  simulator.RunUntil(kLevel1Span);  // Clock in the gap before the event.
  ASSERT_EQ(simulator.Now(), kLevel1Span);

  std::vector<int> order;
  const Tick when = kLevel1Span + 100;
  simulator.ScheduleAt(when, [&order]() { order.push_back(0); });
  simulator.ScheduleAt(when, [&order]() { order.push_back(1); });
  simulator.ScheduleAt(when + 1, [&order]() { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(simulator.Now(), 2 * kLevel1Span);
}

TEST(SimulatorCalendarTest, OverflowRefillsBeforeLaterInWindowEvent) {
  // Regression: an event parked in overflow (past the wheel horizon at
  // schedule time) must execute before a later event that only entered
  // the level-1 window after the wheel advanced. The wheel must not
  // cascade a level-1 bucket at or past the earliest overflow span.
  Simulator simulator;
  std::vector<Tick> fired;
  const Tick advance = 600 * kLevel1Span;  // Moves the wheel when it runs.
  const Tick parked = 1500 * kLevel1Span;  // Past the horizon at t = 0.
  const Tick late = 1600 * kLevel1Span;    // In-window once cur1 = 600.
  simulator.ScheduleAt(parked, [&fired, parked]() { fired.push_back(parked); });
  simulator.ScheduleAt(advance, [&]() {
    fired.push_back(advance);
    simulator.ScheduleAt(late, [&fired, late]() { fired.push_back(late); });
  });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<Tick>{advance, parked, late}));
  EXPECT_EQ(simulator.Now(), late);
}

TEST(SimulatorCalendarTest, OverflowSharingSpanWithLevel1EventKeepsOrder) {
  // Same shape, but the overflow event and the later-scheduled in-window
  // event land in the SAME level-1 span, overflow event first in time:
  // the refill must merge into the span before it cascades.
  Simulator simulator;
  std::vector<Tick> fired;
  const Tick advance = 600 * kLevel1Span;
  const Tick parked = 1500 * kLevel1Span + kBucketSpan;
  const Tick late = 1500 * kLevel1Span + 5 * kBucketSpan;
  simulator.ScheduleAt(parked, [&fired, parked]() { fired.push_back(parked); });
  simulator.ScheduleAt(advance, [&]() {
    fired.push_back(advance);
    simulator.ScheduleAt(late, [&fired, late]() { fired.push_back(late); });
  });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<Tick>{advance, parked, late}));
}

TEST(SimulatorCalendarTest, GoldenOrderMatchesBinaryHeapReplay) {
  // The calendar queue must replay the exact (time, sequence) order the
  // old binary-heap kernel produced. The reference is computed here with
  // a stable sort by timestamp: stability is precisely the heap's
  // sequence-number tiebreak.
  Rng rng(0xca1e);
  std::vector<Tick> times;
  for (int i = 0; i < 2000; ++i) {
    // Mix of dense, sparse, far-future, and duplicate timestamps.
    switch (rng.NextBounded(4)) {
      case 0:
        times.push_back(static_cast<Tick>(rng.NextBounded(1024)));
        break;
      case 1:
        times.push_back(static_cast<Tick>(rng.NextBounded(64)) *
                        kBucketSpan);
        break;
      case 2:
        times.push_back(static_cast<Tick>(
            rng.NextBounded(static_cast<std::uint64_t>(kLevel1Span))));
        break;
      default:
        times.push_back(kWheelHorizon +
                        static_cast<Tick>(rng.NextBounded(1 << 20)));
        break;
    }
  }
  std::vector<int> expected(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    expected[i] = static_cast<int>(i);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [&times](int a, int b) { return times[a] < times[b]; });

  Simulator simulator;
  std::vector<int> observed;
  for (std::size_t i = 0; i < times.size(); ++i) {
    simulator.ScheduleAt(times[i], [&observed, i]() {
      observed.push_back(static_cast<int>(i));
    });
  }
  simulator.Run();
  EXPECT_EQ(observed, expected);
}

TEST(SimulatorCalendarTest, GenerationCounterCancellation) {
  // The in-repo timer idiom: events capture a generation snapshot and
  // no-op when the counter moved on. The kernel has no remove operation,
  // so cancelled timers must stay executable (and counted) but inert.
  Simulator simulator;
  std::uint64_t generation = 0;
  int fired = 0;
  auto arm = [&](Tick delay) {
    const std::uint64_t snapshot = ++generation;
    simulator.ScheduleAfter(delay, [&, snapshot]() {
      if (generation != snapshot) return;  // Cancelled.
      ++fired;
    });
  };
  arm(10);
  arm(20);  // Cancels the first timer.
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.ExecutedEvents(), 2u);  // Both events executed.
}

TEST(SimulatorCalendarTest, SteppedMatchesExecutedWithoutCoalescing) {
  // SteppedEvents counts real queue pops; ExecutedEvents is the logical
  // count that coalescing layers keep invariant via CreditExecuted. With
  // no coalescing in play the two must agree.
  Simulator simulator;
  for (int i = 0; i < 7; ++i) {
    simulator.ScheduleAt(i * kBucketSpan, []() {});
  }
  simulator.Run();
  EXPECT_EQ(simulator.ExecutedEvents(), 7u);
  EXPECT_EQ(simulator.SteppedEvents(), 7u);
}

TEST(SimulatorCalendarTest, NextPendingTickPeeksWithoutExecuting) {
  Simulator simulator;
  EXPECT_EQ(simulator.NextPendingTick(), Simulator::kNoPendingEvent);
  simulator.ScheduleAt(42, []() {});
  simulator.ScheduleAt(7, []() {});
  EXPECT_EQ(simulator.NextPendingTick(), 7);
  EXPECT_EQ(simulator.ExecutedEvents(), 0u);
  EXPECT_EQ(simulator.PendingEvents(), 2u);
  simulator.Run();
  EXPECT_EQ(simulator.NextPendingTick(), Simulator::kNoPendingEvent);
}

}  // namespace
}  // namespace dmasim
