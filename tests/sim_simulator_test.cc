// Tests for the discrete-event simulation kernel.
#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/time.h"

namespace dmasim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.Now(), 0);
  EXPECT_EQ(simulator.PendingEvents(), 0u);
  EXPECT_EQ(simulator.ExecutedEvents(), 0u);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&]() { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30);
}

TEST(SimulatorTest, FifoAtEqualTimestamps) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesDuringEvent) {
  Simulator simulator;
  Tick observed = -1;
  simulator.ScheduleAt(55, [&]() { observed = simulator.Now(); });
  simulator.Run();
  EXPECT_EQ(observed, 55);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator simulator;
  Tick observed = -1;
  simulator.ScheduleAt(40, [&]() {
    simulator.ScheduleAfter(5, [&]() { observed = simulator.Now(); });
  });
  simulator.Run();
  EXPECT_EQ(observed, 45);
}

TEST(SimulatorTest, EventsCanScheduleAtSameTime) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(10, [&]() {
    order.push_back(1);
    simulator.ScheduleAt(10, [&]() { order.push_back(2); });
  });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.Now(), 10);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.ScheduleAt(10, [&]() { fired.push_back(10); });
  simulator.ScheduleAt(20, [&]() { fired.push_back(20); });
  simulator.ScheduleAt(30, [&]() { fired.push_back(30); });
  simulator.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(simulator.Now(), 20);
  EXPECT_EQ(simulator.PendingEvents(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator simulator;
  simulator.RunUntil(1000);
  EXPECT_EQ(simulator.Now(), 1000);
}

TEST(SimulatorTest, RunUntilHandlesSelfRescheduling) {
  // A periodic event must not prevent RunUntil from returning.
  Simulator simulator;
  int fires = 0;
  std::function<void()> periodic = [&]() {
    ++fires;
    simulator.ScheduleAfter(10, periodic);
  };
  simulator.ScheduleAt(10, periodic);
  simulator.RunUntil(100);
  EXPECT_EQ(fires, 10);
  EXPECT_EQ(simulator.Now(), 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator simulator;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(i, []() {});
  }
  simulator.RunUntil(2);
  EXPECT_EQ(simulator.ExecutedEvents(), 3u);  // t = 0, 1, 2.
  simulator.Run();
  EXPECT_EQ(simulator.ExecutedEvents(), 5u);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1, [&]() { ++fired; });
  simulator.ScheduleAt(2, [&]() { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(simulator.Step());
}

TEST(SimulatorTest, InterleavedSchedulingKeepsDeterministicOrder) {
  // Two "components" scheduling against each other must interleave in a
  // reproducible way.
  Simulator simulator;
  std::vector<std::string> log;
  std::function<void(int)> ping = [&](int round) {
    log.push_back("ping" + std::to_string(round));
    if (round < 3) {
      simulator.ScheduleAfter(2, [&, round]() { ping(round + 1); });
    }
  };
  std::function<void(int)> pong = [&](int round) {
    log.push_back("pong" + std::to_string(round));
    if (round < 3) {
      simulator.ScheduleAfter(2, [&, round]() { pong(round + 1); });
    }
  };
  simulator.ScheduleAt(0, [&]() { ping(1); });
  simulator.ScheduleAt(1, [&]() { pong(1); });
  simulator.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"ping1", "pong1", "ping2", "pong2",
                                           "ping3", "pong3"}));
}

}  // namespace
}  // namespace dmasim
