// Tests for the DMA-TA slack account (Section 4.1.2).
#include "core/slack_account.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <type_traits>

namespace dmasim {
namespace {

TEST(SlackAccountTest, StartsEmptyAndExhausted) {
  SlackAccount slack(/*mu=*/1.0, /*t_request=*/100, /*cap_requests=*/1000);
  EXPECT_DOUBLE_EQ(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, ArrivalCreditsMuT) {
  SlackAccount slack(2.0, 100, 1000);
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 200.0);
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 400.0);
  EXPECT_EQ(slack.arrivals(), 2u);
  EXPECT_FALSE(slack.Exhausted());
}

TEST(SlackAccountTest, EpochDebitScalesWithPending) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();  // 1000.
  slack.DebitEpoch(/*epoch_length=*/Ticks(50), /*pending_requests=*/4);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 200.0);
}

TEST(SlackAccountTest, ActivationDebit) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  slack.DebitActivation(/*activation_latency=*/Ticks(300), /*pending_requests=*/2);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 600.0);
}

TEST(SlackAccountTest, CpuServiceDebit) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  slack.DebitCpuService(/*service_time=*/Ticks(20), /*pending_requests=*/3);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 60.0);
}

TEST(SlackAccountTest, CanGoNegative) {
  SlackAccount slack(1.0, 100, 1000);
  slack.CreditArrival();
  slack.DebitEpoch(Ticks(1000), 5);
  EXPECT_LT(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, CapLimitsAccumulation) {
  SlackAccount slack(1.0, 100, /*cap_requests=*/5.0);  // Cap = 500.
  for (int i = 0; i < 100; ++i) slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 500.0);
}

TEST(SlackAccountTest, ZeroMuNeverAccumulates) {
  SlackAccount slack(0.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, ExposesParameters) {
  SlackAccount slack(2.5, 480, 64);
  EXPECT_DOUBLE_EQ(slack.mu(), 2.5);
  EXPECT_EQ(slack.t_request(), 480);
}

TEST(SlackAccountTest, ExactDebitToZeroCrossesTheExhaustionBoundary) {
  // Exhausted() is slack <= 0: a debit landing exactly on zero must
  // already trip it, since zero slack means no budget for further
  // gating. mu * T and the debit are integer-valued doubles, so the
  // subtraction is exact -- no epsilon needed.
  SlackAccount slack(1.0, 100, 1000);
  slack.CreditArrival();  // Balance: 100.
  EXPECT_FALSE(slack.Exhausted());
  slack.DebitEpoch(/*epoch_length=*/Ticks(100), /*pending_requests=*/1);
  EXPECT_DOUBLE_EQ(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, OverdrawAccumulatesAndCreditsRecover) {
  // Debits past zero are the paper's design (the epoch charge is
  // pessimistic), so the account must keep an accurate negative balance
  // and climb back out credit by credit instead of clamping at zero.
  SlackAccount slack(1.0, 100, 1000);
  slack.CreditArrival();  // Balance: 100.
  slack.DebitActivation(/*activation_latency=*/Ticks(70), /*pending_requests=*/3);
  EXPECT_DOUBLE_EQ(slack.slack(), -110.0);
  slack.DebitCpuService(/*service_time=*/Ticks(20), /*pending_requests=*/2);
  EXPECT_DOUBLE_EQ(slack.slack(), -150.0);
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), -50.0);
  EXPECT_TRUE(slack.Exhausted());
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 50.0);
  EXPECT_FALSE(slack.Exhausted());
}

TEST(SlackAccountTest, AccrualSaturatesExactlyAtTheCapNearTickLimits) {
  // A tick value this large (2^60 ps, about 13 days of simulated time)
  // stresses the int64 -> double path: 2^60 and 4 * 2^60 are exactly
  // representable, so saturation must land on the cap bit-exactly with
  // no overflow to infinity and no drift from repeated clamping.
  const Tick huge_t = Tick{1} << 60;
  SlackAccount slack(1.0, huge_t, /*cap_requests=*/4.0);
  for (int i = 0; i < 100; ++i) slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 4.0 * static_cast<double>(huge_t));
  EXPECT_DOUBLE_EQ(slack.slack(), slack.cap());
  EXPECT_EQ(slack.arrivals(), 100u);
}

TEST(SlackAccountTest, ArrivalCounterIsSixtyFourBitsWide) {
  // The arrival counter feeds the checker's conservation equation; a
  // 32-bit counter would wrap within a long run. Pin the width so a
  // future refactor cannot silently narrow it.
  SlackAccount slack(1.0, 100, 1000);
  static_assert(
      std::is_same_v<decltype(slack.arrivals()), std::uint64_t>,
      "arrivals() must stay a 64-bit counter");
  EXPECT_EQ(slack.arrivals(), 0u);
}

TEST(SlackAccountTest, HugeOverdrawStaysFiniteNearTheTickLimit) {
  // Worst-case epoch debit: a near-maximal epoch length charged to a
  // large pending count. The product (~2^60 * 10^4) is far inside
  // double range; the balance must stay finite and ordered so the
  // release valve (Exhausted) still fires.
  const Tick huge_epoch = Tick{1} << 60;
  SlackAccount slack(1.0, 100, 1000);
  slack.DebitEpoch(Ticks(huge_epoch), /*pending_requests=*/10000);
  EXPECT_TRUE(std::isfinite(slack.slack()));
  EXPECT_LT(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

}  // namespace
}  // namespace dmasim
