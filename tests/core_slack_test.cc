// Tests for the DMA-TA slack account (Section 4.1.2).
#include "core/slack_account.h"

#include <gtest/gtest.h>

namespace dmasim {
namespace {

TEST(SlackAccountTest, StartsEmptyAndExhausted) {
  SlackAccount slack(/*mu=*/1.0, /*t_request=*/100, /*cap_requests=*/1000);
  EXPECT_DOUBLE_EQ(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, ArrivalCreditsMuT) {
  SlackAccount slack(2.0, 100, 1000);
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 200.0);
  slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 400.0);
  EXPECT_EQ(slack.arrivals(), 2u);
  EXPECT_FALSE(slack.Exhausted());
}

TEST(SlackAccountTest, EpochDebitScalesWithPending) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();  // 1000.
  slack.DebitEpoch(/*epoch_length=*/50, /*pending_requests=*/4);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 200.0);
}

TEST(SlackAccountTest, ActivationDebit) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  slack.DebitActivation(/*activation_latency=*/300, /*pending_requests=*/2);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 600.0);
}

TEST(SlackAccountTest, CpuServiceDebit) {
  SlackAccount slack(1.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  slack.DebitCpuService(/*service_time=*/20, /*pending_requests=*/3);
  EXPECT_DOUBLE_EQ(slack.slack(), 1000.0 - 60.0);
}

TEST(SlackAccountTest, CanGoNegative) {
  SlackAccount slack(1.0, 100, 1000);
  slack.CreditArrival();
  slack.DebitEpoch(1000, 5);
  EXPECT_LT(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, CapLimitsAccumulation) {
  SlackAccount slack(1.0, 100, /*cap_requests=*/5.0);  // Cap = 500.
  for (int i = 0; i < 100; ++i) slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 500.0);
}

TEST(SlackAccountTest, ZeroMuNeverAccumulates) {
  SlackAccount slack(0.0, 100, 1000);
  for (int i = 0; i < 10; ++i) slack.CreditArrival();
  EXPECT_DOUBLE_EQ(slack.slack(), 0.0);
  EXPECT_TRUE(slack.Exhausted());
}

TEST(SlackAccountTest, ExposesParameters) {
  SlackAccount slack(2.5, 480, 64);
  EXPECT_DOUBLE_EQ(slack.mu(), 2.5);
  EXPECT_EQ(slack.t_request(), 480);
}

}  // namespace
}  // namespace dmasim
