// Tests for statistics accumulators, histograms, energy bookkeeping, and
// table formatting.
#include <cstdint>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "stats/accumulators.h"
#include "stats/energy.h"
#include "stats/histogram.h"
#include "stats/table.h"

namespace dmasim {
namespace {

TEST(RunningMeanTest, EmptyIsZero) {
  RunningMean mean;
  EXPECT_EQ(mean.Count(), 0u);
  EXPECT_EQ(mean.Mean(), 0.0);
  EXPECT_EQ(mean.Min(), 0.0);
  EXPECT_EQ(mean.Max(), 0.0);
}

TEST(RunningMeanTest, TracksMoments) {
  RunningMean mean;
  mean.Add(1.0);
  mean.Add(2.0);
  mean.Add(6.0);
  EXPECT_EQ(mean.Count(), 3u);
  EXPECT_DOUBLE_EQ(mean.Sum(), 9.0);
  EXPECT_DOUBLE_EQ(mean.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(mean.Min(), 1.0);
  EXPECT_DOUBLE_EQ(mean.Max(), 6.0);
}

TEST(RunningMeanTest, MergeCombines) {
  RunningMean a;
  a.Add(1.0);
  a.Add(3.0);
  RunningMean b;
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);
}

TEST(StateTimeTrackerTest, AccountsElapsedTime) {
  StateTimeTracker<3> tracker(0, 100);
  tracker.Switch(1, 150);
  tracker.Switch(2, 175);
  tracker.Switch(0, 300);
  tracker.Sync(400);
  EXPECT_EQ(tracker.TimeIn(0), 50 + 100);
  EXPECT_EQ(tracker.TimeIn(1), 25);
  EXPECT_EQ(tracker.TimeIn(2), 125);
  EXPECT_EQ(tracker.CurrentState(), 0);
}

TEST(StateTimeTrackerTest, SyncIsIdempotent) {
  StateTimeTracker<2> tracker;
  tracker.Sync(10);
  tracker.Sync(10);
  EXPECT_EQ(tracker.TimeIn(0), 10);
}

TEST(HistogramTest, CountsAndQuantiles) {
  Histogram histogram(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) histogram.Add(static_cast<double>(i));
  EXPECT_EQ(histogram.TotalCount(), 100u);
  EXPECT_NEAR(histogram.Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(histogram.Quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(histogram.Quantile(0.0), 5.0, 5.0);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.Add(-5.0);
  histogram.Add(50.0);
  EXPECT_EQ(histogram.BinValue(0), 1u);
  EXPECT_EQ(histogram.BinValue(9), 1u);
}

TEST(HistogramTest, EmptyQuantileReturnsLow) {
  Histogram histogram(3.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.0);
}

TEST(HistogramTest, BinCenters) {
  Histogram histogram(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(histogram.BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(histogram.BinCenter(9), 9.5);
}

TEST(HistogramTest, InfinitiesClampToEdgeBins) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.Add(std::numeric_limits<double>::infinity());
  histogram.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.BinValue(0), 1u);
  EXPECT_EQ(histogram.BinValue(9), 1u);
  EXPECT_EQ(histogram.TotalCount(), 2u);
  EXPECT_EQ(histogram.NanCount(), 0u);
}

TEST(HistogramTest, NanIsCountedSeparately) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.Add(std::numeric_limits<double>::quiet_NaN());
  histogram.Add(5.0);
  histogram.Add(std::numeric_limits<double>::quiet_NaN());
  // NaN carries no ordering information: it lands in no bin and does not
  // perturb TotalCount (and therefore quantiles).
  EXPECT_EQ(histogram.NanCount(), 2u);
  EXPECT_EQ(histogram.TotalCount(), 1u);
  std::uint64_t binned = 0;
  for (int bin = 0; bin < histogram.BinCount(); ++bin) {
    binned += histogram.BinValue(bin);
  }
  EXPECT_EQ(binned, 1u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), histogram.BinCenter(5));
}

TEST(HistogramTest, QuantileUnaffectedByNonFiniteMix) {
  Histogram histogram(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) histogram.Add(static_cast<double>(i));
  const double median_before = histogram.Quantile(0.5);
  histogram.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), median_before);
}

TEST(EnergyBreakdownTest, StartsEmpty) {
  EnergyBreakdown energy;
  EXPECT_DOUBLE_EQ(energy.Total().joules(), 0.0);
  EXPECT_DOUBLE_EQ(energy.Fraction(EnergyBucket::kActiveServing), 0.0);
}

TEST(EnergyBreakdownTest, AddAndTotal) {
  EnergyBreakdown energy;
  energy.Add(EnergyBucket::kActiveServing, JoulesEnergy(1.0));
  energy.Add(EnergyBucket::kActiveIdleDma, JoulesEnergy(2.0));
  energy.Add(EnergyBucket::kLowPower, JoulesEnergy(1.0));
  EXPECT_DOUBLE_EQ(energy.Total().joules(), 4.0);
  EXPECT_DOUBLE_EQ(energy.Of(EnergyBucket::kActiveIdleDma).joules(), 2.0);
  EXPECT_DOUBLE_EQ(energy.Fraction(EnergyBucket::kActiveIdleDma), 0.5);
}

TEST(EnergyBreakdownTest, Accumulates) {
  EnergyBreakdown a;
  a.Add(EnergyBucket::kTransition, JoulesEnergy(1.0));
  EnergyBreakdown b;
  b.Add(EnergyBucket::kTransition, JoulesEnergy(2.0));
  b.Add(EnergyBucket::kMigration, JoulesEnergy(3.0));
  a += b;
  EXPECT_DOUBLE_EQ(a.Of(EnergyBucket::kTransition).joules(), 3.0);
  EXPECT_DOUBLE_EQ(a.Of(EnergyBucket::kMigration).joules(), 3.0);
  const EnergyBreakdown c = a + b;
  EXPECT_DOUBLE_EQ(c.Of(EnergyBucket::kTransition).joules(), 5.0);
}

TEST(EnergyBreakdownTest, BucketNames) {
  EXPECT_EQ(EnergyBucketName(EnergyBucket::kActiveServing), "ActiveServing");
  EXPECT_EQ(EnergyBucketName(EnergyBucket::kActiveIdleDma), "ActiveIdleDma");
  EXPECT_EQ(EnergyBucketName(EnergyBucket::kLowPower), "LowPowerModes");
  EXPECT_EQ(EnergyBucketName(EnergyBucket::kMigration), "Migration");
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bb", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| bb    | 22    |"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Percent(0.386, 1), "38.6%");
  EXPECT_EQ(TablePrinter::Percent(-0.05, 0), "-5%");
}

}  // namespace
}  // namespace dmasim
