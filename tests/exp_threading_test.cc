// Concurrency stress tests for the experiment engine, written to give
// ThreadSanitizer material: many producers submitting concurrently,
// workers submitting child tasks (work-stealing across queues), reusable
// Wait barriers, destructor draining, and whole SweepRunners racing each
// other. Under plain builds they are fast smoke tests; the CI TSan job
// runs them with -fsanitize=thread (see DESIGN.md).
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

SweepOptions ThreadedOptions(int threads) {
  SweepOptions options;
  options.threads = threads;
  return options;
}

TEST(ThreadPoolStressTest, ManyProducersOneCounter) {
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 400;
  ThreadPool pool(4);
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed]() {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&executed]() {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, WorkersSpawnChildTasks) {
  // Randomized small task graphs: every task may fan out into children,
  // submitted from worker threads — the path a sweep's work-stealing
  // exercises when phase-2 runs are enqueued while phase 1 still drains.
  ThreadPool pool(4);
  std::atomic<int> executed{0};

  // Deterministic fan-out: node i spawns children while i * 13 % 7 > 3,
  // depth-limited. Total node count is fixed, so the assertion is exact.
  std::atomic<int> expected{0};
  std::function<void(int, int)> spawn = [&](int index, int depth) {
    expected.fetch_add(1, std::memory_order_relaxed);
    pool.Submit([&, index, depth]() {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (depth < 3 && (index * 13 % 7) > 3) {
        spawn(2 * index + 1, depth + 1);
        spawn(2 * index + 2, depth + 1);
      }
    });
  };
  for (int root = 0; root < 64; ++root) spawn(root, 0);

  pool.Wait();
  EXPECT_EQ(executed.load(), expected.load());
  EXPECT_GT(executed.load(), 64);  // Some fan-out actually happened.
}

TEST(ThreadPoolStressTest, WaitBarrierIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter]() {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100 * round);
  }
}

TEST(ThreadPoolStressTest, DestructorDrainsPendingTasks) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor must finish everything before joining.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

WorkloadSpec TinyWorkload(WorkloadSpec spec) {
  spec.duration = 4 * kMillisecond;
  return spec;
}

ExperimentSpec TinySweepSpec(const char* name) {
  ExperimentSpec spec;
  spec.name = name;
  spec.workloads = {TinyWorkload(OltpStorageSpec())};
  spec.schemes = {TaScheme()};
  spec.cp_limits = {0.10};
  return spec;
}

TEST(SweepThreadingTest, ConcurrentSweepRunnersDoNotInterfere) {
  // Two full sweep engines — each with its own work-stealing pool — run
  // simultaneously in one process. Sweeps share no mutable state, so
  // both must complete with their full grids and no sanitizer findings.
  SweepResults first_results;
  SweepResults second_results;
  std::thread first([&first_results]() {
    SweepRunner runner(ThreadedOptions(2));
    first_results = runner.Run(TinySweepSpec("stress-a"));
  });
  std::thread second([&second_results]() {
    SweepRunner runner(ThreadedOptions(2));
    second_results = runner.Run(TinySweepSpec("stress-b"));
  });
  first.join();
  second.join();

  EXPECT_EQ(first_results.summary.failed, 0);
  EXPECT_EQ(second_results.summary.failed, 0);
  EXPECT_EQ(first_results.records.size(), second_results.records.size());
  EXPECT_GE(first_results.records.size(), 2u);  // Baseline + TA run.
}

}  // namespace
}  // namespace dmasim
