// Tests for the chip-local low-power policies.
#include "mem/power_policy.h"

#include <gtest/gtest.h>

#include "mem/memory_chip.h"

namespace dmasim {
namespace {

TEST(StaticPolicyTest, DropsStraightToTarget) {
  const StaticPolicy policy(PowerState::kNap);
  const auto step = policy.NextStep(PowerState::kActive);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->after_idle, Ticks(0));
  EXPECT_EQ(step->target, PowerState::kNap);
}

TEST(StaticPolicyTest, StaysInTarget) {
  const StaticPolicy policy(PowerState::kNap);
  EXPECT_FALSE(policy.NextStep(PowerState::kNap).has_value());
  EXPECT_FALSE(policy.NextStep(PowerState::kStandby).has_value());
  EXPECT_FALSE(policy.NextStep(PowerState::kPowerdown).has_value());
}

TEST(StaticPolicyTest, Name) {
  EXPECT_EQ(StaticPolicy(PowerState::kPowerdown).Name(), "static-powerdown");
  EXPECT_EQ(StaticPolicy(PowerState::kStandby).Name(), "static-standby");
}

TEST(DynamicPolicyTest, StepsThroughAllStates) {
  const DynamicThresholdPolicy policy;
  const auto from_active = policy.NextStep(PowerState::kActive);
  ASSERT_TRUE(from_active.has_value());
  EXPECT_EQ(from_active->target, PowerState::kStandby);
  const auto from_standby = policy.NextStep(PowerState::kStandby);
  ASSERT_TRUE(from_standby.has_value());
  EXPECT_EQ(from_standby->target, PowerState::kNap);
  const auto from_nap = policy.NextStep(PowerState::kNap);
  ASSERT_TRUE(from_nap.has_value());
  EXPECT_EQ(from_nap->target, PowerState::kPowerdown);
  EXPECT_FALSE(policy.NextStep(PowerState::kPowerdown).has_value());
}

TEST(DynamicPolicyTest, UsesConfiguredThresholds) {
  DynamicThresholdConfig config;
  config.active_to_standby = 111;
  config.standby_to_nap = 222;
  config.nap_to_powerdown = 333;
  const DynamicThresholdPolicy policy(config);
  EXPECT_EQ(policy.NextStep(PowerState::kActive)->after_idle, Ticks(111));
  EXPECT_EQ(policy.NextStep(PowerState::kStandby)->after_idle, Ticks(222));
  EXPECT_EQ(policy.NextStep(PowerState::kNap)->after_idle, Ticks(333));
}

TEST(DynamicPolicyTest, DefaultActiveThresholdMatchesPaperRange) {
  // "the best setting ... is usually around 20-30 memory cycles".
  const DynamicThresholdPolicy policy;
  const Tick threshold = policy.NextStep(PowerState::kActive)->after_idle.value();
  EXPECT_GE(threshold, 20 * 625);
  EXPECT_LE(threshold, 30 * 625);
}

TEST(AlwaysActivePolicyTest, NeverSteps) {
  const AlwaysActivePolicy policy;
  EXPECT_FALSE(policy.NextStep(PowerState::kActive).has_value());
  EXPECT_EQ(policy.Name(), "always-active");
}

TEST(RestingStateTest, FollowsPolicyChain) {
  const DynamicThresholdPolicy dynamic;
  EXPECT_EQ(MemoryChip::RestingState(dynamic), PowerState::kPowerdown);
  const StaticPolicy nap(PowerState::kNap);
  EXPECT_EQ(MemoryChip::RestingState(nap), PowerState::kNap);
  const AlwaysActivePolicy active;
  EXPECT_EQ(MemoryChip::RestingState(active), PowerState::kActive);
}

}  // namespace
}  // namespace dmasim
