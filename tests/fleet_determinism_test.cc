// The tentpole invariant, end to end: a fleet run's results are a pure
// function of its options — bit-identical for every `sim_threads` value
// — across the paper's OLTP and DSS storage workloads and a monitored
// configuration. The golden-replay test additionally pins the exact
// cross-shard delivery log, so a synchronization bug that merely
// reorders shard-boundary events (without changing aggregate stats)
// still fails loudly. (Suite names carry *Determinism* so the TSan CI
// leg exercises the threaded paths under the race detector.)
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mon/scheme_parser.h"
#include "server/fleet_driver.h"
#include "server/simulation_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

// Short per-domain horizon: with four domains this still crosses
// hundreds of engine windows, which is what the invariant stresses.
constexpr Tick kFleetDuration = 4 * kMillisecond;

FleetOptions SmallFleet(WorkloadSpec spec) {
  FleetOptions options;
  options.workload = spec;
  options.workload.duration = kFleetDuration;
  options.domains = 4;
  options.remote_fraction = 0.25;  // Plenty of cross-shard traffic.
  options.streams_per_domain = 256;
  options.remote_latency = 20 * kMicrosecond;
  return options;
}

FleetOptions MonitoredFleet() {
  FleetOptions options = SmallFleet(OltpStorageSpec());
  options.base.memory.dma.ta.enabled = true;
  options.base.memory.dma.ta.mu = 2.0;
  options.base.memory.dma.pl.enabled = true;
  options.base.memory.monitor.enabled = true;
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "* * 0 0 8 demote-chip:2\n");
  EXPECT_TRUE(schemes.ok()) << schemes.error;
  options.base.memory.monitor.rules = schemes.rules;
  return options;
}

std::uint64_t FingerprintAt(FleetOptions options, int threads) {
  options.sim_threads = threads;
  const FleetResults results = RunFleet(options);
  // The run has to have actually computed something worth hashing.
  EXPECT_GT(results.executed_events, 0u);
  EXPECT_GT(results.remote_completed, 0u);
  EXPECT_GT(results.engine.windows, 0u);
  return results.Fingerprint();
}

TEST(FleetDeterminismTest, OltpFingerprintIsThreadCountInvariant) {
  const FleetOptions options = SmallFleet(OltpStorageSpec());
  const std::uint64_t serial = FingerprintAt(options, 1);
  EXPECT_EQ(FingerprintAt(options, 2), serial);
  EXPECT_EQ(FingerprintAt(options, 8), serial);
}

TEST(FleetDeterminismTest, DssFingerprintIsThreadCountInvariant) {
  const FleetOptions options = SmallFleet(DssStorageSpec());
  const std::uint64_t serial = FingerprintAt(options, 1);
  EXPECT_EQ(FingerprintAt(options, 2), serial);
  EXPECT_EQ(FingerprintAt(options, 8), serial);
}

TEST(FleetDeterminismTest, MonitoredFingerprintIsThreadCountInvariant) {
  const FleetOptions options = MonitoredFleet();
  const std::uint64_t serial = FingerprintAt(options, 1);
  EXPECT_EQ(FingerprintAt(options, 2), serial);
  EXPECT_EQ(FingerprintAt(options, 8), serial);
}

TEST(FleetDeterminismTest, RepeatedRunsShareOneFingerprint) {
  const FleetOptions options = SmallFleet(OltpStorageSpec());
  EXPECT_EQ(FingerprintAt(options, 1), FingerprintAt(options, 1));
  EXPECT_EQ(FingerprintAt(options, 2), FingerprintAt(options, 2));
}

TEST(FleetDeterminismTest, DistinctSeedsProduceDistinctFingerprints) {
  // The fingerprint must actually see the simulation: a digest that
  // ignored its inputs would pass every equality test above.
  FleetOptions options = SmallFleet(OltpStorageSpec());
  const std::uint64_t a = FingerprintAt(options, 1);
  options.workload.seed += 1;
  EXPECT_NE(FingerprintAt(options, 1), a);
}

// Golden replay: the shard-boundary traffic itself — every delivered
// message, in delivery order — is identical across thread counts.
TEST(FleetDeterminismTest, DeliveryLogIsThreadCountInvariant) {
  FleetOptions options = SmallFleet(OltpStorageSpec());
  options.record_deliveries = true;

  options.sim_threads = 1;
  const FleetResults serial = RunFleet(options);
  ASSERT_GT(serial.deliveries.size(), 0u);
  // Every remote read crosses the interconnect twice (request + reply).
  EXPECT_EQ(serial.deliveries.size(),
            serial.remote_sent + serial.remote_completed);

  for (int threads : {2, 8}) {
    options.sim_threads = threads;
    const FleetResults pooled = RunFleet(options);
    ASSERT_EQ(pooled.deliveries.size(), serial.deliveries.size())
        << "threads=" << threads;
    for (std::size_t i = 0; i < serial.deliveries.size(); ++i) {
      const ShardMessage& want = serial.deliveries[i];
      const ShardMessage& got = pooled.deliveries[i];
      ASSERT_TRUE(got.deliver_at == want.deliver_at &&
                  got.send_seq == want.send_seq && got.a == want.a &&
                  got.b == want.b && got.c == want.c &&
                  got.src == want.src && got.dst == want.dst &&
                  got.kind == want.kind)
          << "threads=" << threads << " delivery #" << i;
    }
    // Every send is delivered exactly once: per source, the sequence
    // numbers in the log are a gapless permutation of 0..n-1. (The log
    // is NOT deliver_at- or seq-sorted globally — replies carry
    // completion times that land beyond the window horizon, and the
    // sort key is per-barrier.)
    std::vector<std::vector<std::uint64_t>> seqs(
        static_cast<std::size_t>(options.domains));
    for (const ShardMessage& message : pooled.deliveries) {
      seqs[message.src].push_back(message.send_seq);
    }
    for (std::vector<std::uint64_t>& from_src : seqs) {
      std::sort(from_src.begin(), from_src.end());
      for (std::size_t s = 0; s < from_src.size(); ++s) {
        ASSERT_EQ(from_src[s], s);
      }
    }
  }
}

// The single-system driver accepts --sim-threads too: one controller is
// one shard, so the sharded path must reproduce the serial path on the
// whole SimulationResults surface, not just a digest.
TEST(DriverShardingDeterminismTest, RunTraceMatchesSerialExactly) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 8 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions serial_options;
  serial_options.memory.dma.ta.enabled = true;
  serial_options.memory.dma.ta.mu = 2.0;
  serial_options.memory.dma.pl.enabled = true;

  SimulationOptions sharded_options = serial_options;
  sharded_options.sim_threads = 8;

  const SimulationResults a = RunTrace(
      trace, spec.miss_ratio, spec.duration, serial_options, spec.name);
  const SimulationResults b = RunTrace(
      trace, spec.miss_ratio, spec.duration, sharded_options, spec.name);

  EXPECT_EQ(a.energy.Total(), b.energy.Total());
  for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
    EXPECT_EQ(a.energy.Of(static_cast<EnergyBucket>(bucket)),
              b.energy.Of(static_cast<EnergyBucket>(bucket)))
        << "bucket " << bucket;
  }
  EXPECT_EQ(a.client_response.Count(), b.client_response.Count());
  EXPECT_EQ(a.client_response.Sum(), b.client_response.Sum());
  EXPECT_EQ(a.chunk_service.Sum(), b.chunk_service.Sum());
  EXPECT_EQ(a.transfer_latency.Sum(), b.transfer_latency.Sum());
  EXPECT_EQ(a.controller.transfers_completed, b.controller.transfers_completed);
  EXPECT_EQ(a.server.reads, b.server.reads);
  EXPECT_EQ(a.server.misses, b.server.misses);
  EXPECT_EQ(a.gated_requests, b.gated_requests);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.stepped_events, b.stepped_events);
  EXPECT_EQ(a.utilization_factor, b.utilization_factor);
  EXPECT_EQ(a.hottest_chip_share, b.hottest_chip_share);
}

}  // namespace
}  // namespace dmasim
