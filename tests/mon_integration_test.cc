// End-to-end acceptance tests for the online access monitor: on the
// paper's OLTP storage workload, DMA-TA-PL fed by the monitored
// popularity estimate must recover at least 90% of the energy saving the
// oracle tracker achieves, at no more than 1% simulated monitoring
// overhead -- and a monitored run must be exactly reproducible.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "mon/scheme_parser.h"
#include "server/simulation_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

// Short enough to keep the suite fast, long enough for the monitor to
// pass several aging horizons (the recovery margin is stable from
// ~200 ms on; see examples/monitor_eval.cpp for the full experiment).
constexpr Tick kDuration = 200 * kMillisecond;
constexpr double kCpLimit = 0.10;

SimulationOptions MonitoredOptions(const SimulationOptions& oracle_options) {
  SimulationOptions options = oracle_options;
  options.memory.monitor.enabled = true;
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "64 * 0 1 4 pin-cold\n"
      "* * 0 0 8 demote-chip\n");
  EXPECT_TRUE(schemes.ok()) << schemes.error;
  options.memory.monitor.rules = schemes.rules;
  return options;
}

TEST(MonitorIntegrationTest, MonitoredPlRecoversOracleSavings) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = kDuration;
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions options;
  const SimulationResults baseline = RunTrace(
      trace, spec.miss_ratio, spec.duration, options, spec.name);
  const CpCalibration calibration = Calibrate(baseline);

  SimulationOptions oracle_options = options;
  oracle_options.memory.dma.ta.enabled = true;
  oracle_options.memory.dma.ta.mu = calibration.MuFor(kCpLimit);
  oracle_options.memory.dma.pl.enabled = true;
  const SimulationResults oracle = RunTrace(
      trace, spec.miss_ratio, spec.duration, oracle_options, spec.name);

  const SimulationResults monitored =
      RunTrace(trace, spec.miss_ratio, spec.duration,
               MonitoredOptions(oracle_options), spec.name);

  const double oracle_savings = oracle.EnergySavingsVs(baseline);
  const double monitored_savings = monitored.EnergySavingsVs(baseline);
  ASSERT_GT(oracle_savings, 0.0);

  // The ISSUE acceptance gates.
  EXPECT_GE(monitored_savings, 0.9 * oracle_savings)
      << "monitored PL recovers only "
      << 100.0 * monitored_savings / oracle_savings
      << "% of the oracle saving";
  EXPECT_LE(monitored.monitor.overhead_fraction, 0.01);

  // The monitored run must also stay inside the calibrated CP-Limit.
  EXPECT_LE(monitored.ResponseDegradationVs(baseline), kCpLimit);

  // Monitor summary plumbed through the driver.
  EXPECT_TRUE(monitored.monitor.enabled);
  EXPECT_FALSE(oracle.monitor.enabled);
  EXPECT_GT(monitored.monitor.probes, 0u);
  EXPECT_GT(monitored.monitor.observations, 0u);
  EXPECT_GT(monitored.monitor.aggregations, 0u);
  EXPECT_GE(monitored.monitor.hotness_error, 0.0);
  EXPECT_LE(monitored.monitor.hotness_error, 1.0);
  EXPECT_GT(monitored.controller.migrations, 0u);

  // Scheme labels distinguish the popularity sources; the suffix appears
  // only when the monitor is on (default artifacts keep their bytes).
  EXPECT_NE(monitored.scheme.find("DMA-TA-PL"), std::string::npos);
  EXPECT_NE(monitored.scheme.find("+mon"), std::string::npos);
  EXPECT_EQ(oracle.scheme.find("+mon"), std::string::npos);
}

TEST(MonitorIntegrationTest, DeepDemoteSchemeRunsAndApplies) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 100 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions options;
  options.memory.monitor.enabled = true;
  // Idle thresholds beyond the run horizon: the scheme action is the
  // only way down, so the depth suffix is what decides the reached
  // states (with the defaults, idle chips free-fall to powerdown long
  // before the first aggregation and there is nothing left to demote).
  options.thresholds.active_to_standby = kSecond;
  options.thresholds.standby_to_nap = kSecond;
  options.thresholds.nap_to_powerdown = kSecond;
  // A tight aggregation cadence and a short streak so chips that woke
  // for a burst and went quiet are caught while still Active (chips
  // that never woke sit in Powerdown and are refused — they have no
  // lower state).
  options.memory.monitor.aggregation_interval = kMillisecond;
  const SchemeParseResult schemes = ParseSchemeString(
      "* * 0 0 2 demote-chip:2\n");
  ASSERT_TRUE(schemes.ok()) << schemes.error;
  options.memory.monitor.rules = schemes.rules;

  const SimulationResults deep = RunTrace(
      trace, spec.miss_ratio, spec.duration, options, spec.name);
  EXPECT_GT(deep.monitor.demotions_requested, 0u);
  EXPECT_GT(deep.monitor.demotions_applied, 0u);

  // The deeper target must change the power outcome versus the same
  // rule at depth 1: strictly more energy in the low-power buckets is
  // not guaranteed in general, but the runs must at least differ — a
  // depth suffix that parses but changes nothing would be dead config.
  SimulationOptions shallow_options = options;
  const SchemeParseResult shallow_schemes = ParseSchemeString(
      "* * 0 0 2 demote-chip\n");
  ASSERT_TRUE(shallow_schemes.ok()) << shallow_schemes.error;
  shallow_options.memory.monitor.rules = shallow_schemes.rules;
  const SimulationResults shallow = RunTrace(
      trace, spec.miss_ratio, spec.duration, shallow_options, spec.name);
  EXPECT_NE(deep.energy.Total(), shallow.energy.Total());
}

TEST(MonitorDeterminismTest, MonitoredRunIsReproducible) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 2.0;
  options.memory.dma.pl.enabled = true;
  const SimulationOptions monitored = MonitoredOptions(options);

  const SimulationResults a = RunTrace(
      trace, spec.miss_ratio, spec.duration, monitored, spec.name);
  const SimulationResults b = RunTrace(
      trace, spec.miss_ratio, spec.duration, monitored, spec.name);

  EXPECT_EQ(a.energy.Total(), b.energy.Total());
  EXPECT_EQ(a.controller.migrations, b.controller.migrations);
  EXPECT_EQ(a.monitor.probes, b.monitor.probes);
  EXPECT_EQ(a.monitor.observations, b.monitor.observations);
  EXPECT_EQ(a.monitor.splits, b.monitor.splits);
  EXPECT_EQ(a.monitor.merges, b.monitor.merges);
  EXPECT_EQ(a.monitor.regions, b.monitor.regions);
  EXPECT_EQ(a.monitor.scheme_matches, b.monitor.scheme_matches);
  EXPECT_EQ(a.monitor.overhead_fraction, b.monitor.overhead_fraction);
  EXPECT_EQ(a.monitor.hotness_error, b.monitor.hotness_error);
}

}  // namespace
}  // namespace dmasim
