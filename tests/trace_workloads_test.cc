// Tests for the workload generator and the Table 2 presets.
#include "trace/workloads.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace dmasim {
namespace {

TEST(GenerateWorkloadTest, ProducesSortedTrace) {
  WorkloadSpec spec;
  spec.duration = 20 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  EXPECT_TRUE(IsTimeSorted(trace));
  EXPECT_FALSE(trace.empty());
  EXPECT_LT(trace.back().time, spec.duration);
}

TEST(GenerateWorkloadTest, MatchesRequestedRate) {
  WorkloadSpec spec;
  spec.client_reads_per_ms = 50.0;
  spec.duration = 100 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  const TraceSummary summary = Summarize(trace);
  EXPECT_NEAR(summary.ReadsPerMs(), 50.0, 3.0);
}

TEST(GenerateWorkloadTest, IsDeterministicPerSeed) {
  WorkloadSpec spec;
  spec.duration = 10 * kMillisecond;
  const Trace a = GenerateWorkload(spec);
  const Trace b = GenerateWorkload(spec);
  EXPECT_EQ(a, b);
  WorkloadSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(GenerateWorkload(other), a);
}

TEST(GenerateWorkloadTest, WriteFraction) {
  WorkloadSpec spec;
  spec.duration = 100 * kMillisecond;
  spec.write_fraction = 0.3;
  const Trace trace = GenerateWorkload(spec);
  const TraceSummary summary = Summarize(trace);
  const double total =
      static_cast<double>(summary.client_reads + summary.client_writes);
  EXPECT_NEAR(static_cast<double>(summary.client_writes) / total, 0.3, 0.03);
}

TEST(GenerateWorkloadTest, CpuAccessesPerTransfer) {
  WorkloadSpec spec;
  spec.duration = 50 * kMillisecond;
  spec.cpu_accesses_per_transfer = 100.0;
  const Trace trace = GenerateWorkload(spec);
  const TraceSummary summary = Summarize(trace);
  const double per_request = static_cast<double>(summary.cpu_accesses) /
                             static_cast<double>(summary.client_reads);
  EXPECT_NEAR(per_request, 100.0, 5.0);
}

TEST(GenerateWorkloadTest, CpuAccessesTargetTheTransferredPage) {
  WorkloadSpec spec;
  spec.duration = 5 * kMillisecond;
  spec.cpu_accesses_per_transfer = 10.0;
  const Trace trace = GenerateWorkload(spec);
  std::unordered_set<std::uint64_t> request_pages;
  for (const TraceRecord& record : trace) {
    if (record.kind != TraceEventKind::kCpuAccess) {
      request_pages.insert(record.page);
    }
  }
  for (const TraceRecord& record : trace) {
    if (record.kind == TraceEventKind::kCpuAccess) {
      EXPECT_TRUE(request_pages.count(record.page) > 0);
      EXPECT_EQ(record.bytes, 64);
    }
  }
}

TEST(GenerateWorkloadTest, BurstinessRaisesVariance) {
  WorkloadSpec smooth;
  smooth.duration = 200 * kMillisecond;
  WorkloadSpec bursty = smooth;
  bursty.burst_factor = 16.0;
  bursty.burst_fraction = 0.5;

  auto window_variance = [](const Trace& trace) {
    // Count arrivals per 1 ms window.
    std::vector<int> counts(201, 0);
    for (const TraceRecord& record : trace) {
      ++counts[static_cast<std::size_t>(record.time / kMillisecond)];
    }
    double mean = 0.0;
    for (int c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double variance = 0.0;
    for (int c : counts) variance += (c - mean) * (c - mean);
    return variance / static_cast<double>(counts.size()) / mean;
  };

  // Poisson gives variance/mean ~1; bursts push it well above.
  EXPECT_LT(window_variance(GenerateWorkload(smooth)), 2.0);
  EXPECT_GT(window_variance(GenerateWorkload(bursty)), 2.0);
}

TEST(GenerateWorkloadTest, LocalityPoolIncreasesReuse) {
  WorkloadSpec plain;
  plain.duration = 100 * kMillisecond;
  WorkloadSpec local = plain;
  local.locality_probability = 0.8;
  local.locality_pool_pages = 64;

  auto distinct = [](const Trace& trace) {
    return Summarize(trace).distinct_pages;
  };
  EXPECT_LT(distinct(GenerateWorkload(local)),
            distinct(GenerateWorkload(plain)) / 2);
}

TEST(PresetTest, OltpStorageMatchesTable2Rates) {
  const WorkloadSpec spec = OltpStorageSpec();
  EXPECT_EQ(spec.name, "OLTP-St");
  // 45.0 network + 16.7 disk transfers/ms.
  EXPECT_DOUBLE_EQ(spec.client_reads_per_ms, 45.0);
  EXPECT_NEAR(spec.TransfersPerMs(), 61.7, 0.01);
  EXPECT_DOUBLE_EQ(spec.cpu_accesses_per_transfer, 0.0);
}

TEST(PresetTest, SyntheticStorageMatchesTable2Rates) {
  const WorkloadSpec spec = SyntheticStorageSpec();
  EXPECT_EQ(spec.name, "Synthetic-St");
  // Zipf(1), Poisson, 100 transfers/ms.
  EXPECT_DOUBLE_EQ(spec.zipf_alpha, 1.0);
  EXPECT_DOUBLE_EQ(spec.burst_factor, 1.0);
  EXPECT_NEAR(spec.TransfersPerMs(), 100.0, 0.01);
}

TEST(PresetTest, OltpDatabaseMatchesTable2Rates) {
  const WorkloadSpec spec = OltpDatabaseSpec();
  EXPECT_EQ(spec.name, "OLTP-Db");
  EXPECT_DOUBLE_EQ(spec.client_reads_per_ms, 100.0);
  EXPECT_DOUBLE_EQ(spec.miss_ratio, 0.0);
  // ~233 processor accesses per transfer = 23,300 accesses/ms.
  EXPECT_DOUBLE_EQ(spec.cpu_accesses_per_transfer, 233.0);
}

TEST(PresetTest, SyntheticDatabaseMatchesTable2Rates) {
  const WorkloadSpec spec = SyntheticDatabaseSpec();
  EXPECT_EQ(spec.name, "Synthetic-Db");
  EXPECT_DOUBLE_EQ(spec.zipf_alpha, 1.0);
  // 10,000 processor accesses/ms at 100 transfers/ms.
  EXPECT_DOUBLE_EQ(spec.cpu_accesses_per_transfer, 100.0);
}

TEST(PresetTest, OltpPopularityMatchesFigure4) {
  // Fig. 4: ~20% of the referenced pages receive a majority (~60-70%) of
  // the DMA accesses.
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 200 * kMillisecond;
  const auto cdf = PopularityCdf(GenerateWorkload(spec));
  const double share = AccessShareOfTopPages(cdf, 0.20);
  EXPECT_GT(share, 0.55);
  EXPECT_LT(share, 0.80);
}

TEST(PresetTest, WithIntensityScalesTotalTransfers) {
  WorkloadSpec spec = SyntheticStorageSpec();
  spec = WithIntensity(spec, 200.0);
  EXPECT_NEAR(spec.TransfersPerMs(), 200.0, 0.01);
  spec = WithIntensity(spec, 25.0);
  EXPECT_NEAR(spec.TransfersPerMs(), 25.0, 0.01);
}

TEST(PresetTest, WithCpuAccessesOverride) {
  WorkloadSpec spec = SyntheticDatabaseSpec();
  spec = WithCpuAccessesPerTransfer(spec, 400.0);
  EXPECT_DOUBLE_EQ(spec.cpu_accesses_per_transfer, 400.0);
}


TEST(GenerateWorkloadTest, SequentialRunsProduceConsecutivePages) {
  WorkloadSpec spec;
  spec.duration = 20 * kMillisecond;
  spec.client_reads_per_ms = 2.0;
  spec.sequential_run_mean = 8.0;
  const Trace trace = GenerateWorkload(spec);
  EXPECT_TRUE(IsTimeSorted(trace));
  // Runs multiply the request count roughly by the mean run length.
  const TraceSummary summary = Summarize(trace);
  EXPECT_NEAR(static_cast<double>(summary.client_reads),
              2.0 * 20.0 * 8.0, 2.0 * 20.0 * 8.0 * 0.5);
  // Count +1-page successors: most records should continue a run.
  int consecutive = 0;
  std::unordered_map<std::uint64_t, bool> seen;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].page == trace[i - 1].page + 1) ++consecutive;
  }
  EXPECT_GT(consecutive, static_cast<int>(trace.size()) / 2);
}

TEST(PresetTest, DssStorageSpecIsScanHeavy) {
  const WorkloadSpec spec = DssStorageSpec();
  EXPECT_EQ(spec.name, "DSS-St");
  EXPECT_GT(spec.sequential_run_mean, 8.0);
  EXPECT_LT(spec.zipf_alpha, 1.0);
  WorkloadSpec short_spec = spec;
  short_spec.duration = 50 * kMillisecond;
  const Trace trace = GenerateWorkload(short_spec);
  EXPECT_FALSE(trace.empty());
  EXPECT_TRUE(IsTimeSorted(trace));
}

// Parameterized: every preset must generate a valid trace whose rates
// match its spec.
class PresetSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PresetSweepTest, GeneratesConsistentTrace) {
  WorkloadSpec spec;
  switch (GetParam()) {
    case 0:
      spec = OltpStorageSpec();
      break;
    case 1:
      spec = SyntheticStorageSpec();
      break;
    case 2:
      spec = OltpDatabaseSpec();
      break;
    default:
      spec = SyntheticDatabaseSpec();
      break;
  }
  spec.duration = 30 * kMillisecond;
  const Trace trace = GenerateWorkload(spec);
  EXPECT_TRUE(IsTimeSorted(trace));
  const TraceSummary summary = Summarize(trace);
  EXPECT_NEAR(summary.ReadsPerMs(),
              spec.client_reads_per_ms * (1.0 - spec.write_fraction),
              spec.client_reads_per_ms * 0.25);
  for (const TraceRecord& record : trace) {
    EXPECT_LT(record.page, spec.pages);
    EXPECT_GT(record.bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSweepTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace dmasim
