// Tests for the unit-safe quantity types (util/units.h) and the
// conversion boundaries they route through (util/time.h): rounding
// symmetry, precision at large tick values, round-trip pins, and the
// bit-stability of energy accumulation order.
#include "util/units.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

#include "stats/energy.h"

namespace dmasim {
namespace {

// --- SecondsToTicks rounding (regression for the +0.5 bug) --------------

TEST(SecondsToTicksTest, RoundsHalfAwayFromZero) {
  // 1.5 ps and -1.5 ps must round symmetrically: a bare `+ 0.5` would
  // send -1.5 ps to -1 (toward +inf) instead of -2.
  EXPECT_EQ(SecondsToTicks(1.5e-12), 2);
  EXPECT_EQ(SecondsToTicks(-1.5e-12), -2);
  EXPECT_EQ(SecondsToTicks(2.5e-12), 3);
  EXPECT_EQ(SecondsToTicks(-2.5e-12), -3);
}

TEST(SecondsToTicksTest, NearestForNonHalfway) {
  EXPECT_EQ(SecondsToTicks(1.4e-12), 1);
  EXPECT_EQ(SecondsToTicks(-1.4e-12), -1);
  EXPECT_EQ(SecondsToTicks(1.6e-12), 2);
  EXPECT_EQ(SecondsToTicks(-1.6e-12), -2);
  EXPECT_EQ(SecondsToTicks(0.4e-12), 0);
  EXPECT_EQ(SecondsToTicks(-0.4e-12), 0);
  EXPECT_EQ(SecondsToTicks(0.0), 0);
}

TEST(SecondsToTicksTest, NegationIsExactlySymmetric) {
  for (double seconds : {1e-12, 7.3e-9, 0.25e-6, 1.0e-3, 0.5, 3.7}) {
    EXPECT_EQ(SecondsToTicks(-seconds), -SecondsToTicks(seconds))
        << "asymmetric rounding at " << seconds << " s";
  }
}

// --- Round-trip pins -----------------------------------------------------

TEST(ConversionRoundTripTest, TicksSurviveTheSecondsDetour) {
  // Every exact-tick duration below 2^53 ps survives Ticks -> Seconds ->
  // Ticks bit-exactly: the double mantissa holds the integer exactly and
  // the rounding is round-half-away. One hour is 3.6e15 ps, well inside.
  const Tick kHour = 3600 * kSecond;
  for (Tick t : {Tick{0}, Tick{1}, Tick{625}, kMicrosecond, kMillisecond,
                 kSecond, kHour, 24 * kHour, (Tick{1} << 52)}) {
    EXPECT_EQ(SecondsToTicks(TicksToSeconds(t)), t) << "at " << t << " ps";
    EXPECT_EQ(TicksOf(SecondsOf(Ticks(t))).value(), t);
  }
}

TEST(ConversionRoundTripTest, TypedConversionsMatchRawHelpers) {
  // The named conversions are thin forwards: bit-identical to the
  // util/time.h helpers they wrap.
  const Tick t = 123456789;
  EXPECT_EQ(SecondsOf(Ticks(t)).value(), TicksToSeconds(t));
  EXPECT_EQ(TicksOf(Seconds(0.125)).value(), SecondsToTicks(0.125));
  EXPECT_EQ(TransferDuration(ByteCount(8192), BytesPerSecond(3.2e9)).value(),
            TransferTime(8192, 3.2e9));
}

// --- TransferTime / EnergyOver precision at large magnitudes ------------

TEST(TransferPrecisionTest, HourScaleTransfersStayExact) {
  // A transfer long enough to span hours of simulated time: 11.52 TB at
  // 3.2 GB/s is exactly 3600 s = 3.6e15 ps. The division is exact in
  // double (both operands are powers of 10 times small integers), and
  // the result is far inside the 2^53 exact-integer range.
  const std::int64_t bytes = 11'520'000'000'000;
  EXPECT_EQ(TransferTime(bytes, 3.2e9), 3600 * kSecond);
  EXPECT_EQ(TransferDuration(ByteCount(bytes), BytesPerSecond(3.2e9)),
            Ticks(3600 * kSecond));
}

TEST(TransferPrecisionTest, DayScaleTransferIsWithinOneTick)
{
  // 24 hours = 8.64e16 ps exceeds 2^53, so the double result may round
  // in its last mantissa bit -- the conversion must still land within
  // the representational granularity (16 ps at this magnitude).
  const std::int64_t bytes = 24 * 11'520'000'000'000;
  const Tick expected = 24 * 3600 * kSecond;
  const Tick actual = TransferTime(bytes, 3.2e9);
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(expected), 16.0);
}

TEST(EnergyPrecisionTest, EnergyOverMatchesTheHistoricalFormula) {
  // EnergyOver must compute exactly mw * 1e-3 * TicksToSeconds(t) -- the
  // same op order the accounting always used -- so every pinned artifact
  // keeps its bytes.
  for (double mw : {3.0, 30.0, 180.0, 300.0}) {
    for (Tick t : {Tick{625}, kMicrosecond, kSecond, 3600 * kSecond}) {
      EXPECT_EQ(EnergyOver(MilliwattPower(mw), Ticks(t)).joules(),
                mw * 1e-3 * TicksToSeconds(t));
    }
  }
}

TEST(EnergyPrecisionTest, HourScaleIntegrationIsExact) {
  // 300 mW over one hour is 1080 J: every factor is a small decimal, so
  // the product is exact in double.
  EXPECT_EQ(EnergyOver(MilliwattPower(300.0), Ticks(3600 * kSecond)).joules(),
            1080.0);
  // A powerdown chip (3 mW) over a day: 0.003 W * 86400 s = 259.2 J.
  EXPECT_EQ(
      EnergyOver(MilliwattPower(3.0), Ticks(24 * 3600 * kSecond)).joules(),
      259.2);
}

// --- EnergyBreakdown accumulation-order stability ------------------------

TEST(EnergyBreakdownOrderTest, TotalIsBitStableAcrossAddOrder) {
  // Add order across *buckets* must not matter: each bucket accumulates
  // independently and Total() sums in fixed bucket-index order.
  EnergyBreakdown forward;
  EnergyBreakdown backward;
  const double values[kEnergyBucketCount] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (int i = 0; i < kEnergyBucketCount; ++i) {
    forward.Add(static_cast<EnergyBucket>(i), JoulesEnergy(values[i]));
  }
  for (int i = kEnergyBucketCount - 1; i >= 0; --i) {
    backward.Add(static_cast<EnergyBucket>(i), JoulesEnergy(values[i]));
  }
  EXPECT_EQ(forward.Total(), backward.Total());  // Bit-exact, not NEAR.
}

TEST(EnergyBreakdownOrderTest, TotalMatchesManualBucketOrderSum) {
  // Total() is pinned to bucket-index order; a reimplementation must
  // reproduce it bit-for-bit (the fleet fingerprint hashes these bits).
  EnergyBreakdown energy;
  energy.Add(EnergyBucket::kActiveServing, JoulesEnergy(1.0 / 3.0));
  energy.Add(EnergyBucket::kTransition, JoulesEnergy(2.0 / 7.0));
  energy.Add(EnergyBucket::kLowPower, JoulesEnergy(5.0 / 11.0));
  double manual = 0.0;
  for (int i = 0; i < kEnergyBucketCount; ++i) {
    manual += energy.Of(static_cast<EnergyBucket>(i)).joules();
  }
  EXPECT_EQ(energy.Total().joules(), manual);
}

TEST(EnergyBreakdownOrderTest, AggregationOrderAcrossChipsIsPreserved) {
  // Chip aggregation (operator+=) adds per-bucket, so summing chips in
  // a fixed order is bit-stable regardless of how the per-chip values
  // were themselves accumulated.
  EnergyBreakdown a;
  a.Add(EnergyBucket::kActiveServing, JoulesEnergy(0.1));
  EnergyBreakdown b;
  b.Add(EnergyBucket::kActiveServing, JoulesEnergy(0.2));
  EnergyBreakdown c;
  c.Add(EnergyBucket::kActiveServing, JoulesEnergy(0.7));
  EnergyBreakdown once = a;
  once += b;
  once += c;
  EnergyBreakdown again = a;
  again += b;
  again += c;
  EXPECT_EQ(once.Total(), again.Total());
  EXPECT_EQ(once.Total().joules(), (0.1 + 0.2) + 0.7);
}

// --- Strong-type semantics ----------------------------------------------

TEST(UnitTypesTest, SameDimensionArithmeticStaysTyped) {
  EXPECT_EQ(Ticks(100) + Ticks(25), Ticks(125));
  EXPECT_EQ(Ticks(100) - Ticks(25), Ticks(75));
  EXPECT_EQ(3 * Ticks(100), Ticks(300));
  EXPECT_EQ(JoulesEnergy(1.5) + JoulesEnergy(0.5), JoulesEnergy(2.0));
  EXPECT_EQ(MilliwattPower(300.0) - MilliwattPower(180.0),
            MilliwattPower(120.0));
  EXPECT_EQ(ByteCount(512) * 16, ByteCount(8192));
}

TEST(UnitTypesTest, RatiosAreDimensionless) {
  const double savings = 1.0 - JoulesEnergy(60.0) / JoulesEnergy(100.0);
  EXPECT_DOUBLE_EQ(savings, 0.4);
  EXPECT_DOUBLE_EQ(MilliwattPower(30.0) / MilliwattPower(300.0), 0.1);
}

TEST(UnitTypesTest, NoImplicitCrossUnitConversion) {
  // Compile-time contract, pinned here as well as in the header so the
  // test suite fails loudly if the static_asserts are ever removed.
  static_assert(!std::is_convertible_v<double, JoulesEnergy>);
  static_assert(!std::is_convertible_v<MilliwattPower, JoulesEnergy>);
  static_assert(!std::is_convertible_v<Tick, Ticks>);
  static_assert(!std::is_convertible_v<Ticks, Seconds>);
  static_assert(sizeof(Ticks) == sizeof(Tick));
  static_assert(sizeof(JoulesEnergy) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<Ticks>);
  static_assert(std::is_trivially_copyable_v<JoulesEnergy>);
  SUCCEED();
}

}  // namespace
}  // namespace dmasim
