// Tests for trace records, summaries, popularity CDF, and text I/O.
#include "trace/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "trace/trace_io.h"

namespace dmasim {
namespace {

Trace SmallTrace() {
  return Trace{
      {0, TraceEventKind::kClientRead, 1, 8192},
      {10, TraceEventKind::kCpuAccess, 1, 64},
      {20, TraceEventKind::kClientRead, 2, 8192},
      {30, TraceEventKind::kClientWrite, 1, 8192},
      {40, TraceEventKind::kClientRead, 1, 8192},
  };
}

TEST(TraceTest, IsTimeSorted) {
  EXPECT_TRUE(IsTimeSorted(SmallTrace()));
  Trace unsorted = SmallTrace();
  std::swap(unsorted[0], unsorted[4]);
  EXPECT_FALSE(IsTimeSorted(unsorted));
  EXPECT_TRUE(IsTimeSorted(Trace{}));
}

TEST(TraceTest, SummarizeCounts) {
  const TraceSummary summary = Summarize(SmallTrace());
  EXPECT_EQ(summary.client_reads, 3u);
  EXPECT_EQ(summary.client_writes, 1u);
  EXPECT_EQ(summary.cpu_accesses, 1u);
  EXPECT_EQ(summary.distinct_pages, 2u);
  EXPECT_EQ(summary.duration, 40);
}

TEST(TraceTest, SummaryRates) {
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({static_cast<Tick>(i) * (kMillisecond / 10),
                     TraceEventKind::kClientRead, 0, 8192});
  }
  const TraceSummary summary = Summarize(trace);
  EXPECT_NEAR(summary.ReadsPerMs(), 10.0, 0.2);
}

TEST(PopularityCdfTest, IsMonotonicAndEndsAtOne) {
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({i, TraceEventKind::kClientRead,
                     static_cast<std::uint64_t>(i % 10), 8192});
  }
  const auto cdf = PopularityCdf(trace);
  ASSERT_GE(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.front().access_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().access_fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].access_fraction, cdf[i - 1].access_fraction);
    EXPECT_GE(cdf[i].page_fraction, cdf[i - 1].page_fraction);
  }
}

TEST(PopularityCdfTest, SkewedTraceShowsSkew) {
  Trace trace;
  Tick t = 0;
  // Page 0 gets 90 accesses; pages 1..9 get one each.
  for (int i = 0; i < 90; ++i) {
    trace.push_back({t++, TraceEventKind::kClientRead, 0, 8192});
  }
  for (std::uint64_t page = 1; page <= 9; ++page) {
    trace.push_back({t++, TraceEventKind::kClientRead, page, 8192});
  }
  const auto cdf = PopularityCdf(trace);
  // The top 10% of pages (page 0) carries ~91% of accesses.
  EXPECT_NEAR(AccessShareOfTopPages(cdf, 0.10), 90.0 / 99.0, 0.02);
}

TEST(PopularityCdfTest, IgnoresCpuAccesses) {
  Trace trace;
  trace.push_back({0, TraceEventKind::kClientRead, 1, 8192});
  for (int i = 0; i < 50; ++i) {
    trace.push_back({i + 1, TraceEventKind::kCpuAccess, 2, 64});
  }
  const auto cdf = PopularityCdf(trace);
  EXPECT_DOUBLE_EQ(cdf.back().access_fraction, 1.0);
  EXPECT_DOUBLE_EQ(AccessShareOfTopPages(cdf, 1.0), 1.0);
  // Only one page counted.
  const TraceSummary summary = Summarize(trace);
  EXPECT_EQ(summary.distinct_pages, 1u);
}

TEST(PopularityCdfTest, EmptyTrace) {
  const auto cdf = PopularityCdf(Trace{});
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(AccessShareOfTopPages(cdf, 0.5), 0.0);
}

TEST(TraceIoTest, RoundTrips) {
  const Trace original = SmallTrace();
  std::stringstream stream;
  EXPECT_EQ(WriteTrace(original, stream), original.size());
  Trace parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(stream, &parsed, &error)) << error;
  EXPECT_EQ(parsed, original);
}

TEST(TraceIoTest, SkipsCommentsAndBlankLines) {
  std::istringstream input(
      "# header\n"
      "\n"
      "5 R 17 8192\n"
      "# middle comment\n"
      "9 C 17 64\n");
  Trace parsed;
  ASSERT_TRUE(ReadTrace(input, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].kind, TraceEventKind::kClientRead);
  EXPECT_EQ(parsed[1].kind, TraceEventKind::kCpuAccess);
  EXPECT_EQ(parsed[0].page, 17u);
}

TEST(TraceIoTest, RejectsMalformedKind) {
  std::istringstream input("5 X 17 8192\n");
  Trace parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(input, &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(TraceIoTest, RejectsNegativeTime) {
  std::istringstream input("-5 R 17 8192\n");
  Trace parsed;
  EXPECT_FALSE(ReadTrace(input, &parsed));
}

TEST(TraceIoTest, RejectsMissingFields) {
  std::istringstream input("5 R 17\n");
  Trace parsed;
  EXPECT_FALSE(ReadTrace(input, &parsed));
}

TEST(TraceIoTest, RejectsZeroBytes) {
  std::istringstream input("5 W 17 0\n");
  Trace parsed;
  EXPECT_FALSE(ReadTrace(input, &parsed));
}

TEST(TraceIoTest, FailedParseLeavesOutputUntouched) {
  Trace parsed = SmallTrace();
  std::istringstream input("garbage\n");
  EXPECT_FALSE(ReadTrace(input, &parsed));
  EXPECT_EQ(parsed, SmallTrace());
}

TEST(TraceIoTest, RejectsTrailingGarbage) {
  // A record is exactly four fields; a fifth means a mis-columned trace.
  std::istringstream input("5 R 17 8192 junk\n");
  Trace parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(input, &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("junk"), std::string::npos);
}

TEST(TraceIoTest, RejectsTrailingNumericField) {
  // Even a well-formed-looking extra number must not be dropped silently:
  // it usually means the columns are shifted and `bytes` is wrong.
  std::istringstream input("5 R 17 8192 100\n");
  Trace parsed;
  EXPECT_FALSE(ReadTrace(input, &parsed));
}

TEST(TraceIoTest, TrailingWhitespaceIsAccepted) {
  std::istringstream input("5 R 17 8192   \n");
  Trace parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(input, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].bytes, 8192);
}

TEST(TraceIoTest, ErrorReportsCorrectLineNumber) {
  // Comments and blank lines still count toward the reported line number,
  // so the message points at the actual file line.
  std::istringstream input(
      "# header\n"
      "5 R 17 8192\n"
      "\n"
      "9 C 17 64 tail\n");
  Trace parsed;
  std::string error;
  EXPECT_FALSE(ReadTrace(input, &parsed, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos);
}

}  // namespace
}  // namespace dmasim
