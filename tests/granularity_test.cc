// Property tests for modeling invariants that must hold across
// configuration granularity:
//  * the DMA-memory request (chunk) size changes event granularity but
//    must not change energy *fractions* or the utilization factor;
//  * total energy must equal the per-bucket sum;
//  * chip count and bus bandwidth scaling behave sanely.
#include <gtest/gtest.h>

#include "server/simulation_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

WorkloadSpec TestSpec() {
  WorkloadSpec spec = SyntheticStorageSpec();
  spec.duration = 60 * kMillisecond;
  return spec;
}

class ChunkGranularityTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChunkGranularityTest, EnergyFractionsAreGranularityInvariant) {
  const WorkloadSpec spec = TestSpec();
  SimulationOptions reference;
  reference.memory.chunk_bytes = 512;
  SimulationOptions variant = reference;
  variant.memory.chunk_bytes = GetParam();

  const SimulationResults a = RunWorkload(spec, reference);
  const SimulationResults b = RunWorkload(spec, variant);

  // A transfer's active window is (chunks - 1) * slot + service, so
  // coarsening the chunk compresses it by up to (slot - service) ~= 2/3
  // of one chunk slot; for chunks <= 1/8 of a page that bounds the
  // total-energy deviation at ~8%. Fractions track within a few points.
  EXPECT_NEAR(b.energy.Total() / a.energy.Total(), 1.0, 0.08);
  for (EnergyBucket bucket :
       {EnergyBucket::kActiveServing, EnergyBucket::kActiveIdleDma,
        EnergyBucket::kLowPower}) {
    EXPECT_NEAR(b.energy.Fraction(bucket), a.energy.Fraction(bucket), 0.04)
        << EnergyBucketName(bucket);
  }
  EXPECT_NEAR(b.utilization_factor, a.utilization_factor, 0.03);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkGranularityTest,
                         ::testing::Values<std::int64_t>(128, 256, 1024));

TEST(EnergyConsistencyTest, TotalEqualsSumOfBuckets) {
  const SimulationResults results =
      RunWorkload(TestSpec(), SimulationOptions{});
  double sum = 0.0;
  for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
    sum += results.energy.Of(static_cast<EnergyBucket>(bucket)).joules();
  }
  EXPECT_NEAR(results.energy.Total().joules(), sum, 1e-12);
}

TEST(EnergyConsistencyTest, IdleSystemEnergyIsPurePowerdown) {
  // An empty trace: all 32 chips rest in powerdown for the whole run.
  Trace empty;
  SimulationOptions options;
  const SimulationResults results =
      RunTrace(empty, 0.0, 10 * kMillisecond, options, "idle");
  const double expected =
      32.0 * EnergyOver(MilliwattPower(3.0),
                        Ticks(10 * kMillisecond + options.drain))
                 .joules();
  EXPECT_NEAR(results.energy.Total().joules(), expected, expected * 1e-9);
  EXPECT_DOUBLE_EQ(results.energy.Fraction(EnergyBucket::kLowPower), 1.0);
}

TEST(ScalingTest, FasterBusRaisesBaselineUtilization) {
  // Fig. 10 mechanism: as the I/O bus approaches memory speed the lone
  // transfer utilization approaches 1.
  WorkloadSpec spec = TestSpec();
  spec = WithIntensity(spec, 30.0);
  SimulationOptions slow;
  slow.memory.bus_bandwidth = 0.5e9;
  SimulationOptions fast;
  fast.memory.bus_bandwidth = 3.2e9;
  const SimulationResults slow_run = RunWorkload(spec, slow);
  const SimulationResults fast_run = RunWorkload(spec, fast);
  EXPECT_LT(slow_run.utilization_factor, 0.25);
  EXPECT_GT(fast_run.utilization_factor, 0.9);
}

TEST(ScalingTest, MoreChipsMoreLowPowerEnergy) {
  WorkloadSpec spec = TestSpec();
  SimulationOptions small;
  small.memory.chips = 8;
  small.memory.pages_per_chip = 4096;
  // Shrink the page universe to fit the smaller memory.
  spec.pages = 8ULL * 4096ULL / 2;  // Power of two: 16384.
  const SimulationResults small_run = RunWorkload(spec, small);

  SimulationOptions big;
  big.memory.chips = 32;
  const WorkloadSpec big_spec = TestSpec();
  const SimulationResults big_run = RunWorkload(big_spec, big);

  EXPECT_GT(big_run.energy.Of(EnergyBucket::kLowPower),
            small_run.energy.Of(EnergyBucket::kLowPower));
}

TEST(DrainTest, DrainLetsTransfersFinish) {
  WorkloadSpec spec = TestSpec();
  SimulationOptions options;
  options.drain = 20 * kMillisecond;
  const SimulationResults results = RunWorkload(spec, options);
  EXPECT_EQ(results.controller.transfers_completed,
            results.controller.transfers_started);
}

}  // namespace
}  // namespace dmasim
