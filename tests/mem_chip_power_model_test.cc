// Tests for the pluggable chip power-model family: byte-identity of the
// RDRAM compat member, the corrected chained-edge billing (with the
// old-vs-new delta pinned as a regression anchor), DDR4 calibration
// against published DRAMPower/datasheet numbers, sectored fine-grained
// activation, and structural conservation of every member's transition
// matrix.
#include "mem/chip_power_model.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "mem/power_model.h"

namespace dmasim {
namespace {

// --- Structural conservation, checked for every family member. ---
//
// A chip model is usable by the simulator only if:
//  * the chain starts at active and descends strictly in power,
//  * every non-active state can wake directly to active,
//  * every chain edge one step down exists (policies deepen stepwise),
//  * every legal edge carries non-negative power and duration, and
//    transition power never exceeds the origin's *wake* envelope
//    ceiling (the matrix maximum is still bounded by the model's own
//    TransitionPowerBounds).
void ExpectWellFormed(const ChipPowerModel& model) {
  SCOPED_TRACE(std::string(model.Name()));
  ASSERT_GE(model.StateCount(), 2);
  EXPECT_EQ(model.State(0), PowerState::kActive);
  for (int i = 1; i < model.StateCount(); ++i) {
    EXPECT_LT(model.StatePowerMw(model.State(i)),
              model.StatePowerMw(model.State(i - 1)))
        << "chain must descend strictly at index " << i;
    // Wake edge back to active.
    EXPECT_TRUE(model.LegalTransition(model.State(i), PowerState::kActive));
    // Stepwise deepening edge from the previous chain state.
    EXPECT_TRUE(model.LegalTransition(model.State(i - 1), model.State(i)));
  }
  // The chain query agrees with the chain order.
  for (int i = 0; i + 1 < model.StateCount(); ++i) {
    EXPECT_EQ(model.NextLowerState(model.State(i)), model.State(i + 1));
  }
  EXPECT_EQ(model.NextLowerState(model.DeepestState()), std::nullopt);

  MilliwattPower tr_min;
  MilliwattPower tr_max;
  model.TransitionPowerBounds(&tr_min, &tr_max);
  EXPECT_GE(tr_min, MilliwattPower(0.0));
  EXPECT_LE(tr_min, tr_max);
  for (int f = 0; f < kPowerStateCount; ++f) {
    for (int t = 0; t < kPowerStateCount; ++t) {
      const PowerState from = static_cast<PowerState>(f);
      const PowerState to = static_cast<PowerState>(t);
      if (!model.LegalTransition(from, to)) continue;
      const Transition& edge = model.TransitionBetween(from, to);
      EXPECT_GE(edge.power_mw, tr_min);
      EXPECT_LE(edge.power_mw, tr_max);
      EXPECT_GE(edge.duration, Ticks(0));
    }
  }

  MilliwattPower serve_min;
  MilliwattPower serve_max;
  model.ServingPowerBounds(&serve_min, &serve_max);
  EXPECT_GT(serve_min, MilliwattPower(0.0));
  EXPECT_LE(serve_min, serve_max);
  for (std::int64_t bytes : {1, 8, 64, 512, 8192}) {
    for (RequestKind kind :
         {RequestKind::kDma, RequestKind::kCpu, RequestKind::kMigration}) {
      const MilliwattPower mw = model.ServingPowerMw(kind, ByteCount(bytes));
      EXPECT_GE(mw, serve_min) << "bytes " << bytes;
      EXPECT_LE(mw, serve_max) << "bytes " << bytes;
    }
  }
}

TEST(ChipPowerModelTest, EveryFamilyMemberIsWellFormed) {
  const PowerModel params;
  for (ChipModelKind kind : kAllChipModelKinds) {
    ExpectWellFormed(*MakeChipPowerModel(kind, params));
  }
}

TEST(ChipPowerModelTest, KindNamesRoundTrip) {
  for (ChipModelKind kind : kAllChipModelKinds) {
    EXPECT_EQ(ParseChipModelKind(ChipModelKindName(kind)), kind);
  }
  EXPECT_EQ(ParseChipModelKind("sdram"), std::nullopt);
  EXPECT_EQ(ParseChipModelKind(""), std::nullopt);
}

// --- RDRAM compat member: byte-identical Table 1 semantics. ---

TEST(ChipPowerModelTest, RdramMatchesTable1Exactly) {
  const PowerModel params;
  const RdramChipModel model{params};
  EXPECT_EQ(model.kind(), ChipModelKind::kRdram);
  EXPECT_EQ(model.StateCount(), 4);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kActive).milliwatts(), 300.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kStandby).milliwatts(),
                   180.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kNap).milliwatts(), 30.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kPowerdown).milliwatts(),
                   3.0);
  EXPECT_FALSE(model.IsSupported(PowerState::kActivePowerdown));
  EXPECT_FALSE(model.IsSupported(PowerState::kPrechargePowerdown));
  EXPECT_FALSE(model.IsSupported(PowerState::kSelfRefresh));

  // Identical timing: the exact same double arithmetic as PowerModel.
  EXPECT_EQ(model.cycle(), params.cycle);
  EXPECT_EQ(model.ServiceTime(ByteCount(8)), params.ServiceTime(ByteCount(8)));
  EXPECT_EQ(model.ServiceTime(ByteCount(512)),
            params.ServiceTime(ByteCount(512)));
  EXPECT_EQ(model.ServiceTime(ByteCount(8192)),
            params.ServiceTime(ByteCount(8192)));
  EXPECT_DOUBLE_EQ(model.Bandwidth().value(), params.Bandwidth().value());
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(8)).milliwatts(),
      params.active_mw);
}

TEST(ChipPowerModelTest, RdramCompatMatrixBillsEveryDownEdgeFromActive) {
  // The historical accounting reused the from-active descriptor for
  // chained step-downs; the compat member reproduces that bit-for-bit so
  // pinned artifact checksums cannot move.
  const PowerModel params;
  const RdramChipModel model{params};
  constexpr PowerState kChain[] = {PowerState::kActive, PowerState::kStandby,
                                   PowerState::kNap, PowerState::kPowerdown};
  for (int f = 0; f < 4; ++f) {
    for (int t = f + 1; t < 4; ++t) {
      const Transition& edge = model.TransitionBetween(kChain[f], kChain[t]);
      const Transition& table1 = params.DownTransition(kChain[t]);
      EXPECT_DOUBLE_EQ(edge.power_mw.milliwatts(),
                       table1.power_mw.milliwatts());
      EXPECT_EQ(edge.duration, table1.duration);
    }
  }
  for (int f = 1; f < 4; ++f) {
    const Transition& edge =
        model.TransitionBetween(kChain[f], PowerState::kActive);
    const Transition& table1 = params.UpTransition(kChain[f]);
    EXPECT_DOUBLE_EQ(edge.power_mw.milliwatts(), table1.power_mw.milliwatts());
    EXPECT_EQ(edge.duration, table1.duration);
  }
  // No lateral or upward shortcuts exist.
  EXPECT_FALSE(model.LegalTransition(PowerState::kNap, PowerState::kStandby));
  EXPECT_FALSE(
      model.LegalTransition(PowerState::kPowerdown, PowerState::kNap));
}

// --- Corrected member: origin-aware chained billing (the bugfix). ---

TEST(ChipPowerModelTest, CorrectedScalesChainedEdgesByOriginEnvelope) {
  const PowerModel params;
  const RdramCorrectedChipModel model{params};
  // From-active edges are untouched -- Table 1 measures those directly.
  EXPECT_DOUBLE_EQ(model.TransitionBetween(PowerState::kActive, PowerState::kNap)
                       .power_mw.milliwatts(),
                   160.0);
  // Chained edges scale by StatePowerMw(origin) / active_mw:
  //   standby -> nap:        160 mW * 180/300 = 96 mW
  //   standby -> powerdown:   15 mW * 180/300 =  9 mW
  //   nap -> powerdown:       15 mW *  30/300 =  1.5 mW
  EXPECT_DOUBLE_EQ(model.TransitionBetween(PowerState::kStandby,
                                           PowerState::kNap)
                       .power_mw.milliwatts(),
                   96.0);
  EXPECT_DOUBLE_EQ(model
                       .TransitionBetween(PowerState::kStandby,
                                          PowerState::kPowerdown)
                       .power_mw.milliwatts(),
                   9.0);
  EXPECT_DOUBLE_EQ(
      model.TransitionBetween(PowerState::kNap, PowerState::kPowerdown)
          .power_mw.milliwatts(),
      1.5);
  // Durations are unchanged: Table 1 lists no chained latencies.
  EXPECT_EQ(
      model.TransitionBetween(PowerState::kStandby, PowerState::kNap).duration,
      params.to_nap.duration);
}

TEST(ChipPowerModelTest, CorrectedVsCompatDeltaIsPinned) {
  // Regression anchor for the step-down billing bugfix: the energy a
  // single standby -> nap transition over-bills under the compat matrix
  // relative to the corrected one is exactly (160 - 96) mW for the
  // 8-cycle transition window. If either matrix drifts, this moves.
  const PowerModel params;
  const RdramChipModel compat{params};
  const RdramCorrectedChipModel corrected{params};
  const Transition& old_edge =
      compat.TransitionBetween(PowerState::kStandby, PowerState::kNap);
  const Transition& new_edge =
      corrected.TransitionBetween(PowerState::kStandby, PowerState::kNap);
  ASSERT_EQ(old_edge.duration, new_edge.duration);
  const double delta_joules =
      EnergyOver(old_edge.power_mw, old_edge.duration).joules() -
      EnergyOver(new_edge.power_mw, new_edge.duration).joules();
  // 64 mW over 8 * 625 ps = 3.2e-10 J.
  EXPECT_NEAR(delta_joules, 3.2e-10, 1e-16);
}

// --- DDR4 member: calibration pins. ---

TEST(ChipPowerModelTest, Ddr4CalibrationPins) {
  const Ddr4ChipModel model;
  EXPECT_EQ(model.kind(), ChipModelKind::kDdr4);
  EXPECT_EQ(model.StateCount(), 5);
  // IDD * 1.2 V for a DDR4-2400 x16 die.
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kActive).milliwatts(), 56.4);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kStandby).milliwatts(), 44.4);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kActivePowerdown)
                       .milliwatts(), 38.4);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kPrechargePowerdown)
                       .milliwatts(), 30.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kSelfRefresh).milliwatts(),
                   24.0);
  EXPECT_FALSE(model.IsSupported(PowerState::kNap));
  EXPECT_FALSE(model.IsSupported(PowerState::kPowerdown));

  // 833 ps clock moving 4 bytes: 4.8 GB/s peak.
  EXPECT_EQ(model.cycle(), 833);
  EXPECT_NEAR(model.Bandwidth().value(), 4.8e9, 2e7);

  // Exit latencies: tXP = 6 ns, tXP + tRCD = 20 ns, tXS = 270 ns.
  EXPECT_EQ(model.TransitionBetween(PowerState::kActivePowerdown,
                                    PowerState::kActive)
                .duration,
            Ticks(6 * kNanosecond));
  EXPECT_EQ(model.TransitionBetween(PowerState::kPrechargePowerdown,
                                    PowerState::kActive)
                .duration,
            Ticks(20 * kNanosecond));
  EXPECT_EQ(
      model.TransitionBetween(PowerState::kSelfRefresh, PowerState::kActive)
          .duration,
      Ticks(270 * kNanosecond));
  // Entry powers are endpoint midpoints (rails ramp between envelopes).
  EXPECT_DOUBLE_EQ(model
                       .TransitionBetween(PowerState::kStandby,
                                          PowerState::kSelfRefresh)
                       .power_mw.milliwatts(),
                   0.5 * (44.4 + 24.0));
}

TEST(ChipPowerModelTest, Ddr4FaultInjectionHookSkipsSelfRefreshExit) {
  Ddr4Options options;
  options.self_refresh_exit = 0;
  const Ddr4ChipModel faulty{options};
  EXPECT_EQ(
      faulty.TransitionBetween(PowerState::kSelfRefresh, PowerState::kActive)
          .duration,
      Ticks(0));
}

TEST(ChipPowerModelTest, Ddr4ServingEnvelopeExceedsActiveStandby) {
  // Serving bills the read-burst envelope, not the standby current --
  // this is the member that exercises the serving != active audit path.
  const Ddr4ChipModel model;
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(512)).milliwatts(),
      Ddr4ChipModel::kServingMw);
  EXPECT_GT(Ddr4ChipModel::kServingMw,
            model.StatePowerMw(PowerState::kActive).milliwatts());
  MilliwattPower lo;
  MilliwattPower hi;
  model.ServingPowerBounds(&lo, &hi);
  EXPECT_DOUBLE_EQ(lo.milliwatts(), Ddr4ChipModel::kServingMw);
  EXPECT_DOUBLE_EQ(hi.milliwatts(), Ddr4ChipModel::kServingMw);
}

// --- Sectored member: fine-grained activation billing. ---

TEST(ChipPowerModelTest, SectoredBillsOnlyTouchedSectors) {
  const PowerModel params;
  const SectoredChipModel model{params};
  const double active = params.active_mw;
  // 40% static periphery + 60% scaled by activated sectors out of 8.
  // One 64-byte sector: 0.4*300 + 0.6*300/8 = 142.5 mW.
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kCpu, ByteCount(64)).milliwatts(),
      142.5);
  // An 8-byte burst still activates one full sector.
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(8)).milliwatts(),
      142.5);
  // Half the row: 0.4*300 + 0.6*300*4/8 = 210 mW.
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(256)).milliwatts(),
      210.0);
  // A full 512-byte row (or more) costs exactly the active power.
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(512)).milliwatts(),
      active);
  EXPECT_DOUBLE_EQ(
      model.ServingPowerMw(RequestKind::kDma, ByteCount(8192)).milliwatts(),
      active);

  MilliwattPower lo;
  MilliwattPower hi;
  model.ServingPowerBounds(&lo, &hi);
  EXPECT_DOUBLE_EQ(lo.milliwatts(), 142.5);
  EXPECT_DOUBLE_EQ(hi.milliwatts(), active);
  // Timing and the idle matrix ride on the corrected RDRAM member.
  EXPECT_EQ(model.ServiceTime(ByteCount(8)), params.ServiceTime(ByteCount(8)));
  EXPECT_DOUBLE_EQ(model.TransitionBetween(PowerState::kStandby,
                                           PowerState::kNap)
                       .power_mw.milliwatts(),
                   96.0);
}

// --- Timing seam used by MemorySystemConfig::MemoryBandwidth(). ---

TEST(ChipPowerModelTest, ChipModelTimingMatchesModels) {
  const PowerModel params;
  for (ChipModelKind kind : kAllChipModelKinds) {
    const ChipTiming timing = ChipModelTiming(kind, params);
    const std::unique_ptr<ChipPowerModel> model =
        MakeChipPowerModel(kind, params);
    EXPECT_EQ(timing.cycle, model->cycle()) << model->Name();
    EXPECT_DOUBLE_EQ(timing.bytes_per_cycle, model->bytes_per_cycle())
        << model->Name();
  }
}

// --- ModelChainPolicy: chain walking for arbitrary members. ---

TEST(ChipPowerModelTest, ModelChainPolicyWalksDdr4Cascade) {
  DynamicThresholdConfig thresholds;
  const ModelChainPolicy policy(ChipModelKind::kDdr4, PowerModel{},
                                thresholds);
  EXPECT_EQ(policy.Name(), "dynamic-ddr4");

  const std::optional<PolicyStep> first = policy.NextStep(PowerState::kActive);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->target, PowerState::kStandby);
  EXPECT_EQ(first->after_idle, Ticks(thresholds.active_to_standby));

  const std::optional<PolicyStep> second =
      policy.NextStep(PowerState::kStandby);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->target, PowerState::kActivePowerdown);
  EXPECT_EQ(second->after_idle, Ticks(thresholds.standby_to_nap));

  const std::optional<PolicyStep> third =
      policy.NextStep(PowerState::kActivePowerdown);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->target, PowerState::kPrechargePowerdown);
  EXPECT_EQ(third->after_idle, Ticks(thresholds.nap_to_powerdown));

  const std::optional<PolicyStep> fourth =
      policy.NextStep(PowerState::kPrechargePowerdown);
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(fourth->target, PowerState::kSelfRefresh);

  EXPECT_EQ(policy.NextStep(PowerState::kSelfRefresh), std::nullopt);
}

TEST(ChipPowerModelTest, ModelChainPolicyMatchesDynamicThresholdOnRdram) {
  DynamicThresholdConfig thresholds;
  const ModelChainPolicy chain(ChipModelKind::kRdram, PowerModel{},
                               thresholds);
  const DynamicThresholdPolicy classic(thresholds);
  for (PowerState state :
       {PowerState::kActive, PowerState::kStandby, PowerState::kNap,
        PowerState::kPowerdown}) {
    const std::optional<PolicyStep> a = chain.NextStep(state);
    const std::optional<PolicyStep> b = classic.NextStep(state);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->target, b->target);
      EXPECT_EQ(a->after_idle, b->after_idle);
    }
  }
}

}  // namespace
}  // namespace dmasim
