// Determinism regression tests.
//
// The repository's reproducibility contract has two layers:
//   1. one simulation is a pure function of (SimulationOptions, seed) —
//      re-running it yields bit-identical SimulationResults;
//   2. the sweep engine adds no nondeterminism — an N-thread sweep
//      matches a 1-thread sweep run for run, down to the serialized
//      JSON bytes (host timing fields excluded).
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "exp/result_sink.h"
#include "exp/sweep_runner.h"
#include "server/simulation_driver.h"
#include "trace/workloads.h"

namespace dmasim {
namespace {

SweepOptions ThreadedOptions(int threads) {
  SweepOptions options;
  options.threads = threads;
  return options;
}

WorkloadSpec SmallWorkload(WorkloadSpec spec) {
  spec.duration = 8 * kMillisecond;
  return spec;
}

void ExpectIdenticalResults(const SimulationResults& a,
                            const SimulationResults& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.duration, b.duration);
  for (int i = 0; i < kEnergyBucketCount; ++i) {
    const auto bucket = static_cast<EnergyBucket>(i);
    EXPECT_EQ(a.energy.Of(bucket), b.energy.Of(bucket))
        << "energy bucket " << EnergyBucketName(bucket);
  }
  EXPECT_EQ(a.utilization_factor, b.utilization_factor);
  EXPECT_EQ(a.client_response.Count(), b.client_response.Count());
  EXPECT_EQ(a.client_response.Sum(), b.client_response.Sum());
  EXPECT_EQ(a.chunk_service.Sum(), b.chunk_service.Sum());
  EXPECT_EQ(a.transfer_latency.Sum(), b.transfer_latency.Sum());
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.gated_requests, b.gated_requests);
  EXPECT_EQ(a.controller.transfers_completed,
            b.controller.transfers_completed);
  EXPECT_EQ(a.server.reads, b.server.reads);
  EXPECT_EQ(a.hottest_chip_share, b.hottest_chip_share);
}

TEST(DeterminismTest, RepeatedRunIsBitIdentical) {
  const WorkloadSpec spec = SmallWorkload(OltpStorageSpec());
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 2.0;
  options.memory.dma.pl.enabled = true;

  const SimulationResults first = RunWorkload(spec, options);
  const SimulationResults second = RunWorkload(spec, options);
  ExpectIdenticalResults(first, second);
  EXPECT_GT(first.energy.Total().joules(), 0.0);
  EXPECT_GT(first.executed_events, 0u);
}

TEST(DeterminismTest, DifferentSeedsDiffer) {
  WorkloadSpec spec = SmallWorkload(SyntheticStorageSpec());
  SimulationOptions options;
  const SimulationResults first = RunWorkload(spec, options);
  spec.seed = 999;
  const SimulationResults second = RunWorkload(spec, options);
  EXPECT_NE(first.executed_events, second.executed_events);
}

ExperimentSpec DeterminismSweepSpec() {
  ExperimentSpec spec;
  spec.name = "determinism";
  spec.workloads = {SmallWorkload(OltpStorageSpec()),
                    SmallWorkload(SyntheticStorageSpec())};
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  spec.cp_limits = {0.05, 0.10};
  spec.seeds = {1, 2};
  // 4 cells x (1 + 4) = 20 runs.
  return spec;
}

TEST(DeterminismTest, ParallelSweepMatchesSerialRunForRun) {
  const ExperimentSpec spec = DeterminismSweepSpec();

  SweepRunner serial(ThreadedOptions(1));
  const SweepResults serial_sweep = serial.Run(spec);
  SweepRunner parallel(ThreadedOptions(4));
  const SweepResults parallel_sweep = parallel.Run(spec);

  ASSERT_EQ(serial_sweep.records.size(), parallel_sweep.records.size());
  ASSERT_EQ(serial_sweep.summary.ok,
            static_cast<int>(serial_sweep.records.size()));
  for (std::size_t i = 0; i < serial_sweep.records.size(); ++i) {
    const RunRecord& a = serial_sweep.records[i];
    const RunRecord& b = parallel_sweep.records[i];
    ASSERT_EQ(a.plan.run_id, b.plan.run_id);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.mu, b.mu);
    EXPECT_EQ(a.energy_savings, b.energy_savings);
    EXPECT_EQ(a.response_degradation, b.response_degradation);
    ExpectIdenticalResults(a.results, b.results);
  }
}

TEST(DeterminismTest, PinnedConfigChecksumIsStableAcrossKernelChanges) {
  // Byte-level anchor across event-kernel changes: this sweep's JSON was
  // produced by the original binary-heap + std::function kernel, and its
  // FNV-1a checksum was pinned before the calendar-queue/coalescing
  // overhaul. Any kernel change that alters event ordering, energy
  // integration, or serialization shows up here as a checksum mismatch.
  ExperimentSpec spec;
  spec.name = "pinned";
  spec.workloads = {SmallWorkload(OltpStorageSpec()),
                    SmallWorkload(SyntheticStorageSpec())};
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  spec.cp_limits = {0.05, 0.10};
  spec.seeds = {1, 2};

  SweepRunner runner(ThreadedOptions(2));
  const SweepResults sweep = runner.Run(spec);
  const std::string json =
      SweepToJson(sweep.summary, sweep.records, /*include_timing=*/false)
          .Dump(true);

  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64 offset basis.
  for (unsigned char c : json) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }

  // Re-running the same sweep must reproduce the bytes in-process on
  // every platform.
  const SweepResults again = SweepRunner(ThreadedOptions(2)).Run(spec);
  EXPECT_EQ(json, SweepToJson(again.summary, again.records,
                              /*include_timing=*/false)
                      .Dump(true));

#if defined(__GNUC__) && !defined(__clang__)
  // The absolute pin is compiler-gated: double rounding in libm-free
  // paths is identical for a given toolchain, but other compilers may
  // legally produce different last-bit doubles (and therefore different
  // serialized bytes).
  EXPECT_EQ(json.size(), 43447u);
  EXPECT_EQ(hash, 6942302054424692086ULL);
#endif
}

TEST(DeterminismTest, ChunkRunCoalescingIsArtifactInvisible) {
  // The coalescing fast path must be a pure wall-clock optimization:
  // running the same workload with coalescing forced off yields the
  // identical artifact, down to the logical event count. Only the
  // stepped (real queue pop) count may differ.
  const WorkloadSpec spec = SmallWorkload(SyntheticStorageSpec());
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 2.0;
  options.memory.dma.pl.enabled = true;

  SimulationOptions off = options;
  off.memory.coalesce_chunk_runs = false;

  const SimulationResults with_runs = RunWorkload(spec, options);
  const SimulationResults without_runs = RunWorkload(spec, off);
  ExpectIdenticalResults(with_runs, without_runs);
  EXPECT_EQ(with_runs.executed_events, without_runs.executed_events);
  // Coalescing can only reduce real pops, never add them.
  EXPECT_LE(with_runs.stepped_events, without_runs.stepped_events);
}

TEST(DeterminismTest, ParallelSweepJsonIsByteIdenticalToSerial) {
  const ExperimentSpec spec = DeterminismSweepSpec();

  SweepRunner serial(ThreadedOptions(1));
  const SweepResults serial_sweep = serial.Run(spec);
  SweepRunner parallel(ThreadedOptions(3));
  const SweepResults parallel_sweep = parallel.Run(spec);

  const std::string serial_json =
      SweepToJson(serial_sweep.summary, serial_sweep.records,
                  /*include_timing=*/false)
          .Dump(true);
  const std::string parallel_json =
      SweepToJson(parallel_sweep.summary, parallel_sweep.records,
                  /*include_timing=*/false)
          .Dump(true);
  EXPECT_EQ(serial_json, parallel_json);
  EXPECT_NE(serial_json.find("\"runs\""), std::string::npos);
}

}  // namespace
}  // namespace dmasim
