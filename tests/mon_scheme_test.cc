// Tests for the scheme parser: the full accepted grammar, and the
// rejection contract — every malformed input is refused with a
// diagnostic naming the 1-based line it came from.
#include "mon/scheme_parser.h"

#include <string>

#include <gtest/gtest.h>

namespace dmasim {
namespace {

TEST(SchemeParserTest, ParsesAllActionsAndWildcards) {
  const SchemeParseResult result = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "64 * 0 1 4 pin-cold\n"
      "* * 0 0 8 demote-chip\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.rules.size(), 3u);

  EXPECT_EQ(result.rules[0].size_lo, 1u);
  EXPECT_EQ(result.rules[0].size_hi, 1u);
  EXPECT_EQ(result.rules[0].acc_lo, 8u);
  EXPECT_EQ(result.rules[0].acc_hi, UINT64_MAX);
  EXPECT_EQ(result.rules[0].age_lo, 0u);
  EXPECT_EQ(result.rules[0].action, SchemeAction::kMigrateHot);

  EXPECT_EQ(result.rules[1].size_lo, 64u);
  EXPECT_EQ(result.rules[1].size_hi, UINT64_MAX);
  EXPECT_EQ(result.rules[1].acc_hi, 1u);
  EXPECT_EQ(result.rules[1].age_lo, 4u);
  EXPECT_EQ(result.rules[1].action, SchemeAction::kPinCold);

  EXPECT_EQ(result.rules[2].size_lo, 0u);  // `*` lower bound.
  EXPECT_EQ(result.rules[2].action, SchemeAction::kDemoteChip);
}

TEST(SchemeParserTest, ParsesDemoteDepthSuffix) {
  const SchemeParseResult result = ParseSchemeString(
      "* * 0 0 8 demote-chip\n"
      "* * 0 0 32 demote-chip:2\n"
      "* * 0 0 64 demote-chip:3\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.rules.size(), 3u);
  EXPECT_EQ(result.rules[0].demote_depth, 1);  // Suffix-less default.
  EXPECT_EQ(result.rules[1].demote_depth, 2);
  EXPECT_EQ(result.rules[2].demote_depth, 3);
  for (const SchemeRule& rule : result.rules) {
    EXPECT_EQ(rule.action, SchemeAction::kDemoteChip);
  }
}

TEST(SchemeParserTest, SkipsBlanksAndComments) {
  const SchemeParseResult result = ParseSchemeString(
      "# full-line comment\n"
      "\n"
      "   \n"
      "1 1 8 * 0 migrate-hot # trailing comment is fine\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rules.size(), 1u);
}

TEST(SchemeParserTest, EmptyInputYieldsNoRules) {
  const SchemeParseResult result = ParseSchemeString("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.rules.empty());
}

TEST(SchemeParserTest, RuleMatchingIsInclusiveOnBothEnds) {
  const SchemeParseResult result =
      ParseSchemeString("2 4 3 9 5 migrate-hot\n");
  ASSERT_TRUE(result.ok());
  const SchemeRule& rule = result.rules[0];
  EXPECT_TRUE(rule.MatchesRegion(2, 3, 5));
  EXPECT_TRUE(rule.MatchesRegion(4, 9, 7));
  EXPECT_FALSE(rule.MatchesRegion(1, 5, 5));   // Size below.
  EXPECT_FALSE(rule.MatchesRegion(5, 5, 5));   // Size above.
  EXPECT_FALSE(rule.MatchesRegion(3, 2, 5));   // Access below.
  EXPECT_FALSE(rule.MatchesRegion(3, 10, 5));  // Access above.
  EXPECT_FALSE(rule.MatchesRegion(3, 5, 4));   // Too young.
}

// --- Rejection contract -------------------------------------------------
// Each malformed input names the exact line. The line number matters:
// scheme files are hand-edited configs and "something is wrong somewhere"
// diagnostics do not survive contact with a 30-line file.

struct BadScheme {
  const char* text;
  const char* expected_fragment;
};

class SchemeParserRejectionTest
    : public ::testing::TestWithParam<BadScheme> {};

TEST_P(SchemeParserRejectionTest, RejectsWithLineNumber) {
  const SchemeParseResult result = ParseSchemeString(GetParam().text);
  ASSERT_FALSE(result.ok()) << "accepted: " << GetParam().text;
  EXPECT_NE(result.error.find(GetParam().expected_fragment),
            std::string::npos)
      << "error was: " << result.error;
  EXPECT_TRUE(result.rules.empty() || !result.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SchemeParserRejectionTest,
    ::testing::Values(
        // Too few fields.
        BadScheme{"1 1 8 *\n", "at line 1: expected 6 fields"},
        // Trailing garbage after a complete rule.
        BadScheme{"1 1 8 * 0 migrate-hot extra\n",
                  "at line 1: trailing garbage 'extra'"},
        // Out-of-order ranges.
        BadScheme{"4 2 0 * 0 pin-cold\n",
                  "at line 1: size range out of order"},
        BadScheme{"1 1 9 3 0 migrate-hot\n",
                  "at line 1: access range out of order"},
        // Unknown action.
        BadScheme{"1 1 8 * 0 promote\n",
                  "at line 1: unknown action 'promote'"},
        // Non-numeric bounds.
        BadScheme{"one 1 8 * 0 migrate-hot\n", "at line 1: bad size range"},
        BadScheme{"1 1 8 * never migrate-hot\n",
                  "at line 1: bad age bound"},
        BadScheme{"1 1 -3 * 0 migrate-hot\n",
                  "at line 1: bad access range"},
        // Decimal overflow is rejected, not wrapped.
        BadScheme{"1 99999999999999999999 0 * 0 pin-cold\n",
                  "at line 1: bad size range"},
        // Demote depth must be a positive number...
        BadScheme{"* * 0 0 8 demote-chip:0\n",
                  "at line 1: bad demote depth '0'"},
        BadScheme{"* * 0 0 8 demote-chip:two\n",
                  "at line 1: bad demote depth 'two'"},
        BadScheme{"* * 0 0 8 demote-chip:\n",
                  "at line 1: bad demote depth ''"},
        // ...and only demote-chip takes one.
        BadScheme{"1 1 8 * 0 migrate-hot:2\n",
                  "at line 1: depth suffix is only valid for demote-chip"},
        BadScheme{"64 * 0 1 4 pin-cold:1\n",
                  "at line 1: depth suffix is only valid for demote-chip"},
        // The diagnostic points at the offending line, not line 1:
        // comments and valid rules above it still count.
        BadScheme{"# header\n"
                  "1 1 8 * 0 migrate-hot\n"
                  "\n"
                  "64 * 0 1 4 pin-cool\n",
                  "at line 4: unknown action 'pin-cool'"},
        BadScheme{"1 1 8 * 0 migrate-hot\n"
                  "1 1 8 *\n",
                  "at line 2: expected 6 fields"}));

TEST(SchemeParserTest, MissingFileNamesThePath) {
  const SchemeParseResult result =
      ParseSchemeFile("/nonexistent/no.scheme");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("/nonexistent/no.scheme"), std::string::npos);
}

TEST(SchemeParserTest, ActionNamesRoundTrip) {
  EXPECT_EQ(SchemeActionName(SchemeAction::kMigrateHot), "migrate-hot");
  EXPECT_EQ(SchemeActionName(SchemeAction::kPinCold), "pin-cold");
  EXPECT_EQ(SchemeActionName(SchemeAction::kDemoteChip), "demote-chip");
}

}  // namespace
}  // namespace dmasim
