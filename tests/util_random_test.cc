// Tests for the deterministic random number generator.
#include "util/random.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dmasim {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  EXPECT_EQ(SplitMix64(a), SplitMix64(b));
  EXPECT_EQ(a, b);
}

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t state = 7;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, CopyIsIndependent) {
  Rng a(5);
  a.NextU64();
  Rng b = a;
  EXPECT_EQ(a.NextU64(), b.NextU64());
  a.NextU64();
  // b is one draw behind now.
  Rng c = a;
  EXPECT_EQ(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(13);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (std::uint64_t value = 0; value < bound; ++value) {
    EXPECT_NEAR(counts[value], n / static_cast<int>(bound), n / 100);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  const double mean = 250.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextExponential(1.0), 0.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_squares = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_squares += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_squares / n, 1.0, 0.02);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(29);
  const double mean = 3.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(31);
  const double mean = 233.0;
  double sum = 0.0;
  double sum_squares = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.NextPoisson(mean));
    sum += x;
    sum_squares += x * x;
  }
  const double sample_mean = sum / n;
  const double variance = sum_squares / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, 1.0);
  EXPECT_NEAR(variance, mean, mean * 0.1);  // Poisson: variance == mean.
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 1.0), 100u);
  }
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(43);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(RngTest, ZipfAlphaZeroIsUniform) {
  Rng rng(47);
  const std::uint64_t n = 8;
  std::vector<int> counts(n, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextZipf(n, 0.0)];
  for (std::uint64_t value = 0; value < n; ++value) {
    EXPECT_NEAR(counts[value], draws / static_cast<int>(n), draws / 50);
  }
}

TEST(RngTest, ZipfRankZeroIsMostPopular) {
  Rng rng(53);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextZipf(64, 1.0)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[8]);
  EXPECT_GT(counts[8], counts[63]);
}

TEST(RngTest, ZipfAlphaOneFollowsHarmonicLaw) {
  // For Zipf(1), P(rank 0) / P(rank k) == k + 1.
  Rng rng(59);
  std::vector<double> counts(32, 0);
  const int draws = 2000000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextZipf(32, 1.0)];
  EXPECT_NEAR(counts[0] / counts[1], 2.0, 0.1);
  EXPECT_NEAR(counts[0] / counts[3], 4.0, 0.25);
  EXPECT_NEAR(counts[0] / counts[7], 8.0, 0.6);
}

// Parameterized determinism sweep over seeds: the full draw sequence must
// be reproducible (experiments depend on it).
class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, AllDistributionsDeterministic) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_DOUBLE_EQ(a.NextExponential(3.0), b.NextExponential(3.0));
    EXPECT_EQ(a.NextPoisson(5.0), b.NextPoisson(5.0));
    EXPECT_EQ(a.NextZipf(1000, 1.0), b.NextZipf(1000, 1.0));
    EXPECT_EQ(a.NextBounded(97), b.NextBounded(97));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0x5eedULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace dmasim
