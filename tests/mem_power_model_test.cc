// Tests for the RDRAM power/timing model (Table 1 of the paper).
#include "mem/power_model.h"

#include <gtest/gtest.h>

#include <optional>

#include "mem/chip_power_model.h"
#include "util/units.h"

namespace dmasim {
namespace {

TEST(PowerModelTest, Table1StatePowers) {
  const PowerModel model;
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kActive).milliwatts(), 300.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kStandby).milliwatts(),
                   180.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kNap).milliwatts(), 30.0);
  EXPECT_DOUBLE_EQ(model.StatePowerMw(PowerState::kPowerdown).milliwatts(),
                   3.0);
}

TEST(PowerModelTest, Table1DownTransitions) {
  const PowerModel model;
  EXPECT_DOUBLE_EQ(
      model.DownTransition(PowerState::kStandby).power_mw.milliwatts(), 240.0);
  EXPECT_EQ(model.DownTransition(PowerState::kStandby).duration, Ticks(625));
  EXPECT_DOUBLE_EQ(
      model.DownTransition(PowerState::kNap).power_mw.milliwatts(), 160.0);
  EXPECT_EQ(model.DownTransition(PowerState::kNap).duration, Ticks(8 * 625));
  EXPECT_DOUBLE_EQ(
      model.DownTransition(PowerState::kPowerdown).power_mw.milliwatts(),
      15.0);
  EXPECT_EQ(model.DownTransition(PowerState::kPowerdown).duration,
            Ticks(8 * 625));
}

TEST(PowerModelTest, Table1UpTransitions) {
  const PowerModel model;
  EXPECT_EQ(model.UpTransition(PowerState::kStandby).duration,
            Ticks(6 * kNanosecond));
  EXPECT_EQ(model.UpTransition(PowerState::kNap).duration,
            Ticks(60 * kNanosecond));
  EXPECT_EQ(model.UpTransition(PowerState::kPowerdown).duration,
            Ticks(6000 * kNanosecond));
  EXPECT_DOUBLE_EQ(
      model.UpTransition(PowerState::kPowerdown).power_mw.milliwatts(), 15.0);
}

TEST(PowerModelTest, MemoryCycleIs625Picoseconds) {
  // 1600 MHz RDRAM.
  const PowerModel model;
  EXPECT_EQ(model.cycle, 625);
}

TEST(PowerModelTest, EightBytesServedInFourCycles) {
  // Fig. 2(a): an 8-byte DMA-memory request occupies 4 memory cycles.
  const PowerModel model;
  EXPECT_EQ(model.ServiceTime(ByteCount(8)), Ticks(4 * 625));
}

TEST(PowerModelTest, CacheLineServedIn32Cycles) {
  const PowerModel model;
  EXPECT_EQ(model.ServiceTime(ByteCount(64)), Ticks(32 * 625));
}

TEST(PowerModelTest, PeakBandwidthIs3Point2GBps) {
  const PowerModel model;
  EXPECT_NEAR(model.Bandwidth().value(), 3.2e9, 1e6);
}

TEST(PowerModelTest, EnergyOverMatchesTable1Arithmetic) {
  // 300 mW for 1 second = 0.3 J.
  EXPECT_NEAR(EnergyOver(MilliwattPower(300.0), Ticks(kSecond)).joules(), 0.3,
              1e-12);
  // 3 mW for 1 ms = 3 uJ.
  EXPECT_NEAR(EnergyOver(MilliwattPower(3.0), Ticks(kMillisecond)).joules(),
              3e-6, 1e-15);
  EXPECT_DOUBLE_EQ(EnergyOver(MilliwattPower(300.0), Ticks(0)).joules(), 0.0);
}

TEST(PowerModelTest, NextLowerStateChain) {
  // The chain query moved into the chip-model family; the RDRAM member
  // still walks Table 1's active -> standby -> nap -> powerdown order.
  const RdramChipModel model{PowerModel{}};
  EXPECT_EQ(model.NextLowerState(PowerState::kActive), PowerState::kStandby);
  EXPECT_EQ(model.NextLowerState(PowerState::kStandby), PowerState::kNap);
  EXPECT_EQ(model.NextLowerState(PowerState::kNap), PowerState::kPowerdown);
  EXPECT_EQ(model.NextLowerState(PowerState::kPowerdown), std::nullopt);
}

TEST(PowerModelTest, StateNames) {
  EXPECT_EQ(PowerStateName(PowerState::kActive), "active");
  EXPECT_EQ(PowerStateName(PowerState::kStandby), "standby");
  EXPECT_EQ(PowerStateName(PowerState::kNap), "nap");
  EXPECT_EQ(PowerStateName(PowerState::kPowerdown), "powerdown");
}

TEST(PowerModelTest, ServiceTimeScalesLinearly) {
  const PowerModel model;
  EXPECT_EQ(model.ServiceTime(ByteCount(512)),
            64 * model.ServiceTime(ByteCount(8)));
  EXPECT_EQ(model.ServiceTime(ByteCount(8192)), Ticks(4096 * model.cycle));
}

TEST(TimeHelpersTest, UnitConversions) {
  EXPECT_EQ(kNanosecond, 1000);
  EXPECT_EQ(kMicrosecond, 1000000);
  EXPECT_EQ(kMillisecond, 1000000000);
  EXPECT_DOUBLE_EQ(TicksToSeconds(kSecond), 1.0);
  EXPECT_EQ(SecondsToTicks(1.0), kSecond);
  EXPECT_EQ(SecondsToTicks(0.5e-3), 500 * kMicrosecond);
}

TEST(TimeHelpersTest, TransferTime) {
  // 8 bytes at 1 GB/s = 8 ns.
  EXPECT_EQ(TransferTime(8, 1.0e9), 8 * kNanosecond);
  // 8 KB at 3.2 GB/s = 2.56 us.
  EXPECT_EQ(TransferTime(8192, 3.2e9), 2560 * kNanosecond);
}

TEST(TimeHelpersTest, PciXSlotIsTwelveMemoryCycles) {
  // The paper's Fig. 2(a) arithmetic: the next 8-byte request arrives 12
  // memory cycles after the previous one on a bus with 1/3 the memory
  // bandwidth.
  const double bus_bandwidth = 8.0 / (12.0 * 625.0e-12);
  EXPECT_EQ(TransferTime(8, bus_bandwidth), 12 * 625);
}

}  // namespace
}  // namespace dmasim
