// End-to-end tests of the observability layer: enabling it must not
// change any simulation result, the event trace's power-state residency
// must reconcile exactly with the chips' time/energy accounting, and the
// exported artifacts must be structurally sound.
//
// Linked against dmasim_observed, which is always compiled with
// DMASIM_OBS=2 regardless of the main library's level.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/memory_controller.h"
#include "mem/power_policy.h"
#include "obs/obs_config.h"
#include "obs/simulation_obs.h"
#include "obs/trace_export.h"
#include "server/fleet_driver.h"
#include "server/simulation_driver.h"
#include "sim/simulator.h"
#include "trace/workloads.h"

static_assert(dmasim::kCompiledObsLevel >= 2,
              "obs tests must link the level-2 library variant");

namespace dmasim {
namespace {

WorkloadSpec ShortWorkload(Tick duration = 30 * kMillisecond) {
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  return spec;
}

SimulationOptions TaOptions(int obs_level) {
  SimulationOptions options;
  options.memory.dma.ta.enabled = true;
  options.memory.dma.ta.mu = 4.0;  // Generous budget: gating fires.
  options.obs_level = obs_level;
  return options;
}

const MetricSample* FindMetric(const SimulationResults& results,
                               const std::string& component,
                               const std::string& name) {
  for (const MetricSample& sample : results.metrics) {
    if (sample.component == component && sample.name == name) return &sample;
  }
  return nullptr;
}

// The contract the whole layer stands on: a fully-observed run produces
// bit-identical simulation results to an unobserved one.
TEST(ObservabilityTest, ObservedRunMatchesUnobservedRunExactly) {
  const SimulationResults off = RunWorkload(ShortWorkload(), TaOptions(0));
  const SimulationResults on = RunWorkload(ShortWorkload(), TaOptions(2));

  EXPECT_EQ(off.energy.Total(), on.energy.Total());
  for (int i = 0; i < kEnergyBucketCount; ++i) {
    const auto bucket = static_cast<EnergyBucket>(i);
    EXPECT_EQ(off.energy.Of(bucket), on.energy.Of(bucket));
  }
  EXPECT_EQ(off.executed_events, on.executed_events);
  EXPECT_EQ(off.stepped_events, on.stepped_events);
  EXPECT_EQ(off.controller.transfers_completed,
            on.controller.transfers_completed);
  EXPECT_EQ(off.server.reads, on.server.reads);
  EXPECT_EQ(off.gated_requests, on.gated_requests);
  EXPECT_EQ(off.releases_by_quorum, on.releases_by_quorum);
  EXPECT_EQ(off.releases_by_slack, on.releases_by_slack);
  EXPECT_EQ(off.client_response.Mean(), on.client_response.Mean());
  EXPECT_EQ(off.utilization_factor, on.utilization_factor);

  // The observed run actually observed something.
  EXPECT_TRUE(off.metrics.empty());
  EXPECT_FALSE(on.metrics.empty());
  EXPECT_GT(on.obs_events, 0u);
  EXPECT_EQ(on.obs_dropped_events, 0u);
}

TEST(ObservabilityTest, MetricsReconcileWithResults) {
  const SimulationResults results =
      RunWorkload(ShortWorkload(), TaOptions(2));

  const MetricSample* completed =
      FindMetric(results, "controller", "transfers_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(completed->count, results.controller.transfers_completed);

  const MetricSample* gated = FindMetric(results, "dma_ta", "gated_total");
  ASSERT_NE(gated, nullptr);
  EXPECT_EQ(gated->count, results.gated_requests);
  EXPECT_GT(gated->count, 0u);

  // Per-cause release counters partition the coarse quorum/slack split.
  std::uint64_t by_cause = 0;
  for (const MetricSample& sample : results.metrics) {
    if (sample.component == "dma_ta" &&
        sample.name.rfind("release_cause_", 0) == 0) {
      by_cause += sample.count;
    }
  }
  EXPECT_EQ(by_cause, results.releases_by_quorum + results.releases_by_slack);

  // Live histograms saw the same populations as the running means.
  const MetricSample* latency =
      FindMetric(results, "controller", "transfer_latency_ticks");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(latency->total, results.transfer_latency.Count());
  const MetricSample* response =
      FindMetric(results, "server", "response_time_ticks");
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->total, results.client_response.Count());

  // Aggregated chip counters match the energy-accounting world.
  const MetricSample* wakeups = FindMetric(results, "chips", "wakeups");
  ASSERT_NE(wakeups, nullptr);
  EXPECT_GT(wakeups->count, 0u);

  // Event-kernel internals: the sim group mirrors the run's calendar
  // stats and event counts exactly.
  const MetricSample* executed = FindMetric(results, "sim", "executed_events");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->count, results.executed_events);
  const MetricSample* stepped = FindMetric(results, "sim", "stepped_events");
  ASSERT_NE(stepped, nullptr);
  EXPECT_EQ(stepped->count, results.stepped_events);
  const MetricSample* loads =
      FindMetric(results, "sim", "calendar_bucket_loads");
  ASSERT_NE(loads, nullptr);
  EXPECT_EQ(loads->count, results.calendar.bucket_loads);
  EXPECT_GT(loads->count, 0u);
  const MetricSample* cascades = FindMetric(results, "sim", "calendar_cascades");
  ASSERT_NE(cascades, nullptr);
  EXPECT_EQ(cascades->count, results.calendar.cascades);
  const MetricSample* refills =
      FindMetric(results, "sim", "calendar_overflow_refills");
  ASSERT_NE(refills, nullptr);
  EXPECT_EQ(refills->count, results.calendar.overflow_refills);
  const MetricSample* peak =
      FindMetric(results, "sim", "calendar_max_bucket_events");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->count, results.calendar.max_bucket_events);
  EXPECT_GT(peak->count, 0u);
}

// Sharded single-system path: observing the run (including the engine's
// window/mailbox counters) must not change its outcome.
TEST(ObservabilityTest, ShardedObservedRunMatchesUnobservedExactly) {
  SimulationOptions off_options = TaOptions(0);
  off_options.sim_threads = 2;
  SimulationOptions on_options = TaOptions(1);
  on_options.sim_threads = 2;

  const SimulationResults off = RunWorkload(ShortWorkload(), off_options);
  const SimulationResults on = RunWorkload(ShortWorkload(), on_options);

  EXPECT_EQ(off.energy.Total(), on.energy.Total());
  EXPECT_EQ(off.executed_events, on.executed_events);
  EXPECT_EQ(off.stepped_events, on.stepped_events);
  EXPECT_EQ(off.client_response.Mean(), on.client_response.Mean());

  // One controller = one shard: windows ran, nothing crossed shards.
  const MetricSample* windows = FindMetric(on, "sim", "engine_windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_GT(windows->count, 0u);
  const MetricSample* delivered =
      FindMetric(on, "sim", "engine_delivered_messages");
  ASSERT_NE(delivered, nullptr);
  EXPECT_EQ(delivered->count, 0u);
  ASSERT_NE(FindMetric(on, "sim", "mailbox_spills"), nullptr);
  ASSERT_NE(FindMetric(on, "sim", "max_mailbox_occupancy"), nullptr);
}

// Fleet path: the obs-on==obs-off bit-identity re-assert for the sharded
// engine's metric export. A one-slot mailbox under real cross-domain
// traffic forces spills, so the exported counters are exercised nonzero.
TEST(ObservabilityTest, FleetObservedRunMatchesUnobservedExactly) {
  FleetOptions options;
  options.domains = 3;
  options.sim_threads = 2;
  options.streams_per_domain = 64;
  options.remote_fraction = 0.5;
  options.mailbox_capacity = 1;
  options.workload = ShortWorkload(5 * kMillisecond);

  FleetOptions observed = options;
  observed.base.obs_level = 1;

  const FleetResults off = RunFleet(options);
  const FleetResults on = RunFleet(observed);

  EXPECT_EQ(off.Fingerprint(), on.Fingerprint());
  EXPECT_EQ(off.engine.windows, on.engine.windows);
  EXPECT_EQ(off.engine.delivered_messages, on.engine.delivered_messages);
  EXPECT_EQ(off.engine.mailbox_spills, on.engine.mailbox_spills);
  EXPECT_EQ(off.engine.max_mailbox_occupancy, on.engine.max_mailbox_occupancy);
  EXPECT_GT(on.engine.delivered_messages, 0u);
  EXPECT_GT(on.engine.mailbox_spills, 0u);

  // Every domain's snapshot carries the fleet-wide engine counters, and
  // they reconcile exactly with the engine's own stats.
  EXPECT_TRUE(off.domains.front().results.metrics.empty());
  for (const FleetDomainResults& domain : on.domains) {
    const SimulationResults& results = domain.results;
    const MetricSample* spills = FindMetric(results, "sim", "mailbox_spills");
    ASSERT_NE(spills, nullptr);
    EXPECT_EQ(spills->count, on.engine.mailbox_spills);
    const MetricSample* occupancy =
        FindMetric(results, "sim", "max_mailbox_occupancy");
    ASSERT_NE(occupancy, nullptr);
    EXPECT_EQ(occupancy->count, on.engine.max_mailbox_occupancy);
    EXPECT_GT(occupancy->count, 0u);
    const MetricSample* windows = FindMetric(results, "sim", "engine_windows");
    ASSERT_NE(windows, nullptr);
    EXPECT_EQ(windows->count, on.engine.windows);
    const MetricSample* delivered =
        FindMetric(results, "sim", "engine_delivered_messages");
    ASSERT_NE(delivered, nullptr);
    EXPECT_EQ(delivered->count, on.engine.delivered_messages);
  }
}

TEST(ObservabilityTest, MetricsOnlyLevelRecordsNoEvents) {
  const SimulationResults results =
      RunWorkload(ShortWorkload(), TaOptions(1));
  EXPECT_FALSE(results.metrics.empty());
  EXPECT_EQ(results.obs_events, 0u);
  EXPECT_EQ(FindMetric(results, "tracer", "recorded_events"), nullptr);
}

TEST(ObservabilityTest, TraceFileIsWrittenAndStructurallySound) {
  const std::string path =
      testing::TempDir() + "/dmasim_obs_trace_test.json";
  std::remove(path.c_str());
  SimulationOptions options = TaOptions(2);
  options.obs_trace_path = path;
  const SimulationResults results = RunWorkload(ShortWorkload(), options);
  EXPECT_GT(results.obs_events, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '{');
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(trace.find("memory chips"), std::string::npos);
  EXPECT_NE(trace.find("\"recorded_events\""), std::string::npos);
  std::remove(path.c_str());
}

// Component-level fixture with direct access to the tracer, for the
// residency-reconciliation contract.
class ObsReconcileFixture : public ::testing::Test {
 protected:
  void Build() {
    MemorySystemConfig config;
    config.chips = 4;
    config.pages_per_chip = 16;
    config.bus_count = 3;
    config.chunk_bytes = 512;
    policy_ = std::make_unique<DynamicThresholdPolicy>();
    controller_ = std::make_unique<MemoryController>(&simulator_, config,
                                                     policy_.get());
    SimulationObserver::Options options;
    options.level = 2;
    observer_ = std::make_unique<SimulationObserver>(controller_.get(),
                                                     nullptr, options);
  }

  Simulator simulator_;
  std::unique_ptr<LowPowerPolicy> policy_;
  std::unique_ptr<MemoryController> controller_;
  std::unique_ptr<SimulationObserver> observer_;
};

TEST_F(ObsReconcileFixture, ResidencyEventsReconcileWithChipAccounting) {
  Build();
  // Sparse transfers so chips step down and wake repeatedly.
  for (int i = 0; i < 20; ++i) {
    simulator_.ScheduleAt(i * 2 * kMillisecond, [this, i]() {
      controller_->StartDmaTransfer(i % 3,
                                    static_cast<std::uint64_t>((i * 7) % 64),
                                    8192, DmaKind::kNetwork, {});
    });
  }
  simulator_.RunUntil(50 * kMillisecond);
  observer_->Finish();

  const EventTracer* tracer = observer_->tracer();
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(tracer->size(), 0u);
  EXPECT_EQ(tracer->dropped(), 0u);

  constexpr int kChips = 4;
  Tick residency[kChips][kPowerStateCount] = {};
  Tick transition[kChips] = {};
  tracer->ForEach([&](const ObsEvent& event) {
    const int chip = event.b;
    switch (event.kind) {
      case ObsEventKind::kPowerResidency:
        ASSERT_LT(chip, kChips);
        ASSERT_LT(event.a, kPowerStateCount);
        residency[chip][event.a] += event.dur;
        break;
      case ObsEventKind::kPowerTransition:
        ASSERT_LT(chip, kChips);
        transition[chip] += event.dur;
        break;
      default:
        break;
    }
  });

  for (int i = 0; i < kChips; ++i) {
    MemoryChip& chip = controller_->chip(i);
    const ChipStats& stats = chip.stats();

    // Active residency covers serving and both active-idle buckets.
    const Tick active = stats.dma_serving + stats.cpu_serving +
                        stats.migration_serving + stats.active_idle_dma +
                        stats.active_idle_threshold;
    EXPECT_EQ(residency[i][static_cast<int>(PowerState::kActive)], active)
        << "chip " << i;

    // Each low-power state's residency matches the stats slot exactly.
    Tick low_power_total = 0;
    for (int state = 1; state < kPowerStateCount; ++state) {
      EXPECT_EQ(residency[i][state], stats.low_power[state])
          << "chip " << i << " state " << state;
      low_power_total += residency[i][state];
    }
    EXPECT_EQ(transition[i], stats.transition) << "chip " << i;

    // Gap-free coverage: every accounted tick is in exactly one interval.
    EXPECT_EQ(active + low_power_total + transition[i],
              chip.accounted_until())
        << "chip " << i;

    // And the residency-implied low-power energy matches the accumulator.
    // States the chip model does not support (the DDR4-only ones on the
    // default RDRAM model) can hold no residency.
    double low_power_joules = 0.0;
    for (int state = 1; state < kPowerStateCount; ++state) {
      if (!chip.model().IsSupported(static_cast<PowerState>(state))) {
        EXPECT_EQ(residency[i][state], 0) << "chip " << i << " state "
                                          << state;
        continue;
      }
      low_power_joules +=
          EnergyOver(chip.model().StatePowerMw(static_cast<PowerState>(state)),
                     Ticks(residency[i][state]))
              .joules();
    }
    EXPECT_NEAR(low_power_joules,
                chip.energy().Of(EnergyBucket::kLowPower).joules(),
                1e-9 * (low_power_joules + 1.0))
        << "chip " << i;
  }
}

TEST_F(ObsReconcileFixture, ChromeExportContainsEveryRecordedEvent) {
  Build();
  for (int i = 0; i < 6; ++i) {
    simulator_.ScheduleAt(i * kMillisecond, [this, i]() {
      controller_->StartDmaTransfer(i % 3,
                                    static_cast<std::uint64_t>(i), 8192,
                                    DmaKind::kDisk, {});
    });
  }
  simulator_.RunUntil(20 * kMillisecond);
  observer_->Finish();

  const EventTracer* tracer = observer_->tracer();
  ASSERT_NE(tracer, nullptr);
  std::ostringstream out;
  WriteChromeTrace(*tracer, out);
  const std::string trace = out.str();
  EXPECT_NE(trace.find("\"io buses\""), std::string::npos);
  EXPECT_NE(trace.find("\"memory chips\""), std::string::npos);
  EXPECT_NE(
      trace.find("\"recorded_events\":" + std::to_string(tracer->size())),
      std::string::npos);
  EXPECT_NE(trace.find("\"dropped_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace dmasim
