// Unit tests for the observability building blocks: the metrics
// registry, the bounded event tracer, and the Chrome-trace exporter's
// event encoding.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace dmasim {
namespace {

TEST(MetricsRegistryTest, PointersAreLiveAndSnapshotFreezes) {
  MetricsRegistry registry;
  std::uint64_t* counter = registry.AddCounter("controller", "transfers");
  double* gauge = registry.AddGauge("dma_ta", "slack");
  Histogram* histogram =
      registry.AddHistogram("server", "latency", 0.0, 100.0, 10);

  *counter += 3;
  *gauge = -12.5;
  histogram->Add(5.0);
  histogram->Add(95.0);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);

  EXPECT_EQ(snapshot[0].component, "controller");
  EXPECT_EQ(snapshot[0].name, "transfers");
  EXPECT_EQ(snapshot[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(snapshot[0].count, 3u);

  EXPECT_EQ(snapshot[1].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(snapshot[1].value, -12.5);

  EXPECT_EQ(snapshot[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(snapshot[2].lo, 0.0);
  EXPECT_EQ(snapshot[2].hi, 100.0);
  EXPECT_EQ(snapshot[2].total, 2u);
  ASSERT_EQ(snapshot[2].bins.size(), 10u);
  EXPECT_EQ(snapshot[2].bins[0], 1u);
  EXPECT_EQ(snapshot[2].bins[9], 1u);

  // The snapshot is a frozen copy: later updates don't leak into it.
  *counter += 100;
  EXPECT_EQ(snapshot[0].count, 3u);
  // But live pointers keep working and a fresh snapshot sees them.
  EXPECT_EQ(registry.Snapshot()[0].count, 103u);
}

TEST(MetricsRegistryTest, StableAddressesAcrossGrowth) {
  MetricsRegistry registry;
  std::uint64_t* first = registry.AddCounter("c", "first");
  for (int i = 0; i < 1000; ++i) {
    registry.AddCounter("c", "filler_" + std::to_string(i));
  }
  *first = 7;  // Must not be a dangling write after 1000 insertions.
  EXPECT_EQ(registry.Snapshot()[0].count, 7u);
  EXPECT_EQ(registry.size(), 1001u);
}

TEST(EventTracerTest, RecordsInOrderWithTypedEncoding) {
  EventTracer tracer(/*capacity_events=*/1024);
  tracer.PowerResidency(/*chip=*/3, /*state=*/2, /*start=*/100, /*end=*/250);
  tracer.PowerTransition(/*chip=*/3, /*from=*/2, /*to=*/0, /*up=*/true,
                         /*start=*/250, /*end=*/300);
  tracer.Gate(/*now=*/400, /*chip=*/5, /*bus=*/1, /*transfer_id=*/42);
  tracer.Release(/*now=*/500, /*chip=*/5, /*cause=*/2, /*count=*/4);
  tracer.SlackSample(/*now=*/600, /*slack_ticks=*/-1.5e6, /*pending=*/9);

  ASSERT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const ObsEvent& residency = tracer.At(0);
  EXPECT_EQ(residency.kind, ObsEventKind::kPowerResidency);
  EXPECT_EQ(residency.ts, 100);
  EXPECT_EQ(residency.dur, 150);
  EXPECT_EQ(residency.a, 2);
  EXPECT_EQ(residency.b, 3);

  const ObsEvent& transition = tracer.At(1);
  EXPECT_EQ(transition.kind, ObsEventKind::kPowerTransition);
  EXPECT_NE(transition.a >> 4, 0);        // up bit
  EXPECT_EQ((transition.a >> 2) & 3, 2);  // from
  EXPECT_EQ(transition.a & 3, 0);         // to

  const ObsEvent& gate = tracer.At(2);
  EXPECT_EQ(gate.kind, ObsEventKind::kGate);
  EXPECT_EQ(gate.id, 42u);
  EXPECT_EQ(gate.a, 1);
  EXPECT_EQ(gate.b, 5);

  const ObsEvent& release = tracer.At(3);
  EXPECT_EQ(release.kind, ObsEventKind::kRelease);
  EXPECT_EQ(release.a, 2);
  EXPECT_EQ(release.c, 4u);

  const ObsEvent& slack = tracer.At(4);
  EXPECT_EQ(slack.kind, ObsEventKind::kSlackSample);
  EXPECT_EQ(std::bit_cast<double>(slack.id), -1.5e6);
  EXPECT_EQ(slack.c, 9u);
}

TEST(EventTracerTest, DropsAndCountsPastCapacity) {
  // Capacity is granted in whole blocks, so the effective minimum is one
  // block (kBlockEvents). Fill it and go 5 past the edge.
  EventTracer tracer(/*capacity_events=*/10);
  const std::size_t limit = EventTracer::kBlockEvents;
  for (std::size_t i = 0; i < limit + 5; ++i) {
    tracer.Gate(static_cast<Tick>(i), /*chip=*/0, /*bus=*/0, i);
  }
  EXPECT_EQ(tracer.size(), limit);
  EXPECT_EQ(tracer.dropped(), 5u);
  // The retained prefix is intact; nothing was overwritten.
  EXPECT_EQ(tracer.At(0).id, 0u);
  EXPECT_EQ(tracer.At(limit - 1).id, limit - 1);
}

TEST(EventTracerTest, GrowsAcrossBlockBoundary) {
  EventTracer tracer(/*capacity_events=*/2 * EventTracer::kBlockEvents);
  const std::size_t total = EventTracer::kBlockEvents + 100;
  for (std::size_t i = 0; i < total; ++i) {
    tracer.Gate(static_cast<Tick>(i), /*chip=*/1, /*bus=*/2, i);
  }
  EXPECT_EQ(tracer.size(), total);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.At(EventTracer::kBlockEvents).id,
            static_cast<std::uint64_t>(EventTracer::kBlockEvents));
  std::size_t seen = 0;
  tracer.ForEach([&](const ObsEvent& event) {
    EXPECT_EQ(event.id, seen);
    ++seen;
  });
  EXPECT_EQ(seen, total);
}

TEST(ChromeTraceExportTest, EmitsExpectedPhasesAndMetadata) {
  EventTracer tracer(/*capacity_events=*/64);
  tracer.PowerResidency(/*chip=*/0, /*state=*/1, /*start=*/0,
                        /*end=*/1000000);
  tracer.Gate(/*now=*/500, /*chip=*/0, /*bus=*/2, /*transfer_id=*/7);
  tracer.Release(/*now=*/900, /*chip=*/0, /*cause=*/0, /*count=*/1);
  tracer.Transfer(/*start=*/100, /*end=*/2000, /*transfer_id=*/7,
                  /*chip=*/0, /*bus=*/2, /*kind=*/1, /*gated=*/true,
                  /*bytes=*/8192);
  tracer.BusTransferStart(/*now=*/100, /*bus=*/2, /*transfer_id=*/7,
                          /*bytes=*/8192);
  tracer.ClientRequest(/*start=*/0, /*end=*/3000, /*is_write=*/false,
                       /*bytes=*/4096);

  std::ostringstream out;
  WriteChromeTrace(tracer, out);
  const std::string trace = out.str();

  // Process/thread naming for the Perfetto UI.
  EXPECT_NE(trace.find("\"memory chips\""), std::string::npos);
  EXPECT_NE(trace.find("\"dma-ta\""), std::string::npos);
  EXPECT_NE(trace.find("\"chip 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"bus 2\""), std::string::npos);

  // One of each phase kind made it out.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // residency
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);  // gate/release
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);  // async begin
  EXPECT_NE(trace.find("\"ph\":\"e\""), std::string::npos);  // async end
  EXPECT_NE(trace.find("\"standby\""), std::string::npos);
  EXPECT_NE(trace.find("\"cause\":\"quorum\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"disk\""), std::string::npos);
  EXPECT_NE(trace.find("\"gated\":true"), std::string::npos);

  EXPECT_NE(trace.find("\"recorded_events\":6"), std::string::npos);
  EXPECT_NE(trace.find("\"dropped_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace dmasim
