// Zipf popularity helpers.
//
// The paper's synthetic traces use Zipf(alpha = 1) page popularity, and
// its real OLTP storage trace follows a "20% of pages receive 60% of the
// accesses" curve (Fig. 4). `FitZipfAlpha` inverts that: it finds the
// alpha whose top-x fraction of ranks carries a y fraction of accesses.
#ifndef DMASIM_TRACE_ZIPF_H_
#define DMASIM_TRACE_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace dmasim {

// Share of total Zipf(alpha) probability mass held by the most popular
// `top_fraction` of `n` ranks.
double ZipfTopShare(std::uint64_t n, double alpha, double top_fraction);

// Finds alpha in [0, 4] such that the top `top_fraction` of `n` ranks
// carries `target_share` of accesses (binary search; share is monotonic
// in alpha).
double FitZipfAlpha(std::uint64_t n, double top_fraction, double target_share);

// Draws logical pages with Zipf(alpha) popularity. Ranks are scattered
// over the logical page space by a bijective multiplicative permutation so
// that popular pages are not clustered in consecutive addresses (matching
// an unmanaged real layout). Requires `pages` to be a power of two.
class ZipfPagePicker {
 public:
  ZipfPagePicker(std::uint64_t pages, double alpha);

  std::uint64_t Pick(Rng& rng) const;

  // The logical page holding popularity rank `rank` (0 = most popular).
  std::uint64_t PageForRank(std::uint64_t rank) const;

  std::uint64_t pages() const { return pages_; }
  double alpha() const { return alpha_; }

 private:
  std::uint64_t pages_;
  double alpha_;
};

}  // namespace dmasim

#endif  // DMASIM_TRACE_ZIPF_H_
