#include "trace/workloads.h"

#include <algorithm>

#include "trace/zipf.h"
#include "util/check.h"
#include "util/random.h"

namespace dmasim {

Trace GenerateWorkload(const WorkloadSpec& spec) {
  DMASIM_EXPECTS(spec.client_reads_per_ms > 0.0);
  DMASIM_EXPECTS(spec.duration > 0);
  DMASIM_EXPECTS(spec.write_fraction >= 0.0 && spec.write_fraction <= 1.0);
  DMASIM_EXPECTS(spec.miss_ratio >= 0.0 && spec.miss_ratio <= 1.0);
  DMASIM_EXPECTS(spec.burst_factor >= 1.0);

  Rng rng(spec.seed);
  ZipfPagePicker picker(spec.pages, spec.zipf_alpha);

  // Recency pool for temporal locality (ring buffer of distinct pages).
  std::vector<std::uint64_t> pool;
  std::size_t pool_cursor = 0;
  auto pick_page = [&]() {
    if (spec.locality_probability > 0.0 && !pool.empty() &&
        rng.NextDouble() < spec.locality_probability) {
      return pool[rng.NextBounded(pool.size())];
    }
    const std::uint64_t page = picker.Pick(rng);
    if (spec.locality_probability > 0.0) {
      if (pool.size() < spec.locality_pool_pages) {
        pool.push_back(page);
      } else {
        pool[pool_cursor] = page;
        pool_cursor = (pool_cursor + 1) % pool.size();
      }
    }
    return page;
  };

  Trace trace;
  // Rough reservation: requests plus CPU accesses.
  const double per_ms =
      spec.client_reads_per_ms * (1.0 + spec.cpu_accesses_per_transfer);
  trace.reserve(static_cast<std::size_t>(
      per_ms * static_cast<double>(spec.duration) / kMillisecond * 1.1));

  // Renormalize the exponential mean so that burst-shortened gaps do not
  // inflate the average arrival rate.
  const double burst_shrink =
      (1.0 - spec.burst_fraction) + spec.burst_fraction / spec.burst_factor;
  const double mean_gap_ps = static_cast<double>(kMillisecond) /
                             spec.client_reads_per_ms / burst_shrink;
  Tick now = 0;
  while (true) {
    double gap = rng.NextExponential(mean_gap_ps);
    if (spec.burst_fraction > 0.0 && rng.NextDouble() < spec.burst_fraction) {
      gap /= spec.burst_factor;
    }
    now += static_cast<Tick>(gap) + 1;
    if (now >= spec.duration) break;

    TraceRecord request;
    request.time = now;
    request.kind = rng.NextDouble() < spec.write_fraction
                       ? TraceEventKind::kClientWrite
                       : TraceEventKind::kClientRead;
    request.page = pick_page();
    request.bytes = spec.page_bytes;
    trace.push_back(request);

    if (spec.sequential_run_mean > 1.0) {
      // Geometric run of consecutive pages (a scan).
      const double continue_probability = 1.0 - 1.0 / spec.sequential_run_mean;
      std::uint64_t page = request.page;
      Tick when = now;
      while (rng.NextDouble() < continue_probability) {
        page = (page + 1) % spec.pages;
        when += spec.sequential_gap;
        if (when >= spec.duration) break;
        TraceRecord next = request;
        next.time = when;
        next.page = page;
        trace.push_back(next);
      }
    }

    if (spec.cpu_accesses_per_transfer > 0.0) {
      const std::uint64_t count =
          rng.NextPoisson(spec.cpu_accesses_per_transfer);
      for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord access;
        access.time =
            now + static_cast<Tick>(rng.NextDouble() *
                                    static_cast<double>(spec.cpu_window));
        access.kind = TraceEventKind::kCpuAccess;
        access.page = request.page;
        access.bytes = spec.cpu_access_bytes;
        if (access.time < spec.duration) trace.push_back(access);
      }
    }
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  return trace;
}

WorkloadSpec OltpStorageSpec() {
  WorkloadSpec spec;
  spec.name = "OLTP-St";
  spec.client_reads_per_ms = 45.0;
  spec.miss_ratio = 16.7 / 45.0;
  // Zipf(1) over the full page space reproduces Fig. 4's popularity CDF
  // over *referenced* pages: for traces of this rate and length, the top
  // ~20% of touched pages receive ~60% of the DMA accesses (verified by
  // bench_fig4_popularity_cdf).
  spec.zipf_alpha = 1.0;
  // Real storage traces are bursty; the Poisson-only arrival process is
  // reserved for the Synthetic-* presets (Table 2).
  spec.burst_factor = 8.0;
  spec.burst_fraction = 0.3;
  spec.seed = 0x517;
  return spec;
}

WorkloadSpec SyntheticStorageSpec() {
  WorkloadSpec spec;
  spec.name = "Synthetic-St";
  spec.client_reads_per_ms = 80.0;  // + 20 disk DMAs/ms = 100 transfers/ms.
  spec.miss_ratio = 0.25;
  spec.zipf_alpha = 1.0;
  spec.seed = 0x5717;
  return spec;
}

WorkloadSpec OltpDatabaseSpec() {
  WorkloadSpec spec;
  spec.name = "OLTP-Db";
  spec.client_reads_per_ms = 100.0;
  spec.miss_ratio = 0.0;  // Table 2: processor + network DMA accesses only.
  spec.zipf_alpha = 1.0;  // See OltpStorageSpec on Fig. 4.
  spec.burst_factor = 8.0;
  spec.burst_fraction = 0.3;
  spec.cpu_accesses_per_transfer = 233.0;
  spec.request_compute_time = 5 * kMillisecond;  // TPC-C transaction work.
  spec.seed = 0xDB;
  return spec;
}

WorkloadSpec SyntheticDatabaseSpec() {
  WorkloadSpec spec;
  spec.name = "Synthetic-Db";
  spec.client_reads_per_ms = 100.0;
  spec.miss_ratio = 0.0;
  spec.zipf_alpha = 1.0;
  spec.cpu_accesses_per_transfer = 100.0;  // 10,000 accesses/ms.
  spec.request_compute_time = 5 * kMillisecond;
  spec.seed = 0x5DB;
  return spec;
}

WorkloadSpec DssStorageSpec() {
  WorkloadSpec spec;
  spec.name = "DSS-St";
  // Scan-dominated: fewer request starts, each a ~16-page sequential run,
  // comparable aggregate bandwidth to OLTP-St.
  spec.client_reads_per_ms = 4.0;
  spec.miss_ratio = 0.5;  // Scans stream from disk half the time.
  spec.zipf_alpha = 0.6;  // Mild skew: fact tables dominate.
  spec.sequential_run_mean = 16.0;
  spec.seed = 0xD55;
  return spec;
}

WorkloadSpec WithIntensity(WorkloadSpec spec, double transfers_per_ms) {
  DMASIM_EXPECTS(transfers_per_ms > 0.0);
  spec.client_reads_per_ms = transfers_per_ms / (1.0 + spec.miss_ratio);
  return spec;
}

WorkloadSpec WithCpuAccessesPerTransfer(WorkloadSpec spec, double accesses) {
  DMASIM_EXPECTS(accesses >= 0.0);
  spec.cpu_accesses_per_transfer = accesses;
  return spec;
}

}  // namespace dmasim
