// Synthetic workload generation (Table 2 of the paper).
//
// The four presets mirror the paper's traces:
//   * OLTP-St      -- storage server: 45.0 network + 16.7 disk DMA
//                     transfers/ms, popularity fitted so ~20% of pages get
//                     ~60% of accesses (Fig. 4), no CPU accesses.
//   * Synthetic-St -- storage server: Zipf(1) popularity, Poisson arrivals
//                     at 100 transfers/ms (80 network + 20 disk).
//   * OLTP-Db      -- database server: 100 network transfers/ms plus
//                     23,300 CPU accesses/ms (~233 cache lines per
//                     transfer).
//   * Synthetic-Db -- database server: Zipf(1), 100 transfers/ms plus
//                     10,000 CPU accesses/ms.
// The real traces are unavailable; DESIGN.md documents why generators
// parameterized by the paper's published aggregates preserve the relevant
// behaviour.
#ifndef DMASIM_TRACE_WORKLOADS_H_
#define DMASIM_TRACE_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "trace/trace.h"
#include "util/time.h"

namespace dmasim {

struct WorkloadSpec {
  std::string name = "workload";
  Tick duration = 100 * kMillisecond;
  std::uint64_t pages = 1ULL << 17;  // 1 GB of 8 KB pages.
  std::int32_t page_bytes = 8192;
  std::uint64_t seed = 1;

  // Client request process (each request triggers one network DMA; a miss
  // additionally triggers a disk DMA first).
  double client_reads_per_ms = 100.0;
  double write_fraction = 0.0;
  double miss_ratio = 0.0;

  // Page popularity: Zipf exponent.
  double zipf_alpha = 1.0;

  // Mean CPU accesses accompanying each transfer (64-byte lines to the
  // transferred page, spread over `cpu_window` after the request).
  double cpu_accesses_per_transfer = 0.0;
  std::int32_t cpu_access_bytes = 64;
  Tick cpu_window = 20 * kMicrosecond;

  // Server-side computation per request, part of the client-perceived
  // response time (nonzero for database servers).
  Tick request_compute_time = 0;

  // Optional burstiness: with probability `burst_fraction` an arrival gap
  // is divided by `burst_factor` (a crude MMPP; 1.0 = pure Poisson).
  double burst_factor = 1.0;
  double burst_fraction = 0.0;

  // Sequential scan runs: each client request starts a run of
  // geometrically distributed length (mean `sequential_run_mean`) of
  // consecutive logical pages, read back-to-back at `sequential_gap`
  // intervals. Models decision-support scans (the paper's TPC-H future
  // work); 1.0 disables (pure random page requests).
  double sequential_run_mean = 1.0;
  Tick sequential_gap = 10 * kMicrosecond;

  // Temporal re-reference locality: with probability `locality_probability`
  // the requested page is drawn uniformly from the pool of the
  // `locality_pool_pages` most recently referenced distinct pages instead
  // of from the Zipf distribution. Real OLTP traces re-reference a slowly
  // drifting working set; i.i.d. Zipf draws lack this, which matters to
  // popularity-based layout. 0 disables (pure Zipf, used by the
  // Synthetic-* presets per Table 2).
  double locality_probability = 0.0;
  std::size_t locality_pool_pages = 4096;

  // Total DMA transfers per millisecond this spec produces on average.
  double TransfersPerMs() const {
    return client_reads_per_ms * (1.0 + miss_ratio);
  }
};

// Generates a time-sorted trace realizing `spec`.
Trace GenerateWorkload(const WorkloadSpec& spec);

// Table 2 presets.
WorkloadSpec OltpStorageSpec();
WorkloadSpec SyntheticStorageSpec();
WorkloadSpec OltpDatabaseSpec();
WorkloadSpec SyntheticDatabaseSpec();

// Decision-support (TPC-H-like) storage workload: long sequential scans,
// mild popularity skew. The paper lists exploring such workloads as
// future work; this preset extends the evaluation in that direction.
WorkloadSpec DssStorageSpec();

// Derived specs for the sensitivity studies.
// Scales client arrivals so total DMA transfers/ms equals `transfers_per_ms`
// (Fig. 8).
WorkloadSpec WithIntensity(WorkloadSpec spec, double transfers_per_ms);
// Overrides CPU accesses per transfer (Fig. 9).
WorkloadSpec WithCpuAccessesPerTransfer(WorkloadSpec spec, double accesses);

}  // namespace dmasim

#endif  // DMASIM_TRACE_WORKLOADS_H_
