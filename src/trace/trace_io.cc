#include "trace/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace dmasim {
namespace {

char KindChar(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kClientRead:
      return 'R';
    case TraceEventKind::kClientWrite:
      return 'W';
    case TraceEventKind::kCpuAccess:
      return 'C';
  }
  return '?';
}

bool KindFromChar(char c, TraceEventKind* kind) {
  switch (c) {
    case 'R':
      *kind = TraceEventKind::kClientRead;
      return true;
    case 'W':
      *kind = TraceEventKind::kClientWrite;
      return true;
    case 'C':
      *kind = TraceEventKind::kCpuAccess;
      return true;
    default:
      return false;
  }
}

}  // namespace

std::size_t WriteTrace(const Trace& trace, std::ostream& os) {
  os << "# dmasim trace v1: time_ps kind page bytes\n";
  for (const TraceRecord& record : trace) {
    os << record.time << ' ' << KindChar(record.kind) << ' ' << record.page
       << ' ' << record.bytes << '\n';
  }
  return trace.size();
}

bool ReadTrace(std::istream& is, Trace* out, std::string* error) {
  Trace parsed;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    TraceRecord record;
    char kind_char = '?';
    std::string trailing;
    if (!(fields >> record.time >> kind_char >> record.page >> record.bytes) ||
        !KindFromChar(kind_char, &record.kind) || record.time < 0 ||
        record.bytes <= 0 ||
        // A record is exactly four fields; anything after `bytes` (e.g.
        // "100 R 5 4096 junk") means a corrupted or mis-columned trace
        // and must not be silently accepted.
        static_cast<bool>(fields >> trailing)) {
      if (error != nullptr) {
        std::ostringstream message;
        message << "malformed trace record at line " << line_number << ": "
                << line;
        *error = message.str();
      }
      return false;
    }
    parsed.push_back(record);
  }
  *out = std::move(parsed);
  return true;
}

}  // namespace dmasim
