#include "trace/trace.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace dmasim {

bool IsTimeSorted(const Trace& trace) {
  return std::is_sorted(trace.begin(), trace.end(),
                        [](const TraceRecord& a, const TraceRecord& b) {
                          return a.time < b.time;
                        });
}

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  std::unordered_map<std::uint64_t, bool> pages;
  for (const TraceRecord& record : trace) {
    switch (record.kind) {
      case TraceEventKind::kClientRead:
        ++summary.client_reads;
        pages[record.page] = true;
        break;
      case TraceEventKind::kClientWrite:
        ++summary.client_writes;
        pages[record.page] = true;
        break;
      case TraceEventKind::kCpuAccess:
        ++summary.cpu_accesses;
        break;
    }
    summary.duration = std::max(summary.duration, record.time);
  }
  summary.distinct_pages = pages.size();
  return summary;
}

std::vector<CdfPoint> PopularityCdf(const Trace& trace) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const TraceRecord& record : trace) {
    if (record.kind == TraceEventKind::kCpuAccess) continue;
    ++counts[record.page];
    ++total;
  }

  std::vector<CdfPoint> cdf;
  cdf.push_back(CdfPoint{0.0, 0.0});
  if (total == 0) return cdf;

  std::vector<std::uint64_t> sorted;
  sorted.reserve(counts.size());
  // dmasim-lint: allow(unordered-iteration) -- sorted before consumption.
  for (const auto& [page, count] : counts) sorted.push_back(count);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  const double pages = static_cast<double>(sorted.size());
  std::uint64_t running = 0;
  std::size_t index = 0;
  for (int percent = 1; percent <= 100; ++percent) {
    const std::size_t target = static_cast<std::size_t>(
        pages * static_cast<double>(percent) / 100.0 + 0.5);
    while (index < sorted.size() && index < target) {
      running += sorted[index];
      ++index;
    }
    cdf.push_back(CdfPoint{static_cast<double>(percent) / 100.0,
                           static_cast<double>(running) /
                               static_cast<double>(total)});
  }
  return cdf;
}

double AccessShareOfTopPages(const std::vector<CdfPoint>& cdf,
                             double page_fraction) {
  DMASIM_EXPECTS(!cdf.empty());
  DMASIM_EXPECTS(page_fraction >= 0.0 && page_fraction <= 1.0);
  // Linear interpolation between bracketing points.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    if (cdf[i].page_fraction >= page_fraction) {
      const CdfPoint& lo = cdf[i - 1];
      const CdfPoint& hi = cdf[i];
      const double span = hi.page_fraction - lo.page_fraction;
      if (span <= 0.0) return hi.access_fraction;
      const double w = (page_fraction - lo.page_fraction) / span;
      return lo.access_fraction + w * (hi.access_fraction - lo.access_fraction);
    }
  }
  return cdf.back().access_fraction;
}

}  // namespace dmasim
