// Workload trace records.
//
// A trace is a time-sorted sequence of client-level events that the server
// layer expands into DMA transfers and processor accesses (Fig. 1 of the
// paper): a client read becomes a network DMA (cache hit) or a disk DMA
// followed by a network DMA (miss); a client write becomes a network DMA
// in and a deferred disk write; a CPU access is a 64-byte cache-line
// reference served by the memory directly.
#ifndef DMASIM_TRACE_TRACE_H_
#define DMASIM_TRACE_TRACE_H_

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace dmasim {

enum class TraceEventKind : int {
  kClientRead = 0,
  kClientWrite,
  kCpuAccess,
};

struct TraceRecord {
  Tick time = 0;
  TraceEventKind kind = TraceEventKind::kClientRead;
  std::uint64_t page = 0;   // Logical page number.
  std::int32_t bytes = 0;   // Payload size (page size or cache line).

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

using Trace = std::vector<TraceRecord>;

// Returns true if records are sorted by non-decreasing time.
bool IsTimeSorted(const Trace& trace);

// Basic aggregate statistics about a trace.
struct TraceSummary {
  std::uint64_t client_reads = 0;
  std::uint64_t client_writes = 0;
  std::uint64_t cpu_accesses = 0;
  Tick duration = 0;
  std::uint64_t distinct_pages = 0;

  double ReadsPerMs() const {
    return duration > 0 ? static_cast<double>(client_reads) /
                              (static_cast<double>(duration) / kMillisecond)
                        : 0.0;
  }
  double CpuAccessesPerMs() const {
    return duration > 0 ? static_cast<double>(cpu_accesses) /
                              (static_cast<double>(duration) / kMillisecond)
                        : 0.0;
  }
};

TraceSummary Summarize(const Trace& trace);

// Popularity CDF point: the most popular `page_fraction` of referenced
// pages receive `access_fraction` of all DMA-triggering accesses.
struct CdfPoint {
  double page_fraction = 0.0;
  double access_fraction = 0.0;
};

// Computes the popularity CDF of client read/write events (Fig. 4).
// Returns points at each integer percent of pages, plus (0, 0).
std::vector<CdfPoint> PopularityCdf(const Trace& trace);

// Fraction of accesses covered by the top `page_fraction` of pages
// (interpolated from the CDF).
double AccessShareOfTopPages(const std::vector<CdfPoint>& cdf,
                             double page_fraction);

}  // namespace dmasim

#endif  // DMASIM_TRACE_TRACE_H_
