// Text serialization of traces.
//
// Format: one record per line, `<time_ps> <kind> <page> <bytes>` where
// kind is R (client read), W (client write), or C (CPU access). Lines
// starting with '#' are comments. The format is deliberately trivial so
// external traces can be converted into it with a one-line awk script.
#ifndef DMASIM_TRACE_TRACE_IO_H_
#define DMASIM_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace dmasim {

// Writes `trace` to `os`. Returns the number of records written.
std::size_t WriteTrace(const Trace& trace, std::ostream& os);

// Parses a trace from `is`. Returns false (and leaves `out` untouched) on
// malformed input; `error` receives a diagnostic if non-null.
bool ReadTrace(std::istream& is, Trace* out, std::string* error = nullptr);

}  // namespace dmasim

#endif  // DMASIM_TRACE_TRACE_IO_H_
