#include "trace/zipf.h"

#include <cmath>

#include "util/check.h"

namespace dmasim {

double ZipfTopShare(std::uint64_t n, double alpha, double top_fraction) {
  DMASIM_EXPECTS(n > 0);
  DMASIM_EXPECTS(top_fraction >= 0.0 && top_fraction <= 1.0);
  const std::uint64_t top =
      static_cast<std::uint64_t>(top_fraction * static_cast<double>(n) + 0.5);
  double top_sum = 0.0;
  double total = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double w = std::pow(static_cast<double>(k), -alpha);
    total += w;
    if (k <= top) top_sum += w;
  }
  return total > 0.0 ? top_sum / total : 0.0;
}

double FitZipfAlpha(std::uint64_t n, double top_fraction,
                    double target_share) {
  DMASIM_EXPECTS(target_share >= top_fraction);  // alpha >= 0 territory.
  DMASIM_EXPECTS(target_share <= 1.0);
  double lo = 0.0;
  double hi = 4.0;
  for (int iteration = 0; iteration < 48; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (ZipfTopShare(n, mid, top_fraction) < target_share) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ZipfPagePicker::ZipfPagePicker(std::uint64_t pages, double alpha)
    : pages_(pages), alpha_(alpha) {
  DMASIM_EXPECTS(pages > 0);
  DMASIM_EXPECTS((pages & (pages - 1)) == 0);  // Power of two.
  DMASIM_EXPECTS(alpha >= 0.0);
}

std::uint64_t ZipfPagePicker::PageForRank(std::uint64_t rank) const {
  DMASIM_EXPECTS(rank < pages_);
  // Multiplication by an odd constant is a bijection mod 2^k.
  return (rank * 0x9E3779B97F4A7C15ULL) & (pages_ - 1);
}

std::uint64_t ZipfPagePicker::Pick(Rng& rng) const {
  return PageForRank(rng.NextZipf(pages_, alpha_));
}

}  // namespace dmasim
