// Queued disk and disk-array models.
//
// Stand-in for DiskSim (see DESIGN.md substitutions): the experiments need
// realistic multi-millisecond miss penalties and disk-DMA injection, not
// head-scheduling fidelity. Each disk serves requests FIFO with
//   service = controller overhead + seek + rotational latency + transfer,
// where seek is drawn uniformly around the average seek time and
// rotational latency uniformly in [0, one revolution).
#ifndef DMASIM_DISK_DISK_MODEL_H_
#define DMASIM_DISK_DISK_MODEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/inline_function.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/random.h"
#include "util/time.h"

namespace dmasim {

struct DiskParams {
  Tick controller_overhead = 200 * kMicrosecond;
  Tick average_seek = 4500 * kMicrosecond;  // ~4.5 ms (10k RPM class disk).
  double rpm = 10000.0;
  double transfer_bytes_per_second = 80.0e6;  // Media transfer rate.

  Tick FullRotation() const {
    return SecondsToTicks(60.0 / rpm);
  }
};

// A single disk with a FIFO queue.
class Disk {
 public:
  Disk(Simulator* simulator, const DiskParams& params, std::uint64_t seed);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Queues a read/write of `bytes`; `on_complete` runs at media completion.
  void Submit(std::int64_t bytes, SmallFunction<void(Tick)> on_complete);

  std::uint64_t RequestsServed() const { return served_; }
  std::size_t QueueDepth() const { return queue_.size(); }
  Tick BusyTime() const { return busy_time_; }

 private:
  struct Request {
    std::int64_t bytes;
    SmallFunction<void(Tick)> on_complete;
  };

  void StartNext();
  void ServeRequest(Request request);
  void ServeDone();
  Tick ServiceTime(std::int64_t bytes);

  Simulator* simulator_;
  DiskParams params_;
  Rng rng_;
  std::deque<Request> queue_;
  // The request on the media; the completion event captures only `this`.
  Request active_{};
  bool busy_ = false;
  std::uint64_t served_ = 0;
  Tick busy_time_ = 0;
};

// A striped array: request for page P goes to disk (P mod disk count).
class DiskArray {
 public:
  DiskArray(Simulator* simulator, const DiskParams& params, int disks,
            std::uint64_t seed);

  // Reads `bytes` belonging to logical `page`.
  void Read(std::uint64_t page, std::int64_t bytes,
            SmallFunction<void(Tick)> on_complete);

  int DiskCount() const { return static_cast<int>(disks_.size()); }
  const Disk& disk(int index) const { return *disks_[index]; }

 private:
  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace dmasim

#endif  // DMASIM_DISK_DISK_MODEL_H_
