#include "disk/disk_model.h"

#include <memory>
#include <utility>

namespace dmasim {

Disk::Disk(Simulator* simulator, const DiskParams& params, std::uint64_t seed)
    : simulator_(simulator), params_(params), rng_(seed) {
  DMASIM_EXPECTS(params.transfer_bytes_per_second > 0.0);
  DMASIM_EXPECTS(params.rpm > 0.0);
}

void Disk::Submit(std::int64_t bytes, SmallFunction<void(Tick)> on_complete) {
  DMASIM_EXPECTS(bytes > 0);
  if (!busy_ && queue_.empty()) {
    // Idle disk: StartNext would pop back this very request, so skip the
    // queue round-trip. Keeps the deque empty (and allocation-free) for
    // the common uncontended case.
    ServeRequest(Request{bytes, std::move(on_complete)});
    return;
  }
  queue_.push_back(Request{bytes, std::move(on_complete)});
  if (!busy_) StartNext();
}

Tick Disk::ServiceTime(std::int64_t bytes) {
  // Seek uniformly within +/-80% of the average; rotation uniform in one
  // revolution; then a sequential media transfer.
  const double seek_scale = 0.2 + 1.6 * rng_.NextDouble();
  const Tick seek =
      static_cast<Tick>(seek_scale * static_cast<double>(params_.average_seek));
  const Tick rotation = static_cast<Tick>(
      rng_.NextDouble() * static_cast<double>(params_.FullRotation()));
  const Tick transfer = TransferTime(bytes, params_.transfer_bytes_per_second);
  return params_.controller_overhead + seek + rotation + transfer;
}

void Disk::StartNext() {
  DMASIM_CHECK(!busy_);
  DMASIM_CHECK(!queue_.empty());
  Request request = std::move(queue_.front());
  queue_.pop_front();
  ServeRequest(std::move(request));
}

void Disk::ServeRequest(Request request) {
  busy_ = true;
  const Tick service = ServiceTime(request.bytes);
  busy_time_ += service;
  active_ = std::move(request);
  simulator_->ScheduleAfter(service, [this]() { ServeDone(); });
}

void Disk::ServeDone() {
  // Move the request out first: starting the next one reuses the slot.
  Request request = std::move(active_);
  busy_ = false;
  ++served_;
  if (!queue_.empty()) StartNext();
  if (request.on_complete) request.on_complete(simulator_->Now());
}

DiskArray::DiskArray(Simulator* simulator, const DiskParams& params, int disks,
                     std::uint64_t seed) {
  DMASIM_EXPECTS(disks > 0);
  disks_.reserve(static_cast<std::size_t>(disks));
  for (int i = 0; i < disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(simulator, params,
                                            seed + static_cast<std::uint64_t>(i)));
  }
}

void DiskArray::Read(std::uint64_t page, std::int64_t bytes,
                     SmallFunction<void(Tick)> on_complete) {
  Disk& disk = *disks_[page % disks_.size()];
  disk.Submit(bytes, std::move(on_complete));
}

}  // namespace dmasim
