#include "util/random.h"

#include <cmath>

namespace dmasim {

double Rng::NextExponential(double mean) {
  DMASIM_EXPECTS(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  // Box-Muller transform; one sample per call keeps the generator state
  // trivially serializable.
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::NextPoisson(double mean) {
  DMASIM_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint64_t count = 0;
    do {
      ++count;
      product *= NextDouble();
    } while (product > limit);
    return count - 1;
  }
  // Normal approximation for large means.
  const double sample = mean + std::sqrt(mean) * NextGaussian();
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double alpha) {
  DMASIM_EXPECTS(n > 0);
  DMASIM_EXPECTS(alpha >= 0.0);
  if (n == 1) return 0;
  if (alpha == 0.0) return NextBounded(n);

  // Rejection-inversion sampling (Hormann & Derflinger 1996) for the
  // unnormalized weights (k+1)^-alpha, k in [0, n).
  const double nd = static_cast<double>(n);
  auto h = [alpha](double x) {
    // Integral of t^-alpha: handles alpha == 1 separately.
    if (alpha == 1.0) return std::log(x);
    return std::pow(x, 1.0 - alpha) / (1.0 - alpha);
  };
  auto h_inverse = [alpha](double x) {
    if (alpha == 1.0) return std::exp(x);
    return std::pow(x * (1.0 - alpha), 1.0 / (1.0 - alpha));
  };

  const double h_x0 = h(0.5) - std::pow(1.0, -alpha);
  const double h_n = h(nd + 0.5);
  const double s = 1.0 - h_inverse(h(1.5) - std::pow(2.0, -alpha));

  for (;;) {
    const double u = h_x0 + NextDouble() * (h_n - h_x0);
    const double x = h_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    if (k - x <= s || u >= h(k + 0.5) - std::pow(k, -alpha)) {
      return static_cast<std::uint64_t>(k) - 1;
    }
  }
}

}  // namespace dmasim
