// Simulation time base.
//
// All simulated time is integer picoseconds (`Tick`). A 1600 MHz RDRAM
// memory cycle is exactly 625 ps, so memory-cycle arithmetic is exact;
// disk latencies in milliseconds still fit comfortably in 64 bits
// (int64 picoseconds covers ~106 days).
#ifndef DMASIM_UTIL_TIME_H_
#define DMASIM_UTIL_TIME_H_

#include <cstdint>

namespace dmasim {

using Tick = std::int64_t;

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1000;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

// Converts picoseconds to seconds as a double (for energy integration).
constexpr double TicksToSeconds(Tick t) {
  return static_cast<double>(t) * 1e-12;
}

// Converts seconds to the nearest tick, rounding half away from zero.
// Symmetric in sign: -1.5 ps rounds to -2 ticks, not -1 (a bare `+ 0.5`
// would round negative inputs toward +inf).
constexpr Tick SecondsToTicks(double seconds) {
  return static_cast<Tick>(seconds * 1e12 + (seconds >= 0.0 ? 0.5 : -0.5));
}

// Converts a byte count and a bandwidth in bytes/second to a duration.
constexpr Tick TransferTime(std::int64_t bytes, double bytes_per_second) {
  return SecondsToTicks(static_cast<double>(bytes) / bytes_per_second);
}

}  // namespace dmasim

#endif  // DMASIM_UTIL_TIME_H_
