// Unit-safe physical quantities (DESIGN.md §17).
//
// Every number the simulator trades in is a dimensioned quantity —
// picosecond durations, milliwatt state powers, joule energy buckets,
// byte counts, byte-per-second rates. This header gives each dimension a
// zero-overhead strong type so that a `mw * ticks` product passed where
// joules are expected, or a seconds/ticks mixup, is a compile error
// instead of a silently corrupted energy figure.
//
// Design rules (enforced by static_asserts below and tools/lint/
// unitcheck.py over the hot directories):
//   * No implicit cross-unit construction or conversion: every type has
//     an explicit single-argument constructor and exposes its raw value
//     only through a named accessor (`value()` / `joules()` / ...).
//   * Cross-dimension products exist only as named conversion functions
//     (`EnergyOver`, `TransferDuration`, `SecondsOf`, `TicksOf`), never
//     as operators. Same-dimension arithmetic (sum of energies, ratio of
//     two powers) is an operator because it stays inside the dimension.
//   * Each wrapper is trivially copyable, standard layout, and exactly
//     the size of its raw representation, so codegen is byte-identical
//     to the raw arithmetic it replaces and every committed artifact /
//     pinned FNV checksum keeps its exact bytes.
//   * Raw numerics live only at explicitly audited edges: the Table 1 /
//     DDR4 calibration literals (mem/power_model.h, chip_power_model.cc),
//     JSON artifact serialization (exp/result_sink.cc), fingerprinting
//     (server/fleet_driver.cc), trace parsing, and the simulator calendar
//     (absolute timestamps stay `Tick`; only *durations* are `Ticks`).
//
// The conversion math forwards to util/time.h so the double-precision
// results are bit-for-bit the historical values.
#ifndef DMASIM_UTIL_UNITS_H_
#define DMASIM_UTIL_UNITS_H_

#include <compare>
#include <cstdint>
#include <type_traits>

#include "util/time.h"

namespace dmasim {

// A span of simulated time in integer picoseconds. Strong wrapper over
// the raw `Tick` time base: absolute calendar timestamps remain `Tick`
// (the simulator's audited edge), while quantities that mean "how long"
// — transition latencies, policy idle thresholds, accounting intervals —
// carry this type. `Simulator::ScheduleAfter` accepts it directly.
class Ticks {
 public:
  Ticks() = default;
  constexpr explicit Ticks(Tick value) : value_(value) {}

  constexpr Tick value() const { return value_; }

  constexpr Ticks operator+(Ticks other) const {
    return Ticks(value_ + other.value_);
  }
  constexpr Ticks operator-(Ticks other) const {
    return Ticks(value_ - other.value_);
  }
  constexpr Ticks& operator+=(Ticks other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Ticks operator*(std::int64_t scale) const {
    return Ticks(value_ * scale);
  }
  friend constexpr Ticks operator*(std::int64_t scale, Ticks t) {
    return Ticks(scale * t.value_);
  }
  constexpr bool operator==(const Ticks&) const = default;
  constexpr auto operator<=>(const Ticks&) const = default;

 private:
  Tick value_ = 0;
};

// Wall-of-simulation time in seconds, as a double. Exists so the
// ticks<->seconds conversion edge is spelled out in types instead of a
// bare double that could equally be milliseconds or a ratio.
class Seconds {
 public:
  Seconds() = default;
  constexpr explicit Seconds(double value) : value_(value) {}

  constexpr double value() const { return value_; }

  constexpr bool operator==(const Seconds&) const = default;
  constexpr auto operator<=>(const Seconds&) const = default;

 private:
  double value_ = 0.0;
};

// Electrical power in milliwatts (the unit of Table 1 and every chip
// model's calibration). Sums and dimensionless scaling stay power;
// dividing two powers yields a dimensionless ratio. Power x time makes
// energy only through `EnergyOver`.
class MilliwattPower {
 public:
  MilliwattPower() = default;
  constexpr explicit MilliwattPower(double mw) : mw_(mw) {}

  constexpr double milliwatts() const { return mw_; }

  constexpr MilliwattPower operator+(MilliwattPower other) const {
    return MilliwattPower(mw_ + other.mw_);
  }
  constexpr MilliwattPower operator-(MilliwattPower other) const {
    return MilliwattPower(mw_ - other.mw_);
  }
  constexpr MilliwattPower operator*(double scale) const {
    return MilliwattPower(mw_ * scale);
  }
  friend constexpr MilliwattPower operator*(double scale, MilliwattPower p) {
    return MilliwattPower(scale * p.mw_);
  }
  // Ratio of two powers (dimensionless; the corrected-RDRAM chained-edge
  // scaling and the audit envelopes use this).
  constexpr double operator/(MilliwattPower other) const {
    return mw_ / other.mw_;
  }
  constexpr bool operator==(const MilliwattPower&) const = default;
  constexpr auto operator<=>(const MilliwattPower&) const = default;

 private:
  double mw_ = 0.0;
};

// Energy in joules. The accumulation unit of EnergyBreakdown and the
// auditor's shadow sums; produced from power only via `EnergyOver`.
class JoulesEnergy {
 public:
  JoulesEnergy() = default;
  constexpr explicit JoulesEnergy(double joules) : joules_(joules) {}

  constexpr double joules() const { return joules_; }

  constexpr JoulesEnergy operator+(JoulesEnergy other) const {
    return JoulesEnergy(joules_ + other.joules_);
  }
  constexpr JoulesEnergy operator-(JoulesEnergy other) const {
    return JoulesEnergy(joules_ - other.joules_);
  }
  constexpr JoulesEnergy& operator+=(JoulesEnergy other) {
    joules_ += other.joules_;
    return *this;
  }
  constexpr JoulesEnergy operator*(double scale) const {
    return JoulesEnergy(joules_ * scale);
  }
  friend constexpr JoulesEnergy operator*(double scale, JoulesEnergy e) {
    return JoulesEnergy(scale * e.joules_);
  }
  // Ratio of two energies (dimensionless; savings figures are 1 - e/e0).
  constexpr double operator/(JoulesEnergy other) const {
    return joules_ / other.joules_;
  }
  constexpr bool operator==(const JoulesEnergy&) const = default;
  constexpr auto operator<=>(const JoulesEnergy&) const = default;

 private:
  double joules_ = 0.0;
};

// A count of bytes (request sizes, burst lengths). Integer, exact.
class ByteCount {
 public:
  ByteCount() = default;
  constexpr explicit ByteCount(std::int64_t count) : count_(count) {}

  constexpr std::int64_t count() const { return count_; }

  constexpr ByteCount operator+(ByteCount other) const {
    return ByteCount(count_ + other.count_);
  }
  constexpr ByteCount operator-(ByteCount other) const {
    return ByteCount(count_ - other.count_);
  }
  constexpr ByteCount operator*(std::int64_t scale) const {
    return ByteCount(count_ * scale);
  }
  constexpr bool operator==(const ByteCount&) const = default;
  constexpr auto operator<=>(const ByteCount&) const = default;

 private:
  std::int64_t count_ = 0;
};

// A data rate in bytes per second (bus/link/disk bandwidths). The
// derived tick-rate helper: bytes / rate -> Ticks via TransferDuration.
class BytesPerSecond {
 public:
  BytesPerSecond() = default;
  constexpr explicit BytesPerSecond(double rate) : rate_(rate) {}

  constexpr double value() const { return rate_; }

  constexpr bool operator==(const BytesPerSecond&) const = default;
  constexpr auto operator<=>(const BytesPerSecond&) const = default;

 private:
  double rate_ = 0.0;
};

// --- Named cross-dimension conversions ----------------------------------
// These four functions are the only places in the tree where one
// dimension becomes another. Each forwards to the util/time.h raw helper
// so the double-precision result is bit-for-bit the historical value.

// mW x duration -> J. The single power-to-energy edge: integrating
// `power` over `duration` of simulated time.
constexpr JoulesEnergy EnergyOver(MilliwattPower power, Ticks duration) {
  return JoulesEnergy(power.milliwatts() * 1e-3 *
                      TicksToSeconds(duration.value()));
}

// Duration -> seconds (for energy integration and report formatting).
constexpr Seconds SecondsOf(Ticks duration) {
  return Seconds(TicksToSeconds(duration.value()));
}

// Seconds -> nearest duration in ticks (symmetric round-half-away).
constexpr Ticks TicksOf(Seconds seconds) {
  return Ticks(SecondsToTicks(seconds.value()));
}

// bytes / rate -> duration: time to move `bytes` at `rate`.
constexpr Ticks TransferDuration(ByteCount bytes, BytesPerSecond rate) {
  return Ticks(TransferTime(bytes.count(), rate.value()));
}

// --- Zero-overhead pins -------------------------------------------------
// The wrappers must be layout-identical to their raw representations so
// the strong types compile out: same size, trivially copyable, standard
// layout. A change that breaks any of these would show up as codegen and
// perf-gate drift before it showed up as a review comment.
static_assert(sizeof(Ticks) == sizeof(Tick));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(MilliwattPower) == sizeof(double));
static_assert(sizeof(JoulesEnergy) == sizeof(double));
static_assert(sizeof(ByteCount) == sizeof(std::int64_t));
static_assert(sizeof(BytesPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Ticks>);
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<MilliwattPower>);
static_assert(std::is_trivially_copyable_v<JoulesEnergy>);
static_assert(std::is_trivially_copyable_v<ByteCount>);
static_assert(std::is_trivially_copyable_v<BytesPerSecond>);
static_assert(std::is_standard_layout_v<Ticks>);
static_assert(std::is_standard_layout_v<JoulesEnergy>);
static_assert(std::is_standard_layout_v<MilliwattPower>);
// No implicit cross-unit construction: a raw double/int64 must not
// silently become a quantity, and no quantity converts to another.
static_assert(!std::is_convertible_v<double, MilliwattPower>);
static_assert(!std::is_convertible_v<double, JoulesEnergy>);
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<double, BytesPerSecond>);
static_assert(!std::is_convertible_v<Tick, Ticks>);
static_assert(!std::is_convertible_v<std::int64_t, ByteCount>);
static_assert(!std::is_convertible_v<MilliwattPower, JoulesEnergy>);
static_assert(!std::is_convertible_v<JoulesEnergy, MilliwattPower>);
static_assert(!std::is_convertible_v<Ticks, Seconds>);
static_assert(!std::is_convertible_v<Seconds, Ticks>);

}  // namespace dmasim

#endif  // DMASIM_UTIL_UNITS_H_
