// Deterministic pseudo-random number generation for workload synthesis.
//
// A small xoshiro256** generator seeded via SplitMix64. Deterministic
// across platforms (unlike std::mt19937 distributions), which keeps trace
// generation and therefore experiment results reproducible bit-for-bit.
#ifndef DMASIM_UTIL_RANDOM_H_
#define DMASIM_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace dmasim {

// Stateless 64-bit mix used for seeding.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic random source. Copyable value type.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Returns a uniformly distributed 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Returns a double uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Returns an integer uniform in [0, bound). `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    DMASIM_EXPECTS(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used in workload generation (< 2^32).
    const unsigned __int128 product =
        static_cast<unsigned __int128>(NextU64()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  // Returns an exponentially distributed value with the given mean.
  double NextExponential(double mean);

  // Returns a standard-normal sample (Box-Muller).
  double NextGaussian();

  // Returns a Poisson-distributed count with the given mean (Knuth's
  // method for small means, normal approximation for large ones).
  std::uint64_t NextPoisson(double mean);

  // Returns a value from Zipf(alpha) over {0, ..., n-1} using the
  // rejection-inversion method of Hormann and Derflinger. alpha >= 0;
  // alpha == 0 degenerates to uniform.
  std::uint64_t NextZipf(std::uint64_t n, double alpha);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dmasim

#endif  // DMASIM_UTIL_RANDOM_H_
