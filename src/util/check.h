// Lightweight runtime checking for library invariants and preconditions.
//
// The library does not use exceptions; violated invariants are programming
// errors and abort the process with a diagnostic (Core Guidelines I.5/I.6
// in spirit, Google style in mechanism).
#ifndef DMASIM_UTIL_CHECK_H_
#define DMASIM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dmasim {

// Prints a fatal diagnostic and aborts. Used by the DMASIM_CHECK macros.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const char* condition,
                                           const char* message) {
  std::fprintf(stderr, "dmasim: check failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " -- " : "", message);
  std::abort();
}

}  // namespace dmasim

// Always-on invariant check (cheap comparisons only on hot paths).
#define DMASIM_CHECK(cond)                                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dmasim::FatalCheckFailure(__FILE__, __LINE__, #cond, "");      \
    }                                                                  \
  } while (false)

// Invariant check with an explanatory message.
#define DMASIM_CHECK_MSG(cond, msg)                                    \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dmasim::FatalCheckFailure(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                  \
  } while (false)

// Precondition check for public API boundaries.
#define DMASIM_EXPECTS(cond) DMASIM_CHECK_MSG(cond, "precondition violated")

// Postcondition check.
#define DMASIM_ENSURES(cond) DMASIM_CHECK_MSG(cond, "postcondition violated")

#endif  // DMASIM_UTIL_CHECK_H_
