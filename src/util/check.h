// Lightweight runtime checking for library invariants and preconditions.
//
// The library does not use exceptions; violated invariants are programming
// errors and abort the process with a diagnostic (Core Guidelines I.5/I.6
// in spirit, Google style in mechanism).
//
// The comparison macros (DMASIM_CHECK_EQ and friends) print both operand
// values on failure — a plain DMASIM_CHECK(a == b) only prints the
// condition text, which is useless for diagnosing *how far* two
// quantities diverged (the PR 2 calendar-queue overflow bug surfaced as
// exactly such a valueless causality failure).
#ifndef DMASIM_UTIL_CHECK_H_
#define DMASIM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace dmasim {

// Prints a fatal diagnostic and aborts. Used by the DMASIM_CHECK macros.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const char* condition,
                                           const char* message) {
  std::fprintf(stderr, "dmasim: check failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " -- " : "", message);
  std::abort();
}

namespace internal {

// Renders one operand of a failed comparison into `out`. Covers the value
// categories the simulator compares: integers (including enums, printed
// by underlying value), floating point, booleans, and pointers.
template <typename T>
void FormatCheckOperand(char* out, std::size_t size, const T& value) {
  using Decayed = std::decay_t<T>;
  if constexpr (std::is_same_v<Decayed, bool>) {
    std::snprintf(out, size, "%s", value ? "true" : "false");
  } else if constexpr (std::is_enum_v<Decayed>) {
    std::snprintf(out, size, "%lld",
                  static_cast<long long>(
                      static_cast<std::underlying_type_t<Decayed>>(value)));
  } else if constexpr (std::is_floating_point_v<Decayed>) {
    std::snprintf(out, size, "%.17g", static_cast<double>(value));
  } else if constexpr (std::is_integral_v<Decayed>) {
    if constexpr (std::is_signed_v<Decayed>) {
      std::snprintf(out, size, "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(out, size, "%llu",
                    static_cast<unsigned long long>(value));
    }
  } else if constexpr (std::is_pointer_v<Decayed>) {
    std::snprintf(out, size, "%p", static_cast<const void*>(value));
  } else {
    std::snprintf(out, size, "<unprintable>");
  }
}

template <typename A, typename B>
[[noreturn]] void FatalCheckOpFailure(const char* file, int line,
                                      const char* expression, const A& lhs,
                                      const B& rhs) {
  char lhs_text[64];
  char rhs_text[64];
  FormatCheckOperand(lhs_text, sizeof(lhs_text), lhs);
  FormatCheckOperand(rhs_text, sizeof(rhs_text), rhs);
  std::fprintf(stderr,
               "dmasim: check failed at %s:%d: %s (lhs = %s, rhs = %s)\n",
               file, line, expression, lhs_text, rhs_text);
  std::abort();
}

}  // namespace internal
}  // namespace dmasim

// Always-on invariant check (cheap comparisons only on hot paths).
#define DMASIM_CHECK(cond)                                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dmasim::FatalCheckFailure(__FILE__, __LINE__, #cond, "");      \
    }                                                                  \
  } while (false)

// Invariant check with an explanatory message.
#define DMASIM_CHECK_MSG(cond, msg)                                    \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dmasim::FatalCheckFailure(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                  \
  } while (false)

// Comparison checks that print both operand values on failure. Operands
// are evaluated exactly once.
#define DMASIM_CHECK_OP_(op, a, b)                                         \
  do {                                                                     \
    const auto& dmasim_check_lhs_ = (a);                                   \
    const auto& dmasim_check_rhs_ = (b);                                   \
    if (!(dmasim_check_lhs_ op dmasim_check_rhs_)) {                       \
      ::dmasim::internal::FatalCheckOpFailure(__FILE__, __LINE__,          \
                                              #a " " #op " " #b,           \
                                              dmasim_check_lhs_,           \
                                              dmasim_check_rhs_);          \
    }                                                                      \
  } while (false)

#define DMASIM_CHECK_EQ(a, b) DMASIM_CHECK_OP_(==, a, b)
#define DMASIM_CHECK_NE(a, b) DMASIM_CHECK_OP_(!=, a, b)
#define DMASIM_CHECK_LT(a, b) DMASIM_CHECK_OP_(<, a, b)
#define DMASIM_CHECK_LE(a, b) DMASIM_CHECK_OP_(<=, a, b)
#define DMASIM_CHECK_GT(a, b) DMASIM_CHECK_OP_(>, a, b)
#define DMASIM_CHECK_GE(a, b) DMASIM_CHECK_OP_(>=, a, b)

// Precondition check for public API boundaries.
#define DMASIM_EXPECTS(cond) DMASIM_CHECK_MSG(cond, "precondition violated")

// Postcondition check.
#define DMASIM_ENSURES(cond) DMASIM_CHECK_MSG(cond, "postcondition violated")

#endif  // DMASIM_UTIL_CHECK_H_
