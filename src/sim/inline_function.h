// Small-buffer, type-erased callables for the simulation hot path.
//
// The event kernel schedules millions of tiny closures per simulated
// second; `std::function` heap-allocates most of them and drags a vtable
// dispatch through every invocation. The two templates here keep the
// capture inline in the object:
//
//   * `TrivialCallback<Sig, Cap>` — the event-queue flavor. It only
//     accepts trivially copyable, trivially destructible callables (the
//     static_asserts are the contract), which makes the whole object
//     memcpy-relocatable: the kernel can sort and shift events without
//     running user code.
//   * `InlineFunction<Sig, Cap>` — the completion-callback flavor used by
//     `ChipRequest`, `DmaTransfer`, and the disk model. Move-only, and
//     supports non-trivial captures (a `std::function` handed in by the
//     data-server public API, say) via a manage thunk; trivially copyable
//     captures skip the thunk and are moved with memcpy.
//
// Oversized captures are compile errors, not silent heap fallbacks — that
// is the point: every callback scheduled in-repo must fit, and a new
// too-big capture should fail loudly so the capacity (or the capture) is
// reconsidered.
#ifndef DMASIM_SIM_INLINE_FUNCTION_H_
#define DMASIM_SIM_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/shard_annotations.h"

namespace dmasim {

template <typename Signature, std::size_t Capacity>
class TrivialCallback;

template <typename R, typename... Args, std::size_t Capacity>
class TrivialCallback<R(Args...), Capacity> {
 public:
  TrivialCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TrivialCallback>>>
  TrivialCallback(F&& f) {  // NOLINT: implicit like std::function.
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for the event queue's inline storage; "
                  "shrink the capture (capture a pointer to state) or bump "
                  "the capacity");
    static_assert(alignof(Fn) <= alignof(void*),
                  "capture is over-aligned for inline storage");
    static_assert(std::is_trivially_copyable_v<Fn> &&
                      std::is_trivially_destructible_v<Fn>,
                  "event callbacks must be trivially copyable so events can "
                  "be relocated with memcpy; capture raw pointers/values "
                  "only");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* storage, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(storage)))(
          std::forward<Args>(args)...);
    };
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  // Value-type contents: owned by whatever owns the callback object —
  // inside the sharded engine that is always a single shard's kernel.
  DMASIM_SHARD_LOCAL R (*invoke_)(void*, Args...) = nullptr;
  DMASIM_SHARD_LOCAL alignas(void*) unsigned char storage_[Capacity];
};

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function.
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for inline storage; shrink the capture "
                  "or bump the capacity");
    static_assert(alignof(Fn) <= alignof(void*),
                  "capture is over-aligned for inline storage");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* storage, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(storage)))(
          std::forward<Args>(args)...);
    };
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      // destination == nullptr: destroy source. Otherwise: relocate
      // (move-construct into destination, destroy source).
      manage_ = [](void* destination, void* source) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(source));
        if (destination != nullptr) {
          ::new (destination) Fn(std::move(*from));
        }
        from->~Fn();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, Capacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (invoke_ != nullptr && manage_ != nullptr) {
      manage_(nullptr, storage_);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Value-type contents, same ownership story as TrivialCallback's.
  DMASIM_SHARD_LOCAL R (*invoke_)(void*, Args...) = nullptr;
  DMASIM_SHARD_LOCAL void (*manage_)(void* destination,
                                     void* source) = nullptr;
  DMASIM_SHARD_LOCAL alignas(void*) unsigned char storage_[Capacity];
};

// Capacity shared by the DMA pipeline's completion callbacks: sized to the
// data server's deepest capture (this + three 8-byte values + one 32-byte
// std::function continuation). Keeping it tight matters: these objects sit
// inside ChipRequest and Disk::Request and are moved through queues on
// every DMA-memory request.
template <typename Signature>
using SmallFunction = InlineFunction<Signature, 64>;

}  // namespace dmasim

#endif  // DMASIM_SIM_INLINE_FUNCTION_H_
