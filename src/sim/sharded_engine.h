// Sharded deterministic execution of multiple event kernels.
//
// One simulation is split into shards — one per memory-controller domain,
// each owning its chips, buses, and clients around a private `Simulator`
// — that advance in conservative-lookahead windows:
//
//   1. The coordinator computes the global minimum pending event time
//      across all shards, `t_min`, and a horizon `H = t_min + L` where
//      `L` is the minimum cross-shard latency (bus transfer + controller
//      dispatch; the fleet driver derives it from the remote-hop
//      latency).
//   2. Every shard independently — and, with a thread pool, in parallel
//      — executes all of its events with timestamp < H.
//   3. At the window barrier, cross-shard messages produced during the
//      window are drained from the per-shard SPSC mailboxes, sorted into
//      the deterministic total order (deliver_at, src, send_seq), and
//      handed to the destination shards' handlers, which schedule them
//      as ordinary events.
//
// Safety: any message sent by an event executing at time t carries
// deliver_at >= t + L >= t_min + L = H, so no shard can have advanced
// past a delivery time — conservative synchronization needs no rollback.
// Determinism: the window sequence is a pure function of shard states at
// barriers, every shard's intra-window execution keeps the kernel's
// exact (time, seq) order, and barrier delivery order is sorted on a
// total key — so an N-thread run is bit-identical to a 1-thread run of
// the same shard set, which is what the pinned-checksum suites assert.
//
// That contract is machine-checked three ways (DESIGN.md §15): the
// `shardcheck` static pass enforces the ownership annotations below, a
// `DMASIM_SCHED_FUZZ` build perturbs the schedule and re-asserts the
// fingerprint, and `dmasim_check --shard` exhaustively explores barrier
// drain orders. `Options::fault` seeds deliberate violations so each
// layer can prove it would catch a real one. See DESIGN.md section 14.
#ifndef DMASIM_SIM_SHARDED_ENGINE_H_
#define DMASIM_SIM_SHARDED_ENGINE_H_

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "sim/inline_function.h"
#include "sim/sched_fuzz.h"
#include "sim/shard_annotations.h"
#include "sim/simulator.h"
#include "sim/spsc_mailbox.h"
#include "util/check.h"
#include "util/time.h"

namespace dmasim {

class ThreadPool;  // exp/thread_pool.h; only the .cc needs the definition.

// One cross-shard event. The engine routes and orders it; the meaning of
// `kind` and the payload words belongs to the shard handlers (the fleet
// driver uses them for remote client requests and their replies).
// shardcheck: allow(unannotated-member) -- POD message value, owned by
// whichever side currently holds the copy.
struct ShardMessage {
  Tick deliver_at = 0;
  std::uint64_t send_seq = 0;  // Per-source sequence, assigned by Send.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<ShardMessage>);

// Deliberate single-point violations of the synchronization protocol,
// compiled in always but inert at kNone. They exist so the proof kit's
// three layers can demonstrate detection (ISSUE: "seed >= 2 faults and
// pin that all three layers catch what they should"); production code
// never sets them.
enum class EngineFault : int {
  kNone = 0,
  // Skip the barrier sort: deliver in raw drain order, so the delivery
  // order (and everything downstream of same-tick ties) depends on the
  // drain permutation instead of the total key.
  kSkipBarrierSort,
  // Rewrite shard 0's first in-window send to deliver_at = horizon - 1:
  // one tick inside the lookahead horizon, i.e. into a window the other
  // shards have already executed.
  kDeliverEarly,
};

// Stable names used by CLIs and counterexample files.
const char* EngineFaultName(EngineFault fault);
bool ParseEngineFault(std::string_view text, EngineFault* out);

// Coordinator-side observation and drain-order override points. Every
// hook runs on the coordinating thread while workers are parked, so
// implementations need no synchronization of their own. `ShardAudit`
// (src/audit/shard_audit.h) checks invariants through this seam and the
// model checker's `ShardHarness` scripts drain orders through it.
class BarrierHooks {
 public:
  virtual ~BarrierHooks() = default;
  // Start of window `window` (0-based), before workers are released.
  virtual void OnWindowStart(std::uint64_t window, Tick horizon) {
    (void)window;
    (void)horizon;
  }
  // At the barrier after `window`, before draining. `drain_order` holds
  // every shard index once; the hook may permute it (the sorted total
  // delivery order must make any permutation equivalent).
  virtual void OnBarrier(std::uint64_t window, std::vector<int>* drain_order) {
    (void)window;
    (void)drain_order;
  }
  // One call per drained message, in drain (pre-sort) order.
  virtual void OnDrained(const ShardMessage& message) { (void)message; }
  // One call per delivered message, in delivery order.
  virtual void OnDeliver(const ShardMessage& message) { (void)message; }
};

class ShardedEngine {
 public:
  // Delivery handler: runs at the window barrier (single-threaded, in
  // the deterministic delivery order) and typically schedules an event
  // into the destination shard's simulator at `message.deliver_at`.
  using MessageHandler = TrivialCallback<void(const ShardMessage&), 24>;

  // shardcheck: allow(unannotated-member) -- value type; the engine's
  // copy is the annotated options_ member.
  struct Options {
    // Conservative lookahead L: the minimum cross-shard latency. Every
    // Send's deliver_at must be >= the current window horizon, which
    // Send enforces. Required > 0 when more than one shard runs.
    Tick lookahead = 0;
    // Per-shard outbox ring capacity; overflow spills (counted, never
    // dropped or reordered).
    std::size_t mailbox_capacity = 1024;
    // Record every delivered message in delivery order (the golden
    // replay tests pin this log).
    bool record_deliveries = false;
    // Record one FNV-1a digest per window over (horizon, per-shard
    // executed-event deltas, delivered messages in delivery order).
    // Comparing two runs' digest vectors localizes a divergence to its
    // first mismatching window (`fleet_scenario --window-digests`).
    bool record_window_digests = false;
    // Seeded protocol violation for the determinism proof kit; kNone in
    // production.
    EngineFault fault = EngineFault::kNone;
    // Barrier observation / drain-order override; not owned, may be
    // null. All hook calls happen on the coordinator thread.
    BarrierHooks* hooks = nullptr;
    // DMASIM_SCHED_FUZZ builds only: nonzero seeds the schedule
    // perturbation (worker backoff, permuted window submit order,
    // permuted pre-sort drain order). Run() refuses a nonzero seed in
    // ordinary builds so a fuzz campaign can't silently run unperturbed.
    std::uint64_t sched_fuzz_seed = 0;
  };

  // shardcheck: allow(unannotated-member) -- value type; the engine's
  // copy is the annotated stats_ member.
  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t delivered_messages = 0;
    std::uint64_t mailbox_spills = 0;      // Refreshed at every barrier.
    std::uint64_t max_mailbox_occupancy = 0;  // Ditto.
  };

  explicit ShardedEngine(const Options& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Registers a shard (its simulator outlives the engine) and returns
  // the shard index. All shards must be added before Run.
  DMASIM_BARRIER_ONLY int AddShard(Simulator* simulator,
                                   MessageHandler handler);

  // Sends a cross-shard message. Called only from the shard `src`'s
  // worker during its window (or between windows on the coordinator).
  // `deliver_at` must respect the lookahead — at or past the current
  // window horizon — which is checked, not assumed.
  void Send(int src, int dst, Tick deliver_at, std::uint32_t kind,
            std::uint64_t a, std::uint64_t b, std::uint64_t c);

  // Runs every shard's events with timestamp <= `until` to completion
  // (including events created by cross-shard deliveries), leaving each
  // shard's clock at its own last executed event. `pool` may be null —
  // or the shard count 1 — in which case windows execute serially in
  // shard order; the results are bit-identical either way.
  DMASIM_BARRIER_ONLY void Run(Tick until, ThreadPool* pool);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const Stats& stats() const { return stats_; }
  // Events executed by shard `s` across all windows.
  std::uint64_t ShardWindowEvents(int s) const {
    return shards_[static_cast<std::size_t>(s)].window_events;
  }
  const SpscMailbox<ShardMessage>::Stats& MailboxStats(int s) const {
    return shards_[static_cast<std::size_t>(s)].outbox.stats();
  }
  // Delivered messages in delivery order (empty unless
  // Options::record_deliveries).
  const std::vector<ShardMessage>& deliveries() const { return deliveries_; }
  // One digest per window (empty unless Options::record_window_digests).
  const std::vector<std::uint64_t>& window_digests() const {
    return window_digests_;
  }

 private:
  struct Shard {
    explicit Shard(Simulator* sim, MessageHandler h,
                   std::size_t mailbox_capacity)
        : simulator(sim), handler(h), outbox(mailbox_capacity) {}
    // The shard's private event kernel; only its own worker touches it
    // during a window.
    DMASIM_SHARD_LOCAL Simulator* simulator;
    // Invoked only at the barrier, in delivery order.
    DMASIM_BARRIER_ONLY MessageHandler handler;
    // SPSC: Push is the worker (producer) side; Drain runs at the
    // barrier (consumer side, annotated on the method).
    DMASIM_SHARD_LOCAL SpscMailbox<ShardMessage> outbox;
    DMASIM_SHARD_LOCAL std::uint64_t next_send_seq = 0;
    DMASIM_SHARD_LOCAL std::uint64_t window_events = 0;
  };

  // shardcheck: window-context
  void RunWindow(Shard* shard, Tick horizon, std::uint64_t window,
                 int index) {
#if DMASIM_SCHED_FUZZ
    if (options_.sched_fuzz_seed != 0) FuzzBackoff(window, index);
#else
    (void)window;
    (void)index;
#endif
    shard->window_events += shard->simulator->RunEventsBefore(horizon);
  }
  // Drains all outboxes, sorts, and invokes destination handlers.
  DMASIM_BARRIER_ONLY void DeliverMail(std::uint64_t window, Tick horizon);
  DMASIM_BARRIER_ONLY void RefreshMailboxStats();
#if DMASIM_SCHED_FUZZ
  // Worker-side: deterministic per-(window, shard) yield/spin, derived
  // from the seed with no shared PRNG state.
  void FuzzBackoff(std::uint64_t window, int index);
  // Coordinator-side Fisher-Yates driven by fuzz_state_.
  DMASIM_BARRIER_ONLY void FuzzPermute(std::vector<int>* order);
#endif

  // Fixed at construction; read-only everywhere after.
  DMASIM_SHARED_CONST Options options_;
  // Deque for stable addresses, no moves. The container's shape is
  // frozen during Run (AddShard is refused); each element's mutable
  // state is per-shard (see Shard).
  DMASIM_SHARED_CONST std::deque<Shard> shards_;
  // Window horizon, written by the coordinator between windows and read
  // by Send on worker threads during windows (the barrier orders the
  // accesses; no concurrent write can exist).
  DMASIM_SHARED_CONST Tick current_horizon_ = 0;
  // Set once by shard 0's first faulted Send (single writer: only shard
  // 0's worker reads or writes it, in Send).
  DMASIM_SHARD_LOCAL bool fault_fired_ = false;
  DMASIM_BARRIER_ONLY bool running_ = false;
  // DeliverMail working space.
  DMASIM_BARRIER_ONLY std::vector<ShardMessage> pending_;
  DMASIM_BARRIER_ONLY std::vector<int> drain_order_;
  DMASIM_BARRIER_ONLY std::vector<ShardMessage> deliveries_;
  DMASIM_BARRIER_ONLY std::vector<std::uint64_t> window_digests_;
  // Per-shard window_events snapshot from the previous barrier, for the
  // per-window executed-event deltas in the digest.
  DMASIM_BARRIER_ONLY std::vector<std::uint64_t> prev_window_events_;
  DMASIM_BARRIER_ONLY Stats stats_;
#if DMASIM_SCHED_FUZZ
  DMASIM_BARRIER_ONLY std::uint64_t fuzz_state_ = 0;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_SIM_SHARDED_ENGINE_H_
