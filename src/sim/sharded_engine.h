// Sharded deterministic execution of multiple event kernels.
//
// One simulation is split into shards — one per memory-controller domain,
// each owning its chips, buses, and clients around a private `Simulator`
// — that advance in conservative-lookahead windows:
//
//   1. The coordinator computes the global minimum pending event time
//      across all shards, `t_min`, and a horizon `H = t_min + L` where
//      `L` is the minimum cross-shard latency (bus transfer + controller
//      dispatch; the fleet driver derives it from the remote-hop
//      latency).
//   2. Every shard independently — and, with a thread pool, in parallel
//      — executes all of its events with timestamp < H.
//   3. At the window barrier, cross-shard messages produced during the
//      window are drained from the per-shard SPSC mailboxes, sorted into
//      the deterministic total order (deliver_at, src, send_seq), and
//      handed to the destination shards' handlers, which schedule them
//      as ordinary events.
//
// Safety: any message sent by an event executing at time t carries
// deliver_at >= t + L >= t_min + L = H, so no shard can have advanced
// past a delivery time — conservative synchronization needs no rollback.
// Determinism: the window sequence is a pure function of shard states at
// barriers, every shard's intra-window execution keeps the kernel's
// exact (time, seq) order, and barrier delivery order is sorted on a
// total key — so an N-thread run is bit-identical to a 1-thread run of
// the same shard set, which is what the pinned-checksum suites assert.
// See DESIGN.md section 14.
#ifndef DMASIM_SIM_SHARDED_ENGINE_H_
#define DMASIM_SIM_SHARDED_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/inline_function.h"
#include "sim/simulator.h"
#include "sim/spsc_mailbox.h"
#include "util/check.h"
#include "util/time.h"

namespace dmasim {

class ThreadPool;  // exp/thread_pool.h; only the .cc needs the definition.

// One cross-shard event. The engine routes and orders it; the meaning of
// `kind` and the payload words belongs to the shard handlers (the fleet
// driver uses them for remote client requests and their replies).
struct ShardMessage {
  Tick deliver_at = 0;
  std::uint64_t send_seq = 0;  // Per-source sequence, assigned by Send.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<ShardMessage>);

class ShardedEngine {
 public:
  // Delivery handler: runs at the window barrier (single-threaded, in
  // the deterministic delivery order) and typically schedules an event
  // into the destination shard's simulator at `message.deliver_at`.
  using MessageHandler = TrivialCallback<void(const ShardMessage&), 24>;

  struct Options {
    // Conservative lookahead L: the minimum cross-shard latency. Every
    // Send's deliver_at must be >= the current window horizon, which
    // Send enforces. Required > 0 when more than one shard runs.
    Tick lookahead = 0;
    // Per-shard outbox ring capacity; overflow spills (counted, never
    // dropped or reordered).
    std::size_t mailbox_capacity = 1024;
    // Record every delivered message in delivery order (the golden
    // replay tests pin this log).
    bool record_deliveries = false;
  };

  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t delivered_messages = 0;
    std::uint64_t mailbox_spills = 0;      // Aggregated at Run() exit.
    std::uint64_t max_mailbox_occupancy = 0;
  };

  explicit ShardedEngine(const Options& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Registers a shard (its simulator outlives the engine) and returns
  // the shard index. All shards must be added before Run.
  int AddShard(Simulator* simulator, MessageHandler handler);

  // Sends a cross-shard message. Called only from the shard `src`'s
  // worker during its window (or between windows on the coordinator).
  // `deliver_at` must respect the lookahead — at or past the current
  // window horizon — which is checked, not assumed.
  void Send(int src, int dst, Tick deliver_at, std::uint32_t kind,
            std::uint64_t a, std::uint64_t b, std::uint64_t c);

  // Runs every shard's events with timestamp <= `until` to completion
  // (including events created by cross-shard deliveries), leaving each
  // shard's clock at its own last executed event. `pool` may be null —
  // or the shard count 1 — in which case windows execute serially in
  // shard order; the results are bit-identical either way.
  void Run(Tick until, ThreadPool* pool);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const Stats& stats() const { return stats_; }
  // Events executed by shard `s` across all windows.
  std::uint64_t ShardWindowEvents(int s) const {
    return shards_[static_cast<std::size_t>(s)].window_events;
  }
  const SpscMailbox<ShardMessage>::Stats& MailboxStats(int s) const {
    return shards_[static_cast<std::size_t>(s)].outbox.stats();
  }
  // Delivered messages in delivery order (empty unless
  // Options::record_deliveries).
  const std::vector<ShardMessage>& deliveries() const { return deliveries_; }

 private:
  struct Shard {
    explicit Shard(Simulator* sim, MessageHandler h,
                   std::size_t mailbox_capacity)
        : simulator(sim), handler(h), outbox(mailbox_capacity) {}
    Simulator* simulator;
    MessageHandler handler;
    SpscMailbox<ShardMessage> outbox;
    std::uint64_t next_send_seq = 0;   // Owned by the shard's worker.
    std::uint64_t window_events = 0;   // Ditto.
  };

  void RunWindow(Shard* shard, Tick horizon) {
    shard->window_events += shard->simulator->RunEventsBefore(horizon);
  }
  // Drains all outboxes, sorts, and invokes destination handlers.
  void DeliverMail();

  Options options_;
  std::deque<Shard> shards_;  // Deque: stable addresses, no moves.
  // Window horizon, written by the coordinator between windows and read
  // by Send on worker threads during windows (the barrier orders the
  // accesses; no concurrent write can exist).
  Tick current_horizon_ = 0;
  bool running_ = false;
  std::vector<ShardMessage> pending_;  // DeliverMail working space.
  std::vector<ShardMessage> deliveries_;
  Stats stats_;
};

}  // namespace dmasim

#endif  // DMASIM_SIM_SHARDED_ENGINE_H_
