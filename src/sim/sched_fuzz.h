// Build-mode switch for the schedule-perturbation determinism detector.
//
// A `-DDMASIM_SCHED_FUZZ=1` build compiles scheduling perturbations into
// `ShardedEngine::Run`: with a nonzero `Options::sched_fuzz_seed`, a
// seeded PRNG injects per-(window, shard) start backoff/yields into the
// worker tasks, permutes the order windows are handed to the pool, and
// permutes the pre-sort mailbox drain order at every barrier. None of
// these may change the result — the barrier sort restores the total
// delivery order — so a fuzzed run's fingerprint must be bit-identical
// to the unperturbed run's. Any divergence is a determinism bug (or a
// seeded engine fault; see `ShardedEngine::Options::fault`), and the
// per-window digests (`Options::record_window_digests`) localize it to
// the first mismatching window.
//
// In default builds (DMASIM_SCHED_FUZZ=0) the perturbation code compiles
// out entirely and a nonzero fuzz seed is refused at Run() — a fuzz
// campaign can't silently fall back to the unperturbed schedule.
#ifndef DMASIM_SIM_SCHED_FUZZ_H_
#define DMASIM_SIM_SCHED_FUZZ_H_

#ifndef DMASIM_SCHED_FUZZ
#define DMASIM_SCHED_FUZZ 0
#endif

#endif  // DMASIM_SIM_SCHED_FUZZ_H_
