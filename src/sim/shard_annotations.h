// Ownership annotations for state reachable from sharded-engine worker
// context — the vocabulary of the determinism contract (DESIGN.md §15).
//
// The sharded engine's bit-for-bit determinism rests on a discipline:
// during a window, worker threads may touch only state owned by their
// own shard; everything crossing shards moves through SPSC mailboxes
// and is applied at the barrier in a sorted total order. These macros
// make that discipline *visible in the declaration* so the
// `tools/lint/shardcheck` static pass can enforce it: every mutable
// member of a type in shardcheck scope (`src/sim/`,
// `src/server/fleet_driver.*`) must carry exactly one of them.
//
//   DMASIM_SHARD_LOCAL   Owned by a single shard (equivalently: by the
//                        one worker executing that shard's window, or by
//                        one side of an SPSC pair). Never read or
//                        written by any other thread during a window.
//
//   DMASIM_BARRIER_ONLY  Touched only on the coordinator thread between
//                        windows (at the barrier), while every worker is
//                        parked. On a method, it additionally marks the
//                        method as callable only from barrier context —
//                        shardcheck flags calls from window-context
//                        functions (those marked `// shardcheck:
//                        window-context`).
//
//   DMASIM_SHARED_CONST  Written only while the engine is quiescent (at
//                        setup or between windows, before workers are
//                        released) and read-only to every worker during
//                        a window. Logically const for the window's
//                        duration; the barrier's fork/join provides the
//                        happens-before edge.
//
// The macros expand to nothing — they are parsed by shardcheck, not the
// compiler — so annotating costs zero object code. Waivers use
// `// shardcheck: allow(<rule>)` on or above the offending line.
#ifndef DMASIM_SIM_SHARD_ANNOTATIONS_H_
#define DMASIM_SIM_SHARD_ANNOTATIONS_H_

#define DMASIM_SHARD_LOCAL
#define DMASIM_BARRIER_ONLY
#define DMASIM_SHARED_CONST

#endif  // DMASIM_SIM_SHARD_ANNOTATIONS_H_
