// Bounded single-producer/single-consumer mailbox for cross-shard event
// exchange (see sharded_engine.h).
//
// Usage contract in the sharded engine:
//   * exactly one producer — the worker thread executing the owning
//     shard's window — calls Push() during a window;
//   * exactly one consumer — the coordinating thread at the window
//     barrier — calls Drain() while no window is executing.
// The ring indices are release/acquire atomics so an in-window Push is
// immediately visible to the coordinator's occupancy probes, and the
// barrier's join provides the full happens-before edge for Drain.
//
// The ring is bounded; a Push that finds it full spills into an overflow
// vector owned by the producer side (still SPSC: the consumer only
// touches it inside Drain, which by contract runs while the producer is
// parked at the barrier). Spills are counted — they signal the capacity
// is undersized for the workload's cross-shard chattiness, which the obs
// metrics surface — but they never drop or reorder messages: Drain
// returns ring-then-spill, which preserves the producer's Push order.
#ifndef DMASIM_SIM_SPSC_MAILBOX_H_
#define DMASIM_SIM_SPSC_MAILBOX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/shard_annotations.h"
#include "util/check.h"

namespace dmasim {

template <typename Message>
class SpscMailbox {
  static_assert(std::is_trivially_copyable_v<Message>,
                "mailbox messages cross threads by memcpy");

 public:
  // shardcheck: allow(unannotated-member) -- value type; the mailbox's
  // copy is the annotated stats_ member (producer-side counters).
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t spilled = 0;        // Pushes that missed the ring.
    std::uint64_t max_occupancy = 0;  // Ring + spill high-water mark.
  };

  // Capacity is rounded up to a power of two: the `index % capacity`
  // slot map is only continuous across the 2^64 index wraparound when
  // the capacity divides 2^64, and a discontinuity there would let two
  // in-flight indices share a slot (caught by the wraparound boundary
  // test seeding indices near the wrap).
  explicit SpscMailbox(std::size_t capacity = 1024)
      : ring_(RoundUpToPowerOfTwo(capacity)) {}

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  // Producer side. Never blocks: a full ring spills (bounded-memory
  // callers watch Stats::spilled and size the ring up).
  void Push(const Message& message) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t used = head - tail;
    std::size_t in_ring = used;
    if (used < ring_.size()) {
      ring_[head % ring_.size()] = message;
      head_.store(head + 1, std::memory_order_release);
      ++in_ring;
    } else {
      spill_.push_back(message);
      ++stats_.spilled;
    }
    ++stats_.pushed;
    const std::uint64_t occupancy =
        static_cast<std::uint64_t>(in_ring + spill_.size());
    if (occupancy > stats_.max_occupancy) stats_.max_occupancy = occupancy;
  }

  // Consumer side: appends every pending message to `out` in Push order
  // and empties the mailbox. Must not run concurrently with Push.
  DMASIM_BARRIER_ONLY void Drain(std::vector<Message>* out) {
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (tail != head) {
      out->push_back(ring_[tail % ring_.size()]);
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    for (const Message& message : spill_) out->push_back(message);
    spill_.clear();
  }

  // Messages currently queued (racy by design when probed mid-window;
  // exact between windows).
  std::size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire) + spill_.size();
  }

  std::size_t capacity() const { return ring_.size(); }
  const Stats& stats() const { return stats_; }

  // Test seam: start both indices at `value` so a short test crosses an
  // index wraparound that would otherwise take 2^64 pushes (the
  // `head - tail` arithmetic must be wrap-oblivious). Only valid on an
  // empty mailbox with no consumer attached.
  DMASIM_BARRIER_ONLY void SeedIndicesForTest(std::size_t value) {
    DMASIM_EXPECTS(SizeApprox() == 0);
    head_.store(value, std::memory_order_relaxed);
    tail_.store(value, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t RoundUpToPowerOfTwo(std::size_t n) {
    std::size_t size = 1;
    while (size < n) size *= 2;
    return size;
  }

  // Ring storage is written by the producer and read by the consumer,
  // in disjoint index ranges ordered by the head_/tail_ atomics — each
  // slot is owned by exactly one side at a time.
  DMASIM_SHARD_LOCAL std::vector<Message> ring_;
  // Producer-owned until Drain (which by contract runs while the
  // producer is parked at the barrier).
  DMASIM_SHARD_LOCAL std::vector<Message> spill_;
  // Next write slot; producer-advanced (release), consumer-read.
  DMASIM_SHARD_LOCAL std::atomic<std::size_t> head_{0};
  // Next read slot; consumer-advanced at the barrier (release),
  // producer-read.
  DMASIM_BARRIER_ONLY std::atomic<std::size_t> tail_{0};
  // Producer-written; read at barriers only.
  DMASIM_SHARD_LOCAL Stats stats_;
};

}  // namespace dmasim

#endif  // DMASIM_SIM_SPSC_MAILBOX_H_
