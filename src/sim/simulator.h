// Discrete-event simulation kernel.
//
// The kernel is a min-heap of (time, sequence, callback) events. Sequence
// numbers make event ordering at equal timestamps deterministic (FIFO),
// which keeps every experiment bit-for-bit reproducible.
//
// Components that need to cancel timers (e.g. idle-threshold timers in
// `MemoryChip`) use generation counters: the callback captures the
// generation it was armed with and returns immediately if the component
// has since moved on. This avoids an explicit (and error-prone)
// cancellation API.
#ifndef DMASIM_SIM_SIMULATOR_H_
#define DMASIM_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/time.h"

namespace dmasim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  // Not copyable: events capture component pointers tied to one instance.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  Tick Now() const { return now_; }

  // Schedules `callback` at absolute time `when` (>= Now()).
  void ScheduleAt(Tick when, Callback callback) {
    DMASIM_EXPECTS(when >= now_);
    queue_.push_back(Event{when, next_sequence_++, std::move(callback)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }

  // Schedules `callback` `delay` ticks from now (delay >= 0).
  void ScheduleAfter(Tick delay, Callback callback) {
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Executes the earliest pending event. Returns false if none remain.
  bool Step() {
    if (queue_.empty()) return false;
    // The callback may schedule new events, so extract it first.
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event event = std::move(queue_.back());
    queue_.pop_back();
    DMASIM_CHECK(event.when >= now_);
    now_ = event.when;
    ++executed_;
    event.callback();
    return true;
  }

  // Runs until the event queue is drained.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with timestamps <= `until`, then advances the clock to
  // exactly `until` (even if no event lands there).
  void RunUntil(Tick until) {
    DMASIM_EXPECTS(until >= now_);
    while (!queue_.empty() && queue_.front().when <= until) {
      Step();
    }
    now_ = until;
  }

  // Number of events not yet executed.
  std::size_t PendingEvents() const { return queue_.size(); }

  // Total number of events executed so far (useful for budget checks).
  std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Event {
    Tick when;
    std::uint64_t sequence;
    Callback callback;
  };

  // Heap comparator: std::push_heap/pop_heap keep a max-heap, so "later
  // wins" puts the earliest (time, sequence) event at the front.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  // Explicit binary heap over a vector (std::push_heap / std::pop_heap):
  // unlike std::priority_queue, popping can move from the extracted
  // element without a const_cast.
  std::vector<Event> queue_;
};

}  // namespace dmasim

#endif  // DMASIM_SIM_SIMULATOR_H_
