// Discrete-event simulation kernel.
//
// Events are (time, sequence, callback) triples; sequence numbers make
// event ordering at equal timestamps deterministic (FIFO), which keeps
// every experiment bit-for-bit reproducible.
//
// The queue is a two-level calendar (timer wheel) keyed on `Tick`, not a
// binary heap: schedule and pop are O(1) amortized, and the hot serving
// bucket is a flat sorted vector of trivially-copyable events, so draining
// it is a linear scan. See DESIGN.md "Event kernel internals" for the
// bucketing scheme and the exact-ordering argument.
//
// Components that need to cancel timers (e.g. idle-threshold timers in
// `MemoryChip`) use generation counters: the callback captures the
// generation it was armed with and returns immediately if the component
// has since moved on. This avoids an explicit (and error-prone)
// cancellation API.
#ifndef DMASIM_SIM_SIMULATOR_H_
#define DMASIM_SIM_SIMULATOR_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "audit/audit_config.h"
#include "sim/inline_function.h"
#include "sim/shard_annotations.h"
#include "util/check.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

class Simulator {
 public:
  // Inline storage covers every callback scheduled in-repo (the largest is
  // a test's four-capture lambda at 32 bytes); growth is a compile error.
  using Callback = TrivialCallback<void(), 40>;

  Simulator() = default;

  // Not copyable: events capture component pointers tied to one instance.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  Tick Now() const { return now_; }

  // Schedules `callback` at absolute time `when` (>= Now()).
  void ScheduleAt(Tick when, Callback callback) {
    DMASIM_EXPECTS(when >= now_);
    DMASIM_EXPECTS(callback);
    Insert(Event{when, next_sequence_++, std::move(callback)});
    ++size_;
  }

  // Schedules `callback` `delay` ticks from now (delay >= 0).
  void ScheduleAfter(Tick delay, Callback callback) {
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Typed-duration overload: the calendar itself stays on the raw `Tick`
  // time base (absolute timestamps are its audited edge), but relative
  // delays arrive as strong `Ticks` durations from the typed layers.
  void ScheduleAfter(Ticks delay, Callback callback) {
    ScheduleAt(now_ + delay.value(), std::move(callback));
  }

  // Executes the earliest pending event. Returns false if none remain.
  bool Step() {
    if (!EnsureServing()) return false;
    // The callback may schedule into the serving bucket (reallocating it),
    // so copy the event out first; events are trivially copyable.
    const Event event = serving_[serving_pos_++];
    DMASIM_CHECK_GE(event.when, now_);
#if DMASIM_AUDIT_LEVEL >= 2
    // Calendar-queue FIFO audit: pops must advance in strict
    // (time, sequence) lexicographic order — the property the wheel's
    // bucketing, cascades, and overflow refills all exist to preserve.
    if (stepped_ > 0) {
      DMASIM_CHECK_MSG(event.when > audit_last_when_ ||
                           (event.when == audit_last_when_ &&
                            event.sequence > audit_last_sequence_),
                       "event kernel popped events out of (time, seq) order");
    }
    audit_last_when_ = event.when;
    audit_last_sequence_ = event.sequence;
#endif
    now_ = event.when;
    ++executed_;
    ++stepped_;
    --size_;
    Callback callback = event.callback;
    callback();
    return true;
  }

  // Runs until the event queue is drained.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with timestamps <= `until`, then advances the clock to
  // exactly `until` (even if no event lands there).
  void RunUntil(Tick until) {
    DMASIM_EXPECTS(until >= now_);
    while (EnsureServing() && serving_[serving_pos_].when <= until) {
      Step();
    }
    now_ = until;
  }

  // Runs events with timestamps strictly < `bound` and stops, leaving the
  // clock at the last executed event (it does NOT advance to `bound`).
  // This is the shard-window primitive of the sharded engine: a shard may
  // execute everything before the conservative horizon, but its clock
  // must stay at its own last event so cross-shard deliveries scheduled
  // at the horizon still satisfy ScheduleAt's `when >= Now()` contract.
  // Returns the number of events executed.
  std::uint64_t RunEventsBefore(Tick bound) {
    std::uint64_t ran = 0;
    while (EnsureServing() && serving_[serving_pos_].when < bound) {
      Step();
      ++ran;
    }
    return ran;
  }

  // Timestamp of the earliest pending event, or `kNoPendingEvent` when the
  // queue is empty. Non-destructive, but may rotate the wheel internally
  // (exactly the work the next Step would have done anyway). Components
  // use this to bound speculative fast paths — e.g. chunk-run coalescing
  // only absorbs work that finishes strictly before the next event.
  static constexpr Tick kNoPendingEvent = std::numeric_limits<Tick>::max();
  Tick NextPendingTick() {
    if (!EnsureServing()) return kNoPendingEvent;
    return serving_[serving_pos_].when;
  }

  // Number of events not yet executed.
  std::size_t PendingEvents() const { return size_; }

  // Total number of events executed so far (useful for budget checks).
  // Includes events credited by coalesced fast paths (below), so the
  // count matches the uncoalesced execution.
  std::uint64_t ExecutedEvents() const { return executed_; }

  // Events actually popped from the queue — excludes coalesced credits.
  // ExecutedEvents() - SteppedEvents() is the work saved by coalescing.
  std::uint64_t SteppedEvents() const { return stepped_; }

  // Calendar-queue internals, exposed so shard imbalance and the
  // overflow guard are observable (obs metrics, --metrics-out). Pure
  // counters: reading or exporting them never perturbs execution.
  // shardcheck: allow(unannotated-member) -- value type; the kernel's
  // copy is the annotated calendar_ member.
  struct CalendarStats {
    std::uint64_t bucket_loads = 0;      // Level-0 buckets made serving.
    std::uint64_t cascades = 0;          // Level-1 spans redistributed.
    std::uint64_t overflow_refills = 0;  // Overflow list redistributions.
    std::uint64_t max_bucket_events = 0; // Serving-bucket occupancy peak.
    std::uint64_t max_cascade_events = 0;  // Largest single cascade.
    std::uint64_t max_overflow_events = 0; // Overflow population peak.
  };
  const CalendarStats& calendar_stats() const { return calendar_; }

  // Logical-event accounting for coalesced fast paths: when a component
  // serves a whole run of per-chunk events inside one scheduled event, it
  // credits the events it absorbed so `ExecutedEvents()` matches the
  // uncoalesced execution exactly.
  void CreditExecuted(std::uint64_t events) { executed_ += events; }
  // A scheduled event that turned out to be a superseded no-op (e.g. a
  // run-end event whose run was dissolved) uncounts itself.
  void UncountExecuted() {
    DMASIM_CHECK_GT(executed_, 0u);
    --executed_;
  }

 private:
  // shardcheck: allow(unannotated-member) -- POD event value stored in
  // the shard-local calendar containers below.
  struct Event {
    Tick when;
    std::uint64_t sequence;
    Callback callback;
  };
  static_assert(std::is_trivially_copyable_v<Event>);

  // Level-0 buckets are 2^19 ticks (~0.52 us) wide, so back-to-back chunk
  // events (one bus slot apart, 480000 ticks at the paper's bandwidth)
  // land about one bucket apart. Level 1 covers 1024 level-0 spans
  // (~0.55 s); anything farther sits in an overflow list that is
  // redistributed when the wheel reaches it.
  static constexpr int kLevel0Bits = 19;
  static constexpr int kBucketBits = 10;
  static constexpr int kLevel1Bits = kLevel0Bits + kBucketBits;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr std::size_t kBitmapWords = kBuckets / 64;

  // Functor (not a function pointer) so std::sort inlines the comparison.
  struct EarlierCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when < b.when;
      return a.sequence < b.sequence;
    }
  };
  static bool Earlier(const Event& a, const Event& b) {
    return EarlierCmp{}(a, b);
  }

  void Insert(const Event& event) {
    const std::uint64_t b0 =
        static_cast<std::uint64_t>(event.when) >> kLevel0Bits;
    if (b0 <= serving_bucket_) {
      // Current bucket — or behind it, which happens when RunUntil parked
      // the wheel on a far-future bucket and the clock (and subsequent
      // schedules) sit in the gap. Append now and restore sorted order
      // lazily on the next pop; every event already in the wheel is in a
      // later bucket, and appends carry monotonically increasing sequence
      // numbers, so sorting by (when, sequence) reproduces the global
      // FIFO order exactly.
      serving_.push_back(event);
      return;
    }
    const std::uint64_t b1 =
        static_cast<std::uint64_t>(event.when) >> kLevel1Bits;
    const std::uint64_t cur1 = serving_bucket_ >> kBucketBits;
    if (b1 == cur1) {
      const std::size_t slot = b0 & (kBuckets - 1);
      level0_[slot].push_back(event);
      level0_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    } else if (b1 - cur1 < kBuckets) {
      const std::size_t slot = b1 & (kBuckets - 1);
      level1_[slot].push_back(event);
      level1_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    } else {
      overflow_.push_back(event);
      overflow_min_b1_ = std::min(overflow_min_b1_, b1);
      calendar_.max_overflow_events =
          std::max(calendar_.max_overflow_events,
                   static_cast<std::uint64_t>(overflow_.size()));
    }
  }

  // Sorts any unsorted tail appended to the serving bucket since the last
  // pop, merging it with the sorted remainder (allocation-free after the
  // scratch buffer warms up).
  void MergeServingTail() {
    const std::size_t mid = serving_sorted_;
    const std::size_t end = serving_.size();
    if (mid >= end) return;
    serving_sorted_ = end;
    if (end - mid > 1) {
      std::sort(serving_.begin() + static_cast<std::ptrdiff_t>(mid),
                serving_.end(), EarlierCmp{});
    }
    if (mid <= serving_pos_ || !Earlier(serving_[mid], serving_[mid - 1])) {
      return;  // Tail already in order (bulk scheduling, ascending times).
    }
    scratch_.assign(serving_.begin() + static_cast<std::ptrdiff_t>(mid),
                    serving_.end());
    // Backward merge of [pos, mid) and the scratch copy into [pos, end).
    std::size_t left = mid;
    std::size_t right = scratch_.size();
    std::size_t out = end;
    while (right > 0) {
      if (left > serving_pos_ &&
          Earlier(scratch_[right - 1], serving_[left - 1])) {
        serving_[--out] = serving_[--left];
      } else {
        serving_[--out] = scratch_[--right];
      }
    }
  }

  // Finds the first set bit at or after `from`; returns kBuckets if none.
  static std::size_t NextSetBit(const std::array<std::uint64_t,
                                                 kBitmapWords>& bits,
                                std::size_t from) {
    if (from >= kBuckets) return kBuckets;
    std::size_t word = from >> 6;
    std::uint64_t masked = bits[word] & (~std::uint64_t{0} << (from & 63));
    while (masked == 0) {
      if (++word == kBitmapWords) return kBuckets;
      masked = bits[word];
    }
    return (word << 6) +
           static_cast<std::size_t>(std::countr_zero(masked));
  }

  void LoadBucket(std::uint64_t bucket) {
    const std::size_t slot = bucket & (kBuckets - 1);
    serving_bucket_ = bucket;
    serving_pos_ = 0;
    serving_.swap(level0_[slot]);
    level0_[slot].clear();
    level0_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    if (serving_.size() > 1) {
      std::sort(serving_.begin(), serving_.end(), EarlierCmp{});
    }
    serving_sorted_ = serving_.size();
    ++calendar_.bucket_loads;
    calendar_.max_bucket_events =
        std::max(calendar_.max_bucket_events,
                 static_cast<std::uint64_t>(serving_.size()));
  }

  // Makes serving_[serving_pos_] the globally earliest pending event.
  // Returns false when the queue is empty.
  bool EnsureServing() {
    MergeServingTail();
    while (serving_pos_ >= serving_.size()) {
      // Advance within the current level-1 span. Level-0 slots never wrap:
      // a span covers exactly kBuckets consecutive level-0 buckets.
      const std::size_t next0 =
          NextSetBit(level0_bits_, (serving_bucket_ & (kBuckets - 1)) + 1);
      if (next0 < kBuckets) {
        LoadBucket((serving_bucket_ & ~(kBuckets - 1)) + next0);
        continue;
      }
      std::uint64_t cur1 = serving_bucket_ >> kBucketBits;
      // Advance to the next occupied level-1 bucket. The level-1 window
      // (cur1, cur1 + kBuckets) wraps the array, so scan in two pieces.
      std::size_t slot1 = NextSetBit(level1_bits_, (cur1 & (kBuckets - 1)) + 1);
      std::uint64_t next1;
      if (slot1 < kBuckets) {
        next1 = (cur1 & ~(kBuckets - 1)) + slot1;
      } else {
        slot1 = NextSetBit(level1_bits_, 0);
        if (slot1 < kBuckets) {
          next1 = (cur1 & ~(kBuckets - 1)) + kBuckets + slot1;
        } else if (!overflow_.empty()) {
          RefillFromOverflow();
          continue;
        } else {
          return false;  // Queue is empty.
        }
      }
      // The wheel's window shifts as it advances, so an overflow event's
      // span may by now lie at or before the next occupied level-1
      // bucket (later schedules can even share its span). Refill first —
      // cascading past it would execute events out of order.
      if (overflow_min_b1_ <= next1) {
        RefillFromOverflow();
        continue;
      }
      CascadeLevel1(next1);
    }
    return true;
  }

  void CascadeLevel1(std::uint64_t bucket1) {
    const std::size_t slot = bucket1 & (kBuckets - 1);
    cascade_.swap(level1_[slot]);
    level1_[slot].clear();
    ++calendar_.cascades;
    calendar_.max_cascade_events =
        std::max(calendar_.max_cascade_events,
                 static_cast<std::uint64_t>(cascade_.size()));
    level1_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    // Park the wheel just before the span so Insert routes the events into
    // level-0 slots (all land inside this span by construction).
    serving_bucket_ = (bucket1 << kBucketBits) - 1;
    std::uint64_t earliest = ~std::uint64_t{0};
    for (const Event& event : cascade_) {
      const std::uint64_t b0 =
          static_cast<std::uint64_t>(event.when) >> kLevel0Bits;
      earliest = std::min(earliest, b0);
      const std::size_t slot0 = b0 & (kBuckets - 1);
      level0_[slot0].push_back(event);
      level0_bits_[slot0 >> 6] |= std::uint64_t{1} << (slot0 & 63);
    }
    cascade_.clear();
    LoadBucket(earliest);
  }

  void RefillFromOverflow() {
    // Move the wheel's window to start at the earliest overflow span;
    // everything within the new level-1 horizon files into the wheel, the
    // rest stays in overflow for a later refill. `overflow_min_b1_ > cur1`
    // always holds (EnsureServing refills before cascading past it), so
    // this only ever moves the wheel forward.
    serving_bucket_ = (overflow_min_b1_ << kBucketBits) - 1;
    overflow_min_b1_ = kNoOverflow;
    ++calendar_.overflow_refills;
    cascade_.swap(overflow_);
    overflow_.clear();
    for (const Event& event : cascade_) {
      Insert(event);
    }
    cascade_.clear();
  }

  // Every member is DMASIM_SHARD_LOCAL (see sim/shard_annotations.h): a
  // Simulator is the private event kernel of exactly one shard, touched
  // only by that shard's worker during a window.
  DMASIM_SHARD_LOCAL Tick now_ = 0;
  DMASIM_SHARD_LOCAL std::uint64_t next_sequence_ = 0;
  DMASIM_SHARD_LOCAL std::uint64_t executed_ = 0;
  DMASIM_SHARD_LOCAL std::uint64_t stepped_ = 0;
  DMASIM_SHARD_LOCAL std::size_t size_ = 0;

  // Serving bucket: flat, (when, sequence)-sorted up to serving_sorted_,
  // drained by cursor. serving_bucket_ is its absolute level-0 index.
  DMASIM_SHARD_LOCAL std::vector<Event> serving_;
  DMASIM_SHARD_LOCAL std::size_t serving_pos_ = 0;
  DMASIM_SHARD_LOCAL std::size_t serving_sorted_ = 0;
  DMASIM_SHARD_LOCAL std::uint64_t serving_bucket_ = 0;

  DMASIM_SHARD_LOCAL std::array<std::vector<Event>, kBuckets> level0_;
  DMASIM_SHARD_LOCAL std::array<std::vector<Event>, kBuckets> level1_;
  DMASIM_SHARD_LOCAL std::array<std::uint64_t, kBitmapWords> level0_bits_ = {};
  DMASIM_SHARD_LOCAL std::array<std::uint64_t, kBitmapWords> level1_bits_ = {};
  DMASIM_SHARD_LOCAL std::vector<Event> overflow_;
  // Smallest level-1 bucket among pending overflow events; kNoOverflow
  // when overflow_ is empty. Bounds how far the wheel may cascade.
  static constexpr std::uint64_t kNoOverflow = ~std::uint64_t{0};
  DMASIM_SHARD_LOCAL std::uint64_t overflow_min_b1_ = kNoOverflow;
  // MergeServingTail working space.
  DMASIM_SHARD_LOCAL std::vector<Event> scratch_;
  // CascadeLevel1/refill working space.
  DMASIM_SHARD_LOCAL std::vector<Event> cascade_;
  DMASIM_SHARD_LOCAL CalendarStats calendar_;

#if DMASIM_AUDIT_LEVEL >= 2
  // Last popped (when, sequence), for the FIFO-order audit in Step().
  DMASIM_SHARD_LOCAL Tick audit_last_when_ = 0;
  DMASIM_SHARD_LOCAL std::uint64_t audit_last_sequence_ = 0;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_SIM_SIMULATOR_H_
