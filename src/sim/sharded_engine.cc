#include "sim/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <numeric>
#if DMASIM_SCHED_FUZZ
#include <thread>
#endif

#include "exp/thread_pool.h"
#include "util/random.h"

namespace dmasim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvMixU64(std::uint64_t* hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    *hash ^= (value >> (8 * byte)) & 0xffu;
    *hash *= kFnvPrime;
  }
}

}  // namespace

const char* EngineFaultName(EngineFault fault) {
  switch (fault) {
    case EngineFault::kNone:
      return "none";
    case EngineFault::kSkipBarrierSort:
      return "skip-barrier-sort";
    case EngineFault::kDeliverEarly:
      return "deliver-early";
  }
  return "unknown";
}

bool ParseEngineFault(std::string_view text, EngineFault* out) {
  for (EngineFault fault : {EngineFault::kNone, EngineFault::kSkipBarrierSort,
                            EngineFault::kDeliverEarly}) {
    if (text == EngineFaultName(fault)) {
      *out = fault;
      return true;
    }
  }
  return false;
}

ShardedEngine::ShardedEngine(const Options& options) : options_(options) {
  DMASIM_EXPECTS(options.lookahead >= 0);
#if DMASIM_SCHED_FUZZ
  std::uint64_t seed_state = options.sched_fuzz_seed;
  fuzz_state_ = SplitMix64(seed_state);
#endif
}

int ShardedEngine::AddShard(Simulator* simulator, MessageHandler handler) {
  DMASIM_EXPECTS(simulator != nullptr);
  DMASIM_EXPECTS(handler);
  DMASIM_EXPECTS(!running_);
  shards_.emplace_back(simulator, handler, options_.mailbox_capacity);
  return static_cast<int>(shards_.size()) - 1;
}

void ShardedEngine::Send(int src, int dst, Tick deliver_at,
                         std::uint32_t kind, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) {
  DMASIM_EXPECTS(src >= 0 && src < shard_count());
  DMASIM_EXPECTS(dst >= 0 && dst < shard_count());
  DMASIM_EXPECTS(src != dst);
  // The conservative-synchronization invariant: nothing may be addressed
  // into a window any shard could already have executed past. During a
  // window `current_horizon_` is the horizon; violating this would be a
  // missing-latency bug in the caller, so it is a hard check.
  DMASIM_CHECK_GE(deliver_at, current_horizon_);
  if (options_.fault == EngineFault::kDeliverEarly && src == 0 &&
      running_ && !fault_fired_ && current_horizon_ > 0) {
    // Seeded violation: address shard 0's first send one tick inside the
    // horizon — into time other shards have already executed. Bypasses
    // the check above the way a missing-latency caller bug would.
    fault_fired_ = true;
    deliver_at = current_horizon_ - 1;
  }
  Shard& shard = shards_[static_cast<std::size_t>(src)];
  ShardMessage message;
  message.deliver_at = deliver_at;
  message.send_seq = shard.next_send_seq++;
  message.a = a;
  message.b = b;
  message.c = c;
  message.src = static_cast<std::uint32_t>(src);
  message.dst = static_cast<std::uint32_t>(dst);
  message.kind = kind;
  shard.outbox.Push(message);
}

void ShardedEngine::RefreshMailboxStats() {
  stats_.mailbox_spills = 0;
  stats_.max_mailbox_occupancy = 0;
  for (const Shard& shard : shards_) {
    stats_.mailbox_spills += shard.outbox.stats().spilled;
    stats_.max_mailbox_occupancy = std::max(
        stats_.max_mailbox_occupancy, shard.outbox.stats().max_occupancy);
  }
}

void ShardedEngine::DeliverMail(std::uint64_t window, Tick horizon) {
  const int n = shard_count();
  drain_order_.resize(static_cast<std::size_t>(n));
  std::iota(drain_order_.begin(), drain_order_.end(), 0);
#if DMASIM_SCHED_FUZZ
  if (options_.sched_fuzz_seed != 0) FuzzPermute(&drain_order_);
#endif
  if (options_.hooks != nullptr) {
    options_.hooks->OnBarrier(window, &drain_order_);
  }

  pending_.clear();
  for (int index : drain_order_) {
    Shard& shard = shards_[static_cast<std::size_t>(index)];
    const std::size_t before = pending_.size();
    shard.outbox.Drain(&pending_);
    if (options_.hooks != nullptr) {
      for (std::size_t i = before; i < pending_.size(); ++i) {
        options_.hooks->OnDrained(pending_[i]);
      }
    }
  }
  // Keep the aggregate mailbox counters live at every barrier (the obs
  // layer snapshots them per window, not just at Run() exit).
  RefreshMailboxStats();

  if (!pending_.empty()) {
    // (deliver_at, src, send_seq) is a total order — send_seq is unique
    // per source — so plain sort is deterministic.
    if (options_.fault != EngineFault::kSkipBarrierSort) {
      std::sort(pending_.begin(), pending_.end(),
                [](const ShardMessage& x, const ShardMessage& y) {
                  if (x.deliver_at != y.deliver_at) {
                    return x.deliver_at < y.deliver_at;
                  }
                  if (x.src != y.src) return x.src < y.src;
                  return x.send_seq < y.send_seq;
                });
    }
    for (const ShardMessage& message : pending_) {
      if (options_.hooks != nullptr) options_.hooks->OnDeliver(message);
      if (options_.record_deliveries) deliveries_.push_back(message);
      ++stats_.delivered_messages;
      shards_[message.dst].handler(message);
    }
  }

  if (options_.record_window_digests) {
    prev_window_events_.resize(static_cast<std::size_t>(n), 0);
    std::uint64_t digest = kFnvOffset;
    FnvMixU64(&digest, static_cast<std::uint64_t>(horizon));
    for (int s = 0; s < n; ++s) {
      const std::uint64_t events =
          shards_[static_cast<std::size_t>(s)].window_events;
      FnvMixU64(&digest, events - prev_window_events_[static_cast<std::size_t>(s)]);
      prev_window_events_[static_cast<std::size_t>(s)] = events;
    }
    for (const ShardMessage& message : pending_) {
      FnvMixU64(&digest, static_cast<std::uint64_t>(message.deliver_at));
      FnvMixU64(&digest, message.send_seq);
      FnvMixU64(&digest, message.a);
      FnvMixU64(&digest, message.b);
      FnvMixU64(&digest, message.c);
      FnvMixU64(&digest, (static_cast<std::uint64_t>(message.src) << 32) |
                             message.dst);
      FnvMixU64(&digest, message.kind);
    }
    window_digests_.push_back(digest);
  }
}

void ShardedEngine::Run(Tick until, ThreadPool* pool) {
  DMASIM_EXPECTS(shard_count() > 0);
  DMASIM_EXPECTS(until < std::numeric_limits<Tick>::max());
#if !DMASIM_SCHED_FUZZ
  // Refuse, rather than ignore, a fuzz seed the build can't honor: a
  // fuzz campaign must not silently measure the unperturbed schedule.
  DMASIM_CHECK_EQ(options_.sched_fuzz_seed, 0u);
#endif
  const int n = shard_count();
  if (n > 1) DMASIM_EXPECTS(options_.lookahead > 0);
  running_ = true;

  while (true) {
    Tick min_next = Simulator::kNoPendingEvent;
    for (const Shard& shard : shards_) {
      min_next = std::min(min_next, shard.simulator->NextPendingTick());
    }
    if (min_next == Simulator::kNoPendingEvent || min_next > until) break;

    // Horizon: one lookahead past the global minimum, clipped to the run
    // bound (events at exactly `until` still execute: bound + 1).
    Tick horizon = until + 1;
    if (n > 1) {
      const Tick max_tick = std::numeric_limits<Tick>::max();
      const Tick reach = max_tick - options_.lookahead;
      const Tick by_lookahead =
          min_next <= reach ? min_next + options_.lookahead : max_tick;
      horizon = std::min(horizon, by_lookahead);
    }
    current_horizon_ = horizon;
    const std::uint64_t window = stats_.windows;
    if (options_.hooks != nullptr) {
      options_.hooks->OnWindowStart(window, horizon);
    }

    drain_order_.resize(static_cast<std::size_t>(n));
    std::iota(drain_order_.begin(), drain_order_.end(), 0);
#if DMASIM_SCHED_FUZZ
    // Perturbed submit/execution order: share-nothing windows make the
    // order immaterial, which is exactly what this checks.
    if (options_.sched_fuzz_seed != 0) FuzzPermute(&drain_order_);
#endif
    if (pool != nullptr && n > 1) {
      for (int index : drain_order_) {
        Shard* task_shard = &shards_[static_cast<std::size_t>(index)];
        pool->Submit([this, task_shard, horizon, window, index]() {
          RunWindow(task_shard, horizon, window, index);
        });
      }
      pool->Wait();
    } else {
      for (int index : drain_order_) {
        RunWindow(&shards_[static_cast<std::size_t>(index)], horizon, window,
                  index);
      }
    }
    ++stats_.windows;
    DeliverMail(window, horizon);
  }

  RefreshMailboxStats();
  running_ = false;
}

#if DMASIM_SCHED_FUZZ
void ShardedEngine::FuzzBackoff(std::uint64_t window, int index) {
  std::uint64_t state = options_.sched_fuzz_seed ^
                        (window * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(index) *
                         0xbf58476d1ce4e5b9ULL);
  const std::uint64_t draw = SplitMix64(state);
  if ((draw & 3u) == 0) std::this_thread::yield();
  volatile std::uint32_t sink = 0;
  for (std::uint32_t i = 0, end = static_cast<std::uint32_t>(draw % 997);
       i < end; ++i) {
    sink += i;
  }
}

void ShardedEngine::FuzzPermute(std::vector<int>* order) {
  for (std::size_t i = order->size(); i > 1; --i) {
    const std::uint64_t draw = SplitMix64(fuzz_state_);
    const std::size_t j = static_cast<std::size_t>(draw % i);
    std::swap((*order)[i - 1], (*order)[j]);
  }
}
#endif

}  // namespace dmasim
