#include "sim/sharded_engine.h"

#include <algorithm>
#include <limits>

#include "exp/thread_pool.h"

namespace dmasim {

ShardedEngine::ShardedEngine(const Options& options) : options_(options) {
  DMASIM_EXPECTS(options.lookahead >= 0);
}

int ShardedEngine::AddShard(Simulator* simulator, MessageHandler handler) {
  DMASIM_EXPECTS(simulator != nullptr);
  DMASIM_EXPECTS(handler);
  DMASIM_EXPECTS(!running_);
  shards_.emplace_back(simulator, handler, options_.mailbox_capacity);
  return static_cast<int>(shards_.size()) - 1;
}

void ShardedEngine::Send(int src, int dst, Tick deliver_at,
                         std::uint32_t kind, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c) {
  DMASIM_EXPECTS(src >= 0 && src < shard_count());
  DMASIM_EXPECTS(dst >= 0 && dst < shard_count());
  DMASIM_EXPECTS(src != dst);
  // The conservative-synchronization invariant: nothing may be addressed
  // into a window any shard could already have executed past. During a
  // window `current_horizon_` is the horizon; violating this would be a
  // missing-latency bug in the caller, so it is a hard check.
  DMASIM_CHECK_GE(deliver_at, current_horizon_);
  Shard& shard = shards_[static_cast<std::size_t>(src)];
  ShardMessage message;
  message.deliver_at = deliver_at;
  message.send_seq = shard.next_send_seq++;
  message.a = a;
  message.b = b;
  message.c = c;
  message.src = static_cast<std::uint32_t>(src);
  message.dst = static_cast<std::uint32_t>(dst);
  message.kind = kind;
  shard.outbox.Push(message);
}

void ShardedEngine::DeliverMail() {
  pending_.clear();
  for (Shard& shard : shards_) {
    shard.outbox.Drain(&pending_);
  }
  if (pending_.empty()) return;
  // (deliver_at, src, send_seq) is a total order — send_seq is unique
  // per source — so plain sort is deterministic.
  std::sort(pending_.begin(), pending_.end(),
            [](const ShardMessage& x, const ShardMessage& y) {
              if (x.deliver_at != y.deliver_at) {
                return x.deliver_at < y.deliver_at;
              }
              if (x.src != y.src) return x.src < y.src;
              return x.send_seq < y.send_seq;
            });
  for (const ShardMessage& message : pending_) {
    if (options_.record_deliveries) deliveries_.push_back(message);
    ++stats_.delivered_messages;
    shards_[message.dst].handler(message);
  }
}

void ShardedEngine::Run(Tick until, ThreadPool* pool) {
  DMASIM_EXPECTS(shard_count() > 0);
  DMASIM_EXPECTS(until < std::numeric_limits<Tick>::max());
  const int n = shard_count();
  if (n > 1) DMASIM_EXPECTS(options_.lookahead > 0);
  running_ = true;

  while (true) {
    Tick min_next = Simulator::kNoPendingEvent;
    for (Shard& shard : shards_) {
      min_next = std::min(min_next, shard.simulator->NextPendingTick());
    }
    if (min_next == Simulator::kNoPendingEvent || min_next > until) break;

    // Horizon: one lookahead past the global minimum, clipped to the run
    // bound (events at exactly `until` still execute: bound + 1).
    Tick horizon = until + 1;
    if (n > 1) {
      const Tick max_tick = std::numeric_limits<Tick>::max();
      const Tick reach = max_tick - options_.lookahead;
      const Tick by_lookahead =
          min_next <= reach ? min_next + options_.lookahead : max_tick;
      horizon = std::min(horizon, by_lookahead);
    }
    current_horizon_ = horizon;

    if (pool != nullptr && n > 1) {
      for (Shard& shard : shards_) {
        Shard* task_shard = &shard;
        pool->Submit([this, task_shard, horizon]() {
          RunWindow(task_shard, horizon);
        });
      }
      pool->Wait();
    } else {
      for (Shard& shard : shards_) {
        RunWindow(&shard, horizon);
      }
    }
    ++stats_.windows;
    DeliverMail();
  }

  stats_.mailbox_spills = 0;
  stats_.max_mailbox_occupancy = 0;
  for (const Shard& shard : shards_) {
    stats_.mailbox_spills += shard.outbox.stats().spilled;
    stats_.max_mailbox_occupancy = std::max(
        stats_.max_mailbox_occupancy, shard.outbox.stats().max_occupancy);
  }
  running_ = false;
}

}  // namespace dmasim
