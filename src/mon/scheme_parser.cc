#include "mon/scheme_parser.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>

namespace dmasim {

namespace {

// Parses one bound field: `*` maps to `wildcard`, anything else must be
// a full unsigned decimal number.
bool ParseBound(const std::string& field, std::uint64_t wildcard,
                std::uint64_t* out) {
  if (field == "*") {
    *out = wildcard;
    return true;
  }
  if (field.empty()) return false;
  std::uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // Overflow.
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseAction(const std::string& field, SchemeAction* out) {
  if (field == "migrate-hot") {
    *out = SchemeAction::kMigrateHot;
    return true;
  }
  if (field == "pin-cold") {
    *out = SchemeAction::kPinCold;
    return true;
  }
  if (field == "demote-chip") {
    *out = SchemeAction::kDemoteChip;
    return true;
  }
  return false;
}

std::string LineError(int line_number, const std::string& reason,
                      const std::string& line) {
  std::ostringstream message;
  message << "malformed scheme rule at line " << line_number << ": " << reason
          << ": " << line;
  return message.str();
}

}  // namespace

std::string SchemeActionName(SchemeAction action) {
  switch (action) {
    case SchemeAction::kMigrateHot:
      return "migrate-hot";
    case SchemeAction::kPinCold:
      return "pin-cold";
    case SchemeAction::kDemoteChip:
      return "demote-chip";
  }
  return "?";
}

SchemeParseResult ParseSchemes(std::istream& is) {
  SchemeParseResult result;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    // Strip comments before tokenizing so `1 1 * * 0 migrate-hot # hot`
    // stays valid.
    const std::size_t hash = line.find('#');
    const std::string code = hash == std::string::npos
                                 ? line
                                 : line.substr(0, hash);
    std::istringstream fields(code);
    std::string size_lo, size_hi, acc_lo, acc_hi, age_lo, action;
    if (!(fields >> size_lo)) continue;  // Blank / comment-only line.
    if (!(fields >> size_hi >> acc_lo >> acc_hi >> age_lo >> action)) {
      result.error = LineError(line_number, "expected 6 fields", line);
      return result;
    }
    std::string trailing;
    if (fields >> trailing) {
      result.error = LineError(
          line_number, "trailing garbage '" + trailing + "'", line);
      return result;
    }

    SchemeRule rule;
    if (!ParseBound(size_lo, 0, &rule.size_lo) ||
        !ParseBound(size_hi, UINT64_MAX, &rule.size_hi)) {
      result.error = LineError(line_number, "bad size range", line);
      return result;
    }
    if (!ParseBound(acc_lo, 0, &rule.acc_lo) ||
        !ParseBound(acc_hi, UINT64_MAX, &rule.acc_hi)) {
      result.error = LineError(line_number, "bad access range", line);
      return result;
    }
    if (!ParseBound(age_lo, 0, &rule.age_lo)) {
      result.error = LineError(line_number, "bad age bound", line);
      return result;
    }
    if (rule.size_lo > rule.size_hi) {
      result.error =
          LineError(line_number, "size range out of order", line);
      return result;
    }
    if (rule.acc_lo > rule.acc_hi) {
      result.error =
          LineError(line_number, "access range out of order", line);
      return result;
    }
    // An action may carry a `:N` suffix; only demote-chip accepts one
    // (its demotion depth in policy steps).
    std::string action_base = action;
    std::string depth_suffix;
    const std::size_t colon = action.find(':');
    if (colon != std::string::npos) {
      action_base = action.substr(0, colon);
      depth_suffix = action.substr(colon + 1);
    }
    if (!ParseAction(action_base, &rule.action)) {
      result.error =
          LineError(line_number, "unknown action '" + action_base + "'",
                    line);
      return result;
    }
    if (colon != std::string::npos) {
      if (rule.action != SchemeAction::kDemoteChip) {
        result.error = LineError(
            line_number,
            "depth suffix is only valid for demote-chip", line);
        return result;
      }
      std::uint64_t depth = 0;
      if (!ParseBound(depth_suffix, 0, &depth) || depth < 1 || depth > 64) {
        result.error = LineError(
            line_number, "bad demote depth '" + depth_suffix + "'", line);
        return result;
      }
      rule.demote_depth = static_cast<int>(depth);
    }
    result.rules.push_back(rule);
  }
  return result;
}

SchemeParseResult ParseSchemeString(const std::string& text) {
  std::istringstream is(text);
  return ParseSchemes(is);
}

SchemeParseResult ParseSchemeFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    SchemeParseResult result;
    result.error = "cannot open scheme file: " + path;
    return result;
  }
  return ParseSchemes(is);
}

}  // namespace dmasim
