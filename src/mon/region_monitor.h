// Adaptive region-based access monitor (DAMON spirit, adapted to DMA).
//
// Why not accessed-bit sampling: dmasim's workloads drive tens of DMA
// transfers per millisecond across ~10^5 pages, so any per-page presence
// check observes almost nothing. Instead the monitor runs *occupancy
// probes*: at every sampling tick it walks the in-flight DMA transfer
// descriptors (a few dozen at the paper's intensities, since queueing
// keeps transfers checked out far longer than their service time) and
// attributes one hit to the region containing each transfer's page.
// Observation is edge-triggered — a transfer counts once, at the first
// probe that finds it in flight — so counters estimate access frequency
// rather than queue residency; transfers shorter than the sampling
// interval can be missed, which is the sampling error traded for
// overhead.
//
// Why sample-guided splits: the workload generator scatters popular
// pages over the page space by a multiplicative hash permutation
// (trace/zipf.h), so contiguous regions are statistically homogeneous
// and DAMON's random-offset splits can never isolate a hot page. The
// monitor instead splits at the sampled page itself — a region observed
// at page p splits into [start,p) [p,p+1) [p+1,end) — so repeatedly
// observed pages are carved into single-page regions while the merge
// pass reclaims one-off samples. Split and merge respect the
// [min_regions, max_regions] budget at all times.
//
// All simulated cost is charged to a busy-tick account (the monitor
// never perturbs the simulated hardware); OverheadFraction() is the
// DAMON-eval-style overhead metric.
#ifndef DMASIM_MON_REGION_MONITOR_H_
#define DMASIM_MON_REGION_MONITOR_H_

#include <cstdint>
#include <vector>

#include "mon/monitor_config.h"
#include "util/check.h"
#include "util/time.h"

namespace dmasim {

// One contiguous region of logical page space, [start, end).
struct MonitorRegion {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  // Sampled access counter (aged by right shift; pinned far below the
  // 64-bit edge so aging and boosts can never wrap).
  std::uint64_t hits = 0;
  // Aggregation intervals since the region was created by a split (or
  // since monitoring started).
  std::uint32_t age = 0;

  std::uint64_t size() const { return end - start; }
};

// One chip demotion requested by the demote-chip schemes: which chip,
// and how many policy steps below its current state to target (the
// matched rule's `demote_depth`).
struct ChipDemotion {
  int chip = 0;
  int depth = 1;
};

struct MonitorStats {
  std::uint64_t probes = 0;
  std::uint64_t observations = 0;  // Transfers attributed (once each).
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t aggregations = 0;
  std::uint64_t scheme_region_matches = 0;
  std::uint64_t demotions_requested = 0;
  std::uint64_t demotions_applied = 0;
  Tick busy_ticks = 0;  // Simulated monitoring cost.
};

class RegionMonitor {
 public:
  // Counter pin: far enough below 2^64 that adding a hit or a boost can
  // never wrap, large enough to be unreachable by real sampling (same
  // spirit as the SlackAccount tick pins).
  static constexpr std::uint64_t kMaxHits = std::uint64_t{1} << 60;

  RegionMonitor(const MonitorConfig& config, std::uint64_t pages, int chips);

  RegionMonitor(const RegionMonitor&) = delete;
  RegionMonitor& operator=(const RegionMonitor&) = delete;

  // --- Sampling (called from the controller's probe event) ---------------

  // Opens one occupancy probe (charges the fixed probe cost).
  void BeginProbe();
  // Attributes one newly seen in-flight transfer at `page` on `chip` to
  // its region, splitting the region at the sample when the budget
  // allows. The caller is responsible for the once-per-transfer
  // discipline (DmaTransfer::monitor_seen).
  void ObserveTransfer(std::uint64_t page, int chip);

  // --- Aggregation (called from the controller's aggregation event) ------

  // Ages regions, merges cold neighbours back under the budget, applies
  // the chip-level (demote-chip) rules. Returns the demotions (chip +
  // depth) the schemes want; the caller owns the actual power
  // transition and reports back via NoteDemotionApplied().
  const std::vector<ChipDemotion>& Aggregate();
  void NoteDemotionApplied() { ++stats_.demotions_applied; }

  // --- Layout feed (called at popularity-layout intervals) ---------------

  // Materializes per-page counts from the regions — single-page regions
  // carry their full counter, wider regions their density — then applies
  // the region-level rules (migrate-hot boosts, pin-cold zeroes). The
  // returned buffer is owned by the monitor and reused across calls.
  const std::vector<std::uint32_t>& MaterializeCounts();

  // Total-variation distance between the monitored access-mass
  // distribution (region density) and an oracle per-page count vector.
  // 0 = identical mass placement, 1 = disjoint. Records the result as
  // the latest hotness error.
  double RecordHotnessError(const std::vector<std::uint32_t>& oracle);

  // --- Results ------------------------------------------------------------

  // Share of simulated time spent monitoring so far (<= 1% at defaults).
  double OverheadFraction(Tick now) const {
    return now > 0 ? static_cast<double>(stats_.busy_ticks) /
                         static_cast<double>(now)
                   : 0.0;
  }
  double latest_hotness_error() const { return latest_hotness_error_; }

  const std::vector<MonitorRegion>& regions() const { return regions_; }
  const MonitorStats& stats() const { return stats_; }
  const MonitorConfig& config() const { return config_; }
  std::uint64_t pages() const { return pages_; }
  int chips() const { return static_cast<int>(chip_window_hits_.size()); }

 private:
  // Index of the region containing `page` (binary search; regions tile
  // the page space, so this always exists).
  std::size_t RegionIndexOf(std::uint64_t page) const;
  void SplitAtSample(std::size_t index, std::uint64_t page);
  void MergeColdNeighbours();
  void ApplyChipRules();

  MonitorConfig config_;
  std::uint64_t pages_;

  // Regions, sorted by start, tiling [0, pages_) exactly — the invariant
  // the level-2 audit asserts alongside the budget bounds.
  std::vector<MonitorRegion> regions_;

  // Per-chip sampled hits within the current aggregation window, and the
  // number of consecutive windows each chip went unobserved (the "age"
  // the demote-chip predicate tests).
  std::vector<std::uint64_t> chip_window_hits_;
  std::vector<std::uint32_t> chip_idle_streak_;
  std::vector<ChipDemotion> chips_to_demote_;

  std::vector<std::uint32_t> materialized_;

  MonitorStats stats_;
  double latest_hotness_error_ = -1.0;  // Never computed yet.
};

}  // namespace dmasim

#endif  // DMASIM_MON_REGION_MONITOR_H_
