#include "mon/region_monitor.h"

#include <algorithm>
#include <cmath>

namespace dmasim {

namespace {

// Materialized per-page counts saturate where the oracle tracker's
// counters do, so the layout planner sees the same dynamic range from
// either popularity source.
constexpr std::uint32_t kMaxMaterializedCount = 0xFFFF;

std::uint64_t PinnedAdd(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum > RegionMonitor::kMaxHits ? RegionMonitor::kMaxHits : sum;
}

}  // namespace

RegionMonitor::RegionMonitor(const MonitorConfig& config, std::uint64_t pages,
                             int chips)
    : config_(config), pages_(pages) {
  DMASIM_EXPECTS(pages > 0);
  DMASIM_EXPECTS(chips > 0);
  DMASIM_EXPECTS(config.min_regions >= 1);
  DMASIM_EXPECTS(config.max_regions >= config.min_regions);
  DMASIM_EXPECTS(pages >= static_cast<std::uint64_t>(config.min_regions));
  DMASIM_EXPECTS(config.sampling_interval > 0);
  DMASIM_EXPECTS(config.aggregation_interval > 0);

  // Initial coverage: min_regions equal slices tiling the page space.
  // Reserving the budget up front keeps split/merge allocation-free for
  // the rest of the run.
  regions_.reserve(static_cast<std::size_t>(config.max_regions) + 2);
  const std::uint64_t count = static_cast<std::uint64_t>(config.min_regions);
  const std::uint64_t base = pages / count;
  const std::uint64_t remainder = pages % count;
  std::uint64_t start = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    MonitorRegion region;
    region.start = start;
    region.end = start + base + (i < remainder ? 1 : 0);
    regions_.push_back(region);
    start = region.end;
  }
  DMASIM_CHECK_EQ(start, pages);

  chip_window_hits_.assign(static_cast<std::size_t>(chips), 0);
  chip_idle_streak_.assign(static_cast<std::size_t>(chips), 0);
  chips_to_demote_.reserve(static_cast<std::size_t>(chips));
  materialized_.assign(pages, 0);
}

std::size_t RegionMonitor::RegionIndexOf(std::uint64_t page) const {
  DMASIM_EXPECTS(page < pages_);
  // Last region whose start is <= page; regions tile the space, so the
  // containing region always exists.
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), page,
      [](std::uint64_t p, const MonitorRegion& r) { return p < r.start; });
  DMASIM_CHECK(it != regions_.begin());
  return static_cast<std::size_t>(it - regions_.begin()) - 1;
}

void RegionMonitor::BeginProbe() {
  ++stats_.probes;
  stats_.busy_ticks += config_.probe_cost;
}

void RegionMonitor::ObserveTransfer(std::uint64_t page, int chip) {
  DMASIM_EXPECTS(chip >= 0 &&
                 chip < static_cast<int>(chip_window_hits_.size()));
  ++stats_.observations;
  stats_.busy_ticks += config_.observe_cost;

  std::size_t index = RegionIndexOf(page);
  if (regions_[index].size() > 1) {
    SplitAtSample(index, page);
    index = RegionIndexOf(page);
  }
  regions_[index].hits = PinnedAdd(regions_[index].hits, 1);
  ++chip_window_hits_[static_cast<std::size_t>(chip)];
}

void RegionMonitor::SplitAtSample(std::size_t index, std::uint64_t page) {
  const MonitorRegion parent = regions_[index];
  DMASIM_EXPECTS(page >= parent.start && page < parent.end);
  const int new_regions = (page > parent.start ? 1 : 0) +
                          (page + 1 < parent.end ? 1 : 0);
  if (new_regions == 0) return;
  if (static_cast<int>(regions_.size()) + new_regions > config_.max_regions) {
    return;  // Budget exhausted: keep sampling at current granularity.
  }
  ++stats_.splits;

  // Redistribute the parent's (scattered) hits by size, rounding the
  // sampled page's share down and crediting the leftover to the widest
  // remainder piece, so the total is conserved and a single sample can
  // never fabricate a hot page out of accumulated region noise.
  const std::uint64_t size = parent.size();
  const std::uint64_t per_page = parent.hits / size;

  MonitorRegion left{parent.start, page, 0, 0};
  MonitorRegion mid{page, page + 1, per_page, 0};
  MonitorRegion right{page + 1, parent.end, 0, 0};
  left.hits = per_page * left.size();
  right.hits = per_page * right.size();
  const std::uint64_t distributed = left.hits + mid.hits + right.hits;
  const std::uint64_t leftover = parent.hits - distributed;
  if (left.size() >= right.size() && left.size() > 0) {
    left.hits += leftover;
  } else if (right.size() > 0) {
    right.hits += leftover;
  } else {
    mid.hits += leftover;
  }

  auto it = regions_.begin() + static_cast<std::ptrdiff_t>(index);
  it = regions_.erase(it);
  if (right.size() > 0) it = regions_.insert(it, right);
  it = regions_.insert(it, mid);
  if (left.size() > 0) regions_.insert(it, left);
}

const std::vector<ChipDemotion>& RegionMonitor::Aggregate() {
  ++stats_.aggregations;
  stats_.busy_ticks +=
      config_.region_cost * static_cast<Tick>(regions_.size());

  const bool shift =
      config_.age_shift_period > 0 &&
      stats_.aggregations %
              static_cast<std::uint64_t>(config_.age_shift_period) ==
          0;
  for (MonitorRegion& region : regions_) {
    if (region.age < UINT32_MAX) ++region.age;
    if (shift) region.hits >>= 1;
  }

  MergeColdNeighbours();
  ApplyChipRules();
  return chips_to_demote_;
}

void RegionMonitor::MergeColdNeighbours() {
  if (regions_.size() <= static_cast<std::size_t>(config_.min_regions)) {
    return;
  }
  // Single compaction pass: absorb each region into its left neighbour
  // while both are cold per page and the floor allows. Density (floored)
  // is the cold test — wide regions accumulate scattered samples in
  // proportion to their width, so an absolute-counter test would stop
  // merging anything long before the budget fills.
  std::size_t count = regions_.size();
  std::size_t write = 0;
  for (std::size_t read = 1; read < regions_.size(); ++read) {
    MonitorRegion& left = regions_[write];
    const MonitorRegion& right = regions_[read];
    if (left.hits / left.size() <= config_.merge_max_hits &&
        right.hits / right.size() <= config_.merge_max_hits &&
        count > static_cast<std::size_t>(config_.min_regions)) {
      left.end = right.end;
      left.hits = PinnedAdd(left.hits, right.hits);
      left.age = std::min(left.age, right.age);
      --count;
      ++stats_.merges;
    } else {
      ++write;
      regions_[write] = right;
    }
  }
  regions_.resize(write + 1);
  DMASIM_CHECK_EQ(regions_.size(), count);
}

void RegionMonitor::ApplyChipRules() {
  chips_to_demote_.clear();
  const std::uint64_t chip_pages =
      pages_ / static_cast<std::uint64_t>(chip_window_hits_.size());
  for (std::size_t chip = 0; chip < chip_window_hits_.size(); ++chip) {
    if (chip_window_hits_[chip] == 0) {
      if (chip_idle_streak_[chip] < UINT32_MAX) ++chip_idle_streak_[chip];
    } else {
      chip_idle_streak_[chip] = 0;
    }
    for (const SchemeRule& rule : config_.rules) {
      if (rule.action != SchemeAction::kDemoteChip) continue;
      if (rule.MatchesRegion(chip_pages, chip_window_hits_[chip],
                             chip_idle_streak_[chip])) {
        chips_to_demote_.push_back(
            {static_cast<int>(chip), rule.demote_depth});
        ++stats_.demotions_requested;
        break;  // First matching rule wins, as for regions.
      }
    }
    chip_window_hits_[chip] = 0;
  }
}

const std::vector<std::uint32_t>& RegionMonitor::MaterializeCounts() {
  stats_.busy_ticks +=
      config_.region_cost * static_cast<Tick>(regions_.size());
  for (const MonitorRegion& region : regions_) {
    // Single-page regions carry their full counter; wider regions spread
    // theirs as density (floor — sub-sample noise stays cold).
    std::uint64_t value =
        region.size() == 1 ? region.hits : region.hits / region.size();

    // Region-level schemes, first match wins (demote-chip rules operate
    // on chips in Aggregate and are skipped here). Access bounds match
    // the per-page value just computed, so a rule's notion of hot/cold
    // is independent of region width.
    for (const SchemeRule& rule : config_.rules) {
      if (rule.action == SchemeAction::kDemoteChip) continue;
      if (!rule.MatchesRegion(region.size(), value, region.age)) {
        continue;
      }
      ++stats_.scheme_region_matches;
      if (rule.action == SchemeAction::kMigrateHot) {
        value += config_.hot_boost;
      } else {  // kPinCold
        value = 0;
      }
      break;
    }

    const std::uint32_t count =
        value > kMaxMaterializedCount
            ? kMaxMaterializedCount
            : static_cast<std::uint32_t>(value);
    std::fill(materialized_.begin() + static_cast<std::ptrdiff_t>(region.start),
              materialized_.begin() + static_cast<std::ptrdiff_t>(region.end),
              count);
  }
  return materialized_;
}

double RegionMonitor::RecordHotnessError(
    const std::vector<std::uint32_t>& oracle) {
  DMASIM_EXPECTS(oracle.size() == pages_);
  double monitored_total = 0.0;
  for (const MonitorRegion& region : regions_) {
    monitored_total += static_cast<double>(region.hits);
  }
  double oracle_total = 0.0;
  for (std::uint32_t count : oracle) {
    oracle_total += static_cast<double>(count);
  }
  if (monitored_total <= 0.0 && oracle_total <= 0.0) {
    latest_hotness_error_ = 0.0;
    return latest_hotness_error_;
  }
  if (monitored_total <= 0.0 || oracle_total <= 0.0) {
    latest_hotness_error_ = 1.0;
    return latest_hotness_error_;
  }

  // Total-variation distance between the two access-mass distributions
  // over pages, with the monitored mass spread uniformly within each
  // region (that density is all the layout planner ever sees).
  double distance = 0.0;
  for (const MonitorRegion& region : regions_) {
    const double density = static_cast<double>(region.hits) /
                           (static_cast<double>(region.size()) *
                            monitored_total);
    for (std::uint64_t page = region.start; page < region.end; ++page) {
      const double truth =
          static_cast<double>(oracle[page]) / oracle_total;
      distance += std::fabs(density - truth);
    }
  }
  latest_hotness_error_ = 0.5 * distance;
  return latest_hotness_error_;
}

}  // namespace dmasim
