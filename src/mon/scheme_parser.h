// Parser for the line-oriented scheme format (DAMOS spirit).
//
// One rule per line, six whitespace-separated fields:
//
//   <size_lo> <size_hi> <acc_lo> <acc_hi> <age_lo> <action>
//
// Sizes are region sizes in pages, access bounds are per-page sampled
// hit counts (total window hits for demote-chip rules), age is in
// aggregation intervals. `*` is a wildcard (0 for a lower
// bound, unbounded for an upper bound). Actions: migrate-hot, pin-cold,
// demote-chip. A demote-chip action takes an optional `:N` depth suffix
// (N >= 1 policy steps below the current state, default 1), so a rule
// for long-idle chips can target nap or powerdown directly instead of
// one state at a time. `#` starts a comment; blank lines are skipped.
//
//   # Isolated hot pages go to the hot chip groups.
//   1 1 8 * 0 migrate-hot
//   # Large regions cold for 4+ aggregations never leave the cold group.
//   64 * 0 1 4 pin-cold
//   # Chips with no sampled traffic for 8 aggregations step down early.
//   * * 0 0 8 demote-chip
//   # Chips idle for 32 aggregations drop two states in one transition.
//   * * 0 0 32 demote-chip:2
//
// Malformed input is rejected with a line-numbered diagnostic, the same
// contract as the trace and counterexample readers: trailing garbage,
// out-of-order ranges, and unknown actions are errors, not warnings.
#ifndef DMASIM_MON_SCHEME_PARSER_H_
#define DMASIM_MON_SCHEME_PARSER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "mon/monitor_config.h"

namespace dmasim {

// Human-readable action name ("migrate-hot", ...).
std::string SchemeActionName(SchemeAction action);

struct SchemeParseResult {
  std::vector<SchemeRule> rules;
  // Empty on success; otherwise a diagnostic carrying the 1-based line
  // number of the first malformed rule.
  std::string error;

  bool ok() const { return error.empty(); }
};

// Parses rules from a stream / string / file. A failed file open is an
// error naming the path.
SchemeParseResult ParseSchemes(std::istream& is);
SchemeParseResult ParseSchemeString(const std::string& text);
SchemeParseResult ParseSchemeFile(const std::string& path);

}  // namespace dmasim

#endif  // DMASIM_MON_SCHEME_PARSER_H_
