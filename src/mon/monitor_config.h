// Configuration for the online access monitor (src/mon) and its
// declarative scheme engine.
//
// The monitor estimates page popularity at run time in the spirit of
// DAMON: the page space is covered by a bounded number of contiguous
// regions, each carrying a sampled access counter, and periodic
// aggregation intervals split/merge regions so precision follows the
// observed access mass while overhead stays bounded by the region
// budget. Schemes are DAMOS-style rules binding a region predicate
// (size/access-frequency/age ranges) to an action on the existing
// layout/power machinery.
#ifndef DMASIM_MON_MONITOR_CONFIG_H_
#define DMASIM_MON_MONITOR_CONFIG_H_

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace dmasim {

// What a matched scheme rule does.
enum class SchemeAction : int {
  // Boost the matched regions' pages so the next layout interval places
  // them in the hot chip groups.
  kMigrateHot = 0,
  // Zero the matched regions' pages so they are never hot-targeted
  // (placement noise suppression for known-cold ranges).
  kPinCold,
  // Chip-level reinterpretation (each chip's page set is the "region"):
  // step idle chips whose sampled traffic matches the predicate down to
  // their policy's next low-power state without waiting for the idle
  // threshold.
  kDemoteChip,
};

inline constexpr int kSchemeActionCount = 3;

// One declarative rule: apply `action` to regions with size (pages) in
// [size_lo, size_hi], per-page sampled access count in [acc_lo, acc_hi],
// and age (aggregation intervals) >= age_lo. Region rules match on the
// region's per-page density (its full counter for single-page regions),
// so "cold" means cold per page regardless of region width; demote-chip
// rules match on a chip's total sampled window hits. Parsed from the
// line-oriented scheme format by mon/scheme_parser.h.
struct SchemeRule {
  std::uint64_t size_lo = 0;
  std::uint64_t size_hi = UINT64_MAX;
  std::uint64_t acc_lo = 0;
  std::uint64_t acc_hi = UINT64_MAX;
  std::uint64_t age_lo = 0;
  SchemeAction action = SchemeAction::kMigrateHot;
  // kDemoteChip only: how many policy steps below the chip's current
  // state the demotion targets (1 = the policy's next state; larger
  // values follow the policy chain deeper — e.g. Active -> Nap in one
  // transition — clamped at the chain's end). Written `demote-chip:N`
  // in the scheme file.
  int demote_depth = 1;

  bool MatchesRegion(std::uint64_t size, std::uint64_t hits,
                     std::uint64_t age) const {
    return size >= size_lo && size <= size_hi && hits >= acc_lo &&
           hits <= acc_hi && age >= age_lo;
  }
};

struct MonitorConfig {
  bool enabled = false;

  // Cadence of occupancy probes: at every sampling tick the monitor
  // walks the in-flight DMA transfer descriptors and attributes one hit
  // to the region containing each transfer not seen by an earlier probe
  // (edge-triggered presence sampling). A transfer counts once no matter
  // how long it stays queued, so counters estimate access frequency, not
  // bus congestion; transfers shorter than the sampling interval can be
  // missed — that is the sampling error traded for overhead.
  Tick sampling_interval = 1 * kMicrosecond;

  // Cadence of aggregation: region aging, cold-region merging, and
  // chip-rule application. The window doubles as the monitor's
  // discrimination time: a freshly split single-page region survives the
  // next merge pass only if it collects enough hits within one window,
  // so the window must be long enough for a warm page (a few hits per
  // 10 ms at the paper's intensities) to distinguish itself from a
  // one-off sample — but short enough that the standing population of
  // not-yet-merged one-off regions stays inside the region budget.
  Tick aggregation_interval = 2 * kMillisecond;

  // Region budget. Splits stop at max_regions; merges never go below
  // min_regions. Bounds both memory and per-aggregation work regardless
  // of working-set size (asserted by the level-2 audit invariant).
  int min_regions = 32;
  int max_regions = 1024;

  // Adjacent regions whose per-page densities (hits / size, floored) are
  // both <= this merge back into one at aggregation time. Density — not
  // the absolute counter — is what "cold" means here: a wide region
  // accumulates scattered one-off samples in proportion to its width,
  // and an absolute threshold would freeze the region map solid long
  // before the budget is reached.
  std::uint64_t merge_max_hits = 1;

  // Region counters age by a right shift every this many aggregation
  // intervals (0 disables), so stale hotness decays and merge can
  // reclaim regions that went cold. The default matches the oracle
  // tracker's decay horizon (~160 ms) so monitored counts and oracle
  // counts live on the same scale.
  int age_shift_period = 80;

  // Count boost applied by kMigrateHot when materializing per-page
  // counts for the layout planner.
  std::uint32_t hot_boost = 16;

  // Simulated monitoring cost, charged to the monitor's busy-tick
  // account (it does not perturb the simulated hardware): fixed cost per
  // probe (covering the descriptor walk — the in-flight population is a
  // few dozen at most), per newly attributed transfer (binary search +
  // split), and per region touched by an aggregation or materialization
  // pass. The defaults keep the overhead fraction below 1% at the
  // default cadences.
  Tick probe_cost = 6 * kNanosecond;
  Tick observe_cost = 4 * kNanosecond;
  Tick region_cost = 1 * kNanosecond;

  // Declarative schemes, applied in order (first match wins per region).
  std::vector<SchemeRule> rules;
};

}  // namespace dmasim

#endif  // DMASIM_MON_MONITOR_CONFIG_H_
