// DMA reference-count tracking for popularity-based layout
// (Section 4.2.1, "a few bits to keep track of the DMA reference counts").
//
// Counts are kept per *logical* page so that migrations do not disturb a
// page's history. Aging (periodic right shift) adapts to workload change.
#ifndef DMASIM_CORE_POPULARITY_TRACKER_H_
#define DMASIM_CORE_POPULARITY_TRACKER_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dmasim {

class PopularityTracker {
 public:
  // Pin for the running total: far enough below 2^64 that a bulk record
  // can never wrap it, unreachable by any real workload. Without the pin
  // a saturated total would wrap to a tiny value and silently invert
  // every popularity share derived from it.
  static constexpr std::uint64_t kTotalPin = std::uint64_t{1} << 60;

  explicit PopularityTracker(std::uint64_t pages, std::uint32_t max_count = 0xFFFF)
      : counts_(pages, 0), max_count_(max_count) {
    DMASIM_EXPECTS(pages > 0);
    DMASIM_EXPECTS(max_count > 0);
  }

  // Records one DMA transfer touching `page` (saturating).
  void Record(std::uint64_t page) {
    DMASIM_EXPECTS(page < counts_.size());
    std::uint32_t& count = counts_[page];
    if (count < max_count_) ++count;
    if (total_ < kTotalPin) ++total_;
  }

  // Records `weight` transfers at once (same saturation behaviour as
  // `weight` single records; lets boundary tests reach the pins without
  // 2^60 iterations).
  void Record(std::uint64_t page, std::uint64_t weight) {
    DMASIM_EXPECTS(page < counts_.size());
    std::uint32_t& count = counts_[page];
    const std::uint64_t headroom = max_count_ - count;
    count += static_cast<std::uint32_t>(weight < headroom ? weight : headroom);
    const std::uint64_t total_headroom = kTotalPin - total_;
    total_ += weight < total_headroom ? weight : total_headroom;
  }

  // Right-shifts every counter by one bit (the paper's aging scheme).
  void Age() {
    for (std::uint32_t& count : counts_) count >>= 1;
    total_ >>= 1;
  }

  std::uint32_t Count(std::uint64_t page) const {
    DMASIM_EXPECTS(page < counts_.size());
    return counts_[page];
  }

  const std::vector<std::uint32_t>& counts() const { return counts_; }
  std::uint64_t pages() const { return counts_.size(); }
  // Approximate total of all counters (aged alongside them).
  std::uint64_t total() const { return total_; }

 private:
  std::vector<std::uint32_t> counts_;
  std::uint32_t max_count_;
  std::uint64_t total_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_CORE_POPULARITY_TRACKER_H_
