// DMA-TA: temporal alignment of DMA transfers (Section 4.1).
//
// The aligner buffers the *first* DMA-memory request of any transfer that
// finds its target chip in a low-power mode, trying to gather k = ceil(Rm
// / Rb) requests from distinct I/O buses so the chip's active cycles are
// fully utilized once it wakes. A chip's gated requests are released when
//   (a) k distinct buses are represented among them (full utilization), or
//   (b) k requests are pending for the chip -- "there is no need to
//       collect more DMA-memory requests to each memory chip than
//       necessary to achieve full utilization", or
//   (c) a gated transfer has used up its own delay budget: each transfer
//       of n requests earns n * mu * T of slack, and spending more than
//       that on its first request would break the average-service-time
//       guarantee (deadlines are staggered by arrival time, which avoids
//       synchronized release convoys), or
//   (d) the global slack account says waiting longer is unsafe:
//       n * U / 2 >= Slack with U = m * T * ceil(r / k), or the account is
//       exhausted.
// The class is passive: `MemoryController` feeds it arrivals, epochs, and
// CPU accesses, and executes the releases it requests.
//
// Limit: at most 64 I/O buses. The distinct-bus quorum and the drain
// bound track per-bus state in 64-bit masks / fixed arrays indexed by
// bus id; the constructor enforces `bus_count <= 64` so ids can never
// alias (the paper's systems have a handful of buses).
#ifndef DMASIM_CORE_TEMPORAL_ALIGNER_H_
#define DMASIM_CORE_TEMPORAL_ALIGNER_H_

#include <cstdint>
#include <vector>

#include "core/dma_aware_config.h"
#include "core/slack_account.h"
#include "io/dma_transfer.h"
#include "util/check.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

// One buffered first request. The controller's temporary buffering of
// these is the "little buffer space" of Section 4.1.4; `MaxBufferedBytes`
// tracks its worst-case occupancy.
struct GatedRequest {
  DmaTransfer* transfer = nullptr;
  std::int64_t chunk_bytes = 0;
  Tick gated_at = 0;
  // Latest release time compatible with the transfer's own delay budget.
  Tick deadline = 0;
};

// Why the most recent release decision fired, at the granularity the
// observability layer reports (the coarser quorum/slack statistics
// counters keep their historical mapping: kBufferCap counts as quorum).
enum class ReleaseCause : int {
  kQuorum = 0,       // k distinct buses gathered (full utilization).
  kBufferCap,        // Gated depth hit gather_depth + k.
  kDeadline,         // A transfer exhausted its own delay budget.
  kSlackExhausted,   // Global slack account ran dry.
  kSlackBound,       // Expected drain delay exceeds remaining slack.
  kCpuPriority,      // A processor access activated the chip anyway.
  kEpochExhausted,   // Epoch safety valve drained the oldest chip.
};
inline constexpr int kReleaseCauseCount = 7;

const char* ReleaseCauseName(ReleaseCause cause);

class TemporalAligner {
 public:
  // `k` is the number of I/O buses that saturate the memory bandwidth;
  // `bus_count` is r in the paper's notation (at most 64, see above);
  // `t_request` is T, the unmanaged service time of one DMA-memory
  // request (one I/O-bus slot).
  TemporalAligner(const TemporalAlignmentConfig& config, int chip_count,
                  int bus_count, int k, Tick t_request);

  bool enabled() const { return config_.enabled; }
  SlackAccount& slack() { return slack_; }
  const SlackAccount& slack() const { return slack_; }
  int k() const { return k_; }

  // Whether gating `transfer` is worthwhile at all: its delay budget must
  // exceed the configured cost-benefit floor.
  bool WorthGating(const DmaTransfer& transfer,
                   std::int64_t chunk_bytes) const;

  // Outcome of gating a request.
  struct GateResult {
    bool release_now = false;  // A release condition is already met.
    Tick deadline = 0;         // When to re-check if not released before.
  };

  // Buffers the first request of `transfer` for `chip`.
  GateResult Gate(int chip, DmaTransfer* transfer, std::int64_t chunk_bytes,
                  Tick now);

  // True if `chip` currently holds gated requests.
  bool HasGated(int chip) const {
    return !gated_[static_cast<std::size_t>(chip)].empty();
  }

  int PendingFor(int chip) const {
    return static_cast<int>(gated_[static_cast<std::size_t>(chip)].size());
  }
  int TotalPending() const { return total_pending_; }

  // Read-only view of `chip`'s gated requests, in gating order. This is
  // the protocol checker's introspection seam (src/check): state
  // canonicalization and the conservation properties need the buffered
  // (bus, gated_at, deadline) triples, not just the count.
  const std::vector<GatedRequest>& GatedFor(int chip) const {
    return gated_[static_cast<std::size_t>(chip)];
  }

  // Whether `chip`'s gated requests should be released at time `now`.
  bool ShouldRelease(int chip, Tick now) const;

  // Removes and returns the gated requests of `chip` (release).
  std::vector<GatedRequest> TakeGated(int chip);

  // Epoch boundary: debits the slack and returns the chips that must be
  // released as a result.
  std::vector<int> OnEpoch(Tick now);

  // A processor access of `service_time` hit `chip`.
  void OnCpuAccess(int chip, Ticks service_time);

  // Statistics.
  std::uint64_t TotalGated() const { return total_gated_; }
  std::uint64_t ReleasedByQuorum() const { return released_quorum_; }
  std::uint64_t ReleasedBySlack() const { return released_slack_; }
  std::int64_t MaxBufferedBytes() const { return max_buffered_bytes_; }
  const TemporalAlignmentConfig& config() const { return config_; }

  // Fine-grained attribution of the most recent ShouldRelease that
  // returned true (observability; the controller supplies kCpuPriority
  // itself for releases that bypass ShouldRelease).
  ReleaseCause last_release_cause() const { return last_release_cause_; }

  // Causes parallel to the chip list returned by the most recent OnEpoch
  // call, captured at the moment each chip's release decision was made
  // (the shared last_release_cause() slot is overwritten as the epoch
  // loop scans later chips).
  const std::vector<ReleaseCause>& last_epoch_causes() const {
    return last_epoch_causes_;
  }

 private:
  int DistinctBuses(int chip) const;
  // Upper bound U on the time to drain the chip's pending requests.
  double DrainBound(int chip) const;

  TemporalAlignmentConfig config_;
  int bus_count_;
  int k_;
  int gather_depth_;
  SlackAccount slack_;

  std::vector<std::vector<GatedRequest>> gated_;  // Per chip.
  int total_pending_ = 0;
  std::int64_t buffered_bytes_ = 0;

  std::uint64_t total_gated_ = 0;
  // Attribution of the most recent release decision, updated by
  // ShouldRelease (mutable because the check is logically const).
  mutable bool last_release_was_quorum_ = false;
  mutable ReleaseCause last_release_cause_ = ReleaseCause::kQuorum;
  std::vector<ReleaseCause> last_epoch_causes_;
  std::uint64_t released_quorum_ = 0;
  std::uint64_t released_slack_ = 0;
  std::int64_t max_buffered_bytes_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_CORE_TEMPORAL_ALIGNER_H_
