// DMA-aware memory controller (the paper's primary contribution).
//
// The controller owns the memory chips and I/O buses, routes logical pages
// to chips, gives processor accesses priority, and layers the two
// DMA-aware techniques on top of the chip-local low-power policy:
//   * DMA-TA (`TemporalAligner` + `SlackAccount`): first requests of
//     transfers headed to sleeping chips are buffered until enough
//     requests from distinct buses have gathered or the slack account
//     forces a release (Section 4.1);
//   * PL (`PopularityTracker` + `LayoutManager`): pages are periodically
//     migrated so popular pages concentrate on a few hot chips
//     (Section 4.2), increasing alignment opportunities and letting cold
//     chips sleep.
#ifndef DMASIM_CORE_MEMORY_CONTROLLER_H_
#define DMASIM_CORE_MEMORY_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dma_aware_config.h"
#include "core/layout_manager.h"
#include "core/popularity_tracker.h"
#include "core/temporal_aligner.h"
#include "io/dma_transfer.h"
#include "io/io_bus.h"
#include "io/transfer_pool.h"
#include "mem/chip_power_model.h"
#include "mem/memory_chip.h"
#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "mon/monitor_config.h"
#include "mon/region_monitor.h"
#include "obs/obs_config.h"
#include "sim/inline_function.h"
#include "sim/simulator.h"
#include "stats/accumulators.h"
#include "stats/energy.h"
#include "util/time.h"

#if DMASIM_OBS >= 1
#include "stats/histogram.h"
#endif
#if DMASIM_OBS >= 2
#include "obs/event_trace.h"
#endif

namespace dmasim {

// Static description of the simulated memory system. Defaults follow the
// paper's setup: 32 x 32 MB RDRAM chips (1 GB), three PCI-X buses whose
// bandwidth is exactly one third of the 3.2 GB/s memory bandwidth (the
// 12-cycles-per-8-byte arithmetic of Fig. 2a).
struct MemorySystemConfig {
  int chips = 32;
  int pages_per_chip = 4096;       // 32 MB chips of 8 KB pages.
  std::int64_t page_bytes = 8192;
  PowerModel power;
  // Which chip power/timing model the chips instantiate. The RDRAM
  // default consumes the `power` parameter block; see
  // mem/chip_power_model.h for the family.
  ChipModelKind chip_model = ChipModelKind::kRdram;
  // Calibration knobs for the kDdr4 member (ignored elsewhere). Defaults
  // are the pristine DDR4-2400 values; tests perturb them to seed faults.
  Ddr4Options ddr4;

  int bus_count = 3;
  // 8 bytes per 12 memory cycles.
  double bus_bandwidth = 8.0 / (12.0 * 625.0e-12);
  // DMA-memory request size used for event simulation. The paper's PCI-X
  // request size is 8 bytes; simulating at that granularity costs two
  // events per 8 bytes moved, so the default coarsens requests to 512
  // bytes (64x fewer events). Because bus and memory bandwidth scale the
  // same way, per-chunk serving/idle proportions — and therefore every
  // energy fraction — are unchanged (see DESIGN.md); only event-level
  // interleaving granularity is coarser. Set 8 for the literal paper
  // timing.
  std::int64_t chunk_bytes = 512;

  // Serve back-to-back chunks of an uncontended transfer in one event
  // (identical results, fewer events). Off reproduces the strict
  // two-events-per-chunk execution.
  bool coalesce_chunk_runs = true;

  DmaAwareConfig dma;

  // Online access monitor + declarative schemes (src/mon). Disabled by
  // default; when disabled the controller schedules no monitor events and
  // runs bit-identically to a build without the monitor.
  MonitorConfig monitor;

  std::uint64_t TotalPages() const {
    return static_cast<std::uint64_t>(chips) *
           static_cast<std::uint64_t>(pages_per_chip);
  }
  double MemoryBandwidth() const {
    const ChipTiming timing = ChipModelTiming(chip_model, power);
    return timing.bytes_per_cycle / TicksToSeconds(timing.cycle);
  }
  // k = ceil(Rm / Rb), with a tolerance so the paper's exact 3x ratio
  // yields k = 3.
  int AlignmentQuorum() const;
  // T: one I/O-bus slot for a chunk-sized request.
  Tick RequestTime() const;
};

struct ControllerStats {
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t cpu_accesses = 0;
  std::uint64_t migrations = 0;        // Page copies charged.
  std::uint64_t migration_rounds = 0;  // PL intervals that planned moves.
  std::uint64_t deferred_migrations = 0;
};

class MemoryController : public DmaRequestSink {
 public:
  using Callback = SmallFunction<void(Tick)>;

  // `policy` must outlive the controller.
  MemoryController(Simulator* simulator, const MemorySystemConfig& config,
                   const LowPowerPolicy* policy);
  ~MemoryController() override;

  MemoryController(const MemoryController&) = delete;
  MemoryController& operator=(const MemoryController&) = delete;

  // Starts a DMA transfer of `bytes` for `logical_page` on `bus`.
  // `on_complete` fires when the final DMA-memory request has been served.
  // Returns the transfer id.
  std::uint64_t StartDmaTransfer(int bus, std::uint64_t logical_page,
                                 std::int64_t bytes, DmaKind kind,
                                 Callback on_complete);

  // A processor access (cache-line granularity) to `logical_page`.
  // The callback goes straight into a ChipRequest, hence the smaller
  // capture budget than the transfer-level Callback.
  void CpuAccess(std::uint64_t logical_page, std::int64_t bytes,
                 ChipCallback on_complete = {});

  // DmaRequestSink:
  void DeliverChunk(DmaTransfer* transfer, std::int64_t chunk_bytes,
                    bool first) override;

  // --- Results -----------------------------------------------------------

  // Flushes chip accounting and returns the aggregate energy breakdown.
  EnergyBreakdown CollectEnergy();

  // uf = DMA serving time / (DMA serving time + active-idle-DMA time)
  // (Section 5.3).
  double UtilizationFactor();

  // Per DMA-memory-request service time (bus issue -> chip completion),
  // including any DMA-TA gating delay.
  const RunningMean& ChunkServiceTime() const { return chunk_service_; }
  // Per-transfer latency (start -> last chunk served).
  const RunningMean& TransferLatency() const { return transfer_latency_; }

  const ControllerStats& stats() const { return stats_; }
  const TemporalAligner& aligner() const { return *aligner_; }
  const PopularityTracker& popularity() const { return popularity_; }
  // Null unless config.monitor.enabled.
  const RegionMonitor* monitor() const { return monitor_.get(); }

  // DMA transfers started per chip (shows how PL concentrates traffic).
  const std::vector<std::uint64_t>& TransfersPerChip() const {
    return transfers_per_chip_;
  }
  // Fraction of transfers that targeted the busiest chip.
  double HottestChipShare() const;

  int ChipOf(std::uint64_t logical_page) const {
    DMASIM_EXPECTS(logical_page < page_to_chip_.size());
    return page_to_chip_[logical_page];
  }
  MemoryChip& chip(int index) { return *chips_[static_cast<std::size_t>(index)]; }
  IoBus& bus(int index) { return *buses_[static_cast<std::size_t>(index)]; }
  int chip_count() const { return static_cast<int>(chips_.size()); }
  int bus_count() const { return static_cast<int>(buses_.size()); }
  const MemorySystemConfig& config() const { return config_; }
  // The chip power/timing model instance all chips share.
  const ChipPowerModel& chip_model() const { return *chip_model_; }
  std::uint64_t InFlightTransfers() const { return pool_.ActiveCount(); }

#if DMASIM_OBS >= 1
  // Observability hook points, filled in by SimulationObserver. All
  // pointers are optional (null = not collected); none of them influences
  // simulation behaviour.
  struct ObsHooks {
    // Ticks a gated first request waited before its chip was released.
    Histogram* gate_delay = nullptr;
    // Per-transfer latency (start -> last chunk served), ticks.
    Histogram* transfer_latency = nullptr;
#if DMASIM_OBS >= 2
    EventTracer* tracer = nullptr;
#endif
  };
  void SetObsHooks(const ObsHooks& hooks) { obs_ = hooks; }
#endif

 private:
  void ForwardChunk(DmaTransfer* transfer, std::int64_t chunk_bytes,
                    Tick issue_time, bool first);
  void OnChunkComplete(DmaTransfer* transfer, std::int64_t chunk_bytes,
                       Tick issue_time, Tick completion);
  void CompleteTransfer(DmaTransfer* transfer, Tick completion);
  // `cause` is attribution for observability only (unused at DMASIM_OBS=0).
  void ReleaseChip(int chip_index, ReleaseCause cause);
  void ScheduleEpoch();
  void ScheduleLayoutInterval();
  void RunLayoutInterval();
  void ScheduleMonitorSample();
  void ScheduleMonitorAggregation();

  // --- Chunk-run coalescing ----------------------------------------------
  // A "run" serves consecutive chunks of one transfer that exclusively
  // owns its chip and bus in a single run-end event instead of 2 events
  // per chunk. TryStartRun bounds the run by the kernel's next pending
  // event (Simulator::NextPendingTick): only chunks completing strictly
  // before that horizon are absorbed, so nothing can execute, observe, or
  // schedule during the run window — the elided events form a contiguous
  // sequence-number block and every surviving event keeps its exact
  // (time, seq) order, which is what keeps artifacts byte-identical.
  // FinishRun replays the absorbed bookkeeping in identical order, to the
  // same floating-point sums. SettleRun / SettleAllRuns remain for
  // boundary cases where external callers (CollectEnergy,
  // UtilizationFactor, or direct driver/test API calls) need mid-run
  // state; during event execution the horizon rule makes them no-ops.
  bool TryStartRun(DmaTransfer* transfer, Tick now);
  std::uint64_t AdvanceRunChunks(DmaTransfer* transfer, Tick bound);
  void SettleRun(DmaTransfer* transfer, Tick bound);
  void SettleAllRuns(Tick bound);
  void FinishRun(DmaTransfer* transfer, std::uint64_t generation);

  Simulator* simulator_;
  MemorySystemConfig config_;
  std::unique_ptr<ChipPowerModel> chip_model_;
  std::vector<std::unique_ptr<MemoryChip>> chips_;
  std::vector<std::unique_ptr<IoBus>> buses_;
  std::vector<std::int32_t> page_to_chip_;

  std::unique_ptr<TemporalAligner> aligner_;
  PopularityTracker popularity_;
  LayoutManager layout_;
  std::unique_ptr<RegionMonitor> monitor_;  // Null when disabled.

  TransferPool pool_;
  std::uint64_t next_transfer_id_ = 1;
  std::uint64_t layout_intervals_run_ = 0;

  // Active runs, indexed both ways for O(1) settle on perturbation.
  std::vector<DmaTransfer*> run_by_chip_;
  std::vector<DmaTransfer*> run_by_bus_;
  int active_runs_ = 0;

  RunningMean chunk_service_;
  RunningMean transfer_latency_;
  ControllerStats stats_;
  std::vector<std::uint64_t> transfers_per_chip_;

#if DMASIM_OBS >= 1
  ObsHooks obs_;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_CORE_MEMORY_CONTROLLER_H_
