#include "core/memory_controller.h"

#include <cmath>
#include <utility>

namespace dmasim {

int MemorySystemConfig::AlignmentQuorum() const {
  const double ratio = MemoryBandwidth() / bus_bandwidth;
  return static_cast<int>(std::ceil(ratio - 1e-9));
}

Tick MemorySystemConfig::RequestTime() const {
  return TransferTime(chunk_bytes, bus_bandwidth);
}

MemoryController::MemoryController(Simulator* simulator,
                                   const MemorySystemConfig& config,
                                   const LowPowerPolicy* policy)
    : simulator_(simulator),
      config_(config),
      popularity_(config.TotalPages()),
      layout_(config.dma.pl, config.chips, config.pages_per_chip) {
  DMASIM_EXPECTS(config.chips >= 2);
  DMASIM_EXPECTS(config.bus_count >= 1);
  DMASIM_EXPECTS(config.page_bytes > 0);
  DMASIM_EXPECTS(config.chunk_bytes > 0 &&
                 config.chunk_bytes <= config.page_bytes);

  chips_.reserve(static_cast<std::size_t>(config.chips));
  for (int i = 0; i < config.chips; ++i) {
    chips_.push_back(
        std::make_unique<MemoryChip>(simulator, &config_.power, policy, i));
  }
  buses_.reserve(static_cast<std::size_t>(config.bus_count));
  for (int i = 0; i < config.bus_count; ++i) {
    auto bus = std::make_unique<IoBus>(simulator, i, config.bus_bandwidth,
                                       config.chunk_bytes);
    bus->SetSink(this);
    buses_.push_back(std::move(bus));
  }

  // Initial layout: logical pages striped across chips, which scatters the
  // (hash-permuted) popular pages uniformly -- the unmanaged baseline.
  page_to_chip_.resize(config.TotalPages());
  for (std::uint64_t page = 0; page < page_to_chip_.size(); ++page) {
    page_to_chip_[page] = static_cast<std::int32_t>(page %
                                                    static_cast<std::uint64_t>(
                                                        config.chips));
  }

  transfers_per_chip_.assign(static_cast<std::size_t>(config.chips), 0);
  aligner_ = std::make_unique<TemporalAligner>(
      config.dma.ta, config.chips, config.bus_count, config.AlignmentQuorum(),
      config.RequestTime());
  if (config.dma.ta.enabled) ScheduleEpoch();
  if (config.dma.pl.enabled) ScheduleLayoutInterval();
}

MemoryController::~MemoryController() = default;

std::uint64_t MemoryController::StartDmaTransfer(int bus,
                                                 std::uint64_t logical_page,
                                                 std::int64_t bytes,
                                                 DmaKind kind,
                                                 Callback on_complete) {
  DMASIM_EXPECTS(bus >= 0 && bus < bus_count());
  DMASIM_EXPECTS(logical_page < page_to_chip_.size());
  DMASIM_EXPECTS(bytes > 0);

  auto transfer = std::make_unique<DmaTransfer>();
  transfer->id = next_transfer_id_++;
  transfer->bus_id = bus;
  transfer->chip_index = page_to_chip_[logical_page];
  transfer->physical_page = logical_page;
  transfer->kind = kind;
  transfer->total_bytes = bytes;
  transfer->start_time = simulator_->Now();
  transfer->on_complete = std::move(on_complete);

  popularity_.Record(logical_page);
  ++stats_.transfers_started;
  ++transfers_per_chip_[static_cast<std::size_t>(transfer->chip_index)];

  DmaTransfer* raw = transfer.get();
  transfers_.emplace(raw->id, std::move(transfer));
  buses_[static_cast<std::size_t>(bus)]->StartTransfer(raw);
  return raw->id;
}

void MemoryController::CpuAccess(std::uint64_t logical_page,
                                 std::int64_t bytes, Callback on_complete) {
  DMASIM_EXPECTS(logical_page < page_to_chip_.size());
  const int chip_index = page_to_chip_[logical_page];
  ++stats_.cpu_accesses;
  if (aligner_->enabled()) {
    aligner_->OnCpuAccess(chip_index, config_.power.ServiceTime(bytes));
  }
  chips_[static_cast<std::size_t>(chip_index)]->Enqueue(
      ChipRequest{RequestKind::kCpu, bytes, std::move(on_complete)});
  // The processor access activates the chip regardless (it has priority),
  // so any gated DMA requests ride along for free: keeping them delayed
  // would only force a second activation later.
  if (aligner_->enabled() && aligner_->HasGated(chip_index)) {
    ReleaseChip(chip_index);
  }
}

void MemoryController::DeliverChunk(DmaTransfer* transfer,
                                    std::int64_t chunk_bytes, bool first) {
  const Tick now = simulator_->Now();
  if (aligner_->enabled()) {
    aligner_->slack().CreditArrival();
    if (first) {
      MemoryChip& chip =
          *chips_[static_cast<std::size_t>(transfer->chip_index)];
      if (chip.InLowPowerForGating() &&
          aligner_->WorthGating(*transfer, chunk_bytes)) {
        const int chip_index = transfer->chip_index;
        const TemporalAligner::GateResult gate =
            aligner_->Gate(chip_index, transfer, chunk_bytes, now);
        if (gate.release_now) {
          ReleaseChip(chip_index);
        } else {
          // Re-check when this request's delay budget runs out. The check
          // is idempotent: if the chip was released earlier, nothing is
          // gated any more and the event is a no-op.
          simulator_->ScheduleAt(gate.deadline, [this, chip_index]() {
            if (aligner_->HasGated(chip_index) &&
                aligner_->ShouldRelease(chip_index, simulator_->Now())) {
              ReleaseChip(chip_index);
            }
          });
        }
        return;
      }
    }
  }
  ForwardChunk(transfer, chunk_bytes, now, first);
}

void MemoryController::ForwardChunk(DmaTransfer* transfer,
                                    std::int64_t chunk_bytes, Tick issue_time,
                                    bool first) {
  MemoryChip& chip = *chips_[static_cast<std::size_t>(transfer->chip_index)];
  if (first) {
    // First chunk actually reaching the chip: the transfer is now in
    // flight for idle-energy attribution purposes.
    chip.BeginTransfer();
  }
  const std::uint64_t id = transfer->id;
  chip.Enqueue(ChipRequest{
      RequestKind::kDma, chunk_bytes,
      [this, id, chunk_bytes, issue_time](Tick completion) {
        OnChunkComplete(id, chunk_bytes, issue_time, completion);
      }});
}

void MemoryController::ReleaseChip(int chip_index) {
  std::vector<GatedRequest> gated = aligner_->TakeGated(chip_index);
  if (gated.empty()) return;
  MemoryChip& chip = *chips_[static_cast<std::size_t>(chip_index)];
  if (chip.power_state() != PowerState::kActive) {
    const Tick wake = config_.power.UpTransition(chip.power_state()).duration;
    aligner_->slack().DebitActivation(wake, static_cast<int>(gated.size()));
  }
  for (GatedRequest& request : gated) {
    request.transfer->blocked = false;
    const Tick issue = request.gated_at;
    request.transfer->gated_at = -1;
    ForwardChunk(request.transfer, request.chunk_bytes, issue, /*first=*/true);
  }
}

void MemoryController::OnChunkComplete(std::uint64_t transfer_id,
                                       std::int64_t chunk_bytes,
                                       Tick issue_time, Tick completion) {
  auto it = transfers_.find(transfer_id);
  DMASIM_CHECK_MSG(it != transfers_.end(), "unknown transfer completed");
  DmaTransfer* transfer = it->second.get();

  chunk_service_.Add(static_cast<double>(completion - issue_time));
  transfer->completed_bytes += chunk_bytes;

  if (transfer->Complete()) {
    chips_[static_cast<std::size_t>(transfer->chip_index)]->EndTransfer();
    ++stats_.transfers_completed;
    transfer_latency_.Add(
        static_cast<double>(completion - transfer->start_time));
    Callback on_complete = std::move(transfer->on_complete);
    transfers_.erase(it);
    if (on_complete) on_complete(completion);
    return;
  }
  buses_[static_cast<std::size_t>(transfer->bus_id)]->MakeReady(transfer);
}

void MemoryController::ScheduleEpoch() {
  simulator_->ScheduleAfter(config_.dma.ta.epoch_length, [this]() {
    for (int chip_index : aligner_->OnEpoch(simulator_->Now())) {
      ReleaseChip(chip_index);
    }
    ScheduleEpoch();
  });
}

void MemoryController::ScheduleLayoutInterval() {
  simulator_->ScheduleAfter(config_.dma.pl.interval,
                            [this]() { RunLayoutInterval(); });
}

void MemoryController::RunLayoutInterval() {
  const LayoutPlan plan = layout_.Plan(popularity_.counts(), page_to_chip_);
  if (!plan.moves.empty()) ++stats_.migration_rounds;
  stats_.deferred_migrations += static_cast<std::uint64_t>(plan.deferred_moves);
  for (const PageMove& move : plan.moves) {
    DMASIM_CHECK(page_to_chip_[move.page] == move.from_chip);
    page_to_chip_[move.page] = move.to_chip;
    ++stats_.migrations;
    // Charge the copy: a read on the source chip and a write on the
    // destination chip. Copies run at lowest priority and in small chunks
    // (Section 4.2.2's "perform page migration in small chunks") so DMA
    // and CPU requests are delayed by at most one chunk service.
    for (std::int64_t offset = 0; offset < config_.page_bytes;
         offset += config_.chunk_bytes) {
      const std::int64_t chunk =
          std::min(config_.chunk_bytes, config_.page_bytes - offset);
      chips_[static_cast<std::size_t>(move.from_chip)]->Enqueue(
          ChipRequest{RequestKind::kMigration, chunk, {}});
      chips_[static_cast<std::size_t>(move.to_chip)]->Enqueue(
          ChipRequest{RequestKind::kMigration, chunk, {}});
    }
  }
  ++layout_intervals_run_;
  if (config_.dma.pl.age_period_intervals > 0 &&
      layout_intervals_run_ % config_.dma.pl.age_period_intervals == 0) {
    popularity_.Age();
  }
  ScheduleLayoutInterval();
}

double MemoryController::HottestChipShare() const {
  std::uint64_t total = 0;
  std::uint64_t best = 0;
  for (std::uint64_t count : transfers_per_chip_) {
    total += count;
    if (count > best) best = count;
  }
  return total > 0 ? static_cast<double>(best) / static_cast<double>(total)
                   : 0.0;
}

EnergyBreakdown MemoryController::CollectEnergy() {
  EnergyBreakdown total;
  for (auto& chip : chips_) {
    chip->SyncAccounting();
    total += chip->energy();
  }
  return total;
}

double MemoryController::UtilizationFactor() {
  Tick serving = 0;
  Tick idle_dma = 0;
  for (auto& chip : chips_) {
    chip->SyncAccounting();
    serving += chip->stats().dma_serving;
    idle_dma += chip->stats().active_idle_dma;
  }
  const Tick active = serving + idle_dma;
  return active > 0 ? static_cast<double>(serving) /
                          static_cast<double>(active)
                    : 0.0;
}

}  // namespace dmasim
