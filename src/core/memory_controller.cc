#include "core/memory_controller.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "audit/audit_config.h"

namespace dmasim {

int MemorySystemConfig::AlignmentQuorum() const {
  const double ratio = MemoryBandwidth() / bus_bandwidth;
  return static_cast<int>(std::ceil(ratio - 1e-9));
}

Tick MemorySystemConfig::RequestTime() const {
  return TransferTime(chunk_bytes, bus_bandwidth);
}

namespace {

// Builds the configured model; only kDdr4 consumes its calibration knobs.
std::unique_ptr<ChipPowerModel> MakeConfiguredModel(
    const MemorySystemConfig& config) {
  if (config.chip_model == ChipModelKind::kDdr4) {
    // dmasim-lint: allow(heap-alloc) -- one-time construction.
    return std::make_unique<Ddr4ChipModel>(config.ddr4);
  }
  return MakeChipPowerModel(config.chip_model, config.power);
}

}  // namespace

MemoryController::MemoryController(Simulator* simulator,
                                   const MemorySystemConfig& config,
                                   const LowPowerPolicy* policy)
    : simulator_(simulator),
      config_(config),
      chip_model_(MakeConfiguredModel(config)),
      popularity_(config.TotalPages()),
      layout_(config.dma.pl, config.chips, config.pages_per_chip) {
  DMASIM_EXPECTS(config.chips >= 2);
  DMASIM_EXPECTS(config.bus_count >= 1);
  DMASIM_EXPECTS(config.page_bytes > 0);
  DMASIM_EXPECTS(config.chunk_bytes > 0 &&
                 config.chunk_bytes <= config.page_bytes);

  chips_.reserve(static_cast<std::size_t>(config.chips));
  for (int i = 0; i < config.chips; ++i) {
    chips_.push_back(
        // dmasim-lint: allow(heap-alloc) -- one-time construction.
        std::make_unique<MemoryChip>(simulator, chip_model_.get(), policy, i));
  }
  buses_.reserve(static_cast<std::size_t>(config.bus_count));
  for (int i = 0; i < config.bus_count; ++i) {
    // dmasim-lint: allow(heap-alloc) -- one-time construction.
    auto bus = std::make_unique<IoBus>(simulator, i, config.bus_bandwidth,
                                       config.chunk_bytes);
    bus->SetSink(this);
    buses_.push_back(std::move(bus));
  }

  // Initial layout: logical pages striped across chips, which scatters the
  // (hash-permuted) popular pages uniformly -- the unmanaged baseline.
  page_to_chip_.resize(config.TotalPages());
  std::int32_t stripe = 0;
  for (std::uint64_t page = 0; page < page_to_chip_.size(); ++page) {
    page_to_chip_[page] = stripe;
    if (++stripe == config.chips) stripe = 0;
  }

  transfers_per_chip_.assign(static_cast<std::size_t>(config.chips), 0);
  run_by_chip_.assign(static_cast<std::size_t>(config.chips), nullptr);
  run_by_bus_.assign(static_cast<std::size_t>(config.bus_count), nullptr);
  // dmasim-lint: allow(heap-alloc) -- one-time construction.
  aligner_ = std::make_unique<TemporalAligner>(
      config.dma.ta, config.chips, config.bus_count, config.AlignmentQuorum(),
      config.RequestTime());
  if (config.dma.ta.enabled) ScheduleEpoch();
  if (config.dma.pl.enabled) ScheduleLayoutInterval();

  if (config.monitor.enabled) {
    // dmasim-lint: allow(heap-alloc) -- one-time construction.
    monitor_ = std::make_unique<RegionMonitor>(config_.monitor,
                                               config.TotalPages(),
                                               config.chips);
    ScheduleMonitorSample();
    ScheduleMonitorAggregation();
  }
}

MemoryController::~MemoryController() = default;

std::uint64_t MemoryController::StartDmaTransfer(int bus,
                                                 std::uint64_t logical_page,
                                                 std::int64_t bytes,
                                                 DmaKind kind,
                                                 Callback on_complete) {
  DMASIM_EXPECTS(bus >= 0 && bus < bus_count());
  DMASIM_EXPECTS(logical_page < page_to_chip_.size());
  DMASIM_EXPECTS(bytes > 0);

  // The new transfer contends for the bus: any coalesced run there no
  // longer owns it exclusively.
  if (run_by_bus_[static_cast<std::size_t>(bus)] != nullptr) {
    SettleRun(run_by_bus_[static_cast<std::size_t>(bus)], simulator_->Now());
  }

  DmaTransfer* transfer = pool_.Acquire();
  transfer->id = next_transfer_id_++;
  transfer->bus_id = bus;
  transfer->chip_index = page_to_chip_[logical_page];
  transfer->physical_page = logical_page;
  transfer->kind = kind;
  transfer->total_bytes = bytes;
  transfer->start_time = simulator_->Now();
  transfer->on_complete = std::move(on_complete);

  popularity_.Record(logical_page);
  ++stats_.transfers_started;
  ++transfers_per_chip_[static_cast<std::size_t>(transfer->chip_index)];

  const std::uint64_t id = transfer->id;
  buses_[static_cast<std::size_t>(bus)]->StartTransfer(transfer);
  return id;
}

void MemoryController::CpuAccess(std::uint64_t logical_page,
                                 std::int64_t bytes,
                                 ChipCallback on_complete) {
  DMASIM_EXPECTS(logical_page < page_to_chip_.size());
  // The access perturbs its chip and debits the (order-sensitive) slack
  // account: bring every coalesced run up to date first.
  SettleAllRuns(simulator_->Now());
  const int chip_index = page_to_chip_[logical_page];
  ++stats_.cpu_accesses;
  if (aligner_->enabled()) {
    aligner_->OnCpuAccess(chip_index, chip_model_->ServiceTime(ByteCount(bytes)));
  }
  chips_[static_cast<std::size_t>(chip_index)]->Enqueue(
      ChipRequest{RequestKind::kCpu, ByteCount(bytes), std::move(on_complete)});
  // The processor access activates the chip regardless (it has priority),
  // so any gated DMA requests ride along for free: keeping them delayed
  // would only force a second activation later.
  if (aligner_->enabled() && aligner_->HasGated(chip_index)) {
    ReleaseChip(chip_index, ReleaseCause::kCpuPriority);
  }
}

void MemoryController::DeliverChunk(DmaTransfer* transfer,
                                    std::int64_t chunk_bytes, bool first) {
  const Tick now = simulator_->Now();
#if DMASIM_AUDIT_LEVEL >= 2
  // Lockstep audit: once past its (possibly gated) first request, a
  // transfer flows without further DMA-TA interference.
  if (!first) DMASIM_CHECK(!transfer->blocked);
#endif
  if (aligner_->enabled()) {
    // Note: this credit commutes with the credits coalesced runs replay
    // later (all arrival credits are identical), so no settle is needed
    // on the common path.
    aligner_->slack().CreditArrival();
    if (first) {
      MemoryChip& chip =
          *chips_[static_cast<std::size_t>(transfer->chip_index)];
      if (chip.InLowPowerForGating()) {
        // The gating decision reads the slack account: apply every run's
        // pending credits first.
        SettleAllRuns(now);
        if (aligner_->WorthGating(*transfer, chunk_bytes)) {
          const int chip_index = transfer->chip_index;
          const TemporalAligner::GateResult gate =
              aligner_->Gate(chip_index, transfer, chunk_bytes, now);
#if DMASIM_OBS >= 2
          if (obs_.tracer != nullptr) {
            obs_.tracer->Gate(now, chip_index, transfer->bus_id,
                              transfer->id);
          }
#endif
          if (gate.release_now) {
            ReleaseChip(chip_index, aligner_->last_release_cause());
          } else {
            // Re-check when this request's delay budget runs out. The
            // check is idempotent: if the chip was released earlier,
            // nothing is gated any more and the event is a no-op.
            simulator_->ScheduleAt(gate.deadline, [this, chip_index]() {
              SettleAllRuns(simulator_->Now());
              if (aligner_->HasGated(chip_index) &&
                  aligner_->ShouldRelease(chip_index, simulator_->Now())) {
                ReleaseChip(chip_index, aligner_->last_release_cause());
              }
            });
          }
          return;
        }
      }
    }
  }
  ForwardChunk(transfer, chunk_bytes, now, first);
}

void MemoryController::ForwardChunk(DmaTransfer* transfer,
                                    std::int64_t chunk_bytes, Tick issue_time,
                                    bool first) {
  MemoryChip& chip = *chips_[static_cast<std::size_t>(transfer->chip_index)];
  // The chunk perturbs its chip's queue (and, for a first chunk, its
  // in-flight count): a run on that chip no longer owns it exclusively.
  DmaTransfer* run = run_by_chip_[static_cast<std::size_t>(transfer->chip_index)];
  if (run != nullptr && run != transfer) SettleRun(run, simulator_->Now());
  if (first) {
    // First chunk actually reaching the chip: the transfer is now in
    // flight for idle-energy attribution purposes.
    chip.BeginTransfer();
  }
  chip.Enqueue(ChipRequest{
      RequestKind::kDma, ByteCount(chunk_bytes),
      [this, transfer, chunk_bytes, issue_time](Tick completion) {
        OnChunkComplete(transfer, chunk_bytes, issue_time, completion);
      }});
}

void MemoryController::ReleaseChip(int chip_index,
                                   [[maybe_unused]] ReleaseCause cause) {
  std::vector<GatedRequest> gated = aligner_->TakeGated(chip_index);
  if (gated.empty()) return;
#if DMASIM_OBS >= 2
  if (obs_.tracer != nullptr) {
    obs_.tracer->Release(simulator_->Now(), chip_index,
                         static_cast<int>(cause),
                         static_cast<int>(gated.size()));
  }
#endif
  MemoryChip& chip = *chips_[static_cast<std::size_t>(chip_index)];
  if (chip.power_state() != PowerState::kActive) {
    const Ticks wake =
        chip_model_->TransitionBetween(chip.power_state(), PowerState::kActive)
            .duration;
    aligner_->slack().DebitActivation(wake, static_cast<int>(gated.size()));
  }
  for (GatedRequest& request : gated) {
    request.transfer->blocked = false;
    const Tick issue = request.gated_at;
    request.transfer->gated_at = -1;
#if DMASIM_OBS >= 1
    if (obs_.gate_delay != nullptr) {
      obs_.gate_delay->Add(
          static_cast<double>(simulator_->Now() - request.gated_at));
    }
#endif
    ForwardChunk(request.transfer, request.chunk_bytes, issue, /*first=*/true);
  }
}

void MemoryController::OnChunkComplete(DmaTransfer* transfer,
                                       std::int64_t chunk_bytes,
                                       Tick issue_time, Tick completion) {
  chunk_service_.Add(static_cast<double>(completion - issue_time));
  transfer->completed_bytes += chunk_bytes;

  if (transfer->Complete()) {
    CompleteTransfer(transfer, completion);
    return;
  }
  // Re-queueing on the bus perturbs any other transfer's run there.
  DmaTransfer* run = run_by_bus_[static_cast<std::size_t>(transfer->bus_id)];
  if (run != nullptr && run != transfer) SettleRun(run, completion);
  if (TryStartRun(transfer, completion)) return;
  buses_[static_cast<std::size_t>(transfer->bus_id)]->MakeReady(transfer);
}

void MemoryController::CompleteTransfer(DmaTransfer* transfer,
                                        Tick completion) {
  chips_[static_cast<std::size_t>(transfer->chip_index)]->EndTransfer();
  ++stats_.transfers_completed;
  transfer_latency_.Add(
      static_cast<double>(completion - transfer->start_time));
#if DMASIM_OBS >= 1
  if (obs_.transfer_latency != nullptr) {
    obs_.transfer_latency->Add(
        static_cast<double>(completion - transfer->start_time));
  }
#endif
#if DMASIM_OBS >= 2
  if (obs_.tracer != nullptr) {
    obs_.tracer->Transfer(transfer->start_time, completion, transfer->id,
                          transfer->chip_index, transfer->bus_id,
                          static_cast<int>(transfer->kind),
                          transfer->obs_was_gated, transfer->total_bytes);
  }
#endif
  Callback on_complete = std::move(transfer->on_complete);
  pool_.Release(transfer);
  if (on_complete) on_complete(completion);
}

// --- Chunk-run coalescing --------------------------------------------------

bool MemoryController::TryStartRun(DmaTransfer* transfer, Tick now) {
  if (!config_.coalesce_chunk_runs) return false;
  MemoryChip& chip = *chips_[static_cast<std::size_t>(transfer->chip_index)];
  IoBus& bus = *buses_[static_cast<std::size_t>(transfer->bus_id)];
  if (!chip.CanCoalesceDmaRun() || !bus.CanCoalesce()) return false;
  if (aligner_->enabled() && aligner_->HasGated(transfer->chip_index)) {
    return false;
  }

  // With the chip and bus exclusively owned, the remaining chunks'
  // timeline is closed-form: issue at max(previous issue + slot,
  // previous completion), serve for ServiceTime(chunk).
  //
  // The run absorbs only the chunks that complete strictly before the
  // earliest pending event. That horizon is what makes coalescing exact:
  // no event executes (and so nothing is scheduled) while the run is in
  // flight, so replacing the per-chunk events removes a contiguous block
  // of schedulings and every surviving event keeps its relative
  // (time, sequence) order. Without the horizon, an event landing on a
  // chunk boundary tick would have to be ordered against replayed chunks
  // by sequence number — information the replay no longer has.
  const Tick horizon = simulator_->NextPendingTick();
  const Tick slot = bus.SlotTime();
  const Tick first_issue = std::max(now, bus.next_free_slot());
  Tick issue = first_issue;
  Tick run_end = first_issue;
  std::int64_t chunks = 0;
  std::int64_t remaining = transfer->RemainingToIssue();
  DMASIM_CHECK_GT(remaining, 0);
  while (remaining > 0) {
    const std::int64_t chunk = std::min<std::int64_t>(bus.chunk_bytes(),
                                                      remaining);
    const Tick completion =
        issue + chip_model_->ServiceTime(ByteCount(chunk)).value();
    if (completion >= horizon) break;
    run_end = completion;
    ++chunks;
    remaining -= chunk;
    issue = std::max(issue + slot, completion);
  }
  if (chunks == 0) return false;

  transfer->run_active = true;
  transfer->run_next_issue = first_issue;
  transfer->run_chunks_left = chunks;
  const std::uint64_t generation = ++transfer->run_generation;
  run_by_chip_[static_cast<std::size_t>(transfer->chip_index)] = transfer;
  run_by_bus_[static_cast<std::size_t>(transfer->bus_id)] = transfer;
  ++active_runs_;
  simulator_->ScheduleAt(run_end, [this, transfer, generation]() {
    FinishRun(transfer, generation);
  });
  return true;
}

std::uint64_t MemoryController::AdvanceRunChunks(DmaTransfer* transfer,
                                                 Tick bound) {
  // Replays this run's chunk timeline strictly before `bound`
  // (issue counted if issue < bound, completion if completion < bound —
  // matching what the per-chunk events would have executed by then), in
  // the exact order the events would have run. Returns the number of
  // events the replay stands in for.
  MemoryChip& chip = *chips_[static_cast<std::size_t>(transfer->chip_index)];
  IoBus& bus = *buses_[static_cast<std::size_t>(transfer->bus_id)];
  const Tick slot = bus.SlotTime();
  std::uint64_t credits = 0;
  while (transfer->run_chunks_left > 0) {
    const Tick issue = transfer->run_next_issue;
    if (issue >= bound) break;
    const std::int64_t chunk = std::min<std::int64_t>(
        bus.chunk_bytes(), transfer->RemainingToIssue());
    const Tick completion =
        issue + chip_model_->ServiceTime(ByteCount(chunk)).value();
    bus.AccountCoalescedChunk(transfer, chunk, issue);
    if (aligner_->enabled()) aligner_->slack().CreditArrival();
    ++credits;  // Stands in for the bus Issue event.
    if (completion >= bound) {
      // Mid-service at the settle point: restore the chip's real state
      // and let the completion fire as an ordinary event.
      chip.ResumeCoalescedService(
          issue,
          ChipRequest{RequestKind::kDma, ByteCount(chunk),
                      [this, transfer, chunk, issue](Tick done) {
                        OnChunkComplete(transfer, chunk, issue, done);
                      }});
      return credits;
    }
    chip.AccountCoalescedCycle(issue, completion, ByteCount(chunk));
    chunk_service_.Add(static_cast<double>(completion - issue));
    transfer->completed_bytes += chunk;
    ++credits;  // Stands in for the chip ServeDone event.
    --transfer->run_chunks_left;
    transfer->run_next_issue = std::max(issue + slot, completion);
  }
  return credits;
}

void MemoryController::SettleRun(DmaTransfer* transfer, Tick bound) {
  DMASIM_CHECK(transfer->run_active);
  // Dissolve first: the pending run-end event becomes a stale no-op.
  transfer->run_active = false;
  ++transfer->run_generation;
  run_by_chip_[static_cast<std::size_t>(transfer->chip_index)] = nullptr;
  run_by_bus_[static_cast<std::size_t>(transfer->bus_id)] = nullptr;
  --active_runs_;

  MemoryChip& chip = *chips_[static_cast<std::size_t>(transfer->chip_index)];
  const std::uint64_t credits = AdvanceRunChunks(transfer, bound);
  if (credits > 0) simulator_->CreditExecuted(credits);
  // The run-end event sits at the last completion, which is >= bound
  // whenever a settle interrupts the run — so the transfer cannot have
  // finished here.
  DMASIM_CHECK(!transfer->Complete());
  if (!chip.serving()) {
    // Settled in an inter-chunk gap: hand the transfer back to the bus
    // for its next chunk (the replay left run_next_issue >= bound - 1).
    buses_[static_cast<std::size_t>(transfer->bus_id)]
        ->ResumeCoalescedTransfer(transfer, transfer->run_next_issue);
  }
}

void MemoryController::SettleAllRuns(Tick bound) {
  if (active_runs_ == 0) return;
  for (std::size_t chip = 0; chip < run_by_chip_.size(); ++chip) {
    if (run_by_chip_[chip] != nullptr) SettleRun(run_by_chip_[chip], bound);
  }
  DMASIM_CHECK_EQ(active_runs_, 0);
}

void MemoryController::FinishRun(DmaTransfer* transfer,
                                 std::uint64_t generation) {
  if (transfer->run_generation != generation) {
    // The run was settled (or the descriptor recycled) before this event
    // fired: it stands in for nothing and must not count.
    simulator_->UncountExecuted();
    return;
  }
  const Tick now = simulator_->Now();
  transfer->run_active = false;
  ++transfer->run_generation;
  run_by_chip_[static_cast<std::size_t>(transfer->chip_index)] = nullptr;
  run_by_bus_[static_cast<std::size_t>(transfer->bus_id)] = nullptr;
  --active_runs_;

  // bound = now + 1: this event IS the run's last absorbed completion, so
  // the whole run — that completion included — is in the replayed past.
  const std::uint64_t credits = AdvanceRunChunks(transfer, now + 1);
  DMASIM_CHECK_EQ(transfer->run_chunks_left, 0);
  DMASIM_CHECK_GE(credits, 1u);
  // This event already counted itself; credit the rest of the 2-per-chunk
  // events it replaced.
  simulator_->CreditExecuted(credits - 1);
  if (transfer->Complete()) {
    CompleteTransfer(transfer, now);
    return;
  }
  // The run absorbed only the chunks that fit before the next pending
  // event. Continue exactly as the last absorbed chunk's completion event
  // would have: open the next run if the window allows, else requeue on
  // the bus for the ordinary per-chunk path.
  if (TryStartRun(transfer, now)) return;
  buses_[static_cast<std::size_t>(transfer->bus_id)]->MakeReady(transfer);
}

// ---------------------------------------------------------------------------

void MemoryController::ScheduleEpoch() {
  simulator_->ScheduleAfter(config_.dma.ta.epoch_length, [this]() {
    // Epoch accounting reads the slack account and may release chips.
    SettleAllRuns(simulator_->Now());
    const std::vector<int> to_release = aligner_->OnEpoch(simulator_->Now());
    for (std::size_t i = 0; i < to_release.size(); ++i) {
      ReleaseChip(to_release[i], aligner_->last_epoch_causes()[i]);
    }
#if DMASIM_OBS >= 2
    if (obs_.tracer != nullptr) {
      obs_.tracer->SlackSample(simulator_->Now(), aligner_->slack().slack(),
                               aligner_->TotalPending());
    }
#endif
    ScheduleEpoch();
  });
}

void MemoryController::ScheduleLayoutInterval() {
  simulator_->ScheduleAfter(config_.dma.pl.interval,
                            [this]() { RunLayoutInterval(); });
}

void MemoryController::ScheduleMonitorSample() {
  simulator_->ScheduleAfter(config_.monitor.sampling_interval, [this]() {
    // Occupancy probe: attribute each in-flight transfer not yet seen by
    // an earlier probe to its region (edge-triggered; see DmaTransfer).
    // Invisible to the simulated hardware, so coalesced runs need no
    // settling — the kernel's pending-event horizon guarantees that any
    // transfer completing before this event has already been released,
    // and a mid-run descriptor's page/chip fields are stable.
    monitor_->BeginProbe();
    pool_.ForEachActive([this](DmaTransfer& transfer) {
      if (transfer.monitor_seen) return;
      transfer.monitor_seen = true;
      monitor_->ObserveTransfer(transfer.physical_page, transfer.chip_index);
    });
    ScheduleMonitorSample();
  });
}

void MemoryController::ScheduleMonitorAggregation() {
  simulator_->ScheduleAfter(config_.monitor.aggregation_interval, [this]() {
    // Aggregation: age/merge regions and apply the demote-chip schemes.
    // TryStepDown refuses on any chip with queued work or an in-flight
    // transfer, and a coalesced run's chip always has in-flight >= 1, so
    // runs again need no settling.
    const std::vector<ChipDemotion>& demote = monitor_->Aggregate();
    for (const ChipDemotion& demotion : demote) {
      if (chips_[static_cast<std::size_t>(demotion.chip)]->TryStepDown(
              demotion.depth)) {
        monitor_->NoteDemotionApplied();
      }
    }
    ScheduleMonitorAggregation();
  });
}

void MemoryController::RunLayoutInterval() {
  // Migration copies contend with any coalesced run's chips.
  SettleAllRuns(simulator_->Now());
  // With the monitor enabled the layout planner sees the monitored
  // popularity estimate instead of the oracle per-page counts; the oracle
  // tracker keeps recording either way so the estimate can be scored
  // against it (hotness error).
  const std::vector<std::uint32_t>* counts = &popularity_.counts();
  if (monitor_ != nullptr) {
    counts = &monitor_->MaterializeCounts();
    monitor_->RecordHotnessError(popularity_.counts());
  }
  const LayoutPlan plan = layout_.Plan(*counts, page_to_chip_);
  if (!plan.moves.empty()) ++stats_.migration_rounds;
  stats_.deferred_migrations += static_cast<std::uint64_t>(plan.deferred_moves);
  for (const PageMove& move : plan.moves) {
    DMASIM_CHECK_EQ(page_to_chip_[move.page], move.from_chip);
    page_to_chip_[move.page] = move.to_chip;
    ++stats_.migrations;
    // Charge the copy: a read on the source chip and a write on the
    // destination chip. Copies run at lowest priority and in small chunks
    // (Section 4.2.2's "perform page migration in small chunks") so DMA
    // and CPU requests are delayed by at most one chunk service.
    for (std::int64_t offset = 0; offset < config_.page_bytes;
         offset += config_.chunk_bytes) {
      const std::int64_t chunk =
          std::min(config_.chunk_bytes, config_.page_bytes - offset);
      chips_[static_cast<std::size_t>(move.from_chip)]->Enqueue(
          ChipRequest{RequestKind::kMigration, ByteCount(chunk), {}});
      chips_[static_cast<std::size_t>(move.to_chip)]->Enqueue(
          ChipRequest{RequestKind::kMigration, ByteCount(chunk), {}});
    }
  }
  ++layout_intervals_run_;
  if (config_.dma.pl.age_period_intervals > 0 &&
      layout_intervals_run_ % config_.dma.pl.age_period_intervals == 0) {
    popularity_.Age();
  }
  ScheduleLayoutInterval();
}

double MemoryController::HottestChipShare() const {
  std::uint64_t total = 0;
  std::uint64_t best = 0;
  for (std::uint64_t count : transfers_per_chip_) {
    total += count;
    if (count > best) best = count;
  }
  return total > 0 ? static_cast<double>(best) / static_cast<double>(total)
                   : 0.0;
}

EnergyBreakdown MemoryController::CollectEnergy() {
  // Reading results after RunUntil(T): events at exactly T have executed,
  // so the replay bound is T + 1 (issue/completion at T are in the past).
  SettleAllRuns(simulator_->Now() + 1);
  EnergyBreakdown total;
  for (auto& chip : chips_) {
    chip->SyncAccounting();
    total += chip->energy();
  }
  return total;
}

double MemoryController::UtilizationFactor() {
  SettleAllRuns(simulator_->Now() + 1);
  Tick serving = 0;
  Tick idle_dma = 0;
  for (auto& chip : chips_) {
    chip->SyncAccounting();
    serving += chip->stats().dma_serving;
    idle_dma += chip->stats().active_idle_dma;
  }
  const Tick active = serving + idle_dma;
  return active > 0 ? static_cast<double>(serving) /
                          static_cast<double>(active)
                    : 0.0;
}

}  // namespace dmasim
