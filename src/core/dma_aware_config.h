// Configuration for the DMA-aware memory energy management techniques.
#ifndef DMASIM_CORE_DMA_AWARE_CONFIG_H_
#define DMASIM_CORE_DMA_AWARE_CONFIG_H_

#include <cstdint>

#include "util/time.h"

namespace dmasim {

// DMA-TA (temporal alignment, Section 4.1) knobs.
struct TemporalAlignmentConfig {
  bool enabled = false;

  // Acceptable average per-request slowdown: the average DMA-memory
  // request service time may grow to (1 + mu) * T. Derived offline from a
  // client-perceived limit by `CpLimitCalibrator`.
  double mu = 0.0;

  // Epoch used for the pessimistic slack debiting (Section 4.1.2). The
  // paper reports insensitivity to this value as long as it is not too
  // large.
  Tick epoch_length = 50 * kMicrosecond;

  // Minimum gathered batch size for a quorum release, expressed as a
  // multiple of k (the bus count that saturates memory bandwidth). 1.0
  // releases as soon as k distinct buses are gathered (the paper's rule);
  // larger values gather deeper batches, trading extra (budgeted) delay
  // for longer fully-aligned episodes and fewer wakeups. Studied by
  // bench_ablation_gather.
  double gather_depth_factor = 1.0;

  // Cost-benefit guard (the paper's future-work "run-time cost-benefit
  // analysis before migration/delay", applied to gating): if a transfer's
  // whole delay budget is below this, it cannot plausibly gather
  // companions before its deadline, so it is not delayed at all.
  Tick min_gating_budget = 25 * kMicrosecond;

  // Upper bound on accumulated slack, expressed in whole-request credits
  // (i.e. max slack = cap * mu * T). The paper's account is uncapped; the
  // cap bounds the worst-case delay of an isolated gated transfer without
  // affecting the average-time guarantee. Set very large to disable.
  double slack_cap_requests = 4096.0;
};

// PL (popularity-based layout, Section 4.2) knobs.
struct PopularityLayoutConfig {
  bool enabled = false;

  // Number of popularity groups including the cold group. 2 (one hot, one
  // cold) is the paper's recommended setting.
  int groups = 2;

  // The hot chips are sized so the pages placed there account for this
  // fraction of DMA accesses in the last interval (the paper's p = 60%).
  double hot_access_share = 0.60;

  // Page-migration interval (multiple epochs).
  Tick interval = 20 * kMillisecond;

  // Cap on page migrations per interval (bounds the worst-case copy storm;
  // remaining moves are deferred to the next interval).
  int max_migrations_per_interval = 4096;

  // Reference counters are aged by a right shift every
  // `age_period_intervals` migration intervals (0 disables aging). The
  // paper ages "periodically"; a period of several intervals gives the
  // counters a window long enough to resolve the 60% access share of a
  // Zipf-like popularity curve while still adapting to workload change.
  int age_period_intervals = 8;

  // Pages with fewer references than this in the current window are never
  // targeted at hot chips: one-off references are noise, and migrating
  // them costs more energy than their placement could ever save (the
  // paper's "pages accessed 8 times are not necessarily hotter than pages
  // accessed 10 times" argument, applied at the cold boundary).
  // A single cache-missing client access already produces two DMA
  // references (disk in + network out), so the floor sits above that.
  std::uint32_t min_hot_count = 3;
};

struct DmaAwareConfig {
  TemporalAlignmentConfig ta;
  PopularityLayoutConfig pl;
};

}  // namespace dmasim

#endif  // DMASIM_CORE_DMA_AWARE_CONFIG_H_
