// PL: popularity-based page layout (Section 4.2).
//
// At the end of every interval the layout manager ranks logical pages by
// DMA reference count, sizes the hot chip set N_hot so the pages placed
// there cover a fraction p of the interval's accesses, partitions the hot
// chips into exponentially sized groups (1, 2, 4, ... chips, the paper's
// logarithmic ordering), and plans page *swaps* that bring every
// misplaced page into a chip of its target group. Only group membership
// matters -- pages within a group are interchangeable -- which is exactly
// why fewer groups need fewer migrations.
#ifndef DMASIM_CORE_LAYOUT_MANAGER_H_
#define DMASIM_CORE_LAYOUT_MANAGER_H_

#include <cstdint>
#include <vector>

#include "core/dma_aware_config.h"
#include "util/check.h"

namespace dmasim {

struct PageMove {
  std::uint64_t page = 0;
  int from_chip = 0;
  int to_chip = 0;
};

struct LayoutPlan {
  // Swap-paired moves (occupancy preserving: moves come in pairs
  // exchanging two pages between two chips).
  std::vector<PageMove> moves;
  int hot_chips = 0;
  // Group index per chip: 0 is the hottest group, `group_count - 1` the
  // cold group.
  std::vector<int> group_of_chip;
  int group_count = 0;
  // Moves skipped because of the per-interval migration cap.
  int deferred_moves = 0;
};

class LayoutManager {
 public:
  LayoutManager(const PopularityLayoutConfig& config, int chips,
                int pages_per_chip);

  // Plans migrations given per-logical-page reference counts and the
  // current logical-page -> chip mapping. Reuses internal scratch
  // buffers across calls (PL planning runs every interval on the
  // simulation hot path), so concurrent calls on one instance are not
  // allowed; each controller owns its manager, so this never arises.
  LayoutPlan Plan(const std::vector<std::uint32_t>& counts,
                  const std::vector<std::int32_t>& page_to_chip) const;

  const PopularityLayoutConfig& config() const { return config_; }
  int chips() const { return chips_; }
  int pages_per_chip() const { return pages_per_chip_; }

  // Hot-group chip counts (1, 2, 4, ..., clipped to `hot_chips` total).
  static std::vector<int> HotGroupSizes(int hot_chips, int groups);

 private:
  PopularityLayoutConfig config_;
  int chips_;
  int pages_per_chip_;

  // Scratch reused across Plan calls; every buffer is restored to its
  // resting value before Plan returns by resetting only the entries it
  // touched, so a call never observes the previous interval's state.
  static constexpr std::uint8_t kNoTargetGroup = 0xFF;
  mutable std::vector<std::uint32_t> ranked_;
  mutable std::vector<std::uint8_t> target_group_;  // kNoTargetGroup = cold.
  mutable std::vector<std::uint8_t> moved_;
  mutable std::vector<std::vector<std::uint32_t>> evictable_;
};

}  // namespace dmasim

#endif  // DMASIM_CORE_LAYOUT_MANAGER_H_
