#include "core/temporal_aligner.h"

#include <algorithm>

#include "audit/audit_config.h"

namespace dmasim {

TemporalAligner::TemporalAligner(const TemporalAlignmentConfig& config,
                                 int chip_count, int bus_count, int k,
                                 Tick t_request)
    : config_(config),
      bus_count_(bus_count),
      k_(k),
      gather_depth_(std::max(
          k, static_cast<int>(config.gather_depth_factor * k + 0.5))),
      slack_(std::max(config.mu, 0.0), t_request, config.slack_cap_requests),
      gated_(static_cast<std::size_t>(chip_count)) {
  DMASIM_EXPECTS(chip_count > 0);
  DMASIM_EXPECTS(bus_count > 0);
  // DistinctBuses/DrainBound index 64-wide per-bus state by bus id; more
  // buses would silently alias into the same slots and corrupt the
  // quorum and drain math (see the header's limit note).
  DMASIM_EXPECTS(bus_count <= 64);
  DMASIM_EXPECTS(k > 0);
  DMASIM_EXPECTS(config.gather_depth_factor >= 1.0);
}

const char* ReleaseCauseName(ReleaseCause cause) {
  switch (cause) {
    case ReleaseCause::kQuorum:
      return "quorum";
    case ReleaseCause::kBufferCap:
      return "buffer-cap";
    case ReleaseCause::kDeadline:
      return "deadline";
    case ReleaseCause::kSlackExhausted:
      return "slack-exhausted";
    case ReleaseCause::kSlackBound:
      return "slack-bound";
    case ReleaseCause::kCpuPriority:
      return "cpu-priority";
    case ReleaseCause::kEpochExhausted:
      return "epoch-exhausted";
  }
  return "?";
}

namespace {

// The transfer's own delay budget: it contributes one mu*T credit per
// DMA-memory request, all of which may be spent delaying its first one.
Tick TransferBudget(const DmaTransfer& transfer, std::int64_t chunk_bytes,
                    double mu, Tick t_request) {
  const std::int64_t requests =
      (transfer.total_bytes + chunk_bytes - 1) / chunk_bytes;
  return static_cast<Tick>(mu * static_cast<double>(t_request) *
                           static_cast<double>(requests));
}

}  // namespace

bool TemporalAligner::WorthGating(const DmaTransfer& transfer,
                                  std::int64_t chunk_bytes) const {
  return TransferBudget(transfer, chunk_bytes, slack_.mu(),
                        slack_.t_request()) >= config_.min_gating_budget;
}

TemporalAligner::GateResult TemporalAligner::Gate(int chip,
                                                  DmaTransfer* transfer,
                                                  std::int64_t chunk_bytes,
                                                  Tick now) {
  DMASIM_EXPECTS(enabled());
  DMASIM_EXPECTS(transfer != nullptr);
#if DMASIM_AUDIT_LEVEL >= 2
  // Lockstep audit: only a transfer's very first request may ever be
  // delayed — at gate time exactly one chunk has been issued (the one
  // being buffered) and none served.
  DMASIM_CHECK_EQ(transfer->issued_bytes, chunk_bytes);
  DMASIM_CHECK_EQ(transfer->completed_bytes, 0);
#endif
  auto& list = gated_[static_cast<std::size_t>(chip)];
  transfer->blocked = true;
  transfer->gated_at = now;
#if DMASIM_OBS >= 2
  transfer->obs_was_gated = true;
#endif

  const Tick budget =
      TransferBudget(*transfer, chunk_bytes, slack_.mu(), slack_.t_request());

  GatedRequest request{transfer, chunk_bytes, now, now + budget};
  list.push_back(request);
  ++total_pending_;
  ++total_gated_;
  buffered_bytes_ += chunk_bytes;
  max_buffered_bytes_ = std::max(max_buffered_bytes_, buffered_bytes_);
  return GateResult{ShouldRelease(chip, now), request.deadline};
}

int TemporalAligner::DistinctBuses(int chip) const {
  const auto& list = gated_[static_cast<std::size_t>(chip)];
  // Bus counts are small (a handful); a bitmask suffices.
  std::uint64_t mask = 0;
  for (const GatedRequest& request : list) {
    mask |= 1ULL << (request.transfer->bus_id & 63);
  }
  int distinct = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++distinct;
  }
  return distinct;
}

double TemporalAligner::DrainBound(int chip) const {
  const auto& list = gated_[static_cast<std::size_t>(chip)];
  // m = max pending-per-bus for this chip.
  int per_bus[64] = {};
  int m = 0;
  for (const GatedRequest& request : list) {
    const int bus = request.transfer->bus_id & 63;
    m = std::max(m, ++per_bus[bus]);
  }
  const int groups = (bus_count_ + k_ - 1) / k_;  // ceil(r / k)
  return static_cast<double>(m) * static_cast<double>(slack_.t_request()) *
         static_cast<double>(groups);
}

bool TemporalAligner::ShouldRelease(int chip, Tick now) const {
  const auto& list = gated_[static_cast<std::size_t>(chip)];
  if (list.empty()) return false;
  // (a) Full utilization achievable: k distinct buses gathered.
  if (DistinctBuses(chip) >= k_ &&
      static_cast<int>(list.size()) >= gather_depth_) {
    last_release_was_quorum_ = true;
    last_release_cause_ = ReleaseCause::kQuorum;
    return true;
  }
  // (b) Buffer cap: with fewer than k distinct buses, waiting can still
  // upgrade the alignment, but not indefinitely -- beyond the configured
  // depth plus k the marginal gain cannot justify further queueing.
  if (static_cast<int>(list.size()) >= gather_depth_ + k_) {
    last_release_was_quorum_ = true;
    last_release_cause_ = ReleaseCause::kBufferCap;
    return true;
  }
  last_release_was_quorum_ = false;
  // (c) A gated transfer exhausted its own delay budget.
  for (const GatedRequest& request : list) {
    if (request.deadline <= now) {
      last_release_cause_ = ReleaseCause::kDeadline;
      return true;
    }
  }
  // (d) Global guarantee: slack exhausted, or expected queueing delay of
  // the pending requests exceeds the remaining slack.
  if (slack_.Exhausted()) {
    last_release_cause_ = ReleaseCause::kSlackExhausted;
    return true;
  }
  const double n = static_cast<double>(list.size());
  const double expected_delay = n * DrainBound(chip) / 2.0;
  if (expected_delay >= slack_.slack()) {
    last_release_cause_ = ReleaseCause::kSlackBound;
    return true;
  }
  return false;
}

std::vector<GatedRequest> TemporalAligner::TakeGated(int chip) {
  auto& list = gated_[static_cast<std::size_t>(chip)];
  std::vector<GatedRequest> taken = std::move(list);
  list.clear();
  total_pending_ -= static_cast<int>(taken.size());
  DMASIM_CHECK_GE(total_pending_, 0);
  for (const GatedRequest& request : taken) {
    buffered_bytes_ -= request.chunk_bytes;
  }
  if (!taken.empty()) {
    if (last_release_was_quorum_) {
      ++released_quorum_;
    } else {
      ++released_slack_;
    }
  }
  return taken;
}

std::vector<int> TemporalAligner::OnEpoch(Tick now) {
  slack_.DebitEpoch(Ticks(config_.epoch_length), total_pending_);
  std::vector<int> to_release;
  last_epoch_causes_.clear();
  if (total_pending_ == 0) return to_release;

  if (slack_.Exhausted()) {
    // Safety valve: the per-transfer deadlines (rule c) already bound each
    // request's delay, so on global exhaustion it suffices to drain the
    // single chip holding the oldest request. Releasing *all* gated chips
    // here would synchronize their transfers onto shared I/O buses and
    // stretch every one of them (a convoy), wasting the energy the
    // technique is meant to save.
    int oldest_chip = -1;
    Tick oldest = 0;
    for (int chip = 0; chip < static_cast<int>(gated_.size()); ++chip) {
      for (const GatedRequest& request : gated_[static_cast<std::size_t>(
               chip)]) {
        if (oldest_chip < 0 || request.gated_at < oldest) {
          oldest = request.gated_at;
          oldest_chip = chip;
        }
      }
    }
    if (oldest_chip >= 0) {
      to_release.push_back(oldest_chip);
      last_epoch_causes_.push_back(ReleaseCause::kEpochExhausted);
    }
    return to_release;
  }

  for (int chip = 0; chip < static_cast<int>(gated_.size()); ++chip) {
    if (HasGated(chip) && ShouldRelease(chip, now)) {
      to_release.push_back(chip);
      last_epoch_causes_.push_back(last_release_cause_);
    }
  }
  return to_release;
}

void TemporalAligner::OnCpuAccess(int chip, Ticks service_time) {
  const int pending = PendingFor(chip);
  if (pending > 0) slack_.DebitCpuService(service_time, pending);
}

}  // namespace dmasim
