#include "core/layout_manager.h"

#include <algorithm>
#include <numeric>

namespace dmasim {

LayoutManager::LayoutManager(const PopularityLayoutConfig& config, int chips,
                             int pages_per_chip)
    : config_(config), chips_(chips), pages_per_chip_(pages_per_chip) {
  DMASIM_EXPECTS(chips >= 2);  // Need at least one hot and one cold chip.
  DMASIM_EXPECTS(pages_per_chip > 0);
  DMASIM_EXPECTS(config.groups >= 2);
  DMASIM_EXPECTS(config.hot_access_share > 0.0 &&
                 config.hot_access_share <= 1.0);
}

std::vector<int> LayoutManager::HotGroupSizes(int hot_chips, int groups) {
  DMASIM_EXPECTS(hot_chips >= 1);
  DMASIM_EXPECTS(groups >= 2);
  std::vector<int> sizes;
  int remaining = hot_chips;
  const int hot_groups = groups - 1;  // Last group is the cold group.
  for (int g = 0; g < hot_groups && remaining > 0; ++g) {
    int size = 1 << g;  // 1, 2, 4, ... (the paper's exponential sizing).
    if (g == hot_groups - 1 || size > remaining) size = remaining;
    sizes.push_back(size);
    remaining -= size;
  }
  return sizes;
}

LayoutPlan LayoutManager::Plan(
    const std::vector<std::uint32_t>& counts,
    const std::vector<std::int32_t>& page_to_chip) const {
  DMASIM_EXPECTS(counts.size() == page_to_chip.size());
  const std::uint64_t pages = counts.size();
  LayoutPlan plan;

  // Rank referenced pages by popularity (count desc, page asc for
  // determinism). `ranked_` keeps its capacity across intervals.
  std::vector<std::uint32_t>& ranked = ranked_;
  ranked.clear();
  std::uint64_t total = 0;
  for (std::uint64_t page = 0; page < pages; ++page) {
    if (counts[page] > 0) {
      ranked.push_back(static_cast<std::uint32_t>(page));
      total += counts[page];
    }
  }
  if (total == 0) return plan;
  std::sort(ranked.begin(), ranked.end(),
            [&counts](std::uint32_t a, std::uint32_t b) {
              if (counts[a] != counts[b]) return counts[a] > counts[b];
              return a < b;
            });

  // Size the hot set: the smallest prefix of ranked pages covering the
  // target access share, rounded up to whole chips.
  const double target = config_.hot_access_share * static_cast<double>(total);
  std::uint64_t covered = 0;
  std::uint64_t hot_pages = 0;
  for (std::uint32_t page : ranked) {
    if (counts[page] < config_.min_hot_count) break;  // Noise floor.
    covered += counts[page];
    ++hot_pages;
    if (static_cast<double>(covered) >= target) break;
  }
  if (hot_pages == 0) return plan;
  int hot_chips = static_cast<int>(
      (hot_pages + static_cast<std::uint64_t>(pages_per_chip_) - 1) /
      static_cast<std::uint64_t>(pages_per_chip_));
  // The exponential group structure (1, 2, 4, ... chips) needs at least
  // 2^(K-2) + ... + 1 hot chips to give every hot group its own chips;
  // more groups therefore spread the hot pages over more chips. This is
  // the structural cost of finer popularity ordering that makes 2 groups
  // the paper's best setting.
  const int min_chips_for_groups = (1 << (config_.groups - 1)) - 1;
  hot_chips = std::clamp(std::max(hot_chips, min_chips_for_groups), 1,
                         chips_ - 1);
  plan.hot_chips = hot_chips;

  // Chip -> group map: hot groups first (chips 0..hot_chips-1), then cold.
  const std::vector<int> sizes = HotGroupSizes(hot_chips, config_.groups);
  plan.group_of_chip.assign(static_cast<std::size_t>(chips_),
                            static_cast<int>(sizes.size()));  // Cold id.
  plan.group_count = static_cast<int>(sizes.size()) + 1;
  {
    int chip = 0;
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      for (int i = 0; i < sizes[g]; ++i) {
        plan.group_of_chip[static_cast<std::size_t>(chip++)] =
            static_cast<int>(g);
      }
    }
  }
  const int cold_group = static_cast<int>(sizes.size());

  // Only the prefix of pages that actually carries the p access share is
  // placed deliberately; the remaining hot-chip capacity keeps whatever
  // resides there (migrating unreferenced pages would cost energy for no
  // benefit).
  const std::uint64_t hot_capacity =
      static_cast<std::uint64_t>(hot_chips) *
      static_cast<std::uint64_t>(pages_per_chip_);
  const std::uint64_t hot_ranks = std::min<std::uint64_t>(
      {static_cast<std::uint64_t>(ranked.size()), hot_capacity, hot_pages});

  // Partition the hot page ranks among the hot groups proportionally to
  // each group's chip count (hottest pages into the smallest group), so
  // the popularity ordering across groups matches the paper's scheme.
  std::vector<std::uint64_t> group_rank_end(sizes.size(), 0);
  {
    std::uint64_t assigned = 0;
    int chips_seen = 0;
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      chips_seen += sizes[g];
      std::uint64_t end = hot_ranks * static_cast<std::uint64_t>(chips_seen) /
                          static_cast<std::uint64_t>(hot_chips);
      // Never exceed the group's own capacity.
      const std::uint64_t capacity_end =
          assigned + static_cast<std::uint64_t>(sizes[g]) *
                         static_cast<std::uint64_t>(pages_per_chip_);
      end = std::min(end, capacity_end);
      if (g + 1 == sizes.size()) end = std::min(hot_ranks, capacity_end);
      group_rank_end[g] = std::max(end, assigned);
      assigned = group_rank_end[g];
    }
  }
  auto target_group_of_rank = [&](std::uint64_t rank) {
    for (std::size_t g = 0; g < group_rank_end.size(); ++g) {
      if (rank < group_rank_end[g]) return static_cast<int>(g);
    }
    return cold_group;
  };

  // Dense per-page scratch. Instead of refilling a whole-memory array
  // every interval, entries rest at a sentinel (`kNoTargetGroup` = cold
  // target, 0 = not moved) and only the entries a call touches are
  // written -- and restored before returning. The full fill happens once.
  DMASIM_CHECK_LT(sizes.size(), static_cast<std::size_t>(kNoTargetGroup));
  if (target_group_.size() != pages) {
    target_group_.assign(pages, kNoTargetGroup);
    moved_.assign(pages, 0);
  }
  std::vector<std::uint8_t>& target_group_of_page = target_group_;
  for (std::uint64_t rank = 0; rank < hot_ranks; ++rank) {
    target_group_of_page[ranked[rank]] =
        static_cast<std::uint8_t>(target_group_of_rank(rank));
  }

  if (evictable_.size() != static_cast<std::size_t>(chips_)) {
    evictable_.resize(static_cast<std::size_t>(chips_));
  }
  std::vector<std::vector<std::uint32_t>>& evictable = evictable_;
  for (auto& candidates : evictable) candidates.clear();
  for (std::uint64_t page = 0; page < pages; ++page) {
    const int chip = page_to_chip[page];
    if (chip >= hot_chips) continue;
    // A resting sentinel means "cold target", which never matches a hot
    // chip's group -- identical to the old dense cold_group fill.
    const std::uint8_t target = target_group_of_page[page];
    if (target != plan.group_of_chip[static_cast<std::size_t>(chip)]) {
      evictable[static_cast<std::size_t>(chip)].push_back(
          static_cast<std::uint32_t>(page));
    }
  }

  // Greedy swap planning in rank order (hottest pages first), respecting
  // the per-interval migration cap.
  std::vector<std::uint8_t>& moved = moved_;
  std::vector<int> next_chip_in_group(static_cast<std::size_t>(sizes.size()),
                                      0);
  auto group_first_chip = [&sizes](int group) {
    int first = 0;
    for (int g = 0; g < group; ++g) first += sizes[static_cast<std::size_t>(g)];
    return first;
  };

  for (std::uint64_t rank = 0; rank < hot_ranks; ++rank) {
    const std::uint32_t page = ranked[rank];
    if (moved[page]) continue;
    const int group = target_group_of_rank(rank);
    const int current_chip = page_to_chip[page];
    if (plan.group_of_chip[static_cast<std::size_t>(current_chip)] == group) {
      continue;  // Already in the right group: no migration needed.
    }
    if (static_cast<int>(plan.moves.size()) + 2 >
        config_.max_migrations_per_interval) {
      ++plan.deferred_moves;
      continue;
    }

    // Find a chip of the target group with an evictable resident.
    const int first = group_first_chip(group);
    const int span = sizes[static_cast<std::size_t>(group)];
    int destination = -1;
    std::uint32_t victim = 0;
    for (int probe = 0; probe < span; ++probe) {
      int& cursor = next_chip_in_group[static_cast<std::size_t>(group)];
      const int chip = first + (cursor % span);
      cursor = (cursor + 1) % span;
      auto& candidates = evictable[static_cast<std::size_t>(chip)];
      while (!candidates.empty() && moved[candidates.back()]) {
        candidates.pop_back();  // Skip stale entries.
      }
      if (!candidates.empty()) {
        destination = chip;
        victim = candidates.back();
        candidates.pop_back();
        break;
      }
    }
    if (destination < 0) continue;  // Group saturated with hot pages.

    // Swap `page` and `victim`.
    plan.moves.push_back(PageMove{page, current_chip, destination});
    plan.moves.push_back(PageMove{victim, destination, current_chip});
    // Each page migrates at most once per interval; a bounced victim that
    // itself deserves a hot slot is fixed in the next interval.
    moved[page] = 1;
    moved[victim] = 1;
  }

  // Restore the dense scratch to its resting state: every touched
  // `target_group_` entry is a ranked hot page, and every touched
  // `moved_` entry appears in `plan.moves`.
  for (std::uint64_t rank = 0; rank < hot_ranks; ++rank) {
    target_group_of_page[ranked[rank]] = kNoTargetGroup;
  }
  for (const PageMove& move : plan.moves) {
    moved[move.page] = 0;
  }

  return plan;
}

}  // namespace dmasim
