// Slack bookkeeping for DMA-TA's soft performance guarantee
// (Section 4.1.2 of the paper).
//
// Credits: every arriving DMA-memory request adds mu*T.
// Debits:
//   * at each epoch boundary, epoch_length * (number of pending gated
//     requests) -- the paper's pessimistic assumption that every pending
//     request waits the whole epoch;
//   * on releasing a chip, its activation latency times the requests
//     pending for it;
//   * on a processor access to a chip with pending requests, the access
//     service time times that pending count.
// A negative balance means the guarantee is at risk, so gated requests
// must be released.
#ifndef DMASIM_CORE_SLACK_ACCOUNT_H_
#define DMASIM_CORE_SLACK_ACCOUNT_H_

#include <algorithm>
#include <cstdint>

#include "util/check.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

class SlackAccount {
 public:
  // `t_request` is T, the unaligned/unmanaged average DMA-memory request
  // service time (one I/O-bus slot). `cap` limits the balance to
  // cap * mu * T; pass a huge cap to emulate the paper's unbounded
  // account.
  SlackAccount(double mu, Tick t_request, double cap_requests)
      : mu_(mu), t_request_(t_request) {
    DMASIM_EXPECTS(mu >= 0.0);
    DMASIM_EXPECTS(t_request > 0);
    DMASIM_EXPECTS(cap_requests > 0.0);
    cap_ = cap_requests * mu * static_cast<double>(t_request);
  }

  // A DMA-memory request arrived at the controller.
  void CreditArrival() {
    slack_ = std::min(cap_, slack_ + mu_ * static_cast<double>(t_request_));
    ++arrivals_;
  }

  // Epoch boundary: pessimistically charge all pending requests.
  void DebitEpoch(Ticks epoch_length, int pending_requests) {
    DMASIM_EXPECTS(pending_requests >= 0);
    slack_ -= static_cast<double>(epoch_length.value()) * pending_requests;
  }

  // A chip with `pending_requests` gated requests is being activated.
  void DebitActivation(Ticks activation_latency, int pending_requests) {
    DMASIM_EXPECTS(pending_requests >= 0);
    slack_ -=
        static_cast<double>(activation_latency.value()) * pending_requests;
  }

  // A processor access is serviced by a chip with pending gated requests.
  void DebitCpuService(Ticks service_time, int pending_requests) {
    DMASIM_EXPECTS(pending_requests >= 0);
    slack_ -= static_cast<double>(service_time.value()) * pending_requests;
  }

  double slack() const { return slack_; }
  double cap() const { return cap_; }
  bool Exhausted() const { return slack_ <= 0.0; }
  double mu() const { return mu_; }
  Tick t_request() const { return t_request_; }
  std::uint64_t arrivals() const { return arrivals_; }

 private:
  double mu_;
  Tick t_request_;
  double cap_ = 0.0;
  double slack_ = 0.0;
  std::uint64_t arrivals_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_CORE_SLACK_ACCOUNT_H_
