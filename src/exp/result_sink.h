// Result capture for experiment sweeps.
//
// The runner produces one `RunRecord` per grid entry — the resolved
// plan, the simulation results, run status (a failed configuration is
// recorded, not fatal), and the derived deltas against the cell's
// baseline. `ResultSink`s observe records twice:
//
//   * `OnRunComplete` fires as each run finishes, serialized by the
//     runner (never concurrently), in completion order — which depends
//     on thread scheduling. Streaming sinks (NDJSON) hang off this.
//   * `OnSweepComplete` fires once with all records sorted by run id —
//     a thread-count-independent view. Artifact and table sinks use it,
//     which is why a parallel sweep's JSON artifact is byte-identical
//     to the serial one (timing fields aside).
#ifndef DMASIM_EXP_RESULT_SINK_H_
#define DMASIM_EXP_RESULT_SINK_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/experiment_spec.h"
#include "exp/json.h"
#include "server/simulation_driver.h"

namespace dmasim {

struct RunRecord {
  enum class Status : int {
    kOk = 0,
    kFailed,   // Invalid configuration or an execution error.
    kSkipped,  // Cell baseline failed, so mu could not be calibrated.
  };

  RunPlan plan;
  Status status = Status::kOk;
  std::string error;

  double mu = 0.0;           // Resolved slack budget (0 for baselines).
  // Host wall-clock measurement, not simulated time: raw by design.
  double wall_seconds = 0.0;  // unitcheck: allow(raw-unit-decl)
  SimulationResults results; // Valid only when status == kOk.

  // Deltas vs the cell baseline (valid when both runs are ok).
  bool has_baseline_delta = false;
  double energy_savings = 0.0;
  double response_degradation = 0.0;

  bool ok() const { return status == Status::kOk; }
};

std::string RunStatusName(RunRecord::Status status);

struct SweepSummary {
  std::string name;
  int threads = 0;
  int ok = 0;
  int failed = 0;
  int skipped = 0;
  double wall_seconds = 0.0;  // unitcheck: allow(raw-unit-decl) host clock
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  // Streaming hook; completion order, never called concurrently.
  virtual void OnRunComplete(const RunRecord& record);

  // Final hook; `records` is sorted by run id.
  virtual void OnSweepComplete(const SweepSummary& summary,
                               const std::vector<RunRecord>& records);
};

// JSON serialization used by the sinks (and by tests asserting the
// determinism contract). `include_timing` gates host wall-clock fields,
// which are the only run-to-run nondeterministic values in a record.
Json SimulationResultsToJson(const SimulationResults& results);
Json RunRecordToJson(const RunRecord& record, bool include_timing = true);
Json SweepToJson(const SweepSummary& summary,
                 const std::vector<RunRecord>& records,
                 bool include_timing = true);

// Writes the whole sweep as one pretty-printed JSON document when the
// sweep completes.
class JsonFileSink : public ResultSink {
 public:
  explicit JsonFileSink(std::string path, bool include_timing = true);

  void OnSweepComplete(const SweepSummary& summary,
                       const std::vector<RunRecord>& records) override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool include_timing_;
};

// Writes only the per-run metrics sections (observability registry
// snapshots) as one JSON document when the sweep completes. Runs without
// metrics (obs disabled or failed) are listed with an empty array.
class MetricsFileSink : public ResultSink {
 public:
  explicit MetricsFileSink(std::string path);

  void OnSweepComplete(const SweepSummary& summary,
                       const std::vector<RunRecord>& records) override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Streams one compact JSON object per line as runs complete (completion
// order; use the JsonFileSink artifact for the canonical ordering).
class NdjsonStreamSink : public ResultSink {
 public:
  explicit NdjsonStreamSink(std::ostream* out) : out_(out) {}

  void OnRunComplete(const RunRecord& record) override;

 private:
  std::ostream* out_;
};

// Prints a human summary table (one row per run) plus totals.
class SummaryTableSink : public ResultSink {
 public:
  explicit SummaryTableSink(std::ostream* out) : out_(out) {}

  void OnSweepComplete(const SweepSummary& summary,
                       const std::vector<RunRecord>& records) override;

 private:
  std::ostream* out_;
};

}  // namespace dmasim

#endif  // DMASIM_EXP_RESULT_SINK_H_
