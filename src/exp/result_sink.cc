#include "exp/result_sink.h"

#include <fstream>
#include <ostream>

#include "stats/table.h"
#include "util/check.h"

namespace dmasim {
namespace {

Json RunningMeanToJson(const RunningMean& mean) {
  Json json = Json::Object();
  json.Set("count", mean.Count());
  json.Set("mean", mean.Mean());
  json.Set("min", mean.Min());
  json.Set("max", mean.Max());
  return json;
}

Json MetricSampleToJson(const MetricSample& sample) {
  Json json = Json::Object();
  json.Set("component", sample.component);
  json.Set("name", sample.name);
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      json.Set("kind", std::string("counter"));
      json.Set("count", sample.count);
      break;
    case MetricSample::Kind::kGauge:
      json.Set("kind", std::string("gauge"));
      json.Set("value", sample.value);
      break;
    case MetricSample::Kind::kHistogram: {
      json.Set("kind", std::string("histogram"));
      json.Set("lo", sample.lo);
      json.Set("hi", sample.hi);
      json.Set("total", sample.total);
      json.Set("nan_count", sample.nan_count);
      Json bins = Json::Array();
      for (std::uint64_t bin : sample.bins) bins.Append(bin);
      json.Set("bins", std::move(bins));
      break;
    }
  }
  return json;
}

}  // namespace

std::string RunStatusName(RunRecord::Status status) {
  switch (status) {
    case RunRecord::Status::kOk:
      return "ok";
    case RunRecord::Status::kFailed:
      return "failed";
    case RunRecord::Status::kSkipped:
      return "skipped";
  }
  return "?";
}

void ResultSink::OnRunComplete(const RunRecord&) {}
void ResultSink::OnSweepComplete(const SweepSummary&,
                                 const std::vector<RunRecord>&) {}

Json SimulationResultsToJson(const SimulationResults& results) {
  Json json = Json::Object();
  json.Set("workload", results.workload);
  json.Set("scheme", results.scheme);
  json.Set("duration_ticks", results.duration);

  Json energy = Json::Object();
  for (int i = 0; i < kEnergyBucketCount; ++i) {
    const auto bucket = static_cast<EnergyBucket>(i);
    energy.Set(std::string(EnergyBucketName(bucket)),
               results.energy.Of(bucket).joules());
  }
  energy.Set("total_joules", results.energy.Total().joules());
  json.Set("energy", std::move(energy));

  json.Set("utilization_factor", results.utilization_factor);
  json.Set("client_response_ticks", RunningMeanToJson(results.client_response));
  json.Set("chunk_service_ticks", RunningMeanToJson(results.chunk_service));
  json.Set("transfer_latency_ticks",
           RunningMeanToJson(results.transfer_latency));

  Json controller = Json::Object();
  controller.Set("transfers_started", results.controller.transfers_started);
  controller.Set("transfers_completed",
                 results.controller.transfers_completed);
  controller.Set("cpu_accesses", results.controller.cpu_accesses);
  controller.Set("migrations", results.controller.migrations);
  controller.Set("migration_rounds", results.controller.migration_rounds);
  controller.Set("deferred_migrations",
                 results.controller.deferred_migrations);
  json.Set("controller", std::move(controller));

  Json server = Json::Object();
  server.Set("reads", results.server.reads);
  server.Set("writes", results.server.writes);
  server.Set("hits", results.server.hits);
  server.Set("misses", results.server.misses);
  server.Set("cpu_accesses", results.server.cpu_accesses);
  json.Set("server", std::move(server));

  json.Set("gated_requests", results.gated_requests);
  json.Set("releases_by_quorum", results.releases_by_quorum);
  json.Set("releases_by_slack", results.releases_by_slack);
  json.Set("max_gated_buffer_bytes", results.max_gated_buffer_bytes);
  json.Set("executed_events", results.executed_events);
  json.Set("hottest_chip_share", results.hottest_chip_share);

  // Only observed runs carry a metrics section: default-options artifacts
  // stay byte-identical to the pre-observability format (the determinism
  // contract pins their serialized bytes).
  if (!results.metrics.empty()) {
    Json metrics = Json::Array();
    for (const MetricSample& sample : results.metrics) {
      metrics.Append(MetricSampleToJson(sample));
    }
    json.Set("metrics", std::move(metrics));
    json.Set("obs_events", results.obs_events);
    json.Set("obs_dropped_events", results.obs_dropped_events);
  }

  // Same contract for the access monitor: only monitored runs carry the
  // section, so default-options artifacts keep their pinned bytes.
  if (results.monitor.enabled) {
    Json monitor = Json::Object();
    monitor.Set("regions", results.monitor.regions);
    monitor.Set("probes", results.monitor.probes);
    monitor.Set("observations", results.monitor.observations);
    monitor.Set("splits", results.monitor.splits);
    monitor.Set("merges", results.monitor.merges);
    monitor.Set("aggregations", results.monitor.aggregations);
    monitor.Set("scheme_matches", results.monitor.scheme_matches);
    monitor.Set("demotions_requested", results.monitor.demotions_requested);
    monitor.Set("demotions_applied", results.monitor.demotions_applied);
    monitor.Set("overhead_fraction", results.monitor.overhead_fraction);
    monitor.Set("hotness_error", results.monitor.hotness_error);
    json.Set("monitor", std::move(monitor));
  }
  return json;
}

Json RunRecordToJson(const RunRecord& record, bool include_timing) {
  const RunPlan& plan = record.plan;
  Json json = Json::Object();
  json.Set("run_id", plan.run_id);
  json.Set("cell_id", plan.cell_id);
  json.Set("label", plan.Label());
  json.Set("status", RunStatusName(record.status));
  if (!record.error.empty()) json.Set("error", record.error);

  Json config = Json::Object();
  config.Set("workload", plan.workload.name);
  config.Set("scheme", plan.scheme.Label());
  config.Set("policy", PolicyKindName(plan.policy));
  config.Set("is_baseline", plan.is_baseline);
  if (!plan.is_baseline) {
    config.Set("cp_limit", plan.cp_limit);
    config.Set("mu", record.mu);
  }
  config.Set("chips", plan.options.memory.chips);
  config.Set("buses", plan.options.memory.bus_count);
  if (plan.options.memory.chip_model != ChipModelKind::kRdram) {
    // Default runs omit the key so pinned artifacts stay byte-identical.
    config.Set("chip_model",
               std::string(ChipModelKindName(plan.options.memory.chip_model)));
  }
  config.Set("seed", plan.workload.seed);
  config.Set("duration_ticks", plan.workload.duration);
  if (plan.epoch_length > 0) {
    config.Set("epoch_length_ticks", plan.epoch_length);
  }
  if (plan.gather_depth_factor > 0.0) {
    config.Set("gather_depth_factor", plan.gather_depth_factor);
  }
  json.Set("config", std::move(config));

  if (record.ok()) {
    json.Set("results", SimulationResultsToJson(record.results));
    if (record.has_baseline_delta) {
      json.Set("energy_savings_vs_baseline", record.energy_savings);
      json.Set("response_degradation_vs_baseline",
               record.response_degradation);
    }
  }
  if (include_timing) json.Set("wall_seconds", record.wall_seconds);
  return json;
}

Json SweepToJson(const SweepSummary& summary,
                 const std::vector<RunRecord>& records, bool include_timing) {
  Json json = Json::Object();
  json.Set("sweep", summary.name);
  json.Set("runs_ok", summary.ok);
  json.Set("runs_failed", summary.failed);
  json.Set("runs_skipped", summary.skipped);
  if (include_timing) {
    json.Set("threads", summary.threads);
    json.Set("wall_seconds", summary.wall_seconds);
  }
  Json runs = Json::Array();
  for (const RunRecord& record : records) {
    runs.Append(RunRecordToJson(record, include_timing));
  }
  json.Set("runs", std::move(runs));
  return json;
}

JsonFileSink::JsonFileSink(std::string path, bool include_timing)
    : path_(std::move(path)), include_timing_(include_timing) {}

void JsonFileSink::OnSweepComplete(const SweepSummary& summary,
                                   const std::vector<RunRecord>& records) {
  std::ofstream out(path_);
  DMASIM_CHECK_MSG(out.good(), "cannot open JSON artifact path");
  out << SweepToJson(summary, records, include_timing_).Dump(true) << '\n';
}

MetricsFileSink::MetricsFileSink(std::string path) : path_(std::move(path)) {}

void MetricsFileSink::OnSweepComplete(const SweepSummary& summary,
                                      const std::vector<RunRecord>& records) {
  Json json = Json::Object();
  json.Set("sweep", summary.name);
  Json runs = Json::Array();
  for (const RunRecord& record : records) {
    Json run = Json::Object();
    run.Set("run_id", record.plan.run_id);
    run.Set("label", record.plan.Label());
    run.Set("status", RunStatusName(record.status));
    Json metrics = Json::Array();
    if (record.ok()) {
      for (const MetricSample& sample : record.results.metrics) {
        metrics.Append(MetricSampleToJson(sample));
      }
    }
    run.Set("metrics", std::move(metrics));
    runs.Append(std::move(run));
  }
  json.Set("runs", std::move(runs));
  std::ofstream out(path_);
  DMASIM_CHECK_MSG(out.good(), "cannot open metrics artifact path");
  out << json.Dump(true) << '\n';
}

void NdjsonStreamSink::OnRunComplete(const RunRecord& record) {
  *out_ << RunRecordToJson(record).Dump(false) << '\n';
}

void SummaryTableSink::OnSweepComplete(const SweepSummary& summary,
                                       const std::vector<RunRecord>& records) {
  TablePrinter table({"run", "status", "energy mJ", "resp us", "uf",
                      "savings", "degr"});
  for (const RunRecord& record : records) {
    if (!record.ok()) {
      table.AddRow({record.plan.Label(), RunStatusName(record.status), "-",
                    "-", "-", "-", "-"});
      continue;
    }
    table.AddRow(
        {record.plan.Label(), RunStatusName(record.status),
         // J -> mJ for the report column only.
         // unitcheck: allow(unit-literal-conversion)
         TablePrinter::Num(record.results.energy.Total().joules() * 1e3, 1),
         TablePrinter::Num(record.results.client_response.Mean() /
                               kMicrosecond,
                           1),
         TablePrinter::Num(record.results.utilization_factor, 3),
         record.has_baseline_delta
             ? TablePrinter::Percent(record.energy_savings)
             : "-",
         record.has_baseline_delta
             ? TablePrinter::Percent(record.response_degradation)
             : "-"});
  }
  table.Print(*out_);
  *out_ << summary.ok << " ok, " << summary.failed << " failed, "
        << summary.skipped << " skipped in "
        << TablePrinter::Num(summary.wall_seconds, 2) << " s on "
        << summary.threads << " thread(s)\n";
}

}  // namespace dmasim
