// Minimal JSON value tree for experiment artifacts.
//
// The experiment engine emits machine-readable results; nothing in the
// toolchain may pull in an external JSON dependency, so this is a small
// self-contained value type. Objects preserve insertion order and doubles
// are printed with round-trip precision, which makes serialization fully
// deterministic: two structurally identical trees dump to identical
// bytes. That property is what the sweep determinism tests compare.
#ifndef DMASIM_EXP_JSON_H_
#define DMASIM_EXP_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dmasim {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(int value) : kind_(Kind::kInt), int_(value) {}     // NOLINT
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}    // NOLINT
  Json(std::uint64_t value)                                       // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}    // NOLINT
  Json(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT
  Json(std::string value)                                            // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}

  static Json Array() {
    Json json;
    json.kind_ = Kind::kArray;
    return json;
  }
  static Json Object() {
    Json json;
    json.kind_ = Kind::kObject;
    return json;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Array append.
  void Append(Json value) { items_.push_back(std::move(value)); }
  std::size_t Size() const { return items_.size(); }
  const Json& At(std::size_t index) const { return items_[index]; }

  // Object insert-or-overwrite (lookup is linear; artifact objects are
  // small and order must be preserved for deterministic output).
  void Set(const std::string& key, Json value);
  // Returns nullptr when `key` is absent or this is not an object.
  const Json* Find(const std::string& key) const;

  // Serializes with 2-space indentation (pretty) or compactly.
  std::string Dump(bool pretty = true) const;

  // Escapes a string for embedding in JSON (without quotes).
  static std::string Escape(const std::string& raw);

 private:
  void DumpTo(std::string* out, bool pretty, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray.
  std::vector<std::pair<std::string, Json>> members_;  // kObject.
};

}  // namespace dmasim

#endif  // DMASIM_EXP_JSON_H_
