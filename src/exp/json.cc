#include "exp/json.h"

#include <cmath>
#include <cstdio>

namespace dmasim {
namespace {

void AppendIndent(std::string* out, int depth) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
}

void AppendDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null keeps the artifact parseable.
    out->append("null");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

}  // namespace

void Json::Set(const std::string& key, Json value) {
  kind_ = Kind::kObject;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string Json::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  return out;
}

void Json::DumpTo(std::string* out, bool pretty, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      out->append(std::to_string(int_));
      return;
    case Kind::kDouble:
      AppendDouble(out, double_);
      return;
    case Kind::kString:
      out->push_back('"');
      out->append(Escape(string_));
      out->push_back('"');
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          AppendIndent(out, depth + 1);
        }
        items_[i].DumpTo(out, pretty, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        AppendIndent(out, depth);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          AppendIndent(out, depth + 1);
        }
        out->push_back('"');
        out->append(Escape(members_[i].first));
        out->append(pretty ? "\": " : "\":");
        members_[i].second.DumpTo(out, pretty, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        AppendIndent(out, depth);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace dmasim
