#include "exp/thread_pool.h"

#include <memory>
#include <utility>

#include "util/check.h"

namespace dmasim {

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int count = threads > 0 ? threads : HardwareThreads();
  queues_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(Task task) {
  DMASIM_EXPECTS(task != nullptr);
  // The push and the notify both happen under state_mutex_: an idle
  // worker re-checks the queues under the same lock before waiting, so
  // it either sees this task or is already inside wait() when the
  // notification fires. (Lock order is always state -> queue.)
  std::lock_guard<std::mutex> lock(state_mutex_);
  DMASIM_CHECK_MSG(!shutdown_, "Submit after shutdown");
  const std::size_t target = next_queue_;
  next_queue_ = (next_queue_ + 1) % queues_.size();
  ++unfinished_;
  {
    std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this]() { return unfinished_ == 0; });
}

ThreadPool::Task ThreadPool::FindWork(std::size_t self) {
  // Own queue first, LIFO.
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      Task task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal the oldest task from the first non-empty sibling.
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& victim = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      Task task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  for (;;) {
    Task task = FindWork(self);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (shutdown_) return;
      // Re-check under the lock: a task may have been submitted between
      // the failed scan and acquiring the lock. unfinished_ > 0 with no
      // queued work just means siblings are still executing.
      bool queued = false;
      for (const auto& queue : queues_) {
        std::lock_guard<std::mutex> queue_lock(queue->mutex);
        if (!queue->tasks.empty()) {
          queued = true;
          break;
        }
      }
      if (!queued) {
        work_available_.wait(lock);
      }
      continue;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      DMASIM_CHECK_GT(unfinished_, 0u);
      --unfinished_;
      if (unfinished_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dmasim
