// Parallel sweep execution.
//
// `SweepRunner` expands an `ExperimentSpec` and executes the grid on a
// work-stealing thread pool in two phases:
//
//   phase 1 — every cell's baseline run, in parallel;
//   phase 2 — mu is resolved for each dependent run from its cell
//             baseline's CP-Limit calibration (Section 5.1), then all
//             TA / TA-PL runs execute in parallel.
//
// Determinism contract: each run builds its own `Simulator`, trace, and
// RNGs inside its task — no mutable state is shared between concurrent
// runs — and every seed comes from the expanded plan, never from thread
// identity or scheduling. An N-thread sweep therefore produces
// bit-identical `SimulationResults` to a 1-thread sweep, run for run;
// only host wall-clock fields differ. `exp_determinism_test.cc` holds
// this contract down to the serialized JSON bytes.
//
// A run whose configuration is invalid (or that throws) becomes a
// `kFailed` record; dependents of a failed baseline become `kSkipped`.
// The sweep itself always completes.
#ifndef DMASIM_EXP_SWEEP_RUNNER_H_
#define DMASIM_EXP_SWEEP_RUNNER_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exp/experiment_spec.h"
#include "exp/result_sink.h"

namespace dmasim {

struct SweepOptions {
  // Worker threads; <= 0 selects the hardware concurrency.
  int threads = 0;

  // When non-empty, each run's observability trace is written to
  // "<prefix>-run<id>.json" (Chrome/Perfetto trace_event format). The
  // paths are resolved before submission, so concurrent runs never write
  // the same file. Only effective when the library is compiled with
  // DMASIM_OBS >= 2 and the run's options request obs_level >= 2.
  std::string trace_out_prefix;
};

struct SweepResults {
  SweepSummary summary;
  std::vector<RunRecord> records;  // Sorted by run id.

  // The baseline record of `cell_id`, or nullptr.
  const RunRecord* FindBaseline(int cell_id) const;

  // First record whose plan satisfies `pred`, or nullptr.
  const RunRecord* Find(
      const std::function<bool(const RunPlan&)>& pred) const;

  // Convenience lookup by (workload name, scheme, CP-Limit). A negative
  // `cp_limit` matches the cell baseline.
  const RunRecord* Find(const std::string& workload,
                        const SchemeSpec& scheme, double cp_limit) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Registers a sink (not owned; must outlive Run).
  void AddSink(ResultSink* sink);

  // Executes the spec's grid to completion.
  SweepResults Run(const ExperimentSpec& spec);

 private:
  void Notify(const RunRecord& record);

  SweepOptions options_;
  std::vector<ResultSink*> sinks_;
  std::mutex sink_mutex_;
};

}  // namespace dmasim

#endif  // DMASIM_EXP_SWEEP_RUNNER_H_
