#include "exp/sweep_runner.h"

#include <chrono>
#include <exception>
#include <utility>

#include "exp/thread_pool.h"
#include "util/check.h"

namespace dmasim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const RunRecord* SweepResults::FindBaseline(int cell_id) const {
  for (const RunRecord& record : records) {
    if (record.plan.cell_id == cell_id && record.plan.is_baseline) {
      return &record;
    }
  }
  return nullptr;
}

const RunRecord* SweepResults::Find(
    const std::function<bool(const RunPlan&)>& pred) const {
  for (const RunRecord& record : records) {
    if (pred(record.plan)) return &record;
  }
  return nullptr;
}

const RunRecord* SweepResults::Find(const std::string& workload,
                                    const SchemeSpec& scheme,
                                    double cp_limit) const {
  return Find([&](const RunPlan& plan) {
    if (plan.workload.name != workload) return false;
    if (cp_limit < 0.0) return plan.is_baseline;
    return !plan.is_baseline && plan.scheme == scheme &&
           plan.cp_limit == cp_limit;
  });
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

void SweepRunner::AddSink(ResultSink* sink) {
  DMASIM_EXPECTS(sink != nullptr);
  sinks_.push_back(sink);
}

void SweepRunner::Notify(const RunRecord& record) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  for (ResultSink* sink : sinks_) sink->OnRunComplete(record);
}

SweepResults SweepRunner::Run(const ExperimentSpec& spec) {
  const auto sweep_start = std::chrono::steady_clock::now();
  RunGrid grid = ExpandGrid(spec);

  SweepResults sweep;
  sweep.records.resize(grid.runs.size());
  for (std::size_t i = 0; i < grid.runs.size(); ++i) {
    sweep.records[i].plan = std::move(grid.runs[i]);
    if (!options_.trace_out_prefix.empty()) {
      RunPlan& plan = sweep.records[i].plan;
      plan.options.obs_trace_path = options_.trace_out_prefix + "-run" +
                                    std::to_string(plan.run_id) + ".json";
    }
  }

  // Executes one run into its own record slot. Concurrent tasks touch
  // disjoint slots; the baseline pointer (phase 2 deltas) is read-only
  // by the time dependents run.
  const auto execute = [this](RunRecord* record, const RunRecord* baseline) {
    const auto start = std::chrono::steady_clock::now();
    const std::string problem = ValidateOptions(record->plan.options);
    if (!problem.empty()) {
      record->status = RunRecord::Status::kFailed;
      record->error = problem;
    } else {
      try {
        record->results =
            RunWorkload(record->plan.workload, record->plan.options);
        record->status = RunRecord::Status::kOk;
      } catch (const std::exception& e) {
        record->status = RunRecord::Status::kFailed;
        record->error = e.what();
      } catch (...) {
        record->status = RunRecord::Status::kFailed;
        record->error = "unknown execution error";
      }
    }
    if (record->ok() && baseline != nullptr && baseline->ok()) {
      record->has_baseline_delta = true;
      record->energy_savings =
          record->results.EnergySavingsVs(baseline->results);
      record->response_degradation =
          record->results.ResponseDegradationVs(baseline->results);
    }
    record->wall_seconds = SecondsSince(start);
    Notify(*record);
  };

  ThreadPool pool(options_.threads);
  sweep.summary.name = spec.name;
  sweep.summary.threads = pool.thread_count();

  // Phase 1: baselines.
  for (RunRecord& record : sweep.records) {
    if (!record.plan.is_baseline) continue;
    RunRecord* slot = &record;
    pool.Submit([&execute, slot]() { execute(slot, nullptr); });
  }
  pool.Wait();

  // Calibrate each cell from its baseline.
  std::vector<const RunRecord*> baselines(
      static_cast<std::size_t>(grid.cell_count), nullptr);
  std::vector<CpCalibration> calibrations(
      static_cast<std::size_t>(grid.cell_count));
  for (const RunRecord& record : sweep.records) {
    if (!record.plan.is_baseline) continue;
    const auto cell = static_cast<std::size_t>(record.plan.cell_id);
    baselines[cell] = &record;
    if (record.ok()) calibrations[cell] = Calibrate(record.results);
  }

  // Phase 2: TA / TA-PL runs with mu resolved from the calibration.
  for (RunRecord& record : sweep.records) {
    if (record.plan.is_baseline) continue;
    const auto cell = static_cast<std::size_t>(record.plan.cell_id);
    const RunRecord* baseline = baselines[cell];
    if (baseline == nullptr || !baseline->ok()) {
      record.status = RunRecord::Status::kSkipped;
      record.error = "cell baseline failed: " +
                     (baseline != nullptr ? baseline->error
                                          : std::string("missing"));
      Notify(record);
      continue;
    }
    record.mu = calibrations[cell].MuFor(record.plan.cp_limit);
    record.plan.options.memory.dma.ta.mu = record.mu;
    RunRecord* slot = &record;
    pool.Submit([&execute, slot, baseline]() { execute(slot, baseline); });
  }
  pool.Wait();

  for (const RunRecord& record : sweep.records) {
    switch (record.status) {
      case RunRecord::Status::kOk:
        ++sweep.summary.ok;
        break;
      case RunRecord::Status::kFailed:
        ++sweep.summary.failed;
        break;
      case RunRecord::Status::kSkipped:
        ++sweep.summary.skipped;
        break;
    }
  }
  sweep.summary.wall_seconds = SecondsSince(sweep_start);

  for (ResultSink* sink : sinks_) {
    sink->OnSweepComplete(sweep.summary, sweep.records);
  }
  return sweep;
}

}  // namespace dmasim
