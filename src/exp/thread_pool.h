// Work-stealing thread pool for the experiment engine.
//
// Each worker owns a deque of tasks: it pushes and pops at the back
// (LIFO, cache-friendly for the submitting worker) and, when empty,
// steals from the front of a sibling's deque (FIFO, taking the oldest —
// and for sweeps typically largest-remaining — task). External `Submit`
// calls distribute round-robin across workers so a sweep starts spread
// out even before stealing kicks in.
//
// The pool carries no result channel: tasks are `void()` closures that
// write to caller-owned slots. The sweep runner gives every run a
// distinct slot, so workers never contend on results and the output is
// independent of execution interleaving.
#ifndef DMASIM_EXP_THREAD_POOL_H_
#define DMASIM_EXP_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dmasim {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // `threads` <= 0 selects the hardware concurrency.
  explicit ThreadPool(int threads = 0);

  // Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`. Thread-safe.
  void Submit(Task task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(std::size_t self);
  // Pops from own queue (back) or steals (front); empty when none found.
  Task FindWork(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t unfinished_ = 0;  // Submitted but not yet completed.
  std::size_t next_queue_ = 0;  // Round-robin submission cursor.
  bool shutdown_ = false;
};

}  // namespace dmasim

#endif  // DMASIM_EXP_THREAD_POOL_H_
