// Declarative experiment sweeps.
//
// An `ExperimentSpec` names the axes of a design-space sweep — workload
// presets, management schemes, CP-Limits, low-level policies, hardware
// variants (chip/bus counts), TA knobs, and RNG seeds — and `ExpandGrid`
// takes their cross product into a flat list of fully-resolved
// `RunPlan`s. Expansion is pure and deterministic: run ids, cell ids,
// and every per-run seed depend only on the spec, never on execution
// order or thread count.
//
// Runs are grouped into *cells*: a cell is one (workload x policy x
// hardware x seed) combination, i.e. everything a baseline measurement
// must share with the runs compared against it. Expansion injects
// exactly one baseline run per cell (whether or not the baseline scheme
// was requested) because two downstream quantities need it: the
// CP-Limit -> mu calibration (Section 5.1 of the paper) and the
// energy-savings / response-degradation deltas in the artifacts.
#ifndef DMASIM_EXP_EXPERIMENT_SPEC_H_
#define DMASIM_EXP_EXPERIMENT_SPEC_H_

#include <string>
#include <vector>

#include "server/simulation_driver.h"
#include "trace/workloads.h"
#include "util/time.h"

namespace dmasim {

// Which DMA-aware technique a run enables on top of the low-level policy.
enum class SchemeKind : int {
  kBaseline = 0,  // Low-level policy only.
  kTa,            // DMA temporal alignment.
  kTaPl,          // DMA-TA plus popularity-based layout.
};

struct SchemeSpec {
  SchemeKind kind = SchemeKind::kBaseline;
  int pl_groups = 2;  // Only meaningful for kTaPl.

  // "baseline", "DMA-TA", "DMA-TA-PL(2)", ...
  std::string Label() const;

  friend bool operator==(const SchemeSpec& a, const SchemeSpec& b) {
    return a.kind == b.kind &&
           (a.kind != SchemeKind::kTaPl || a.pl_groups == b.pl_groups);
  }
};

// Named scheme constructors for spec-building code.
SchemeSpec BaselineScheme();
SchemeSpec TaScheme();
SchemeSpec TaPlScheme(int groups = 2);

struct ExperimentSpec {
  std::string name = "sweep";

  // Axis 1: workloads (fully parameterized specs; duration included).
  std::vector<WorkloadSpec> workloads;

  // Axis 2: schemes. Baseline is always run once per cell regardless.
  std::vector<SchemeSpec> schemes = {BaselineScheme()};

  // Axis 3: CP-Limits, applied to TA/TA-PL runs (ignored by baseline
  // runs, which need no slack budget).
  std::vector<double> cp_limits = {0.10};

  // Axis 4: low-level power policies.
  std::vector<PolicyKind> policies = {PolicyKind::kDynamic};

  // Axis 5/6: hardware variants. Empty = keep `base`'s value.
  std::vector<int> chip_counts;
  std::vector<int> bus_counts;

  // Axis 7/8: TA knobs (ignored by baseline runs). Empty = keep default.
  std::vector<Tick> epoch_lengths;
  std::vector<double> gather_depth_factors;

  // Axis 9: RNG seeds. Empty = each workload's own seed. A seed value
  // replaces the workload seed and re-derives the server seed, so
  // replicated runs differ in every stochastic component.
  std::vector<std::uint64_t> seeds;

  // Template for everything not swept.
  SimulationOptions base;
};

// One fully-resolved simulation in the grid. `options.memory.dma.ta.mu`
// is left 0 for TA/TA-PL runs: mu depends on the cell's measured
// baseline, so the runner fills it in after phase 1 (see sweep_runner.h).
struct RunPlan {
  int run_id = 0;   // Dense, 0-based, expansion order.
  int cell_id = 0;  // Baseline-sharing group.
  bool is_baseline = false;

  SchemeSpec scheme;
  PolicyKind policy = PolicyKind::kDynamic;
  double cp_limit = -1.0;  // < 0 for baseline runs.
  Tick epoch_length = 0;   // 0 = default (baseline or un-swept).
  double gather_depth_factor = 0.0;  // 0 = default.

  WorkloadSpec workload;      // Seed already applied.
  SimulationOptions options;  // Fully resolved except ta.mu.

  // "OLTP-St/DMA-TA-PL(2)/cp=0.10" style label for tables and logs.
  std::string Label() const;
};

struct RunGrid {
  std::vector<RunPlan> runs;
  int cell_count = 0;
};

// Expands the cross product. Aborts (DMASIM_CHECK) on an empty workload
// axis; per-run validation problems are left to the runner so one bad
// combination fails one run, not the sweep.
RunGrid ExpandGrid(const ExperimentSpec& spec);

// Returns an empty string if `options` can be simulated, else a
// human-readable reason. The runner records the reason as a failed run.
std::string ValidateOptions(const SimulationOptions& options);

}  // namespace dmasim

#endif  // DMASIM_EXP_EXPERIMENT_SPEC_H_
