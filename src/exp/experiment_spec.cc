#include "exp/experiment_spec.h"

#include <cstdio>

#include "util/check.h"
#include "util/random.h"

namespace dmasim {
namespace {

// Formats a CP-Limit as "cp=0.10" (two decimals are enough to tell the
// paper's sweep points apart; labels are cosmetic, matching uses the
// double itself).
std::string CpLabel(double cp_limit) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "cp=%.2f", cp_limit);
  return buffer;
}

}  // namespace

std::string SchemeSpec::Label() const {
  switch (kind) {
    case SchemeKind::kBaseline:
      return "baseline";
    case SchemeKind::kTa:
      return "DMA-TA";
    case SchemeKind::kTaPl:
      return "DMA-TA-PL(" + std::to_string(pl_groups) + ")";
  }
  return "?";
}

SchemeSpec BaselineScheme() { return SchemeSpec{SchemeKind::kBaseline, 2}; }
SchemeSpec TaScheme() { return SchemeSpec{SchemeKind::kTa, 2}; }
SchemeSpec TaPlScheme(int groups) {
  return SchemeSpec{SchemeKind::kTaPl, groups};
}

std::string RunPlan::Label() const {
  std::string label = workload.name + "/" + scheme.Label();
  if (!is_baseline) label += "/" + CpLabel(cp_limit);
  if (policy != PolicyKind::kDynamic) label += "/" + PolicyKindName(policy);
  return label;
}

std::string ValidateOptions(const SimulationOptions& options) {
  const MemorySystemConfig& memory = options.memory;
  if (memory.chips <= 0) return "chips must be positive";
  if (memory.pages_per_chip <= 0) return "pages_per_chip must be positive";
  if (memory.page_bytes <= 0) return "page_bytes must be positive";
  if (memory.chunk_bytes <= 0 || memory.chunk_bytes > memory.page_bytes) {
    return "chunk_bytes must be in (0, page_bytes]";
  }
  if (memory.bus_count <= 0) return "bus_count must be positive";
  if (memory.bus_bandwidth <= 0.0) return "bus_bandwidth must be positive";
  if (memory.dma.ta.enabled && memory.dma.ta.mu < 0.0) {
    return "ta.mu must be non-negative";
  }
  if (memory.dma.pl.enabled &&
      (memory.dma.pl.groups < 1 || memory.dma.pl.groups > memory.chips)) {
    return "pl.groups must be in [1, chips]";
  }
  if (options.server.disks <= 0) return "disks must be positive";
  if (memory.chip_model == ChipModelKind::kDdr4 &&
      (options.policy == PolicyKind::kStaticNap ||
       options.policy == PolicyKind::kStaticPowerdown)) {
    // MakePolicy would abort: the DDR4 cascade has no nap/powerdown.
    return "the ddr4 chip model has no nap/powerdown state for a static "
           "policy to target";
  }
  if (memory.monitor.enabled) {
    const MonitorConfig& monitor = memory.monitor;
    if (monitor.sampling_interval <= 0) {
      return "monitor.sampling_interval must be positive";
    }
    if (monitor.aggregation_interval <= 0) {
      return "monitor.aggregation_interval must be positive";
    }
    if (monitor.min_regions < 1) return "monitor.min_regions must be >= 1";
    if (monitor.max_regions < monitor.min_regions) {
      return "monitor.max_regions must be >= monitor.min_regions";
    }
    if (static_cast<std::uint64_t>(monitor.min_regions) >
        memory.TotalPages()) {
      return "monitor.min_regions must be <= total pages";
    }
  }
  return "";
}

RunGrid ExpandGrid(const ExperimentSpec& spec) {
  DMASIM_CHECK_MSG(!spec.workloads.empty(),
                   "ExperimentSpec needs at least one workload");

  // Normalize empty axes to a single "keep the template value" entry.
  const std::vector<int> chip_counts =
      spec.chip_counts.empty() ? std::vector<int>{0} : spec.chip_counts;
  const std::vector<int> bus_counts =
      spec.bus_counts.empty() ? std::vector<int>{0} : spec.bus_counts;
  const std::vector<Tick> epochs = spec.epoch_lengths.empty()
                                       ? std::vector<Tick>{0}
                                       : spec.epoch_lengths;
  const std::vector<double> gathers = spec.gather_depth_factors.empty()
                                          ? std::vector<double>{0.0}
                                          : spec.gather_depth_factors;
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{0} : spec.seeds;
  std::vector<PolicyKind> policies = spec.policies;
  if (policies.empty()) policies.push_back(PolicyKind::kDynamic);

  RunGrid grid;
  for (const WorkloadSpec& workload : spec.workloads) {
    for (PolicyKind policy : policies) {
      for (int chips : chip_counts) {
        for (int buses : bus_counts) {
          for (std::uint64_t seed : seeds) {
            const int cell_id = grid.cell_count++;

            WorkloadSpec cell_workload = workload;
            SimulationOptions cell_base = spec.base;
            cell_base.policy = policy;
            if (chips != 0) cell_base.memory.chips = chips;
            if (buses != 0) cell_base.memory.bus_count = buses;
            cell_base.server.request_compute_time =
                workload.request_compute_time;
            if (seed != 0) {
              // Replace the trace seed and re-derive the server-side
              // seed so replicas perturb every stochastic component.
              cell_workload.seed = seed;
              std::uint64_t mix = seed;
              cell_base.server.seed = SplitMix64(mix);
            }

            // The cell's baseline run (calibration + savings anchor).
            {
              RunPlan plan;
              plan.run_id = static_cast<int>(grid.runs.size());
              plan.cell_id = cell_id;
              plan.is_baseline = true;
              plan.scheme = BaselineScheme();
              plan.policy = policy;
              plan.workload = cell_workload;
              plan.options = cell_base;
              plan.options.memory.dma.ta.enabled = false;
              plan.options.memory.dma.pl.enabled = false;
              grid.runs.push_back(std::move(plan));
            }

            for (const SchemeSpec& scheme : spec.schemes) {
              if (scheme.kind == SchemeKind::kBaseline) continue;
              for (double cp : spec.cp_limits) {
                for (Tick epoch : epochs) {
                  for (double gather : gathers) {
                    RunPlan plan;
                    plan.run_id = static_cast<int>(grid.runs.size());
                    plan.cell_id = cell_id;
                    plan.scheme = scheme;
                    plan.policy = policy;
                    plan.cp_limit = cp;
                    plan.epoch_length = epoch;
                    plan.gather_depth_factor = gather;
                    plan.workload = cell_workload;
                    plan.options = cell_base;
                    plan.options.memory.dma.ta.enabled = true;
                    // mu is resolved by the runner from the cell
                    // baseline's calibration.
                    plan.options.memory.dma.ta.mu = 0.0;
                    if (epoch != 0) {
                      plan.options.memory.dma.ta.epoch_length = epoch;
                    }
                    if (gather != 0.0) {
                      plan.options.memory.dma.ta.gather_depth_factor =
                          gather;
                    }
                    plan.options.memory.dma.pl.enabled =
                        scheme.kind == SchemeKind::kTaPl;
                    if (scheme.kind == SchemeKind::kTaPl) {
                      plan.options.memory.dma.pl.groups = scheme.pl_groups;
                    }
                    grid.runs.push_back(std::move(plan));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return grid;
}

}  // namespace dmasim
