#include "check/minimizer.h"

#include <algorithm>

#include "check/explorer.h"
#include "check/protocol_harness.h"
#include "util/check.h"

namespace dmasim::check {

bool Reproduces(const CheckerConfig& config,
                const std::vector<Action>& actions,
                const std::string& property) {
  ProtocolHarness harness(config);
  std::size_t applied = 0;
  const bool complete = ReplayActions(actions, &harness, &applied);
  if (!harness.violation().has_value()) {
    if (!complete) return false;  // An action was not enabled: invalid.
    // Violation may only surface at the terminal pass (full drain).
    std::vector<Action> enabled;
    harness.EnabledActions(&enabled);
    if (!harness.Quiescent() && !enabled.empty()) return false;
    harness.CheckTerminal();
    if (!harness.violation().has_value()) return false;
  }
  return property.empty() || harness.violation()->property == property;
}

namespace {

std::vector<Action> WithoutRange(const std::vector<Action>& actions,
                                 std::size_t begin, std::size_t end) {
  std::vector<Action> candidate;
  candidate.reserve(actions.size() - (end - begin));
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i < begin || i >= end) candidate.push_back(actions[i]);
  }
  return candidate;
}

}  // namespace

std::vector<Action> MinimizeTrace(const CheckerConfig& config,
                                  const std::vector<Action>& actions,
                                  const std::string& property) {
  DMASIM_EXPECTS(Reproduces(config, actions, property));
  std::vector<Action> current = actions;

  // ddmin: partition into `chunks` pieces, greedily drop any piece whose
  // removal still reproduces; refine granularity when nothing drops.
  std::size_t chunks = 2;
  while (current.size() >= 2 && chunks <= current.size()) {
    const std::size_t chunk_size =
        (current.size() + chunks - 1) / chunks;  // ceil
    bool removed = false;
    for (std::size_t begin = 0; begin < current.size(); begin += chunk_size) {
      const std::size_t end = std::min(begin + chunk_size, current.size());
      std::vector<Action> candidate = WithoutRange(current, begin, end);
      if (candidate.size() < current.size() &&
          Reproduces(config, candidate, property)) {
        current = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        removed = true;
        break;
      }
    }
    if (!removed) chunks *= 2;
  }

  // One-at-a-time sweep to a 1-minimal fixpoint.
  bool shrunk = true;
  while (shrunk && current.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < current.size(); ++i) {
      std::vector<Action> candidate = WithoutRange(current, i, i + 1);
      if (Reproduces(config, candidate, property)) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace dmasim::check
