// Bounded exploration of sharded-engine barrier interleavings — the
// exhaustive layer of the determinism proof kit (DESIGN.md §15).
//
// The protocol checker (explorer.h) exhausts DMA-TA protocol
// interleavings; this harness does the same for the *concurrency*
// protocol of src/sim/sharded_engine.h. The schedule freedom a real
// parallel run has — which worker finishes first, in what order the
// coordinator drains the mailboxes — is reduced by the engine to exactly
// one observable choice per barrier: the pre-sort drain order. The
// harness therefore drives a small (2–3 shard) scenario on *real*
// Simulators under a real ShardedEngine, scripts the drain order of the
// first `max_choice_windows` barriers through the engine's BarrierHooks
// seam, and enumerates every permutation sequence. Properties:
//
//   * every interleaving's run fingerprint equals the canonical
//     (identity-order) run's — `shard.fingerprint-convergence`;
//   * the ShardAudit invariants (shard.lookahead-violation,
//     shard.mailbox-fifo, shard.barrier-causality) hold along the way.
//
// The scenario is built to make ordering matter: every shard runs the
// same event timeline, so cross-shard messages from different sources
// collide on (deliver_at, dst) and only the barrier sort keeps their
// tie-break deterministic. The seeded engine faults prove the detectors
// work: `skip-barrier-sort` survives the identity order but diverges
// (and breaks the delivery-order invariant) under some permutation;
// `deliver-early` violates the lookahead invariant on every path.
//
// Violating permutation sequences are ddmin-minimized and serialize to
// line-oriented counterexample files, replayable by tests and
// `dmasim_check --shard --replay`.
#ifndef DMASIM_CHECK_SHARD_HARNESS_H_
#define DMASIM_CHECK_SHARD_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sharded_engine.h"
#include "util/time.h"

namespace dmasim::check {

struct ShardCheckConfig {
  int shards = 3;           // 2 or 3 (6 drain permutations at most).
  int events_per_shard = 2;  // Seed events per shard.
  int max_hops = 2;          // Message relay depth (fan-out per hop).
  Tick lookahead = 100;      // Engine lookahead L.
  // Barriers whose drain order is enumerated; later barriers use the
  // identity order. The run count is (shards!)^min(this, barriers).
  int max_choice_windows = 4;
  EngineFault fault = EngineFault::kNone;
};

// A scripted interleaving: element w is the lexicographic index of the
// drain-order permutation applied at barrier w (0 = identity); barriers
// past the end use the identity order.
using ShardTrace = std::vector<int>;

struct ShardRunOutcome {
  std::uint64_t fingerprint = 0;
  std::vector<std::uint64_t> window_digests;  // One per barrier.
  std::uint64_t barriers = 0;
  std::uint64_t delivered_messages = 0;
  std::uint64_t executed_events = 0;
  bool violation = false;   // A ShardAudit invariant failed.
  std::string property;     // First failed invariant (when violation).
  std::string message;
};

struct ShardExploreStats {
  std::uint64_t runs = 0;      // Complete interleavings executed.
  std::uint64_t barriers = 0;  // Barrier count of the canonical run.
  std::uint64_t choice_windows = 0;  // min(barriers, max_choice_windows).
  std::uint64_t distinct_fingerprints = 0;
};

struct ShardViolation {
  std::string property;
  std::string message;
  ShardTrace perms;  // As found (not yet minimized).
};

struct ShardExploreResult {
  ShardExploreStats stats;
  std::uint64_t canonical_fingerprint = 0;
  bool violation_found = false;
  ShardViolation violation;
};

// The number of drain permutations per barrier: shards!.
int ShardPermutationCount(int shards);
// Writes the index-th lexicographic permutation of {0..shards-1}.
void NthShardPermutation(int shards, int index, std::vector<int>* out);

// Executes the scenario once under the scripted drain orders, with
// ShardAudit attached in kCollect mode. Deterministic: same config and
// perms, same outcome.
ShardRunOutcome RunShardScenario(const ShardCheckConfig& config,
                                 const ShardTrace& perms);

// Enumerates every drain-order sequence up to the choice bound, stopping
// at the first violation (audit failure or fingerprint divergence from
// the canonical identity-order run).
ShardExploreResult ExploreShardInterleavings(const ShardCheckConfig& config);

// True when running `perms` violates `property` (an audit invariant
// name, or "shard.fingerprint-convergence" for a digest mismatch with
// the canonical run).
bool ShardTraceReproduces(const ShardCheckConfig& config,
                          const ShardTrace& perms,
                          const std::string& property);

// ddmin over the non-identity choices (candidates reset choices to the
// identity permutation rather than shortening the trace, so remaining
// choices keep their barrier positions), then a 1-minimal sweep.
ShardTrace MinimizeShardTrace(const ShardCheckConfig& config,
                              const ShardTrace& perms,
                              const std::string& property);

// Replayable counterexample file, protocol-checker style:
//
//   dmasim-shard-counterexample v1
//   shards 3
//   events-per-shard 2
//   max-hops 2
//   lookahead 100
//   max-choice-windows 4
//   fault skip-barrier-sort
//   property shard.barrier-causality
//   message barrier delivery order is not the sorted total order (...)
//   perms 2
//   0
//   3
//   end
struct ShardCounterexample {
  ShardCheckConfig config;
  std::string property;
  std::string message;  // Single line (newlines replaced on write).
  ShardTrace perms;
};

std::string FormatShardCounterexample(const ShardCounterexample& ce);
// On failure returns false and fills `error` with a line-numbered
// diagnostic; unknown keys are rejected.
bool ParseShardCounterexampleText(const std::string& text,
                                  ShardCounterexample* out,
                                  std::string* error);
bool WriteShardCounterexampleFile(const ShardCounterexample& ce,
                                  const std::string& path,
                                  std::string* error);
bool ReadShardCounterexampleFile(const std::string& path,
                                 ShardCounterexample* out,
                                 std::string* error);

// Replays through a fresh scenario (full Simulators + engine + audit).
// Returns true when a violation of the recorded property reproduces;
// `observed` (may be null) receives what actually happened.
bool ReplayShardCounterexample(const ShardCounterexample& ce,
                               std::string* observed);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_SHARD_HARNESS_H_
