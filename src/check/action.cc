#include "check/action.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace dmasim::check {

std::uint16_t EncodeAction(const Action& action) {
  DMASIM_EXPECTS(action.bus >= 0 && action.bus < 8);
  DMASIM_EXPECTS(action.chip >= 0 && action.chip < 8);
  return static_cast<std::uint16_t>(static_cast<unsigned>(action.kind) |
                                    (static_cast<unsigned>(action.bus) << 2) |
                                    (static_cast<unsigned>(action.chip) << 5));
}

Action DecodeAction(std::uint16_t word) {
  Action action;
  action.kind = static_cast<ActionKind>(word & 0x3u);
  action.bus = static_cast<int>((word >> 2) & 0x7u);
  action.chip = static_cast<int>((word >> 5) & 0x7u);
  return action;
}

std::string FormatAction(const Action& action) {
  char buffer[32];
  switch (action.kind) {
    case ActionKind::kArrive:
      std::snprintf(buffer, sizeof(buffer), "arrive %d %d", action.bus,
                    action.chip);
      break;
    case ActionKind::kCpuAccess:
      std::snprintf(buffer, sizeof(buffer), "cpu %d", action.chip);
      break;
    case ActionKind::kStepDown:
      std::snprintf(buffer, sizeof(buffer), "step-down %d", action.chip);
      break;
    case ActionKind::kAdvance:
      std::snprintf(buffer, sizeof(buffer), "advance");
      break;
  }
  return std::string(buffer);
}

bool ParseAction(const std::string& text, Action* out) {
  std::istringstream stream(text);
  std::string verb;
  if (!(stream >> verb)) return false;
  Action action;
  if (verb == "arrive") {
    action.kind = ActionKind::kArrive;
    if (!(stream >> action.bus >> action.chip)) return false;
  } else if (verb == "cpu") {
    action.kind = ActionKind::kCpuAccess;
    if (!(stream >> action.chip)) return false;
  } else if (verb == "step-down") {
    action.kind = ActionKind::kStepDown;
    if (!(stream >> action.chip)) return false;
  } else if (verb == "advance") {
    action.kind = ActionKind::kAdvance;
  } else {
    return false;
  }
  if (action.bus < 0 || action.bus >= 8 || action.chip < 0 ||
      action.chip >= 8) {
    return false;
  }
  std::string trailing;
  if (stream >> trailing) return false;  // Junk after the operands.
  *out = action;
  return true;
}

}  // namespace dmasim::check
