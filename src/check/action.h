// The checker's choice alphabet: one Action is one nondeterministic step
// the explorer can take from a protocol state. A counterexample is a
// sequence of these; their compact uint16 encoding keeps BFS frontier
// paths small (a full path is max_depth * 2 bytes).
#ifndef DMASIM_CHECK_ACTION_H_
#define DMASIM_CHECK_ACTION_H_

#include <cstdint>
#include <string>

namespace dmasim::check {

enum class ActionKind : int {
  kArrive = 0,   // First DMA-memory request of a new transfer (bus, chip).
  kCpuAccess,    // Processor access to `chip`.
  kStepDown,     // `chip`'s low-power policy fires its next step-down.
  kAdvance,      // Time advances to the next deadline or epoch boundary.
};

struct Action {
  ActionKind kind = ActionKind::kAdvance;
  int bus = 0;   // kArrive only.
  int chip = 0;  // kArrive, kCpuAccess, kStepDown.

  friend bool operator==(const Action& a, const Action& b) {
    return a.kind == b.kind && a.bus == b.bus && a.chip == b.chip;
  }
};

// Compact encoding: kind in bits 0-1, bus in bits 2-4, chip in bits 5-7.
// Fields fit by construction (CheckerConfig caps chips at 4, buses at 3).
std::uint16_t EncodeAction(const Action& action);
Action DecodeAction(std::uint16_t word);

// "arrive 1 0" / "cpu 0" / "step-down 1" / "advance" -- the line format
// used in counterexample files.
std::string FormatAction(const Action& action);
// Parses FormatAction output; returns false on malformed input.
bool ParseAction(const std::string& text, Action* out);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_ACTION_H_
