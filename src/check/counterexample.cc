#include "check/counterexample.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "check/explorer.h"
#include "check/minimizer.h"
#include "check/protocol_harness.h"

namespace dmasim::check {

namespace {

constexpr const char* kHeader = "dmasim-counterexample v1";

std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string LineError(int line, const std::string& what) {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer), "line %d: %s", line, what.c_str());
  return std::string(buffer);
}

void AppendConfig(const CheckerConfig& config, std::ostringstream* out) {
  *out << "chips " << config.chips << '\n'
       << "buses " << config.buses << '\n'
       << "k " << config.k << '\n'
       << "gather_depth_factor " << config.gather_depth_factor << '\n'
       << "max_arrivals " << config.max_arrivals << '\n'
       << "max_cpu_accesses " << config.max_cpu_accesses << '\n'
       << "max_epochs " << config.max_epochs << '\n'
       << "max_depth " << config.max_depth << '\n'
       << "mu " << config.mu << '\n'
       << "t_request " << config.t_request << '\n'
       << "transfer_requests " << config.transfer_requests << '\n'
       << "epoch_length " << config.epoch_length << '\n'
       << "slack_cap_requests " << config.slack_cap_requests << '\n'
       << "min_gating_budget " << config.min_gating_budget << '\n'
       << "cpu_access_bytes " << config.cpu_access_bytes << '\n'
       << "policy " << CheckPolicyName(config.policy) << '\n'
       << "fault " << CheckFaultName(config.fault) << '\n'
       << "chip_model " << ChipModelKindName(config.chip_model) << '\n';
}

// Applies one "key value" configuration line; returns false with a
// message when the key is unknown or the value malformed.
bool ApplyConfigLine(const std::string& key, const std::string& value,
                     CheckerConfig* config, std::string* what) {
  std::istringstream stream(value);
  bool ok = false;
  if (key == "chips") {
    ok = static_cast<bool>(stream >> config->chips);
  } else if (key == "buses") {
    ok = static_cast<bool>(stream >> config->buses);
  } else if (key == "k") {
    ok = static_cast<bool>(stream >> config->k);
  } else if (key == "gather_depth_factor") {
    ok = static_cast<bool>(stream >> config->gather_depth_factor);
  } else if (key == "max_arrivals") {
    ok = static_cast<bool>(stream >> config->max_arrivals);
  } else if (key == "max_cpu_accesses") {
    ok = static_cast<bool>(stream >> config->max_cpu_accesses);
  } else if (key == "max_epochs") {
    ok = static_cast<bool>(stream >> config->max_epochs);
  } else if (key == "max_depth") {
    ok = static_cast<bool>(stream >> config->max_depth);
  } else if (key == "mu") {
    ok = static_cast<bool>(stream >> config->mu);
  } else if (key == "t_request") {
    ok = static_cast<bool>(stream >> config->t_request);
  } else if (key == "transfer_requests") {
    ok = static_cast<bool>(stream >> config->transfer_requests);
  } else if (key == "epoch_length") {
    ok = static_cast<bool>(stream >> config->epoch_length);
  } else if (key == "slack_cap_requests") {
    ok = static_cast<bool>(stream >> config->slack_cap_requests);
  } else if (key == "min_gating_budget") {
    ok = static_cast<bool>(stream >> config->min_gating_budget);
  } else if (key == "cpu_access_bytes") {
    ok = static_cast<bool>(stream >> config->cpu_access_bytes);
  } else if (key == "policy") {
    ok = ParseCheckPolicy(value, &config->policy);
    if (!ok) {
      *what = "unknown policy \"" + value + "\"";
      return false;
    }
  } else if (key == "fault") {
    ok = ParseCheckFault(value, &config->fault);
    if (!ok) {
      *what = "unknown fault \"" + value + "\"";
      return false;
    }
  } else if (key == "chip_model") {
    const std::optional<ChipModelKind> kind = ParseChipModelKind(value);
    ok = kind.has_value();
    if (!ok) {
      *what = "unknown chip_model \"" + value + "\"";
      return false;
    }
    config->chip_model = *kind;
  } else {
    *what = "unknown key \"" + key + "\"";
    return false;
  }
  if (!ok) {
    *what = "malformed value \"" + value + "\" for key \"" + key + "\"";
    return false;
  }
  return true;
}

// Splits "key rest-of-line" at the first space run.
void SplitKeyValue(const std::string& line, std::string* key,
                   std::string* value) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    *key = line;
    value->clear();
    return;
  }
  *key = line.substr(0, space);
  std::size_t begin = space;
  while (begin < line.size() && line[begin] == ' ') ++begin;
  *value = line.substr(begin);
}

}  // namespace

std::string FormatCounterexample(const Counterexample& ce) {
  std::ostringstream out;
  out << kHeader << '\n';
  AppendConfig(ce.config, &out);
  out << "property " << OneLine(ce.property) << '\n'
      << "message " << OneLine(ce.message) << '\n'
      << "actions " << ce.actions.size() << '\n';
  for (const Action& action : ce.actions) {
    out << FormatAction(action) << '\n';
  }
  out << "end\n";
  return out.str();
}

bool ParseCounterexampleText(const std::string& text, Counterexample* out,
                             std::string* error) {
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  const auto next_line = [&](std::string* into) {
    while (std::getline(stream, *into)) {
      ++line_number;
      if (!into->empty() && into->back() == '\r') into->pop_back();
      return true;
    }
    return false;
  };

  if (!next_line(&line) || line != kHeader) {
    *error = LineError(line_number == 0 ? 1 : line_number,
                       std::string("expected header \"") + kHeader + "\"");
    return false;
  }

  Counterexample ce;
  bool saw_property = false;
  long action_count = -1;
  while (next_line(&line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string key;
    std::string value;
    SplitKeyValue(line, &key, &value);
    if (key == "property") {
      ce.property = value;
      saw_property = true;
    } else if (key == "message") {
      ce.message = value;
    } else if (key == "actions") {
      std::istringstream count_stream(value);
      if (!(count_stream >> action_count) || action_count < 0) {
        *error = LineError(line_number, "malformed action count \"" + value +
                                            "\"");
        return false;
      }
      break;  // Action lines follow.
    } else {
      std::string what;
      if (!ApplyConfigLine(key, value, &ce.config, &what)) {
        *error = LineError(line_number, what);
        return false;
      }
    }
  }
  if (action_count < 0) {
    *error = LineError(line_number, "missing \"actions <count>\" line");
    return false;
  }
  if (!saw_property) {
    *error = LineError(line_number, "missing \"property\" line");
    return false;
  }
  for (long i = 0; i < action_count; ++i) {
    if (!next_line(&line)) {
      *error = LineError(line_number, "unexpected end of input inside the "
                                      "action list");
      return false;
    }
    Action action;
    if (!ParseAction(line, &action)) {
      *error = LineError(line_number, "malformed action \"" + line + "\"");
      return false;
    }
    ce.actions.push_back(action);
  }
  if (!next_line(&line) || line != "end") {
    *error = LineError(line_number, "expected \"end\" after the action list");
    return false;
  }
  *out = ce;
  return true;
}

bool WriteCounterexampleFile(const Counterexample& ce, const std::string& path,
                             std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open \"" + path + "\" for writing";
    return false;
  }
  out << FormatCounterexample(ce);
  out.flush();
  if (!out) {
    *error = "write to \"" + path + "\" failed";
    return false;
  }
  return true;
}

bool ReadCounterexampleFile(const std::string& path, Counterexample* out,
                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open \"" + path + "\"";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseCounterexampleText(text.str(), out, error);
}

bool ReadConfigFile(const std::string& path, CheckerConfig* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open \"" + path + "\"";
    return false;
  }
  CheckerConfig config = *out;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::string key;
    std::string value;
    SplitKeyValue(line, &key, &value);
    std::string what;
    if (!ApplyConfigLine(key, value, &config, &what)) {
      *error = LineError(line_number, what);
      return false;
    }
  }
  *out = config;
  return true;
}

bool ReplayCounterexample(const Counterexample& ce, std::string* observed) {
  ProtocolHarness harness(ce.config);
  ReplayActions(ce.actions, &harness, nullptr);
  if (!harness.violation().has_value()) {
    // Terminal-phase properties (full drain) only judge genuinely
    // terminal states; a truncated replay must not fail them spuriously.
    std::vector<Action> enabled;
    harness.EnabledActions(&enabled);
    if (harness.Quiescent() || enabled.empty()) harness.CheckTerminal();
  }
  if (!harness.violation().has_value()) {
    if (observed != nullptr) *observed = "no violation reproduced";
    return false;
  }
  if (observed != nullptr) {
    *observed = harness.violation()->property + ": " +
                harness.violation()->message;
  }
  return harness.violation()->property == ce.property;
}

}  // namespace dmasim::check
