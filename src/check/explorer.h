// Bounded breadth-first exploration of the protocol harness.
//
// ProtocolHarness is deliberately non-copyable (gated requests hold
// pointers into harness-owned transfer storage), so the explorer stores
// *paths* (encoded action sequences) on its frontier and recreates any
// state by replaying its path from the initial state. Expansion of one
// node therefore costs O(branching * depth) action applications --
// cheap, allocation-light steps -- in exchange for never copying live
// aligner/FSM state.
//
// The visited set holds 64-bit FNV-1a digests of the canonical state
// encoding (see state_hash.h for the collision analysis). Exploration
// stops at the first property violation, at max_depth per path, and at
// max_states total unique states (reported as truncation, never
// silently).
#ifndef DMASIM_CHECK_EXPLORER_H_
#define DMASIM_CHECK_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/action.h"
#include "check/check_config.h"
#include "check/protocol_harness.h"

namespace dmasim::check {

struct ExploreStats {
  std::uint64_t states_explored = 0;  // Unique canonical states seen.
  std::uint64_t dedup_hits = 0;       // Transitions into already-seen states.
  std::uint64_t actions_applied = 0;  // Total harness steps incl. replays.
  std::uint64_t terminal_states = 0;  // Quiescent / dead-end states checked.
  std::uint64_t transitions_audited = 0;  // Power transitions validated.
  std::size_t frontier_peak = 0;
  int depth_reached = 0;
  bool truncated = false;  // Hit the max_states cap before exhausting.
};

struct ViolationTrace {
  std::vector<Action> actions;  // Prefix whose last action (or terminal
                                // check) surfaced the violation.
  std::string property;
  std::string message;
};

struct ExploreResult {
  ExploreStats stats;
  std::optional<ViolationTrace> violation;
};

class Explorer {
 public:
  explicit Explorer(const CheckerConfig& config,
                    std::uint64_t max_states = 1u << 20)
      : config_(config), max_states_(max_states) {}

  ExploreResult Run();

 private:
  CheckerConfig config_;
  std::uint64_t max_states_;
};

// Replays `actions` on a fresh harness. Stops early when an action is
// not enabled (returns false) or a violation fires (returns true;
// harness->violation() is set). `applied` (may be null) receives the
// number of actions actually applied.
bool ReplayActions(const std::vector<Action>& actions,
                   ProtocolHarness* harness, std::size_t* applied);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_EXPLORER_H_
