// Greedy delta-debugging over a violating action sequence.
//
// A candidate subsequence is valid iff every one of its actions is
// enabled when replayed in order AND the run surfaces a violation of the
// same property (mid-replay or at the terminal check). Classic ddmin
// chunk removal runs first, then a one-at-a-time sweep guarantees the
// result is 1-minimal: removing any single remaining action either
// disables a later one or loses the violation.
#ifndef DMASIM_CHECK_MINIMIZER_H_
#define DMASIM_CHECK_MINIMIZER_H_

#include <string>
#include <vector>

#include "check/action.h"
#include "check/check_config.h"

namespace dmasim::check {

// True when replaying `actions` under `config` reproduces a violation of
// `property` (empty property accepts any violation). All actions must be
// enabled in sequence; the terminal check runs if the replay ends
// violation-free on a quiescent or dead-end state.
bool Reproduces(const CheckerConfig& config,
                const std::vector<Action>& actions,
                const std::string& property);

// Returns a 1-minimal subsequence of `actions` still reproducing
// `property`. `actions` itself must reproduce it.
std::vector<Action> MinimizeTrace(const CheckerConfig& config,
                                  const std::vector<Action>& actions,
                                  const std::string& property);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_MINIMIZER_H_
