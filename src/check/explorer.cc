#include "check/explorer.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_set>

#include "check/state_hash.h"
#include "util/check.h"

namespace dmasim::check {

bool ReplayActions(const std::vector<Action>& actions,
                   ProtocolHarness* harness, std::size_t* applied) {
  std::size_t count = 0;
  for (const Action& action : actions) {
    if (!harness->IsEnabled(action)) break;
    const bool clean = harness->Apply(action);
    ++count;
    if (!clean) break;
  }
  if (applied != nullptr) *applied = count;
  return count == actions.size() || harness->violation().has_value();
}

namespace {

using Path = std::vector<std::uint16_t>;

std::vector<Action> DecodePath(const Path& path) {
  std::vector<Action> actions;
  actions.reserve(path.size());
  for (const std::uint16_t word : path) {
    actions.push_back(DecodeAction(word));
  }
  return actions;
}

}  // namespace

ExploreResult Explorer::Run() {
  ExploreResult result;
  ExploreStats& stats = result.stats;

  std::unordered_set<std::uint64_t> visited;
  std::deque<Path> frontier;
  std::vector<std::uint64_t> encoded;
  std::vector<Action> enabled;

  // A fresh harness per replay: states are recreated, never copied.
  const auto replay = [&](const Path& path) {
    auto harness = std::make_unique<ProtocolHarness>(config_);
    for (const std::uint16_t word : path) {
      harness->Apply(DecodeAction(word));
      ++stats.actions_applied;
    }
    return harness;
  };

  {
    const ProtocolHarness initial(config_);
    initial.EncodeState(&encoded);
    visited.insert(HashState(encoded));
    stats.states_explored = 1;
  }
  frontier.push_back(Path{});

  while (!frontier.empty()) {
    stats.frontier_peak = std::max(stats.frontier_peak, frontier.size());
    const Path path = std::move(frontier.front());
    frontier.pop_front();
    stats.depth_reached =
        std::max(stats.depth_reached, static_cast<int>(path.size()));

    const auto harness = replay(path);
    stats.transitions_audited =
        std::max(stats.transitions_audited, harness->transitions_checked());
    DMASIM_CHECK(!harness->violation().has_value());

    harness->EnabledActions(&enabled);
    if (harness->Quiescent() || enabled.empty()) {
      // Quiescent: nothing protocol-relevant left (remaining step-downs /
      // empty epochs cannot move any property). Dead-end: no action at
      // all. Both run the end-of-run pass (full drain, credit
      // conservation) and are not expanded.
      harness->CheckTerminal();
      ++stats.terminal_states;
      if (harness->violation().has_value()) {
        result.violation = ViolationTrace{DecodePath(path),
                                          harness->violation()->property,
                                          harness->violation()->message};
        return result;
      }
      continue;
    }
    if (static_cast<int>(path.size()) >= config_.max_depth) continue;

    for (const Action& action : enabled) {
      const auto child = replay(path);
      const bool clean = child->Apply(action);
      ++stats.actions_applied;
      if (!clean) {
        Path extended = path;
        extended.push_back(EncodeAction(action));
        result.violation = ViolationTrace{DecodePath(extended),
                                          child->violation()->property,
                                          child->violation()->message};
        return result;
      }
      child->EncodeState(&encoded);
      const std::uint64_t digest = HashState(encoded);
      if (!visited.insert(digest).second) {
        ++stats.dedup_hits;
        continue;
      }
      ++stats.states_explored;
      Path extended = path;
      extended.push_back(EncodeAction(action));
      frontier.push_back(std::move(extended));
      if (visited.size() >= max_states_) {
        stats.truncated = true;
        return result;
      }
    }
  }
  return result;
}

}  // namespace dmasim::check
