// Deterministic stepping seam between the explorer and the *real*
// DMA-TA implementation.
//
// The harness instantiates the production TemporalAligner (which owns
// the production SlackAccount), one production PowerFsm per chip, and
// the production LowPowerPolicy implementations, then drives them with
// the exact decision sequence MemoryController uses:
//
//   arrival:    CreditArrival -> InLowPowerForGating? -> WorthGating? ->
//               Gate -> release now, or re-check at the returned deadline
//   CPU access: OnCpuAccess debit -> release gated (kCpuPriority) -> wake
//   release:    TakeGated -> DebitActivation while the chip is still in
//               its low-power state -> wake
//   epoch:      OnEpoch -> release the chips it names
//
// What it abstracts away is *time inside the chip*: transitions and
// request service complete atomically (their real durations are still
// recorded and judged by PowerStateAuditor against the pristine
// reference model), and step-down timing is a nondeterministic kStepDown
// choice instead of an idle-threshold timer -- so one exploration covers
// every timer phasing the real simulator could exhibit.
//
// Properties are evaluated through the src/audit registry: registered
// invariants run at kPeriodic (after every action) and kEndOfRun
// (at quiescence); transition-time checks go through ReportFailure.
// The first failure freezes the harness as a Violation.
#ifndef DMASIM_CHECK_PROTOCOL_HARNESS_H_
#define DMASIM_CHECK_PROTOCOL_HARNESS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "audit/power_state_auditor.h"
#include "check/action.h"
#include "check/check_config.h"
#include "core/temporal_aligner.h"
#include "io/dma_transfer.h"
#include "mem/chip_power_model.h"
#include "mem/power_fsm.h"
#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "util/time.h"

namespace dmasim::check {

// First property failure observed; the harness rejects further actions
// once one is set.
struct Violation {
  std::string property;  // Invariant name, e.g. "check.power-state-legality".
  std::string message;
};

// Per-transfer conservation ledger entry (index = arrival order).
struct RequestRecord {
  int chip = 0;
  int bus = 0;
  Tick arrived_at = 0;
  bool gated_ever = false;
  Tick released_at = -1;  // -1 while gated or never gated.
  bool served = false;
};

class ProtocolHarness {
 public:
  explicit ProtocolHarness(const CheckerConfig& config);

  ProtocolHarness(const ProtocolHarness&) = delete;
  ProtocolHarness& operator=(const ProtocolHarness&) = delete;

  // Enumerates the enabled actions in a fixed deterministic order
  // (arrivals by (bus, chip), CPU accesses by chip, step-downs by chip,
  // then advance). Clears `out` first.
  void EnabledActions(std::vector<Action>* out) const;
  bool IsEnabled(const Action& action) const;

  // Applies one enabled action, then runs the kPeriodic property pass.
  // Returns false when a property failed (violation() is then set).
  // Requires IsEnabled(action) and no prior violation.
  bool Apply(const Action& action);

  // True when nothing protocol-relevant can happen anymore: all arrival
  // and CPU budgets spent and no request still gated. (Step-downs and
  // epoch crossings may remain enabled; they cannot affect any property
  // from a drained state, so the explorer prunes here.)
  bool Quiescent() const;

  // Runs the kEndOfRun property pass (full drain, credit conservation).
  void CheckTerminal();

  // Canonical state encoding for visited-set hashing. All times are
  // relative to `now` -- the aligner's decisions depend only on
  // deadline-vs-now differences, gating order, and the slack balance, so
  // two states equal under this encoding have identical futures.
  void EncodeState(std::vector<std::uint64_t>* out) const;

  const std::optional<Violation>& violation() const { return violation_; }

  // Introspection for tests and the CLI.
  Tick now() const { return now_; }
  const TemporalAligner& aligner() const { return aligner_; }
  const PowerFsm& fsm(int chip) const {
    return fsms_[static_cast<std::size_t>(chip)];
  }
  const RequestRecord& record(int index) const {
    return ledger_[static_cast<std::size_t>(index)];
  }
  int arrivals_done() const { return arrivals_done_; }
  int served_count() const { return served_count_; }
  const CheckerConfig& config() const { return config_; }
  const ChipPowerModel& acting_model() const { return *acting_model_; }
  std::uint64_t transitions_checked() const {
    return power_auditor_.transitions_checked();
  }

 private:
  void DoArrive(int bus, int chip);
  void DoCpuAccess(int chip);
  void DoStepDown(int chip);
  void DoAdvance();

  // Releases `chip`'s gated requests: TakeGated, DebitActivation while
  // the chip is still in its low-power state (the controller's ordering),
  // wake, then serve. Applies the kLostRelease fault here.
  void Release(int chip);
  void ServeTransfer(DmaTransfer* transfer);
  void WakeChip(int chip);

  // Earliest of (gated deadline strictly after now, next epoch boundary
  // if epochs remain); -1 when neither exists.
  Tick NextAdvanceTarget() const;

  // Records a transition-time or release-time property failure.
  void ReportFailure(const std::string& property, const std::string& message);
  // Latches new registry failures into violation_.
  void CollectFailures();
  void RegisterInvariants();

  bool CheckConservation(std::string* message) const;
  bool CheckLockstep(std::string* message) const;
  bool CheckSlackOverdraft(std::string* message) const;
  bool CheckBoundedReleaseDelay(std::string* message) const;
  bool CheckFullDrain(std::string* message) const;

  int LedgerIndex(const DmaTransfer* transfer) const;

  CheckerConfig config_;
  // Fault-injected instance driving the FSMs, and the pristine oracle
  // of the same ChipModelKind the auditor judges against.
  std::unique_ptr<ChipPowerModel> acting_model_;
  std::unique_ptr<ChipPowerModel> reference_model_;
  std::unique_ptr<LowPowerPolicy> policy_;

  TemporalAligner aligner_;
  std::vector<PowerFsm> fsms_;

  InvariantAuditor auditor_;  // kCollect; registry of the properties.
  PowerStateAuditor power_auditor_;

  Tick now_ = 0;
  Tick next_epoch_ = 0;
  int arrivals_done_ = 0;
  int cpu_done_ = 0;
  int epochs_done_ = 0;
  int served_count_ = 0;
  int lost_count_ = 0;  // kLostRelease fault drops.
  double slack_floor_ = 0.0;

  std::vector<DmaTransfer> transfers_;  // Stable storage; never resized.
  std::vector<RequestRecord> ledger_;

  std::size_t consumed_failures_ = 0;
  std::optional<Violation> violation_;
};

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_PROTOCOL_HARNESS_H_
