// Configuration of the bounded protocol model checker (src/check).
//
// The checker exhaustively explores all interleavings of DMA-memory
// request arrivals, CPU accesses, chip step-downs, and time advances for
// a *small* configuration of the DMA-TA protocol: at most 4 chips and 3
// I/O buses, a bounded number of arrivals/CPU accesses/epochs, and a
// bounded choice-sequence depth. Small bounds are the point: protocol
// bugs in quorum/slack/power-state logic show up in tiny configurations
// (the classic small-scope hypothesis), where the state space is still
// exhaustively checkable within a PR's CI latency budget.
#ifndef DMASIM_CHECK_CHECK_CONFIG_H_
#define DMASIM_CHECK_CHECK_CONFIG_H_

#include <cstdint>
#include <string>

#include "mem/chip_power_model.h"
#include "util/time.h"

namespace dmasim::check {

// Seeded faults. Each corrupts one step of the harness (never the code
// under test's sources) so the checker can prove its properties actually
// detect the corresponding protocol violation. kResyncSkip reproduces
// the PR 3 runtime-auditor regression: the acting power model wakes from
// nap in zero time while the reference model demands the Table 1 resync.
enum class CheckFault : int {
  kNone = 0,
  kResyncSkip,     // Acting model skips the nap resync delay.
  kLostRelease,    // A release drops its last gated request.
  kStuckDeadline,  // Deadline-triggered releases are never executed.
};

// Chip-local low-power policy driven by the harness (the real
// LowPowerPolicy implementations from src/mem/power_policy.h).
enum class CheckPolicy : int {
  kDynamicThreshold = 0,  // active -> standby -> nap -> powerdown chain.
  kStaticNap,             // active -> nap, rests in nap.
  kStaticPowerdown,       // active -> powerdown, rests in powerdown.
};

struct CheckerConfig {
  // Topology. Hard limits (enforced by the harness): chips <= 4,
  // buses <= 3 -- see the file comment.
  int chips = 2;
  int buses = 2;
  // Distinct-bus quorum k (the paper's ceil(Rm / Rb)); defaults to full
  // quorum for the 2-bus configuration.
  int k = 2;
  double gather_depth_factor = 1.0;

  // Exploration bounds.
  int max_arrivals = 3;      // DMA transfers (first requests) injected.
  int max_cpu_accesses = 1;  // Processor accesses injected.
  int max_epochs = 2;        // Epoch boundaries crossed.
  int max_depth = 12;        // Choice-sequence length bound.

  // DMA-TA parameters (fed to the real TemporalAligner/SlackAccount).
  double mu = 1.0;
  // T: one I/O-bus slot for a chunk-sized request. The default is the
  // production 512-byte-chunk slot (8 bytes per 12 memory cycles).
  Tick t_request = 480000;
  std::int64_t transfer_requests = 4;  // n: DMA-memory requests/transfer.
  // Deliberately far below the production 50 us default: a checker epoch
  // must be shorter than a transfer's delay budget (n * mu * T, 1.92 us
  // here) or the per-transfer deadline always fires first and the epoch
  // debit / exhaustion-valve interleavings are never reachable.
  Tick epoch_length = 1 * kMicrosecond;
  double slack_cap_requests = 64.0;
  Tick min_gating_budget = 0;  // Gate every eligible transfer.
  std::int64_t cpu_access_bytes = 64;  // One cache line.

  CheckPolicy policy = CheckPolicy::kStaticNap;
  CheckFault fault = CheckFault::kNone;

  // Chip power model whose FSM the exploration drives. The non-RDRAM
  // models keep the RDRAM 4-state chain (kRdramCorrected, kSectored) or
  // bring their own (kDdr4, which requires kDynamicThreshold — its
  // cascade has no nap/powerdown for the static policies to target).
  ChipModelKind chip_model = ChipModelKind::kRdram;
};

const char* CheckFaultName(CheckFault fault);
const char* CheckPolicyName(CheckPolicy policy);
// Parses the names produced by the functions above; returns false on an
// unknown name.
bool ParseCheckFault(const std::string& name, CheckFault* out);
bool ParseCheckPolicy(const std::string& name, CheckPolicy* out);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_CHECK_CONFIG_H_
