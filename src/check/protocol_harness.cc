#include "check/protocol_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace dmasim::check {

namespace {

std::unique_ptr<ChipPowerModel> MakeActingModel(const CheckerConfig& config) {
  if (config.chip_model == ChipModelKind::kDdr4) {
    Ddr4Options options;
    if (config.fault == CheckFault::kResyncSkip) {
      // DDR4 flavor of the PR 3 regression: self-refresh exits skip the
      // tXS resync while the reference oracle demands it.
      options.self_refresh_exit = 0;
    }
    return std::make_unique<Ddr4ChipModel>(options);
  }
  PowerModel params;  // Pristine Table 1 defaults.
  if (config.fault == CheckFault::kResyncSkip) {
    // The PR 3 regression: wakes from nap skip the 60 ns resync.
    params.from_nap.duration = Ticks(0);
  }
  return MakeChipPowerModel(config.chip_model, params);
}

std::unique_ptr<ChipPowerModel> MakeReferenceModel(
    const CheckerConfig& config) {
  return MakeChipPowerModel(config.chip_model, PowerModel{});
}

TemporalAlignmentConfig MakeTaConfig(const CheckerConfig& config) {
  TemporalAlignmentConfig ta;
  ta.enabled = true;
  ta.mu = config.mu;
  ta.epoch_length = config.epoch_length;
  ta.gather_depth_factor = config.gather_depth_factor;
  ta.min_gating_budget = config.min_gating_budget;
  ta.slack_cap_requests = config.slack_cap_requests;
  return ta;
}

std::unique_ptr<LowPowerPolicy> MakePolicy(const CheckerConfig& config) {
  if (config.chip_model == ChipModelKind::kDdr4) {
    // The DDR4 cascade has no nap/powerdown for the static policies to
    // target; its exploration walks the model's own chain.
    DMASIM_CHECK_MSG(config.policy == CheckPolicy::kDynamicThreshold,
                     "ddr4 exploration requires the dynamic-threshold policy");
    return std::make_unique<ModelChainPolicy>(config.chip_model, PowerModel{},
                                              DynamicThresholdConfig{});
  }
  switch (config.policy) {
    case CheckPolicy::kDynamicThreshold:
      return std::make_unique<DynamicThresholdPolicy>();
    case CheckPolicy::kStaticNap:
      return std::make_unique<StaticPolicy>(PowerState::kNap);
    case CheckPolicy::kStaticPowerdown:
      return std::make_unique<StaticPolicy>(PowerState::kPowerdown);
  }
  DMASIM_CHECK_MSG(false, "invalid check policy");
}

std::string Sprintf(const char* format, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), format, args...);
  return std::string(buffer);
}

}  // namespace

ProtocolHarness::ProtocolHarness(const CheckerConfig& config)
    : config_(config),
      acting_model_(MakeActingModel(config)),
      reference_model_(MakeReferenceModel(config)),
      policy_(MakePolicy(config)),
      aligner_(MakeTaConfig(config), config.chips, config.buses, config.k,
               config.t_request),
      auditor_(InvariantAuditor::Mode::kCollect),
      power_auditor_(reference_model_.get(), config.chips) {
  DMASIM_EXPECTS(config.chips >= 1 && config.chips <= 4);
  DMASIM_EXPECTS(config.buses >= 1 && config.buses <= 3);
  DMASIM_EXPECTS(config.k >= 1);
  DMASIM_EXPECTS(config.max_arrivals >= 1 && config.max_arrivals <= 16);
  DMASIM_EXPECTS(config.max_cpu_accesses >= 0);
  DMASIM_EXPECTS(config.max_epochs >= 0);
  DMASIM_EXPECTS(config.max_depth >= 1);
  DMASIM_EXPECTS(config.transfer_requests >= 1);
  DMASIM_EXPECTS(config.cpu_access_bytes > 0);

  const PowerState resting = PowerFsm::RestingState(*policy_);
  fsms_.assign(static_cast<std::size_t>(config.chips), PowerFsm(resting));
  for (int chip = 0; chip < config.chips; ++chip) {
    power_auditor_.Seed(chip, resting);
  }

  next_epoch_ = config.epoch_length;
  transfers_.resize(static_cast<std::size_t>(config.max_arrivals));
  ledger_.resize(static_cast<std::size_t>(config.max_arrivals));

  // Sound overdraft floor: slack only ever decreases through a bounded
  // number of bounded debits. Epoch debits: at most max_epochs, each at
  // most P * epoch_length with P = max_arrivals pending. Activation
  // debits: one per release, at most one release per gated transfer,
  // each at most P * (deepest wake). CPU-service debits: at most
  // max_cpu_accesses, each at most P * t_cpu. Anything below this floor
  // means a debit outside the protocol's accounting.
  Tick wake_max = 0;
  for (int i = 1; i < acting_model_->StateCount(); ++i) {
    wake_max = std::max(
        wake_max, acting_model_
                      ->TransitionBetween(acting_model_->State(i),
                                          PowerState::kActive)
                      .duration.value());
  }
  const Tick t_cpu =
      acting_model_->ServiceTime(ByteCount(config.cpu_access_bytes)).value();
  const double pending = static_cast<double>(config.max_arrivals);
  slack_floor_ =
      -(static_cast<double>(config.max_epochs) * pending *
            static_cast<double>(config.epoch_length) +
        pending * pending * static_cast<double>(wake_max) +
        static_cast<double>(config.max_cpu_accesses) * pending *
            static_cast<double>(t_cpu));

  RegisterInvariants();
}

void ProtocolHarness::RegisterInvariants() {
  const unsigned always = AuditPhase::kPeriodic | AuditPhase::kEndOfRun;
  auditor_.Register("check.conservation", always, [this](std::string* m) {
    return CheckConservation(m);
  });
  auditor_.Register("check.lockstep", always, [this](std::string* m) {
    return CheckLockstep(m);
  });
  auditor_.Register("check.slack-overdraft", always, [this](std::string* m) {
    return CheckSlackOverdraft(m);
  });
  auditor_.Register("check.bounded-release-delay", always,
                    [this](std::string* m) {
                      return CheckBoundedReleaseDelay(m);
                    });
  auditor_.Register("check.full-drain", AuditPhase::kEndOfRun,
                    [this](std::string* m) { return CheckFullDrain(m); });
}

bool ProtocolHarness::IsEnabled(const Action& action) const {
  if (action.bus < 0 || action.chip < 0) return false;
  switch (action.kind) {
    case ActionKind::kArrive:
      return arrivals_done_ < config_.max_arrivals &&
             action.bus < config_.buses && action.chip < config_.chips;
    case ActionKind::kCpuAccess:
      return cpu_done_ < config_.max_cpu_accesses &&
             action.chip < config_.chips;
    case ActionKind::kStepDown:
      return action.chip < config_.chips &&
             policy_->NextStep(fsms_[static_cast<std::size_t>(action.chip)]
                                   .state())
                 .has_value();
    case ActionKind::kAdvance:
      return NextAdvanceTarget() > now_;
  }
  return false;
}

void ProtocolHarness::EnabledActions(std::vector<Action>* out) const {
  out->clear();
  for (int bus = 0; bus < config_.buses; ++bus) {
    for (int chip = 0; chip < config_.chips; ++chip) {
      const Action action{ActionKind::kArrive, bus, chip};
      if (IsEnabled(action)) out->push_back(action);
    }
  }
  for (int chip = 0; chip < config_.chips; ++chip) {
    const Action action{ActionKind::kCpuAccess, 0, chip};
    if (IsEnabled(action)) out->push_back(action);
  }
  for (int chip = 0; chip < config_.chips; ++chip) {
    const Action action{ActionKind::kStepDown, 0, chip};
    if (IsEnabled(action)) out->push_back(action);
  }
  const Action advance{ActionKind::kAdvance, 0, 0};
  if (IsEnabled(advance)) out->push_back(advance);
}

bool ProtocolHarness::Apply(const Action& action) {
  DMASIM_CHECK(!violation_.has_value());
  DMASIM_CHECK(IsEnabled(action));
  switch (action.kind) {
    case ActionKind::kArrive:
      DoArrive(action.bus, action.chip);
      break;
    case ActionKind::kCpuAccess:
      DoCpuAccess(action.chip);
      break;
    case ActionKind::kStepDown:
      DoStepDown(action.chip);
      break;
    case ActionKind::kAdvance:
      DoAdvance();
      break;
  }
  auditor_.RunPhase(AuditPhase::kPeriodic);
  CollectFailures();
  return !violation_.has_value();
}

void ProtocolHarness::DoArrive(int bus, int chip) {
  const std::size_t slot = static_cast<std::size_t>(arrivals_done_);
  DmaTransfer* transfer = &transfers_[slot];
  transfer->Reset();
  transfer->id = static_cast<std::uint64_t>(arrivals_done_) + 1;
  transfer->bus_id = bus;
  transfer->chip_index = chip;
  transfer->chunk_bytes = 8;
  transfer->total_bytes = config_.transfer_requests * transfer->chunk_bytes;
  transfer->start_time = now_;
  // The bus has issued the transfer's first DMA-memory request; that is
  // the request DMA-TA may buffer (and the state the audited Gate
  // lockstep assertions demand).
  transfer->issued_bytes = transfer->chunk_bytes;
  ledger_[slot] = RequestRecord{chip, bus, now_, false, -1, false};
  ++arrivals_done_;

  aligner_.slack().CreditArrival();
  PowerFsm& fsm = fsms_[static_cast<std::size_t>(chip)];
  if (fsm.InLowPowerForGating() &&
      aligner_.WorthGating(*transfer, transfer->chunk_bytes)) {
    ledger_[slot].gated_ever = true;
    const TemporalAligner::GateResult result =
        aligner_.Gate(chip, transfer, transfer->chunk_bytes, now_);
    // No release now: the controller schedules a re-check at
    // result.deadline, which DoAdvance reconstructs from the gated list.
    if (result.release_now) Release(chip);
  } else {
    if (fsm.state() != PowerState::kActive) WakeChip(chip);
    ServeTransfer(transfer);
  }
}

void ProtocolHarness::DoCpuAccess(int chip) {
  const Ticks service =
      acting_model_->ServiceTime(ByteCount(config_.cpu_access_bytes));
  aligner_.OnCpuAccess(chip, service);
  if (aligner_.HasGated(chip)) {
    // The controller's kCpuPriority path: the access is going to wake the
    // chip anyway, so the gated requests ride the same activation.
    Release(chip);
  } else if (fsms_[static_cast<std::size_t>(chip)].state() !=
             PowerState::kActive) {
    WakeChip(chip);
  }
  ++cpu_done_;
}

void ProtocolHarness::DoStepDown(int chip) {
  PowerFsm& fsm = fsms_[static_cast<std::size_t>(chip)];
  const auto step = policy_->NextStep(fsm.state());
  DMASIM_CHECK(step.has_value());
  const PowerState from = fsm.state();
  const Transition& down = fsm.BeginStepDown(step->target, *acting_model_);
  const Tick start = now_;
  const Tick end = now_ + down.duration.value();
  fsm.CompleteTransition();
  const std::string error =
      power_auditor_.Validate(chip, from, step->target, /*up=*/false, start,
                              end);
  if (!error.empty()) ReportFailure("check.power-state-legality", error);
}

void ProtocolHarness::DoAdvance() {
  const Tick target = NextAdvanceTarget();
  DMASIM_CHECK(target > now_);
  now_ = target;

  if (epochs_done_ < config_.max_epochs && now_ == next_epoch_) {
    const std::vector<int> to_release = aligner_.OnEpoch(now_);
    ++epochs_done_;
    next_epoch_ += config_.epoch_length;
    for (const int chip : to_release) {
      if (aligner_.HasGated(chip)) Release(chip);
    }
  }

  // Deadline re-checks: every Gate schedules one at its deadline; the
  // ones firing at `now_` re-evaluate ShouldRelease (any cause may hold
  // by now -- a CPU access may have drained the slack since).
  for (int chip = 0; chip < config_.chips; ++chip) {
    if (!aligner_.HasGated(chip)) continue;
    bool due = false;
    for (const GatedRequest& request : aligner_.GatedFor(chip)) {
      if (request.deadline <= now_) {
        due = true;
        break;
      }
    }
    if (!due) continue;
    if (!aligner_.ShouldRelease(chip, now_)) continue;
    if (config_.fault == CheckFault::kStuckDeadline &&
        aligner_.last_release_cause() == ReleaseCause::kDeadline) {
      continue;  // Seeded fault: the re-check forgets deadline releases.
    }
    Release(chip);
  }
}

void ProtocolHarness::Release(int chip) {
  std::vector<GatedRequest> taken = aligner_.TakeGated(chip);
  DMASIM_CHECK(!taken.empty());
  PowerFsm& fsm = fsms_[static_cast<std::size_t>(chip)];
  if (fsm.state() != PowerState::kActive) {
    // Controller ordering: the activation debit reads the chip's
    // still-low power state, *then* the wake begins.
    const Transition& up =
        acting_model_->TransitionBetween(fsm.state(), PowerState::kActive);
    aligner_.slack().DebitActivation(up.duration,
                                     static_cast<int>(taken.size()));
    WakeChip(chip);
  }
  if (config_.fault == CheckFault::kLostRelease) {
    // Seeded fault: the release forwards all but its last request, which
    // simply vanishes (stays marked gated in its descriptor but is no
    // longer buffered anywhere).
    taken.pop_back();
    ++lost_count_;
  }
  for (const GatedRequest& request : taken) {
    if (now_ > request.deadline) {
      ReportFailure(
          "check.deadline-honored",
          Sprintf("chip %d: transfer %llu released at %lld past its "
                  "deadline %lld (gated at %lld)",
                  chip, static_cast<unsigned long long>(request.transfer->id),
                  static_cast<long long>(now_),
                  static_cast<long long>(request.deadline),
                  static_cast<long long>(request.gated_at)));
    }
    ledger_[static_cast<std::size_t>(LedgerIndex(request.transfer))]
        .released_at = now_;
    ServeTransfer(request.transfer);
  }
}

void ProtocolHarness::ServeTransfer(DmaTransfer* transfer) {
  const int index = LedgerIndex(transfer);
  DMASIM_CHECK(index >= 0);
  transfer->blocked = false;
  transfer->gated_at = -1;
  transfer->issued_bytes = transfer->total_bytes;
  transfer->completed_bytes = transfer->total_bytes;
  RequestRecord& record = ledger_[static_cast<std::size_t>(index)];
  record.served = true;
  if (record.released_at < 0) record.released_at = now_;
  ++served_count_;
  // The transfer's remaining n-1 requests stream in strict lockstep once
  // the first is through; each credits the account on arrival, exactly
  // as the controller's per-chunk delivery does.
  for (std::int64_t i = 1; i < config_.transfer_requests; ++i) {
    aligner_.slack().CreditArrival();
  }
}

void ProtocolHarness::WakeChip(int chip) {
  PowerFsm& fsm = fsms_[static_cast<std::size_t>(chip)];
  const PowerState from = fsm.state();
  const Transition& up = fsm.BeginWake(*acting_model_);
  const Tick start = now_;
  const Tick end = now_ + up.duration.value();
  fsm.CompleteTransition();
  const std::string error = power_auditor_.Validate(
      chip, from, PowerState::kActive, /*up=*/true, start, end);
  if (!error.empty()) ReportFailure("check.power-state-legality", error);
}

Tick ProtocolHarness::NextAdvanceTarget() const {
  Tick target = -1;
  for (int chip = 0; chip < config_.chips; ++chip) {
    for (const GatedRequest& request : aligner_.GatedFor(chip)) {
      if (request.deadline > now_ &&
          (target < 0 || request.deadline < target)) {
        target = request.deadline;
      }
    }
  }
  if (epochs_done_ < config_.max_epochs &&
      (target < 0 || next_epoch_ < target)) {
    target = next_epoch_;
  }
  return target;
}

bool ProtocolHarness::Quiescent() const {
  return arrivals_done_ == config_.max_arrivals &&
         cpu_done_ == config_.max_cpu_accesses &&
         aligner_.TotalPending() == 0;
}

void ProtocolHarness::CheckTerminal() {
  if (violation_.has_value()) return;
  auditor_.RunPhase(AuditPhase::kEndOfRun);
  CollectFailures();
}

void ProtocolHarness::EncodeState(std::vector<std::uint64_t>* out) const {
  out->clear();
  out->push_back(static_cast<std::uint64_t>(arrivals_done_));
  out->push_back(static_cast<std::uint64_t>(cpu_done_));
  out->push_back(static_cast<std::uint64_t>(epochs_done_));
  out->push_back(static_cast<std::uint64_t>(served_count_));
  // All times relative to `now`: the aligner compares deadlines against
  // `now`, orders requests by gated_at, and debits durations -- none of
  // its decisions depend on absolute time, so shifted states are
  // behaviorally identical and must dedup.
  out->push_back(epochs_done_ < config_.max_epochs
                     ? static_cast<std::uint64_t>(next_epoch_ - now_)
                     : 0u);
  std::uint64_t slack_bits = 0;
  const double slack = aligner_.slack().slack();
  static_assert(sizeof(slack_bits) == sizeof(slack));
  std::memcpy(&slack_bits, &slack, sizeof(slack_bits));
  out->push_back(slack_bits);
  for (int chip = 0; chip < config_.chips; ++chip) {
    out->push_back(static_cast<std::uint64_t>(
        fsms_[static_cast<std::size_t>(chip)].state()));
    const std::vector<GatedRequest>& gated = aligner_.GatedFor(chip);
    out->push_back(gated.size());
    for (const GatedRequest& request : gated) {
      out->push_back(static_cast<std::uint64_t>(request.transfer->bus_id));
      out->push_back(static_cast<std::uint64_t>(now_ - request.gated_at));
      out->push_back(static_cast<std::uint64_t>(request.deadline - now_));
    }
  }
}

void ProtocolHarness::ReportFailure(const std::string& property,
                                    const std::string& message) {
  auditor_.ReportFailure(property, message);
}

void ProtocolHarness::CollectFailures() {
  const std::vector<AuditFailure>& failures = auditor_.failures();
  if (!violation_.has_value() && failures.size() > consumed_failures_) {
    violation_ = Violation{failures[consumed_failures_].invariant,
                           failures[consumed_failures_].message};
  }
  consumed_failures_ = failures.size();
}

int ProtocolHarness::LedgerIndex(const DmaTransfer* transfer) const {
  const DmaTransfer* base = transfers_.data();
  if (transfer < base || transfer >= base + arrivals_done_) return -1;
  return static_cast<int>(transfer - base);
}

bool ProtocolHarness::CheckConservation(std::string* message) const {
  std::vector<int> gated_count(static_cast<std::size_t>(arrivals_done_), 0);
  int total_gated = 0;
  for (int chip = 0; chip < config_.chips; ++chip) {
    for (const GatedRequest& request : aligner_.GatedFor(chip)) {
      const int index = LedgerIndex(request.transfer);
      if (index < 0) {
        *message = Sprintf("chip %d holds a gated request for an unknown "
                           "transfer",
                           chip);
        return false;
      }
      if (ledger_[static_cast<std::size_t>(index)].chip != chip) {
        *message = Sprintf("transfer %d targets chip %d but is gated under "
                           "chip %d",
                           index + 1,
                           ledger_[static_cast<std::size_t>(index)].chip,
                           chip);
        return false;
      }
      ++gated_count[static_cast<std::size_t>(index)];
      ++total_gated;
    }
  }
  for (int i = 0; i < arrivals_done_; ++i) {
    const RequestRecord& record = ledger_[static_cast<std::size_t>(i)];
    const int gated = gated_count[static_cast<std::size_t>(i)];
    if (record.served && gated != 0) {
      *message = Sprintf("transfer %d duplicated: served and still gated "
                         "%d time(s)",
                         i + 1, gated);
      return false;
    }
    if (!record.served && gated == 0) {
      *message = Sprintf("transfer %d lost: neither gated nor served", i + 1);
      return false;
    }
    if (gated > 1) {
      *message = Sprintf("transfer %d gated %d times", i + 1, gated);
      return false;
    }
  }
  if (total_gated != aligner_.TotalPending()) {
    *message = Sprintf("aligner pending count %d disagrees with its gated "
                       "lists (%d)",
                       aligner_.TotalPending(), total_gated);
    return false;
  }
  return true;
}

bool ProtocolHarness::CheckLockstep(std::string* message) const {
  for (int i = 0; i < arrivals_done_; ++i) {
    const DmaTransfer& transfer = transfers_[static_cast<std::size_t>(i)];
    const RequestRecord& record = ledger_[static_cast<std::size_t>(i)];
    if (record.served) {
      if (transfer.blocked || !transfer.Complete() ||
          transfer.issued_bytes != transfer.total_bytes) {
        *message = Sprintf("transfer %d broke lockstep after release: "
                           "blocked=%d issued=%lld completed=%lld of %lld",
                           i + 1, transfer.blocked ? 1 : 0,
                           static_cast<long long>(transfer.issued_bytes),
                           static_cast<long long>(transfer.completed_bytes),
                           static_cast<long long>(transfer.total_bytes));
        return false;
      }
    } else {
      // While gated, only the transfer's first request may exist.
      if (!transfer.blocked || transfer.issued_bytes != transfer.chunk_bytes ||
          transfer.completed_bytes != 0) {
        *message = Sprintf("gated transfer %d broke lockstep: blocked=%d "
                           "issued=%lld completed=%lld",
                           i + 1, transfer.blocked ? 1 : 0,
                           static_cast<long long>(transfer.issued_bytes),
                           static_cast<long long>(transfer.completed_bytes));
        return false;
      }
    }
  }
  return true;
}

bool ProtocolHarness::CheckSlackOverdraft(std::string* message) const {
  const double slack = aligner_.slack().slack();
  if (slack < slack_floor_) {
    *message = Sprintf("slack %.1f below the provable overdraft floor %.1f",
                       slack, slack_floor_);
    return false;
  }
  return true;
}

bool ProtocolHarness::CheckBoundedReleaseDelay(std::string* message) const {
  for (int chip = 0; chip < config_.chips; ++chip) {
    for (const GatedRequest& request : aligner_.GatedFor(chip)) {
      if (request.deadline < now_) {
        *message = Sprintf(
            "chip %d: transfer %llu still gated at %lld, past its deadline "
            "%lld (gated at %lld) -- delay budget exceeded",
            chip, static_cast<unsigned long long>(request.transfer->id),
            static_cast<long long>(now_),
            static_cast<long long>(request.deadline),
            static_cast<long long>(request.gated_at));
        return false;
      }
    }
  }
  return true;
}

bool ProtocolHarness::CheckFullDrain(std::string* message) const {
  if (aligner_.TotalPending() != 0) {
    *message = Sprintf("terminal state still buffers %d gated request(s)",
                       aligner_.TotalPending());
    return false;
  }
  for (int i = 0; i < arrivals_done_; ++i) {
    if (!ledger_[static_cast<std::size_t>(i)].served) {
      *message = Sprintf("transfer %d never served", i + 1);
      return false;
    }
  }
  // Credit conservation: every arrival credited once at delivery, and
  // each served transfer's remaining n-1 requests credited at release.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(arrivals_done_) +
      static_cast<std::uint64_t>(served_count_) *
          static_cast<std::uint64_t>(config_.transfer_requests - 1);
  if (aligner_.slack().arrivals() != expected) {
    *message = Sprintf("slack account saw %llu arrivals, protocol implies "
                       "%llu",
                       static_cast<unsigned long long>(
                           aligner_.slack().arrivals()),
                       static_cast<unsigned long long>(expected));
    return false;
  }
  return true;
}

}  // namespace dmasim::check
