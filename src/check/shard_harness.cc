#include "check/shard_harness.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <set>
#include <sstream>

#include "audit/shard_audit.h"
#include "util/check.h"

namespace dmasim::check {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint32_t kRelayMsg = 1;
constexpr const char* kConvergenceProperty = "shard.fingerprint-convergence";

void FnvMixU64(std::uint64_t* hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    *hash ^= (value >> (8 * byte)) & 0xffu;
    *hash *= kFnvPrime;
  }
}

void ValidateConfig(const ShardCheckConfig& config) {
  DMASIM_EXPECTS(config.shards >= 2 && config.shards <= 3);
  DMASIM_EXPECTS(config.events_per_shard >= 1 &&
                 config.events_per_shard <= 8);
  DMASIM_EXPECTS(config.max_hops >= 1 && config.max_hops <= 4);
  DMASIM_EXPECTS(config.lookahead > 0);
  DMASIM_EXPECTS(config.max_choice_windows >= 0 &&
                 config.max_choice_windows <= 8);
}

// One executed scenario event, the unit of the run fingerprint. Order
// within a shard is the kernel's execution order, so any
// delivery-order-dependent tie-break shows up here.
struct LogEntry {
  Tick time = 0;
  std::uint32_t shard = 0;
  std::uint32_t origin = 0;
  std::uint32_t hop = 0;
  std::uint32_t tag = 0;
};

// The scenario: every shard runs the same timeline — `events_per_shard`
// seed events at one tick — and every event broadcasts to all other
// shards one lookahead ahead, `max_hops` deep. Identical timelines make
// cross-shard messages from different sources collide on
// (deliver_at, dst), so only the barrier sort keeps tie-breaks (and the
// fingerprint) independent of the drain order.
class ShardScenario;

// Drain-order script + audit forwarding, attached as the engine's
// BarrierHooks. All calls are coordinator-side.
class ScriptedHooks : public BarrierHooks {
 public:
  ScriptedHooks(ShardAudit* audit, const ShardTrace* perms, int shards)
      : audit_(audit), perms_(perms), shards_(shards) {}

  void OnWindowStart(std::uint64_t window, Tick horizon) override {
    audit_->OnWindowStart(window, horizon);
  }

  void OnBarrier(std::uint64_t window,
                 std::vector<int>* drain_order) override {
    audit_->OnBarrier(window, drain_order);
    ++barriers_;
    if (window < perms_->size()) {
      const int index = (*perms_)[window];
      DMASIM_EXPECTS(index >= 0 && index < ShardPermutationCount(shards_));
      if (index != 0) {
        NthShardPermutation(shards_, index, &scratch_);
        *drain_order = scratch_;
      }
    }
  }

  void OnDrained(const ShardMessage& message) override {
    audit_->OnDrained(message);
  }

  void OnDeliver(const ShardMessage& message) override {
    audit_->OnDeliver(message);
  }

  std::uint64_t barriers() const { return barriers_; }

 private:
  ShardAudit* audit_;
  const ShardTrace* perms_;
  int shards_;
  std::uint64_t barriers_ = 0;
  std::vector<int> scratch_;
};

class ShardScenario {
 public:
  ShardScenario(const ShardCheckConfig& config, BarrierHooks* hooks)
      : config_(config), engine_(EngineOptionsFor(config, hooks)) {
    for (int s = 0; s < config.shards; ++s) {
      simulators_.emplace_back();
      logs_.emplace_back();
    }
    for (int s = 0; s < config.shards; ++s) {
      ShardScenario* self = this;
      const int dst = s;
      engine_.AddShard(&simulators_[static_cast<std::size_t>(s)],
                       [self, dst](const ShardMessage& message) {
                         self->HandleMessage(dst, message);
                       });
    }
    for (int s = 0; s < config.shards; ++s) {
      for (int e = 0; e < config.events_per_shard; ++e) {
        ScheduleEvent(s, kSeedTime, static_cast<std::uint32_t>(s), 0,
                      static_cast<std::uint32_t>(e));
      }
    }
  }

  void Run() { engine_.Run(kRunUntil, nullptr); }

  std::uint64_t Fingerprint() const {
    std::uint64_t hash = kFnvOffset;
    for (int s = 0; s < config_.shards; ++s) {
      const std::vector<LogEntry>& log = logs_[static_cast<std::size_t>(s)];
      FnvMixU64(&hash, log.size());
      for (const LogEntry& entry : log) {
        FnvMixU64(&hash, static_cast<std::uint64_t>(entry.time));
        FnvMixU64(&hash, (static_cast<std::uint64_t>(entry.shard) << 32) |
                             entry.origin);
        FnvMixU64(&hash,
                  (static_cast<std::uint64_t>(entry.hop) << 32) | entry.tag);
      }
    }
    for (const ShardMessage& message : engine_.deliveries()) {
      FnvMixU64(&hash, static_cast<std::uint64_t>(message.deliver_at));
      FnvMixU64(&hash, message.send_seq);
      FnvMixU64(&hash, message.a);
      FnvMixU64(&hash, message.b);
      FnvMixU64(&hash, message.c);
      FnvMixU64(&hash, (static_cast<std::uint64_t>(message.src) << 32) |
                           message.dst);
    }
    FnvMixU64(&hash, engine_.stats().windows);
    FnvMixU64(&hash, engine_.stats().delivered_messages);
    return hash;
  }

  const ShardedEngine& engine() const { return engine_; }

  std::uint64_t executed_events() const {
    std::uint64_t total = 0;
    for (const Simulator& sim : simulators_) total += sim.ExecutedEvents();
    return total;
  }

 private:
  static constexpr Tick kSeedTime = 10;
  static constexpr Tick kRunUntil = Tick{1} << 40;

  static ShardedEngine::Options EngineOptionsFor(const ShardCheckConfig& config,
                                                 BarrierHooks* hooks) {
    ShardedEngine::Options options;
    options.lookahead = config.lookahead;
    options.record_deliveries = true;
    options.record_window_digests = true;
    options.fault = config.fault;
    options.hooks = hooks;
    return options;
  }

  void ScheduleEvent(int shard, Tick at, std::uint32_t origin,
                     std::uint32_t hop, std::uint32_t tag) {
    ShardScenario* self = this;
    simulators_[static_cast<std::size_t>(shard)].ScheduleAt(
        at, [self, shard, origin, hop, tag]() {
          self->OnEvent(shard, origin, hop, tag);
        });
  }

  void OnEvent(int shard, std::uint32_t origin, std::uint32_t hop,
               std::uint32_t tag) {
    Simulator& sim = simulators_[static_cast<std::size_t>(shard)];
    logs_[static_cast<std::size_t>(shard)].push_back(
        LogEntry{sim.Now(), static_cast<std::uint32_t>(shard), origin, hop,
                 tag});
    if (hop >= static_cast<std::uint32_t>(config_.max_hops)) return;
    for (int dst = 0; dst < config_.shards; ++dst) {
      if (dst == shard) continue;
      engine_.Send(shard, dst, sim.Now() + config_.lookahead, kRelayMsg,
                   origin, hop + 1, tag);
    }
  }

  void HandleMessage(int shard, const ShardMessage& message) {
    DMASIM_CHECK_EQ(message.kind, kRelayMsg);
    Simulator& sim = simulators_[static_cast<std::size_t>(shard)];
    // Under the deliver-early fault the delivery may be addressed into
    // time the destination already executed; clamp so the kernel's
    // `when >= Now()` contract holds and the run completes for the
    // audit to report on.
    const Tick at = std::max(message.deliver_at, sim.Now());
    ScheduleEvent(shard, at, static_cast<std::uint32_t>(message.a),
                  static_cast<std::uint32_t>(message.b),
                  static_cast<std::uint32_t>(message.c));
  }

  ShardCheckConfig config_;
  std::deque<Simulator> simulators_;  // Stable addresses.
  std::vector<std::vector<LogEntry>> logs_;
  ShardedEngine engine_;
};

}  // namespace

int ShardPermutationCount(int shards) {
  int count = 1;
  for (int i = 2; i <= shards; ++i) count *= i;
  return count;
}

void NthShardPermutation(int shards, int index, std::vector<int>* out) {
  DMASIM_EXPECTS(index >= 0 && index < ShardPermutationCount(shards));
  out->clear();
  std::vector<int> pool;
  for (int i = 0; i < shards; ++i) pool.push_back(i);
  int radix = ShardPermutationCount(shards);
  for (int slot = shards; slot >= 1; --slot) {
    radix /= slot;
    const int pick = index / radix;
    index %= radix;
    out->push_back(pool[static_cast<std::size_t>(pick)]);
    pool.erase(pool.begin() + pick);
  }
}

ShardRunOutcome RunShardScenario(const ShardCheckConfig& config,
                                 const ShardTrace& perms) {
  ValidateConfig(config);
  ShardAudit audit(InvariantAuditor::Mode::kCollect);
  ScriptedHooks hooks(&audit, &perms, config.shards);
  ShardScenario scenario(config, &hooks);
  scenario.Run();

  ShardRunOutcome outcome;
  outcome.fingerprint = scenario.Fingerprint();
  outcome.window_digests = scenario.engine().window_digests();
  outcome.barriers = hooks.barriers();
  outcome.delivered_messages = scenario.engine().stats().delivered_messages;
  outcome.executed_events = scenario.executed_events();
  if (!audit.auditor().failures().empty()) {
    outcome.violation = true;
    outcome.property = audit.auditor().failures().front().invariant;
    outcome.message = audit.auditor().failures().front().message;
  }
  return outcome;
}

namespace {

// First window whose digest differs (or the shorter length).
std::size_t FirstDivergentWindow(const std::vector<std::uint64_t>& a,
                                 const std::vector<std::uint64_t>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

std::string DivergenceMessage(const ShardRunOutcome& canonical,
                              const ShardRunOutcome& run) {
  std::ostringstream text;
  text << "fingerprint " << std::hex << run.fingerprint
       << " != canonical " << canonical.fingerprint << std::dec
       << "; first divergent window "
       << FirstDivergentWindow(canonical.window_digests, run.window_digests);
  return text.str();
}

}  // namespace

ShardExploreResult ExploreShardInterleavings(const ShardCheckConfig& config) {
  ValidateConfig(config);
  ShardExploreResult result;

  const ShardRunOutcome canonical = RunShardScenario(config, {});
  result.stats.runs = 1;
  result.stats.barriers = canonical.barriers;
  result.canonical_fingerprint = canonical.fingerprint;
  std::set<std::uint64_t> fingerprints;
  fingerprints.insert(canonical.fingerprint);
  if (canonical.violation) {
    result.violation_found = true;
    result.violation.property = canonical.property;
    result.violation.message = canonical.message;
    result.stats.distinct_fingerprints = fingerprints.size();
    return result;
  }

  const std::uint64_t choice_windows =
      std::min<std::uint64_t>(canonical.barriers,
                              static_cast<std::uint64_t>(
                                  config.max_choice_windows));
  result.stats.choice_windows = choice_windows;
  const int perm_count = ShardPermutationCount(config.shards);

  // Odometer over all drain-order sequences; 0 is the canonical run.
  ShardTrace perms(static_cast<std::size_t>(choice_windows), 0);
  while (true) {
    // Increment (window 0 is the most significant digit).
    std::size_t digit = perms.size();
    while (digit > 0) {
      --digit;
      if (++perms[digit] < perm_count) break;
      perms[digit] = 0;
      if (digit == 0) {
        result.stats.distinct_fingerprints = fingerprints.size();
        return result;  // Wrapped: enumeration complete, no violation.
      }
    }
    if (perms.empty()) {
      result.stats.distinct_fingerprints = fingerprints.size();
      return result;  // No choices to enumerate.
    }

    const ShardRunOutcome run = RunShardScenario(config, perms);
    ++result.stats.runs;
    fingerprints.insert(run.fingerprint);
    if (run.violation) {
      result.violation_found = true;
      result.violation.property = run.property;
      result.violation.message = run.message;
      result.violation.perms = perms;
      result.stats.distinct_fingerprints = fingerprints.size();
      return result;
    }
    if (run.fingerprint != canonical.fingerprint) {
      result.violation_found = true;
      result.violation.property = kConvergenceProperty;
      result.violation.message = DivergenceMessage(canonical, run);
      result.violation.perms = perms;
      result.stats.distinct_fingerprints = fingerprints.size();
      return result;
    }
  }
}

bool ShardTraceReproduces(const ShardCheckConfig& config,
                          const ShardTrace& perms,
                          const std::string& property) {
  const ShardRunOutcome run = RunShardScenario(config, perms);
  if (run.violation) {
    return property.empty() || run.property == property;
  }
  if (property.empty() || property == kConvergenceProperty) {
    const ShardRunOutcome canonical = RunShardScenario(config, {});
    return !canonical.violation &&
           run.fingerprint != canonical.fingerprint;
  }
  return false;
}

namespace {

// Candidate with the choices at `drop_begin..drop_end` (indices into
// `active`) reset to identity.
ShardTrace WithoutActiveRange(const ShardTrace& perms,
                              const std::vector<std::size_t>& active,
                              std::size_t drop_begin, std::size_t drop_end) {
  ShardTrace candidate = perms;
  for (std::size_t i = drop_begin; i < drop_end && i < active.size(); ++i) {
    candidate[active[i]] = 0;
  }
  // Trim trailing identity choices (they are implied).
  while (!candidate.empty() && candidate.back() == 0) candidate.pop_back();
  return candidate;
}

std::vector<std::size_t> ActivePositions(const ShardTrace& perms) {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < perms.size(); ++i) {
    if (perms[i] != 0) active.push_back(i);
  }
  return active;
}

}  // namespace

ShardTrace MinimizeShardTrace(const ShardCheckConfig& config,
                              const ShardTrace& perms,
                              const std::string& property) {
  DMASIM_EXPECTS(ShardTraceReproduces(config, perms, property));
  ShardTrace current = perms;
  while (!current.empty() && current.back() == 0) current.pop_back();

  // ddmin over the non-identity choices: drop whole chunks while the
  // violation reproduces, refining granularity when nothing drops.
  std::size_t chunks = 2;
  while (true) {
    const std::vector<std::size_t> active = ActivePositions(current);
    if (active.size() < 2 || chunks > active.size()) break;
    const std::size_t chunk_size = (active.size() + chunks - 1) / chunks;
    bool removed = false;
    for (std::size_t begin = 0; begin < active.size(); begin += chunk_size) {
      const std::size_t end = std::min(begin + chunk_size, active.size());
      ShardTrace candidate = WithoutActiveRange(current, active, begin, end);
      if (ShardTraceReproduces(config, candidate, property)) {
        current = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        removed = true;
        break;
      }
    }
    if (!removed) chunks *= 2;
  }

  // One-at-a-time sweep to a 1-minimal fixpoint.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    const std::vector<std::size_t> active = ActivePositions(current);
    if (active.size() <= 1) break;
    for (std::size_t i = 0; i < active.size(); ++i) {
      ShardTrace candidate = WithoutActiveRange(current, active, i, i + 1);
      if (ShardTraceReproduces(config, candidate, property)) {
        current = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

namespace {

std::string SingleLine(const std::string& text) {
  std::string out = text;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

}  // namespace

std::string FormatShardCounterexample(const ShardCounterexample& ce) {
  std::ostringstream out;
  out << "dmasim-shard-counterexample v1\n";
  out << "shards " << ce.config.shards << "\n";
  out << "events-per-shard " << ce.config.events_per_shard << "\n";
  out << "max-hops " << ce.config.max_hops << "\n";
  out << "lookahead " << ce.config.lookahead << "\n";
  out << "max-choice-windows " << ce.config.max_choice_windows << "\n";
  out << "fault " << EngineFaultName(ce.config.fault) << "\n";
  out << "property " << ce.property << "\n";
  out << "message " << SingleLine(ce.message) << "\n";
  out << "perms " << ce.perms.size() << "\n";
  for (int perm : ce.perms) out << perm << "\n";
  out << "end\n";
  return out.str();
}

namespace {

bool Fail(std::string* error, int line, const std::string& what) {
  std::ostringstream out;
  out << "line " << line << ": " << what;
  *error = out.str();
  return false;
}

bool ParseInt(const std::string& text, long long* out) {
  if (text.empty()) return false;
  std::size_t pos = 0;
  try {
    *out = std::stoll(text, &pos);
  } catch (...) {
    return false;
  }
  return pos == text.size();
}

}  // namespace

bool ParseShardCounterexampleText(const std::string& text,
                                  ShardCounterexample* out,
                                  std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  auto next_line = [&](std::string* target) {
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      *target = line;
      return true;
    }
    return false;
  };

  std::string header;
  if (!next_line(&header) || header != "dmasim-shard-counterexample v1") {
    return Fail(error, line_number,
                "expected header 'dmasim-shard-counterexample v1'");
  }

  ShardCounterexample ce;
  long long perm_total = -1;
  while (true) {
    std::string entry;
    if (!next_line(&entry)) {
      return Fail(error, line_number, "unexpected end of file (no 'perms')");
    }
    const std::size_t space = entry.find(' ');
    const std::string key = entry.substr(0, space);
    const std::string value =
        space == std::string::npos ? std::string() : entry.substr(space + 1);
    long long number = 0;
    if (key == "shards" || key == "events-per-shard" || key == "max-hops" ||
        key == "lookahead" || key == "max-choice-windows" || key == "perms") {
      if (!ParseInt(value, &number)) {
        return Fail(error, line_number, "expected an integer after '" + key +
                                            "'");
      }
    }
    if (key == "shards") {
      ce.config.shards = static_cast<int>(number);
    } else if (key == "events-per-shard") {
      ce.config.events_per_shard = static_cast<int>(number);
    } else if (key == "max-hops") {
      ce.config.max_hops = static_cast<int>(number);
    } else if (key == "lookahead") {
      ce.config.lookahead = static_cast<Tick>(number);
    } else if (key == "max-choice-windows") {
      ce.config.max_choice_windows = static_cast<int>(number);
    } else if (key == "fault") {
      if (!ParseEngineFault(value, &ce.config.fault)) {
        return Fail(error, line_number, "unknown fault '" + value + "'");
      }
    } else if (key == "property") {
      ce.property = value;
    } else if (key == "message") {
      ce.message = value;
    } else if (key == "perms") {
      perm_total = number;
      break;
    } else {
      return Fail(error, line_number, "unknown key '" + key + "'");
    }
  }

  if (perm_total < 0 || perm_total > 64) {
    return Fail(error, line_number, "perm count out of range");
  }
  for (long long i = 0; i < perm_total; ++i) {
    std::string entry;
    if (!next_line(&entry)) {
      return Fail(error, line_number, "unexpected end of file inside perms");
    }
    long long perm = 0;
    if (!ParseInt(entry, &perm) || perm < 0) {
      return Fail(error, line_number, "expected a permutation index");
    }
    ce.perms.push_back(static_cast<int>(perm));
  }
  std::string footer;
  if (!next_line(&footer) || footer != "end") {
    return Fail(error, line_number, "expected 'end'");
  }
  if (next_line(&footer)) {
    return Fail(error, line_number, "trailing content after 'end'");
  }
  *out = ce;
  return true;
}

bool WriteShardCounterexampleFile(const ShardCounterexample& ce,
                                  const std::string& path,
                                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << FormatShardCounterexample(ce);
  out.flush();
  if (!out) {
    *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

bool ReadShardCounterexampleFile(const std::string& path,
                                 ShardCounterexample* out,
                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseShardCounterexampleText(text.str(), out, error);
}

bool ReplayShardCounterexample(const ShardCounterexample& ce,
                               std::string* observed) {
  const ShardRunOutcome run = RunShardScenario(ce.config, ce.perms);
  if (run.violation) {
    if (observed != nullptr) {
      *observed = run.property + ": " + run.message;
    }
    return ce.property.empty() || run.property == ce.property;
  }
  const ShardRunOutcome canonical = RunShardScenario(ce.config, {});
  if (!canonical.violation && run.fingerprint != canonical.fingerprint) {
    if (observed != nullptr) {
      *observed = std::string(kConvergenceProperty) + ": " +
                  DivergenceMessage(canonical, run);
    }
    return ce.property.empty() || ce.property == kConvergenceProperty;
  }
  if (observed != nullptr) *observed = "no violation reproduced";
  return false;
}

}  // namespace dmasim::check
