// Visited-set hashing for the explorer: FNV-1a 64 over the canonical
// u64-vector state encoding produced by ProtocolHarness::EncodeState.
//
// The visited set stores only the 64-bit digest, not the encoded vector
// (full paths are kept on the frontier instead, and states are recreated
// by replay). A hash collision would silently merge two distinct states
// and prune one; with ~10^5 reachable states the birthday bound puts the
// odds of any collision around 3 * 10^-10, far below the noise floor of
// a bounded exploration that already truncates at max_depth.
#ifndef DMASIM_CHECK_STATE_HASH_H_
#define DMASIM_CHECK_STATE_HASH_H_

#include <cstdint>
#include <vector>

namespace dmasim::check {

inline std::uint64_t HashState(const std::vector<std::uint64_t>& words) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis.
  for (const std::uint64_t word : words) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ull;  // FNV prime.
    }
  }
  return hash;
}

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_STATE_HASH_H_
