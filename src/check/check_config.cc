#include "check/check_config.h"

namespace dmasim::check {

const char* CheckFaultName(CheckFault fault) {
  switch (fault) {
    case CheckFault::kNone:
      return "none";
    case CheckFault::kResyncSkip:
      return "resync-skip";
    case CheckFault::kLostRelease:
      return "lost-release";
    case CheckFault::kStuckDeadline:
      return "stuck-deadline";
  }
  return "?";
}

const char* CheckPolicyName(CheckPolicy policy) {
  switch (policy) {
    case CheckPolicy::kDynamicThreshold:
      return "dynamic-threshold";
    case CheckPolicy::kStaticNap:
      return "static-nap";
    case CheckPolicy::kStaticPowerdown:
      return "static-powerdown";
  }
  return "?";
}

bool ParseCheckFault(const std::string& name, CheckFault* out) {
  for (const CheckFault fault :
       {CheckFault::kNone, CheckFault::kResyncSkip, CheckFault::kLostRelease,
        CheckFault::kStuckDeadline}) {
    if (name == CheckFaultName(fault)) {
      *out = fault;
      return true;
    }
  }
  return false;
}

bool ParseCheckPolicy(const std::string& name, CheckPolicy* out) {
  for (const CheckPolicy policy :
       {CheckPolicy::kDynamicThreshold, CheckPolicy::kStaticNap,
        CheckPolicy::kStaticPowerdown}) {
    if (name == CheckPolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

}  // namespace dmasim::check
