// Replayable counterexample files.
//
// A counterexample records everything needed to re-execute a violating
// run with zero ambiguity: the full checker configuration, the violated
// property, the diagnostic message, and the (minimized) action sequence.
// The format is line-oriented text so a counterexample can be committed
// as a test fixture, read in a code review, and parsed without any
// dependencies:
//
//   dmasim-counterexample v1
//   chips 2
//   ...               (one "key value" line per CheckerConfig field)
//   policy static-nap
//   fault resync-skip
//   property check.power-state-legality
//   message chip 0: nap -> active over [0, 0]: resync took 0 ticks, ...
//   actions 1
//   cpu 0
//   end
#ifndef DMASIM_CHECK_COUNTEREXAMPLE_H_
#define DMASIM_CHECK_COUNTEREXAMPLE_H_

#include <string>
#include <vector>

#include "check/action.h"
#include "check/check_config.h"

namespace dmasim::check {

struct Counterexample {
  CheckerConfig config;
  std::string property;
  std::string message;  // Single line (newlines are replaced on write).
  std::vector<Action> actions;
};

// Serializes to the line format above.
std::string FormatCounterexample(const Counterexample& ce);

// Parses FormatCounterexample output. On failure returns false and fills
// `error` with a line-numbered diagnostic. Unknown keys are rejected
// (a typo in a hand-edited fixture must not silently fall back to a
// default bound).
bool ParseCounterexampleText(const std::string& text, Counterexample* out,
                             std::string* error);

// File variants of the above.
bool WriteCounterexampleFile(const Counterexample& ce, const std::string& path,
                             std::string* error);
bool ReadCounterexampleFile(const std::string& path, Counterexample* out,
                            std::string* error);

// Parses a bare "key value" configuration file (the counterexample
// header without the envelope) -- the CLI's --seed-config input. Lines
// that are empty or start with '#' are skipped.
bool ReadConfigFile(const std::string& path, CheckerConfig* out,
                    std::string* error);

// Replays the counterexample through a fresh harness. Returns true when
// a violation of the recorded property reproduces; `observed` (may be
// null) receives the property/message actually observed, or a note that
// nothing fired.
bool ReplayCounterexample(const Counterexample& ce, std::string* observed);

}  // namespace dmasim::check

#endif  // DMASIM_CHECK_COUNTEREXAMPLE_H_
