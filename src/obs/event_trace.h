// Structured event tracer for the observability layer.
//
// Components record fixed-size, trivially-copyable `ObsEvent`s into a
// chunked, bounded in-memory buffer: the hot-path cost of `Record` is a
// bump-pointer store (one block allocation per kBlockEvents events,
// amortized to noise; past the configured capacity events are dropped and
// counted, never reallocated). The schema is deliberately tiny — every
// event is (ts, dur, id, kind, a, b, c) with per-kind field meanings
// documented below — so a multi-second simulation traces in tens of MB.
//
// Time fields are simulator ticks (picoseconds). The Chrome/Perfetto
// exporter (obs/trace_export.h) converts to microseconds on the way out.
#ifndef DMASIM_OBS_EVENT_TRACE_H_
#define DMASIM_OBS_EVENT_TRACE_H_

#include <bit>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/check.h"
#include "util/time.h"

namespace dmasim {

enum class ObsEventKind : std::uint8_t {
  // Complete power-state residency interval [ts, ts+dur) of chip `b` in
  // state `a` (PowerState). Emitted when the chip leaves the state.
  kPowerResidency = 0,
  // Power-state transition interval [ts, ts+dur) of chip `b`;
  // a = (up << 4) | (from << 2) | to (PowerState values fit 2 bits).
  kPowerTransition,
  // DMA-TA gated the first request of transfer `id` (bus `a`) headed to
  // chip `b` at ts.
  kGate,
  // DMA-TA released chip `b`'s gated requests at ts; a = ReleaseCause,
  // c = number of requests released.
  kRelease,
  // Transfer lifecycle: transfer `id` to chip `b` over interval
  // [ts, ts+dur); a = (bus << 2) | (kind << 1) | gated; c = total bytes.
  kTransfer,
  // Transfer `id` entered bus `b` at ts; c = bytes.
  kBusTransferStart,
  // Slack-balance sample at ts: id = bit_cast<u64>(slack in ticks,
  // double), c = total gated requests pending.
  kSlackSample,
  // Client request interval [ts, ts+dur); a = 1 for writes, c = bytes.
  kClientRequest,
};

struct ObsEvent {
  Tick ts = 0;
  Tick dur = 0;
  std::uint64_t id = 0;
  ObsEventKind kind = ObsEventKind::kPowerResidency;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
};
static_assert(std::is_trivially_copyable_v<ObsEvent>);
static_assert(sizeof(ObsEvent) == 32);

class EventTracer {
 public:
  static constexpr std::size_t kBlockEvents = std::size_t{1} << 15;

  // `capacity_events` bounds the buffer; once reached, further events are
  // dropped (and counted in `dropped()`).
  explicit EventTracer(std::size_t capacity_events);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void Record(const ObsEvent& event) {
    if (remaining_ == 0 && !AddBlock()) {
      ++dropped_;
      return;
    }
    *next_++ = event;
    --remaining_;
    ++size_;
  }

  // --- Typed helpers (the only recording API components use) -------------

  void PowerResidency(int chip, int state, Tick start, Tick end) {
    Record(ObsEvent{start, end - start, 0, ObsEventKind::kPowerResidency,
                    static_cast<std::uint8_t>(state),
                    static_cast<std::uint16_t>(chip), 0});
  }

  void PowerTransition(int chip, int from, int to, bool up, Tick start,
                       Tick end) {
    const auto packed = static_cast<std::uint8_t>(
        ((up ? 1 : 0) << 4) | (from << 2) | to);
    Record(ObsEvent{start, end - start, 0, ObsEventKind::kPowerTransition,
                    packed, static_cast<std::uint16_t>(chip), 0});
  }

  void Gate(Tick now, int chip, int bus, std::uint64_t transfer_id) {
    Record(ObsEvent{now, 0, transfer_id, ObsEventKind::kGate,
                    static_cast<std::uint8_t>(bus),
                    static_cast<std::uint16_t>(chip), 0});
  }

  void Release(Tick now, int chip, int cause, int count) {
    Record(ObsEvent{now, 0, 0, ObsEventKind::kRelease,
                    static_cast<std::uint8_t>(cause),
                    static_cast<std::uint16_t>(chip),
                    static_cast<std::uint32_t>(count)});
  }

  void Transfer(Tick start, Tick end, std::uint64_t transfer_id, int chip,
                int bus, int kind, bool gated, std::int64_t bytes) {
    const auto packed = static_cast<std::uint8_t>(
        (bus << 2) | (kind << 1) | (gated ? 1 : 0));
    Record(ObsEvent{start, end - start, transfer_id, ObsEventKind::kTransfer,
                    packed, static_cast<std::uint16_t>(chip),
                    ClampBytes(bytes)});
  }

  void BusTransferStart(Tick now, int bus, std::uint64_t transfer_id,
                        std::int64_t bytes) {
    Record(ObsEvent{now, 0, transfer_id, ObsEventKind::kBusTransferStart, 0,
                    static_cast<std::uint16_t>(bus), ClampBytes(bytes)});
  }

  void SlackSample(Tick now, double slack_ticks, int pending) {
    Record(ObsEvent{now, 0, std::bit_cast<std::uint64_t>(slack_ticks),
                    ObsEventKind::kSlackSample, 0, 0,
                    static_cast<std::uint32_t>(pending)});
  }

  void ClientRequest(Tick start, Tick end, bool is_write,
                     std::int64_t bytes) {
    Record(ObsEvent{start, end - start, 0, ObsEventKind::kClientRequest,
                    static_cast<std::uint8_t>(is_write ? 1 : 0), 0,
                    ClampBytes(bytes)});
  }

  // --- Read side ---------------------------------------------------------

  std::size_t size() const { return size_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  const ObsEvent& At(std::size_t index) const {
    DMASIM_EXPECTS(index < size_);
    return blocks_[index / kBlockEvents][index % kBlockEvents];
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t index = 0; index < size_; ++index) fn(At(index));
  }

 private:
  static std::uint32_t ClampBytes(std::int64_t bytes) {
    if (bytes < 0) return 0;
    constexpr std::int64_t kMax = 0xffffffff;
    return static_cast<std::uint32_t>(bytes < kMax ? bytes : kMax);
  }

  bool AddBlock();

  std::vector<std::unique_ptr<ObsEvent[]>> blocks_;
  ObsEvent* next_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_;
  std::size_t dropped_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_OBS_EVENT_TRACE_H_
