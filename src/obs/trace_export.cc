#include "obs/trace_export.h"

#include <fstream>
#include <ostream>
#include <set>
#include <string>

#include "core/temporal_aligner.h"
#include "mem/power_model.h"

namespace dmasim {
namespace {

constexpr int kChipPid = 1;
constexpr int kBusPid = 2;
constexpr int kAlignerPid = 3;
constexpr int kServerPid = 4;

double TicksToMicros(Tick ticks) {
  return static_cast<double>(ticks) / 1.0e6;  // Tick = 1 ps.
}

// Minimal JSON string escaping; every name we emit is ASCII.
std::string Escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    os_.precision(15);
  }

  void Meta(const char* what, int pid, int tid, const std::string& name) {
    Begin();
    os_ << "{\"ph\":\"M\",\"name\":\"" << what << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << Escaped(name)
        << "\"}}";
  }

  // Complete slice ("X").
  void Slice(int pid, int tid, const std::string& name, const char* cat,
             Tick ts, Tick dur, const std::string& args) {
    Begin();
    os_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << Escaped(name) << "\",\"cat\":\"" << cat
        << "\",\"ts\":" << TicksToMicros(ts)
        << ",\"dur\":" << TicksToMicros(dur) << ",\"args\":{" << args << "}}";
  }

  // Instant event ("i", thread scope).
  void Instant(int pid, int tid, const std::string& name, const char* cat,
               Tick ts, const std::string& args) {
    Begin();
    os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"" << Escaped(name) << "\",\"cat\":\"" << cat
        << "\",\"ts\":" << TicksToMicros(ts) << ",\"args\":{" << args << "}}";
  }

  // Async begin/end pair ("b"/"e") for potentially-overlapping intervals.
  void Async(int pid, std::uint64_t id, const std::string& name,
             const char* cat, Tick ts, Tick dur, const std::string& args) {
    Begin();
    os_ << "{\"ph\":\"b\",\"pid\":" << pid << ",\"tid\":0,\"id\":" << id
        << ",\"name\":\"" << Escaped(name) << "\",\"cat\":\"" << cat
        << "\",\"ts\":" << TicksToMicros(ts) << ",\"args\":{" << args << "}}";
    Begin();
    os_ << "{\"ph\":\"e\",\"pid\":" << pid << ",\"tid\":0,\"id\":" << id
        << ",\"name\":\"" << Escaped(name) << "\",\"cat\":\"" << cat
        << "\",\"ts\":" << TicksToMicros(ts + dur) << ",\"args\":{}}";
  }

  // Counter track ("C").
  void Counter(int pid, const std::string& name, Tick ts,
               const std::string& args) {
    Begin();
    os_ << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"name\":\""
        << Escaped(name) << "\",\"ts\":" << TicksToMicros(ts) << ",\"args\":{"
        << args << "}}";
  }

  void Finish(std::size_t recorded, std::size_t dropped) {
    os_ << "],\"metadata\":{\"recorded_events\":" << recorded
        << ",\"dropped_events\":" << dropped << "}}\n";
  }

 private:
  void Begin() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }

  std::ostream& os_;
  bool first_ = true;
};

std::string Num(double value) {
  std::string text = std::to_string(value);
  return text;
}

const char* DmaKindName(int kind) {
  return kind == static_cast<int>(DmaKind::kDisk) ? "disk" : "network";
}

}  // namespace

void WriteChromeTrace(const EventTracer& tracer, std::ostream& os) {
  EventWriter writer(os);

  // Lane metadata first: collect the chip/bus tids that actually appear.
  std::set<int> chip_tids;
  std::set<int> bus_tids;
  tracer.ForEach([&](const ObsEvent& event) {
    switch (event.kind) {
      case ObsEventKind::kPowerResidency:
      case ObsEventKind::kPowerTransition:
        chip_tids.insert(event.b);
        break;
      case ObsEventKind::kGate:
      case ObsEventKind::kRelease:
        chip_tids.insert(event.b);
        break;
      case ObsEventKind::kBusTransferStart:
        bus_tids.insert(event.b);
        break;
      default:
        break;
    }
  });
  writer.Meta("process_name", kChipPid, 0, "memory chips");
  writer.Meta("process_name", kBusPid, 0, "io buses");
  writer.Meta("process_name", kAlignerPid, 0, "dma-ta");
  writer.Meta("process_name", kServerPid, 0, "data server");
  for (const int chip : chip_tids) {
    writer.Meta("thread_name", kChipPid, chip,
                "chip " + std::to_string(chip));
    writer.Meta("thread_name", kAlignerPid, chip,
                "gate chip " + std::to_string(chip));
  }
  for (const int bus : bus_tids) {
    writer.Meta("thread_name", kBusPid, bus, "bus " + std::to_string(bus));
  }

  std::uint64_t next_async_id = 1;
  tracer.ForEach([&](const ObsEvent& event) {
    switch (event.kind) {
      case ObsEventKind::kPowerResidency: {
        const auto state = static_cast<PowerState>(event.a);
        writer.Slice(kChipPid, event.b, std::string(PowerStateName(state)),
                     "power", event.ts, event.dur, "");
        break;
      }
      case ObsEventKind::kPowerTransition: {
        const bool up = (event.a >> 4) != 0;
        const auto from = static_cast<PowerState>((event.a >> 2) & 3);
        const auto to = static_cast<PowerState>(event.a & 3);
        writer.Slice(kChipPid, event.b, up ? "wake" : "step-down",
                     "transition", event.ts, event.dur,
                     "\"from\":\"" + std::string(PowerStateName(from)) +
                         "\",\"to\":\"" + std::string(PowerStateName(to)) +
                         "\"");
        break;
      }
      case ObsEventKind::kGate:
        writer.Instant(kAlignerPid, event.b, "gate", "dma-ta", event.ts,
                       "\"transfer\":" + std::to_string(event.id) +
                           ",\"bus\":" + std::to_string(event.a));
        break;
      case ObsEventKind::kRelease: {
        const auto cause = static_cast<ReleaseCause>(event.a);
        writer.Instant(kAlignerPid, event.b, "release", "dma-ta", event.ts,
                       std::string("\"cause\":\"") + ReleaseCauseName(cause) +
                           "\",\"requests\":" + std::to_string(event.c));
        break;
      }
      case ObsEventKind::kTransfer: {
        const int bus = event.a >> 2;
        const int kind = (event.a >> 1) & 1;
        const bool gated = (event.a & 1) != 0;
        writer.Async(kBusPid, event.id, "transfer", "dma", event.ts,
                     event.dur,
                     "\"chip\":" + std::to_string(event.b) +
                         ",\"bus\":" + std::to_string(bus) +
                         ",\"bytes\":" + std::to_string(event.c) +
                         ",\"kind\":\"" + DmaKindName(kind) +
                         "\",\"gated\":" + (gated ? "true" : "false"));
        break;
      }
      case ObsEventKind::kBusTransferStart:
        writer.Instant(kBusPid, event.b, "transfer-start", "dma", event.ts,
                       "\"transfer\":" + std::to_string(event.id) +
                           ",\"bytes\":" + std::to_string(event.c));
        break;
      case ObsEventKind::kSlackSample: {
        const double slack_ticks = std::bit_cast<double>(event.id);
        writer.Counter(kAlignerPid, "slack",  event.ts,
                       "\"slack_us\":" + Num(slack_ticks / 1.0e6) +
                           ",\"pending\":" + std::to_string(event.c));
        break;
      }
      case ObsEventKind::kClientRequest:
        writer.Async(kServerPid, next_async_id++,
                     event.a != 0 ? "write" : "read", "client", event.ts,
                     event.dur, "\"bytes\":" + std::to_string(event.c));
        break;
    }
  });

  writer.Finish(tracer.size(), tracer.dropped());
}

bool WriteChromeTraceFile(const EventTracer& tracer, const char* path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  WriteChromeTrace(tracer, out);
  return out.good();
}

}  // namespace dmasim
