// Metrics registry for the observability layer.
//
// Components register named counters, gauges, and fixed-bin histograms
// once (cold path, at wiring time); the returned pointers stay valid for
// the registry's lifetime (deque-backed storage), so a hot-path update is
// a single pointer-indirect increment or a Histogram::Add — no lookup, no
// allocation, no branching beyond the null check on the holder's side.
// `Snapshot()` freezes the registry, in registration order, into plain
// data that SimulationResults can carry and the exp layer can serialize
// (the registry itself never depends on the JSON type).
#ifndef DMASIM_OBS_METRICS_H_
#define DMASIM_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "stats/histogram.h"

namespace dmasim {

// One frozen metric value. `component` + `name` identify it; which of the
// payload fields is meaningful depends on `kind`.
struct MetricSample {
  enum class Kind : int { kCounter = 0, kGauge, kHistogram };

  std::string component;
  std::string name;
  Kind kind = Kind::kCounter;

  std::uint64_t count = 0;  // kCounter.
  double value = 0.0;       // kGauge.

  // kHistogram payload.
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t total = 0;
  std::uint64_t nan_count = 0;
  std::vector<std::uint64_t> bins;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration (cold path). Pointers remain valid and stable until the
  // registry is destroyed.
  std::uint64_t* AddCounter(std::string component, std::string name);
  double* AddGauge(std::string component, std::string name);
  Histogram* AddHistogram(std::string component, std::string name, double lo,
                          double hi, int bins);

  // Frozen view in registration order (deterministic: registration happens
  // at wiring time, never from worker-thread-dependent code).
  std::vector<MetricSample> Snapshot() const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string component;
    std::string name;
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Histogram histogram{0.0, 1.0, 1};  // Placeholder unless kHistogram.
  };

  // deque: stable addresses under growth, no per-entry allocation churn.
  std::deque<Entry> entries_;
};

}  // namespace dmasim

#endif  // DMASIM_OBS_METRICS_H_
