#include "obs/metrics.h"

#include <utility>

namespace dmasim {

std::uint64_t* MetricsRegistry::AddCounter(std::string component,
                                           std::string name) {
  Entry& entry = entries_.emplace_back();
  entry.component = std::move(component);
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kCounter;
  return &entry.counter;
}

double* MetricsRegistry::AddGauge(std::string component, std::string name) {
  Entry& entry = entries_.emplace_back();
  entry.component = std::move(component);
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kGauge;
  return &entry.gauge;
}

Histogram* MetricsRegistry::AddHistogram(std::string component,
                                         std::string name, double lo,
                                         double hi, int bins) {
  Entry& entry = entries_.emplace_back();
  entry.component = std::move(component);
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kHistogram;
  entry.histogram = Histogram(lo, hi, bins);
  return &entry.histogram;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> snapshot;
  snapshot.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.component = entry.component;
    sample.name = entry.name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.count = entry.counter;
        break;
      case MetricSample::Kind::kGauge:
        sample.value = entry.gauge;
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram& histogram = entry.histogram;
        sample.lo = histogram.lo();
        sample.hi = histogram.hi();
        sample.total = histogram.TotalCount();
        sample.nan_count = histogram.NanCount();
        sample.bins.reserve(static_cast<std::size_t>(histogram.BinCount()));
        for (int bin = 0; bin < histogram.BinCount(); ++bin) {
          sample.bins.push_back(histogram.BinValue(bin));
        }
        break;
      }
    }
    snapshot.push_back(std::move(sample));
  }
  return snapshot;
}

}  // namespace dmasim
