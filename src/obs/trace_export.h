// Chrome/Perfetto trace_event JSON export for the event tracer.
//
// The emitted document is the "JSON Array Format" both chrome://tracing
// and ui.perfetto.dev load directly: one object per event, microsecond
// timestamps, with synthetic process/thread lanes:
//   pid 1 "memory chips"  -- per-chip residency and transition slices
//   pid 2 "io buses"      -- transfer lifecycle (async) + issue instants
//   pid 3 "dma-ta"        -- gate/release instants + slack counter track
//   pid 4 "data server"   -- client request (async) slices
// Export is cold-path only (end of run); nothing here touches the
// simulation.
#ifndef DMASIM_OBS_TRACE_EXPORT_H_
#define DMASIM_OBS_TRACE_EXPORT_H_

#include <iosfwd>

#include "obs/event_trace.h"

namespace dmasim {

// Writes the whole trace as one Chrome trace_event JSON document.
void WriteChromeTrace(const EventTracer& tracer, std::ostream& os);

// Convenience wrapper: opens `path` and writes the document. Returns
// false (and leaves no partial file guarantees) if the file cannot be
// opened.
bool WriteChromeTraceFile(const EventTracer& tracer, const char* path);

}  // namespace dmasim

#endif  // DMASIM_OBS_TRACE_EXPORT_H_
