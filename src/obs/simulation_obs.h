// SimulationObserver: wires the observability layer (src/obs) into one
// simulated system — metrics registry at DMASIM_OBS >= 1, event tracing
// at DMASIM_OBS >= 2 — and detaches it again on destruction.
//
// The observer is strictly read-only with respect to the simulation: it
// registers histograms/counters, hands the components their hook
// pointers, and at `Finish()` freezes everything into `MetricSample`s
// (deriving the counter values from the components' own statistics, so a
// mid-run crash never leaves half-updated metrics). The whole class is
// compiled out below DMASIM_OBS >= 1; callers guard usage the same way
// `SimulationAudit` is guarded by DMASIM_AUDIT_LEVEL.
#ifndef DMASIM_OBS_SIMULATION_OBS_H_
#define DMASIM_OBS_SIMULATION_OBS_H_

#include "obs/obs_config.h"

#if DMASIM_OBS >= 1

#include <cstdint>
#include <memory>
#include <vector>

#include "core/memory_controller.h"
#include "mem/power_model.h"
#include "obs/metrics.h"
#include "server/data_server.h"
#include "sim/simulator.h"

namespace dmasim {
class ShardedEngine;  // sim/sharded_engine.h; only the .cc reads stats.
}

#if DMASIM_OBS >= 2
#include "obs/event_trace.h"
#endif

namespace dmasim {

class SimulationObserver {
 public:
  struct Options {
    // Effective level is min(level, DMASIM_OBS): 1 = metrics only,
    // 2 = metrics + event trace.
    int level = 1;
    // Event-trace buffer bound; events past it are dropped and counted.
    std::size_t trace_capacity = std::size_t{1} << 20;
    // When set, the event kernel's calendar-queue internals (bucket
    // occupancy, cascades, overflow refills) are exported as `sim.*`
    // metrics. Must outlive the observer.
    const Simulator* simulator = nullptr;
    // When set, the sharded engine's window/mailbox counters are
    // exported as `sim.*` metrics (`sim.mailbox_spills`,
    // `sim.max_mailbox_occupancy`, ...). The engine refreshes them at
    // every window barrier — not just at Run() exit — so the values are
    // window-accurate whenever Finish() runs. Must outlive the observer.
    const ShardedEngine* engine = nullptr;
  };

  // Attaches to `controller` (and its chips and buses) and `server`
  // (may be null). Both must outlive the observer.
  SimulationObserver(MemoryController* controller, DataServer* server,
                     const Options& options);
  ~SimulationObserver();

  SimulationObserver(const SimulationObserver&) = delete;
  SimulationObserver& operator=(const SimulationObserver&) = delete;

  int level() const { return level_; }

  // Finalizes the run: settles/synchronizes component accounting, closes
  // the chips' open residency intervals (level >= 2), and copies the
  // component statistics into the registered counters and gauges. Call
  // once, after the simulation has run to completion.
  void Finish();

  std::vector<MetricSample> SnapshotMetrics() const {
    return registry_.Snapshot();
  }

#if DMASIM_OBS >= 2
  // Null below effective level 2.
  const EventTracer* tracer() const { return tracer_.get(); }
#endif

 private:
  void RegisterMetrics();

  MemoryController* controller_;
  DataServer* server_;
  const Simulator* simulator_;
  const ShardedEngine* engine_;
  int level_;

  MetricsRegistry registry_;

  // Registered slots filled at Finish() (all owned by `registry_`).
  struct ControllerSlots {
    std::uint64_t* transfers_started = nullptr;
    std::uint64_t* transfers_completed = nullptr;
    std::uint64_t* cpu_accesses = nullptr;
    std::uint64_t* migrations = nullptr;
    std::uint64_t* migration_rounds = nullptr;
    std::uint64_t* deferred_migrations = nullptr;
  } controller_slots_;
  struct DmaTaSlots {
    std::uint64_t* gated_total = nullptr;
    std::uint64_t* released_quorum = nullptr;
    std::uint64_t* released_slack = nullptr;
    double* max_buffered_bytes = nullptr;
    double* slack_final_ticks = nullptr;
  } dma_ta_slots_;
  struct ChipSlots {
    std::uint64_t* wakeups = nullptr;
    std::uint64_t* step_downs = nullptr;
    std::uint64_t* dma_requests = nullptr;
    std::uint64_t* cpu_requests = nullptr;
    std::uint64_t* migration_requests = nullptr;
    std::uint64_t* dma_serving_ticks = nullptr;
    std::uint64_t* cpu_serving_ticks = nullptr;
    std::uint64_t* migration_serving_ticks = nullptr;
    std::uint64_t* active_idle_dma_ticks = nullptr;
    std::uint64_t* active_idle_threshold_ticks = nullptr;
    std::uint64_t* transition_ticks = nullptr;
    std::uint64_t* low_power_ticks[kPowerStateCount] = {};
  } chip_slots_;
  struct BusSlots {
    std::uint64_t* chunks_issued = nullptr;
    std::uint64_t* transfers_started = nullptr;
  } bus_slots_;
  // Registered only when Options::simulator is set.
  struct SimSlots {
    std::uint64_t* executed_events = nullptr;
    std::uint64_t* stepped_events = nullptr;
    std::uint64_t* calendar_bucket_loads = nullptr;
    std::uint64_t* calendar_cascades = nullptr;
    std::uint64_t* calendar_overflow_refills = nullptr;
    std::uint64_t* calendar_max_bucket_events = nullptr;
    std::uint64_t* calendar_max_cascade_events = nullptr;
    std::uint64_t* calendar_max_overflow_events = nullptr;
  } sim_slots_;
  // Registered only when Options::engine is set (sharded runs).
  struct EngineSlots {
    std::uint64_t* windows = nullptr;
    std::uint64_t* delivered_messages = nullptr;
    std::uint64_t* mailbox_spills = nullptr;
    std::uint64_t* max_mailbox_occupancy = nullptr;
  } engine_slots_;
  struct ServerSlots {
    std::uint64_t* reads = nullptr;
    std::uint64_t* writes = nullptr;
    std::uint64_t* hits = nullptr;
    std::uint64_t* misses = nullptr;
    std::uint64_t* cpu_accesses = nullptr;
  } server_slots_;
  // Registered only when the controller runs with the access monitor.
  struct MonitorSlots {
    std::uint64_t* regions = nullptr;
    std::uint64_t* probes = nullptr;
    std::uint64_t* observations = nullptr;
    std::uint64_t* splits = nullptr;
    std::uint64_t* merges = nullptr;
    std::uint64_t* aggregations = nullptr;
    std::uint64_t* scheme_matches = nullptr;
    std::uint64_t* demotions_requested = nullptr;
    std::uint64_t* demotions_applied = nullptr;
    double* overhead_fraction = nullptr;
    double* hotness_error = nullptr;
  } monitor_slots_;

#if DMASIM_OBS >= 2
  std::uint64_t* releases_by_cause_[kReleaseCauseCount] = {};
  std::uint64_t* recorded_events_ = nullptr;
  std::uint64_t* dropped_events_ = nullptr;
  std::unique_ptr<EventTracer> tracer_;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_OBS >= 1

#endif  // DMASIM_OBS_SIMULATION_OBS_H_
