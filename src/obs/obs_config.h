// Compile-time switch for the observability layer (see DESIGN.md,
// "Observability layer").
//
// DMASIM_OBS is injected by CMake (cache variable of the same name) and
// selects how much instrumentation is compiled into the library:
//   0  -- off. No obs code, no obs data members; the hot paths are
//         byte-identical to a build without the subsystem.
//   1  -- metrics. Components carry registry pointers (counters, gauges,
//         fixed-bin histograms) that the SimulationObserver wires up; the
//         per-run metrics snapshot lands in SimulationResults and in the
//         JSON artifact's "metrics" section.
//   2  -- metrics + event tracing. Additionally records structured events
//         (power-state residency and transitions, DMA-TA gate/release
//         decisions with cause, transfer lifecycle, slack samples, client
//         requests) into a bounded in-memory buffer, exportable as
//         Chrome/Perfetto trace_event JSON.
//
// The compile-time level is a ceiling: a library built at level 2 still
// runs uninstrumented unless SimulationOptions::obs_level asks for it,
// which is what keeps default-option artifacts byte-identical across
// build levels (the pinned-checksum determinism tests hold this).
#ifndef DMASIM_OBS_OBS_CONFIG_H_
#define DMASIM_OBS_OBS_CONFIG_H_

#ifndef DMASIM_OBS
#define DMASIM_OBS 0
#endif

namespace dmasim {

// The level this library was compiled with, for runtime interrogation
// (e.g. dmasim_sweep warns when --trace-out is used on a level-0 build).
inline constexpr int kCompiledObsLevel = DMASIM_OBS;

}  // namespace dmasim

#endif  // DMASIM_OBS_OBS_CONFIG_H_
