#include "obs/event_trace.h"

namespace dmasim {

EventTracer::EventTracer(std::size_t capacity_events)
    : capacity_(capacity_events) {}

bool EventTracer::AddBlock() {
  if (blocks_.size() * kBlockEvents >= capacity_) return false;
  // dmasim-lint: allow(heap-alloc) -- amortized one allocation per 32K
  // events; bounded by the configured capacity.
  blocks_.push_back(std::make_unique<ObsEvent[]>(kBlockEvents));
  next_ = blocks_.back().get();
  remaining_ = kBlockEvents;
  return true;
}

}  // namespace dmasim
