#include "obs/simulation_obs.h"

#if DMASIM_OBS >= 1

#include <algorithm>
#include <string>

#include "core/temporal_aligner.h"
#include "sim/sharded_engine.h"

namespace dmasim {

namespace {

// Histogram ranges in ticks (picoseconds). Out-of-range samples clamp
// into the edge bins, so these only set the resolution window.
constexpr double kGateDelayHi = 2.0e7;         // 20 us.
constexpr double kTransferLatencyHi = 2.0e10;  // 20 ms.
constexpr double kResponseTimeHi = 5.0e10;     // 50 ms.

}  // namespace

SimulationObserver::SimulationObserver(MemoryController* controller,
                                       DataServer* server,
                                       const Options& options)
    : controller_(controller),
      server_(server),
      simulator_(options.simulator),
      engine_(options.engine),
      level_(std::clamp(options.level, 0, kCompiledObsLevel)) {
  DMASIM_EXPECTS(controller_ != nullptr);
  if (level_ < 1) return;

  RegisterMetrics();

  MemoryController::ObsHooks controller_hooks;
  controller_hooks.gate_delay = registry_.AddHistogram(
      "controller", "gate_delay_ticks", 0.0, kGateDelayHi, 40);
  controller_hooks.transfer_latency = registry_.AddHistogram(
      "controller", "transfer_latency_ticks", 0.0, kTransferLatencyHi, 40);

  DataServer::ObsHooks server_hooks;
  if (server_ != nullptr) {
    server_hooks.response_time = registry_.AddHistogram(
        "server", "response_time_ticks", 0.0, kResponseTimeHi, 50);
  }

#if DMASIM_OBS >= 2
  if (level_ >= 2) {
    for (int cause = 0; cause < kReleaseCauseCount; ++cause) {
      releases_by_cause_[cause] = registry_.AddCounter(
          "dma_ta", std::string("release_cause_") +
                        ReleaseCauseName(static_cast<ReleaseCause>(cause)));
    }
    recorded_events_ = registry_.AddCounter("tracer", "recorded_events");
    dropped_events_ = registry_.AddCounter("tracer", "dropped_events");

    // dmasim-lint: allow(heap-alloc) -- one-time construction.
    tracer_ = std::make_unique<EventTracer>(options.trace_capacity);
    for (int i = 0; i < controller_->chip_count(); ++i) {
      controller_->chip(i).SetObsTracer(tracer_.get());
    }
    for (int i = 0; i < controller_->bus_count(); ++i) {
      controller_->bus(i).SetObsTracer(tracer_.get());
    }
    controller_hooks.tracer = tracer_.get();
    server_hooks.tracer = tracer_.get();
  }
#endif

  controller_->SetObsHooks(controller_hooks);
  if (server_ != nullptr) server_->SetObsHooks(server_hooks);
}

SimulationObserver::~SimulationObserver() {
  if (level_ < 1) return;
  controller_->SetObsHooks(MemoryController::ObsHooks{});
  if (server_ != nullptr) server_->SetObsHooks(DataServer::ObsHooks{});
#if DMASIM_OBS >= 2
  if (tracer_ != nullptr) {
    for (int i = 0; i < controller_->chip_count(); ++i) {
      controller_->chip(i).SetObsTracer(nullptr);
    }
    for (int i = 0; i < controller_->bus_count(); ++i) {
      controller_->bus(i).SetObsTracer(nullptr);
    }
  }
#endif
}

void SimulationObserver::RegisterMetrics() {
  controller_slots_.transfers_started =
      registry_.AddCounter("controller", "transfers_started");
  controller_slots_.transfers_completed =
      registry_.AddCounter("controller", "transfers_completed");
  controller_slots_.cpu_accesses =
      registry_.AddCounter("controller", "cpu_accesses");
  controller_slots_.migrations = registry_.AddCounter("controller",
                                                      "migrations");
  controller_slots_.migration_rounds =
      registry_.AddCounter("controller", "migration_rounds");
  controller_slots_.deferred_migrations =
      registry_.AddCounter("controller", "deferred_migrations");

  dma_ta_slots_.gated_total = registry_.AddCounter("dma_ta", "gated_total");
  dma_ta_slots_.released_quorum =
      registry_.AddCounter("dma_ta", "released_quorum");
  dma_ta_slots_.released_slack =
      registry_.AddCounter("dma_ta", "released_slack");
  dma_ta_slots_.max_buffered_bytes =
      registry_.AddGauge("dma_ta", "max_buffered_bytes");
  dma_ta_slots_.slack_final_ticks =
      registry_.AddGauge("dma_ta", "slack_final_ticks");

  chip_slots_.wakeups = registry_.AddCounter("chips", "wakeups");
  chip_slots_.step_downs = registry_.AddCounter("chips", "step_downs");
  chip_slots_.dma_requests = registry_.AddCounter("chips", "dma_requests");
  chip_slots_.cpu_requests = registry_.AddCounter("chips", "cpu_requests");
  chip_slots_.migration_requests =
      registry_.AddCounter("chips", "migration_requests");
  chip_slots_.dma_serving_ticks =
      registry_.AddCounter("chips", "dma_serving_ticks");
  chip_slots_.cpu_serving_ticks =
      registry_.AddCounter("chips", "cpu_serving_ticks");
  chip_slots_.migration_serving_ticks =
      registry_.AddCounter("chips", "migration_serving_ticks");
  chip_slots_.active_idle_dma_ticks =
      registry_.AddCounter("chips", "active_idle_dma_ticks");
  chip_slots_.active_idle_threshold_ticks =
      registry_.AddCounter("chips", "active_idle_threshold_ticks");
  chip_slots_.transition_ticks =
      registry_.AddCounter("chips", "transition_ticks");
  for (int state = 0; state < kPowerStateCount; ++state) {
    chip_slots_.low_power_ticks[state] = registry_.AddCounter(
        "chips",
        std::string(PowerStateName(static_cast<PowerState>(state))) +
            "_residency_ticks");
  }

  bus_slots_.chunks_issued = registry_.AddCounter("buses", "chunks_issued");
  bus_slots_.transfers_started =
      registry_.AddCounter("buses", "transfers_started");

  if (simulator_ != nullptr) {
    sim_slots_.executed_events =
        registry_.AddCounter("sim", "executed_events");
    sim_slots_.stepped_events = registry_.AddCounter("sim", "stepped_events");
    sim_slots_.calendar_bucket_loads =
        registry_.AddCounter("sim", "calendar_bucket_loads");
    sim_slots_.calendar_cascades =
        registry_.AddCounter("sim", "calendar_cascades");
    sim_slots_.calendar_overflow_refills =
        registry_.AddCounter("sim", "calendar_overflow_refills");
    sim_slots_.calendar_max_bucket_events =
        registry_.AddCounter("sim", "calendar_max_bucket_events");
    sim_slots_.calendar_max_cascade_events =
        registry_.AddCounter("sim", "calendar_max_cascade_events");
    sim_slots_.calendar_max_overflow_events =
        registry_.AddCounter("sim", "calendar_max_overflow_events");
  }

  if (engine_ != nullptr) {
    engine_slots_.windows = registry_.AddCounter("sim", "engine_windows");
    engine_slots_.delivered_messages =
        registry_.AddCounter("sim", "engine_delivered_messages");
    engine_slots_.mailbox_spills =
        registry_.AddCounter("sim", "mailbox_spills");
    engine_slots_.max_mailbox_occupancy =
        registry_.AddCounter("sim", "max_mailbox_occupancy");
  }

  if (server_ != nullptr) {
    server_slots_.reads = registry_.AddCounter("server", "reads");
    server_slots_.writes = registry_.AddCounter("server", "writes");
    server_slots_.hits = registry_.AddCounter("server", "hits");
    server_slots_.misses = registry_.AddCounter("server", "misses");
    server_slots_.cpu_accesses = registry_.AddCounter("server",
                                                      "cpu_accesses");
  }

  if (controller_->monitor() != nullptr) {
    monitor_slots_.regions = registry_.AddCounter("monitor", "regions");
    monitor_slots_.probes = registry_.AddCounter("monitor", "probes");
    monitor_slots_.observations =
        registry_.AddCounter("monitor", "observations");
    monitor_slots_.splits = registry_.AddCounter("monitor", "splits");
    monitor_slots_.merges = registry_.AddCounter("monitor", "merges");
    monitor_slots_.aggregations =
        registry_.AddCounter("monitor", "aggregations");
    monitor_slots_.scheme_matches =
        registry_.AddCounter("monitor", "scheme_matches");
    monitor_slots_.demotions_requested =
        registry_.AddCounter("monitor", "demotions_requested");
    monitor_slots_.demotions_applied =
        registry_.AddCounter("monitor", "demotions_applied");
    monitor_slots_.overhead_fraction =
        registry_.AddGauge("monitor", "overhead_fraction");
    monitor_slots_.hotness_error =
        registry_.AddGauge("monitor", "hotness_error");
  }
}

void SimulationObserver::Finish() {
  if (level_ < 1) return;
  // Settles coalesced runs and integrates every chip's accounting up to
  // the current time (idempotent, so an earlier CollectEnergy is fine).
  controller_->CollectEnergy();

#if DMASIM_OBS >= 2
  if (tracer_ != nullptr) {
    for (int i = 0; i < controller_->chip_count(); ++i) {
      controller_->chip(i).FlushObsResidency();
    }
  }
#endif

  const ControllerStats& cs = controller_->stats();
  *controller_slots_.transfers_started = cs.transfers_started;
  *controller_slots_.transfers_completed = cs.transfers_completed;
  *controller_slots_.cpu_accesses = cs.cpu_accesses;
  *controller_slots_.migrations = cs.migrations;
  *controller_slots_.migration_rounds = cs.migration_rounds;
  *controller_slots_.deferred_migrations = cs.deferred_migrations;

  const TemporalAligner& aligner = controller_->aligner();
  *dma_ta_slots_.gated_total = aligner.TotalGated();
  *dma_ta_slots_.released_quorum = aligner.ReleasedByQuorum();
  *dma_ta_slots_.released_slack = aligner.ReleasedBySlack();
  *dma_ta_slots_.max_buffered_bytes =
      static_cast<double>(aligner.MaxBufferedBytes());
  *dma_ta_slots_.slack_final_ticks = aligner.slack().slack();

  for (int i = 0; i < controller_->chip_count(); ++i) {
    const ChipStats& stats = controller_->chip(i).stats();
    *chip_slots_.wakeups += stats.wakeups;
    *chip_slots_.step_downs += stats.step_downs;
    *chip_slots_.dma_requests += stats.dma_requests;
    *chip_slots_.cpu_requests += stats.cpu_requests;
    *chip_slots_.migration_requests += stats.migration_requests;
    *chip_slots_.dma_serving_ticks +=
        static_cast<std::uint64_t>(stats.dma_serving);
    *chip_slots_.cpu_serving_ticks +=
        static_cast<std::uint64_t>(stats.cpu_serving);
    *chip_slots_.migration_serving_ticks +=
        static_cast<std::uint64_t>(stats.migration_serving);
    *chip_slots_.active_idle_dma_ticks +=
        static_cast<std::uint64_t>(stats.active_idle_dma);
    *chip_slots_.active_idle_threshold_ticks +=
        static_cast<std::uint64_t>(stats.active_idle_threshold);
    *chip_slots_.transition_ticks +=
        static_cast<std::uint64_t>(stats.transition);
    for (int state = 0; state < kPowerStateCount; ++state) {
      *chip_slots_.low_power_ticks[state] +=
          static_cast<std::uint64_t>(stats.low_power[state]);
    }
  }

  for (int i = 0; i < controller_->bus_count(); ++i) {
    *bus_slots_.chunks_issued += controller_->bus(i).ChunksIssued();
    *bus_slots_.transfers_started += controller_->bus(i).TransfersStarted();
  }

  if (simulator_ != nullptr) {
    const Simulator::CalendarStats& calendar = simulator_->calendar_stats();
    *sim_slots_.executed_events = simulator_->ExecutedEvents();
    *sim_slots_.stepped_events = simulator_->SteppedEvents();
    *sim_slots_.calendar_bucket_loads = calendar.bucket_loads;
    *sim_slots_.calendar_cascades = calendar.cascades;
    *sim_slots_.calendar_overflow_refills = calendar.overflow_refills;
    *sim_slots_.calendar_max_bucket_events = calendar.max_bucket_events;
    *sim_slots_.calendar_max_cascade_events = calendar.max_cascade_events;
    *sim_slots_.calendar_max_overflow_events = calendar.max_overflow_events;
  }

  if (engine_ != nullptr) {
    // The engine refreshes these at every window barrier, so they are
    // current through the last completed window even if the run stopped
    // short of its bound.
    const ShardedEngine::Stats& engine_stats = engine_->stats();
    *engine_slots_.windows = engine_stats.windows;
    *engine_slots_.delivered_messages = engine_stats.delivered_messages;
    *engine_slots_.mailbox_spills = engine_stats.mailbox_spills;
    *engine_slots_.max_mailbox_occupancy = engine_stats.max_mailbox_occupancy;
  }

  if (server_ != nullptr) {
    const ServerStats& stats = server_->stats();
    *server_slots_.reads = stats.reads;
    *server_slots_.writes = stats.writes;
    *server_slots_.hits = stats.hits;
    *server_slots_.misses = stats.misses;
    *server_slots_.cpu_accesses = stats.cpu_accesses;
  }

  if (controller_->monitor() != nullptr) {
    const RegionMonitor& monitor = *controller_->monitor();
    *monitor_slots_.regions = monitor.regions().size();
    *monitor_slots_.probes = monitor.stats().probes;
    *monitor_slots_.observations = monitor.stats().observations;
    *monitor_slots_.splits = monitor.stats().splits;
    *monitor_slots_.merges = monitor.stats().merges;
    *monitor_slots_.aggregations = monitor.stats().aggregations;
    *monitor_slots_.scheme_matches = monitor.stats().scheme_region_matches;
    *monitor_slots_.demotions_requested = monitor.stats().demotions_requested;
    *monitor_slots_.demotions_applied = monitor.stats().demotions_applied;
    // CollectEnergy (above) synced every chip to the current simulated
    // time, so any chip's accounted_until is "now" for the fraction.
    *monitor_slots_.overhead_fraction =
        monitor.OverheadFraction(controller_->chip(0).accounted_until());
    *monitor_slots_.hotness_error = monitor.latest_hotness_error();
  }

#if DMASIM_OBS >= 2
  if (tracer_ != nullptr) {
    tracer_->ForEach([this](const ObsEvent& event) {
      if (event.kind == ObsEventKind::kRelease &&
          event.a < kReleaseCauseCount) {
        *releases_by_cause_[event.a] += 1;
      }
    });
    *recorded_events_ = tracer_->size();
    *dropped_events_ = tracer_->dropped();
  }
#endif
}

}  // namespace dmasim

#endif  // DMASIM_OBS >= 1
