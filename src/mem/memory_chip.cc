#include "mem/memory_chip.h"

#include <utility>

namespace dmasim {

MemoryChip::MemoryChip(Simulator* simulator, const PowerModel* model,
                       const LowPowerPolicy* policy, int id)
    : simulator_(simulator),
      model_(model),
      policy_(policy),
      id_(id),
      state_(RestingState(*policy)),
      accounted_until_(simulator->Now()),
      power_mw_(model->StatePowerMw(state_)) {
  if (state_ == PowerState::kActive) {
    bucket_ = EnergyBucket::kActiveIdleThreshold;
    time_slot_ = &stats_.active_idle_threshold;
    ArmPolicyTimer();
  } else {
    bucket_ = EnergyBucket::kLowPower;
    time_slot_ = &stats_.low_power[static_cast<int>(state_)];
    ArmPolicyTimer();
  }
}

PowerState MemoryChip::RestingState(const LowPowerPolicy& policy) {
  PowerState state = PowerState::kActive;
  // Follow the policy's step-down chain to its terminal state.
  for (int guard = 0; guard < kPowerStateCount; ++guard) {
    const auto step = policy.NextStep(state);
    if (!step.has_value()) break;
    state = step->target;
  }
  return state;
}

void MemoryChip::SetAccounting(EnergyBucket bucket, double power_mw,
                               Tick* time_slot) {
  const Tick now = simulator_->Now();
  DMASIM_CHECK(now >= accounted_until_);
  const Tick elapsed = now - accounted_until_;
  if (elapsed > 0) {
    energy_.Add(bucket_, PowerModel::EnergyJoules(power_mw_, elapsed));
    *time_slot_ += elapsed;
  }
  accounted_until_ = now;
  bucket_ = bucket;
  power_mw_ = power_mw;
  time_slot_ = time_slot;
}

void MemoryChip::SyncAccounting() {
  SetAccounting(bucket_, power_mw_, time_slot_);
}

void MemoryChip::Enqueue(ChipRequest request) {
  DMASIM_EXPECTS(request.bytes > 0);
  switch (request.kind) {
    case RequestKind::kCpu:
      cpu_queue_.push_back(std::move(request));
      break;
    case RequestKind::kDma:
      dma_queue_.push_back(std::move(request));
      break;
    case RequestKind::kMigration:
      migration_queue_.push_back(std::move(request));
      break;
  }
  // Invalidate any pending idle timer: the chip is no longer idle.
  ++timer_generation_;
  if (serving_ || transitioning_) return;  // Picked up on completion.
  if (state_ == PowerState::kActive) {
    StartNextService();
  } else {
    StartWake();
  }
}

void MemoryChip::BeginTransfer() {
  ++in_flight_transfers_;
  if (!serving_ && !transitioning_ && state_ == PowerState::kActive &&
      in_flight_transfers_ == 1) {
    // Re-attribute idle-active time. The idle-threshold timer is disarmed:
    // in the real 8-byte-request system, gaps within an in-flight transfer
    // (12 memory cycles) are always below the step-down threshold, so the
    // policy never fires mid-transfer. Encoding that invariant directly
    // keeps the model independent of the configured chunk granularity.
    ++timer_generation_;
    SetAccounting(EnergyBucket::kActiveIdleDma, model_->active_mw,
                  &stats_.active_idle_dma);
  }
}

void MemoryChip::EndTransfer() {
  DMASIM_EXPECTS(in_flight_transfers_ > 0);
  --in_flight_transfers_;
  if (!serving_ && !transitioning_ && state_ == PowerState::kActive &&
      in_flight_transfers_ == 0) {
    SetAccounting(EnergyBucket::kActiveIdleThreshold, model_->active_mw,
                  &stats_.active_idle_threshold);
    ArmPolicyTimer();
  }
}

void MemoryChip::StartNextService() {
  DMASIM_CHECK(!serving_ && !transitioning_);
  DMASIM_CHECK(state_ == PowerState::kActive);
  DMASIM_CHECK(HasQueuedRequest());

  std::deque<ChipRequest>* queue = nullptr;
  if (!cpu_queue_.empty()) {
    queue = &cpu_queue_;
  } else if (!dma_queue_.empty()) {
    queue = &dma_queue_;
  } else {
    queue = &migration_queue_;
  }
  ChipRequest request = std::move(queue->front());
  queue->pop_front();

  serving_ = true;
  switch (request.kind) {
    case RequestKind::kDma:
      SetAccounting(EnergyBucket::kActiveServing, model_->active_mw,
                    &stats_.dma_serving);
      break;
    case RequestKind::kCpu:
      SetAccounting(EnergyBucket::kActiveServing, model_->active_mw,
                    &stats_.cpu_serving);
      break;
    case RequestKind::kMigration:
      SetAccounting(EnergyBucket::kMigration, model_->active_mw,
                    &stats_.migration_serving);
      break;
  }

  const Tick service = model_->ServiceTime(request.bytes);
  simulator_->ScheduleAfter(
      service, [this, request = std::move(request)]() mutable {
        ServeDone(std::move(request));
      });
}

void MemoryChip::ServeDone(ChipRequest request) {
  DMASIM_CHECK(serving_);
  serving_ = false;
  switch (request.kind) {
    case RequestKind::kDma:
      ++stats_.dma_requests;
      break;
    case RequestKind::kCpu:
      ++stats_.cpu_requests;
      break;
    case RequestKind::kMigration:
      ++stats_.migration_requests;
      break;
  }

  if (HasQueuedRequest()) {
    StartNextService();
  } else {
    BecomeIdleActive();
  }
  // Run the completion callback last so that anything it enqueues sees a
  // settled chip state.
  if (request.on_complete) request.on_complete(simulator_->Now());
}

void MemoryChip::BecomeIdleActive() {
  DMASIM_CHECK(!serving_ && !transitioning_);
  DMASIM_CHECK(state_ == PowerState::kActive);
  if (in_flight_transfers_ > 0) {
    SetAccounting(EnergyBucket::kActiveIdleDma, model_->active_mw,
                  &stats_.active_idle_dma);
  } else {
    SetAccounting(EnergyBucket::kActiveIdleThreshold, model_->active_mw,
                  &stats_.active_idle_threshold);
  }
  ArmPolicyTimer();
}

void MemoryChip::ArmPolicyTimer() {
  // See BeginTransfer: no step-down while a DMA transfer is in flight.
  if (state_ == PowerState::kActive && in_flight_transfers_ > 0) return;
  const auto step = policy_->NextStep(state_);
  if (!step.has_value()) return;
  const std::uint64_t generation = ++timer_generation_;
  const PowerState expected_state = state_;
  const PowerState target = step->target;
  simulator_->ScheduleAfter(step->after_idle, [this, generation,
                                               expected_state, target]() {
    if (timer_generation_ != generation) return;  // Timer was cancelled.
    if (serving_ || transitioning_ || HasQueuedRequest()) return;
    if (state_ != expected_state) return;
    StartStepDown(target);
  });
}

void MemoryChip::StartWake() {
  DMASIM_CHECK(!serving_ && !transitioning_);
  DMASIM_CHECK(state_ != PowerState::kActive);
  const Transition& transition = model_->UpTransition(state_);
  transitioning_ = true;
  transition_up_ = true;
  transition_target_ = PowerState::kActive;
  SetAccounting(EnergyBucket::kTransition, transition.power_mw,
                &stats_.transition);
  simulator_->ScheduleAfter(transition.duration, [this]() { TransitionDone(); });
}

void MemoryChip::StartStepDown(PowerState target) {
  DMASIM_CHECK(!serving_ && !transitioning_);
  DMASIM_CHECK(target != PowerState::kActive);
  const Transition& transition = model_->DownTransition(target);
  transitioning_ = true;
  transition_up_ = false;
  transition_target_ = target;
  SetAccounting(EnergyBucket::kTransition, transition.power_mw,
                &stats_.transition);
  simulator_->ScheduleAfter(transition.duration, [this]() { TransitionDone(); });
}

void MemoryChip::TransitionDone() {
  DMASIM_CHECK(transitioning_);
  transitioning_ = false;
  state_ = transition_target_;

  if (transition_up_) {
    ++stats_.wakeups;
    DMASIM_CHECK(state_ == PowerState::kActive);
    if (HasQueuedRequest()) {
      StartNextService();
    } else {
      BecomeIdleActive();
    }
    return;
  }

  ++stats_.step_downs;
  if (HasQueuedRequest()) {
    // A request arrived while stepping down: wake immediately.
    StartWake();
    return;
  }
  SetAccounting(EnergyBucket::kLowPower, model_->StatePowerMw(state_),
                &stats_.low_power[static_cast<int>(state_)]);
  ArmPolicyTimer();
}

}  // namespace dmasim
