#include "mem/memory_chip.h"

#include <utility>


namespace dmasim {

MemoryChip::MemoryChip(Simulator* simulator, const ChipPowerModel* model,
                       const LowPowerPolicy* policy, int id)
    : simulator_(simulator),
      model_(model),
      policy_(policy),
      id_(id),
      fsm_(RestingState(*policy)),
      accounted_until_(simulator->Now()),
      power_mw_(model->StatePowerMw(fsm_.state())) {
  if (fsm_.state() == PowerState::kActive) {
    bucket_ = EnergyBucket::kActiveIdleThreshold;
    time_slot_ = &stats_.active_idle_threshold;
    ArmPolicyTimer();
  } else {
    bucket_ = EnergyBucket::kLowPower;
    time_slot_ = &stats_.low_power[static_cast<int>(fsm_.state())];
    ArmPolicyTimer();
  }
}

PowerState MemoryChip::RestingState(const LowPowerPolicy& policy) {
  return PowerFsm::RestingState(policy);
}

void MemoryChip::AccountTo(Tick when) {
  DMASIM_CHECK_GE(when, accounted_until_);
  const Tick elapsed = when - accounted_until_;
  if (elapsed > 0) {
    const JoulesEnergy joules = EnergyOver(power_mw_, Ticks(elapsed));
    energy_.Add(bucket_, joules);
    *time_slot_ += elapsed;
#if DMASIM_AUDIT_LEVEL >= 1
    if (audit_sink_ != nullptr) {
      audit_sink_->OnEnergyAccounted(id_, bucket_, joules, Ticks(elapsed));
    }
#endif
  }
  accounted_until_ = when;
}

void MemoryChip::SetAccounting(EnergyBucket bucket, MilliwattPower power_mw,
                               Tick* time_slot) {
  AccountTo(simulator_->Now());
  bucket_ = bucket;
  power_mw_ = power_mw;
  time_slot_ = time_slot;
}

void MemoryChip::SyncAccounting() {
  SetAccounting(bucket_, power_mw_, time_slot_);
}

void MemoryChip::Enqueue(ChipRequest request) {
  DMASIM_EXPECTS(request.bytes.count() > 0);
  // Invalidate any pending idle timer: the chip is no longer idle.
  ++timer_generation_;
  if (!serving_ && !fsm_.transitioning() &&
      fsm_.state() == PowerState::kActive && !HasQueuedRequest()) {
    // Idle active chip, empty queues: StartNextService would pop back
    // this very request, so serve it directly without the deque
    // round-trip. This is the common case on an uncontended chip.
    ServeRequest(std::move(request));
    return;
  }
  switch (request.kind) {
    case RequestKind::kCpu:
      cpu_queue_.push_back(std::move(request));
      break;
    case RequestKind::kDma:
      dma_queue_.push_back(std::move(request));
      break;
    case RequestKind::kMigration:
      migration_queue_.push_back(std::move(request));
      break;
  }
  if (serving_ || fsm_.transitioning()) return;  // Picked up on completion.
  if (fsm_.state() == PowerState::kActive) {
    StartNextService();
  } else {
    StartWake();
  }
}

void MemoryChip::BeginTransfer() {
  ++in_flight_transfers_;
  if (!serving_ && !fsm_.transitioning() &&
      fsm_.state() == PowerState::kActive && in_flight_transfers_ == 1) {
    // Re-attribute idle-active time. The idle-threshold timer is disarmed:
    // in the real 8-byte-request system, gaps within an in-flight transfer
    // (12 memory cycles) are always below the step-down threshold, so the
    // policy never fires mid-transfer. Encoding that invariant directly
    // keeps the model independent of the configured chunk granularity.
    ++timer_generation_;
    SetAccounting(EnergyBucket::kActiveIdleDma,
                  model_->StatePowerMw(PowerState::kActive),
                  &stats_.active_idle_dma);
  }
}

void MemoryChip::EndTransfer() {
  DMASIM_EXPECTS(in_flight_transfers_ > 0);
  --in_flight_transfers_;
  if (!serving_ && !fsm_.transitioning() &&
      fsm_.state() == PowerState::kActive && in_flight_transfers_ == 0) {
    SetAccounting(EnergyBucket::kActiveIdleThreshold,
                  model_->StatePowerMw(PowerState::kActive),
                  &stats_.active_idle_threshold);
    ArmPolicyTimer();
  }
}

void MemoryChip::StartNextService() {
  DMASIM_CHECK(!serving_ && !fsm_.transitioning());
  DMASIM_CHECK_EQ(fsm_.state(), PowerState::kActive);
  DMASIM_CHECK(HasQueuedRequest());

  ServeRequest(PopNextRequest());
}

ChipRequest MemoryChip::PopNextRequest() {
  std::deque<ChipRequest>* queue = nullptr;
  if (!cpu_queue_.empty()) {
    queue = &cpu_queue_;
  } else if (!dma_queue_.empty()) {
    queue = &dma_queue_;
  } else {
    queue = &migration_queue_;
  }
  ChipRequest request = std::move(queue->front());
  queue->pop_front();
  return request;
}

void MemoryChip::SwitchToServingAccounting(RequestKind kind, ByteCount bytes) {
  switch (kind) {
    case RequestKind::kDma:
      bucket_ = EnergyBucket::kActiveServing;
      power_mw_ = model_->ServingPowerMw(kind, bytes);
      time_slot_ = &stats_.dma_serving;
      break;
    case RequestKind::kCpu:
      bucket_ = EnergyBucket::kActiveServing;
      power_mw_ = model_->ServingPowerMw(kind, bytes);
      time_slot_ = &stats_.cpu_serving;
      break;
    case RequestKind::kMigration:
      bucket_ = EnergyBucket::kMigration;
      power_mw_ = model_->ServingPowerMw(kind, bytes);
      time_slot_ = &stats_.migration_serving;
      break;
  }
}

void MemoryChip::ServeRequest(ChipRequest request) {
  serving_ = true;
  AccountTo(simulator_->Now());
  SwitchToServingAccounting(request.kind, request.bytes);

  // Inline retirement of callback-free requests (migration copies). A
  // request with no completion callback whose service ends strictly
  // before the next pending event has a ServeDone that can only bump
  // stats and start the next queued service at the same tick: nothing
  // else can run, observe, or enqueue in between. Retiring the whole
  // chain here folds N back-to-back queued services into one scheduled
  // event while producing identical energy accounting, stats, and
  // (time, seq) ordering for every surviving event.
  Tick issue = simulator_->Now();
  if (!request.on_complete && HasQueuedRequest()) {
    const Tick horizon = simulator_->NextPendingTick();
    std::uint64_t batched = 0;
    while (!request.on_complete && HasQueuedRequest()) {
      const Tick completion = issue + model_->ServiceTime(request.bytes).value();
      if (completion >= horizon) break;
      AccountTo(completion);
      switch (request.kind) {
        case RequestKind::kDma:
          ++stats_.dma_requests;
          break;
        case RequestKind::kCpu:
          ++stats_.cpu_requests;
          break;
        case RequestKind::kMigration:
          ++stats_.migration_requests;
          break;
      }
      ++batched;
      issue = completion;
      request = PopNextRequest();
      SwitchToServingAccounting(request.kind, request.bytes);
    }
    // Keep the logical event count identical to the unbatched kernel.
    if (batched > 0) simulator_->CreditExecuted(batched);
  }

  const Tick service = model_->ServiceTime(request.bytes).value();
  active_request_ = std::move(request);
  simulator_->ScheduleAt(issue + service, [this]() { ServeDone(); });
}

void MemoryChip::ServeDone() {
  DMASIM_CHECK(serving_);
  serving_ = false;
  // Move the request out first: completing may start the next service,
  // which overwrites the active-request slot.
  ChipRequest request = std::move(active_request_);
  switch (request.kind) {
    case RequestKind::kDma:
      ++stats_.dma_requests;
      break;
    case RequestKind::kCpu:
      ++stats_.cpu_requests;
      break;
    case RequestKind::kMigration:
      ++stats_.migration_requests;
      break;
  }

  if (HasQueuedRequest()) {
    StartNextService();
  } else {
    BecomeIdleActive();
  }
  // Run the completion callback last so that anything it enqueues sees a
  // settled chip state.
  if (request.on_complete) request.on_complete(simulator_->Now());
}

void MemoryChip::AccountCoalescedCycle(Tick issue, Tick completion,
                                       ByteCount bytes) {
  DMASIM_CHECK(!serving_ && !fsm_.transitioning());
  DMASIM_CHECK_EQ(fsm_.state(), PowerState::kActive);
  DMASIM_CHECK_EQ(bucket_, EnergyBucket::kActiveIdleDma);
  DMASIM_CHECK_LE(issue, completion);
  // Idle-DMA gap up to the issue, then the serving interval, then back to
  // idle-DMA — the same three accounting segments, in the same order, as
  // the per-chunk StartNextService / ServeDone / BecomeIdleActive path.
  AccountTo(issue);
  bucket_ = EnergyBucket::kActiveServing;
  power_mw_ = model_->ServingPowerMw(RequestKind::kDma, bytes);
  time_slot_ = &stats_.dma_serving;
  AccountTo(completion);
  bucket_ = EnergyBucket::kActiveIdleDma;
  power_mw_ = model_->StatePowerMw(PowerState::kActive);
  time_slot_ = &stats_.active_idle_dma;
  ++stats_.dma_requests;
}

void MemoryChip::ResumeCoalescedService(Tick issue, ChipRequest request) {
  DMASIM_CHECK(!serving_ && !fsm_.transitioning());
  DMASIM_CHECK_EQ(fsm_.state(), PowerState::kActive);
  DMASIM_CHECK_EQ(bucket_, EnergyBucket::kActiveIdleDma);
  AccountTo(issue);
  bucket_ = EnergyBucket::kActiveServing;
  power_mw_ = model_->ServingPowerMw(RequestKind::kDma, request.bytes);
  time_slot_ = &stats_.dma_serving;
  serving_ = true;
  const Tick service = model_->ServiceTime(request.bytes).value();
  active_request_ = std::move(request);
  simulator_->ScheduleAt(issue + service, [this]() { ServeDone(); });
}

#if DMASIM_OBS >= 2
void MemoryChip::ObsCloseResidency(Tick now) {
  if (obs_tracer_ == nullptr) return;
  if (now > obs_interval_start_) {
    obs_tracer_->PowerResidency(id_, static_cast<int>(fsm_.state()),
                                obs_interval_start_, now);
  }
  obs_interval_start_ = now;
}

void MemoryChip::FlushObsResidency() {
  if (obs_tracer_ == nullptr) return;
  const Tick now = accounted_until_;
  if (now > obs_interval_start_) {
    if (fsm_.transitioning()) {
      // Mid-transition at flush time: emit the partial transition so the
      // trace's interval totals still cover every accounted tick.
      obs_tracer_->PowerTransition(id_, static_cast<int>(fsm_.state()),
                                   static_cast<int>(fsm_.transition_target()),
                                   fsm_.transition_up(), obs_interval_start_,
                                   now);
    } else {
      obs_tracer_->PowerResidency(id_, static_cast<int>(fsm_.state()),
                                  obs_interval_start_, now);
    }
  }
  obs_interval_start_ = now;
}
#endif

void MemoryChip::BecomeIdleActive() {
  DMASIM_CHECK(!serving_ && !fsm_.transitioning());
  DMASIM_CHECK_EQ(fsm_.state(), PowerState::kActive);
  if (in_flight_transfers_ > 0) {
    SetAccounting(EnergyBucket::kActiveIdleDma,
                  model_->StatePowerMw(PowerState::kActive),
                  &stats_.active_idle_dma);
  } else {
    SetAccounting(EnergyBucket::kActiveIdleThreshold,
                  model_->StatePowerMw(PowerState::kActive),
                  &stats_.active_idle_threshold);
  }
  ArmPolicyTimer();
}

void MemoryChip::ArmPolicyTimer() {
  // See BeginTransfer: no step-down while a DMA transfer is in flight.
  if (fsm_.state() == PowerState::kActive && in_flight_transfers_ > 0) return;
  const auto step = policy_->NextStep(fsm_.state());
  if (!step.has_value()) return;
  const std::uint64_t generation = ++timer_generation_;
  const PowerState expected_state = fsm_.state();
  const PowerState target = step->target;
  simulator_->ScheduleAfter(step->after_idle, [this, generation,
                                               expected_state, target]() {
    if (timer_generation_ != generation) return;  // Timer was cancelled.
    if (serving_ || fsm_.transitioning() || HasQueuedRequest()) return;
    if (fsm_.state() != expected_state) return;
    StartStepDown(target);
  });
}

bool MemoryChip::TryStepDown(int depth) {
  DMASIM_EXPECTS(depth >= 1);
  if (serving_ || fsm_.transitioning() || HasQueuedRequest()) return false;
  if (in_flight_transfers_ > 0) return false;
  const auto step = policy_->NextStep(fsm_.state());
  if (!step.has_value()) return false;
  // Follow the policy's step chain `depth` states down (clamped at the
  // chain's end) and make the whole descent one transition. A deeper
  // single transition is legal — the FSM and the power-state auditor
  // only require a strictly lower target with that target's down
  // transition time — and cheaper than stepping through the
  // intermediate states one aggregation interval apart.
  PowerState target = step->target;
  for (int i = 1; i < depth; ++i) {
    const auto deeper = policy_->NextStep(target);
    if (!deeper.has_value()) break;
    target = deeper->target;
  }
  // Invalidate the armed idle timer: its threshold step would otherwise
  // fire mid-transition (harmless — it re-checks state — but the
  // generation bump keeps the cancellation explicit).
  ++timer_generation_;
  StartStepDown(target);
  return true;
}

void MemoryChip::StartWake() {
  DMASIM_CHECK(!serving_);
  const Transition& transition = fsm_.BeginWake(*model_);
#if DMASIM_AUDIT_LEVEL >= 1
  audit_transition_start_ = simulator_->Now();
#endif
#if DMASIM_OBS >= 2
  ObsCloseResidency(simulator_->Now());
#endif
  SetAccounting(EnergyBucket::kTransition, transition.power_mw,
                &stats_.transition);
  simulator_->ScheduleAfter(transition.duration, [this]() { TransitionDone(); });
}

void MemoryChip::StartStepDown(PowerState target) {
  DMASIM_CHECK(!serving_);
  const Transition& transition = fsm_.BeginStepDown(target, *model_);
#if DMASIM_AUDIT_LEVEL >= 1
  audit_transition_start_ = simulator_->Now();
#endif
#if DMASIM_OBS >= 2
  ObsCloseResidency(simulator_->Now());
#endif
  SetAccounting(EnergyBucket::kTransition, transition.power_mw,
                &stats_.transition);
  simulator_->ScheduleAfter(transition.duration, [this]() { TransitionDone(); });
}

void MemoryChip::TransitionDone() {
  DMASIM_CHECK(fsm_.transitioning());
#if DMASIM_AUDIT_LEVEL >= 1
  if (audit_sink_ != nullptr) {
    audit_sink_->OnPowerTransition(id_, fsm_.state(), fsm_.transition_target(),
                                   fsm_.transition_up(),
                                   audit_transition_start_, simulator_->Now());
  }
#endif
#if DMASIM_OBS >= 2
  if (obs_tracer_ != nullptr) {
    obs_tracer_->PowerTransition(id_, static_cast<int>(fsm_.state()),
                                 static_cast<int>(fsm_.transition_target()),
                                 fsm_.transition_up(), obs_interval_start_,
                                 simulator_->Now());
    obs_interval_start_ = simulator_->Now();
  }
#endif
  const bool woke = fsm_.CompleteTransition();

  if (woke) {
    ++stats_.wakeups;
    DMASIM_CHECK_EQ(fsm_.state(), PowerState::kActive);
    if (HasQueuedRequest()) {
      StartNextService();
    } else {
      BecomeIdleActive();
    }
    return;
  }

  ++stats_.step_downs;
  if (HasQueuedRequest()) {
    // A request arrived while stepping down: wake immediately.
    StartWake();
    return;
  }
  SetAccounting(EnergyBucket::kLowPower, model_->StatePowerMw(fsm_.state()),
                &stats_.low_power[static_cast<int>(fsm_.state())]);
  ArmPolicyTimer();
}

}  // namespace dmasim
