#include "mem/chip_power_model.h"

#include <algorithm>
#include <string>

namespace dmasim {
namespace {

// DDR4-2400 x16 calibration (IDD * VDD, VDD = 1.2 V, DRAMPower-style
// datasheet currents). A "cycle" is one 833 ps clock moving 4 bytes on
// a x16 interface (4.8 GB/s peak).
constexpr Tick kDdr4Cycle = 833;
constexpr double kDdr4BytesPerCycle = 4.0;
constexpr double kDdr4ActiveMw = 56.4;              // IDD3N, act standby.
constexpr double kDdr4StandbyMw = 44.4;             // IDD2N, pre standby.
constexpr double kDdr4ActivePowerdownMw = 38.4;     // IDD3P.
constexpr double kDdr4PrechargePowerdownMw = 30.0;  // IDD2P.
constexpr double kDdr4SelfRefreshMw = 24.0;         // IDD6.

// Entry/exit latencies in the gem5 power-down-integration spirit:
// tRP = tRCD = 14 ns, tXP = 6 ns, tXS = 270 ns (DDR4-2400 grade).
constexpr Tick kDdr4Trp = 14 * kNanosecond;
constexpr Tick kDdr4Trcd = 14 * kNanosecond;
constexpr Tick kDdr4Txp = 6 * kNanosecond;
constexpr Tick kDdr4PowerdownEntry = 4 * kNanosecond;  // tCPDED + CKE ramp.
constexpr Tick kDdr4SelfRefreshEntry = 4 * kNanosecond;  // tCKESR.

}  // namespace

std::string_view ChipModelKindName(ChipModelKind kind) {
  switch (kind) {
    case ChipModelKind::kRdram:
      return "rdram";
    case ChipModelKind::kRdramCorrected:
      return "rdram-corrected";
    case ChipModelKind::kDdr4:
      return "ddr4";
    case ChipModelKind::kSectored:
      return "sectored";
  }
  DMASIM_CHECK_MSG(false, "unnamed chip model kind");
}

std::optional<ChipModelKind> ParseChipModelKind(std::string_view text) {
  for (ChipModelKind kind : kAllChipModelKinds) {
    if (text == ChipModelKindName(kind)) return kind;
  }
  return std::nullopt;
}

ChipTiming ChipModelTiming(ChipModelKind kind, const PowerModel& params) {
  if (kind == ChipModelKind::kDdr4) return {kDdr4Cycle, kDdr4BytesPerCycle};
  return {params.cycle, params.bytes_per_cycle};
}

ChipPowerModel::ChipPowerModel(ChipModelKind kind, std::string_view name,
                               Tick cycle, double bytes_per_cycle)
    : kind_(kind), name_(name), cycle_(cycle), bytes_per_cycle_(bytes_per_cycle) {
  DMASIM_EXPECTS(cycle > 0);
  DMASIM_EXPECTS(bytes_per_cycle > 0.0);
  for (int s = 0; s < kPowerStateCount; ++s) chain_index_[s] = -1;
}

void ChipPowerModel::AddState(PowerState state, MilliwattPower power_mw) {
  const int s = static_cast<int>(state);
  DMASIM_EXPECTS(s >= 0 && s < kPowerStateCount);
  DMASIM_CHECK_MSG(!supported_[s], "state added twice");
  DMASIM_CHECK_MSG(state_count_ < kPowerStateCount, "too many states");
  if (state_count_ == 0) {
    DMASIM_CHECK_MSG(state == PowerState::kActive,
                     "chain must start at active");
  } else {
    DMASIM_CHECK_MSG(
        power_mw < state_power_[static_cast<int>(chain_[state_count_ - 1])],
        "chain must be in strictly descending power order");
  }
  chain_[state_count_] = state;
  chain_index_[s] = state_count_;
  supported_[s] = true;
  state_power_[s] = power_mw;
  ++state_count_;
  // Default serving envelope: full active power, burst-independent.
  if (state == PowerState::kActive) {
    serving_min_mw_ = power_mw;
    serving_max_mw_ = power_mw;
  }
}

void ChipPowerModel::AddTransition(PowerState from, PowerState to,
                                   Transition transition) {
  DMASIM_CHECK_MSG(IsSupported(from) && IsSupported(to),
                   "transition endpoint outside this chip model");
  DMASIM_CHECK_MSG(from != to, "self transition");
  DMASIM_EXPECTS(transition.power_mw >= MilliwattPower(0.0));
  DMASIM_EXPECTS(transition.duration >= Ticks(0));
  const int f = static_cast<int>(from);
  const int t = static_cast<int>(to);
  DMASIM_CHECK_MSG(!legal_[f][t], "transition edge added twice");
  legal_[f][t] = true;
  matrix_[f][t] = transition;
}

void ChipPowerModel::SetServingBounds(MilliwattPower min_mw,
                                      MilliwattPower max_mw) {
  DMASIM_EXPECTS(min_mw > MilliwattPower(0.0) && min_mw <= max_mw);
  serving_min_mw_ = min_mw;
  serving_max_mw_ = max_mw;
}

void ChipPowerModel::TransitionPowerBounds(MilliwattPower* min_mw,
                                           MilliwattPower* max_mw) const {
  MilliwattPower lo;
  MilliwattPower hi;
  bool any = false;
  for (int f = 0; f < kPowerStateCount; ++f) {
    for (int t = 0; t < kPowerStateCount; ++t) {
      if (!legal_[f][t]) continue;
      const MilliwattPower mw = matrix_[f][t].power_mw;
      lo = any ? std::min(lo, mw) : mw;
      hi = any ? std::max(hi, mw) : mw;
      any = true;
    }
  }
  DMASIM_CHECK_MSG(any, "chip model has no transitions");
  *min_mw = lo;
  *max_mw = hi;
}

RdramChipModel::RdramChipModel(const PowerModel& params, ChipModelKind kind,
                               std::string_view name)
    : ChipPowerModel(kind, name, params.cycle, params.bytes_per_cycle) {
  AddState(PowerState::kActive, MilliwattPower(params.active_mw));
  AddState(PowerState::kStandby, MilliwattPower(params.standby_mw));
  AddState(PowerState::kNap, MilliwattPower(params.nap_mw));
  AddState(PowerState::kPowerdown, MilliwattPower(params.powerdown_mw));
  constexpr PowerState kChain[] = {PowerState::kActive, PowerState::kStandby,
                                   PowerState::kNap, PowerState::kPowerdown};
  const bool corrected = kind != ChipModelKind::kRdram;
  for (int f = 0; f < 4; ++f) {
    for (int t = f + 1; t < 4; ++t) {
      // Compat table: the historical accounting billed every down edge
      // into T with the from-active descriptor. The corrected family
      // scales chained-edge power by the origin state's envelope.
      Transition down = params.DownTransition(kChain[t]);
      if (corrected && f != 0) {
        down.power_mw = down.power_mw * (params.StatePowerMw(kChain[f]) /
                                         MilliwattPower(params.active_mw));
      }
      AddTransition(kChain[f], kChain[t], down);
    }
  }
  for (int f = 1; f < 4; ++f) {
    AddTransition(kChain[f], PowerState::kActive,
                  params.UpTransition(kChain[f]));
  }
}

Ddr4ChipModel::Ddr4ChipModel(const Ddr4Options& options)
    : ChipPowerModel(ChipModelKind::kDdr4, "ddr4", kDdr4Cycle,
                     kDdr4BytesPerCycle) {
  using PS = PowerState;
  // Power-ordered idle cascade: act standby -> pre standby -> active
  // power-down -> precharge power-down -> self-refresh.
  AddState(PS::kActive, MilliwattPower(kDdr4ActiveMw));
  AddState(PS::kStandby, MilliwattPower(kDdr4StandbyMw));
  AddState(PS::kActivePowerdown, MilliwattPower(kDdr4ActivePowerdownMw));
  AddState(PS::kPrechargePowerdown, MilliwattPower(kDdr4PrechargePowerdownMw));
  AddState(PS::kSelfRefresh, MilliwattPower(kDdr4SelfRefreshMw));

  // Entry powers take the midpoint of the endpoint states (the rails
  // ramp between the two envelopes during CKE/precharge sequencing).
  auto entry = [&](PS from, PS to, Ticks duration) {
    const MilliwattPower mw = 0.5 * (StatePowerMw(from) + StatePowerMw(to));
    AddTransition(from, to, Transition{mw, duration});
  };
  // From act standby: precharge-all, or drop CKE directly.
  entry(PS::kActive, PS::kStandby, Ticks(kDdr4Trp));
  entry(PS::kActive, PS::kActivePowerdown, Ticks(kDdr4PowerdownEntry));
  entry(PS::kActive, PS::kPrechargePowerdown,
        Ticks(kDdr4Trp + kDdr4PowerdownEntry));
  entry(PS::kActive, PS::kSelfRefresh,
        Ticks(kDdr4Trp + kDdr4SelfRefreshEntry));
  // From pre standby: CKE drop or self-refresh entry.
  entry(PS::kStandby, PS::kActivePowerdown, Ticks(kDdr4PowerdownEntry));
  entry(PS::kStandby, PS::kPrechargePowerdown, Ticks(kDdr4PowerdownEntry));
  entry(PS::kStandby, PS::kSelfRefresh, Ticks(kDdr4SelfRefreshEntry));
  // Chained deepening requires a CKE pulse (exit + re-enter).
  entry(PS::kActivePowerdown, PS::kPrechargePowerdown,
        Ticks(kDdr4Txp + kDdr4PowerdownEntry));
  entry(PS::kActivePowerdown, PS::kSelfRefresh,
        Ticks(kDdr4Txp + kDdr4SelfRefreshEntry));
  entry(PS::kPrechargePowerdown, PS::kSelfRefresh,
        Ticks(kDdr4Txp + kDdr4SelfRefreshEntry));

  // Wakes back to act standby; exit power holds the active envelope
  // plus the activate burst (self-refresh exit adds the refresh tail).
  AddTransition(PS::kStandby, PS::kActive,
                Transition{MilliwattPower(60.0), Ticks(kDdr4Trcd)});
  AddTransition(PS::kActivePowerdown, PS::kActive,
                Transition{MilliwattPower(60.0), Ticks(kDdr4Txp)});
  AddTransition(PS::kPrechargePowerdown, PS::kActive,
                Transition{MilliwattPower(60.0), Ticks(kDdr4Txp + kDdr4Trcd)});
  AddTransition(
      PS::kSelfRefresh, PS::kActive,
      Transition{MilliwattPower(90.0), Ticks(options.self_refresh_exit)});

  SetServingBounds(MilliwattPower(kServingMw), MilliwattPower(kServingMw));
}

SectoredChipModel::SectoredChipModel(const PowerModel& params)
    : RdramCorrectedChipModel(params, ChipModelKind::kSectored, "sectored") {
  const MilliwattPower active = StatePowerMw(PowerState::kActive);
  SetServingBounds(ServingPowerMw(RequestKind::kDma, ByteCount(kSectorBytes)),
                   active);
}

MilliwattPower SectoredChipModel::ServingPowerMw(RequestKind kind,
                                                 ByteCount bytes) const {
  (void)kind;
  const MilliwattPower active = StatePowerMw(PowerState::kActive);
  const std::int64_t sectors = std::min<std::int64_t>(
      (bytes.count() + kSectorBytes - 1) / kSectorBytes, kSectorsPerRow);
  const double fraction =
      static_cast<double>(sectors) / static_cast<double>(kSectorsPerRow);
  return kStaticShare * active + (1.0 - kStaticShare) * active * fraction;
}

std::unique_ptr<ChipPowerModel> MakeChipPowerModel(ChipModelKind kind,
                                                   const PowerModel& params) {
  switch (kind) {
    case ChipModelKind::kRdram:
      // dmasim-lint: allow(heap-alloc) -- one-time construction.
      return std::make_unique<RdramChipModel>(params);
    case ChipModelKind::kRdramCorrected:
      // dmasim-lint: allow(heap-alloc) -- one-time construction.
      return std::make_unique<RdramCorrectedChipModel>(params);
    case ChipModelKind::kDdr4:
      // dmasim-lint: allow(heap-alloc) -- one-time construction.
      return std::make_unique<Ddr4ChipModel>();
    case ChipModelKind::kSectored:
      // dmasim-lint: allow(heap-alloc) -- one-time construction.
      return std::make_unique<SectoredChipModel>(params);
  }
  DMASIM_CHECK_MSG(false, "unknown chip model kind");
}

ModelChainPolicy::ModelChainPolicy(ChipModelKind kind, const PowerModel& params,
                                   const DynamicThresholdConfig& thresholds)
    : model_(MakeChipPowerModel(kind, params)),
      thresholds_(thresholds),
      name_(std::string("dynamic-") + std::string(model_->Name())) {
  DMASIM_EXPECTS(thresholds.active_to_standby >= 0);
  DMASIM_EXPECTS(thresholds.standby_to_nap >= 0);
  DMASIM_EXPECTS(thresholds.nap_to_powerdown >= 0);
}

std::optional<PolicyStep> ModelChainPolicy::NextStep(PowerState current) const {
  const int index = model_->StateIndex(current);
  const std::optional<PowerState> next = model_->NextLowerState(current);
  if (!next.has_value()) return std::nullopt;
  Tick threshold = thresholds_.nap_to_powerdown;
  if (index == 0) threshold = thresholds_.active_to_standby;
  if (index == 1) threshold = thresholds_.standby_to_nap;
  return PolicyStep{Ticks(threshold), *next};
}

}  // namespace dmasim
