// Low-level memory power-management policies.
//
// These are the policies the paper builds on (Section 2.2): a chip-local
// rule deciding when an idle chip steps down to a lower power state.
//   * StaticPolicy: always drop to one fixed low-power mode immediately
//     after servicing (Lebeck et al.'s "static" schemes).
//   * DynamicThresholdPolicy: step to the next lower mode after a
//     per-mode idle threshold expires (Lebeck et al.'s "dynamic" scheme;
//     the paper's baseline).
// DMA-TA / PL sit *above* these: they shape the request stream, while the
// low-level policy still owns the power-state decisions.
#ifndef DMASIM_MEM_POWER_POLICY_H_
#define DMASIM_MEM_POWER_POLICY_H_

#include <optional>
#include <string>

#include "mem/power_model.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

// One pending step-down decision: after `after_idle` of idleness in the
// current state, move to `target`.
struct PolicyStep {
  Ticks after_idle;
  PowerState target = PowerState::kStandby;
};

// Interface for chip-local power management policies.
class LowPowerPolicy {
 public:
  virtual ~LowPowerPolicy() = default;

  // Returns the next step-down from `current`, or nullopt to stay put.
  virtual std::optional<PolicyStep> NextStep(PowerState current) const = 0;

  // Human-readable policy name for reports.
  virtual std::string Name() const = 0;
};

// Drops straight to a fixed target state as soon as the chip idles.
class StaticPolicy final : public LowPowerPolicy {
 public:
  explicit StaticPolicy(PowerState target) : target_(target) {
    DMASIM_EXPECTS(target != PowerState::kActive);
  }

  std::optional<PolicyStep> NextStep(PowerState current) const override {
    if (current == PowerState::kActive) return PolicyStep{Ticks(0), target_};
    return std::nullopt;
  }

  std::string Name() const override {
    return std::string("static-") + std::string(PowerStateName(target_));
  }

  PowerState target() const { return target_; }

 private:
  PowerState target_;
};

// Per-state idle thresholds; after `threshold[s]` idle ticks in state `s`
// the chip steps to the next lower state. The defaults follow the paper's
// observation that the best active->lower threshold is around 20-30 memory
// cycles, with progressively longer thresholds for the deeper states
// (roughly break-even times for the Table 1 transition costs).
struct DynamicThresholdConfig {
  Tick active_to_standby = 24 * 625;        // 24 memory cycles (15 ns).
  Tick standby_to_nap = 160 * kNanosecond;  // ~0.16 us.
  Tick nap_to_powerdown = 16 * kMicrosecond;
};

class DynamicThresholdPolicy final : public LowPowerPolicy {
 public:
  explicit DynamicThresholdPolicy(DynamicThresholdConfig config = {})
      : config_(config) {
    DMASIM_EXPECTS(config.active_to_standby >= 0);
    DMASIM_EXPECTS(config.standby_to_nap >= 0);
    DMASIM_EXPECTS(config.nap_to_powerdown >= 0);
  }

  std::optional<PolicyStep> NextStep(PowerState current) const override {
    switch (current) {
      case PowerState::kActive:
        return PolicyStep{Ticks(config_.active_to_standby),
                          PowerState::kStandby};
      case PowerState::kStandby:
        return PolicyStep{Ticks(config_.standby_to_nap), PowerState::kNap};
      case PowerState::kNap:
        return PolicyStep{Ticks(config_.nap_to_powerdown),
                          PowerState::kPowerdown};
      case PowerState::kPowerdown:
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        return std::nullopt;
    }
    return std::nullopt;
  }

  std::string Name() const override { return "dynamic-threshold"; }

  const DynamicThresholdConfig& config() const { return config_; }

 private:
  DynamicThresholdConfig config_;
};

// Never leaves active mode; useful as an energy-unaware reference point.
class AlwaysActivePolicy final : public LowPowerPolicy {
 public:
  std::optional<PolicyStep> NextStep(PowerState) const override {
    return std::nullopt;
  }
  std::string Name() const override { return "always-active"; }
};

}  // namespace dmasim

#endif  // DMASIM_MEM_POWER_POLICY_H_
