// RDRAM power and timing model (Table 1 of the paper).
//
// Numbers follow the 512-Mbit 1600 MHz RDRAM specification used by the
// paper (and by Lebeck et al.): four power states with per-state power,
// and per-transition power/latency. The memory bus moves 2 bytes per
// 625 ps memory cycle (3.2 GB/s peak).
#ifndef DMASIM_MEM_POWER_MODEL_H_
#define DMASIM_MEM_POWER_MODEL_H_

#include <string_view>

#include "util/check.h"
#include "util/time.h"

namespace dmasim {

// Union of the power states any chip model can occupy. The first four
// are the paper's RDRAM Table 1 states; the last three exist only in
// modern-DRAM models (DDR4-style power-down and self-refresh). Which
// subset is reachable — and in what power order — is owned by the
// ChipPowerModel instance (mem/chip_power_model.h), never hard-coded.
enum class PowerState : int {
  kActive = 0,
  kStandby,
  kNap,
  kPowerdown,
  kActivePowerdown,     // DDR4: CKE low with a row open.
  kPrechargePowerdown,  // DDR4: CKE low, all banks precharged.
  kSelfRefresh,         // DDR4: clock stopped, internal refresh.
};

inline constexpr int kPowerStateCount = 7;

// Canonical display name. Total over the enum: an out-of-range value is
// a programming error and aborts instead of silently printing "?" (a
// 5+-state model falling through a 4-state switch must be loud).
constexpr std::string_view PowerStateName(PowerState state) {
  switch (state) {
    case PowerState::kActive:
      return "active";
    case PowerState::kStandby:
      return "standby";
    case PowerState::kNap:
      return "nap";
    case PowerState::kPowerdown:
      return "powerdown";
    case PowerState::kActivePowerdown:
      return "active-powerdown";
    case PowerState::kPrechargePowerdown:
      return "precharge-powerdown";
    case PowerState::kSelfRefresh:
      return "self-refresh";
  }
  DMASIM_CHECK_MSG(false, "unnamed power state");
}

// Power/latency pair describing one power-mode transition.
struct Transition {
  double power_mw = 0.0;
  Tick duration = 0;
};

// Chip-level power/timing parameters. Defaults reproduce the paper's
// Table 1 exactly; a memory cycle is 625 ps (1600 MHz).
struct PowerModel {
  Tick cycle = 625;              // One memory cycle in ticks.
  double bytes_per_cycle = 2.0;  // Peak data rate: 3.2 GB/s.

  double active_mw = 300.0;
  double standby_mw = 180.0;
  double nap_mw = 30.0;
  double powerdown_mw = 3.0;

  // Downward transitions (from active; also used as an approximation for
  // chained steps, e.g. standby -> nap, which the spec does not list).
  Transition to_standby{240.0, 1 * 625};   // 1 memory cycle.
  Transition to_nap{160.0, 8 * 625};       // 8 memory cycles.
  Transition to_powerdown{15.0, 8 * 625};  // 8 memory cycles.

  // Upward transitions back to active ("+" latencies in Table 1).
  Transition from_standby{240.0, 6 * kNanosecond};
  Transition from_nap{160.0, 60 * kNanosecond};
  Transition from_powerdown{15.0, 6000 * kNanosecond};

  // Steady-state power of `state` in milliwatts.
  double StatePowerMw(PowerState state) const {
    switch (state) {
      case PowerState::kActive:
        return active_mw;
      case PowerState::kStandby:
        return standby_mw;
      case PowerState::kNap:
        return nap_mw;
      case PowerState::kPowerdown:
        return powerdown_mw;
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;  // Not RDRAM states; only ChipPowerModel instances own them.
    }
    DMASIM_CHECK_MSG(false, "state outside the RDRAM model");
  }

  // Transition descriptor for entering `target` from a higher-power state.
  const Transition& DownTransition(PowerState target) const {
    switch (target) {
      case PowerState::kStandby:
        return to_standby;
      case PowerState::kNap:
        return to_nap;
      case PowerState::kPowerdown:
        return to_powerdown;
      case PowerState::kActive:
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;
    }
    DMASIM_CHECK_MSG(false, "no RDRAM down transition to that state");
  }

  // Transition descriptor for waking to active from `source`.
  const Transition& UpTransition(PowerState source) const {
    switch (source) {
      case PowerState::kStandby:
        return from_standby;
      case PowerState::kNap:
        return from_nap;
      case PowerState::kPowerdown:
        return from_powerdown;
      case PowerState::kActive:
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;
    }
    DMASIM_CHECK_MSG(false, "no RDRAM up transition from that state");
  }

  // Time to serve `bytes` at the chip's peak data rate.
  Tick ServiceTime(std::int64_t bytes) const {
    DMASIM_EXPECTS(bytes > 0);
    const double cycles = static_cast<double>(bytes) / bytes_per_cycle;
    return static_cast<Tick>(cycles * static_cast<double>(cycle) + 0.5);
  }

  // Sustained memory bandwidth in bytes/second.
  double BandwidthBytesPerSecond() const {
    return bytes_per_cycle / TicksToSeconds(cycle);
  }

  // Converts a (milliwatt, tick) product to joules.
  static double EnergyJoules(double power_mw, Tick duration) {
    return power_mw * 1e-3 * TicksToSeconds(duration);
  }
};

}  // namespace dmasim

#endif  // DMASIM_MEM_POWER_MODEL_H_
