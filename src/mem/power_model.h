// RDRAM power and timing model (Table 1 of the paper).
//
// Numbers follow the 512-Mbit 1600 MHz RDRAM specification used by the
// paper (and by Lebeck et al.): four power states with per-state power,
// and per-transition power/latency. The memory bus moves 2 bytes per
// 625 ps memory cycle (3.2 GB/s peak).
#ifndef DMASIM_MEM_POWER_MODEL_H_
#define DMASIM_MEM_POWER_MODEL_H_

#include <string_view>

#include "util/check.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

// Union of the power states any chip model can occupy. The first four
// are the paper's RDRAM Table 1 states; the last three exist only in
// modern-DRAM models (DDR4-style power-down and self-refresh). Which
// subset is reachable — and in what power order — is owned by the
// ChipPowerModel instance (mem/chip_power_model.h), never hard-coded.
enum class PowerState : int {
  kActive = 0,
  kStandby,
  kNap,
  kPowerdown,
  kActivePowerdown,     // DDR4: CKE low with a row open.
  kPrechargePowerdown,  // DDR4: CKE low, all banks precharged.
  kSelfRefresh,         // DDR4: clock stopped, internal refresh.
};

inline constexpr int kPowerStateCount = 7;

// Canonical display name. Total over the enum: an out-of-range value is
// a programming error and aborts instead of silently printing "?" (a
// 5+-state model falling through a 4-state switch must be loud).
constexpr std::string_view PowerStateName(PowerState state) {
  switch (state) {
    case PowerState::kActive:
      return "active";
    case PowerState::kStandby:
      return "standby";
    case PowerState::kNap:
      return "nap";
    case PowerState::kPowerdown:
      return "powerdown";
    case PowerState::kActivePowerdown:
      return "active-powerdown";
    case PowerState::kPrechargePowerdown:
      return "precharge-powerdown";
    case PowerState::kSelfRefresh:
      return "self-refresh";
  }
  DMASIM_CHECK_MSG(false, "unnamed power state");
}

// Power/latency pair describing one power-mode transition.
struct Transition {
  MilliwattPower power_mw;
  Ticks duration;
};

// Chip-level power/timing parameters. Defaults reproduce the paper's
// Table 1 exactly; a memory cycle is 625 ps (1600 MHz). The calibration
// members stay raw doubles/Ticks literals: this struct IS the audited
// Table 1 edge where spec numbers enter the typed world.
struct PowerModel {
  Tick cycle = 625;              // One memory cycle in ticks.
  double bytes_per_cycle = 2.0;  // Peak data rate: 3.2 GB/s.

  // Table 1 calibration literals: the audited raw edge the typed layer
  // is built from (unitcheck: allow(raw-unit-decl) on each line).
  double active_mw = 300.0;     // unitcheck: allow(raw-unit-decl)
  double standby_mw = 180.0;    // unitcheck: allow(raw-unit-decl)
  double nap_mw = 30.0;         // unitcheck: allow(raw-unit-decl)
  double powerdown_mw = 3.0;    // unitcheck: allow(raw-unit-decl)

  // Downward transitions (from active; also used as an approximation for
  // chained steps, e.g. standby -> nap, which the spec does not list).
  Transition to_standby{MilliwattPower(240.0), Ticks(1 * 625)};
  Transition to_nap{MilliwattPower(160.0), Ticks(8 * 625)};
  Transition to_powerdown{MilliwattPower(15.0), Ticks(8 * 625)};

  // Upward transitions back to active ("+" latencies in Table 1).
  Transition from_standby{MilliwattPower(240.0), Ticks(6 * kNanosecond)};
  Transition from_nap{MilliwattPower(160.0), Ticks(60 * kNanosecond)};
  Transition from_powerdown{MilliwattPower(15.0), Ticks(6000 * kNanosecond)};

  // Steady-state power of `state`.
  MilliwattPower StatePowerMw(PowerState state) const {
    switch (state) {
      case PowerState::kActive:
        return MilliwattPower(active_mw);
      case PowerState::kStandby:
        return MilliwattPower(standby_mw);
      case PowerState::kNap:
        return MilliwattPower(nap_mw);
      case PowerState::kPowerdown:
        return MilliwattPower(powerdown_mw);
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;  // Not RDRAM states; only ChipPowerModel instances own them.
    }
    DMASIM_CHECK_MSG(false, "state outside the RDRAM model");
  }

  // Transition descriptor for entering `target` from a higher-power state.
  const Transition& DownTransition(PowerState target) const {
    switch (target) {
      case PowerState::kStandby:
        return to_standby;
      case PowerState::kNap:
        return to_nap;
      case PowerState::kPowerdown:
        return to_powerdown;
      case PowerState::kActive:
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;
    }
    DMASIM_CHECK_MSG(false, "no RDRAM down transition to that state");
  }

  // Transition descriptor for waking to active from `source`.
  const Transition& UpTransition(PowerState source) const {
    switch (source) {
      case PowerState::kStandby:
        return from_standby;
      case PowerState::kNap:
        return from_nap;
      case PowerState::kPowerdown:
        return from_powerdown;
      case PowerState::kActive:
      case PowerState::kActivePowerdown:
      case PowerState::kPrechargePowerdown:
      case PowerState::kSelfRefresh:
        break;
    }
    DMASIM_CHECK_MSG(false, "no RDRAM up transition from that state");
  }

  // Time to serve `bytes` at the chip's peak data rate.
  Ticks ServiceTime(ByteCount bytes) const {
    DMASIM_EXPECTS(bytes.count() > 0);
    const double cycles = static_cast<double>(bytes.count()) / bytes_per_cycle;
    return Ticks(static_cast<Tick>(cycles * static_cast<double>(cycle) + 0.5));
  }

  // Sustained memory bandwidth.
  BytesPerSecond Bandwidth() const {
    return BytesPerSecond(bytes_per_cycle / TicksToSeconds(cycle));
  }
};

}  // namespace dmasim

#endif  // DMASIM_MEM_POWER_MODEL_H_
