// Pluggable chip power/timing model family.
//
// The paper's RDRAM Table 1 is one member of a family, not the family
// itself. A ChipPowerModel owns everything the simulator previously
// hard-coded against the 4-state RDRAM enum:
//   * which subset of PowerState the chip supports, in descending
//     power order (the "chain" that dynamic-threshold policies walk),
//   * per-state steady power,
//   * a full origin-aware transition matrix — every legal (from, to)
//     edge carries its own power/latency, fixing the historical
//     "downward transitions from active, reused for chained steps"
//     approximation,
//   * an activation-cost hook (ServingPowerMw) so fine-grained-
//     activation chips can bill a DMA burst only for the sectors it
//     touches,
//   * the data-rate timing (cycle length, bytes per cycle).
//
// Shipped instances:
//   rdram            byte-identical Table 1 default, including the
//                    historical compat matrix (chained step-downs
//                    billed with the from-active descriptor),
//   rdram-corrected  same parameters with origin-scaled chained edges,
//   ddr4             DDR4-2400 x16 with precharge/active power-down
//                    and self-refresh, pinned against published
//                    DRAMPower/datasheet numbers (gem5 spirit),
//   sectored         Sectored-DRAM-style fine-grained activation on
//                    RDRAM timing: a burst pays only for the 64-byte
//                    sectors of the 512-byte row it touches.
#ifndef DMASIM_MEM_CHIP_POWER_MODEL_H_
#define DMASIM_MEM_CHIP_POWER_MODEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "util/check.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

// Who a memory access is serving; lets accounting split energy by
// requester class and lets activation-aware models price by origin.
enum class RequestKind : int {
  kDma = 0,
  kCpu,
  kMigration,
};

enum class ChipModelKind : int {
  kRdram = 0,
  kRdramCorrected,
  kDdr4,
  kSectored,
};

inline constexpr ChipModelKind kAllChipModelKinds[] = {
    ChipModelKind::kRdram,
    ChipModelKind::kRdramCorrected,
    ChipModelKind::kDdr4,
    ChipModelKind::kSectored,
};

std::string_view ChipModelKindName(ChipModelKind kind);

// Parses a ChipModelKindName; empty optional on unknown text.
std::optional<ChipModelKind> ParseChipModelKind(std::string_view text);

// Data-rate timing a model imposes on the memory system. Exposed as a
// free function so MemorySystemConfig can derive chip bandwidth before
// a model instance exists.
struct ChipTiming {
  Tick cycle = 625;
  double bytes_per_cycle = 2.0;
};

ChipTiming ChipModelTiming(ChipModelKind kind, const PowerModel& params);

// Table-driven base class. Concrete models populate the state chain
// and transition matrix in their constructors via AddState /
// AddTransition; only the activation-cost hook is virtual.
class ChipPowerModel {
 public:
  virtual ~ChipPowerModel() = default;

  ChipModelKind kind() const { return kind_; }
  std::string_view Name() const { return name_; }

  // --- State chain (descending power order; index 0 is kActive). ---
  int StateCount() const { return state_count_; }
  PowerState State(int index) const {
    DMASIM_EXPECTS(index >= 0 && index < state_count_);
    return chain_[index];
  }
  bool IsSupported(PowerState state) const {
    const int s = static_cast<int>(state);
    return s >= 0 && s < kPowerStateCount && supported_[s];
  }
  // Position of `state` in the chain; aborts on unsupported states.
  int StateIndex(PowerState state) const {
    DMASIM_CHECK_MSG(IsSupported(state), "state outside this chip model");
    return chain_index_[static_cast<int>(state)];
  }
  // Model-driven naming: unsupported states are a CHECK failure, not "?".
  std::string_view StateName(PowerState state) const {
    DMASIM_CHECK_MSG(IsSupported(state), "state outside this chip model");
    return PowerStateName(state);
  }
  MilliwattPower StatePowerMw(PowerState state) const {
    DMASIM_CHECK_MSG(IsSupported(state), "state outside this chip model");
    return state_power_[static_cast<int>(state)];
  }
  // Next state down the chain, or empty at the deepest state.
  std::optional<PowerState> NextLowerState(PowerState state) const {
    const int index = StateIndex(state);
    if (index + 1 >= state_count_) return std::nullopt;
    return chain_[index + 1];
  }
  PowerState DeepestState() const { return chain_[state_count_ - 1]; }

  // --- Origin-aware transition matrix. ---
  bool LegalTransition(PowerState from, PowerState to) const {
    if (!IsSupported(from) || !IsSupported(to)) return false;
    return legal_[static_cast<int>(from)][static_cast<int>(to)];
  }
  // Descriptor for the (from, to) edge; aborts on illegal edges.
  const Transition& TransitionBetween(PowerState from, PowerState to) const {
    DMASIM_CHECK_MSG(LegalTransition(from, to),
                     "no such transition edge in this chip model");
    return matrix_[static_cast<int>(from)][static_cast<int>(to)];
  }
  // Envelope of all edge powers, for conservation audits.
  void TransitionPowerBounds(MilliwattPower* min_mw,
                             MilliwattPower* max_mw) const;

  // --- Activation cost. ---
  // Power drawn while actively moving `bytes` for `kind`. The base
  // family bills the full active power regardless of burst shape.
  virtual MilliwattPower ServingPowerMw(RequestKind kind,
                                        ByteCount bytes) const {
    (void)kind;
    (void)bytes;
    return state_power_[static_cast<int>(PowerState::kActive)];
  }
  // Envelope of ServingPowerMw over all requests, for audits. Equal
  // bounds mean serving power is burst-independent (exact audit).
  void ServingPowerBounds(MilliwattPower* min_mw, MilliwattPower* max_mw) const {
    *min_mw = serving_min_mw_;
    *max_mw = serving_max_mw_;
  }

  // --- Timing. ---
  Tick cycle() const { return cycle_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }
  // Time to serve `bytes` at the chip's peak data rate.
  Ticks ServiceTime(ByteCount bytes) const {
    DMASIM_EXPECTS(bytes.count() > 0);
    const double cycles = static_cast<double>(bytes.count()) / bytes_per_cycle_;
    return Ticks(
        static_cast<Tick>(cycles * static_cast<double>(cycle_) + 0.5));
  }
  BytesPerSecond Bandwidth() const {
    return BytesPerSecond(bytes_per_cycle_ / TicksToSeconds(cycle_));
  }

 protected:
  ChipPowerModel(ChipModelKind kind, std::string_view name, Tick cycle,
                 double bytes_per_cycle);

  // Appends a state to the chain. States must arrive in strictly
  // descending power order and the first must be kActive.
  void AddState(PowerState state, MilliwattPower power);
  // Declares the (from, to) edge legal with descriptor `transition`.
  void AddTransition(PowerState from, PowerState to, Transition transition);
  void SetServingBounds(MilliwattPower min_mw, MilliwattPower max_mw);

 private:
  ChipModelKind kind_;
  std::string_view name_;
  Tick cycle_;
  double bytes_per_cycle_;
  int state_count_ = 0;
  PowerState chain_[kPowerStateCount] = {};
  int chain_index_[kPowerStateCount] = {};
  bool supported_[kPowerStateCount] = {};
  MilliwattPower state_power_[kPowerStateCount] = {};
  bool legal_[kPowerStateCount][kPowerStateCount] = {};
  Transition matrix_[kPowerStateCount][kPowerStateCount] = {};
  MilliwattPower serving_min_mw_;
  MilliwattPower serving_max_mw_;
};

// Byte-identical RDRAM Table 1 default. The transition matrix is an
// explicit compat table reproducing the historical accounting: every
// down edge into T — chained or not — bills params.DownTransition(T),
// the from-active descriptor.
class RdramChipModel : public ChipPowerModel {
 public:
  explicit RdramChipModel(const PowerModel& params)
      : RdramChipModel(params, ChipModelKind::kRdram, "rdram") {}

 protected:
  RdramChipModel(const PowerModel& params, ChipModelKind kind,
                 std::string_view name);
};

// Same Table 1 parameters with corrected chained-edge billing: a
// chained down edge F→T scales the from-active transition power by the
// origin state's envelope, StatePowerMw(F) / active_mw (a transition
// out of standby cannot draw more than the standby rail sources).
// Durations are unchanged — Table 1 lists no chained latencies.
class RdramCorrectedChipModel : public RdramChipModel {
 public:
  explicit RdramCorrectedChipModel(const PowerModel& params)
      : RdramChipModel(params, ChipModelKind::kRdramCorrected,
                       "rdram-corrected") {}

 protected:
  RdramCorrectedChipModel(const PowerModel& params, ChipModelKind kind,
                          std::string_view name)
      : RdramChipModel(params, kind, name) {}
};

// DDR4-2400 x16 calibration knobs; exposed so the model checker can
// inject a faulty acting model (e.g. a skipped self-refresh exit).
struct Ddr4Options {
  Tick self_refresh_exit = 270 * kNanosecond;  // tXS
};

// DDR4-style model: precharge standby, active/precharge power-down and
// self-refresh with entry/exit latencies, in the spirit of the gem5
// DRAM power-down integration. Powers are IDD * VDD for a DDR4-2400
// x16 die (DRAMPower-published currents, VDD = 1.2 V); the chain is
// the power-ordered idle cascade a demotion policy walks, not the bank
// micro-state machine. Ignores the RDRAM parameter block entirely.
class Ddr4ChipModel : public ChipPowerModel {
 public:
  static constexpr double kServingMw = 180.0;  // IDD4R read-burst envelope.

  explicit Ddr4ChipModel(const Ddr4Options& options = {});

  MilliwattPower ServingPowerMw(RequestKind kind,
                                ByteCount bytes) const override {
    (void)kind;
    (void)bytes;
    return MilliwattPower(kServingMw);
  }
};

// Sectored-DRAM-style fine-grained activation on RDRAM timing and the
// corrected matrix: serving a burst powers the always-on periphery
// (kStaticShare of active) plus only the activated 64-byte sectors of
// the 512-byte row. A full-row burst costs exactly active_mw.
class SectoredChipModel : public RdramCorrectedChipModel {
 public:
  static constexpr std::int64_t kSectorBytes = 64;
  static constexpr std::int64_t kSectorsPerRow = 8;
  static constexpr double kStaticShare = 0.4;

  explicit SectoredChipModel(const PowerModel& params);

  MilliwattPower ServingPowerMw(RequestKind kind,
                                ByteCount bytes) const override;
};

// Builds the model `kind` from the RDRAM parameter block (ignored by
// kDdr4, which carries its own calibration).
std::unique_ptr<ChipPowerModel> MakeChipPowerModel(ChipModelKind kind,
                                                   const PowerModel& params);

// Dynamic-threshold policy that walks a chip model's state chain
// instead of the hard-coded RDRAM one. Owns its model instance so it
// can outlive (or precede) the controller it steers. Threshold mapping
// by chain depth: leaving active uses active_to_standby, the next step
// standby_to_nap, and every deeper step nap_to_powerdown.
class ModelChainPolicy final : public LowPowerPolicy {
 public:
  ModelChainPolicy(ChipModelKind kind, const PowerModel& params,
                   const DynamicThresholdConfig& thresholds);

  std::optional<PolicyStep> NextStep(PowerState current) const override;
  std::string Name() const override { return name_; }

 private:
  std::unique_ptr<ChipPowerModel> model_;
  DynamicThresholdConfig thresholds_;
  std::string name_;
};

}  // namespace dmasim

#endif  // DMASIM_MEM_CHIP_POWER_MODEL_H_
