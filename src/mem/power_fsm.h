// Power-state machine of one RDRAM chip, extracted from MemoryChip so
// that other drivers can step the exact transition rules the simulator
// uses. MemoryChip embeds one PowerFsm and layers event scheduling and
// energy accounting on top; the protocol checker (src/check) embeds one
// per abstract chip and steps it directly, which is what makes its
// exploration exercise the *real* state machine rather than a model of
// it.
//
// The machine is deliberately passive: Begin* only flips the bookkeeping
// and hands back the model's transition descriptor — the caller decides
// when the transition completes (MemoryChip schedules an event for
// `duration` ticks later; the checker completes it atomically and feeds
// the start/end pair to the power-state auditor).
#ifndef DMASIM_MEM_POWER_FSM_H_
#define DMASIM_MEM_POWER_FSM_H_

#include "mem/chip_power_model.h"
#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "util/check.h"

namespace dmasim {

class PowerFsm {
 public:
  explicit PowerFsm(PowerState initial) : state_(initial) {}

  PowerState state() const { return state_; }
  bool transitioning() const { return transitioning_; }
  bool transition_up() const { return transition_up_; }
  PowerState transition_target() const { return transition_target_; }

  // True when a newly arriving DMA-memory request would find the chip in
  // a low-power mode (the condition under which DMA-TA may delay it).
  bool InLowPowerForGating() const {
    if (transitioning_) return !transition_up_;
    return state_ != PowerState::kActive;
  }

  // Begins waking to active from the current low-power state. Returns
  // `model`'s transition descriptor (power draw + resync latency).
  const Transition& BeginWake(const ChipPowerModel& model) {
    DMASIM_CHECK(!transitioning_);
    DMASIM_CHECK_NE(state_, PowerState::kActive);
    const PowerState from = state_;
    transitioning_ = true;
    transition_up_ = true;
    transition_target_ = PowerState::kActive;
    return model.TransitionBetween(from, PowerState::kActive);
  }

  // Begins stepping down to `target` (a strictly lower-power state).
  // Billing is origin-aware: the descriptor is for the (state_, target)
  // edge, not the historical from-active approximation.
  const Transition& BeginStepDown(PowerState target,
                                  const ChipPowerModel& model) {
    DMASIM_CHECK(!transitioning_);
    DMASIM_CHECK_NE(target, PowerState::kActive);
    const PowerState from = state_;
    transitioning_ = true;
    transition_up_ = false;
    transition_target_ = target;
    return model.TransitionBetween(from, target);
  }

  // Completes the in-flight transition; returns true when it was a wake.
  bool CompleteTransition() {
    DMASIM_CHECK(transitioning_);
    transitioning_ = false;
    state_ = transition_target_;
    return transition_up_;
  }

  // Deepest state `policy` lets an idle chip settle into (the natural
  // initial state for a freshly simulated chip).
  static PowerState RestingState(const LowPowerPolicy& policy) {
    PowerState state = PowerState::kActive;
    // Follow the policy's step-down chain to its terminal state.
    for (int guard = 0; guard < kPowerStateCount; ++guard) {
      const auto step = policy.NextStep(state);
      if (!step.has_value()) break;
      state = step->target;
    }
    return state;
  }

 private:
  PowerState state_;
  bool transitioning_ = false;
  bool transition_up_ = false;
  PowerState transition_target_ = PowerState::kActive;
};

}  // namespace dmasim

#endif  // DMASIM_MEM_POWER_FSM_H_
