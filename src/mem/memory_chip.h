// RDRAM memory chip model: request service, power-state machine, and
// per-bucket energy integration.
//
// The chip serves 8-byte DMA-memory requests in 4 memory cycles (at the
// default 3.2 GB/s data rate) and 64-byte processor accesses in 32 cycles.
// Between requests of an in-flight DMA transfer it is idle in active mode;
// that time is attributed to the ActiveIdleDma energy bucket, which is the
// waste DMA-TA attacks. A chip-local `LowPowerPolicy` decides when the
// idle chip steps down; waking and stepping incur the Table 1 transition
// costs.
//
// Requests are served in priority order: processor accesses first (the
// paper's Section 4.1.3 "processors take priority" solution), then DMA,
// then page-migration copies.
#ifndef DMASIM_MEM_MEMORY_CHIP_H_
#define DMASIM_MEM_MEMORY_CHIP_H_

#include <cstdint>
#include <deque>

#include "audit/audit_config.h"
#include "mem/chip_power_model.h"
#include "mem/power_fsm.h"
#include "mem/power_model.h"
#include "mem/power_policy.h"
#include "obs/obs_config.h"
#include "sim/inline_function.h"
#include "sim/simulator.h"
#include "stats/energy.h"
#include "util/check.h"
#include "util/time.h"

#if DMASIM_AUDIT_LEVEL >= 1
#include "audit/chip_audit_sink.h"
#endif

#if DMASIM_OBS >= 2
#include "obs/event_trace.h"
#endif

namespace dmasim {

// RequestKind lives in mem/chip_power_model.h so activation-aware chip
// models can price accesses by requester class.

// Completion callback carried by a ChipRequest. Deliberately smaller
// than SmallFunction: chip callbacks capture at most four pointers/values
// (the controller's chunk-completion lambdas), and requests are moved
// through per-chip queues on every chunk, so the 32-byte capacity keeps
// sizeof(ChipRequest) to a single cache line.
using ChipCallback = InlineFunction<void(Tick), 32>;

// One memory request as seen by a chip. `on_complete` runs when the last
// byte has been transferred (may be empty).
struct ChipRequest {
  RequestKind kind = RequestKind::kDma;
  ByteCount bytes{8};
  ChipCallback on_complete;
};

// Aggregate per-chip statistics (times in ticks).
struct ChipStats {
  Tick dma_serving = 0;
  Tick cpu_serving = 0;
  Tick migration_serving = 0;
  Tick active_idle_dma = 0;
  Tick active_idle_threshold = 0;
  Tick transition = 0;
  Tick low_power[kPowerStateCount] = {};  // Indexed by PowerState.
  std::uint64_t dma_requests = 0;
  std::uint64_t cpu_requests = 0;
  std::uint64_t migration_requests = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t step_downs = 0;
};

class MemoryChip {
 public:
  // `simulator`, `model`, and `policy` must outlive the chip.
  MemoryChip(Simulator* simulator, const ChipPowerModel* model,
             const LowPowerPolicy* policy, int id);

  MemoryChip(const MemoryChip&) = delete;
  MemoryChip& operator=(const MemoryChip&) = delete;

  // Submits a request. If the chip is in (or stepping to) a low-power
  // state it wakes first, paying the Table 1 transition cost.
  void Enqueue(ChipRequest request);

  // Registers / unregisters an in-flight DMA transfer targeting this chip.
  // While at least one transfer is in flight, idle-active time counts as
  // ActiveIdleDma; otherwise as ActiveIdleThreshold.
  void BeginTransfer();
  void EndTransfer();

  // True when a newly arriving DMA-memory request would find the chip in a
  // low-power mode (the condition under which DMA-TA may delay it).
  bool InLowPowerForGating() const { return fsm_.InLowPowerForGating(); }

  // Steps the chip down `depth` policy steps below its current state in
  // one transition, without waiting for the idle threshold (the access
  // monitor's demote-chip scheme action; depth > 1 follows the policy's
  // step chain — e.g. Active -> Nap — and clamps at the chain's end).
  // Refuses — returning false — unless the chip is genuinely quiescent:
  // not serving, not transitioning, nothing queued, no DMA transfer in
  // flight, and the policy has a lower state to offer. Cancels the
  // pending idle timer so the demotion and the threshold path cannot
  // race.
  bool TryStepDown(int depth = 1);

  // --- Chunk-run coalescing support (see MemoryController) ---------------

  // True when the chip's near future is fully determined by the single
  // in-flight DMA transfer: active, idle, nothing queued, no competing
  // transfer. Under these conditions the controller may serve a run of
  // chunks in one event and replay the chip-side accounting afterwards.
  bool CanCoalesceDmaRun() const {
    return !serving_ && !fsm_.transitioning() &&
           fsm_.state() == PowerState::kActive && in_flight_transfers_ == 1 &&
           !HasQueuedRequest();
  }

  // Replays one full DMA chunk cycle that happened in the past: idle-DMA
  // time up to `issue`, serving time in [issue, completion), back to
  // idle-DMA at `completion`. Integrates exactly the energy terms the
  // per-chunk execution would have, in the same order. `bytes` is the
  // chunk size (activation-aware models price serving power by burst).
  void AccountCoalescedCycle(Tick issue, Tick completion, ByteCount bytes);

  // Reconstructs the chip mid-service: the chunk was issued at `issue`
  // (in the past) and its ServeDone is rescheduled as a real event.
  void ResumeCoalescedService(Tick issue, ChipRequest request);

  PowerState power_state() const { return fsm_.state(); }
  bool serving() const { return serving_; }
  bool transitioning() const { return fsm_.transitioning(); }
  int in_flight_transfers() const { return in_flight_transfers_; }
  int id() const { return id_; }
  std::size_t QueuedRequests() const {
    return cpu_queue_.size() + dma_queue_.size() + migration_queue_.size();
  }

  // Flushes accounting up to the current simulated time. Call before
  // reading `energy()` or `stats()` at the end of a run.
  void SyncAccounting();

  const EnergyBreakdown& energy() const { return energy_; }
  const ChipStats& stats() const { return stats_; }
  const ChipPowerModel& model() const { return *model_; }
  // Simulated time up to which energy/stats have been integrated.
  Tick accounted_until() const { return accounted_until_; }

#if DMASIM_AUDIT_LEVEL >= 1
  // Attaches the invariant auditor's observer (null detaches). The sink
  // sees every completed power-state transition and every integrated
  // energy segment.
  void SetAuditSink(ChipAuditSink* sink) { audit_sink_ = sink; }
#endif

#if DMASIM_OBS >= 2
  // Attaches the observability tracer (null detaches). From this moment
  // the chip closes a residency or transition interval event whenever its
  // power state machine moves; `FlushObsResidency` closes the open
  // interval at `accounted_until()` (call after SyncAccounting so the
  // trace's residency totals reconcile exactly with `stats()`).
  void SetObsTracer(EventTracer* tracer) {
    obs_tracer_ = tracer;
    obs_interval_start_ = simulator_->Now();
  }
  void FlushObsResidency();
#endif

  // Deepest state a policy lets an idle chip settle into (the natural
  // initial state for a freshly simulated chip).
  static PowerState RestingState(const LowPowerPolicy& policy);

 private:
  void StartNextService();
  ChipRequest PopNextRequest();
  void SwitchToServingAccounting(RequestKind kind, ByteCount bytes);
  void ServeRequest(ChipRequest request);
  void ServeDone();
  void BecomeIdleActive();
  void ArmPolicyTimer();
  void StartWake();
  void StartStepDown(PowerState target);
  void TransitionDone();
  bool HasQueuedRequest() const { return QueuedRequests() > 0; }

  // Integrates the current accounting mode up to `when` (>= the last
  // accounted time; may be in the simulated past during coalesced replay).
  void AccountTo(Tick when);
  // Switches the energy/time accounting mode, integrating the elapsed
  // interval into the previous mode.
  void SetAccounting(EnergyBucket bucket, MilliwattPower power_mw,
                     Tick* time_slot);

  Simulator* simulator_;
  const ChipPowerModel* model_;
  const LowPowerPolicy* policy_;
  int id_;

  // The extracted power-state machine (shared with the protocol checker;
  // see mem/power_fsm.h). The chip layers serving, queueing, timers, and
  // energy accounting on top of it.
  PowerFsm fsm_;
  bool serving_ = false;
  int in_flight_transfers_ = 0;
  std::uint64_t timer_generation_ = 0;

  // The request being served; ServeDone events capture only `this`.
  ChipRequest active_request_;

  std::deque<ChipRequest> cpu_queue_;
  std::deque<ChipRequest> dma_queue_;
  std::deque<ChipRequest> migration_queue_;

  // Accounting mode.
  Tick accounted_until_ = 0;
  EnergyBucket bucket_ = EnergyBucket::kActiveIdleThreshold;
  MilliwattPower power_mw_;
  Tick* time_slot_;

  EnergyBreakdown energy_;
  ChipStats stats_;

#if DMASIM_AUDIT_LEVEL >= 1
  ChipAuditSink* audit_sink_ = nullptr;
  Tick audit_transition_start_ = 0;
#endif

#if DMASIM_OBS >= 2
  // Closes the open residency interval at `now` (no-op when detached or
  // zero-length; zero-length intervals carry no time and would only bloat
  // the trace).
  void ObsCloseResidency(Tick now);

  EventTracer* obs_tracer_ = nullptr;
  Tick obs_interval_start_ = 0;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_MEM_MEMORY_CHIP_H_
